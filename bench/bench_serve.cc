// Serving-layer benchmark (DESIGN.md §10): what does putting the
// estimator behind the snapshot catalog + bounded queue + worker pool
// cost, and how does the queue behave at and past saturation?
//
//   1. Baseline: direct TwigEstimator calls on the caller thread.
//   2. Served throughput: closed-loop clients (each waits for its
//      response before sending the next) against the EstimateService,
//      sweeping worker counts — per-request overhead is the gap to the
//      baseline.
//   3. Overload: an open-loop burst far past queue capacity; every
//      request is answered (estimate or structured rejection), and the
//      split shows the admission discipline doing its job.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/harness.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace {

using namespace twig;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp,
                                     exp::kDefaultDblpBytes, 20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 200;
  wopt.seed = 1789;
  const workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);

  serve::SnapshotCatalog catalog;
  catalog.Publish(exp::BuildCstAtFraction(ds, 0.01), "dblp @ 1%");
  const std::shared_ptr<const serve::CstSnapshot> snapshot = catalog.Current();

  constexpr size_t kRounds = 10;  // passes over the workload per run

  // -- 1. Baseline: the estimator with no serving machinery around it.
  core::TwigEstimator direct(&snapshot->summary);
  Clock::time_point start = Clock::now();
  for (size_t round = 0; round < kRounds; ++round) {
    for (const auto& wq : wl) {
      direct.Estimate(wq.twig, core::Algorithm::kMsh);
    }
  }
  const double direct_seconds = SecondsSince(start);
  const size_t total = kRounds * wl.size();
  std::printf("== Direct estimator baseline (MSH, 1%% space) ==\n");
  std::printf("  %zu estimates in %.3f s: %.0f/s, %.1f us each\n\n", total,
              direct_seconds, static_cast<double>(total) / direct_seconds,
              1e6 * direct_seconds / static_cast<double>(total));

  // -- 2. Served, closed loop: sweep the worker count.
  std::printf("== Served throughput (closed loop, 4 client threads) ==\n");
  std::printf("  %-8s %10s %12s %12s %12s\n", "workers", "req/s", "vs direct",
              "wait p50 us", "wait p99 us");
  for (size_t workers : {1, 2, 4}) {
    serve::ServiceOptions sopt;
    sopt.num_workers = workers;
    serve::EstimateService service(&catalog, sopt);

    constexpr size_t kClients = 4;
    std::vector<std::vector<double>> waits(kClients);
    start = Clock::now();
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        waits[c].reserve(kRounds * wl.size() / kClients);
        for (size_t i = c; i < kRounds * wl.size(); i += kClients) {
          serve::EstimateRequest request;
          request.twig = wl[i % wl.size()].twig;
          request.algorithm = core::Algorithm::kMsh;
          serve::EstimateResponse response =
              service.SubmitAndWait(std::move(request));
          if (response.status.ok()) {
            waits[c].push_back(1e-3 *
                               static_cast<double>(response.queue_wait.count()));
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double served_seconds = SecondsSince(start);
    service.Shutdown(/*drain=*/true);

    std::vector<double> all_waits;
    for (const auto& w : waits) all_waits.insert(all_waits.end(), w.begin(),
                                                 w.end());
    std::sort(all_waits.begin(), all_waits.end());
    const auto quantile = [&](double q) {
      if (all_waits.empty()) return 0.0;
      return all_waits[static_cast<size_t>(
          q * static_cast<double>(all_waits.size() - 1))];
    };
    std::printf("  %-8zu %10.0f %11.2fx %12.1f %12.1f\n", workers,
                static_cast<double>(total) / served_seconds,
                served_seconds / direct_seconds, quantile(0.5),
                quantile(0.99));
  }

  // -- 3. Overload: open-loop burst past the queue, count the split.
  std::printf("\n== Overload (open loop, queue capacity 64, 1 worker) ==\n");
  serve::ServiceOptions sopt;
  sopt.num_workers = 1;
  sopt.queue_capacity = 64;
  serve::EstimateService service(&catalog, sopt);
  std::vector<std::future<serve::EstimateResponse>> in_flight;
  in_flight.reserve(4 * wl.size());
  for (size_t i = 0; i < 4 * wl.size(); ++i) {
    serve::EstimateRequest request;
    request.twig = wl[i % wl.size()].twig;
    in_flight.push_back(service.Submit(std::move(request)));
  }
  size_t served = 0, rejected = 0;
  for (auto& f : in_flight) {
    serve::EstimateResponse response = f.get();
    if (response.status.ok()) {
      ++served;
    } else {
      ++rejected;
    }
  }
  service.Shutdown(/*drain=*/true);
  std::printf("  %zu submitted: %zu served, %zu rejected (every request "
              "answered)\n",
              in_flight.size(), served, rejected);
  return 0;
}
