// Serving-layer benchmark (DESIGN.md §10): what does putting the
// estimator behind the snapshot catalog + bounded queue + worker pool
// cost, and how does the queue behave at and past saturation?
//
//   1. Baseline: direct TwigEstimator calls on the caller thread.
//   2. Served throughput: closed-loop clients (each waits for its
//      response before sending the next) against the EstimateService,
//      sweeping worker counts — per-request overhead is the gap to the
//      baseline.
//   3. Overload: an open-loop burst far past queue capacity; every
//      request is answered (estimate or structured rejection), and the
//      split shows the admission discipline doing its job.
//
// --zipf runs the result-cache comparison instead: the same
// Zipf-skewed request sequence against an uncached and a cached
// service at equal worker counts, verifying every answer (hit or
// compute) against the direct estimator and reporting the speedup.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cst/paged_cst.h"
#include "exp/harness.h"
#include "util/strings.h"
#include "xml/xml.h"
#include "obs/metrics.h"
#include "serve/retry.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "util/failpoint.h"
#include "util/flags.h"

namespace {

using namespace twig;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

uint64_t NanosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

/// One "  <label>: p50 ... us" line from a request-latency histogram
/// (log2 buckets, so percentiles are within a factor of 2).
void PrintLatencyLine(const char* label, const obs::HistogramSnapshot& h) {
  const obs::LatencyPercentiles p = obs::SummarizeLatency(h);
  std::printf("  %-9s p50 %8.1f us | p95 %8.1f us | p99 %8.1f us "
              "(mean %.1f us over %llu)\n",
              label, p.p50_us, p.p95_us, p.p99_us, p.mean_us,
              static_cast<unsigned long long>(p.count));
}

constexpr char kUsage[] =
    "usage: bench_serve [--zipf | --faults=P | --cold-start | --tenants]\n"
    "                   [--count=N] [--workers=N] [--retries=N] [--bytes=N]\n"
    "                   [--buffer-mb=F]\n"
    "  --zipf       run the Zipf-workload result-cache comparison\n"
    "  --tenants    run the multi-tenant fairness benchmark: weighted\n"
    "               tenants under saturating closed-loop load; reports\n"
    "               per-tenant p50/p95/p99 and the fairness ratio\n"
    "  --faults=P   run the goodput-under-faults comparison: inject\n"
    "               estimate faults with probability P (e.g. 0.1) and\n"
    "               measure goodput with and without client retry\n"
    "  --cold-start compare time-to-first-answer from a serialized CST:\n"
    "               TWCST02 full deserialize vs TWCST03 mmap + page-in\n"
    "  --count=N    zipf/faults: total requests per run (default 20000)\n"
    "  --workers=N  zipf/faults: estimation workers (default 2)\n"
    "  --retries=N  faults: retry attempts per request (default 3)\n"
    "  --bytes=N    cold-start: generated data size (default 8388608)\n"
    "  --buffer-mb=F cold-start: TWCST03 buffer pool MiB (default 16)\n";

/// One closed-loop run of `sequence` (indices into `wl`) against a
/// service configured with `cache_entries`. Returns elapsed seconds;
/// tallies cache hits and answers that differ from `expected`.
double RunZipfLoop(serve::SnapshotCatalog* catalog,
                   const workload::Workload& wl,
                   const std::vector<size_t>& sequence,
                   const std::vector<double>& expected, size_t workers,
                   size_t cache_entries, std::atomic<size_t>* hits,
                   std::atomic<size_t>* mismatches,
                   obs::HistogramSnapshot* latency) {
  serve::ServiceOptions sopt;
  sopt.num_workers = workers;
  sopt.cache_entries = cache_entries;
  serve::EstimateService service(catalog, sopt);

  constexpr size_t kClients = 4;
  std::vector<obs::HistogramSnapshot> client_latency(kClients);
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < sequence.size(); i += kClients) {
        const size_t query = sequence[i];
        serve::EstimateRequest request;
        request.twig = wl[query].twig;
        request.algorithm = core::Algorithm::kMsh;
        const Clock::time_point sent = Clock::now();
        serve::EstimateResponse response =
            service.SubmitAndWait(std::move(request));
        client_latency[c].Record(NanosSince(sent));
        if (!response.status.ok()) continue;
        if (response.cached) hits->fetch_add(1, std::memory_order_relaxed);
        // Bit-identical, not approximately equal: a cache hit is the
        // stored double, a compute is deterministic on one snapshot.
        if (response.estimate != expected[query]) {
          mismatches->fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = SecondsSince(start);
  service.Shutdown(/*drain=*/true);
  for (const obs::HistogramSnapshot& h : client_latency) latency->Merge(h);
  return seconds;
}

int RunZipf(size_t count, size_t workers) {
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp,
                                     exp::kDefaultDblpBytes, 20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 200;
  wopt.seed = 1789;
  const workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);

  serve::SnapshotCatalog catalog;
  catalog.Publish(exp::BuildCstAtFraction(ds, 0.01), "dblp @ 1%");
  const auto snapshot = catalog.Current();

  // Ground truth: the direct estimator on the same snapshot.
  core::TwigEstimator direct(snapshot->summary.get());
  std::vector<double> expected(wl.size());
  for (size_t i = 0; i < wl.size(); ++i) {
    expected[i] = direct.Estimate(wl[i].twig, core::Algorithm::kMsh);
  }

  // A fixed Zipf(s=1.1) sequence over query ranks: a few hot queries
  // dominate, the tail keeps the cache honest. Both runs replay the
  // identical sequence.
  std::vector<double> weights(wl.size());
  for (size_t rank = 0; rank < wl.size(); ++rank) {
    weights[rank] = 1.0 / std::pow(static_cast<double>(rank + 1), 1.1);
  }
  std::mt19937_64 rng(424242);
  std::discrete_distribution<size_t> zipf(weights.begin(), weights.end());
  std::vector<size_t> sequence(count);
  for (size_t& index : sequence) index = zipf(rng);

  std::printf("== Zipf workload, result cache on vs off (%zu requests, "
              "%zu workers, 4 clients) ==\n",
              count, workers);
  std::atomic<size_t> uncached_hits{0}, uncached_mismatches{0};
  obs::HistogramSnapshot uncached_latency;
  const double uncached_seconds =
      RunZipfLoop(&catalog, wl, sequence, expected, workers,
                  /*cache_entries=*/0, &uncached_hits, &uncached_mismatches,
                  &uncached_latency);
  std::atomic<size_t> cached_hits{0}, cached_mismatches{0};
  obs::HistogramSnapshot cached_latency;
  const double cached_seconds =
      RunZipfLoop(&catalog, wl, sequence, expected, workers,
                  /*cache_entries=*/4096, &cached_hits, &cached_mismatches,
                  &cached_latency);

  const double n = static_cast<double>(count);
  std::printf("  uncached: %8.0f req/s (%zu mismatches)\n",
              n / uncached_seconds, uncached_mismatches.load());
  std::printf("  cached:   %8.0f req/s, %zu hits (%zu mismatches)\n",
              n / cached_seconds, cached_hits.load(),
              cached_mismatches.load());
  PrintLatencyLine("uncached", uncached_latency);
  PrintLatencyLine("cached", cached_latency);
  const double speedup = uncached_seconds / cached_seconds;
  std::printf("  speedup: %.2fx\n", speedup);
  const bool ok = uncached_mismatches.load() == 0 &&
                  cached_mismatches.load() == 0 && cached_hits.load() > 0;
  if (!ok) std::printf("  FAILED: cache served a wrong or zero answer\n");
  return ok ? 0 : 1;
}

/// Tallies for one goodput run (4 closed-loop clients, merged).
struct FaultTally {
  std::atomic<size_t> ok{0};
  std::atomic<size_t> failed{0};
  std::atomic<size_t> retried{0};
  std::atomic<size_t> mismatches{0};
};

/// One closed-loop run of `count` requests against `catalog` with the
/// serve/estimate failpoint armed; `policy` nullptr = no retry.
double RunFaultLoop(serve::SnapshotCatalog* catalog,
                    const workload::Workload& wl,
                    const std::vector<double>& expected, size_t count,
                    size_t workers, serve::RetryPolicy* policy,
                    FaultTally* tally) {
  serve::ServiceOptions sopt;
  sopt.num_workers = workers;
  serve::EstimateService service(catalog, sopt);

  constexpr size_t kClients = 4;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < count; i += kClients) {
        const size_t query = i % wl.size();
        for (int attempt = 1;; ++attempt) {
          serve::EstimateRequest request;
          request.twig = wl[query].twig;
          request.algorithm = core::Algorithm::kMsh;
          serve::EstimateResponse response =
              service.SubmitAndWait(std::move(request));
          if (response.status.ok()) {
            tally->ok.fetch_add(1, std::memory_order_relaxed);
            if (response.estimate != expected[query]) {
              tally->mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            if (policy != nullptr) policy->RecordSuccess();
            break;
          }
          const std::optional<std::chrono::milliseconds> backoff =
              policy == nullptr
                  ? std::nullopt
                  : policy->NextBackoff(response.status, attempt,
                                        Clock::time_point::max(),
                                        response.retry_after);
          if (!backoff.has_value()) {
            tally->failed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          tally->retried.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(*backoff);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = SecondsSince(start);
  service.Shutdown(/*drain=*/true);
  return seconds;
}

int RunFaults(size_t count, size_t workers, double fault_rate,
              size_t retries) {
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp,
                                     exp::kDefaultDblpBytes, 20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 200;
  wopt.seed = 1789;
  const workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);

  serve::SnapshotCatalog catalog;
  catalog.Publish(exp::BuildCstAtFraction(ds, 0.01), "dblp @ 1%");
  const auto snapshot = catalog.Current();
  core::TwigEstimator direct(snapshot->summary.get());
  std::vector<double> expected(wl.size());
  for (size_t i = 0; i < wl.size(); ++i) {
    expected[i] = direct.Estimate(wl[i].twig, core::Algorithm::kMsh);
  }

  char spec[64];
  std::snprintf(spec, sizeof(spec), "error:%g", fault_rate);
  if (Status status =
          util::FailpointRegistry::Get().Configure("serve/estimate", spec);
      !status.ok()) {
    std::fprintf(stderr, "bench_serve: --faults: %s\n",
                 status.ToString().c_str());
    return 2;
  }

  std::printf("== Goodput under injected faults (serve/estimate=error:%g, "
              "%zu requests, %zu workers, 4 clients) ==\n",
              fault_rate, count, workers);
  FaultTally bare;
  const double bare_seconds = RunFaultLoop(&catalog, wl, expected, count,
                                           workers, nullptr, &bare);
  serve::RetryOptions ropt;
  ropt.max_attempts = static_cast<int>(retries) + 1;
  serve::RetryPolicy policy(ropt);
  FaultTally retried;
  const double retry_seconds = RunFaultLoop(&catalog, wl, expected, count,
                                            workers, &policy, &retried);
  util::FailpointRegistry::Get().Reset();

  const double n = static_cast<double>(count);
  const double bare_goodput = static_cast<double>(bare.ok.load()) / n;
  const double retry_goodput = static_cast<double>(retried.ok.load()) / n;
  std::printf("  no retry:  %8.0f req/s | goodput %6.2f%% (%zu failed)\n",
              n / bare_seconds, 100 * bare_goodput, bare.failed.load());
  std::printf("  retry x%zu:  %8.0f req/s | goodput %6.2f%% (%zu failed, "
              "%zu retries)\n",
              retries, n / retry_seconds, 100 * retry_goodput,
              retried.failed.load(), retried.retried.load());
  const size_t mismatches = bare.mismatches.load() + retried.mismatches.load();
  if (mismatches > 0) {
    std::printf("  FAILED: %zu served answers differed from direct\n",
                mismatches);
    return 1;
  }
  // The acceptance bar: with retry enabled, a 10%% fault rate must not
  // cost more than 10%% goodput. Higher injected rates are exploratory.
  if (fault_rate <= 0.1 && retry_goodput < 0.9) {
    std::printf("  FAILED: goodput %.2f%% < 90%% with retry enabled\n",
                100 * retry_goodput);
    return 1;
  }
  return 0;
}

// ------------------------------------------------------ tenant fairness

/// Weighted tenants under saturating closed-loop load: every tenant
/// keeps the shared queue non-empty, so the deficit-round-robin drain
/// should divide worker time in proportion to weight. Reports each
/// tenant's throughput share against its weighted entitlement plus
/// client-observed latency percentiles; the fairness ratio is
/// min(observed share / entitled share) across tenants — 1.0 is a
/// perfect weight-proportional split.
int RunTenants(size_t count, size_t workers) {
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp,
                                     exp::kDefaultDblpBytes, 20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 200;
  wopt.seed = 1789;
  const workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);

  serve::SnapshotCatalog catalog;
  catalog.Publish(exp::BuildCstAtFraction(ds, 0.01), "dblp @ 1%");

  struct TenantSpec {
    const char* name;
    double weight;
  };
  constexpr TenantSpec kTenants[] = {
      {"gold", 4}, {"silver", 2}, {"bronze", 1}};
  constexpr size_t kNumTenants = sizeof(kTenants) / sizeof(kTenants[0]);
  double weight_sum = 0;
  serve::ServiceOptions sopt;
  sopt.num_workers = workers;
  sopt.queue_capacity = 64;
  sopt.cache_entries = 0;  // every request does real work
  for (const TenantSpec& t : kTenants) {
    serve::TenantQuota quota;
    quota.rate = 0;  // unlimited: isolate the DRR weight split
    quota.burst = 8;
    quota.weight = t.weight;
    sopt.tenants.overrides[t.name] = quota;
    weight_sum += t.weight;
  }
  serve::EstimateService service(&catalog, sopt);

  // Identical client pressure per tenant; only the weights differ, so
  // any throughput skew is the queue's doing.
  constexpr size_t kClientsPerTenant = 8;
  std::atomic<size_t> total{0};
  std::atomic<bool> stop{false};
  std::atomic<size_t> served[kNumTenants] = {};
  std::atomic<size_t> errors[kNumTenants] = {};
  std::vector<obs::HistogramSnapshot> latency(kNumTenants *
                                              kClientsPerTenant);
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kNumTenants; ++t) {
    for (size_t c = 0; c < kClientsPerTenant; ++c) {
      clients.emplace_back([&, t, c] {
        size_t i = (t * kClientsPerTenant + c) * 31;
        while (!stop.load(std::memory_order_relaxed)) {
          serve::EstimateRequest request;
          request.twig = wl[i++ % wl.size()].twig;
          request.algorithm = core::Algorithm::kMsh;
          request.tenant = kTenants[t].name;
          const Clock::time_point sent = Clock::now();
          serve::EstimateResponse response =
              service.SubmitAndWait(std::move(request));
          if (response.status.ok()) {
            latency[t * kClientsPerTenant + c].Record(NanosSince(sent));
            served[t].fetch_add(1, std::memory_order_relaxed);
          } else {
            errors[t].fetch_add(1, std::memory_order_relaxed);
          }
          if (total.fetch_add(1, std::memory_order_relaxed) + 1 >= count) {
            stop.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  for (std::thread& th : clients) th.join();
  const double seconds = SecondsSince(start);
  service.Shutdown(/*drain=*/true);

  size_t total_served = 0;
  for (size_t t = 0; t < kNumTenants; ++t) total_served += served[t].load();
  std::printf("== Tenant fairness (weights 4:2:1, %zu workers, %zu "
              "closed-loop clients per tenant, %zu requests) ==\n",
              workers, kClientsPerTenant, count);
  std::printf("  %-8s %7s %9s %8s %8s %10s %10s %10s\n", "tenant", "weight",
              "served", "share", "ideal", "p50 us", "p95 us", "p99 us");
  double fairness = 1e30;
  for (size_t t = 0; t < kNumTenants; ++t) {
    obs::HistogramSnapshot merged;
    for (size_t c = 0; c < kClientsPerTenant; ++c) {
      merged.Merge(latency[t * kClientsPerTenant + c]);
    }
    const obs::LatencyPercentiles p = obs::SummarizeLatency(merged);
    const double share = total_served == 0
                             ? 0
                             : static_cast<double>(served[t].load()) /
                                   static_cast<double>(total_served);
    const double ideal = kTenants[t].weight / weight_sum;
    fairness = std::min(fairness, share / ideal);
    std::printf("  %-8s %7.0f %9zu %7.1f%% %7.1f%% %10.1f %10.1f %10.1f\n",
                kTenants[t].name, kTenants[t].weight, served[t].load(),
                100 * share, 100 * ideal, p.p50_us, p.p95_us, p.p99_us);
  }
  std::printf("  throughput: %.0f req/s aggregate\n",
              static_cast<double>(total_served) / seconds);
  std::printf("  fairness ratio (min observed/entitled share): %.2f\n",
              fairness);
  size_t total_errors = 0;
  for (size_t t = 0; t < kNumTenants; ++t) total_errors += errors[t].load();
  if (total_errors > 0) {
    std::printf("  note: %zu requests rejected (queue full under burst)\n",
                total_errors);
  }
  // Loose acceptance bar — this is a benchmark, not a unit test, but a
  // tenant landing under half its entitlement means the weighted drain
  // is not doing its job.
  if (fairness < 0.5) {
    std::printf("  FAILED: fairness ratio %.2f < 0.5\n", fairness);
    return 1;
  }
  return 0;
}

// ----------------------------------------------------------- cold start

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

bool WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return static_cast<bool>(out);
}

/// Time-to-first-answer from a serialized CST on disk: the whole-blob
/// TWCST02 path (read the file, deserialize everything, answer) versus
/// the paged TWCST03 path (mmap, pin the handful of pages one walk
/// touches, answer). The paged path's advantage grows with store size
/// — it does O(query) work where deserialization does O(store).
int RunColdStart(size_t bytes, double buffer_mb) {
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp, bytes,
                                     20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 8;
  wopt.seed = 1789;
  const workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);

  // Full (unpruned) summary: the store scales with the data, which is
  // the regime where paging pays — deserialization is O(store), the
  // paged first answer is O(pages one walk touches).
  const cst::Cst memory = exp::BuildCstAtFraction(ds, 1.0);
  const std::string blob02 = memory.Serialize();
  auto blob03 = memory.SerializePaged();
  if (!blob03.ok()) {
    std::printf("FAILED: %s\n", blob03.status().ToString().c_str());
    return 1;
  }
  const std::string path02 = TempPath("bench_serve_cold.twcst02");
  const std::string path03 = TempPath("bench_serve_cold.twcst03");
  if (!WriteFile(path02, blob02) || !WriteFile(path03, blob03.value())) {
    std::printf("FAILED: cannot write stores under $TMPDIR\n");
    return 1;
  }
  std::printf("== cold start: time to first answer (data %s, TWCST02 "
              "%s, TWCST03 %s) ==\n",
              HumanBytes(xml::XmlByteSize(ds.tree)).c_str(),
              HumanBytes(blob02.size()).c_str(),
              HumanBytes(blob03.value().size()).c_str());

  const size_t pool_bytes =
      static_cast<size_t>(buffer_mb * 1024.0 * 1024.0);
  constexpr int kTrials = 5;
  double parse_seconds = 1e30;
  double paged_seconds = 1e30;
  double parse_answer = 0;
  double paged_answer = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    {
      const Clock::time_point start = Clock::now();
      std::ifstream in(path02, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      auto cst = cst::Cst::Deserialize(buffer.str());
      if (!cst.ok()) {
        std::printf("FAILED: %s\n", cst.status().ToString().c_str());
        return 1;
      }
      const core::TwigEstimator estimator(&cst.value());
      parse_answer = estimator.Estimate(wl[0].twig, core::Algorithm::kMsh);
      parse_seconds = std::min(parse_seconds, SecondsSince(start));
    }
    {
      const Clock::time_point start = Clock::now();
      cst::PagedCstOptions popt;
      popt.pool_bytes = pool_bytes;
      auto paged = cst::PagedCst::OpenFile(path03, popt);
      if (!paged.ok()) {
        std::printf("FAILED: %s\n", paged.status().ToString().c_str());
        return 1;
      }
      const core::TwigEstimator estimator(paged.value().get());
      paged_answer = estimator.Estimate(wl[0].twig, core::Algorithm::kMsh);
      paged_seconds = std::min(paged_seconds, SecondsSince(start));
    }
  }
  std::remove(path02.c_str());
  std::remove(path03.c_str());

  std::printf("  TWCST02 parse: %9.3f ms to first answer\n",
              1e3 * parse_seconds);
  std::printf("  TWCST03 mmap:  %9.3f ms to first answer "
              "(buffer %.1f MiB)\n",
              1e3 * paged_seconds, buffer_mb);
  std::printf("  speedup: %.1fx\n", parse_seconds / paged_seconds);
  if (parse_answer != paged_answer) {
    std::printf("  FAILED: paged answer %.17g != parsed %.17g\n",
                paged_answer, parse_answer);
    return 1;
  }
  std::printf("  answers bit-identical: %.6g\n", parse_answer);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool zipf = false;
  bool tenants = false;
  bool cold_start = false;
  double faults = 0;
  size_t zipf_count = 20000;
  size_t zipf_workers = 2;
  size_t retries = 3;
  size_t cold_bytes = 8 * 1024 * 1024;
  double buffer_mb = 16;
  util::FlagParser flags("bench_serve", kUsage);
  flags.Bool("zipf", &zipf);
  flags.Bool("tenants", &tenants);
  flags.Bool("cold-start", &cold_start);
  flags.Double("faults", &faults);
  flags.Size("count", &zipf_count);
  flags.Size("workers", &zipf_workers);
  flags.Size("retries", &retries);
  flags.Size("bytes", &cold_bytes);
  flags.Double("buffer-mb", &buffer_mb);
  if (int code = flags.Parse(argc, argv); code >= 0) return code;
  if (faults < 0 || faults > 1) {
    std::fprintf(stderr, "bench_serve: --faults must be in [0, 1]\n");
    return 2;
  }
  if (cold_start) return RunColdStart(cold_bytes, buffer_mb);
  if (tenants) {
    return RunTenants(zipf_count, std::max<size_t>(1, zipf_workers));
  }
  if (zipf) return RunZipf(zipf_count, std::max<size_t>(1, zipf_workers));
  if (faults > 0) {
    return RunFaults(zipf_count, std::max<size_t>(1, zipf_workers), faults,
                     retries);
  }
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp,
                                     exp::kDefaultDblpBytes, 20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 200;
  wopt.seed = 1789;
  const workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);

  serve::SnapshotCatalog catalog;
  catalog.Publish(exp::BuildCstAtFraction(ds, 0.01), "dblp @ 1%");
  const std::shared_ptr<const serve::CstSnapshot> snapshot = catalog.Current();

  constexpr size_t kRounds = 10;  // passes over the workload per run

  // -- 1. Baseline: the estimator with no serving machinery around it.
  core::TwigEstimator direct(snapshot->summary.get());
  obs::HistogramSnapshot direct_latency;
  Clock::time_point start = Clock::now();
  for (size_t round = 0; round < kRounds; ++round) {
    for (const auto& wq : wl) {
      const Clock::time_point sent = Clock::now();
      direct.Estimate(wq.twig, core::Algorithm::kMsh);
      direct_latency.Record(NanosSince(sent));
    }
  }
  const double direct_seconds = SecondsSince(start);
  const size_t total = kRounds * wl.size();
  std::printf("== Direct estimator baseline (MSH, 1%% space) ==\n");
  std::printf("  %zu estimates in %.3f s: %.0f/s, %.1f us each\n", total,
              direct_seconds, static_cast<double>(total) / direct_seconds,
              1e6 * direct_seconds / static_cast<double>(total));
  PrintLatencyLine("direct", direct_latency);
  std::printf("\n");

  // -- 2. Served, closed loop: sweep the worker count. Request latency
  // is the client-observed submit-to-response time (queue wait +
  // execution + hand-off), per-client histograms merged after the run.
  std::printf("== Served throughput (closed loop, 4 client threads) ==\n");
  std::printf("  %-8s %10s %12s %12s %12s %12s\n", "workers", "req/s",
              "vs direct", "p50 us", "p95 us", "p99 us");
  for (size_t workers : {1, 2, 4}) {
    serve::ServiceOptions sopt;
    sopt.num_workers = workers;
    serve::EstimateService service(&catalog, sopt);

    constexpr size_t kClients = 4;
    std::vector<obs::HistogramSnapshot> client_latency(kClients);
    start = Clock::now();
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t i = c; i < kRounds * wl.size(); i += kClients) {
          serve::EstimateRequest request;
          request.twig = wl[i % wl.size()].twig;
          request.algorithm = core::Algorithm::kMsh;
          const Clock::time_point sent = Clock::now();
          serve::EstimateResponse response =
              service.SubmitAndWait(std::move(request));
          if (response.status.ok()) {
            client_latency[c].Record(NanosSince(sent));
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double served_seconds = SecondsSince(start);
    service.Shutdown(/*drain=*/true);

    obs::HistogramSnapshot latency;
    for (const obs::HistogramSnapshot& h : client_latency) latency.Merge(h);
    const obs::LatencyPercentiles p = obs::SummarizeLatency(latency);
    std::printf("  %-8zu %10.0f %11.2fx %12.1f %12.1f %12.1f\n", workers,
                static_cast<double>(total) / served_seconds,
                served_seconds / direct_seconds, p.p50_us, p.p95_us,
                p.p99_us);
  }

  // -- 3. Overload: open-loop burst past the queue, count the split.
  std::printf("\n== Overload (open loop, queue capacity 64, 1 worker) ==\n");
  serve::ServiceOptions sopt;
  sopt.num_workers = 1;
  sopt.queue_capacity = 64;
  serve::EstimateService service(&catalog, sopt);
  std::vector<std::future<serve::EstimateResponse>> in_flight;
  in_flight.reserve(4 * wl.size());
  for (size_t i = 0; i < 4 * wl.size(); ++i) {
    serve::EstimateRequest request;
    request.twig = wl[i % wl.size()].twig;
    in_flight.push_back(service.Submit(std::move(request)));
  }
  size_t served = 0, rejected = 0;
  for (auto& f : in_flight) {
    serve::EstimateResponse response = f.get();
    if (response.status.ok()) {
      ++served;
    } else {
      ++rejected;
    }
  }
  service.Shutdown(/*drain=*/true);
  std::printf("  %zu submitted: %zu served, %zu rejected (every request "
              "answered)\n",
              in_flight.size(), served, rejected);
  return 0;
}
