// Figure 7: root mean squared error (log10) for *negative* queries
// (true count 0) as space grows — (a) DBLP, (b) SWISS-PROT.
//
// Expected shapes: Greedy is strong from the start (multiplying small
// piece probabilities drives the product toward the true zero);
// MOSH / MSH improve quickly with space and overtake Greedy; pure MO
// and Leaf are hurt by the amplification effect of conditioning on
// overlapping subpaths with very small counts; PMOSH is unstable.

#include <cstdio>
#include <string>
#include <vector>

#include "exp/harness.h"

namespace {

using namespace twig;

void RunPanel(exp::DatasetKind kind, size_t bytes,
              const std::vector<double>& fractions, const char* title) {
  exp::Dataset ds = exp::MakeDataset(kind, bytes, /*seed=*/20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 1000;
  wopt.seed = 4242;
  workload::Workload wl = workload::GenerateNegative(ds.tree, wopt);

  std::printf("\n%s — %s data, %zu negative queries (true count 0)\n", title,
              ds.name.c_str(), wl.size());
  std::vector<std::string> names;
  for (core::Algorithm a : core::kAllAlgorithms) {
    names.push_back(core::AlgorithmName(a));
  }
  exp::PrintSeriesHeader("space", names);
  for (double fraction : fractions) {
    cst::Cst summary = exp::BuildCstAtFraction(ds, fraction);
    std::vector<double> row;
    for (const auto& eval : exp::EvaluateAll(summary, wl)) {
      row.push_back(stats::ErrorAccumulator::Log10(eval.errors.Rmse()));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f%%", fraction * 100);
    exp::PrintSeriesRow(label, row);
  }
}

}  // namespace

int main() {
  std::printf(
      "== Figure 7: negative queries, log10(RMSE) vs space ==\n");
  RunPanel(exp::DatasetKind::kDblp, exp::kDefaultDblpBytes,
           {0.002, 0.004, 0.006, 0.008, 0.01}, "(a)");
  RunPanel(exp::DatasetKind::kSwissProt, exp::kDefaultSwissProtBytes,
           {0.01, 0.02, 0.03, 0.04, 0.05}, "(b)");
  return 0;
}
