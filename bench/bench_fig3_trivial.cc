// Figure 3: average relative squared error (log10) for *trivial*
// (single-path) queries on the DBLP data set, Leaf vs pure MO, as the
// summary space grows (paper sweep: 0.02%..0.1%).
//
// The point of the figure: Leaf ignores path context, so a value
// string's count is taken over every context it occurs in
// ("Stonebraker" in cite vs book.author), making it orders of
// magnitude worse than MO — path information matters.

#include <cstdio>
#include <vector>

#include "exp/harness.h"

int main() {
  using namespace twig;
  std::printf("== Figure 3: trivial (single-path) queries, DBLP, Leaf vs MO "
              "==\n");
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp,
                                     exp::kDefaultDblpBytes, 20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 1000;
  wopt.seed = 331;
  workload::Workload wl = workload::GenerateTrivial(ds.tree, wopt);
  std::printf("%zu trivial queries over %zu-node tree\n", wl.size(),
              ds.tree.size());

  exp::PrintSeriesHeader("space", {"Leaf", "MO"});
  for (double fraction : {0.0002, 0.0004, 0.0006, 0.0008, 0.001}) {
    cst::Cst summary = exp::BuildCstAtFraction(ds, fraction);
    std::vector<double> row;
    for (core::Algorithm algorithm :
         {core::Algorithm::kLeaf, core::Algorithm::kMo}) {
      auto eval = exp::EvaluateOne(summary, wl, algorithm);
      row.push_back(stats::ErrorAccumulator::Log10(
          eval.errors.AvgRelativeSquaredError()));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.3f%%", fraction * 100);
    exp::PrintSeriesRow(label, row);
  }
  std::printf("\nExpected shape: MO orders of magnitude more accurate than "
              "Leaf\n(path context disambiguates value strings).\n");
  return 0;
}
