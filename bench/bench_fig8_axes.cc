// Figure 8 (extension): estimation accuracy once the query language is
// opened to wildcard (`*`) and descendant (`//`) axes — not in the
// paper, whose workloads are child-edge twigs with concrete tags.
//
// Axes workloads generalize positive queries (GenerateAxes), so every
// query still matches and has an exact occurrence truth. Each panel
// fixes a (wildcard, descendant) rewrite mix and sweeps summary space;
// rows are log10(avg relative squared error) per algorithm, as in
// Figure 4. Queries whose frontier aggregation exceeds the walker's
// budget fail with a structured error and are reported as failures —
// never averaged in as silent zeros.

#include <cstdio>
#include <string>
#include <vector>

#include "exp/harness.h"

namespace {

using namespace twig;

struct AxisMix {
  const char* title;
  double wildcard;
  double descendant;
};

void RunPanel(const exp::Dataset& ds, const AxisMix& mix,
              const std::vector<double>& fractions) {
  workload::WorkloadOptions wopt;
  wopt.num_queries = 400;
  wopt.seed = 1789;
  wopt.wildcard_probability = mix.wildcard;
  wopt.descendant_probability = mix.descendant;
  workload::Workload wl = workload::GenerateAxes(ds.tree, wopt);

  std::printf("\n%s — wildcard p=%.1f, descendant p=%.1f, %zu queries\n",
              mix.title, mix.wildcard, mix.descendant, wl.size());
  std::vector<std::string> names;
  for (core::Algorithm a : core::kAllAlgorithms) {
    names.push_back(core::AlgorithmName(a));
  }
  exp::PrintSeriesHeader("space", names);
  for (double fraction : fractions) {
    cst::Cst summary = exp::BuildCstAtFraction(ds, fraction);
    std::vector<double> row;
    for (const auto& eval : exp::EvaluateAll(summary, wl)) {
      row.push_back(stats::ErrorAccumulator::Log10(
          eval.errors.AvgRelativeSquaredError()));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f%%", fraction * 100);
    exp::PrintSeriesRow(label, row);
  }

  cst::Cst summary = exp::BuildCstAtFraction(ds, fractions.back());
  std::printf("avg relative error at %.1f%% space:\n",
              fractions.back() * 100);
  for (core::Algorithm algorithm : core::kAllAlgorithms) {
    stats::BatchStats stats;
    const exp::AlgorithmEval eval =
        exp::EvaluateOne(summary, wl, algorithm, /*num_threads=*/1, &stats);
    std::printf("  %-8s %6.1f%%  (%zu estimated, %zu failed)\n",
                core::AlgorithmName(algorithm),
                100 * eval.errors.AvgRelativeError(), eval.errors.count(),
                stats.queries_failed);
  }
}

}  // namespace

int main() {
  std::printf("== Figure 8: wildcard / descendant axes, log10(avg relative "
              "squared error) vs space ==\n");
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp,
                                     exp::kDefaultDblpBytes,
                                     /*seed=*/20010402);
  std::printf("%s data, %zu nodes\n", ds.name.c_str(), ds.tree.size());
  const std::vector<double> fractions = {0.002, 0.005, 0.01};
  const AxisMix mixes[] = {
      {"(baseline) child edges only", 0.0, 0.0},
      {"(a) wildcards", 0.3, 0.0},
      {"(b) descendant edges", 0.0, 0.3},
      {"(c) both axes", 0.3, 0.3},
  };
  for (const AxisMix& mix : mixes) RunPanel(ds, mix, fractions);
  return 0;
}
