// Ablations for the design choices DESIGN.md calls out:
//   1. signature length (resolution vs node budget trade-off),
//   2. duplicate-aware occurrence scaling (our extension to Section 5),
//   3. signatures-on-all-nodes (the alternative the paper considered
//      and rejected in Section 3): modeled by its cost — how many
//      fewer subpaths fit the same budget when character-only nodes
//      also pay for a signature.

#include <cstdio>
#include <vector>

#include "exp/harness.h"

int main() {
  using namespace twig;
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp,
                                     exp::kDefaultDblpBytes, 20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 500;
  wopt.seed = 1789;
  workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);

  std::printf("== Ablation 1: signature length at 1%% space (MSH) ==\n");
  exp::PrintSeriesHeader("length", {"CST nodes", "rel err", "log10(sqerr)"});
  stats::BatchStats batch_stats;
  for (size_t length : {16, 32, 64, 128, 256}) {
    cst::Cst c = exp::BuildCstAtFraction(ds, 0.01, length);
    auto eval = exp::EvaluateOne(c, wl, core::Algorithm::kMsh,
                                 /*num_threads=*/1, &batch_stats);
    exp::PrintSeriesRow(std::to_string(length),
                        {static_cast<double>(c.node_count()),
                         eval.errors.AvgRelativeError(),
                         stats::ErrorAccumulator::Log10(
                             eval.errors.AvgRelativeSquaredError())});
  }
  exp::PrintBatchObservability(batch_stats);  // last row's batch

  std::printf("\n== Ablation 2: duplicate-aware occurrence scaling (MSH, 1%% "
              "space) ==\n");
  cst::Cst c = exp::BuildCstAtFraction(ds, 0.01);
  core::TwigEstimator estimator(&c);
  for (bool enabled : {false, true}) {
    stats::ErrorAccumulator errors;
    for (const auto& wq : wl) {
      // Drive the combiner directly to toggle the correction.
      core::ExpandedQuery eq = core::ExpandQuery(wq.twig, c);
      core::CombineOptions copt;
      copt.duplicate_aware_occurrence = enabled;
      core::Combiner combiner(eq, c, copt);
      auto pieces = core::MshDecompose(
          eq, core::ParseQuery(eq, c, core::ParseStrategy::kMaximal));
      errors.Add(wq.truth.occurrence, combiner.MoCombine(std::move(pieces)));
    }
    std::printf("  duplicate-aware=%d: rel err %.3f, log10(sqerr) %.3f\n",
                enabled ? 1 : 0, errors.AvgRelativeError(),
                stats::ErrorAccumulator::Log10(
                    errors.AvgRelativeSquaredError()));
  }

  std::printf("\n== Ablation 3: cost of signatures on all nodes (Section 3 "
              "alternative) ==\n");
  exp::PrintSeriesHeader("space", {"root-only nodes", "all-nodes nodes"});
  for (double fraction : {0.005, 0.01, 0.02}) {
    cst::Cst root_only = exp::BuildCstAtFraction(ds, fraction);
    // All-nodes variant: every node pays the signature, modeled by
    // folding the signature cost into bytes_per_node.
    cst::CstOptions all_opts;
    all_opts.space_budget_bytes = static_cast<size_t>(
        fraction * static_cast<double>(ds.xml_bytes));
    all_opts.bytes_per_node = 16 + 64 * 4;
    all_opts.bytes_per_signature_component = 0;
    cst::Cst all_nodes = cst::Cst::Build(ds.tree, ds.pst, all_opts);
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f%%", fraction * 100);
    exp::PrintSeriesRow(label,
                        {static_cast<double>(root_only.node_count()),
                         static_cast<double>(all_nodes.node_count())},
                        0);
  }
  std::printf("\nStoring signatures on every node (including character "
              "nodes) would\nretain far fewer subpaths at the same budget — "
              "the paper's reason to\nsign only subpath roots.\n");

  std::printf("\n== Process metrics snapshot (obs registry JSON) ==\n%s\n",
              exp::MetricsSnapshotJson().c_str());
  return 0;
}
