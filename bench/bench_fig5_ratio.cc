// Figure 5: (a) the distribution of estimate/true ratios over the
// paper's buckets (<0.1, <0.5, <1, <1.5, <10, >=10) at 1% space on
// DBLP — the paper's headline: Greedy / Leaf / pure MO underestimate
// by more than 10x on >95% of queries while MOSH / PMOSH / MSH center
// near the truth; (b) the percentage of queries whose twiglet
// decomposition differs between MOSH and MSH, as space grows.

#include <cstdio>
#include <vector>

#include "exp/harness.h"

int main() {
  using namespace twig;
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp,
                                     exp::kDefaultDblpBytes, 20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 1000;
  wopt.seed = 1789;
  workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);

  std::printf("== Figure 5(a): estimate/real ratio distribution (%% of "
              "queries), DBLP, 1%% space ==\n");
  cst::Cst summary = exp::BuildCstAtFraction(ds, 0.01);
  std::vector<std::string> labels;
  for (const char* l : stats::RatioHistogram::Labels()) labels.push_back(l);
  exp::PrintSeriesHeader("algorithm", labels);
  for (const auto& eval : exp::EvaluateAll(summary, wl)) {
    std::vector<double> row;
    for (size_t b = 0; b < stats::RatioHistogram::kBuckets; ++b) {
      row.push_back(eval.ratios.Percent(b));
    }
    exp::PrintSeriesRow(core::AlgorithmName(eval.algorithm), row, 1);
  }

  std::printf("\n== Figure 5(b): %% of queries parsed differently by MOSH vs "
              "MSH ==\n");
  exp::PrintSeriesHeader("space", {"% different"});
  for (double fraction : {0.002, 0.004, 0.006, 0.008, 0.01}) {
    cst::Cst c = exp::BuildCstAtFraction(ds, fraction);
    core::TwigEstimator estimator(&c);
    size_t different = 0;
    for (const auto& wq : wl) {
      if (estimator.DecompositionFingerprint(wq.twig, core::Algorithm::kMosh) !=
          estimator.DecompositionFingerprint(wq.twig, core::Algorithm::kMsh)) {
        ++different;
      }
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f%%", fraction * 100);
    exp::PrintSeriesRow(label,
                        {100.0 * static_cast<double>(different) /
                         static_cast<double>(wl.size())},
                        2);
  }
  return 0;
}
