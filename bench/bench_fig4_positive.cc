// Figure 4: average relative squared error (log10) of all six
// algorithms on positive, non-trivial queries, as the summary space
// grows — (a) DBLP at 0.2%..1%, (b) SWISS-PROT at 1%..5%.
//
// Also prints the average relative error at the largest budget, where
// the paper quotes "MOSH and MSH have 20% average relative error using
// 1% space; Greedy, Leaf, and pure MO ... about 100% error".

#include <cstdio>
#include <string>
#include <vector>

#include "exp/harness.h"
#include "util/strings.h"

namespace {

using namespace twig;

void RunPanel(exp::DatasetKind kind, size_t bytes,
              const std::vector<double>& fractions, const char* title) {
  exp::Dataset ds = exp::MakeDataset(kind, bytes, /*seed=*/20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 1000;
  wopt.seed = 1789;
  workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);

  std::printf("\n%s — %s data, %zu nodes, %zu positive queries\n", title,
              ds.name.c_str(), ds.tree.size(), wl.size());
  std::vector<std::string> names;
  for (core::Algorithm a : core::kAllAlgorithms) names.push_back(core::AlgorithmName(a));
  exp::PrintSeriesHeader("space", names);

  for (double fraction : fractions) {
    cst::Cst summary = exp::BuildCstAtFraction(ds, fraction);
    std::vector<double> row;
    for (const auto& eval : exp::EvaluateAll(summary, wl)) {
      row.push_back(stats::ErrorAccumulator::Log10(
          eval.errors.AvgRelativeSquaredError()));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f%%", fraction * 100);
    exp::PrintSeriesRow(label, row);
  }

  // The paper's headline numbers at the largest budget.
  cst::Cst summary = exp::BuildCstAtFraction(ds, fractions.back());
  std::printf("\navg relative error at %.1f%% space (CST: %zu nodes, %s):\n",
              fractions.back() * 100, summary.node_count(),
              HumanBytes(summary.size_bytes()).c_str());
  for (const auto& eval : exp::EvaluateAll(summary, wl)) {
    std::printf("  %-8s %6.1f%%\n", core::AlgorithmName(eval.algorithm),
                100 * eval.errors.AvgRelativeError());
  }
}

}  // namespace

int main() {
  std::printf("== Figure 4: positive queries, log10(avg relative squared "
              "error) vs space ==\n");
  RunPanel(exp::DatasetKind::kDblp, exp::kDefaultDblpBytes,
           {0.002, 0.004, 0.006, 0.008, 0.01}, "(a)");
  RunPanel(exp::DatasetKind::kSwissProt, exp::kDefaultSwissProtBytes,
           {0.01, 0.02, 0.03, 0.04, 0.05}, "(b)");
  return 0;
}
