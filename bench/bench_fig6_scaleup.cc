// Figure 6: (a) error of MOSH vs MSH restricted to the queries the two
// algorithms decompose differently; (b) scale-up — error of all
// algorithms as the amount of data extracted from the same source
// grows, at a fixed 2% summary space.
//
// Expected shapes: (a) MSH beats MOSH on the differently-parsed
// queries (balancing deep and bushy twiglets wins); (b) MOSH and MSH
// *improve* with data size (the unpruned summary grows sublinearly, so
// a fixed space percentage covers more of it), while the baselines
// show no clear trend.

#include <cstdio>
#include <vector>

#include "exp/harness.h"

int main() {
  using namespace twig;

  std::printf("== Figure 6(a): MOSH vs MSH on differently-parsed queries, "
              "DBLP ==\n");
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp,
                                     exp::kDefaultDblpBytes, 20010402);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 1000;
  wopt.seed = 1789;
  workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);

  exp::PrintSeriesHeader("space", {"#diff", "MOSH", "MSH"});
  for (double fraction : {0.004, 0.006, 0.008}) {
    cst::Cst c = exp::BuildCstAtFraction(ds, fraction);
    core::TwigEstimator estimator(&c);
    stats::ErrorAccumulator mosh_err;
    stats::ErrorAccumulator msh_err;
    size_t different = 0;
    for (const auto& wq : wl) {
      if (estimator.DecompositionFingerprint(wq.twig, core::Algorithm::kMosh) ==
          estimator.DecompositionFingerprint(wq.twig, core::Algorithm::kMsh)) {
        continue;
      }
      ++different;
      mosh_err.Add(wq.truth.occurrence,
                   estimator.Estimate(wq.twig, core::Algorithm::kMosh));
      msh_err.Add(wq.truth.occurrence,
                  estimator.Estimate(wq.twig, core::Algorithm::kMsh));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f%%", fraction * 100);
    exp::PrintSeriesRow(
        label,
        {static_cast<double>(different),
         stats::ErrorAccumulator::Log10(mosh_err.AvgRelativeSquaredError()),
         stats::ErrorAccumulator::Log10(msh_err.AvgRelativeSquaredError())});
  }

  std::printf("\n== Figure 6(b): scale-up — log10(avg rel. sq. error) vs "
              "data size at 2%% space ==\n");
  std::vector<std::string> names;
  for (core::Algorithm a : core::kAllAlgorithms) {
    names.push_back(core::AlgorithmName(a));
  }
  exp::PrintSeriesHeader("size", names);
  for (size_t mb : {1, 2, 4, 6, 8}) {
    exp::Dataset sized =
        exp::MakeDataset(exp::DatasetKind::kDblp, mb * 1024 * 1024, 20010402);
    workload::WorkloadOptions sized_wopt;
    sized_wopt.num_queries = 500;
    sized_wopt.seed = 1789;
    workload::Workload sized_wl =
        workload::GeneratePositive(sized.tree, sized_wopt);
    cst::Cst c = exp::BuildCstAtFraction(sized, 0.02);
    std::vector<double> row;
    for (const auto& eval : exp::EvaluateAll(c, sized_wl)) {
      row.push_back(stats::ErrorAccumulator::Log10(
          eval.errors.AvgRelativeSquaredError()));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%zu MB", mb);
    exp::PrintSeriesRow(label, row);
  }
  return 0;
}
