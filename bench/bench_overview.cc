// Table 1 (the algorithm property matrix) and the Section 5 worked
// example: estimating twig occurrences from presences under the
// uniformity assumption, on the paper's Figure 1 data tree.

#include <cstdio>

#include "core/estimator.h"
#include "cst/cst.h"
#include "match/matcher.h"
#include "query/twig.h"
#include "suffix/path_suffix_tree.h"
#include "tree/tree.h"

namespace {

using namespace twig;

/// The paper's Figure 1 DBLP fragment: three books.
tree::Tree FigureOneTree() {
  tree::Tree t;
  tree::NodeId dblp = t.AddRoot("dblp");
  auto add_book = [&](std::initializer_list<const char*> authors,
                      const char* title, const char* year) {
    tree::NodeId book = t.AddElement(dblp, "book");
    for (const char* a : authors) {
      t.AddValue(t.AddElement(book, "author"), a);
    }
    t.AddValue(t.AddElement(book, "title"), title);
    t.AddValue(t.AddElement(book, "year"), year);
  };
  add_book({"A1"}, "T1", "Y1");
  add_book({"A1", "A2"}, "T2", "Y1");
  add_book({"A1", "A2", "A3"}, "T3", "Y1");
  return t;
}

}  // namespace

int main() {
  std::printf("== Table 1: estimation algorithms ==\n");
  std::printf(
      "%-8s %-18s %-13s %-28s %s\n"
      "-------------------------------------------------------------------"
      "-----------\n"
      "%-8s %-18s %-13s %-28s %s\n"
      "%-8s %-18s %-13s %-28s %s\n"
      "%-8s %-18s %-13s %-28s %s\n"
      "%-8s %-18s %-13s %-28s %s\n"
      "%-8s %-18s %-13s %-28s %s\n"
      "%-8s %-18s %-13s %-28s %s\n",
      "Name", "Path Information", "Correlation", "Twiglets Formation",
      "Combination",
      "Leaf", "Not stored", "Not stored", "Single path", "MO",
      "Greedy", "Stored", "Not stored", "Single path", "Greedy",
      "MO", "Stored", "Not stored", "Single path", "MO",
      "MOSH", "Stored", "Stored", "Deep but often skinny", "MO",
      "PMOSH", "Stored", "Stored", "Bushy but often shallow", "MO",
      "MSH", "Stored", "Stored", "Deep/bushy balance", "MO");

  std::printf("\n== Section 5 example: occurrence estimation on the Figure 1 "
              "tree ==\n");
  tree::Tree data = FigureOneTree();
  auto pst = suffix::PathSuffixTree::Build(data);
  cst::CstOptions copt;
  copt.prune_threshold = 1;  // keep everything: the tree is tiny
  cst::Cst summary = cst::Cst::Build(data, pst, copt);

  auto twig = query::ParseTwig("book(author, year=\"Y1\")");
  const match::TwigCounts truth =
      match::CountTwigMatches(data, *twig).value();
  std::printf("query %s: true presence=%.0f, true occurrence=%.0f\n",
              query::FormatTwig(*twig).c_str(), truth.presence,
              truth.occurrence);
  core::TwigEstimator estimator(&summary);
  core::EstimateOptions presence_opts;
  presence_opts.semantics = core::CountSemantics::kPresence;
  core::EstimateOptions occurrence_opts;
  occurrence_opts.semantics = core::CountSemantics::kOccurrence;
  for (core::Algorithm algorithm : core::kAllAlgorithms) {
    std::printf("  %-7s presence=%6.2f  occurrence=%6.2f\n",
                core::AlgorithmName(algorithm),
                estimator.Estimate(*twig, algorithm, presence_opts),
                estimator.Estimate(*twig, algorithm, occurrence_opts));
  }
  std::printf("\nPaper's worked example: presence est 2.9 for the twiglet, "
              "occurrence\nscale (6/3)*(3/3) = 2 -> occurrence est ~5.8 vs "
              "true 6.\n");
  return 0;
}
