// Section 6.5 timings, as google-benchmark micro-benchmarks:
// construction (path suffix tree, CST at 1% space) and per-query
// estimation latency for each algorithm. The paper reports < 10 min
// construction for 50 MB / Pentium II and ~1 ms per estimate; on
// modern hardware both should be far faster at our scaled size.

#include <benchmark/benchmark.h>

#include "core/estimator.h"
#include "cst/cst.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "suffix/path_suffix_tree.h"
#include "workload/workload.h"
#include "xml/xml.h"

namespace {

using namespace twig;

constexpr size_t kDataBytes = 2 * 1024 * 1024;

const tree::Tree& SharedData() {
  static tree::Tree data = [] {
    data::DblpOptions options;
    options.target_bytes = kDataBytes;
    return data::GenerateDblp(options);
  }();
  return data;
}

const suffix::PathSuffixTree& SharedPst() {
  static suffix::PathSuffixTree pst =
      suffix::PathSuffixTree::Build(SharedData());
  return pst;
}

const cst::Cst& SharedCst() {
  static cst::Cst summary = [] {
    cst::CstOptions options;
    options.space_budget_bytes = xml::XmlByteSize(SharedData()) / 100;
    return cst::Cst::Build(SharedData(), SharedPst(), options);
  }();
  return summary;
}

const workload::Workload& SharedWorkload() {
  static workload::Workload wl = [] {
    workload::WorkloadOptions options;
    options.num_queries = 200;
    options.compute_true_counts = false;
    return workload::GeneratePositive(SharedData(), options);
  }();
  return wl;
}

void BM_BuildPathSuffixTree(benchmark::State& state) {
  const tree::Tree& data = SharedData();
  for (auto _ : state) {
    auto pst = suffix::PathSuffixTree::Build(data);
    benchmark::DoNotOptimize(pst.node_count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDataBytes));
}
BENCHMARK(BM_BuildPathSuffixTree)->Unit(benchmark::kMillisecond);

void BM_BuildCstAtOnePercent(benchmark::State& state) {
  const tree::Tree& data = SharedData();
  const auto& pst = SharedPst();
  cst::CstOptions options;
  options.space_budget_bytes = xml::XmlByteSize(data) / 100;
  for (auto _ : state) {
    auto summary = cst::Cst::Build(data, pst, options);
    benchmark::DoNotOptimize(summary.node_count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDataBytes));
}
BENCHMARK(BM_BuildCstAtOnePercent)->Unit(benchmark::kMillisecond);

void BM_Estimate(benchmark::State& state) {
  const auto algorithm = static_cast<core::Algorithm>(state.range(0));
  const auto& summary = SharedCst();
  const auto& wl = SharedWorkload();
  core::TwigEstimator estimator(&summary);
  size_t i = 0;
  for (auto _ : state) {
    const double est =
        estimator.Estimate(wl[i % wl.size()].twig, algorithm);
    benchmark::DoNotOptimize(est);
    ++i;
  }
  state.SetLabel(core::AlgorithmName(algorithm));
}
BENCHMARK(BM_Estimate)
    ->DenseRange(0, 5, 1)
    ->Unit(benchmark::kMicrosecond);

// Same loop as BM_Estimate/MSH but with an explain trace attached, to
// quantify the cost of tracing (trace-off estimation must stay within
// ~2% of a build without obs wiring; trace-on pays for the string
// rendering and is expected to be several times slower).
void BM_EstimateTraced(benchmark::State& state) {
  const auto algorithm = static_cast<core::Algorithm>(state.range(0));
  const auto& summary = SharedCst();
  const auto& wl = SharedWorkload();
  core::TwigEstimator estimator(&summary);
  obs::Trace trace;
  core::EstimateOptions options;
  options.trace = &trace;
  size_t i = 0;
  for (auto _ : state) {
    const double est =
        estimator.Estimate(wl[i % wl.size()].twig, algorithm, options);
    benchmark::DoNotOptimize(est);
    benchmark::DoNotOptimize(trace.pieces.data());
    ++i;
  }
  state.SetLabel(std::string(core::AlgorithmName(algorithm)) + " traced");
}
BENCHMARK(BM_EstimateTraced)
    ->Arg(static_cast<int>(core::Algorithm::kMsh))
    ->Unit(benchmark::kMicrosecond);

void BM_EstimateBatch(benchmark::State& state) {
  const size_t num_threads = static_cast<size_t>(state.range(0));
  const auto& summary = SharedCst();
  const auto& wl = SharedWorkload();
  core::TwigEstimator estimator(&summary);
  core::BatchOptions options;
  options.num_threads = num_threads;
  for (auto _ : state) {
    stats::BatchStats batch_stats;
    const auto estimates =
        estimator.EstimateBatch(wl, core::Algorithm::kMsh, options,
                                &batch_stats);
    benchmark::DoNotOptimize(estimates.data());
    state.counters["qps"] = batch_stats.throughput_qps();
    const auto delta = [&](obs::Counter c) {
      return static_cast<double>(
          batch_stats.counter_deltas[static_cast<size_t>(c)]);
    };
    state.counters["cst_lookups"] =
        delta(obs::Counter::kCstSubpathLookups);
    state.counters["sethash_ix"] =
        delta(obs::Counter::kSethashIntersections);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wl.size()));
  state.SetLabel("MSH x" + std::to_string(num_threads) + " threads");
}
BENCHMARK(BM_EstimateBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ExactMatchCount(benchmark::State& state) {
  const auto& data = SharedData();
  const auto& wl = SharedWorkload();
  size_t i = 0;
  for (auto _ : state) {
    const auto counts =
        match::CountTwigMatches(data, wl[i % wl.size()].twig).value();
    benchmark::DoNotOptimize(counts.occurrence);
    ++i;
  }
}
BENCHMARK(BM_ExactMatchCount)->Unit(benchmark::kMillisecond);

void BM_SetHashIntersection(benchmark::State& state) {
  const size_t length = static_cast<size_t>(state.range(0));
  sethash::SetHashFamily family(length, 99);
  std::vector<uint64_t> a, b;
  for (uint64_t i = 0; i < 5000; ++i) {
    if (i % 2 == 0) a.push_back(i);
    if (i % 3 == 0) b.push_back(i);
  }
  const sethash::Signature sa = family.SignatureOf(a);
  const sethash::Signature sb = family.SignatureOf(b);
  for (auto _ : state) {
    auto est = sethash::EstimateIntersectionSize(
        {{&sa, static_cast<double>(a.size())},
         {&sb, static_cast<double>(b.size())}});
    benchmark::DoNotOptimize(est.size);
  }
  state.SetLabel("L=" + std::to_string(length));
}
BENCHMARK(BM_SetHashIntersection)->Arg(32)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
