// bench_storage: microbenchmarks for the storage buffer manager
// (DESIGN.md §15) — pin/unpin throughput against an in-memory store,
// and eviction churn as the buffer pool shrinks below the working set.
//
//   ./bench_storage                  # sweep pool sizes, uniform+skewed
//   ./bench_storage --buffer-mb=2    # one pool size
//   ./bench_storage --threads=8 --ops=1000000
//
// The store is synthetic (distinct payload per page, real checksums),
// so the numbers isolate the buffer manager: page-table lookups, pin
// refcounting, clock eviction, and checksum validation on every load.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/page_source.h"
#include "storage/page_writer.h"
#include "util/flags.h"
#include "util/strings.h"

namespace {

using namespace twig;
using Clock = std::chrono::steady_clock;

constexpr uint32_t kPageBytes = 4096;

std::string MakeStore(uint32_t data_pages) {
  storage::PageWriter w(kPageBytes);
  w.BeginPage(storage::PageType::kMeta);
  std::string payload(storage::PageCapacity(kPageBytes), '\0');
  for (uint32_t i = 0; i < data_pages; ++i) {
    w.BeginPage(storage::PageType::kNodes);
    // Distinct, verifiable payload: every page carries its own id.
    std::memcpy(payload.data(), &i, sizeof(i));
    w.Append(payload.data(), payload.size());
  }
  std::string meta;
  meta.append(storage::kStoreMagic, sizeof(storage::kStoreMagic));
  const uint32_t version = storage::kStoreVersion;
  const uint32_t page_size = kPageBytes;
  const uint32_t count = w.page_count();
  meta.append(reinterpret_cast<const char*>(&version), 4);
  meta.append(reinterpret_cast<const char*>(&page_size), 4);
  meta.append(reinterpret_cast<const char*>(&count), 4);
  w.OverwritePage(0, meta.data(), meta.size());
  return w.Finish();
}

struct RunResult {
  double seconds = 0;
  uint64_t pins = 0;
  storage::BufferManager::Stats stats;
};

/// `threads` workers each issue `ops` pin/check/release cycles.
/// Skewed access sends 80% of pins to the first 10% of pages (a hot
/// set that a sane pool should keep resident).
RunResult RunLoop(const std::shared_ptr<const storage::PageSource>& source,
                  size_t pool_bytes, uint32_t data_pages, size_t threads,
                  size_t ops, bool skewed) {
  storage::BufferManager pool(pool_bytes, kPageBytes);
  auto id = pool.RegisterSource(source);
  if (!id.ok()) {
    std::fprintf(stderr, "bench_storage: %s\n",
                 id.status().ToString().c_str());
    std::exit(1);
  }
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> wrong{0};
  const uint32_t hot_pages = std::max(1u, data_pages / 10);
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t state = 0x9e3779b97f4a7c15ULL * (t + 1);
      uint64_t done = 0;
      for (size_t i = 0; i < ops; ++i) {
        // xorshift64: cheap enough to not dominate the pin itself.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        uint32_t page;
        if (skewed && (state % 10) < 8) {
          page = 1 + static_cast<uint32_t>(state / 16 % hot_pages);
        } else {
          page = 1 + static_cast<uint32_t>(state / 16 % data_pages);
        }
        auto pin = pool.Pin(id.value(), page);
        if (!pin.ok()) continue;  // exhaustion under contention is legal
        uint32_t stored;
        std::memcpy(&stored, pin.value().payload(), sizeof(stored));
        if (stored != page - 1) wrong.fetch_add(1);
        ++done;
      }
      completed.fetch_add(done);
    });
  }
  for (auto& worker : workers) worker.join();
  RunResult result;
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.pins = completed.load();
  result.stats = pool.stats();
  if (wrong.load() > 0) {
    std::fprintf(stderr, "bench_storage: %llu pins saw wrong payloads\n",
                 static_cast<unsigned long long>(wrong.load()));
    std::exit(1);
  }
  return result;
}

void PrintRun(const char* label, double buffer_mb, const RunResult& r) {
  const double hit_rate =
      r.stats.pins == 0
          ? 0
          : 100.0 *
                static_cast<double>(r.stats.pins - r.stats.reads) /
                static_cast<double>(r.stats.pins);
  std::printf("  %-8s %6.2f MiB pool | %8.0f kpins/s | hit %6.2f%% | "
              "%9llu evictions | %llu pool-full\n",
              label, buffer_mb,
              static_cast<double>(r.pins) / r.seconds / 1e3, hit_rate,
              static_cast<unsigned long long>(r.stats.evictions),
              static_cast<unsigned long long>(r.stats.exhausted));
}

constexpr char kUsage[] =
    "usage: bench_storage [--pages=N] [--threads=N] [--ops=N]\n"
    "                     [--buffer-mb=F]\n"
    "  --pages=N      data pages in the synthetic store (default 4096\n"
    "                 pages of 4 KiB = 16 MiB)\n"
    "  --threads=N    concurrent pinning threads (default 4)\n"
    "  --ops=N        pin/unpin cycles per thread (default 200000)\n"
    "  --buffer-mb=F  run one pool size instead of the sweep\n";

}  // namespace

int main(int argc, char** argv) {
  size_t pages = 4096;
  size_t threads = 4;
  size_t ops = 200000;
  double buffer_mb = 0;
  util::FlagParser flags("bench_storage", kUsage);
  flags.Size("pages", &pages);
  flags.Size("threads", &threads);
  flags.Size("ops", &ops);
  flags.Double("buffer-mb", &buffer_mb);
  if (int code = flags.Parse(argc, argv); code >= 0) return code;
  if (pages == 0 || threads == 0 || ops == 0 || buffer_mb < 0) {
    std::fprintf(stderr, "bench_storage: flags must be positive\n");
    return 2;
  }

  const uint32_t data_pages = static_cast<uint32_t>(pages);
  auto blob = storage::BlobPageSource::Open(MakeStore(data_pages),
                                            "bench-store");
  if (!blob.ok()) {
    std::fprintf(stderr, "bench_storage: %s\n",
                 blob.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const storage::PageSource> source = std::move(blob).value();
  const double store_mb = static_cast<double>(data_pages + 1) *
                          kPageBytes / (1024.0 * 1024.0);
  std::printf("== buffer manager: %u pages of %u B (%s store), "
              "%zu threads x %zu ops ==\n",
              data_pages, kPageBytes,
              HumanBytes(static_cast<size_t>(data_pages + 1) * kPageBytes)
                  .c_str(),
              threads, ops);

  std::vector<double> pool_sizes;
  if (buffer_mb > 0) {
    pool_sizes.push_back(buffer_mb);
  } else {
    // The interesting regimes: pool far below, near, and above the
    // store (the last one should evict ~never after warmup).
    pool_sizes = {store_mb / 16, store_mb / 4, store_mb * 1.25};
  }
  for (bool skewed : {false, true}) {
    std::printf("%s access:\n", skewed ? "skewed 80/20" : "uniform");
    for (double mb : pool_sizes) {
      const size_t pool_bytes =
          static_cast<size_t>(mb * 1024.0 * 1024.0);
      const RunResult r = RunLoop(source, pool_bytes, data_pages,
                                  threads, ops, skewed);
      PrintRun(skewed ? "skewed" : "uniform", mb, r);
    }
  }
  return 0;
}
