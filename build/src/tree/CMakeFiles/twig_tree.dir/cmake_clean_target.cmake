file(REMOVE_RECURSE
  "libtwig_tree.a"
)
