# Empty dependencies file for twig_tree.
# This may be replaced when dependencies are built.
