file(REMOVE_RECURSE
  "CMakeFiles/twig_tree.dir/tree.cc.o"
  "CMakeFiles/twig_tree.dir/tree.cc.o.d"
  "libtwig_tree.a"
  "libtwig_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
