file(REMOVE_RECURSE
  "CMakeFiles/twig_query.dir/twig.cc.o"
  "CMakeFiles/twig_query.dir/twig.cc.o.d"
  "libtwig_query.a"
  "libtwig_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
