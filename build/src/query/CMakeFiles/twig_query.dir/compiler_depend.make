# Empty compiler generated dependencies file for twig_query.
# This may be replaced when dependencies are built.
