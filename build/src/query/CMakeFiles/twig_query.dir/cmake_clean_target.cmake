file(REMOVE_RECURSE
  "libtwig_query.a"
)
