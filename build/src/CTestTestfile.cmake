# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("tree")
subdirs("xml")
subdirs("query")
subdirs("sethash")
subdirs("suffix")
subdirs("cst")
subdirs("match")
subdirs("core")
subdirs("workload")
subdirs("data")
subdirs("stats")
subdirs("exp")
