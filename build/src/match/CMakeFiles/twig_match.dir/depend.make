# Empty dependencies file for twig_match.
# This may be replaced when dependencies are built.
