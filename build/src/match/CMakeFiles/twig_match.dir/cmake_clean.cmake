file(REMOVE_RECURSE
  "CMakeFiles/twig_match.dir/matcher.cc.o"
  "CMakeFiles/twig_match.dir/matcher.cc.o.d"
  "libtwig_match.a"
  "libtwig_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
