file(REMOVE_RECURSE
  "libtwig_match.a"
)
