file(REMOVE_RECURSE
  "CMakeFiles/twig_stats.dir/metrics.cc.o"
  "CMakeFiles/twig_stats.dir/metrics.cc.o.d"
  "libtwig_stats.a"
  "libtwig_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
