file(REMOVE_RECURSE
  "libtwig_exp.a"
)
