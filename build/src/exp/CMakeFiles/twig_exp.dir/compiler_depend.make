# Empty compiler generated dependencies file for twig_exp.
# This may be replaced when dependencies are built.
