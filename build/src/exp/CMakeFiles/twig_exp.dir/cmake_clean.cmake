file(REMOVE_RECURSE
  "CMakeFiles/twig_exp.dir/harness.cc.o"
  "CMakeFiles/twig_exp.dir/harness.cc.o.d"
  "libtwig_exp.a"
  "libtwig_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
