# Empty compiler generated dependencies file for twig_cst.
# This may be replaced when dependencies are built.
