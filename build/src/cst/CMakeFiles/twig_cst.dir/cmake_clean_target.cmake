file(REMOVE_RECURSE
  "libtwig_cst.a"
)
