
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cst/cst.cc" "src/cst/CMakeFiles/twig_cst.dir/cst.cc.o" "gcc" "src/cst/CMakeFiles/twig_cst.dir/cst.cc.o.d"
  "/root/repo/src/cst/cst_serialize.cc" "src/cst/CMakeFiles/twig_cst.dir/cst_serialize.cc.o" "gcc" "src/cst/CMakeFiles/twig_cst.dir/cst_serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/suffix/CMakeFiles/twig_suffix.dir/DependInfo.cmake"
  "/root/repo/build/src/sethash/CMakeFiles/twig_sethash.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/twig_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/twig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
