file(REMOVE_RECURSE
  "CMakeFiles/twig_cst.dir/cst.cc.o"
  "CMakeFiles/twig_cst.dir/cst.cc.o.d"
  "CMakeFiles/twig_cst.dir/cst_serialize.cc.o"
  "CMakeFiles/twig_cst.dir/cst_serialize.cc.o.d"
  "libtwig_cst.a"
  "libtwig_cst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_cst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
