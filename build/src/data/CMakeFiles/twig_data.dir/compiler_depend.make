# Empty compiler generated dependencies file for twig_data.
# This may be replaced when dependencies are built.
