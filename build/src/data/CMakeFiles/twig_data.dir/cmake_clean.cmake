file(REMOVE_RECURSE
  "CMakeFiles/twig_data.dir/generators.cc.o"
  "CMakeFiles/twig_data.dir/generators.cc.o.d"
  "CMakeFiles/twig_data.dir/vocab.cc.o"
  "CMakeFiles/twig_data.dir/vocab.cc.o.d"
  "libtwig_data.a"
  "libtwig_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
