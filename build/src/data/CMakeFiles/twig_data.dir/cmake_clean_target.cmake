file(REMOVE_RECURSE
  "libtwig_data.a"
)
