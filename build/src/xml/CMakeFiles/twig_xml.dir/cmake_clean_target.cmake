file(REMOVE_RECURSE
  "libtwig_xml.a"
)
