# Empty dependencies file for twig_xml.
# This may be replaced when dependencies are built.
