file(REMOVE_RECURSE
  "CMakeFiles/twig_xml.dir/xml.cc.o"
  "CMakeFiles/twig_xml.dir/xml.cc.o.d"
  "libtwig_xml.a"
  "libtwig_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
