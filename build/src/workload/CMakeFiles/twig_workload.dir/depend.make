# Empty dependencies file for twig_workload.
# This may be replaced when dependencies are built.
