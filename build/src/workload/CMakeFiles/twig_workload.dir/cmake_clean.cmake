file(REMOVE_RECURSE
  "CMakeFiles/twig_workload.dir/workload.cc.o"
  "CMakeFiles/twig_workload.dir/workload.cc.o.d"
  "libtwig_workload.a"
  "libtwig_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
