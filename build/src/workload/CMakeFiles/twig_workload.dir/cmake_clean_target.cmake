file(REMOVE_RECURSE
  "libtwig_workload.a"
)
