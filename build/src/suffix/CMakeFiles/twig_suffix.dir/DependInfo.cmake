
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suffix/path_suffix_tree.cc" "src/suffix/CMakeFiles/twig_suffix.dir/path_suffix_tree.cc.o" "gcc" "src/suffix/CMakeFiles/twig_suffix.dir/path_suffix_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tree/CMakeFiles/twig_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/twig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
