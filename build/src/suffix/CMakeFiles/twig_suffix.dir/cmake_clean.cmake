file(REMOVE_RECURSE
  "CMakeFiles/twig_suffix.dir/path_suffix_tree.cc.o"
  "CMakeFiles/twig_suffix.dir/path_suffix_tree.cc.o.d"
  "libtwig_suffix.a"
  "libtwig_suffix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_suffix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
