file(REMOVE_RECURSE
  "libtwig_suffix.a"
)
