# Empty compiler generated dependencies file for twig_suffix.
# This may be replaced when dependencies are built.
