file(REMOVE_RECURSE
  "libtwig_core.a"
)
