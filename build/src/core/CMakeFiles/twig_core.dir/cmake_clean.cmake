file(REMOVE_RECURSE
  "CMakeFiles/twig_core.dir/combine.cc.o"
  "CMakeFiles/twig_core.dir/combine.cc.o.d"
  "CMakeFiles/twig_core.dir/estimator.cc.o"
  "CMakeFiles/twig_core.dir/estimator.cc.o.d"
  "CMakeFiles/twig_core.dir/expanded_query.cc.o"
  "CMakeFiles/twig_core.dir/expanded_query.cc.o.d"
  "CMakeFiles/twig_core.dir/parse.cc.o"
  "CMakeFiles/twig_core.dir/parse.cc.o.d"
  "CMakeFiles/twig_core.dir/pieces.cc.o"
  "CMakeFiles/twig_core.dir/pieces.cc.o.d"
  "libtwig_core.a"
  "libtwig_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
