
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/combine.cc" "src/core/CMakeFiles/twig_core.dir/combine.cc.o" "gcc" "src/core/CMakeFiles/twig_core.dir/combine.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/twig_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/twig_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/expanded_query.cc" "src/core/CMakeFiles/twig_core.dir/expanded_query.cc.o" "gcc" "src/core/CMakeFiles/twig_core.dir/expanded_query.cc.o.d"
  "/root/repo/src/core/parse.cc" "src/core/CMakeFiles/twig_core.dir/parse.cc.o" "gcc" "src/core/CMakeFiles/twig_core.dir/parse.cc.o.d"
  "/root/repo/src/core/pieces.cc" "src/core/CMakeFiles/twig_core.dir/pieces.cc.o" "gcc" "src/core/CMakeFiles/twig_core.dir/pieces.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cst/CMakeFiles/twig_cst.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/twig_query.dir/DependInfo.cmake"
  "/root/repo/build/src/sethash/CMakeFiles/twig_sethash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/twig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/suffix/CMakeFiles/twig_suffix.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/twig_tree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
