# Empty dependencies file for twig_core.
# This may be replaced when dependencies are built.
