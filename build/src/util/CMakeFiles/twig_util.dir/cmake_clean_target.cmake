file(REMOVE_RECURSE
  "libtwig_util.a"
)
