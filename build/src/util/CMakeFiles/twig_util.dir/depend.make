# Empty dependencies file for twig_util.
# This may be replaced when dependencies are built.
