file(REMOVE_RECURSE
  "CMakeFiles/twig_util.dir/rng.cc.o"
  "CMakeFiles/twig_util.dir/rng.cc.o.d"
  "CMakeFiles/twig_util.dir/status.cc.o"
  "CMakeFiles/twig_util.dir/status.cc.o.d"
  "CMakeFiles/twig_util.dir/strings.cc.o"
  "CMakeFiles/twig_util.dir/strings.cc.o.d"
  "libtwig_util.a"
  "libtwig_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
