# Empty dependencies file for twig_sethash.
# This may be replaced when dependencies are built.
