file(REMOVE_RECURSE
  "libtwig_sethash.a"
)
