file(REMOVE_RECURSE
  "CMakeFiles/twig_sethash.dir/sethash.cc.o"
  "CMakeFiles/twig_sethash.dir/sethash.cc.o.d"
  "libtwig_sethash.a"
  "libtwig_sethash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_sethash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
