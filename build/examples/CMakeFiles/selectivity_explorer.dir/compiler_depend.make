# Empty compiler generated dependencies file for selectivity_explorer.
# This may be replaced when dependencies are built.
