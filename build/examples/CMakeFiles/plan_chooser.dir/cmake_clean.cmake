file(REMOVE_RECURSE
  "CMakeFiles/plan_chooser.dir/plan_chooser.cc.o"
  "CMakeFiles/plan_chooser.dir/plan_chooser.cc.o.d"
  "plan_chooser"
  "plan_chooser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_chooser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
