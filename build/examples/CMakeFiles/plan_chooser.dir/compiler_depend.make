# Empty compiler generated dependencies file for plan_chooser.
# This may be replaced when dependencies are built.
