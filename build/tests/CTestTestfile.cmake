# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/sethash_test[1]_include.cmake")
include("/root/repo/build/tests/suffix_test[1]_include.cmake")
include("/root/repo/build/tests/cst_test[1]_include.cmake")
include("/root/repo/build/tests/match_test[1]_include.cmake")
include("/root/repo/build/tests/parse_test[1]_include.cmake")
include("/root/repo/build/tests/pieces_test[1]_include.cmake")
include("/root/repo/build/tests/combine_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
