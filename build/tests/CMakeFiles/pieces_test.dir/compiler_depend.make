# Empty compiler generated dependencies file for pieces_test.
# This may be replaced when dependencies are built.
