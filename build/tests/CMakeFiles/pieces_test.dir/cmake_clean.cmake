file(REMOVE_RECURSE
  "CMakeFiles/pieces_test.dir/pieces_test.cc.o"
  "CMakeFiles/pieces_test.dir/pieces_test.cc.o.d"
  "pieces_test"
  "pieces_test.pdb"
  "pieces_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pieces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
