file(REMOVE_RECURSE
  "CMakeFiles/suffix_test.dir/suffix_test.cc.o"
  "CMakeFiles/suffix_test.dir/suffix_test.cc.o.d"
  "suffix_test"
  "suffix_test.pdb"
  "suffix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suffix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
