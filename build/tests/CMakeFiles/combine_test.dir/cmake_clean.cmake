file(REMOVE_RECURSE
  "CMakeFiles/combine_test.dir/combine_test.cc.o"
  "CMakeFiles/combine_test.dir/combine_test.cc.o.d"
  "combine_test"
  "combine_test.pdb"
  "combine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
