file(REMOVE_RECURSE
  "CMakeFiles/sethash_test.dir/sethash_test.cc.o"
  "CMakeFiles/sethash_test.dir/sethash_test.cc.o.d"
  "sethash_test"
  "sethash_test.pdb"
  "sethash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sethash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
