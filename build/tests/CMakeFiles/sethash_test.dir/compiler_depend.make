# Empty compiler generated dependencies file for sethash_test.
# This may be replaced when dependencies are built.
