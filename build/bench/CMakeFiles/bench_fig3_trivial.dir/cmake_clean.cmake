file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_trivial.dir/bench_fig3_trivial.cc.o"
  "CMakeFiles/bench_fig3_trivial.dir/bench_fig3_trivial.cc.o.d"
  "bench_fig3_trivial"
  "bench_fig3_trivial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_trivial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
