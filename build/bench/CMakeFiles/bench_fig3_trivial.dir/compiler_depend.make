# Empty compiler generated dependencies file for bench_fig3_trivial.
# This may be replaced when dependencies are built.
