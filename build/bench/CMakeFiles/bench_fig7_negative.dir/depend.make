# Empty dependencies file for bench_fig7_negative.
# This may be replaced when dependencies are built.
