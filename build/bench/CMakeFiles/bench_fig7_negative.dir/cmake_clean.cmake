file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_negative.dir/bench_fig7_negative.cc.o"
  "CMakeFiles/bench_fig7_negative.dir/bench_fig7_negative.cc.o.d"
  "bench_fig7_negative"
  "bench_fig7_negative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_negative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
