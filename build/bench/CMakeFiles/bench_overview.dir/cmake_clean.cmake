file(REMOVE_RECURSE
  "CMakeFiles/bench_overview.dir/bench_overview.cc.o"
  "CMakeFiles/bench_overview.dir/bench_overview.cc.o.d"
  "bench_overview"
  "bench_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
