
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_positive.cc" "bench/CMakeFiles/bench_fig4_positive.dir/bench_fig4_positive.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_positive.dir/bench_fig4_positive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/twig_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/twig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cst/CMakeFiles/twig_cst.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/twig_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sethash/CMakeFiles/twig_sethash.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/twig_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/suffix/CMakeFiles/twig_suffix.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/twig_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/twig_match.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/twig_query.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/twig_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/twig_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/twig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
