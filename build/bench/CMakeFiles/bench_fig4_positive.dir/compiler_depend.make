# Empty compiler generated dependencies file for bench_fig4_positive.
# This may be replaced when dependencies are built.
