file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_positive.dir/bench_fig4_positive.cc.o"
  "CMakeFiles/bench_fig4_positive.dir/bench_fig4_positive.cc.o.d"
  "bench_fig4_positive"
  "bench_fig4_positive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_positive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
