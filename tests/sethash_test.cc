#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sethash/sethash.h"

namespace twig::sethash {
namespace {

std::vector<uint64_t> Range(uint64_t lo, uint64_t hi) {
  std::vector<uint64_t> out;
  for (uint64_t i = lo; i < hi; ++i) out.push_back(i);
  return out;
}

/// Exact resemblance of two integer ranges [0,a) and [b0,b1).
double ExactResemblance(uint64_t a, uint64_t b0, uint64_t b1) {
  const double inter =
      static_cast<double>(std::max<int64_t>(0, static_cast<int64_t>(a) -
                                                   static_cast<int64_t>(b0)));
  const double uni = static_cast<double>(std::max(a, b1));
  return inter / uni;
}

TEST(SetHashFamilyTest, DeterministicForSeed) {
  SetHashFamily f1(16, 7), f2(16, 7), f3(16, 8);
  EXPECT_EQ(f1.Hash(3, 42), f2.Hash(3, 42));
  EXPECT_NE(f1.Hash(3, 42), f3.Hash(3, 42));
}

TEST(SetHashFamilyTest, ComponentsAreIndependentFunctions) {
  SetHashFamily family(8, 1);
  EXPECT_NE(family.Hash(0, 42), family.Hash(1, 42));
}

TEST(SetHashFamilyTest, HashAllMatchesHash) {
  SetHashFamily family(8, 1);
  const auto all = family.HashAll(99);
  ASSERT_EQ(all.size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(all[i], family.Hash(i, 99));
}

TEST(SignatureTest, EmptySignatureIsAllMax) {
  SetHashFamily family(4, 1);
  for (uint32_t c : family.EmptySignature()) EXPECT_EQ(c, kEmptyComponent);
}

TEST(SignatureTest, MergeElementTakesMinima) {
  SetHashFamily family(16, 1);
  Signature sig = family.EmptySignature();
  MergeElement(sig, family.HashAll(1));
  MergeElement(sig, family.HashAll(2));
  EXPECT_EQ(sig, family.SignatureOf({1, 2}));
}

TEST(SignatureTest, SignatureIsOrderIndependent) {
  SetHashFamily family(16, 1);
  EXPECT_EQ(family.SignatureOf({1, 2, 3}), family.SignatureOf({3, 1, 2}));
}

TEST(SignatureTest, UnionSignatureIsComponentwiseMin) {
  SetHashFamily family(16, 1);
  const Signature a = family.SignatureOf(Range(0, 50));
  const Signature b = family.SignatureOf(Range(50, 100));
  const Signature u = UnionSignature({&a, &b});
  EXPECT_EQ(u, family.SignatureOf(Range(0, 100)));
}

TEST(ResemblanceTest, IdenticalSetsHaveResemblanceOne) {
  SetHashFamily family(64, 1);
  const Signature a = family.SignatureOf(Range(0, 100));
  EXPECT_DOUBLE_EQ(EstimateResemblance({&a, &a}), 1.0);
}

TEST(ResemblanceTest, DisjointSetsNearZero) {
  SetHashFamily family(128, 1);
  const Signature a = family.SignatureOf(Range(0, 1000));
  const Signature b = family.SignatureOf(Range(1000, 2000));
  EXPECT_LT(EstimateResemblance({&a, &b}), 0.05);
}

TEST(ResemblanceTest, TracksTrueOverlap) {
  SetHashFamily family(512, 3);
  // |A| = 1000, |B| = 1000, |A ∩ B| = 500, |A ∪ B| = 1500 -> rho = 1/3.
  const Signature a = family.SignatureOf(Range(0, 1000));
  const Signature b = family.SignatureOf(Range(500, 1500));
  EXPECT_NEAR(EstimateResemblance({&a, &b}),
              ExactResemblance(1000, 500, 1500), 0.08);
}

TEST(ResemblanceTest, ThreeWay) {
  SetHashFamily family(512, 3);
  const Signature a = family.SignatureOf(Range(0, 900));
  const Signature b = family.SignatureOf(Range(300, 1200));
  const Signature c = family.SignatureOf(Range(600, 1500));
  // Intersection [600, 900) = 300; union [0, 1500) = 1500 -> 0.2.
  EXPECT_NEAR(EstimateResemblance({&a, &b, &c}), 0.2, 0.07);
}

TEST(ResemblanceTest, EmptySignatureComponentsIgnored) {
  SetHashFamily family(16, 1);
  const Signature empty = family.EmptySignature();
  EXPECT_DOUBLE_EQ(EstimateResemblance({&empty, &empty}), 0.0);
}

TEST(IntersectionTest, SingleSetReturnsItsSize) {
  SetHashFamily family(32, 1);
  const Signature a = family.SignatureOf(Range(0, 10));
  const auto est = EstimateIntersectionSize({{&a, 10.0}});
  EXPECT_DOUBLE_EQ(est.size, 10.0);
  EXPECT_EQ(est.matching_components, 32u);
}

TEST(IntersectionTest, EstimatesOverlapSize) {
  SetHashFamily family(512, 9);
  const Signature a = family.SignatureOf(Range(0, 1000));
  const Signature b = family.SignatureOf(Range(500, 1500));
  const auto est = EstimateIntersectionSize({{&a, 1000.0}, {&b, 1000.0}});
  EXPECT_NEAR(est.size, 500.0, 150.0);
  EXPECT_GT(est.matching_components, 0u);
}

TEST(IntersectionTest, SubsetIntersectionIsSmallerSet) {
  SetHashFamily family(512, 9);
  const Signature a = family.SignatureOf(Range(0, 1000));
  const Signature b = family.SignatureOf(Range(0, 100));
  const auto est = EstimateIntersectionSize({{&a, 1000.0}, {&b, 100.0}});
  EXPECT_NEAR(est.size, 100.0, 40.0);
}

TEST(IntersectionTest, NeverExceedsSmallestSet) {
  SetHashFamily family(64, 5);
  const Signature a = family.SignatureOf(Range(0, 1000));
  const Signature b = family.SignatureOf(Range(0, 10));
  const auto est = EstimateIntersectionSize({{&a, 1000.0}, {&b, 10.0}});
  EXPECT_LE(est.size, 10.0);
}

TEST(IntersectionTest, DisjointSetsEstimateNearZero) {
  SetHashFamily family(256, 5);
  const Signature a = family.SignatureOf(Range(0, 500));
  const Signature b = family.SignatureOf(Range(500, 1000));
  const auto est = EstimateIntersectionSize({{&a, 500.0}, {&b, 500.0}});
  EXPECT_LT(est.size, 40.0);
}

TEST(IntersectionTest, ZeroSizedSetShortCircuits) {
  SetHashFamily family(32, 1);
  const Signature a = family.SignatureOf(Range(0, 10));
  const Signature empty = family.EmptySignature();
  const auto est = EstimateIntersectionSize({{&a, 10.0}, {&empty, 0.0}});
  EXPECT_DOUBLE_EQ(est.size, 0.0);
}

TEST(IntersectionTest, ThreeWayIntersection) {
  SetHashFamily family(512, 11);
  const Signature a = family.SignatureOf(Range(0, 900));
  const Signature b = family.SignatureOf(Range(300, 1200));
  const Signature c = family.SignatureOf(Range(600, 1500));
  const auto est = EstimateIntersectionSize(
      {{&a, 900.0}, {&b, 900.0}, {&c, 900.0}});
  EXPECT_NEAR(est.size, 300.0, 130.0);
}

/// Property sweep: the estimator converges to the exact intersection
/// as signature length grows.
class IntersectionConvergence : public ::testing::TestWithParam<size_t> {};

TEST_P(IntersectionConvergence, ErrorShrinksWithLength) {
  const size_t length = GetParam();
  SetHashFamily family(length, 17);
  const Signature a = family.SignatureOf(Range(0, 1000));
  const Signature b = family.SignatureOf(Range(400, 1400));
  const auto est = EstimateIntersectionSize({{&a, 1000.0}, {&b, 1000.0}});
  // True intersection 600. Binomial error ~ 1/sqrt(length); allow 5
  // sigma of the resemblance noise propagated through the scaling.
  const double sigma = 600.0 * 5.0 / std::sqrt(static_cast<double>(length));
  EXPECT_NEAR(est.size, 600.0, std::max(sigma, 120.0));
}

INSTANTIATE_TEST_SUITE_P(Lengths, IntersectionConvergence,
                         ::testing::Values(64, 128, 256, 512, 1024));

}  // namespace
}  // namespace twig::sethash
