#include <gtest/gtest.h>

#include <algorithm>

#include "core/expanded_query.h"
#include "core/parse.h"
#include "core/pieces.h"
#include "cst/cst.h"
#include "query/twig.h"
#include "test_trees.h"

namespace twig::core {
namespace {

using cst::Cst;
using cst::CstOptions;
using query::ParseTwig;
using suffix::PathSuffixTree;
using tree::Tree;

Cst BuildCst(const Tree& data) {
  auto pst = PathSuffixTree::Build(data);
  CstOptions options;
  options.prune_threshold = 1;
  return Cst::Build(data, pst, options);
}

/// Counts pieces with >= 2 subpaths (set-hash twiglets).
size_t TwigletCount(const std::vector<EstimandPiece>& pieces) {
  return static_cast<size_t>(
      std::count_if(pieces.begin(), pieces.end(),
                    [](const EstimandPiece& p) { return p.subpaths.size() >= 2; }));
}

TEST(SinglePathPiecesTest, OnePiecePerParsedSubpath) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("book(author=\"A1\", year=\"Y1\")");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto parsed = ParseQuery(eq, cst, ParseStrategy::kMaximal);
  auto pieces = SinglePathPieces(eq, parsed);
  ASSERT_EQ(pieces.size(), parsed.size());
  for (const auto& p : pieces) {
    EXPECT_EQ(p.subpaths.size(), 1u);
    EXPECT_EQ(p.atoms.size(), p.subpaths[0].size());
    EXPECT_EQ(p.root_atom, p.subpaths[0].front());
  }
}

TEST(MoshDecomposeTest, MergesSameStartThroughBranch) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("book(author=\"A1\", year=\"Y1\")");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto parsed = ParseQuery(eq, cst, ParseStrategy::kMaximal);
  auto pieces = MoshDecompose(eq, parsed);
  // Both whole-path pieces start at the root (book) and pass through
  // the branch (book): one twiglet, no leftover singles.
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].subpaths.size(), 2u);
  EXPECT_EQ(pieces[0].root_atom, 0);
  EXPECT_EQ(pieces[0].atoms.size(), eq.atoms.size());
}

TEST(MoshDecomposeTest, SingletonGroupsDegradeToPureMo) {
  // The paper's PMOSH motivation (Section 4.3): parses whose maximal
  // subpaths through the branch have distinct start atoms form no
  // twiglet.
  Tree data = testutil::FigureTwoTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("a.b.c(d.e, f.g)");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  // Hand-build the paper's parse: pieces a.b.c.d.e (start a) and
  // b.c.f.g (start b): distinct starts -> no twiglet.
  std::vector<ParsedPiece> parsed(2);
  parsed[0] = {.path = 0, .start = 0, .length = 5, .missing = false,
               .cst_node = cst.root()};
  parsed[1] = {.path = 1, .start = 1, .length = 4, .missing = false,
               .cst_node = cst.root()};
  auto pieces = MoshDecompose(eq, parsed);
  EXPECT_EQ(TwigletCount(pieces), 0u);
  EXPECT_EQ(pieces.size(), 2u);
}

TEST(MshDecomposeTest, SuffixesRescueDistinctStarts) {
  // Same parse as above: MSH admits the suffix b.c.d.e of a.b.c.d.e at
  // starting point b, pairing it with b.c.f.g (Section 4.4).
  Tree data = testutil::FigureTwoTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("a.b.c(d.e, f.g)");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  std::vector<ParsedPiece> parsed(2);
  parsed[0] = {.path = 0, .start = 0, .length = 5, .missing = false,
               .cst_node = cst.root()};
  parsed[1] = {.path = 1, .start = 1, .length = 4, .missing = false,
               .cst_node = cst.root()};
  auto pieces = MshDecompose(eq, parsed);
  EXPECT_GE(TwigletCount(pieces), 1u);
  // The full piece a.b.c.d.e keeps participating (only suffix-shortened
  // in the twiglet): it must remain as a standalone piece too.
  bool has_full = false;
  for (const auto& p : pieces) {
    if (p.subpaths.size() == 1 && p.atoms.size() == 5) has_full = true;
  }
  EXPECT_TRUE(has_full);
  // And b.c.f.g participated fully in a twiglet, so it is absorbed.
  for (const auto& p : pieces) {
    if (p.subpaths.size() == 1) {
      EXPECT_NE(p.atoms.size(), 4u);
    }
  }
}

TEST(MshDecomposeTest, EqualsToMoshOnRootBranchQueries) {
  // When all maximal pieces start at the branch-root, MSH == MOSH.
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("book(author=\"A1\", year=\"Y1\")");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto parsed = ParseQuery(eq, cst, ParseStrategy::kMaximal);
  EXPECT_EQ(DecompositionFingerprint(MoshDecompose(eq, parsed)),
            DecompositionFingerprint(MshDecompose(eq, parsed)));
}

TEST(DecompositionFingerprintTest, OrderIndependent) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("book(author=\"A1\", year=\"Y1\")");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto parsed = ParseQuery(eq, cst, ParseStrategy::kMaximal);
  auto pieces = SinglePathPieces(eq, parsed);
  auto reversed = pieces;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_EQ(DecompositionFingerprint(pieces),
            DecompositionFingerprint(reversed));
}

TEST(DecompositionFingerprintTest, DistinguishesDecompositions) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("book(author=\"A1\", year=\"Y1\")");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto parsed = ParseQuery(eq, cst, ParseStrategy::kMaximal);
  EXPECT_NE(DecompositionFingerprint(SinglePathPieces(eq, parsed)),
            DecompositionFingerprint(MoshDecompose(eq, parsed)));
}

TEST(MoshDecomposeTest, MissingPiecesStaySingle) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("book(journal, year=\"Y1\")");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto parsed = ParseQuery(eq, cst, ParseStrategy::kMaximal);
  auto pieces = MoshDecompose(eq, parsed);
  bool missing_found = false;
  for (const auto& p : pieces) {
    if (p.missing) {
      missing_found = true;
      EXPECT_EQ(p.subpaths.size(), 1u);
      EXPECT_EQ(p.atoms.size(), 1u);
    }
  }
  EXPECT_TRUE(missing_found);
}

}  // namespace
}  // namespace twig::core
