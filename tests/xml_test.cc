#include <gtest/gtest.h>

#include "xml/xml.h"

namespace twig::xml {
namespace {

using tree::NodeId;
using tree::Tree;

TEST(XmlParseTest, SimpleElementTree) {
  auto result = ParseXml("<dblp><book><year>1993</year></book></dblp>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Tree& t = *result;
  EXPECT_EQ(t.LabelName(t.root()), "dblp");
  NodeId book = t.Children(t.root())[0];
  EXPECT_EQ(t.LabelName(book), "book");
  NodeId year = t.Children(book)[0];
  EXPECT_EQ(t.LabelName(year), "year");
  NodeId value = t.Children(year)[0];
  EXPECT_TRUE(t.IsValue(value));
  EXPECT_EQ(t.Value(value), "1993");
}

TEST(XmlParseTest, AttributesBecomeChildren) {
  auto result = ParseXml(R"(<entry id="P1" status="ok"/>)");
  ASSERT_TRUE(result.ok());
  const Tree& t = *result;
  ASSERT_EQ(t.Children(t.root()).size(), 2u);
  NodeId id = t.Children(t.root())[0];
  EXPECT_EQ(t.LabelName(id), "id");
  EXPECT_EQ(t.Value(t.Children(id)[0]), "P1");
}

TEST(XmlParseTest, AttributesCanBeDropped) {
  XmlParseOptions options;
  options.attributes_as_children = false;
  auto result = ParseXml(R"(<entry id="P1"/>)", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Children(result->root()).empty());
}

TEST(XmlParseTest, EntityDecoding) {
  auto result = ParseXml("<t>a &amp; b &lt;c&gt; &quot;d&quot; &#65;</t>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Value(result->Children(result->root())[0]),
            "a & b <c> \"d\" A");
}

TEST(XmlParseTest, NumericEntityUtf8) {
  auto result = ParseXml("<t>&#xE9;</t>");  // é
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Value(result->Children(result->root())[0]), "\xC3\xA9");
}

TEST(XmlParseTest, SkipsCommentsPrologAndPi) {
  auto result = ParseXml(
      "<?xml version=\"1.0\"?><!-- hi --><!DOCTYPE dblp><dblp><?pi data?>"
      "<book/></dblp><!-- bye -->");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->LabelName(result->root()), "dblp");
  ASSERT_EQ(result->Children(result->root()).size(), 1u);
}

TEST(XmlParseTest, CdataIsVerbatim) {
  auto result = ParseXml("<t><![CDATA[a < b & c]]></t>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Value(result->Children(result->root())[0]), "a < b & c");
}

TEST(XmlParseTest, WhitespaceOnlyTextSkipped) {
  auto result = ParseXml("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Children(result->root()).size(), 2u);
}

TEST(XmlParseTest, TextWhitespaceNormalized) {
  auto result = ParseXml("<t>Morgan\n   Kaufmann</t>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Value(result->Children(result->root())[0]),
            "Morgan Kaufmann");
}

TEST(XmlParseTest, MismatchedTagIsError) {
  auto result = ParseXml("<a><b></a></b>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(XmlParseTest, TrailingGarbageIsError) {
  auto result = ParseXml("<a/>junk");
  ASSERT_FALSE(result.ok());
}

TEST(XmlParseTest, UnterminatedElementIsError) {
  EXPECT_FALSE(ParseXml("<a><b>").ok());
  EXPECT_FALSE(ParseXml("<a attr=\"x>").ok());
}

TEST(XmlWriteTest, RoundTrip) {
  const std::string xml =
      "<dblp><book><author>Suciu</author><year>1993</year></book></dblp>";
  auto parsed = ParseXml(xml);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(WriteXml(*parsed), xml);
}

TEST(XmlWriteTest, EscapesSpecialCharacters) {
  tree::Tree t;
  NodeId r = t.AddRoot("t");
  t.AddValue(r, "a<b>&\"'");
  const std::string xml = WriteXml(t);
  EXPECT_EQ(xml, "<t>a&lt;b&gt;&amp;&quot;&apos;</t>");
  auto reparsed = ParseXml(xml);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Value(reparsed->Children(reparsed->root())[0]),
            "a<b>&\"'");
}

TEST(XmlWriteTest, ByteSizeMatchesCompactOutput) {
  auto parsed =
      ParseXml("<dblp><book><author>Suciu</author></book><book/></dblp>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(XmlByteSize(*parsed), WriteXml(*parsed).size());
}

TEST(XmlWriteTest, PrettyPrintNests) {
  auto parsed = ParseXml("<a><b><c>v</c></b></a>");
  ASSERT_TRUE(parsed.ok());
  XmlWriteOptions options;
  options.pretty = true;
  const std::string pretty = WriteXml(*parsed, options);
  EXPECT_NE(pretty.find("\n"), std::string::npos);
  EXPECT_NE(pretty.find("  <b>"), std::string::npos);
}

TEST(XmlParseTest, EmptyInputIsError) { EXPECT_FALSE(ParseXml("").ok()); }

// Regression: the DOCTYPE skip counted brackets without tracking
// quotes, so a '>' inside a quoted system identifier ended the
// declaration early and corrupted the parse position.
TEST(XmlParseTest, DoctypeQuotedLiteralsWithMarkupCharacters) {
  auto gt = ParseXml("<!DOCTYPE r SYSTEM \"a>b\"><r/>");
  ASSERT_TRUE(gt.ok()) << gt.status().ToString();
  EXPECT_EQ(gt->LabelName(gt->root()), "r");

  auto lt = ParseXml("<!DOCTYPE r SYSTEM 'x<y>z'><r><c/></r>");
  ASSERT_TRUE(lt.ok()) << lt.status().ToString();
  EXPECT_EQ(lt->Children(lt->root()).size(), 1u);

  auto brackets = ParseXml("<!DOCTYPE r SYSTEM \"a]b[c\"><r/>");
  ASSERT_TRUE(brackets.ok()) << brackets.status().ToString();
}

TEST(XmlParseTest, DoctypeInternalSubsetWithQuotedMarkup) {
  // The entity value contains a full element; the quote tracking must
  // keep it from unbalancing the subset's bracket depth.
  auto result = ParseXml(
      "<!DOCTYPE r [ <!ENTITY e \"<x>v</x>\"> <!ELEMENT r ANY> ]>"
      "<r>t</r>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->LabelName(result->root()), "r");
}

TEST(XmlParseTest, DoctypeUnterminatedQuoteDoesNotHang) {
  // Hostile input: the quote never closes, so the skip runs to EOF and
  // the parse fails cleanly instead of misreading markup.
  auto result = ParseXml("<!DOCTYPE r SYSTEM \"never closed><r/>");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace twig::xml
