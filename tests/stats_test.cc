#include <gtest/gtest.h>

#include <cmath>

#include "stats/metrics.h"

namespace twig::stats {
namespace {

TEST(ErrorAccumulatorTest, EmptyIsZero) {
  ErrorAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.AvgRelativeError(), 0.0);
  EXPECT_DOUBLE_EQ(acc.AvgRelativeSquaredError(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Rmse(), 0.0);
}

TEST(ErrorAccumulatorTest, PerfectEstimatesZeroError) {
  ErrorAccumulator acc;
  acc.Add(10, 10);
  acc.Add(3, 3);
  EXPECT_DOUBLE_EQ(acc.AvgRelativeError(), 0.0);
  EXPECT_DOUBLE_EQ(acc.AvgRelativeSquaredError(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Rmse(), 0.0);
}

TEST(ErrorAccumulatorTest, RelativeError) {
  ErrorAccumulator acc;
  acc.Add(10, 5);    // rel 0.5
  acc.Add(100, 150); // rel 0.5
  EXPECT_DOUBLE_EQ(acc.AvgRelativeError(), 0.5);
}

TEST(ErrorAccumulatorTest, RelativeSquaredErrorMatchesPaperIntuition) {
  // The paper's Section 6.1 example: estimates 5000/50 for true
  // 10000/100 have equal relative error; estimates 9950/50 have equal
  // absolute error but the second is intuitively worse — and the
  // squared-relative metric says so.
  ErrorAccumulator a;
  a.Add(10000, 9950);
  ErrorAccumulator b;
  b.Add(100, 50);
  EXPECT_LT(a.AvgRelativeSquaredError(), b.AvgRelativeSquaredError());
}

TEST(ErrorAccumulatorTest, RmseForNegativeQueries) {
  ErrorAccumulator acc;
  acc.Add(0, 3);
  acc.Add(0, 4);
  // sqrt((9 + 16) / 2) = sqrt(12.5)
  EXPECT_NEAR(acc.Rmse(), std::sqrt(12.5), 1e-12);
}

TEST(ErrorAccumulatorTest, ZeroTruthSkippedInRelativeMetrics) {
  ErrorAccumulator acc;
  acc.Add(0, 100);
  acc.Add(10, 5);
  EXPECT_DOUBLE_EQ(acc.AvgRelativeError(), 0.5);  // only the t=10 pair
  EXPECT_EQ(acc.count(), 2u);
}

TEST(ErrorAccumulatorTest, Log10Floored) {
  EXPECT_DOUBLE_EQ(ErrorAccumulator::Log10(100.0), 2.0);
  EXPECT_LE(ErrorAccumulator::Log10(0.0), -5.0);  // floored, not -inf
  EXPECT_TRUE(std::isfinite(ErrorAccumulator::Log10(0.0)));
}

TEST(RatioHistogramTest, BucketBoundaries) {
  RatioHistogram hist;
  hist.Add(100, 5);     // 0.05  -> <0.1
  hist.Add(100, 20);    // 0.2   -> <0.5
  hist.Add(100, 80);    // 0.8   -> <1
  hist.Add(100, 120);   // 1.2   -> <1.5
  hist.Add(100, 500);   // 5     -> <10
  hist.Add(100, 5000);  // 50    -> >=10
  EXPECT_EQ(hist.count(), 6u);
  for (size_t b = 0; b < RatioHistogram::kBuckets; ++b) {
    EXPECT_NEAR(hist.Percent(b), 100.0 / 6, 1e-9) << b;
  }
}

TEST(RatioHistogramTest, ExactBoundariesGoUp) {
  RatioHistogram hist;
  hist.Add(10, 1);    // exactly 0.1 -> <0.5 bucket
  hist.Add(10, 10);   // exactly 1   -> <1.5 bucket
  hist.Add(10, 100);  // exactly 10  -> >=10 bucket
  EXPECT_DOUBLE_EQ(hist.Percent(1), 100.0 / 3);
  EXPECT_DOUBLE_EQ(hist.Percent(3), 100.0 / 3);
  EXPECT_DOUBLE_EQ(hist.Percent(5), 100.0 / 3);
}

TEST(RatioHistogramTest, EveryEdgePinnedToBucketAbove) {
  // Pins the documented half-open [lo, hi) convention for all five
  // edges (stats/metrics.h): a ratio exactly on an edge lands in the
  // bucket above it, so an exact estimate (ratio 1.0) counts as "<1.5",
  // not underestimated. Truths of 10 make every ratio an exact double.
  const struct {
    double estimate;
    size_t bucket;
  } kEdges[] = {
      {1, 1},    // ratio 0.1  -> "<0.5"
      {5, 2},    // ratio 0.5  -> "<1"
      {10, 3},   // ratio 1.0  -> "<1.5"
      {15, 4},   // ratio 1.5  -> "<10"
      {100, 5},  // ratio 10.0 -> ">=10"
  };
  for (const auto& e : kEdges) {
    RatioHistogram hist;
    hist.Add(10, e.estimate);
    EXPECT_DOUBLE_EQ(hist.Percent(e.bucket), 100.0)
        << "ratio " << e.estimate / 10;
  }
}

TEST(RatioHistogramTest, ZeroTruthIgnored) {
  RatioHistogram hist;
  hist.Add(0, 100);
  EXPECT_EQ(hist.count(), 0u);
}

TEST(RatioHistogramTest, LabelsMatchBucketCount) {
  EXPECT_EQ(RatioHistogram::Labels().size(), RatioHistogram::kBuckets);
}

}  // namespace
}  // namespace twig::stats
