#include <gtest/gtest.h>

#include <random>
#include <string>

#include "query/twig.h"

namespace twig::query {
namespace {

TEST(TwigTest, BuildSimpleTwig) {
  Twig t;
  TwigNodeId book = t.AddRoot("book");
  TwigNodeId author = t.AddElement(book, "author");
  TwigNodeId value = t.AddValue(author, "Su");
  EXPECT_EQ(t.root(), book);
  EXPECT_EQ(t.Tag(book), "book");
  EXPECT_EQ(t.Tag(author), "author");
  EXPECT_TRUE(t.IsValue(value));
  EXPECT_EQ(t.Value(value), "Su");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.ElementCount(), 2u);
}

TEST(TwigTest, RootToLeafPaths) {
  auto t = ParseTwig("a(b.c=\"x\", d)");
  ASSERT_TRUE(t.ok());
  auto paths = t->RootToLeafPaths();
  ASSERT_EQ(paths.size(), 2u);
  // a.b.c."x" and a.d
  EXPECT_EQ(paths[0].size(), 4u);
  EXPECT_EQ(paths[1].size(), 2u);
  EXPECT_EQ(paths[0][0], t->root());
  EXPECT_EQ(paths[1][0], t->root());
}

TEST(TwigTest, BranchNodes) {
  auto t = ParseTwig("a(b(c, d), e)");
  ASSERT_TRUE(t.ok());
  auto branches = t->BranchNodes();
  ASSERT_EQ(branches.size(), 2u);  // a and b
  EXPECT_EQ(t->Tag(branches[0]), "a");
  EXPECT_EQ(t->Tag(branches[1]), "b");
}

TEST(TwigTest, DepthIsEdgesFromRoot) {
  auto t = ParseTwig("a.b.c");
  ASSERT_TRUE(t.ok());
  auto paths = t->RootToLeafPaths();
  EXPECT_EQ(t->Depth(paths[0][0]), 0u);
  EXPECT_EQ(t->Depth(paths[0][2]), 2u);
}

TEST(TwigTest, WildcardDetection) {
  auto t = ParseTwig("book(*=\"x\")");
  ASSERT_TRUE(t.ok());
  TwigNodeId star = t->Children(t->root())[0];
  EXPECT_TRUE(t->IsWildcard(star));
  EXPECT_FALSE(t->IsWildcard(t->root()));
}

TEST(ParseTwigTest, DotChain) {
  auto t = ParseTwig("dblp.book.author=\"Suciu\"");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 4u);
  EXPECT_EQ(FormatTwig(*t), "dblp.book.author=\"Suciu\"");
}

TEST(ParseTwigTest, NestedChildren) {
  auto t = ParseTwig("book(publisher=\"MK\", year=\"1993\")");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->Children(t->root()).size(), 2u);
  EXPECT_EQ(FormatTwig(*t), "book(publisher=\"MK\", year=\"1993\")");
}

TEST(ParseTwigTest, WhitespaceTolerated) {
  auto t = ParseTwig("  book ( author = \"Su\" , year ) ");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(FormatTwig(*t), "book(author=\"Su\", year)");
}

TEST(ParseTwigTest, EscapedQuotes) {
  auto t = ParseTwig(R"(a="x\"y")");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->Value(t->Children(t->root())[0]), "x\"y");
}

TEST(ParseTwigTest, Errors) {
  EXPECT_FALSE(ParseTwig("").ok());
  EXPECT_FALSE(ParseTwig("a(b").ok());
  EXPECT_FALSE(ParseTwig("a=unquoted").ok());
  EXPECT_FALSE(ParseTwig("a)b").ok());
  EXPECT_FALSE(ParseTwig("a=\"unterminated").ok());
}

TEST(ParseTwigTest, DescendantEdges) {
  auto t = ParseTwig("a//b");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->size(), 2u);
  TwigNodeId b = t->Children(t->root())[0];
  EXPECT_EQ(t->EdgeFromParent(b), EdgeKind::kDescendant);
  EXPECT_EQ(t->EdgeFromParent(t->root()), EdgeKind::kChild);
  EXPECT_TRUE(t->HasSpecialEdgesOrWildcards());
  EXPECT_EQ(FormatTwig(*t), "a//b");

  auto mixed = ParseTwig("a(//b.c, d//e)");
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  EXPECT_EQ(FormatTwig(*mixed), "a(//b.c, d//e)");
}

TEST(ParseTwigTest, SlashIsChildEdgeAlias) {
  auto slash = ParseTwig("a/b/c");
  auto dot = ParseTwig("a.b.c");
  ASSERT_TRUE(slash.ok() && dot.ok());
  EXPECT_TRUE(TwigEquals(*slash, *dot));
  // '.' is the canonical spelling; '/' never round-trips verbatim.
  EXPECT_EQ(FormatTwig(*slash), "a.b.c");
}

TEST(ParseTwigTest, DescendantEdgeErrors) {
  // No root edge, and value predicates cannot hang on '//'.
  EXPECT_FALSE(ParseTwig("//a").ok());
  EXPECT_FALSE(ParseTwig("a//\"v\"").ok());
  EXPECT_FALSE(ParseTwig("a(//\"v\")").ok());
  EXPECT_FALSE(ParseTwig("a//=\"v\"").ok());
  EXPECT_FALSE(ParseTwig("a//").ok());
}

TEST(TwigTest, HasSpecialEdgesOrWildcards) {
  auto plain = ParseTwig("a(b=\"x\", c)");
  auto wild = ParseTwig("a(*, c)");
  auto desc = ParseTwig("a(b//d, c)");
  ASSERT_TRUE(plain.ok() && wild.ok() && desc.ok());
  EXPECT_FALSE(plain->HasSpecialEdgesOrWildcards());
  EXPECT_TRUE(wild->HasSpecialEdgesOrWildcards());
  EXPECT_TRUE(desc->HasSpecialEdgesOrWildcards());
}

TEST(TwigEqualsTest, EdgeKindsDistinguish) {
  auto child = ParseTwig("a.b");
  auto desc = ParseTwig("a//b");
  ASSERT_TRUE(child.ok() && desc.ok());
  EXPECT_FALSE(TwigEquals(*child, *desc));
  auto desc2 = ParseTwig("a//b");
  ASSERT_TRUE(desc2.ok());
  EXPECT_TRUE(TwigEquals(*desc, *desc2));
}

TEST(FormatTwigTest, DescendantRoundTrips) {
  for (const char* text :
       {"a//b", "a//b//c", "a.b//c.d", "a(//b, c//d=\"x\")",
        "*//b(c, //*)"}) {
    auto t = ParseTwig(text);
    ASSERT_TRUE(t.ok()) << text << ": " << t.status().ToString();
    const std::string printed = FormatTwig(*t);
    auto reparsed = ParseTwig(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_TRUE(TwigEquals(*t, *reparsed)) << text << " -> " << printed;
    EXPECT_EQ(FormatTwig(*reparsed), printed);
  }
}

TEST(FormatTwigTest, RoundTripsComplexTwig) {
  const char* text = "dblp.article(author=\"Sto\", year=\"1993\", title)";
  auto t = ParseTwig(text);
  ASSERT_TRUE(t.ok());
  auto reparsed = ParseTwig(FormatTwig(*t));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(TwigEquals(*t, *reparsed));
}

// FormatTwig prints a bare quoted string for a value child that cannot
// take the `=` form — a node with several value children, or value and
// element children mixed. Before ParseChild learned that form, these
// twigs printed fine but the print didn't parse back.
TEST(FormatTwigTest, MixedValueAndElementChildrenRoundTrip) {
  Twig t;
  TwigNodeId root = t.AddRoot("a");
  t.AddValue(root, "v1");
  t.AddElement(root, "b");
  t.AddValue(root, "v2");
  const std::string printed = FormatTwig(t);
  EXPECT_EQ(printed, "a(\"v1\", b, \"v2\")");
  auto reparsed = ParseTwig(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(TwigEquals(t, *reparsed));
}

TEST(FormatTwigTest, MultipleValueChildrenRoundTrip) {
  Twig t;
  TwigNodeId root = t.AddRoot("author");
  t.AddValue(root, "Su");
  t.AddValue(root, "Sto");
  auto reparsed = ParseTwig(FormatTwig(t));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(TwigEquals(t, *reparsed));
}

// Fuzz Parse(Format(t)) == t over random twig shapes whose value
// strings draw from an alphabet of everything the grammar treats as
// structure: quotes, backslashes, parens, commas, dots, equals,
// whitespace. Escaping must round-trip all of it.
TEST(FormatTwigTest, HostileValueFuzzRoundTrip) {
  const std::string alphabet = "\"\\(),.= \tabz*_-:";
  std::mt19937 rng(0x7719);
  std::uniform_int_distribution<size_t> alpha(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> value_len(0, 12);
  std::uniform_int_distribution<int> fanout(0, 3);
  std::uniform_int_distribution<int> choice(0, 99);
  const char* tags[] = {"a", "b", "cd", "x1", "*"};
  std::uniform_int_distribution<size_t> tag_pick(0, 4);

  auto random_value = [&] {
    std::string v;
    const int n = value_len(rng);
    for (int i = 0; i < n; ++i) v.push_back(alphabet[alpha(rng)]);
    return v;
  };

  for (int iteration = 0; iteration < 300; ++iteration) {
    Twig t;
    TwigNodeId root = t.AddRoot(tags[tag_pick(rng)]);
    // Grow breadth-first up to a small size; values are always leaves.
    std::vector<TwigNodeId> frontier = {root};
    while (!frontier.empty() && t.size() < 12) {
      TwigNodeId node = frontier.back();
      frontier.pop_back();
      const int children = fanout(rng);
      for (int c = 0; c < children && t.size() < 12; ++c) {
        if (choice(rng) < 40) {
          t.AddValue(node, random_value());
        } else {
          const EdgeKind edge = choice(rng) < 30 ? EdgeKind::kDescendant
                                                 : EdgeKind::kChild;
          frontier.push_back(t.AddElement(node, tags[tag_pick(rng)], edge));
        }
      }
    }
    const std::string printed = FormatTwig(t);
    auto reparsed = ParseTwig(printed);
    ASSERT_TRUE(reparsed.ok())
        << "iteration " << iteration << ": " << printed << " -> "
        << reparsed.status().ToString();
    EXPECT_TRUE(TwigEquals(t, *reparsed))
        << "iteration " << iteration << ": " << printed;
    // Printing is idempotent: the reparse prints identically.
    EXPECT_EQ(FormatTwig(*reparsed), printed);
  }
}

TEST(TwigEqualsTest, DetectsDifferences) {
  auto a = ParseTwig("a(b, c)");
  auto b = ParseTwig("a(b, c)");
  auto c = ParseTwig("a(c, b)");
  auto d = ParseTwig("a(b, c=\"x\")");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_TRUE(TwigEquals(*a, *b));
  EXPECT_FALSE(TwigEquals(*a, *c));  // child order matters structurally
  EXPECT_FALSE(TwigEquals(*a, *d));
}

TEST(TwigEqualsTest, EmptyTwigs) {
  Twig a, b;
  EXPECT_TRUE(TwigEquals(a, b));
}

}  // namespace
}  // namespace twig::query
