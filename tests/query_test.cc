#include <gtest/gtest.h>

#include "query/twig.h"

namespace twig::query {
namespace {

TEST(TwigTest, BuildSimpleTwig) {
  Twig t;
  TwigNodeId book = t.AddRoot("book");
  TwigNodeId author = t.AddElement(book, "author");
  TwigNodeId value = t.AddValue(author, "Su");
  EXPECT_EQ(t.root(), book);
  EXPECT_EQ(t.Tag(book), "book");
  EXPECT_EQ(t.Tag(author), "author");
  EXPECT_TRUE(t.IsValue(value));
  EXPECT_EQ(t.Value(value), "Su");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.ElementCount(), 2u);
}

TEST(TwigTest, RootToLeafPaths) {
  auto t = ParseTwig("a(b.c=\"x\", d)");
  ASSERT_TRUE(t.ok());
  auto paths = t->RootToLeafPaths();
  ASSERT_EQ(paths.size(), 2u);
  // a.b.c."x" and a.d
  EXPECT_EQ(paths[0].size(), 4u);
  EXPECT_EQ(paths[1].size(), 2u);
  EXPECT_EQ(paths[0][0], t->root());
  EXPECT_EQ(paths[1][0], t->root());
}

TEST(TwigTest, BranchNodes) {
  auto t = ParseTwig("a(b(c, d), e)");
  ASSERT_TRUE(t.ok());
  auto branches = t->BranchNodes();
  ASSERT_EQ(branches.size(), 2u);  // a and b
  EXPECT_EQ(t->Tag(branches[0]), "a");
  EXPECT_EQ(t->Tag(branches[1]), "b");
}

TEST(TwigTest, DepthIsEdgesFromRoot) {
  auto t = ParseTwig("a.b.c");
  ASSERT_TRUE(t.ok());
  auto paths = t->RootToLeafPaths();
  EXPECT_EQ(t->Depth(paths[0][0]), 0u);
  EXPECT_EQ(t->Depth(paths[0][2]), 2u);
}

TEST(TwigTest, WildcardDetection) {
  auto t = ParseTwig("book(*=\"x\")");
  ASSERT_TRUE(t.ok());
  TwigNodeId star = t->Children(t->root())[0];
  EXPECT_TRUE(t->IsWildcard(star));
  EXPECT_FALSE(t->IsWildcard(t->root()));
}

TEST(ParseTwigTest, DotChain) {
  auto t = ParseTwig("dblp.book.author=\"Suciu\"");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 4u);
  EXPECT_EQ(FormatTwig(*t), "dblp.book.author=\"Suciu\"");
}

TEST(ParseTwigTest, NestedChildren) {
  auto t = ParseTwig("book(publisher=\"MK\", year=\"1993\")");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->Children(t->root()).size(), 2u);
  EXPECT_EQ(FormatTwig(*t), "book(publisher=\"MK\", year=\"1993\")");
}

TEST(ParseTwigTest, WhitespaceTolerated) {
  auto t = ParseTwig("  book ( author = \"Su\" , year ) ");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(FormatTwig(*t), "book(author=\"Su\", year)");
}

TEST(ParseTwigTest, EscapedQuotes) {
  auto t = ParseTwig(R"(a="x\"y")");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->Value(t->Children(t->root())[0]), "x\"y");
}

TEST(ParseTwigTest, Errors) {
  EXPECT_FALSE(ParseTwig("").ok());
  EXPECT_FALSE(ParseTwig("a(b").ok());
  EXPECT_FALSE(ParseTwig("a=unquoted").ok());
  EXPECT_FALSE(ParseTwig("a)b").ok());
  EXPECT_FALSE(ParseTwig("a=\"unterminated").ok());
}

TEST(FormatTwigTest, RoundTripsComplexTwig) {
  const char* text = "dblp.article(author=\"Sto\", year=\"1993\", title)";
  auto t = ParseTwig(text);
  ASSERT_TRUE(t.ok());
  auto reparsed = ParseTwig(FormatTwig(*t));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(TwigEquals(*t, *reparsed));
}

TEST(TwigEqualsTest, DetectsDifferences) {
  auto a = ParseTwig("a(b, c)");
  auto b = ParseTwig("a(b, c)");
  auto c = ParseTwig("a(c, b)");
  auto d = ParseTwig("a(b, c=\"x\")");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_TRUE(TwigEquals(*a, *b));
  EXPECT_FALSE(TwigEquals(*a, *c));  // child order matters structurally
  EXPECT_FALSE(TwigEquals(*a, *d));
}

TEST(TwigEqualsTest, EmptyTwigs) {
  Twig a, b;
  EXPECT_TRUE(TwigEquals(a, b));
}

}  // namespace
}  // namespace twig::query
