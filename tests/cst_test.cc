#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cst/cst.h"
#include "test_trees.h"
#include "util/failpoint.h"

namespace twig::cst {
namespace {

using suffix::PathSuffixTree;
using tree::Tree;

/// Walks the CST along "tags:chars" (see suffix_test.cc).
CstNodeId Find(const Cst& cst, const std::string& spec) {
  const size_t colon = spec.find(':');
  const std::string tags =
      spec.substr(0, colon == std::string::npos ? spec.size() : colon);
  CstNodeId node = cst.root();
  if (!tags.empty()) {
    size_t start = 0;
    while (start <= tags.size()) {
      size_t dot = tags.find('.', start);
      const std::string tag =
          tags.substr(start, dot == std::string::npos ? std::string::npos
                                                      : dot - start);
      node = cst.Step(node, cst.TagSymbolFor(tag));
      if (node == kNoCstNode) return kNoCstNode;
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
  }
  if (colon != std::string::npos) {
    for (char c : spec.substr(colon + 1)) {
      node = cst.Step(node, suffix::CharSymbol(c));
      if (node == kNoCstNode) return kNoCstNode;
    }
  }
  return node;
}

Cst BuildFullCst(const Tree& data) {
  auto pst = PathSuffixTree::Build(data);
  CstOptions options;
  options.prune_threshold = 1;
  return Cst::Build(data, pst, options);
}

TEST(CstTest, PresenceCountsFigureOne) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildFullCst(data);
  // Presence = distinct rooting nodes.
  EXPECT_DOUBLE_EQ(cst.PresenceCount(Find(cst, "book")), 3.0);
  EXPECT_DOUBLE_EQ(cst.PresenceCount(Find(cst, "book.author")), 3.0);
  EXPECT_DOUBLE_EQ(cst.PresenceCount(Find(cst, "author")), 6.0);
  EXPECT_DOUBLE_EQ(cst.PresenceCount(Find(cst, "book.year:Y1")), 3.0);
  EXPECT_DOUBLE_EQ(cst.PresenceCount(Find(cst, "dblp.book")), 1.0);
}

TEST(CstTest, OccurrenceCountsFigureOne) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildFullCst(data);
  // Occurrence = node-sequence instances: 6 (book,author) pairs
  // (the paper's Section 5 example numbers).
  EXPECT_DOUBLE_EQ(cst.OccurrenceCount(Find(cst, "book.author")), 6.0);
  EXPECT_DOUBLE_EQ(cst.OccurrenceCount(Find(cst, "book.year:Y1")), 3.0);
  EXPECT_DOUBLE_EQ(cst.OccurrenceCount(Find(cst, "dblp.book.author")), 6.0);
  EXPECT_DOUBLE_EQ(cst.OccurrenceCount(Find(cst, "author:A1")), 3.0);
  EXPECT_DOUBLE_EQ(cst.OccurrenceCount(Find(cst, "author:A2")), 2.0);
}

TEST(CstTest, CharOnlySubpathCounts) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildFullCst(data);
  // ":A" occurs once per author value (6) plus nowhere else.
  EXPECT_DOUBLE_EQ(cst.PresenceCount(Find(cst, ":A")), 6.0);
  // ":1" occurs in A1 (x3), T1 (x1), Y1 (x3).
  EXPECT_DOUBLE_EQ(cst.PresenceCount(Find(cst, ":1")), 7.0);
}

TEST(CstTest, RepeatedLabelsOnOnePathPresenceIsDistinctRoots) {
  // a/b/a/b chain with two leaves: subpath "a.b" roots at two distinct
  // nodes even though markers alternate (the regression that forces
  // root-at-a-time accumulation).
  Tree data;
  auto a1 = data.AddRoot("a");
  auto b1 = data.AddElement(a1, "b");
  auto a2 = data.AddElement(b1, "a");
  auto b2 = data.AddElement(a2, "b");
  data.AddValue(b2, "x");
  data.AddValue(b2, "y");
  Cst cst = BuildFullCst(data);
  EXPECT_DOUBLE_EQ(cst.PresenceCount(Find(cst, "a.b")), 2.0);
  EXPECT_DOUBLE_EQ(cst.OccurrenceCount(Find(cst, "a.b")), 2.0);
  EXPECT_DOUBLE_EQ(cst.PresenceCount(Find(cst, "a")), 2.0);
  EXPECT_DOUBLE_EQ(cst.PresenceCount(Find(cst, "b.a.b")), 1.0);
}

TEST(CstTest, SignaturesOnlyOnTagRootedSubpaths) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildFullCst(data);
  EXPECT_NE(cst.GetSignature(Find(cst, "book.author")), nullptr);
  EXPECT_NE(cst.GetSignature(Find(cst, "author:A1")), nullptr);
  EXPECT_EQ(cst.GetSignature(Find(cst, ":A")), nullptr);
}

TEST(CstTest, SignatureCapturesRootingSets) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildFullCst(data);
  // "book.author" and "book.year" are rooted at the same 3 book nodes:
  // identical sets, so identical signatures and resemblance 1.
  const auto* sa = cst.GetSignature(Find(cst, "book.author"));
  const auto* sy = cst.GetSignature(Find(cst, "book.year"));
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sy, nullptr);
  EXPECT_EQ(*sa, *sy);
  // "author:A3" roots at 1 author node; disjoint from year nodes.
  const auto* s3 = cst.GetSignature(Find(cst, "author:A3"));
  ASSERT_NE(s3, nullptr);
  EXPECT_NE(*s3, *sa);
}

TEST(CstTest, PruningKeepsFrequentDropsRare) {
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  CstOptions options;
  options.prune_threshold = 3;
  Cst cst = Cst::Build(data, pst, options);
  EXPECT_NE(Find(cst, "book.author"), kNoCstNode);  // pt = 6
  EXPECT_NE(Find(cst, "year:Y1"), kNoCstNode);      // pt = 3
  EXPECT_EQ(Find(cst, "title:T1"), kNoCstNode);     // pt = 1
  EXPECT_EQ(Find(cst, "author:A3"), kNoCstNode);    // pt = 1
}

TEST(CstTest, PrunedCstClosedUnderSubpaths) {
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  for (uint32_t threshold : {2, 3, 6}) {
    CstOptions options;
    options.prune_threshold = threshold;
    Cst cst = Cst::Build(data, pst, options);
    // Every node's parent exists and suffix of every retained subpath
    // is retained: spot-check with the known hierarchy.
    if (Find(cst, "dblp.book.author") != kNoCstNode) {
      EXPECT_NE(Find(cst, "book.author"), kNoCstNode);
      EXPECT_NE(Find(cst, "author"), kNoCstNode);
      EXPECT_NE(Find(cst, "dblp.book"), kNoCstNode);
    }
  }
}

TEST(CstTest, BudgetedBuildRespectsBudget) {
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  CstOptions options;
  options.space_budget_bytes = 2000;
  Cst cst = Cst::Build(data, pst, options);
  EXPECT_LE(cst.size_bytes(), 2000u);
  EXPECT_GT(cst.node_count(), 1u);
  // A tighter budget retains no more nodes.
  options.space_budget_bytes = 600;
  Cst tight = Cst::Build(data, pst, options);
  EXPECT_LE(tight.size_bytes(), 600u);
  EXPECT_LE(tight.node_count(), cst.node_count());
}

TEST(CstTest, LongestMatch) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildFullCst(data);
  std::vector<suffix::Symbol> symbols = {
      cst.TagSymbolFor("book"), cst.TagSymbolFor("author"),
      suffix::CharSymbol('A'), suffix::CharSymbol('9')};
  auto match = cst.LongestMatch(symbols, 0);
  EXPECT_EQ(match.length, 3u);  // book.author.A but not the '9'
  EXPECT_EQ(match.node, Find(cst, "book.author:A"));
  auto from1 = cst.LongestMatch(symbols, 1);
  EXPECT_EQ(from1.length, 2u);  // author.A
}

TEST(CstTest, UnknownTagNeverMatches) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildFullCst(data);
  EXPECT_EQ(cst.TagSymbolFor("nosuchtag"), Cst::kUnknownSymbol);
  EXPECT_EQ(cst.Step(cst.root(), Cst::kUnknownSymbol), kNoCstNode);
}

TEST(CstSerializeTest, RoundTripPreservesEverything) {
  Tree data = testutil::FigureOneTree();
  Cst original = BuildFullCst(data);
  const std::string blob = original.Serialize();
  auto restored = Cst::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->node_count(), original.node_count());
  EXPECT_EQ(restored->signature_count(), original.signature_count());
  EXPECT_EQ(restored->data_node_count(), original.data_node_count());
  EXPECT_EQ(restored->prune_threshold(), original.prune_threshold());
  EXPECT_EQ(restored->size_bytes(), original.size_bytes());
  // Structure, counts, and signatures survive.
  for (const char* spec : {"book.author", "book.year:Y1", "author:A1", ":A"}) {
    CstNodeId a = Find(original, spec);
    CstNodeId b = Find(*restored, spec);
    ASSERT_NE(a, kNoCstNode) << spec;
    ASSERT_NE(b, kNoCstNode) << spec;
    EXPECT_DOUBLE_EQ(restored->PresenceCount(b), original.PresenceCount(a));
    EXPECT_DOUBLE_EQ(restored->OccurrenceCount(b),
                     original.OccurrenceCount(a));
    const auto* sa = original.GetSignature(a);
    const auto* sb = restored->GetSignature(b);
    ASSERT_EQ(sa == nullptr, sb == nullptr) << spec;
    if (sa != nullptr) EXPECT_EQ(*sa, *sb);
  }
}

TEST(CstTest, OutOfRangeSymbolsNeverMatch) {
  // Regression: the old child map keyed (node << 22) | symbol without
  // masking the symbol, so stepping node n with symbol (1 << 22) | s
  // aliased ((n + 1) << 22) | s and returned node n+1's child along s.
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildFullCst(data);
  std::vector<suffix::Symbol> in_range;
  for (const char* tag : {"dblp", "book", "author", "year"}) {
    ASSERT_NE(cst.TagSymbolFor(tag), Cst::kUnknownSymbol) << tag;
    in_range.push_back(cst.TagSymbolFor(tag));
  }
  for (char c : {'A', 'Y', '1'}) in_range.push_back(suffix::CharSymbol(c));
  for (CstNodeId n = 0; n < static_cast<CstNodeId>(cst.node_count()); ++n) {
    EXPECT_EQ(cst.Step(n, Cst::kUnknownSymbol), kNoCstNode);
    EXPECT_EQ(cst.Step(n, suffix::kMaxSymbol + 1), kNoCstNode);
    for (suffix::Symbol s : in_range) {
      EXPECT_EQ(cst.Step(n, s | (1u << 22)), kNoCstNode);
    }
  }
}

TEST(CstSerializeTest, RejectsCorruptInput) {
  Tree data = testutil::FigureOneTree();
  Cst original = BuildFullCst(data);
  std::string blob = original.Serialize();
  EXPECT_FALSE(Cst::Deserialize("garbage").ok());
  EXPECT_FALSE(Cst::Deserialize(blob.substr(0, blob.size() / 2)).ok());
  std::string extended = blob + "x";
  EXPECT_FALSE(Cst::Deserialize(extended).ok());
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  auto result = Cst::Deserialize(bad_magic);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(CstSerializeTest, RejectsDuplicateLabelNames) {
  // Interning would silently collapse duplicate names and shift every
  // later LabelId, so the blob's tag symbols would point at the wrong
  // labels; Deserialize must reject instead.
  Tree data = testutil::FigureOneTree();
  Cst original = BuildFullCst(data);
  std::string blob = original.Serialize();
  const size_t year = blob.find("year");
  ASSERT_NE(year, std::string::npos);
  blob.replace(year, 4, "book");
  auto result = Cst::Deserialize(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(CstSerializeTest, TruncationSweepAlwaysRejects) {
  // Every section's extent is implied by earlier content, so any strict
  // prefix must end inside some section and fail cleanly — no crash, no
  // blob-controlled allocation. The one exception is by design: a
  // prefix that strips exactly the 12-byte checksum footer is a valid
  // legacy (pre-footer) blob and must still load.
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  CstOptions options;
  options.prune_threshold = 1;
  options.signature_length = 8;  // keep the blob small; sweep is O(n^2)
  Cst original = Cst::Build(data, pst, options);
  const std::string blob = original.Serialize();
  ASSERT_TRUE(Cst::Deserialize(blob).ok());
  const size_t legacy_len = blob.size() - 12;
  for (size_t len = 0; len < blob.size(); ++len) {
    auto result = Cst::Deserialize(blob.substr(0, len));
    if (len == legacy_len) {
      EXPECT_TRUE(result.ok()) << "footer-stripped legacy blob rejected";
    } else {
      EXPECT_FALSE(result.ok()) << "truncated at " << len;
    }
  }
}

TEST(CstSerializeTest, ChecksumFooterVerifiesAndLegacyBlobsLoad) {
  Tree data = testutil::FigureOneTree();
  Cst original = BuildFullCst(data);
  const std::string blob = original.Serialize();
  ASSERT_GT(blob.size(), 12u);
  // The footer is present and self-identifying.
  EXPECT_EQ(blob.substr(blob.size() - 12, 4), "TWCK");
  ASSERT_TRUE(Cst::Deserialize(blob).ok());

  // A legacy blob (everything before the footer) still loads, and
  // restores the same summary.
  const std::string legacy = blob.substr(0, blob.size() - 12);
  auto restored = Cst::Deserialize(legacy);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->node_count(), original.node_count());

  // A corrupted stored checksum is rejected with the structured error.
  std::string bad_sum = blob;
  bad_sum[blob.size() - 1] ^= 0x01;
  auto result = Cst::Deserialize(bad_sum);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("checksum mismatch"),
            std::string::npos);

  // Garbage where the footer magic should be reads as trailing bytes.
  std::string bad_magic = blob;
  bad_magic[blob.size() - 12] = 'X';
  result = Cst::Deserialize(bad_magic);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(CstSerializeTest, ChecksumCatchesPayloadBitFlips) {
  // Sampled single-bit flips across the payload: the blob must be
  // rejected — by payload validation or, for flips that land in spots
  // the grammar cannot see (count slack, probability bytes), by the
  // checksum. No flipped blob may load.
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  CstOptions options;
  options.prune_threshold = 1;
  options.signature_length = 8;
  Cst original = Cst::Build(data, pst, options);
  const std::string blob = original.Serialize();
  for (size_t pos = 8; pos < blob.size() - 12; pos += 13) {
    std::string flipped = blob;
    flipped[pos] ^= 0x10;
    EXPECT_FALSE(Cst::Deserialize(flipped).ok()) << "bit flip at " << pos;
  }
}

TEST(CstSerializeTest, DeserializeFailpointMapsToCorruption) {
  util::FailpointRegistry::Get().Reset();
  Tree data = testutil::FigureOneTree();
  Cst original = BuildFullCst(data);
  const std::string blob = original.Serialize();
  ASSERT_TRUE(
      util::FailpointRegistry::Get().Configure("cst/deserialize", "error")
          .ok());
  auto result = Cst::Deserialize(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("injected fault"),
            std::string::npos);
  util::FailpointRegistry::Get().Reset();
  EXPECT_TRUE(Cst::Deserialize(blob).ok());
}

TEST(CstSerializeTest, ByteFuzzSweepNeverCrashes) {
  // Stamp 0xFF over every 4-byte window in turn: whatever counts or
  // node fields that clobbers, Deserialize must either reject or
  // produce a CST that is safe to walk (bounds hold under ASan).
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  CstOptions options;
  options.prune_threshold = 1;
  options.signature_length = 8;
  Cst original = Cst::Build(data, pst, options);
  const std::string blob = original.Serialize();
  for (size_t off = 0; off + 4 <= blob.size(); ++off) {
    std::string fuzzed = blob;
    for (size_t i = 0; i < 4; ++i) fuzzed[off + i] = '\xff';
    auto result = Cst::Deserialize(fuzzed);
    if (result.ok()) {
      CstNodeId node = result->Step(result->root(),
                                    result->TagSymbolFor("book"));
      if (node != kNoCstNode) {
        (void)result->PresenceCount(node);
        (void)result->GetSignature(node);
      }
    }
  }
}

TEST(CstTest, GlobalStats) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildFullCst(data);
  EXPECT_EQ(cst.data_node_count(), data.size());
  EXPECT_EQ(cst.prune_threshold(), 1u);
  EXPECT_GT(cst.size_bytes(), 0u);
  EXPECT_EQ(cst.signature_length(), CstOptions{}.signature_length);
}

}  // namespace
}  // namespace twig::cst
