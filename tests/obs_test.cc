#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/estimator.h"
#include "cst/cst.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "query/twig.h"
#include "test_trees.h"

namespace twig::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON syntax checker, so the tests verify
// "the export actually parses" rather than just eyeballing substrings.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_++]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            std::string(".eE+-").find(s_[pos_]) != std::string::npos)) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool Expect(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

TEST(JsonCheckerTest, SanityOnHandWrittenCases) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("{\"a\":[1,2.5,-3e4],\"b\":{\"c\":null}}"));
  EXPECT_FALSE(IsValidJson("{\"a\":1,}"));
  EXPECT_FALSE(IsValidJson("{\"a\" 1}"));
  EXPECT_FALSE(IsValidJson("[1,2"));
  EXPECT_FALSE(IsValidJson("{\"a\":\"\x01\"}"));
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriterTest, NestedContainersAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Uint(1);
  w.Key("b");
  w.BeginArray();
  w.Int(-2);
  w.Bool(true);
  w.Null();
  w.BeginObject();
  w.Key("c");
  w.String("x");
  w.EndObject();
  w.EndArray();
  w.EndObject();
  const std::string json = std::move(w).str();
  EXPECT_EQ(json, "{\"a\":1,\"b\":[-2,true,null,{\"c\":\"x\"}]}");
  EXPECT_TRUE(IsValidJson(json));
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject();
  w.Key("k\"ey");
  w.String("line\nbreak\ttab\\slash\x01");
  w.EndObject();
  const std::string json = std::move(w).str();
  EXPECT_EQ(json,
            "{\"k\\\"ey\":\"line\\nbreak\\ttab\\\\slash\\u0001\"}");
  EXPECT_TRUE(IsValidJson(json));
}

TEST(JsonWriterTest, ControlBytesEscapeAsUnicode) {
  // Every byte in U+0000..U+001F must leave as an escape, never raw.
  std::string raw;
  for (int c = 0; c < 0x20; ++c) raw.push_back(static_cast<char>(c));
  JsonWriter w;
  w.BeginObject();
  w.Key("ctl");
  w.String(raw);
  w.EndObject();
  const std::string json = std::move(w).str();
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << json;
  }
  EXPECT_NE(json.find("\\u0000"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
  EXPECT_TRUE(IsValidJson(json));
}

TEST(JsonWriterTest, RawValueEmbedsPreRenderedDocuments) {
  JsonWriter inner;
  inner.BeginObject();
  inner.Key("x");
  inner.Uint(1);
  inner.EndObject();
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.RawValue(inner.str());
  w.Key("b");
  w.BeginArray();
  w.RawValue("[1,2]");
  w.RawValue("\"s\"");
  w.EndArray();
  w.EndObject();
  const std::string json = std::move(w).str();
  EXPECT_EQ(json, "{\"a\":{\"x\":1},\"b\":[[1,2],\"s\"]}");
  EXPECT_TRUE(IsValidJson(json));
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(1.5);
  w.Double(std::nan(""));
  w.Double(INFINITY);
  w.EndArray();
  const std::string json = std::move(w).str();
  EXPECT_EQ(json, "[1.5,null,null]");
}

// ---------------------------------------------------------------------------
// ParseJson (the wire-protocol reader)

TEST(ParseJsonTest, ParsesScalarsContainersAndWhitespace) {
  Result<JsonValue> r = ParseJson(
      "  {\"s\": \"hi\", \"n\": -2.5e2, \"b\": true, \"z\": null,"
      " \"a\": [1, \"two\", {\"k\": false}]}  ");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const JsonValue& v = r.value();
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v.GetString("s"), "hi");
  EXPECT_DOUBLE_EQ(v.GetNumber("n"), -250.0);
  EXPECT_TRUE(v.GetBool("b"));
  ASSERT_NE(v.Find("z"), nullptr);
  EXPECT_EQ(v.Find("z")->kind, JsonValue::Kind::kNull);
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(a->elements.size(), 3u);
  EXPECT_DOUBLE_EQ(a->elements[0].number_value, 1.0);
  EXPECT_EQ(a->elements[1].string_value, "two");
  EXPECT_FALSE(a->elements[2].GetBool("k", true));
}

TEST(ParseJsonTest, DecodesEscapesIncludingSurrogatePairs) {
  Result<JsonValue> r = ParseJson(
      "\"q\\\" b\\\\ s\\/ \\b\\f\\n\\r\\t u\\u0041 nul\\u0000"
      " pair\\ud83d\\ude00\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string expected = std::string("q\" b\\ s/ \b\f\n\r\t uA nul") +
                               '\0' + " pair\xf0\x9f\x98\x80";
  EXPECT_EQ(r.value().string_value, expected);
}

TEST(ParseJsonTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,2", "{\"a\":1,}", "{\"a\" 1}", "tru", "01", "1.",
        "+1", "\"\x01\"", "\"unterminated", "\"bad\\q\"", "\"\\u12\"",
        "\"\\ud83d\"",            // lone high surrogate
        "{\"a\":1} trailing",     // bytes after the document
        "nan", "[1] [2]"}) {
    Result<JsonValue> r = ParseJson(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
  }
}

TEST(ParseJsonTest, EnforcesTheDepthLimit) {
  std::string deep_ok(64, '[');
  deep_ok += std::string(64, ']');
  EXPECT_TRUE(ParseJson(deep_ok).ok());
  std::string too_deep(65, '[');
  too_deep += std::string(65, ']');
  EXPECT_FALSE(ParseJson(too_deep).ok());
}

TEST(ParseJsonTest, RoundTripsWriterOutputWithHostileBytes) {
  // NUL, newline, quote, backslash, DEL, and multi-byte UTF-8 all
  // survive writer -> parser byte-identically.
  const std::string hostile = std::string("a\0b", 3) + "\nq\"uote\\ba\x7f" +
                              "\xf0\x9f\x98\x80 end";
  JsonWriter w;
  w.BeginObject();
  w.Key(hostile);
  w.String(hostile);
  w.Key("nested");
  w.BeginArray();
  w.String(std::string("\0", 1));
  w.Double(-1.25);
  w.EndArray();
  w.EndObject();
  const std::string json = std::move(w).str();
  Result<JsonValue> r = ParseJson(json);
  ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n" << json;
  const JsonValue& v = r.value();
  ASSERT_EQ(v.members.size(), 2u);
  EXPECT_EQ(v.members[0].first, hostile);
  EXPECT_EQ(v.members[0].second.string_value, hostile);
  const JsonValue* nested = v.Find("nested");
  ASSERT_NE(nested, nullptr);
  ASSERT_EQ(nested->elements.size(), 2u);
  EXPECT_EQ(nested->elements[0].string_value, std::string("\0", 1));
  EXPECT_DOUBLE_EQ(nested->elements[1].number_value, -1.25);
}

TEST(ParseJsonTest, RoundTripsAMetricsSnapshotExport) {
  // The serving layer embeds this export via RawValue; it must parse.
  Result<JsonValue> r =
      ParseJson(MetricsRegistry::Get().Snapshot().ToJson());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().Find("counters"), nullptr);
}

// ---------------------------------------------------------------------------
// Counters and the metrics registry

TEST(MetricsTest, CounterNamesAreStableJsonKeys) {
  EXPECT_STREQ(CounterName(Counter::kEstimates), "estimates");
  EXPECT_STREQ(CounterName(Counter::kServeEnqueued), "serve_enqueued");
  EXPECT_STREQ(CounterName(Counter::kServeServed), "serve_served");
  EXPECT_STREQ(CounterName(Counter::kServeRejected), "serve_rejected");
  EXPECT_STREQ(CounterName(Counter::kServeDeadlineMisses),
               "serve_deadline_misses");
  EXPECT_STREQ(CounterName(Counter::kSnapshotPublishes),
               "snapshot_publishes");
  EXPECT_STREQ(CounterName(Counter::kCstSubpathLookups),
               "cst_subpath_lookups");
  EXPECT_STREQ(CounterName(Counter::kCstSubpathHits), "cst_subpath_hits");
  EXPECT_STREQ(CounterName(Counter::kCstSubpathMisses),
               "cst_subpath_misses");
  EXPECT_STREQ(CounterName(Counter::kSethashIntersections),
               "sethash_intersections");
  EXPECT_STREQ(CounterName(Counter::kTwigletMoFallbacks),
               "twiglet_mo_fallbacks");
  EXPECT_STREQ(CounterName(Counter::kTracesRecorded), "traces_recorded");
  EXPECT_STREQ(CounterName(Counter::kBatches), "batches");
}

TEST(MetricsTest, CountersToJsonEmitsEveryCounter) {
  CounterArray counters{};
  counters[static_cast<size_t>(Counter::kEstimates)] = 7;
  const std::string json = CountersToJson(counters);
  EXPECT_TRUE(IsValidJson(json));
  EXPECT_NE(json.find("\"estimates\":7"), std::string::npos);
  for (size_t i = 0; i < kCounterCount; ++i) {
    EXPECT_NE(json.find(std::string("\"") +
                        CounterName(static_cast<Counter>(i)) + "\""),
              std::string::npos)
        << i;
  }
}

TEST(MetricsTest, AddIsVisibleInSnapshotDelta) {
  auto& registry = MetricsRegistry::Get();
  const MetricsSnapshot before = registry.Snapshot();
  registry.Add(Counter::kEstimates, 3);
  registry.Add(Counter::kCstSubpathHits);
  const MetricsSnapshot delta = registry.Snapshot().Delta(before);
  EXPECT_GE(delta.counters[static_cast<size_t>(Counter::kEstimates)], 3u);
  EXPECT_GE(delta.counters[static_cast<size_t>(Counter::kCstSubpathHits)],
            1u);
}

TEST(MetricsTest, AggregatesAcrossThreads) {
  auto& registry = MetricsRegistry::Get();
  const MetricsSnapshot before = registry.Snapshot();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        CountEvent(Counter::kSethashIntersections);
      }
    });
  }
  for (auto& w : workers) w.join();
  const MetricsSnapshot delta = registry.Snapshot().Delta(before);
  EXPECT_GE(
      delta.counters[static_cast<size_t>(Counter::kSethashIntersections)],
      kThreads * kPerThread);
}

TEST(MetricsTest, LatencyHistogramBucketsAndQuantiles) {
  auto& registry = MetricsRegistry::Get();
  const MetricsSnapshot before = registry.Snapshot();
  // Series 0 (Leaf) is not exercised concurrently by other tests here.
  for (int i = 0; i < 100; ++i) registry.RecordLatency(0, 1000);  // ~1 us
  registry.RecordLatency(0, 1u << 20);                            // ~1 ms
  const MetricsSnapshot delta = registry.Snapshot().Delta(before);
  const HistogramSnapshot& h = delta.latency[0];
  EXPECT_EQ(h.count, 101u);
  EXPECT_EQ(h.sum_nanos, 100u * 1000u + (1u << 20));
  // 1000 ns lands in bucket [512, 1024): index 10 = bit_width(1000).
  EXPECT_EQ(h.buckets[10], 100u);
  EXPECT_EQ(h.buckets[21], 1u);  // 2^20 in [2^20, 2^21)
  EXPECT_NEAR(h.MeanNanos(), (100.0 * 1000 + (1u << 20)) / 101, 1e-9);
  // p50 within log-bucket resolution of 1000 ns; p99+ catches the tail.
  EXPECT_LE(h.QuantileNanos(0.5), 1024.0);
  EXPECT_GE(h.QuantileNanos(0.999), 1 << 20);
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.QuantileNanos(0.5), 0.0);
}

TEST(MetricsTest, DeltaClampsNegativeToZero) {
  MetricsSnapshot a;
  MetricsSnapshot b;
  a.counters[0] = 5;
  b.counters[0] = 9;
  const MetricsSnapshot d = a.Delta(b);  // a - b < 0
  EXPECT_EQ(d.counters[0], 0u);
}

TEST(MetricsTest, SnapshotJsonParsesAndHasAllSeries) {
  const std::string json = MetricsRegistry::Get().Snapshot().ToJson();
  EXPECT_TRUE(IsValidJson(json));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"estimate_latency\""), std::string::npos);
  for (const char* name : kLatencySeriesNames) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""),
              std::string::npos)
        << name;
  }
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Explain traces, end to end through the estimator

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : data_(testutil::FigureOneTree()) {
    auto pst = suffix::PathSuffixTree::Build(data_);
    cst::CstOptions options;
    options.prune_threshold = 1;
    cst_ = cst::Cst::Build(data_, pst, options);
  }

  Trace Explain(const char* twig_text, core::Algorithm algorithm) {
    auto twig = query::ParseTwig(twig_text);
    EXPECT_TRUE(twig.ok());
    Trace trace;
    core::EstimateOptions options;
    options.trace = &trace;
    core::TwigEstimator(&cst_).Estimate(*twig, algorithm, options);
    return trace;
  }

  tree::Tree data_;
  cst::Cst cst_;
};

TEST_F(TraceTest, RecordsHeaderAndEstimate) {
  const Trace trace =
      Explain("book(author, year=\"Y1\")", core::Algorithm::kMsh);
  EXPECT_EQ(trace.query, "book(author, year=\"Y1\")");
  EXPECT_EQ(trace.algorithm, "MSH");
  EXPECT_EQ(trace.semantics, "occurrence");
  EXPECT_GT(trace.data_node_count, 0.0);
  EXPECT_GT(trace.missing_count, 0.0);
  EXPECT_FALSE(trace.pieces.empty());
  EXPECT_FALSE(trace.terms.empty());
  EXPECT_NEAR(trace.estimate, 6.0, 0.6);  // the Section 5 example
}

TEST_F(TraceTest, SubpathHitsCarryCstCounts) {
  const Trace trace =
      Explain("book(author, year=\"Y1\")", core::Algorithm::kMsh);
  size_t hits = 0;
  for (const PieceTrace& piece : trace.pieces) {
    EXPECT_FALSE(piece.label.empty());
    for (const SubpathTrace& sp : piece.subpaths) {
      EXPECT_FALSE(sp.subpath.empty());
      if (sp.hit) {
        ++hits;
        EXPECT_GT(sp.presence, 0.0) << sp.subpath;
        EXPECT_GE(sp.occurrence, sp.presence) << sp.subpath;
        EXPECT_GT(sp.count, 0.0) << sp.subpath;
      }
    }
  }
  EXPECT_GT(hits, 0u);  // unpruned CST: the query's subpaths are present
}

TEST_F(TraceTest, UnknownTagRecordedAsMiss) {
  const Trace trace = Explain("journal=\"X\"", core::Algorithm::kMo);
  ASSERT_FALSE(trace.pieces.empty());
  bool saw_miss = false;
  for (const PieceTrace& piece : trace.pieces) {
    for (const SubpathTrace& sp : piece.subpaths) {
      if (!sp.hit) {
        saw_miss = true;
        EXPECT_DOUBLE_EQ(sp.count, trace.missing_count) << sp.subpath;
      }
    }
  }
  EXPECT_TRUE(saw_miss);
}

TEST_F(TraceTest, TermsReproduceTheEstimate) {
  // The MO combination is estimate = N * prod(piece_prob/overlap_prob)
  // over non-skipped terms; replaying the recorded terms must land on
  // the recorded estimate, and the running estimates must agree.
  const Trace trace =
      Explain("book(author=\"A1\", year=\"Y1\")", core::Algorithm::kMsh);
  double replay = trace.data_node_count;
  for (const CombineTermTrace& t : trace.terms) {
    ASSERT_LT(t.piece, trace.pieces.size());
    if (t.skipped) continue;
    ASSERT_NE(t.overlap_prob, 0.0);
    replay *= t.piece_prob / t.overlap_prob;
    EXPECT_NEAR(replay, t.running_estimate, 1e-9 * (1.0 + replay));
  }
  EXPECT_NEAR(replay, trace.estimate, 1e-9 * (1.0 + replay));
}

TEST_F(TraceTest, ClearedBetweenQueries) {
  auto twig_a = query::ParseTwig("book(author, year=\"Y1\")");
  auto twig_b = query::ParseTwig("book.author");
  ASSERT_TRUE(twig_a.ok() && twig_b.ok());
  Trace trace;
  core::EstimateOptions options;
  options.trace = &trace;
  core::TwigEstimator estimator(&cst_);
  estimator.Estimate(*twig_a, core::Algorithm::kMsh, options);
  estimator.Estimate(*twig_b, core::Algorithm::kMo, options);
  EXPECT_EQ(trace.query, "book.author");
  EXPECT_EQ(trace.algorithm, "MO");
  // Nothing accumulated from the first query: the reused sink renders
  // identically to a fresh one.
  const Trace fresh = Explain("book.author", core::Algorithm::kMo);
  EXPECT_EQ(trace.ToJson(), fresh.ToJson());
}

TEST_F(TraceTest, LeafCarriesExplanatoryNote) {
  const Trace trace = Explain("book.author", core::Algorithm::kLeaf);
  EXPECT_NE(trace.note.find("Leaf"), std::string::npos);
}

TEST_F(TraceTest, TracingDoesNotChangeTheEstimate) {
  auto twig = query::ParseTwig("book(author=\"A1\", year=\"Y1\")");
  ASSERT_TRUE(twig.ok());
  core::TwigEstimator estimator(&cst_);
  for (core::Algorithm a : core::kAllAlgorithms) {
    const double untraced = estimator.Estimate(*twig, a);
    Trace trace;
    core::EstimateOptions options;
    options.trace = &trace;
    EXPECT_EQ(estimator.Estimate(*twig, a, options), untraced)
        << core::AlgorithmName(a);
    EXPECT_EQ(trace.estimate, untraced) << core::AlgorithmName(a);
  }
}

TEST_F(TraceTest, TextAndJsonRenderings) {
  for (core::Algorithm a : core::kAllAlgorithms) {
    const Trace trace = Explain("book(author, year=\"Y1\")", a);
    const std::string text = trace.ToText();
    EXPECT_NE(text.find("query: "), std::string::npos);
    EXPECT_NE(text.find("estimate: "), std::string::npos);
    const std::string json = trace.ToJson();
    EXPECT_TRUE(IsValidJson(json)) << core::AlgorithmName(a) << "\n"
                                   << json;
    for (const char* key :
         {"\"query\"", "\"algorithm\"", "\"semantics\"", "\"pieces\"",
          "\"terms\"", "\"estimate\"", "\"subpaths\"",
          "\"intersections\""}) {
      EXPECT_NE(json.find(key), std::string::npos)
          << core::AlgorithmName(a) << " missing " << key;
    }
  }
}

// ---------------------------------------------------------------------------
// Schema versions, percentile helper, accuracy window (PR 6)

TEST(MetricsTest, SchemaVersionIsPinnedAndRoundTrips) {
  // Downstream scrapers key on this; bumping it is a deliberate act.
  EXPECT_EQ(kMetricsSchemaVersion, 5u);
  const Result<JsonValue> parsed =
      ParseJson(MetricsRegistry::Get().Snapshot().ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().GetNumber("schema_version"),
            static_cast<double>(kMetricsSchemaVersion));
}

TEST(TraceSchemaTest, SchemaVersionIsPinnedAndRoundTrips) {
  EXPECT_EQ(kTraceSchemaVersion, 2u);
  const Trace trace;
  const Result<JsonValue> parsed = ParseJson(trace.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().GetNumber("schema_version"),
            static_cast<double>(kTraceSchemaVersion));
}

TEST(MetricsTest, HistogramRecordMatchesRegistryBucketing) {
  HistogramSnapshot h;
  for (int i = 0; i < 100; ++i) h.Record(1000);
  h.Record(1u << 20);
  EXPECT_EQ(h.count, 101u);
  EXPECT_EQ(h.buckets[10], 100u);  // bit_width(1000) = 10
  EXPECT_EQ(h.buckets[21], 1u);
  HistogramSnapshot other;
  other.Record(1000);
  h.Merge(other);
  EXPECT_EQ(h.count, 102u);
  EXPECT_EQ(h.buckets[10], 101u);
}

TEST(MetricsTest, SummarizeLatencyReportsOrderedPercentiles) {
  HistogramSnapshot h;
  for (int i = 0; i < 99; ++i) h.Record(1000);   // ~1 us
  h.Record(1u << 20);                            // ~1 ms tail
  const LatencyPercentiles p = SummarizeLatency(h);
  EXPECT_EQ(p.count, 100u);
  EXPECT_LE(p.p50_us, 1.024);
  EXPECT_LE(p.p50_us, p.p90_us);
  EXPECT_LE(p.p90_us, p.p95_us);
  EXPECT_LE(p.p95_us, p.p99_us);
  EXPECT_GE(p.p99_us, 1000.0);  // the tail bucket, in microseconds
  EXPECT_EQ(SummarizeLatency(HistogramSnapshot{}).count, 0u);
}

TEST(MetricsTest, AccuracyWindowStatistics) {
  AccuracySnapshot accuracy;
  EXPECT_DOUBLE_EQ(accuracy.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(accuracy.MeanAbs(), 0.0);
  EXPECT_DOUBLE_EQ(accuracy.QuantileAbs(0.5), 0.0);
  accuracy.window = {0.5, -0.5, 0.0, 0.25};
  accuracy.recorded = 4;
  EXPECT_NEAR(accuracy.Mean(), 0.0625, 1e-12);
  EXPECT_NEAR(accuracy.MeanAbs(), 0.3125, 1e-12);
  EXPECT_LE(accuracy.QuantileAbs(0.0), accuracy.QuantileAbs(1.0));
  EXPECT_DOUBLE_EQ(accuracy.QuantileAbs(1.0), 0.5);
}

TEST(MetricsTest, RecordAccuracySampleFillsTheSnapshotWindow) {
  auto& registry = MetricsRegistry::Get();
  const MetricsSnapshot before = registry.Snapshot();
  registry.RecordAccuracySample(0.125);
  registry.RecordAccuracySample(-0.125);
  const MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.accuracy.recorded, before.accuracy.recorded + 2);
  EXPECT_GE(after.accuracy.window.size(), 2u);
  EXPECT_LE(after.accuracy.window.size(), kAccuracyWindow);
  const std::string json = after.ToJson();
  EXPECT_TRUE(IsValidJson(json));
  EXPECT_NE(json.find("\"accuracy\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_abs\""), std::string::npos);
  EXPECT_NE(json.find("\"p90_us\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Spans and the flight recorder

SpanRecord MakeSpan(uint64_t id, uint64_t total_ns = 1000) {
  SpanRecord span;
  span.request_id = id;
  span.query = "article(author, year)";
  span.series = 5;  // MSH
  span.outcome = SpanOutcome::kServed;
  span.offset_ns[static_cast<size_t>(SpanStage::kAdmitted)] = 0;
  span.offset_ns[static_cast<size_t>(SpanStage::kReplied)] = total_ns;
  span.estimate = 41.5;
  span.snapshot_version = 3;
  return span;
}

TEST(SpanTest, StageAndOutcomeNamesAreStable) {
  EXPECT_STREQ(SpanStageName(SpanStage::kAdmitted), "admitted");
  EXPECT_STREQ(SpanStageName(SpanStage::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(SpanStageName(SpanStage::kReplied), "replied");
  EXPECT_STREQ(SpanOutcomeName(SpanOutcome::kServed), "served");
  EXPECT_STREQ(SpanOutcomeName(SpanOutcome::kDeadlineMiss),
               "deadline_miss");
}

TEST(SpanTest, TotalIsTheLatestReachedStage) {
  SpanRecord span;
  EXPECT_EQ(span.total_ns(), 0u);  // nothing reached
  span.offset_ns[static_cast<size_t>(SpanStage::kAdmitted)] = 0;
  span.offset_ns[static_cast<size_t>(SpanStage::kEstimated)] = 500;
  span.offset_ns[static_cast<size_t>(SpanStage::kReplied)] = 700;
  EXPECT_EQ(span.total_ns(), 700u);
}

TEST(SpanTest, MarkStampsMonotoneOffsets) {
  RequestSpan span;
  span.Mark(SpanStage::kEstimated);  // inactive: no-op
  EXPECT_EQ(span.record.offset_ns[static_cast<size_t>(
                SpanStage::kEstimated)],
            kSpanStageUnset);
  span.Begin(7, "a.b", 5, std::chrono::steady_clock::now());
  span.Mark(SpanStage::kDequeued);
  span.Mark(SpanStage::kReplied);
  const auto& offsets = span.record.offset_ns;
  EXPECT_EQ(offsets[static_cast<size_t>(SpanStage::kAdmitted)], 0u);
  EXPECT_NE(offsets[static_cast<size_t>(SpanStage::kDequeued)],
            kSpanStageUnset);
  EXPECT_LE(offsets[static_cast<size_t>(SpanStage::kDequeued)],
            offsets[static_cast<size_t>(SpanStage::kReplied)]);
  EXPECT_EQ(span.record.request_id, 7u);
}

TEST(SpanTest, JsonRenderingHasTheDocumentedKeys) {
  SpanRecord span = MakeSpan(11);
  span.accuracy_sampled = true;
  span.relative_error = -0.25;
  const std::string json = SpanRecordToJson(span);
  EXPECT_TRUE(IsValidJson(json)) << json;
  const Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().GetNumber("id"), 11.0);
  EXPECT_EQ(parsed.value().GetString("algo"), "MSH");
  EXPECT_EQ(parsed.value().GetString("outcome"), "served");
  EXPECT_EQ(parsed.value().GetNumber("relative_error"), -0.25);
  const JsonValue* stages = parsed.value().Find("stages_us");
  ASSERT_NE(stages, nullptr);
  EXPECT_NE(stages->Find("admitted"), nullptr);
  EXPECT_NE(stages->Find("replied"), nullptr);
  EXPECT_EQ(stages->Find("pinned"), nullptr);  // unreached: omitted
}

TEST(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  SpanRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t id = 1; id <= 5; ++id) {
    EXPECT_TRUE(ring.Record(MakeSpan(id)));
  }
  const std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].request_id, i + 1);
    EXPECT_EQ(spans[i].query, "article(author, year)");
    EXPECT_EQ(spans[i].snapshot_version, 3u);
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(SpanRing(0).capacity(), 8u);
  EXPECT_EQ(SpanRing(7).capacity(), 8u);
  EXPECT_EQ(SpanRing(9).capacity(), 16u);
  EXPECT_EQ(SpanRing(256).capacity(), 256u);
}

TEST(FlightRecorderTest, WrapAroundKeepsTheNewestRecords) {
  SpanRing ring(8);
  for (uint64_t id = 1; id <= 20; ++id) ring.Record(MakeSpan(id));
  const std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].request_id, 13 + i);  // 13..20, oldest first
  }
}

TEST(FlightRecorderTest, QueryTextTruncatesToTheSlotWidth) {
  SpanRing ring(8);
  SpanRecord span = MakeSpan(1);
  span.query.assign(200, 'q');
  ring.Record(span);
  const std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].query, std::string(kSpanQueryBytes, 'q'));
}

TEST(FlightRecorderTest, SlowSpansArePromotedToTheSlowLog) {
  FlightRecorderOptions options;
  options.entries = 8;
  options.slow_entries = 8;
  options.slow_threshold_ns = 1000000;  // 1 ms
  FlightRecorder recorder(options);
  recorder.Record(MakeSpan(1, /*total_ns=*/1000));     // fast
  recorder.Record(MakeSpan(2, /*total_ns=*/2000000));  // slow
  EXPECT_EQ(recorder.RecentSpans().size(), 2u);
  const std::vector<SpanRecord> slow = recorder.SlowSpans();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].request_id, 2u);
  const FlightRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.recorded, 2u);
  EXPECT_EQ(stats.slow_recorded, 1u);
  EXPECT_EQ(stats.slow_threshold_ns, 1000000u);
}

TEST(FlightRecorderTest, ZeroThresholdDisablesTheSlowLog) {
  FlightRecorder recorder(FlightRecorderOptions{8, 8, 0});
  recorder.Record(MakeSpan(1, /*total_ns=*/~uint64_t{0} >> 1));
  EXPECT_TRUE(recorder.SlowSpans().empty());
}

TEST(FlightRecorderTest, SpansJsonIsAValidArray) {
  FlightRecorder recorder(FlightRecorderOptions{8, 8, 0});
  recorder.Record(MakeSpan(1));
  recorder.Record(MakeSpan(2));
  const std::string json = recorder.SpansJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  const Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().elements.size(), 2u);
}

// Writers race a reader across wrap-arounds; every snapshotted record
// must be internally consistent (all fields from the same generation),
// never a torn mix. Patterned payloads make tearing detectable: for
// request id k, every field is a fixed function of k.
TEST(FlightRecorderTest, SnapshotIsTornReadFreeWhileWritersRace) {
  SpanRing ring(16);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> next_id{1};

  auto patterned = [](uint64_t id) {
    SpanRecord span;
    span.request_id = id;
    span.query = "q" + std::to_string(id);
    span.series = static_cast<uint8_t>(id % 6);
    span.outcome = static_cast<SpanOutcome>(id % 5);
    span.offset_ns[static_cast<size_t>(SpanStage::kAdmitted)] = 0;
    span.offset_ns[static_cast<size_t>(SpanStage::kReplied)] = id * 17;
    span.estimate = static_cast<double>(id) * 0.5;
    span.snapshot_version = id * 3;
    span.accuracy_sampled = (id % 2) == 0;
    span.relative_error = static_cast<double>(id) * 0.25;
    return span;
  };

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        ring.Record(patterned(next_id.fetch_add(1)));
      }
    });
  }
  std::thread reader([&] {
    uint64_t snapshots = 0;
    while (!stop.load(std::memory_order_acquire) || snapshots == 0) {
      for (const SpanRecord& span : ring.Snapshot()) {
        const uint64_t id = span.request_id;
        EXPECT_EQ(span.query, "q" + std::to_string(id));
        EXPECT_EQ(span.series, static_cast<uint8_t>(id % 6));
        EXPECT_EQ(span.outcome, static_cast<SpanOutcome>(id % 5));
        EXPECT_EQ(span.offset_ns[static_cast<size_t>(SpanStage::kReplied)],
                  id * 17);
        EXPECT_EQ(span.estimate, static_cast<double>(id) * 0.5);
        EXPECT_EQ(span.snapshot_version, id * 3);
        EXPECT_EQ(span.accuracy_sampled, (id % 2) == 0);
        EXPECT_EQ(span.relative_error, static_cast<double>(id) * 0.25);
      }
      ++snapshots;
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Every claim either landed or was counted as a drop.
  EXPECT_EQ(ring.recorded() + ring.dropped(), kWriters * kPerWriter);
  // The final quiescent snapshot holds whole records only. A slot whose
  // latest claim was dropped (writer lapped mid-record) stays at its
  // older generation and is correctly skipped, so drops bound the gap
  // to a full ring.
  const uint64_t dropped = ring.dropped();
  const size_t quiescent = ring.Snapshot().size();
  EXPECT_LE(quiescent, ring.capacity());
  EXPECT_GE(quiescent + std::min<uint64_t>(dropped, ring.capacity()),
            ring.capacity());
}

TEST_F(TraceTest, EstimateCountsTraceEvents) {
  auto& registry = MetricsRegistry::Get();
  const MetricsSnapshot before = registry.Snapshot();
  Explain("book(author, year=\"Y1\")", core::Algorithm::kMsh);
  const MetricsSnapshot delta = registry.Snapshot().Delta(before);
  EXPECT_GE(delta.counters[static_cast<size_t>(Counter::kEstimates)], 1u);
  EXPECT_GE(
      delta.counters[static_cast<size_t>(Counter::kTracesRecorded)], 1u);
  EXPECT_GE(
      delta.counters[static_cast<size_t>(Counter::kCstSubpathLookups)],
      delta.counters[static_cast<size_t>(Counter::kCstSubpathHits)]);
}

}  // namespace
}  // namespace twig::obs
