// Tests for the disk-backed CST storage subsystem: the TWCST03 page
// format, the pin/unpin buffer manager (including its concurrency
// protocol), the demand-paged CST reader, hostile-store handling, and
// the storage failpoint seams.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cst/cst.h"
#include "cst/paged_cst.h"
#include "data/generators.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/page_source.h"
#include "storage/page_writer.h"
#include "suffix/path_suffix_tree.h"
#include "test_trees.h"
#include "util/failpoint.h"

namespace twig {
namespace {

using storage::BlobPageSource;
using storage::BufferManager;
using storage::PageType;
using storage::PageWriter;
using storage::PinnedPage;

constexpr uint32_t kPage = 512;

/// A minimal valid store: a meta page carrying only the geometry
/// prefix, plus `data_pages` node pages whose payloads are distinct
/// (page i is filled with 'a' + i). Enough structure for the buffer
/// manager, which validates pages but never interprets the directory.
std::string MakeRawStore(uint32_t data_pages, uint32_t page_size = kPage) {
  PageWriter w(page_size);
  w.BeginPage(PageType::kMeta);
  for (uint32_t i = 0; i < data_pages; ++i) {
    w.BeginPage(PageType::kNodes);
    std::string payload(16, static_cast<char>('a' + i % 26));
    w.Append(payload.data(), payload.size());
  }
  std::string meta;
  meta.append(storage::kStoreMagic, sizeof(storage::kStoreMagic));
  const uint32_t version = storage::kStoreVersion;
  const uint32_t count = w.page_count();
  meta.append(reinterpret_cast<const char*>(&version), 4);
  meta.append(reinterpret_cast<const char*>(&page_size), 4);
  meta.append(reinterpret_cast<const char*>(&count), 4);
  w.OverwritePage(0, meta.data(), meta.size());
  return w.Finish();
}

std::shared_ptr<const storage::PageSource> OpenBlob(std::string blob) {
  auto source = BlobPageSource::Open(std::move(blob), "test-store");
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  return std::shared_ptr<const storage::PageSource>(
      std::move(source).value());
}

// ------------------------------------------------------ BufferManager

TEST(BufferManagerTest, HitAvoidsRereading) {
  BufferManager pool(64 * kPage, kPage);
  auto id = pool.RegisterSource(OpenBlob(MakeRawStore(4)));
  ASSERT_TRUE(id.ok());

  auto first = pool.Pin(id.value(), 2);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().payload_bytes(), 16u);
  EXPECT_EQ(first.value().payload()[0], 'b');  // page 2 = data page 1
  EXPECT_EQ(pool.stats().reads, 1u);

  auto second = pool.Pin(id.value(), 2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().payload()[0], 'b');
  EXPECT_EQ(pool.stats().reads, 1u);  // served from the pool
  EXPECT_EQ(pool.stats().pins, 2u);
}

TEST(BufferManagerTest, RejectsMismatchedSources) {
  BufferManager pool(64 * kPage, kPage);
  EXPECT_FALSE(pool.RegisterSource(nullptr).ok());
  auto mismatched =
      pool.RegisterSource(OpenBlob(MakeRawStore(2, 2 * kPage)));
  EXPECT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST(BufferManagerTest, UnknownSourceAndOutOfRangePage) {
  BufferManager pool(64 * kPage, kPage);
  auto id = pool.RegisterSource(OpenBlob(MakeRawStore(2)));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(pool.Pin(9999, 0).status().code(), StatusCode::kNotFound);
  // The store has pages 0..2; 3 is past the end.
  EXPECT_EQ(pool.Pin(id.value(), 3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BufferManagerTest, ClockEvictsUnpinnedFrames) {
  BufferManager pool(2 * kPage, kPage);  // 2 frames
  ASSERT_EQ(pool.frame_count(), 2u);
  auto id = pool.RegisterSource(OpenBlob(MakeRawStore(8)));
  ASSERT_TRUE(id.ok());
  // Two sequential sweeps over 9 pages through 2 frames: the second
  // sweep cannot hit (the pool is too small), so everything is read
  // again and the clock must evict constantly.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (uint32_t page = 1; page <= 8; ++page) {
      auto pin = pool.Pin(id.value(), page);
      ASSERT_TRUE(pin.ok()) << pin.status().ToString();
      EXPECT_EQ(pin.value().payload()[0],
                static_cast<char>('a' + (page - 1) % 26));
    }
  }
  const BufferManager::Stats stats = pool.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.reads, 8u);
  EXPECT_EQ(stats.checksum_failures, 0u);
}

TEST(BufferManagerTest, ExhaustedWhenEveryFrameIsPinned) {
  BufferManager pool(2 * kPage, kPage);
  auto id = pool.RegisterSource(OpenBlob(MakeRawStore(4)));
  ASSERT_TRUE(id.ok());
  auto a = pool.Pin(id.value(), 1);
  auto b = pool.Pin(id.value(), 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.Pin(id.value(), 3);
  EXPECT_EQ(c.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(pool.stats().exhausted, 0u);
  a.value().Release();
  auto retry = pool.Pin(id.value(), 3);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(BufferManagerTest, DropSourceFreesFramesAndForgetsTheId) {
  BufferManager pool(4 * kPage, kPage);
  auto id = pool.RegisterSource(OpenBlob(MakeRawStore(3)));
  ASSERT_TRUE(id.ok());
  for (uint32_t page = 0; page <= 3; ++page) {
    auto pin = pool.Pin(id.value(), page);
    ASSERT_TRUE(pin.ok());
  }
  pool.DropSource(id.value());
  EXPECT_EQ(pool.Pin(id.value(), 1).status().code(),
            StatusCode::kNotFound);
  // All four frames are free again: a fresh source can fill the pool
  // without evicting.
  const uint64_t evictions_before = pool.stats().evictions;
  auto fresh = pool.RegisterSource(OpenBlob(MakeRawStore(3)));
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh.value(), id.value());  // ids are never reused
  for (uint32_t page = 0; page <= 3; ++page) {
    auto pin = pool.Pin(fresh.value(), page);
    ASSERT_TRUE(pin.ok());
  }
  EXPECT_EQ(pool.stats().evictions, evictions_before);
}

// ------------------------------------- BufferManager, multi-threaded

TEST(BufferManagerConcurrencyTest, HammerSharedPool) {
  // 8 threads chase 9 pages through a 4-frame pool: constant eviction,
  // constant contention on the same shards. Every pin must see the
  // right payload and the pool must finish with nothing pinned.
  BufferManager pool(4 * kPage, kPage);
  auto id = pool.RegisterSource(OpenBlob(MakeRawStore(8)));
  ASSERT_TRUE(id.ok());
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const uint32_t page = 1 + (static_cast<uint32_t>(i) * 7 +
                                   static_cast<uint32_t>(t)) %
                                      8;
        auto pin = pool.Pin(id.value(), page);
        if (!pin.ok()) {
          // A full pool is legal under this much concurrency; any
          // other failure is not.
          if (pin.status().code() != StatusCode::kUnavailable) {
            failures.fetch_add(1);
          }
          continue;
        }
        if (pin.value().payload()[0] !=
            static_cast<char>('a' + (page - 1) % 26)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Everything released: a sweep wider than the pool succeeds.
  for (uint32_t page = 0; page <= 8; ++page) {
    auto pin = pool.Pin(id.value(), page);
    EXPECT_TRUE(pin.ok()) << pin.status().ToString();
  }
}

TEST(BufferManagerConcurrencyTest, ConcurrentPinsOfOnePageLoadOnce) {
  BufferManager pool(8 * kPage, kPage);
  auto id = pool.RegisterSource(OpenBlob(MakeRawStore(4)));
  ASSERT_TRUE(id.ok());
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto pin = pool.Pin(id.value(), 2);
        if (!pin.ok() || pin.value().payload()[0] != 'b') {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // All 1600 pins of the one page resolved to a single read: the
  // kLoading state made racers wait instead of re-reading.
  EXPECT_EQ(pool.stats().reads, 1u);
  EXPECT_EQ(pool.stats().evictions, 0u);
}

TEST(BufferManagerConcurrencyTest, RegisterAndDropRaces) {
  BufferManager pool(4 * kPage, kPage);
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto id = pool.RegisterSource(OpenBlob(MakeRawStore(3)));
        if (!id.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (uint32_t page = 0; page <= 3; ++page) {
          auto pin = pool.Pin(id.value(), page);
          if (!pin.ok() &&
              pin.status().code() != StatusCode::kUnavailable) {
            failures.fetch_add(1);
          }
        }
        pool.DropSource(id.value());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// ------------------------------------------------------------ PagedCst

cst::Cst BuildFullCst(const tree::Tree& data) {
  auto pst = suffix::PathSuffixTree::Build(data);
  cst::CstOptions options;
  options.prune_threshold = 1;
  return cst::Cst::Build(data, pst, options);
}

std::shared_ptr<const cst::PagedCst> OpenPaged(const cst::Cst& memory,
                                               size_t page_size,
                                               size_t pool_bytes) {
  auto blob = memory.SerializePaged(page_size);
  EXPECT_TRUE(blob.ok()) << blob.status().ToString();
  cst::PagedCstOptions options;
  options.pool_bytes = pool_bytes;
  auto paged = cst::PagedCst::Open(OpenBlob(std::move(blob).value()),
                                   options);
  EXPECT_TRUE(paged.ok()) << paged.status().ToString();
  return std::move(paged).value();
}

/// Every observable surface of the paged reader must agree with the
/// in-memory CST it was serialized from, node by node.
void ExpectViewsAgree(const cst::Cst& memory, const cst::CstView& paged) {
  ASSERT_EQ(paged.node_count(), memory.node_count());
  EXPECT_EQ(paged.signature_count(), memory.signature_count());
  EXPECT_EQ(paged.signature_length(), memory.signature_length());
  EXPECT_EQ(paged.data_node_count(), memory.data_node_count());
  EXPECT_EQ(paged.prune_threshold(), memory.prune_threshold());
  EXPECT_EQ(paged.size_bytes(), memory.size_bytes());
  EXPECT_EQ(paged.max_value_chars(), memory.max_value_chars());
  EXPECT_EQ(paged.labels().size(), memory.labels().size());

  std::vector<suffix::ChildIndex::Entry> expected_children;
  std::vector<suffix::ChildIndex::Entry> actual_children;
  sethash::Signature scratch;
  for (cst::CstNodeId node = 0; node < memory.node_count(); ++node) {
    EXPECT_EQ(paged.GetSymbol(node), memory.GetSymbol(node));
    EXPECT_EQ(paged.Parent(node), memory.Parent(node));
    EXPECT_EQ(paged.Depth(node), memory.Depth(node));
    EXPECT_EQ(paged.StartsWithTag(node), memory.StartsWithTag(node));
    EXPECT_DOUBLE_EQ(paged.PresenceCount(node),
                     memory.PresenceCount(node));
    EXPECT_DOUBLE_EQ(paged.OccurrenceCount(node),
                     memory.OccurrenceCount(node));

    memory.CopyChildren(node, &expected_children);
    paged.CopyChildren(node, &actual_children);
    ASSERT_EQ(actual_children.size(), expected_children.size());
    for (size_t i = 0; i < expected_children.size(); ++i) {
      EXPECT_EQ(actual_children[i].symbol, expected_children[i].symbol);
      EXPECT_EQ(actual_children[i].child, expected_children[i].child);
    }

    sethash::Signature memory_scratch;
    const sethash::Signature* expected =
        memory.GetSignature(node, &memory_scratch);
    const sethash::Signature* actual = paged.GetSignature(node, &scratch);
    ASSERT_EQ(actual != nullptr, expected != nullptr);
    if (expected != nullptr) {
      EXPECT_EQ(*actual, *expected);
    }

    // Step must agree along every real edge and on a miss.
    for (const auto& entry : expected_children) {
      EXPECT_EQ(paged.Step(node, entry.symbol),
                memory.Step(node, entry.symbol));
    }
    EXPECT_EQ(paged.Step(node, cst::CstView::kUnknownSymbol),
              cst::kNoCstNode);
  }
  EXPECT_EQ(paged.storage_error_count(), 0u);
  EXPECT_TRUE(paged.storage_health().ok());
}

TEST(PagedCstTest, RoundTripMatchesInMemory) {
  const cst::Cst memory = BuildFullCst(testutil::FigureOneTree());
  auto paged = OpenPaged(memory, 4096, 64 * 4096);
  ASSERT_NE(paged, nullptr);
  ExpectViewsAgree(memory, *paged);
}

TEST(PagedCstTest, TinyPoolStaysCorrectWhileEvicting) {
  data::DblpOptions gen;
  gen.target_bytes = 64 * 1024;
  const tree::Tree data = data::GenerateDblp(gen);
  const cst::Cst memory = BuildFullCst(data);
  // Two frames of 512 bytes against a store much larger than that:
  // every walk churns the pool.
  auto paged = OpenPaged(memory, 512, 2 * 512);
  ASSERT_NE(paged, nullptr);
  ExpectViewsAgree(memory, *paged);
  EXPECT_GT(paged->buffer().stats().evictions, 0u);
}

TEST(PagedCstTest, SniffsBothFormatsAndGarbage) {
  const cst::Cst memory = BuildFullCst(testutil::FigureOneTree());
  EXPECT_EQ(cst::SniffCstFormat(memory.Serialize()),
            cst::CstFormat::kTwcst02);
  auto paged = memory.SerializePaged(4096);
  ASSERT_TRUE(paged.ok());
  EXPECT_EQ(cst::SniffCstFormat(paged.value()), cst::CstFormat::kTwcst03);
  EXPECT_EQ(cst::SniffCstFormat("not a CST at all"),
            cst::CstFormat::kUnknown);
  EXPECT_EQ(cst::SniffCstFormat(""), cst::CstFormat::kUnknown);
}

TEST(PagedCstTest, LoadCstBlobRoutesOnFormat) {
  const cst::Cst memory = BuildFullCst(testutil::FigureOneTree());

  auto from02 = cst::LoadCstBlob(memory.Serialize(), "tw02 blob");
  ASSERT_TRUE(from02.ok()) << from02.status().ToString();
  ExpectViewsAgree(memory, *from02.value());

  auto blob03 = memory.SerializePaged(4096);
  ASSERT_TRUE(blob03.ok());
  auto from03 = cst::LoadCstBlob(std::move(blob03).value(), "tw03 blob");
  ASSERT_TRUE(from03.ok()) << from03.status().ToString();
  ExpectViewsAgree(memory, *from03.value());

  EXPECT_FALSE(cst::LoadCstBlob("garbage bytes", "junk").ok());
}

TEST(PagedCstTest, LoadCstFileMapsAStore) {
  const cst::Cst memory = BuildFullCst(testutil::FigureOneTree());
  auto blob = memory.SerializePaged(4096);
  ASSERT_TRUE(blob.ok());
  const std::string path =
      testing::TempDir() + "/storage_test_load.twcst03";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.value().data(),
              static_cast<std::streamsize>(blob.value().size()));
    ASSERT_TRUE(out.good());
  }
  auto view = cst::LoadCstFile(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ExpectViewsAgree(memory, *view.value());

  EXPECT_EQ(cst::LoadCstFile(path + ".missing").status().code(),
            StatusCode::kNotFound);
}

TEST(PagedCstTest, MaterializeRebuildsTheInMemoryCst) {
  const cst::Cst memory = BuildFullCst(testutil::FigureOneTree());
  auto paged = OpenPaged(memory, 512, 64 * 512);
  ASSERT_NE(paged, nullptr);
  auto round = cst::Cst::Materialize(*paged);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ExpectViewsAgree(round.value(), *paged);
  // The full loop — build, page out, page in, materialize — lands on
  // the exact TWCST02 bytes of the original.
  EXPECT_EQ(round.value().Serialize(), memory.Serialize());
}

TEST(PagedCstTest, SerializePagedRejectsImpossiblePageSizes) {
  const cst::Cst memory = BuildFullCst(testutil::FigureOneTree());
  // Not a power of two.
  EXPECT_EQ(memory.SerializePaged(1000).status().code(),
            StatusCode::kInvalidArgument);
  // Valid page size, but a default-length signature record cannot fit
  // the 232-byte payload of a 256-byte page.
  EXPECT_EQ(memory.SerializePaged(256).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------ hostile stores

/// Recomputes and stores page `id`'s checksum after a tamper, so the
/// page itself stays "valid" and the corruption must be caught by a
/// higher layer (directory bounds, geometry, ...).
void ResealPage(std::string* blob, uint32_t id, uint32_t page_size) {
  char* page = blob->data() + static_cast<size_t>(id) * page_size;
  const uint64_t checksum = storage::PageChecksum(page, page_size);
  std::memcpy(page + 16, &checksum, sizeof(checksum));
}

std::string SerializedFigureOne(uint32_t page_size) {
  const cst::Cst memory = BuildFullCst(testutil::FigureOneTree());
  auto blob = memory.SerializePaged(page_size);
  EXPECT_TRUE(blob.ok());
  return std::move(blob).value();
}

TEST(Twcst03HostileTest, TruncatedStoreFailsToOpen) {
  std::string blob = SerializedFigureOne(512);
  // Mid-page truncation: the byte count no longer matches the geometry.
  std::string truncated = blob.substr(0, blob.size() - 100);
  EXPECT_EQ(BlobPageSource::Open(truncated, "truncated").status().code(),
            StatusCode::kCorruption);
  // Whole trailing page gone: still a corruption (page_count in the
  // meta page promises more bytes than exist).
  std::string short_one = blob.substr(0, blob.size() - 512);
  EXPECT_EQ(BlobPageSource::Open(short_one, "short").status().code(),
            StatusCode::kCorruption);
  // Shorter than the geometry prefix itself.
  EXPECT_FALSE(BlobPageSource::Open(blob.substr(0, 10), "stub").ok());
}

TEST(Twcst03HostileTest, BitFlipInDataPageDegradesNotCrashes) {
  std::string blob = SerializedFigureOne(512);
  // Flip one payload byte of the first kNodes page. The page's stored
  // checksum no longer matches, so pinning it must fail validation.
  uint32_t nodes_page = 0;
  for (uint32_t id = 1; id * 512 < blob.size(); ++id) {
    storage::PageHeader header;
    ASSERT_TRUE(storage::DecodePageHeader(
        blob.data() + static_cast<size_t>(id) * 512, 512, &header));
    if (header.type == PageType::kNodes) {
      nodes_page = id;
      break;
    }
  }
  ASSERT_GT(nodes_page, 0u);
  blob[static_cast<size_t>(nodes_page) * 512 + storage::kPageHeaderBytes] ^=
      0x40;

  cst::PagedCstOptions options;
  options.pool_bytes = 8 * 512;
  auto paged = cst::PagedCst::Open(OpenBlob(std::move(blob)), options);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  const auto& view = *paged.value();
  // Reading any node on the poisoned page degrades to a miss and is
  // recorded; it must not crash or return garbage.
  for (cst::CstNodeId node = 0; node < view.node_count(); ++node) {
    (void)view.PresenceCount(node);
    (void)view.GetSymbol(node);
  }
  EXPECT_GT(view.storage_error_count(), 0u);
  EXPECT_EQ(view.storage_health().code(), StatusCode::kCorruption);
  EXPECT_GT(view.buffer().stats().checksum_failures, 0u);
}

TEST(Twcst03HostileTest, BitFlipInMetaPageFailsOpen) {
  std::string blob = SerializedFigureOne(512);
  // Flip a byte past the geometry prefix (so the probe succeeds and
  // the checksum catches it when the meta page is pinned).
  blob[storage::kPageHeaderBytes + 60] ^= 0x01;
  cst::PagedCstOptions options;
  auto paged = cst::PagedCst::Open(OpenBlob(std::move(blob)), options);
  EXPECT_EQ(paged.status().code(), StatusCode::kCorruption);
}

TEST(Twcst03HostileTest, OutOfRangeSectionPageRejectedAtOpen) {
  std::string blob = SerializedFigureOne(512);
  // The nodes section's first_page lives at meta payload offset 68.
  // Point it far past the end of the store and re-seal the page so
  // only the directory — not the checksum — is wrong.
  const uint32_t bogus = 0x00ffffffu;
  std::memcpy(blob.data() + storage::kPageHeaderBytes + 68, &bogus, 4);
  ResealPage(&blob, 0, 512);
  cst::PagedCstOptions options;
  auto paged = cst::PagedCst::Open(OpenBlob(std::move(blob)), options);
  EXPECT_EQ(paged.status().code(), StatusCode::kCorruption);
}

TEST(Twcst03HostileTest, OversizedPageCountRejectedAtOpen) {
  std::string blob = SerializedFigureOne(512);
  // Claim 1M pages in the geometry; the blob has a handful. The page
  // source must refuse the mapping instead of handing out reads past
  // the end.
  const uint32_t bogus = 1u << 20;
  std::memcpy(blob.data() + storage::kPageHeaderBytes + 16, &bogus, 4);
  ResealPage(&blob, 0, 512);
  EXPECT_EQ(BlobPageSource::Open(blob, "oversized").status().code(),
            StatusCode::kCorruption);
}

// --------------------------------------------------------- failpoints

class StorageFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FailpointRegistry::Get().Reset(); }
  void TearDown() override { util::FailpointRegistry::Get().Reset(); }
};

TEST_F(StorageFailpointTest, ReadErrorSurfacesAndRecovers) {
  BufferManager pool(8 * kPage, kPage);
  auto id = pool.RegisterSource(OpenBlob(MakeRawStore(2)));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(util::FailpointRegistry::Get()
                  .Configure("storage/read", "error")
                  .ok());
  auto failed = pool.Pin(id.value(), 1);
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  // Failed loads are not cached: once the failpoint clears, the same
  // pin succeeds.
  util::FailpointRegistry::Get().Reset();
  auto pin = pool.Pin(id.value(), 1);
  EXPECT_TRUE(pin.ok()) << pin.status().ToString();
  EXPECT_EQ(pin.value().payload()[0], 'a');
}

TEST_F(StorageFailpointTest, ChecksumErrorCountsAndRecovers) {
  BufferManager pool(8 * kPage, kPage);
  auto id = pool.RegisterSource(OpenBlob(MakeRawStore(2)));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(util::FailpointRegistry::Get()
                  .Configure("storage/checksum", "error")
                  .ok());
  auto failed = pool.Pin(id.value(), 1);
  EXPECT_EQ(failed.status().code(), StatusCode::kCorruption);
  EXPECT_NE(std::string(failed.status().message())
                .find("checksum mismatch (injected)"),
            std::string::npos);
  EXPECT_GE(pool.stats().checksum_failures, 1u);
  util::FailpointRegistry::Get().Reset();
  EXPECT_TRUE(pool.Pin(id.value(), 1).ok());
}

TEST_F(StorageFailpointTest, PagedCstDegradesUnderInjectedChecksums) {
  const cst::Cst memory = BuildFullCst(testutil::FigureOneTree());
  // A 2-frame pool so post-arm accesses miss (hits would bypass the
  // load path where the failpoint lives).
  auto paged = OpenPaged(memory, 512, 2 * 512);
  ASSERT_NE(paged, nullptr);
  ASSERT_TRUE(util::FailpointRegistry::Get()
                  .Configure("storage/checksum", "error")
                  .ok());
  EXPECT_EQ(paged->PresenceCount(1), 0.0);  // degraded to a miss
  EXPECT_GT(paged->storage_error_count(), 0u);
  EXPECT_EQ(paged->storage_health().code(), StatusCode::kCorruption);
  // Disarm: reads work again; the sticky first error remains visible.
  util::FailpointRegistry::Get().Reset();
  EXPECT_EQ(paged->PresenceCount(1), memory.PresenceCount(1));
  EXPECT_EQ(paged->storage_health().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace twig
