#include <gtest/gtest.h>

#include "data/generators.h"
#include "match/matcher.h"
#include "query/twig.h"
#include "workload/workload.h"

namespace twig::workload {
namespace {

tree::Tree SmallDblp() {
  data::DblpOptions options;
  options.target_bytes = 64 * 1024;
  options.seed = 11;
  return data::GenerateDblp(options);
}

WorkloadOptions SmallOptions(size_t n) {
  WorkloadOptions options;
  options.num_queries = n;
  options.seed = 99;
  return options;
}

TEST(WorkloadTest, PositiveQueriesArePositive) {
  tree::Tree data = SmallDblp();
  Workload wl = GeneratePositive(data, SmallOptions(50));
  ASSERT_EQ(wl.size(), 50u);
  for (const auto& wq : wl) {
    EXPECT_GE(wq.truth.occurrence, 1.0)
        << query::FormatTwig(wq.twig);
    EXPECT_GE(wq.truth.presence, 1.0);
  }
}

TEST(WorkloadTest, PositiveQueriesRespectShapeBounds) {
  tree::Tree data = SmallDblp();
  WorkloadOptions options = SmallOptions(50);
  Workload wl = GeneratePositive(data, options);
  for (const auto& wq : wl) {
    const auto paths = wq.twig.RootToLeafPaths();
    EXPECT_GE(static_cast<int>(paths.size()), 2);
    EXPECT_LE(static_cast<int>(paths.size()),
              options.max_paths + 1);  // value leaves can split paths
    for (const auto& path : paths) {
      int internal = 0;
      for (auto n : path) {
        if (!wq.twig.IsValue(n)) ++internal;
      }
      EXPECT_GE(internal, options.min_internal);
      EXPECT_LE(internal, options.max_internal);
    }
  }
}

TEST(WorkloadTest, ValuePredicateLengthsInRange) {
  tree::Tree data = SmallDblp();
  WorkloadOptions options = SmallOptions(50);
  Workload wl = GeneratePositive(data, options);
  for (const auto& wq : wl) {
    for (query::TwigNodeId n = 0; n < wq.twig.size(); ++n) {
      if (!wq.twig.IsValue(n)) continue;
      EXPECT_GE(static_cast<int>(wq.twig.Value(n).size()),
                options.min_value_chars);
      EXPECT_LE(static_cast<int>(wq.twig.Value(n).size()),
                options.max_value_chars);
    }
  }
}

TEST(WorkloadTest, TrivialQueriesAreSinglePath) {
  tree::Tree data = SmallDblp();
  Workload wl = GenerateTrivial(data, SmallOptions(30));
  ASSERT_EQ(wl.size(), 30u);
  for (const auto& wq : wl) {
    EXPECT_EQ(wq.twig.RootToLeafPaths().size(), 1u);
    EXPECT_GE(wq.truth.occurrence, 1.0);
  }
}

TEST(WorkloadTest, NegativeQueriesHaveZeroCount) {
  tree::Tree data = SmallDblp();
  Workload wl = GenerateNegative(data, SmallOptions(30));
  ASSERT_EQ(wl.size(), 30u);
  for (const auto& wq : wl) {
    EXPECT_DOUBLE_EQ(wq.truth.occurrence, 0.0);
    // Verified against the matcher, not just recorded.
    EXPECT_DOUBLE_EQ(match::CountTwigMatches(data, wq.twig).value().occurrence,
                     0.0);
    EXPECT_GE(wq.twig.RootToLeafPaths().size(), 2u);
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  tree::Tree data = SmallDblp();
  Workload a = GeneratePositive(data, SmallOptions(10));
  Workload b = GeneratePositive(data, SmallOptions(10));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(query::TwigEquals(a[i].twig, b[i].twig));
  }
  WorkloadOptions other = SmallOptions(10);
  other.seed = 100;
  Workload c = GeneratePositive(data, other);
  bool all_equal = true;
  for (size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    all_equal = all_equal && query::TwigEquals(a[i].twig, c[i].twig);
  }
  EXPECT_FALSE(all_equal);
}

TEST(WorkloadTest, TopRootedQueriesAppear) {
  tree::Tree data = SmallDblp();
  WorkloadOptions options = SmallOptions(60);
  options.root_at_top_probability = 0.5;
  Workload wl = GeneratePositive(data, options);
  size_t top_rooted = 0;
  for (const auto& wq : wl) {
    if (wq.twig.Tag(wq.twig.root()) == "dblp") ++top_rooted;
  }
  EXPECT_GT(top_rooted, 10u);
  EXPECT_LT(top_rooted, 50u);
}

TEST(WorkloadTest, CountsCanBeSkipped) {
  tree::Tree data = SmallDblp();
  WorkloadOptions options = SmallOptions(10);
  options.compute_true_counts = false;
  Workload wl = GeneratePositive(data, options);
  for (const auto& wq : wl) {
    EXPECT_DOUBLE_EQ(wq.truth.occurrence, 0.0);
  }
}

}  // namespace
}  // namespace twig::workload
