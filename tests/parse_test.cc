#include <gtest/gtest.h>

#include "core/expanded_query.h"
#include "core/parse.h"
#include "cst/cst.h"
#include "query/twig.h"
#include "test_trees.h"

namespace twig::core {
namespace {

using cst::Cst;
using cst::CstOptions;
using query::ParseTwig;
using suffix::PathSuffixTree;
using tree::Tree;

Cst BuildCst(const Tree& data, uint32_t threshold = 1) {
  auto pst = PathSuffixTree::Build(data);
  CstOptions options;
  options.prune_threshold = threshold;
  return Cst::Build(data, pst, options);
}

TEST(ExpandQueryTest, ElementsAndValueChars) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("book(author=\"A1\", year)");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  // book, author, 'A', '1', year.
  ASSERT_EQ(eq.atoms.size(), 5u);
  EXPECT_TRUE(eq.atoms[0].is_tag);
  EXPECT_TRUE(eq.atoms[1].is_tag);
  EXPECT_FALSE(eq.atoms[2].is_tag);
  EXPECT_FALSE(eq.atoms[3].is_tag);
  EXPECT_TRUE(eq.atoms[4].is_tag);
  EXPECT_EQ(eq.atoms[2].symbol, suffix::CharSymbol('A'));
  // Two root-to-leaf paths: book.author.A.1 and book.year.
  ASSERT_EQ(eq.paths.size(), 2u);
  EXPECT_EQ(eq.paths[0].size(), 4u);
  EXPECT_EQ(eq.paths[1].size(), 2u);
  // Branch: the book atom.
  ASSERT_EQ(eq.branch_atoms.size(), 1u);
  EXPECT_EQ(eq.branch_atoms[0], 0);
}

TEST(ExpandQueryTest, UnknownTagGetsUnknownSymbol) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("nosuchtag.author");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  EXPECT_EQ(eq.atoms[0].symbol, Cst::kUnknownSymbol);
}

TEST(ExpandQueryTest, ValueCharsCapped) {
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  CstOptions options;
  options.max_value_chars = 2;
  Cst cst = Cst::Build(data, pst, options);
  auto twig = ParseTwig("author=\"A1234\"");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  EXPECT_EQ(eq.atoms.size(), 3u);  // author + 2 chars
}

TEST(MaximalParseTest, WholePathWhenPresent) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("book.author=\"A1\"");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto pieces = MaximalParseInterval(eq, cst, 0, 0,
                                     static_cast<int>(eq.paths[0].size()));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].start, 0);
  EXPECT_EQ(pieces[0].length, 4);
  EXPECT_FALSE(pieces[0].missing);
}

TEST(MaximalParseTest, OverlappingPiecesOnPrunedCst) {
  // Threshold 2 prunes title:T* and author:A3 etc; a query through a
  // pruned deep node must parse into overlapping pieces.
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data, /*threshold=*/2);
  auto twig = ParseTwig("book.author=\"A2\"");  // pt(author:A2) = 2
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto pieces = MaximalParseInterval(eq, cst, 0, 0,
                                     static_cast<int>(eq.paths[0].size()));
  ASSERT_EQ(pieces.size(), 1u);  // book.author.A2 retained at pt >= 2
  // Now prune at 3: author:A2 (pt 2) goes away; the '2' char is rare.
  Cst tight = BuildCst(data, /*threshold=*/3);
  ExpandedQuery eq3 = ExpandQuery(*twig, tight);
  auto pieces3 = MaximalParseInterval(eq3, tight, 0, 0,
                                      static_cast<int>(eq3.paths[0].size()));
  ASSERT_GE(pieces3.size(), 2u);
  EXPECT_EQ(pieces3[0].start, 0);
  // Pieces must cover the whole path.
  int covered_end = 0;
  for (const auto& p : pieces3) {
    EXPECT_LE(p.start, covered_end);
    covered_end = std::max(covered_end, p.start + p.length);
  }
  EXPECT_EQ(covered_end, static_cast<int>(eq3.paths[0].size()));
}

TEST(MaximalParseTest, MissingAtomProducesMissingPiece) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("book.journal");  // journal not in data
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto pieces = MaximalParseInterval(eq, cst, 0, 0, 2);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_FALSE(pieces[0].missing);  // book
  EXPECT_TRUE(pieces[1].missing);   // journal
}

TEST(GreedyParseTest, NonOverlapping) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data, /*threshold=*/3);
  auto twig = ParseTwig("book.author=\"A2\"");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto pieces = GreedyParseInterval(eq, cst, 0, 0,
                                    static_cast<int>(eq.paths[0].size()));
  // Greedy pieces tile the path without overlap.
  int pos = 0;
  for (const auto& p : pieces) {
    EXPECT_EQ(p.start, pos);
    pos += p.length;
  }
  EXPECT_EQ(pos, static_cast<int>(eq.paths[0].size()));
}

TEST(ParseQueryTest, DedupesSharedPrefixPieces) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("dblp.book(author=\"A1\", year=\"Y1\")");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto pieces = ParseQuery(eq, cst, ParseStrategy::kMaximal);
  // Both paths fully match; identical (start,end) intervals appear once.
  for (size_t i = 0; i < pieces.size(); ++i) {
    for (size_t j = i + 1; j < pieces.size(); ++j) {
      EXPECT_FALSE(pieces[i].StartAtom(eq) == pieces[j].StartAtom(eq) &&
                   pieces[i].EndAtom(eq) == pieces[j].EndAtom(eq));
    }
  }
}

TEST(ParseQueryTest, PiecewiseSegmentsAtBranch) {
  // Deep branch: a.b.c(d, e) in a matching data tree; segments are
  // a.b.c, c.d, c.e (boundaries shared).
  Tree data;
  auto a = data.AddRoot("a");
  auto b = data.AddElement(a, "b");
  auto c = data.AddElement(b, "c");
  data.AddElement(c, "d");
  data.AddElement(c, "e");
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("a.b.c(d, e)");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto pieces = ParseQuery(eq, cst, ParseStrategy::kPiecewiseMaximal);
  // Maximal parse would give 2 pieces (whole paths); piecewise gives
  // 3: a.b.c, c.d, c.e.
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].length, 3);
  EXPECT_EQ(pieces[1].length, 2);
  EXPECT_EQ(pieces[2].length, 2);
}

TEST(ParseQueryTest, SinglePathQueryAllStrategiesAgree) {
  Tree data = testutil::FigureOneTree();
  Cst cst = BuildCst(data);
  auto twig = ParseTwig("dblp.book.author=\"A1\"");
  ASSERT_TRUE(twig.ok());
  ExpandedQuery eq = ExpandQuery(*twig, cst);
  auto maximal = ParseQuery(eq, cst, ParseStrategy::kMaximal);
  auto piecewise = ParseQuery(eq, cst, ParseStrategy::kPiecewiseMaximal);
  ASSERT_EQ(maximal.size(), piecewise.size());
  for (size_t i = 0; i < maximal.size(); ++i) {
    EXPECT_EQ(maximal[i].start, piecewise[i].start);
    EXPECT_EQ(maximal[i].length, piecewise[i].length);
  }
}

}  // namespace
}  // namespace twig::core
