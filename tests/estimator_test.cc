#include <gtest/gtest.h>

#include "core/canonical.h"
#include "core/estimator.h"
#include "cst/cst.h"
#include "match/matcher.h"
#include "query/twig.h"
#include "test_trees.h"

namespace twig::core {
namespace {

using cst::Cst;
using cst::CstOptions;
using query::ParseTwig;
using suffix::PathSuffixTree;
using tree::Tree;

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest() : data_(testutil::FigureOneTree()) {
    auto pst = PathSuffixTree::Build(data_);
    CstOptions options;
    options.prune_threshold = 1;  // unpruned: estimates should be sharp
    cst_ = Cst::Build(data_, pst, options);
  }

  double Estimate(const char* twig_text, Algorithm algorithm,
                  CountSemantics semantics = CountSemantics::kOccurrence) {
    auto twig = ParseTwig(twig_text);
    EXPECT_TRUE(twig.ok());
    EstimateOptions options;
    options.semantics = semantics;
    return TwigEstimator(&cst_).Estimate(*twig, algorithm, options);
  }

  double Truth(const char* twig_text) {
    auto twig = ParseTwig(twig_text);
    EXPECT_TRUE(twig.ok());
    return match::CountTwigMatches(data_, *twig).value().occurrence;
  }

  Tree data_;
  Cst cst_;
};

TEST_F(EstimatorTest, SingleSubpathExactWithFullCst) {
  for (const char* q : {"book.author", "book.year=\"Y1\"", "author=\"A1\""}) {
    EXPECT_DOUBLE_EQ(Estimate(q, Algorithm::kMo), Truth(q)) << q;
    EXPECT_DOUBLE_EQ(Estimate(q, Algorithm::kMsh), Truth(q)) << q;
  }
}

TEST_F(EstimatorTest, SetHashAlgorithmsNailCorrelatedTwig) {
  // All books have both author and year: strong correlation that the
  // independence baselines miss.
  const char* q = "book(author=\"A1\", year=\"Y1\")";
  const double truth = Truth(q);  // 3
  EXPECT_NEAR(Estimate(q, Algorithm::kMosh), truth, 0.6);
  EXPECT_NEAR(Estimate(q, Algorithm::kMsh), truth, 0.6);
  EXPECT_LT(Estimate(q, Algorithm::kGreedy), truth);
}

TEST_F(EstimatorTest, PresenceVsOccurrence) {
  const char* q = "book.author";
  EXPECT_DOUBLE_EQ(Estimate(q, Algorithm::kMo, CountSemantics::kPresence),
                   3.0);
  EXPECT_DOUBLE_EQ(Estimate(q, Algorithm::kMo, CountSemantics::kOccurrence),
                   6.0);
}

TEST_F(EstimatorTest, SectionFiveExample) {
  // book(author, year="Y1"): presence 3, occurrence 6 (the paper's
  // estimate was 2.9 / 5.8; the unpruned CST is exact).
  const char* q = "book(author, year=\"Y1\")";
  EXPECT_NEAR(Estimate(q, Algorithm::kMosh, CountSemantics::kPresence), 3.0,
              0.3);
  EXPECT_NEAR(Estimate(q, Algorithm::kMosh, CountSemantics::kOccurrence), 6.0,
              0.6);
}

TEST_F(EstimatorTest, LeafIgnoresPathContext) {
  // Leaf estimates book.year."Y1" purely from the string "Y1".
  const double leaf = Estimate("book.year=\"Y1\"", Algorithm::kLeaf);
  const double moved = Estimate("book.author=\"Y1\"", Algorithm::kLeaf);
  EXPECT_DOUBLE_EQ(leaf, moved);  // same leaf string, same estimate
  const double mo = Estimate("book.author=\"Y1\"", Algorithm::kMo);
  EXPECT_NE(leaf, mo);
}

TEST_F(EstimatorTest, UnknownTagEstimatesNearZero) {
  const double est = Estimate("journal=\"X\"", Algorithm::kMo);
  EXPECT_LT(est, 1.0);
}

TEST_F(EstimatorTest, EstimatesAreNonNegative) {
  for (Algorithm a : kAllAlgorithms) {
    EXPECT_GE(Estimate("book(author=\"A9\", title=\"zz\")", a), 0.0);
  }
}

TEST_F(EstimatorTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kLeaf), "Leaf");
  EXPECT_STREQ(AlgorithmName(Algorithm::kGreedy), "Greedy");
  EXPECT_STREQ(AlgorithmName(Algorithm::kMo), "MO");
  EXPECT_STREQ(AlgorithmName(Algorithm::kMosh), "MOSH");
  EXPECT_STREQ(AlgorithmName(Algorithm::kPmosh), "PMOSH");
  EXPECT_STREQ(AlgorithmName(Algorithm::kMsh), "MSH");
}

TEST_F(EstimatorTest, FingerprintsStableAndAlgorithmSensitive) {
  auto twig = ParseTwig("book(author=\"A1\", year=\"Y1\")");
  ASSERT_TRUE(twig.ok());
  TwigEstimator estimator(&cst_);
  const uint64_t mosh =
      estimator.DecompositionFingerprint(*twig, Algorithm::kMosh);
  EXPECT_EQ(mosh, estimator.DecompositionFingerprint(*twig, Algorithm::kMosh));
  EXPECT_NE(mosh, estimator.DecompositionFingerprint(*twig, Algorithm::kMo));
}

/// Property sweep: on an unpruned CST, MO and the set-hash algorithms
/// must reproduce exact counts for every single-path query, under both
/// semantics.
struct TrivialCase {
  const char* query;
  double presence;
  double occurrence;
};

class TrivialExactness : public ::testing::TestWithParam<TrivialCase> {};

TEST_P(TrivialExactness, MatchesTruth) {
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  CstOptions options;
  options.prune_threshold = 1;
  Cst cst = Cst::Build(data, pst, options);
  TwigEstimator estimator(&cst);
  auto twig = ParseTwig(GetParam().query);
  ASSERT_TRUE(twig.ok());
  const match::TwigCounts truth =
      match::CountTwigMatches(data, *twig).value();
  EXPECT_DOUBLE_EQ(truth.presence, GetParam().presence);
  EXPECT_DOUBLE_EQ(truth.occurrence, GetParam().occurrence);
  for (Algorithm a : {Algorithm::kMo, Algorithm::kMosh, Algorithm::kMsh}) {
    EstimateOptions popt;
    popt.semantics = CountSemantics::kPresence;
    EXPECT_DOUBLE_EQ(estimator.Estimate(*twig, a, popt), truth.presence)
        << GetParam().query;
    EstimateOptions oopt;
    oopt.semantics = CountSemantics::kOccurrence;
    EXPECT_DOUBLE_EQ(estimator.Estimate(*twig, a, oopt), truth.occurrence)
        << GetParam().query;
  }
}

TEST_F(EstimatorTest, BatchMatchesSequentialBitForBit) {
  workload::Workload wl;
  const char* texts[] = {
      "book.author",
      "book(author=\"A1\", year=\"Y1\")",
      "dblp.book(author, year)",
      "book(author=\"A\", title, year=\"Y\")",
      "author=\"A2\"",
      "book.title=\"T3\"",
  };
  for (int copy = 0; copy < 7; ++copy) {
    for (const char* text : texts) {
      auto twig = ParseTwig(text);
      ASSERT_TRUE(twig.ok()) << text;
      workload::WorkloadQuery wq;
      wq.twig = *twig;
      wl.push_back(std::move(wq));
    }
  }

  TwigEstimator estimator(&cst_);
  for (Algorithm algorithm : kAllAlgorithms) {
    BatchOptions sequential;
    sequential.num_threads = 1;
    const auto expected = estimator.EstimateBatch(wl, algorithm, sequential);
    ASSERT_EQ(expected.size(), wl.size());
    for (size_t threads : {2u, 4u, 8u}) {
      BatchOptions parallel;
      parallel.num_threads = threads;
      stats::BatchStats batch_stats;
      const auto got =
          estimator.EstimateBatch(wl, algorithm, parallel, &batch_stats);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        // Exact equality: parallel runs must be bit-identical.
        EXPECT_EQ(got[i], expected[i])
            << AlgorithmName(algorithm) << " query " << i << " at "
            << threads << " threads";
      }
      EXPECT_EQ(batch_stats.num_threads, threads);
      EXPECT_EQ(batch_stats.total_queries(), wl.size());
      EXPECT_GT(batch_stats.wall_seconds, 0.0);
      EXPECT_GT(batch_stats.throughput_qps(), 0.0);
      EXPECT_GT(batch_stats.avg_latency_seconds(), 0.0);
    }
  }
}

TEST_F(EstimatorTest, BatchEmptyWorkload) {
  workload::Workload empty;
  TwigEstimator estimator(&cst_);
  for (size_t threads : {1u, 4u}) {
    BatchOptions options;
    options.num_threads = threads;
    stats::BatchStats batch_stats;
    const auto estimates = estimator.EstimateBatch(
        empty, Algorithm::kMsh, options, &batch_stats);
    EXPECT_TRUE(estimates.empty());
    EXPECT_EQ(batch_stats.num_threads, threads);
    EXPECT_EQ(batch_stats.total_queries(), 0u);
    EXPECT_DOUBLE_EQ(batch_stats.busy_seconds(), 0.0);
    EXPECT_DOUBLE_EQ(batch_stats.throughput_qps(), 0.0);
    EXPECT_DOUBLE_EQ(batch_stats.avg_latency_seconds(), 0.0);
  }
}

TEST_F(EstimatorTest, BatchMoreThreadsThanQueries) {
  workload::Workload wl;
  for (const char* text : {"book.author", "book.year=\"Y1\""}) {
    auto twig = ParseTwig(text);
    ASSERT_TRUE(twig.ok());
    workload::WorkloadQuery wq;
    wq.twig = *twig;
    wl.push_back(std::move(wq));
  }
  TwigEstimator estimator(&cst_);
  BatchOptions options;
  options.num_threads = 8;  // far more workers than queries
  stats::BatchStats batch_stats;
  const auto got =
      estimator.EstimateBatch(wl, Algorithm::kMo, options, &batch_stats);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0], Estimate("book.author", Algorithm::kMo));
  EXPECT_DOUBLE_EQ(got[1], Estimate("book.year=\"Y1\"", Algorithm::kMo));
  EXPECT_EQ(batch_stats.num_threads, 8u);
  EXPECT_EQ(batch_stats.queries_per_thread.size(), 8u);
  EXPECT_EQ(batch_stats.total_queries(), 2u);
}

TEST_F(EstimatorTest, BatchStatsPopulatedOnInlinePath) {
  // num_threads == 1 runs inline with no pool; stats must still be
  // filled, including the obs counter deltas (satisfied at minimum by
  // the kEstimates increments of this very batch).
  workload::Workload wl;
  auto twig = ParseTwig("book(author, year=\"Y1\")");
  ASSERT_TRUE(twig.ok());
  for (int i = 0; i < 3; ++i) {
    workload::WorkloadQuery wq;
    wq.twig = *twig;
    wl.push_back(std::move(wq));
  }
  TwigEstimator estimator(&cst_);
  stats::BatchStats batch_stats;
  const auto got = estimator.EstimateBatch(wl, Algorithm::kMsh, {},
                                           &batch_stats);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(batch_stats.num_threads, 1u);
  ASSERT_EQ(batch_stats.queries_per_thread.size(), 1u);
  EXPECT_EQ(batch_stats.queries_per_thread[0], 3u);
  EXPECT_GT(batch_stats.wall_seconds, 0.0);
  EXPECT_GE(batch_stats.wall_seconds, batch_stats.busy_seconds() * 0.5);
  EXPECT_GE(
      batch_stats.counter_deltas[static_cast<size_t>(
          obs::Counter::kEstimates)],
      3u);
  // The JSON rendering carries one key per counter.
  const std::string json = batch_stats.CounterDeltasJson();
  EXPECT_NE(json.find("\"estimates\""), std::string::npos);
  EXPECT_NE(json.find("\"cst_subpath_lookups\""), std::string::npos);
}

TEST_F(EstimatorTest, BatchIgnoresAttachedTrace) {
  workload::Workload wl;
  auto twig = ParseTwig("book(author, year=\"Y1\")");
  ASSERT_TRUE(twig.ok());
  for (int i = 0; i < 4; ++i) {
    workload::WorkloadQuery wq;
    wq.twig = *twig;
    wl.push_back(std::move(wq));
  }
  TwigEstimator estimator(&cst_);
  const auto expected = estimator.EstimateBatch(wl, Algorithm::kMsh);
  obs::Trace trace;
  trace.query = "sentinel";
  BatchOptions traced;
  traced.num_threads = 2;
  traced.estimate.trace = &trace;
  const auto got = estimator.EstimateBatch(wl, Algorithm::kMsh, traced);
  EXPECT_EQ(got, expected);               // estimates unaffected
  EXPECT_EQ(trace.query, "sentinel");     // sink never touched
  EXPECT_TRUE(trace.pieces.empty());
}

// ---------------------------------------------------------------------------
// Canonical query keys

TEST(CanonicalQueryTest, DifferentSpellingsShareOneKey) {
  auto loose = ParseTwig("  book ( author = \"Su\" , year ) ");
  auto tight = ParseTwig("book(author=\"Su\", year)");
  ASSERT_TRUE(loose.ok() && tight.ok());
  const CanonicalQueryKey a = CanonicalizeQuery(
      *loose, Algorithm::kMsh, CountSemantics::kOccurrence);
  const CanonicalQueryKey b = CanonicalizeQuery(
      *tight, Algorithm::kMsh, CountSemantics::kOccurrence);
  EXPECT_EQ(a.text, "book(author=\"Su\", year)");
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_NE(a.fingerprint, 0u);
}

TEST(CanonicalQueryTest, AlgorithmAndSemanticsChangeTheFingerprint) {
  auto twig = ParseTwig("book.author");
  ASSERT_TRUE(twig.ok());
  const CanonicalQueryKey msh_occ = CanonicalizeQuery(
      *twig, Algorithm::kMsh, CountSemantics::kOccurrence);
  const CanonicalQueryKey mo_occ = CanonicalizeQuery(
      *twig, Algorithm::kMo, CountSemantics::kOccurrence);
  const CanonicalQueryKey msh_pres = CanonicalizeQuery(
      *twig, Algorithm::kMsh, CountSemantics::kPresence);
  // Same question text, but the answer depends on (algorithm,
  // semantics), so the identities must differ.
  EXPECT_EQ(msh_occ.text, mo_occ.text);
  EXPECT_NE(msh_occ.fingerprint, mo_occ.fingerprint);
  EXPECT_NE(msh_occ.fingerprint, msh_pres.fingerprint);
  EXPECT_NE(mo_occ.fingerprint, msh_pres.fingerprint);
}

TEST(CanonicalQueryTest, FingerprintMatchesDirectTextFingerprint) {
  auto twig = ParseTwig("article(author, year=\"19\")");
  ASSERT_TRUE(twig.ok());
  const CanonicalQueryKey key = CanonicalizeQuery(
      *twig, Algorithm::kGreedy, CountSemantics::kOccurrence);
  EXPECT_EQ(key.fingerprint,
            CanonicalQueryFingerprint(key.text, Algorithm::kGreedy,
                                      CountSemantics::kOccurrence));
}

TEST(CanonicalQueryTest, DistinctQueriesGetDistinctKeys) {
  const char* texts[] = {"a.b", "a.c", "a(b, c)", "a(b, c=\"x\")", "b.a"};
  std::vector<CanonicalQueryKey> keys;
  for (const char* text : texts) {
    auto twig = ParseTwig(text);
    ASSERT_TRUE(twig.ok()) << text;
    keys.push_back(CanonicalizeQuery(*twig, Algorithm::kMsh,
                                     CountSemantics::kOccurrence));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i].text, keys[j].text);
      EXPECT_NE(keys[i].fingerprint, keys[j].fingerprint);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FigureOneQueries, TrivialExactness,
    ::testing::Values(TrivialCase{"dblp.book.author", 1, 6},
                      TrivialCase{"book.author=\"A1\"", 3, 3},
                      TrivialCase{"book.author=\"A2\"", 2, 2},
                      TrivialCase{"book.title=\"T3\"", 1, 1},
                      TrivialCase{"book.year=\"Y1\"", 3, 3},
                      TrivialCase{"author=\"A\"", 6, 6},
                      TrivialCase{"year", 3, 3}));

}  // namespace
}  // namespace twig::core
