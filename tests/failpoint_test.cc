// Tests for the failpoint registry: spec parsing, arming/disarming,
// hit/trigger accounting, probabilistic determinism, crash-once
// semantics, and the zero-overhead-when-disabled fast path.

#include "util/failpoint.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace twig::util {
namespace {

// Every test runs against the process-wide registry, so each one
// starts and ends from a clean slate.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Get().Reset(); }
  void TearDown() override {
    FailpointRegistry::Get().SetCrashHandlerForTest(nullptr);
    FailpointRegistry::Get().Reset();
  }
};

TEST_F(FailpointTest, DisabledIsOkAndUnarmed) {
  EXPECT_FALSE(FailpointsArmed());
  EXPECT_TRUE(FailpointCheck("serve/admission").ok());
  // An unconfigured name leaves no entry behind.
  EXPECT_TRUE(FailpointRegistry::Get().Snapshot().empty());
}

TEST_F(FailpointTest, ErrorActionFiresEveryTime) {
  auto& reg = FailpointRegistry::Get();
  ASSERT_TRUE(reg.Configure("serve/estimate", "error").ok());
  EXPECT_TRUE(FailpointsArmed());
  for (int i = 0; i < 3; ++i) {
    Status s = FailpointCheck("serve/estimate");
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
    EXPECT_NE(s.message().find("injected fault at serve/estimate"),
              std::string::npos);
  }
  FailpointInfo info = reg.Info("serve/estimate");
  EXPECT_EQ(info.hits, 3u);
  EXPECT_EQ(info.triggers, 3u);
}

TEST_F(FailpointTest, OffDisarmsButKeepsStats) {
  auto& reg = FailpointRegistry::Get();
  ASSERT_TRUE(reg.Configure("fp", "error").ok());
  EXPECT_FALSE(FailpointCheck("fp").ok());
  ASSERT_TRUE(reg.Configure("fp", "off").ok());
  EXPECT_FALSE(FailpointsArmed());
  EXPECT_TRUE(FailpointCheck("fp").ok());
  FailpointInfo info = reg.Info("fp");
  EXPECT_EQ(info.action, FailpointAction::kOff);
  EXPECT_EQ(info.hits, 1u);
  EXPECT_EQ(info.triggers, 1u);
}

TEST_F(FailpointTest, ProbabilityIsSeededAndDeterministic) {
  auto& reg = FailpointRegistry::Get();
  ASSERT_TRUE(reg.Configure("fp", "error:0.5").ok());

  auto run = [&reg]() {
    reg.Seed(42);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!FailpointRegistry::Get().Evaluate("fp").ok());
    }
    return fired;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);

  // p=0.5 over 64 draws should neither always fire nor never fire.
  int fires = 0;
  for (bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);

  FailpointInfo info = reg.Info("fp");
  EXPECT_EQ(info.hits, 128u);
  EXPECT_EQ(info.triggers, static_cast<uint64_t>(2 * fires));
}

TEST_F(FailpointTest, ProbabilityZeroNeverFires) {
  ASSERT_TRUE(FailpointRegistry::Get().Configure("fp", "error:0").ok());
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(FailpointCheck("fp").ok());
  }
  FailpointInfo info = FailpointRegistry::Get().Info("fp");
  EXPECT_EQ(info.hits, 32u);
  EXPECT_EQ(info.triggers, 0u);
}

TEST_F(FailpointTest, DelayActionSleeps) {
  ASSERT_TRUE(FailpointRegistry::Get().Configure("fp", "delay:30").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(FailpointCheck("fp").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
  EXPECT_EQ(FailpointRegistry::Get().Info("fp").triggers, 1u);
}

TEST_F(FailpointTest, CrashOnceFiresHandlerThenDisarms) {
  auto& reg = FailpointRegistry::Get();
  std::atomic<int> crashes{0};
  reg.SetCrashHandlerForTest([&crashes] { ++crashes; });
  ASSERT_TRUE(reg.Configure("fp", "crash-once").ok());
  EXPECT_TRUE(FailpointCheck("fp").ok());
  EXPECT_EQ(crashes.load(), 1);
  // The second evaluation is a no-op: the point disarmed itself.
  EXPECT_FALSE(FailpointsArmed());
  EXPECT_TRUE(FailpointCheck("fp").ok());
  EXPECT_EQ(crashes.load(), 1);
  FailpointInfo info = reg.Info("fp");
  EXPECT_EQ(info.action, FailpointAction::kOff);
  EXPECT_EQ(info.hits, 1u);
  EXPECT_EQ(info.triggers, 1u);
}

TEST_F(FailpointTest, ConfigureListAppliesAllEntries) {
  auto& reg = FailpointRegistry::Get();
  ASSERT_TRUE(
      reg.ConfigureList("a=error,b=delay:5:0.5,c=crash-once,d=error:0.25")
          .ok());
  std::vector<FailpointInfo> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[0].action, FailpointAction::kError);
  EXPECT_EQ(snap[1].name, "b");
  EXPECT_EQ(snap[1].action, FailpointAction::kDelay);
  EXPECT_EQ(snap[1].delay_ms, 5u);
  EXPECT_DOUBLE_EQ(snap[1].probability, 0.5);
  EXPECT_EQ(snap[2].name, "c");
  EXPECT_EQ(snap[2].action, FailpointAction::kCrashOnce);
  EXPECT_EQ(snap[3].name, "d");
  EXPECT_DOUBLE_EQ(snap[3].probability, 0.25);
}

TEST_F(FailpointTest, ConfigureListToleratesEmptyItems) {
  EXPECT_TRUE(FailpointRegistry::Get().ConfigureList("").ok());
  EXPECT_TRUE(FailpointRegistry::Get().ConfigureList("a=error,,b=error,").ok());
  EXPECT_EQ(FailpointRegistry::Get().Snapshot().size(), 2u);
}

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  auto& reg = FailpointRegistry::Get();
  // Bad names.
  EXPECT_FALSE(reg.Configure("", "error").ok());
  EXPECT_FALSE(reg.Configure("has space", "error").ok());
  EXPECT_FALSE(reg.Configure("quote\"", "error").ok());
  // Bad actions and arguments.
  EXPECT_FALSE(reg.Configure("fp", "explode").ok());
  EXPECT_FALSE(reg.Configure("fp", "error:2").ok());
  EXPECT_FALSE(reg.Configure("fp", "error:nan").ok());
  EXPECT_FALSE(reg.Configure("fp", "error:1e-1").ok());
  EXPECT_FALSE(reg.Configure("fp", "delay").ok());
  EXPECT_FALSE(reg.Configure("fp", "delay:abc").ok());
  EXPECT_FALSE(reg.Configure("fp", "delay:99999999").ok());
  EXPECT_FALSE(reg.Configure("fp", "off:1").ok());
  EXPECT_FALSE(reg.Configure("fp", "crash-once:1").ok());
  // List grammar.
  EXPECT_FALSE(reg.ConfigureList("noequals").ok());
  EXPECT_FALSE(reg.ConfigureList("a=error,b=bogus").ok());
  // The valid prefix of a failed list stays applied.
  EXPECT_EQ(reg.Info("a").action, FailpointAction::kError);
  // Nothing armed under the bad specs beyond that prefix.
  EXPECT_EQ(reg.Info("fp").action, FailpointAction::kOff);
}

TEST_F(FailpointTest, ResetDisarmsEverything) {
  auto& reg = FailpointRegistry::Get();
  ASSERT_TRUE(reg.ConfigureList("a=error,b=delay:1").ok());
  EXPECT_TRUE(FailpointsArmed());
  reg.Reset();
  EXPECT_FALSE(FailpointsArmed());
  EXPECT_TRUE(reg.Snapshot().empty());
  EXPECT_TRUE(FailpointCheck("a").ok());
}

TEST_F(FailpointTest, ReconfigureKeepsArmedCountBalanced) {
  auto& reg = FailpointRegistry::Get();
  ASSERT_TRUE(reg.Configure("fp", "error").ok());
  ASSERT_TRUE(reg.Configure("fp", "delay:1").ok());  // armed -> armed
  EXPECT_TRUE(FailpointsArmed());
  ASSERT_TRUE(reg.Configure("fp", "off").ok());
  EXPECT_FALSE(FailpointsArmed());
  ASSERT_TRUE(reg.Configure("fp", "off").ok());  // off -> off, no underflow
  EXPECT_FALSE(FailpointsArmed());
  ASSERT_TRUE(reg.Configure("fp", "error").ok());
  EXPECT_TRUE(FailpointsArmed());
}

TEST_F(FailpointTest, ConcurrentEvaluateAndConfigure) {
  auto& reg = FailpointRegistry::Get();
  ASSERT_TRUE(reg.Configure("fp", "error:0.5").ok());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checks{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&stop, &checks] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)FailpointCheck("fp");
        checks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(reg.Configure("fp", i % 2 == 0 ? "off" : "error:0.5").ok());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(checks.load(), 0u);
  // hits <= checks: evaluations during "off" windows don't count.
  EXPECT_LE(reg.Info("fp").hits, checks.load());
}

}  // namespace
}  // namespace twig::util
