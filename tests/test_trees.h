// Shared fixture trees for the test suite.

#ifndef TWIG_TESTS_TEST_TREES_H_
#define TWIG_TESTS_TEST_TREES_H_

#include <initializer_list>

#include "tree/tree.h"

namespace twig::testutil {

/// The paper's Figure 1 DBLP fragment: three books with duplicate
/// sibling author labels (the multiset case).
inline tree::Tree FigureOneTree() {
  tree::Tree t;
  tree::NodeId dblp = t.AddRoot("dblp");
  auto add_book = [&](std::initializer_list<const char*> authors,
                      const char* title, const char* year) {
    tree::NodeId book = t.AddElement(dblp, "book");
    for (const char* a : authors) {
      t.AddValue(t.AddElement(book, "author"), a);
    }
    t.AddValue(t.AddElement(book, "title"), title);
    t.AddValue(t.AddElement(book, "year"), year);
  };
  add_book({"A1"}, "T1", "Y1");
  add_book({"A1", "A2"}, "T2", "Y1");
  add_book({"A1", "A2", "A3"}, "T3", "Y1");
  return t;
}

/// The Figure 2(a) example pattern's data-side analogue: one tree
/// containing paths a.b.c.d.e and a.b.c.f.g.
inline tree::Tree FigureTwoTree() {
  tree::Tree t;
  tree::NodeId a = t.AddRoot("a");
  tree::NodeId b = t.AddElement(a, "b");
  tree::NodeId c = t.AddElement(b, "c");
  tree::NodeId d = t.AddElement(c, "d");
  t.AddElement(d, "e");
  tree::NodeId f = t.AddElement(c, "f");
  t.AddElement(f, "g");
  return t;
}

}  // namespace twig::testutil

#endif  // TWIG_TESTS_TEST_TREES_H_
