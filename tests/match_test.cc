#include <gtest/gtest.h>

#include <string>

#include "match/matcher.h"
#include "query/twig.h"
#include "test_trees.h"

namespace twig::match {
namespace {

using query::ParseTwig;
using tree::Tree;

TwigCounts Count(const Tree& data, const char* twig_text,
                 const MatchOptions& options = {}) {
  auto twig = ParseTwig(twig_text);
  EXPECT_TRUE(twig.ok()) << twig.status().ToString();
  auto counts = CountTwigMatches(data, *twig, options);
  EXPECT_TRUE(counts.ok()) << counts.status().ToString();
  return *counts;
}

TEST(MatcherTest, PaperQueryOne) {
  // Figure 1, QUERY 1: book(author="A1", year="Y1") has three matches.
  Tree data = testutil::FigureOneTree();
  TwigCounts counts = Count(data, "book(author=\"A1\", year=\"Y1\")");
  EXPECT_DOUBLE_EQ(counts.presence, 3.0);
  EXPECT_DOUBLE_EQ(counts.occurrence, 3.0);
}

TEST(MatcherTest, PaperQueryTwoUnorderedVsOrdered) {
  // Figure 1, QUERY 2: book(author="A2", author="A1"-side, year="Y1"):
  // 2 unordered matches, 1 ordered match. Expressed with the sampled
  // sibling order author="A2" before author="A1".
  Tree data = testutil::FigureOneTree();
  const char* q = "book(author=\"A2\", author=\"A1\", year=\"Y1\")";
  TwigCounts unordered = Count(data, q);
  EXPECT_DOUBLE_EQ(unordered.presence, 2.0);
  EXPECT_DOUBLE_EQ(unordered.occurrence, 2.0);
  MatchOptions ordered;
  ordered.ordered = true;
  // In document order, authors appear as A1 then A2, so requiring A2
  // before A1 yields no ordered match; the A1-then-A2 query yields 2.
  EXPECT_DOUBLE_EQ(Count(data, q, ordered).occurrence, 0.0);
  EXPECT_DOUBLE_EQ(
      Count(data, "book(author=\"A1\", author=\"A2\", year=\"Y1\")", ordered)
          .occurrence,
      2.0);
}

TEST(MatcherTest, OccurrenceCountsAllMappings) {
  // book(author) maps to each (book, author) pair: 1 + 2 + 3 = 6;
  // presence counts distinct books: 3.
  Tree data = testutil::FigureOneTree();
  TwigCounts counts = Count(data, "book.author");
  EXPECT_DOUBLE_EQ(counts.presence, 3.0);
  EXPECT_DOUBLE_EQ(counts.occurrence, 6.0);
}

TEST(MatcherTest, SiblingInjectivity) {
  // book(author, author): injective pairs of distinct authors, ordered
  // mappings: book1: 0, book2: 2, book3: 6 -> 8 total; presence 2.
  Tree data = testutil::FigureOneTree();
  TwigCounts counts = Count(data, "book(author, author)");
  EXPECT_DOUBLE_EQ(counts.presence, 2.0);
  EXPECT_DOUBLE_EQ(counts.occurrence, 8.0);
}

TEST(MatcherTest, ValuePrefixSemantics) {
  Tree data;
  auto dblp = data.AddRoot("dblp");
  auto book = data.AddElement(dblp, "book");
  auto author = data.AddElement(book, "author");
  data.AddValue(author, "Suciu");
  EXPECT_DOUBLE_EQ(Count(data, "author=\"Su\"").occurrence, 1.0);
  EXPECT_DOUBLE_EQ(Count(data, "author=\"Suciu\"").occurrence, 1.0);
  EXPECT_DOUBLE_EQ(Count(data, "author=\"uciu\"").occurrence, 0.0);
  EXPECT_DOUBLE_EQ(Count(data, "author=\"Suciux\"").occurrence, 0.0);
}

TEST(MatcherTest, RootCanMatchAnywhere) {
  // The twig root maps to any data node, not just the data root.
  Tree data = testutil::FigureOneTree();
  EXPECT_DOUBLE_EQ(Count(data, "author=\"A3\"").occurrence, 1.0);
  EXPECT_DOUBLE_EQ(Count(data, "year").presence, 3.0);
}

TEST(MatcherTest, NoMatchMeansZero) {
  Tree data = testutil::FigureOneTree();
  EXPECT_DOUBLE_EQ(Count(data, "book(author=\"A3\", title=\"T1\")").occurrence,
                   0.0);
  EXPECT_DOUBLE_EQ(Count(data, "journal").occurrence, 0.0);
}

TEST(MatcherTest, DeepChainMatch) {
  Tree data = testutil::FigureOneTree();
  EXPECT_DOUBLE_EQ(Count(data, "dblp.book.author=\"A1\"").occurrence, 3.0);
  EXPECT_DOUBLE_EQ(Count(data, "dblp.book.author=\"A1\"").presence, 1.0);
}

TEST(MatcherTest, WildcardMatchesAnyElement) {
  Tree data = testutil::FigureOneTree();
  // *(author="A2") matches books 2 and 3.
  EXPECT_DOUBLE_EQ(Count(data, "*(author=\"A2\")").presence, 2.0);
  // book.* counts all element children of books: 3+4+5 = 12.
  EXPECT_DOUBLE_EQ(Count(data, "book.*").occurrence, 12.0);
}

TEST(MatcherTest, MultisetPermanentBranching) {
  // A node with 4 identical-label children, query asks for 3:
  // occurrence = 4 * 3 * 2 = 24 injective ordered mappings.
  Tree data;
  auto root = data.AddRoot("r");
  for (int i = 0; i < 4; ++i) data.AddElement(root, "c");
  TwigCounts counts = Count(data, "r(c, c, c)");
  EXPECT_DOUBLE_EQ(counts.presence, 1.0);
  EXPECT_DOUBLE_EQ(counts.occurrence, 24.0);
  // Ordered semantics: choose an increasing triple: C(4,3) = 4.
  MatchOptions ordered;
  ordered.ordered = true;
  EXPECT_DOUBLE_EQ(Count(data, "r(c, c, c)", ordered).occurrence, 4.0);
}

TEST(MatcherTest, FigureTwoPattern) {
  Tree data = testutil::FigureTwoTree();
  TwigCounts counts = Count(data, "a.b.c(d.e, f.g)");
  EXPECT_DOUBLE_EQ(counts.presence, 1.0);
  EXPECT_DOUBLE_EQ(counts.occurrence, 1.0);
  EXPECT_DOUBLE_EQ(Count(data, "c(d, f)").occurrence, 1.0);
  EXPECT_DOUBLE_EQ(Count(data, "c(e, f)").occurrence, 0.0);
}

TEST(MatcherTest, DescendantEdgeBasics) {
  // a(x(b), b): a//b reaches the nested b through child x and the
  // direct b child.
  Tree data;
  auto a = data.AddRoot("a");
  auto x = data.AddElement(a, "x");
  data.AddElement(x, "b");
  data.AddElement(a, "b");
  EXPECT_DOUBLE_EQ(Count(data, "a//b").occurrence, 2.0);
  EXPECT_DOUBLE_EQ(Count(data, "a//b").presence, 1.0);
  // Child-edge semantics are untouched.
  EXPECT_DOUBLE_EQ(Count(data, "a.b").occurrence, 1.0);
  // Deep chain: only the descendant edge crosses levels.
  EXPECT_DOUBLE_EQ(Count(data, "a.x.b").occurrence, 1.0);
  EXPECT_DOUBLE_EQ(Count(data, "a//x").occurrence, 1.0);
}

TEST(MatcherTest, DescendantEdgeSkipsLevels) {
  // a -> x -> y -> b: a//b finds b three levels down.
  Tree data;
  auto a = data.AddRoot("a");
  auto x = data.AddElement(a, "x");
  auto y = data.AddElement(x, "y");
  data.AddElement(y, "b");
  EXPECT_DOUBLE_EQ(Count(data, "a//b").occurrence, 1.0);
  EXPECT_DOUBLE_EQ(Count(data, "a.b").occurrence, 0.0);
  // Chained descendant edges compose.
  EXPECT_DOUBLE_EQ(Count(data, "a//y//b").occurrence, 1.0);
  EXPECT_DOUBLE_EQ(Count(data, "a//b//y").occurrence, 0.0);
}

TEST(MatcherTest, DescendantChildrenRouteThroughDistinctSubtrees) {
  // a(x(b), b): the two //b twig children must route through distinct
  // children of a — the nested b and the direct b, in both
  // assignments.
  Tree data;
  auto a = data.AddRoot("a");
  auto x = data.AddElement(a, "x");
  data.AddElement(x, "b");
  data.AddElement(a, "b");
  EXPECT_DOUBLE_EQ(Count(data, "a(//b, //b)").occurrence, 2.0);
  // Both b's under one child of a: no disjoint routing exists.
  Tree nested;
  auto r = nested.AddRoot("a");
  auto mid = nested.AddElement(r, "x");
  nested.AddElement(mid, "b");
  nested.AddElement(mid, "b");
  EXPECT_DOUBLE_EQ(Count(nested, "a(//b, //b)").occurrence, 0.0);
  EXPECT_DOUBLE_EQ(Count(nested, "x(//b, //b)").occurrence, 2.0);
}

TEST(MatcherTest, DescendantMixesWithValuesAndWildcards) {
  Tree data = testutil::FigureOneTree();
  // dblp//author="A1": authors live two levels below dblp.
  EXPECT_DOUBLE_EQ(Count(data, "dblp//author=\"A1\"").occurrence, 3.0);
  // *//author: dblp (6 authors below) + 3 books (their own authors).
  EXPECT_DOUBLE_EQ(Count(data, "*//author").occurrence, 12.0);
}

// Regression: Walk used to recurse per data-tree level, so a deep
// chain overflowed the native stack. 200k levels must count fine, for
// child and descendant edges alike.
TEST(MatcherTest, DeepChainDoesNotOverflowStack) {
  constexpr int kDepth = 200000;
  Tree data;
  auto node = data.AddRoot("a");
  for (int i = 1; i < kDepth; ++i) node = data.AddElement(node, "a");
  TwigCounts child = Count(data, "a.a");
  EXPECT_DOUBLE_EQ(child.presence, kDepth - 1);
  EXPECT_DOUBLE_EQ(child.occurrence, kDepth - 1);
  // a//a pairs every node with each strict descendant: n*(n-1)/2.
  TwigCounts desc = Count(data, "a//a");
  EXPECT_DOUBLE_EQ(desc.occurrence,
                   static_cast<double>(kDepth) * (kDepth - 1) / 2.0);
}

// Regression: the fan-out bound was a debug-only assert, so release
// builds hit shift UB (fan-out >= 64) or multi-GB allocations (~30).
// It must be a structured error in every build mode.
TEST(MatcherTest, FanOutBeyondDpWidthIsAnError) {
  Tree data;
  auto root = data.AddRoot("r");
  for (int i = 0; i < 25; ++i) data.AddElement(root, "c");
  std::string wide = "r(c";
  for (int i = 1; i < 25; ++i) wide += ", c";
  wide += ")";
  auto twig = ParseTwig(wide);
  ASSERT_TRUE(twig.ok());
  auto counts = CountTwigMatches(data, *twig);
  ASSERT_FALSE(counts.ok());
  EXPECT_EQ(counts.status().code(), StatusCode::kInvalidArgument);
  // At the limit the DP still runs (on a small tree so the 2^20-state
  // DP table is touched only briefly).
  Tree narrow;
  auto nroot = narrow.AddRoot("r");
  for (int i = 0; i < 4; ++i) narrow.AddElement(nroot, "c");
  std::string at_limit = "r(c";
  for (size_t i = 1; i < kMaxTwigFanOut; ++i) at_limit += ", c";
  at_limit += ")";
  auto ok_twig = ParseTwig(at_limit);
  ASSERT_TRUE(ok_twig.ok());
  auto ok_counts = CountTwigMatches(narrow, *ok_twig);
  ASSERT_TRUE(ok_counts.ok());
  EXPECT_DOUBLE_EQ(ok_counts->occurrence, 0.0);  // 4 children < 20 asked
}

TEST(MatcherTest, EmptyInputs) {
  Tree empty;
  auto twig = ParseTwig("a");
  ASSERT_TRUE(twig.ok());
  TwigCounts counts = CountTwigMatches(empty, *twig).value();
  EXPECT_DOUBLE_EQ(counts.occurrence, 0.0);
}

TEST(MatcherTest, ValueLeafUnderWrongParentFails) {
  Tree data = testutil::FigureOneTree();
  // "book" elements have no direct value children.
  EXPECT_DOUBLE_EQ(Count(data, "book=\"A1\"").occurrence, 0.0);
}

}  // namespace
}  // namespace twig::match
