#include <gtest/gtest.h>

#include "tree/tree.h"

namespace twig::tree {
namespace {

Tree FigureOneTree() {
  // The paper's Figure 1 DBLP fragment: three books.
  Tree t;
  NodeId dblp = t.AddRoot("dblp");
  NodeId b1 = t.AddElement(dblp, "book");
  NodeId a = t.AddElement(b1, "author");
  t.AddValue(a, "A1");
  NodeId ti = t.AddElement(b1, "title");
  t.AddValue(ti, "T1");
  NodeId y = t.AddElement(b1, "year");
  t.AddValue(y, "Y1");

  NodeId b2 = t.AddElement(dblp, "book");
  NodeId a1 = t.AddElement(b2, "author");
  t.AddValue(a1, "A1");
  NodeId a2 = t.AddElement(b2, "author");
  t.AddValue(a2, "A2");
  NodeId t2 = t.AddElement(b2, "title");
  t.AddValue(t2, "T2");
  NodeId y2 = t.AddElement(b2, "year");
  t.AddValue(y2, "Y1");

  NodeId b3 = t.AddElement(dblp, "book");
  for (const char* av : {"A1", "A2", "A3"}) {
    NodeId an = t.AddElement(b3, "author");
    t.AddValue(an, av);
  }
  NodeId t3 = t.AddElement(b3, "title");
  t.AddValue(t3, "T3");
  NodeId y3 = t.AddElement(b3, "year");
  t.AddValue(y3, "Y1");
  return t;
}

TEST(TreeTest, RootIsFirstNode) {
  Tree t;
  NodeId r = t.AddRoot("dblp");
  EXPECT_EQ(r, t.root());
  EXPECT_EQ(t.LabelName(r), "dblp");
  EXPECT_EQ(t.Parent(r), kNullNode);
}

TEST(TreeTest, ChildrenPreserveOrder) {
  Tree t;
  NodeId r = t.AddRoot("a");
  NodeId c1 = t.AddElement(r, "b");
  NodeId c2 = t.AddElement(r, "c");
  ASSERT_EQ(t.Children(r).size(), 2u);
  EXPECT_EQ(t.Children(r)[0], c1);
  EXPECT_EQ(t.Children(r)[1], c2);
  EXPECT_EQ(t.Parent(c1), r);
  EXPECT_EQ(t.Parent(c2), r);
}

TEST(TreeTest, ValueNodesCarryStrings) {
  Tree t;
  NodeId r = t.AddRoot("book");
  NodeId v = t.AddValue(r, "Morgan Kaufmann");
  EXPECT_TRUE(t.IsValue(v));
  EXPECT_FALSE(t.IsValue(r));
  EXPECT_EQ(t.Value(v), "Morgan Kaufmann");
}

TEST(TreeTest, MultipleValuesShareArena) {
  Tree t;
  NodeId r = t.AddRoot("r");
  NodeId v1 = t.AddValue(r, "abc");
  NodeId v2 = t.AddValue(r, "defg");
  EXPECT_EQ(t.Value(v1), "abc");
  EXPECT_EQ(t.Value(v2), "defg");
}

TEST(TreeTest, DepthIsEdgesFromRoot) {
  Tree t = FigureOneTree();
  EXPECT_EQ(t.Depth(t.root()), 0u);
  NodeId book = t.Children(t.root())[0];
  EXPECT_EQ(t.Depth(book), 1u);
  NodeId author = t.Children(book)[0];
  EXPECT_EQ(t.Depth(author), 2u);
}

TEST(TreeTest, LabelsInterned) {
  Tree t = FigureOneTree();
  NodeId b1 = t.Children(t.root())[0];
  NodeId b2 = t.Children(t.root())[1];
  EXPECT_EQ(t.Label(b1), t.Label(b2));
  EXPECT_EQ(t.labels().Find("book"), t.Label(b1));
  EXPECT_EQ(t.labels().Find("nosuchtag"), kInvalidLabel);
}

TEST(TreeStatsTest, CountsFigureOne) {
  Tree t = FigureOneTree();
  TreeStats stats = ComputeStats(t);
  // 1 dblp + 3 book + 6 author + 3 title + 3 year = 16 elements,
  // and one value under each of the 12 field nodes.
  EXPECT_EQ(stats.element_count, 16u);
  EXPECT_EQ(stats.value_count, 12u);
  EXPECT_EQ(stats.node_count, 28u);
  EXPECT_EQ(stats.distinct_labels, 5u);
  EXPECT_EQ(stats.max_depth, 3u);
  EXPECT_EQ(stats.total_value_bytes, 24u);  // 12 two-char values
  EXPECT_GT(stats.approx_xml_bytes, 0u);
}

TEST(LabelTableTest, InternIsIdempotent) {
  LabelTable table;
  LabelId a = table.Intern("author");
  LabelId b = table.Intern("book");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("author"), a);
  EXPECT_EQ(table.Name(a), "author");
  EXPECT_EQ(table.size(), 2u);
}

}  // namespace
}  // namespace twig::tree
