#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/canonical.h"
#include "core/estimator.h"
#include "cst/cst.h"
#include "data/generators.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "query/twig.h"
#include "serve/bounded_queue.h"
#include "serve/fair_queue.h"
#include "serve/health.h"
#include "serve/result_cache.h"
#include "serve/retry.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/tcp.h"
#include "serve/wire.h"
#include "util/failpoint.h"
#include "suffix/path_suffix_tree.h"
#include "test_trees.h"
#include "tree/tree.h"
#include "xml/xml.h"

namespace twig::serve {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    int item = i;
    EXPECT_TRUE(q.TryPush(item));
  }
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    std::optional<int> got = q.Pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, i);
  }
  q.Close(/*drain=*/true);
}

TEST(BoundedQueueTest, TryPushRejectsWhenFullAndLeavesItemIntact) {
  BoundedQueue<std::string> q(1);
  std::string first = "first";
  EXPECT_TRUE(q.TryPush(first));
  std::string second = "second";
  EXPECT_FALSE(q.TryPush(second));
  EXPECT_EQ(second, "second");  // a rejected item is not consumed
  q.Close(/*drain=*/false);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q(2);
  std::promise<int> popped;
  std::thread consumer([&] { popped.set_value(q.Pop().value()); });
  std::this_thread::sleep_for(milliseconds(10));
  int item = 7;
  EXPECT_TRUE(q.TryPush(item));
  EXPECT_EQ(popped.get_future().get(), 7);
  consumer.join();
  q.Close(/*drain=*/true);
}

TEST(BoundedQueueTest, CloseWithDrainDeliversQueuedItemsThenEndsStream) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 3; ++i) {
    int item = i;
    ASSERT_TRUE(q.TryPush(item));
  }
  EXPECT_TRUE(q.Close(/*drain=*/true).empty());
  EXPECT_TRUE(q.closed());
  int item = 9;
  EXPECT_FALSE(q.TryPush(item));  // closed queue admits nothing
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.Pop().value(), i);
  EXPECT_FALSE(q.Pop().has_value());  // end of stream
}

TEST(BoundedQueueTest, CloseWithoutDrainReturnsLeftoversAndWakesPoppers) {
  BoundedQueue<int> q(4);
  std::promise<bool> blocked_pop;
  std::thread consumer([&] { blocked_pop.set_value(q.Pop().has_value()); });
  std::this_thread::sleep_for(milliseconds(10));
  // Close(drop) must wake the blocked Pop with end-of-stream...
  std::vector<int> leftovers = q.Close(/*drain=*/false);
  EXPECT_FALSE(blocked_pop.get_future().get());
  consumer.join();
  EXPECT_TRUE(leftovers.empty());

  // ...and hand back anything still queued so the caller can reject it.
  BoundedQueue<int> q2(4);
  for (int i = 0; i < 3; ++i) {
    int item = i;
    ASSERT_TRUE(q2.TryPush(item));
  }
  leftovers = q2.Close(/*drain=*/false);
  EXPECT_EQ(leftovers, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(q2.Pop().has_value());
  EXPECT_TRUE(q2.Close(/*drain=*/false).empty());  // idempotent
}

TEST(BoundedQueueTest, ZeroCapacityIsBumpedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  q.Close(/*drain=*/true);
}

// ---------------------------------------------------------------------------
// FairQueue

TEST(FairQueueTest, SingleTenantDegeneratesToFifo) {
  FairQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    int item = i;
    ASSERT_EQ(q.TryPush("", item), FairQueue<int>::PushVerdict::kAdmitted);
  }
  for (int i = 0; i < 5; ++i) {
    std::optional<int> item = q.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  const std::vector<TenantStats> stats = q.tenant_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].tenant, kDefaultTenant);  // empty id resolves
  EXPECT_EQ(stats[0].admitted, 5u);
  EXPECT_EQ(stats[0].throttled, 0u);
  q.Close(/*drain=*/true);
}

TEST(FairQueueTest, DeficitRoundRobinDrainsByWeight) {
  TenantPolicy policy;
  policy.overrides["heavy"].weight = 3;
  policy.overrides["light"].weight = 1;
  FairQueue<std::string> q(64, policy);
  // Backlog both tenants, heavy first (ring order is activation order).
  for (int i = 0; i < 12; ++i) {
    std::string heavy = "heavy";
    std::string light = "light";
    ASSERT_EQ(q.TryPush("heavy", heavy),
              FairQueue<std::string>::PushVerdict::kAdmitted);
    ASSERT_EQ(q.TryPush("light", light),
              FairQueue<std::string>::PushVerdict::kAdmitted);
  }
  // DRR grants each tenant `weight` credits per ring pass, so every
  // window of 4 pops serves heavy 3 times and light once.
  std::map<std::string, int> served;
  for (int i = 0; i < 16; ++i) {
    std::optional<std::string> item = q.Pop();
    ASSERT_TRUE(item.has_value());
    ++served[*item];
  }
  EXPECT_EQ(served["heavy"], 12);
  EXPECT_EQ(served["light"], 4);
  q.Close(/*drain=*/false);
}

TEST(FairQueueTest, TokenBucketThrottlesWithARetryHint) {
  TenantPolicy policy;
  policy.overrides["metered"].rate = 5;  // tokens per second
  policy.overrides["metered"].burst = 2;
  FairQueue<int> q(16, policy);
  const auto t0 = FairQueue<int>::Clock::now();
  int item = 0;
  // A fresh tenant may spend its full burst...
  ASSERT_EQ(q.TryPush("metered", item, nullptr, t0),
            FairQueue<int>::PushVerdict::kAdmitted);
  ASSERT_EQ(q.TryPush("metered", item, nullptr, t0),
            FairQueue<int>::PushVerdict::kAdmitted);
  // ...then the bucket is empty and the hint points at the next token
  // (1/rate = 200 ms away).
  std::chrono::milliseconds retry{0};
  ASSERT_EQ(q.TryPush("metered", item, &retry, t0),
            FairQueue<int>::PushVerdict::kThrottled);
  EXPECT_GE(retry.count(), 1);
  EXPECT_LE(retry.count(), 200);
  // A second later the bucket has refilled.
  ASSERT_EQ(q.TryPush("metered", item, nullptr,
                      t0 + std::chrono::seconds(1)),
            FairQueue<int>::PushVerdict::kAdmitted);
  // The unmetered default tenant was never gated.
  ASSERT_EQ(q.TryPush("", item), FairQueue<int>::PushVerdict::kAdmitted);
  const std::vector<TenantStats> stats = q.tenant_stats();
  for (const TenantStats& tenant : stats) {
    if (tenant.tenant == "metered") {
      EXPECT_EQ(tenant.admitted, 3u);
      EXPECT_EQ(tenant.throttled, 1u);
    }
  }
  q.Close(/*drain=*/false);
}

TEST(FairQueueTest, OccupancyCapBoundsAHotTenantsQueueShare) {
  FairQueue<int> q(8);  // two active equal-weight tenants: 4 slots each
  int item = 0;
  ASSERT_EQ(q.TryPush("victim", item),
            FairQueue<int>::PushVerdict::kAdmitted);
  std::chrono::milliseconds retry{0};
  int hot_admitted = 0;
  FairQueue<int>::PushVerdict verdict;
  while ((verdict = q.TryPush("hot", item, &retry)) ==
         FairQueue<int>::PushVerdict::kAdmitted) {
    ++hot_admitted;
    ASSERT_LE(hot_admitted, 8);
  }
  // The flood saturates its weighted share, not the whole queue...
  EXPECT_EQ(hot_admitted, 4);
  EXPECT_EQ(verdict, FairQueue<int>::PushVerdict::kThrottled);
  EXPECT_EQ(retry, std::chrono::milliseconds(10));  // occupancy_retry
  // ...so the victim's pushes keep admitting.
  ASSERT_EQ(q.TryPush("victim", item),
            FairQueue<int>::PushVerdict::kAdmitted);
  q.Close(/*drain=*/false);
}

TEST(FairQueueTest, TotalCapacityStillRejectsAsFull) {
  FairQueue<int> q(4);
  int item = 0;
  // A lone tenant's occupancy share is the whole queue, so the fifth
  // push hits the tenant-independent capacity wall, not a throttle.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(q.TryPush("solo", item),
              FairQueue<int>::PushVerdict::kAdmitted);
  }
  EXPECT_EQ(q.TryPush("solo", item), FairQueue<int>::PushVerdict::kFull);
  q.Close(/*drain=*/false);
}

TEST(FairQueueTest, CloseDrainsOrReturnsLeftovers) {
  FairQueue<int> drained(8);
  for (int i = 0; i < 3; ++i) {
    int item = i;
    ASSERT_EQ(drained.TryPush("a", item),
              FairQueue<int>::PushVerdict::kAdmitted);
  }
  EXPECT_TRUE(drained.Close(/*drain=*/true).empty());
  int item = 9;
  EXPECT_EQ(drained.TryPush("a", item),
            FairQueue<int>::PushVerdict::kClosed);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(drained.Pop().has_value());
  EXPECT_FALSE(drained.Pop().has_value());

  FairQueue<int> dropped(8);
  for (int i = 0; i < 3; ++i) {
    int one = i;
    int other = i + 10;
    ASSERT_EQ(dropped.TryPush("a", one),
              FairQueue<int>::PushVerdict::kAdmitted);
    ASSERT_EQ(dropped.TryPush("b", other),
              FairQueue<int>::PushVerdict::kAdmitted);
  }
  const std::vector<int> leftovers = dropped.Close(/*drain=*/false);
  EXPECT_EQ(leftovers.size(), 6u);  // nothing silently lost
  EXPECT_FALSE(dropped.Pop().has_value());
  EXPECT_TRUE(dropped.Close(/*drain=*/false).empty());  // idempotent
}

// ---------------------------------------------------------------------------
// Shared CST fixtures

cst::Cst BuildFigureOneCst() {
  const tree::Tree data = testutil::FigureOneTree();
  const auto pst = suffix::PathSuffixTree::Build(data);
  cst::CstOptions copt;
  copt.space_budget_bytes = 1 << 20;  // keep everything
  return cst::Cst::Build(data, pst, copt);
}

/// A larger generated corpus, so concurrent tests exercise real work.
struct Corpus {
  tree::Tree data;
  size_t xml_bytes;
  suffix::PathSuffixTree pst;

  Corpus() {
    data::DblpOptions gen;
    gen.target_bytes = 96 * 1024;
    data = data::GenerateDblp(gen);
    xml_bytes = xml::XmlByteSize(data);
    pst = suffix::PathSuffixTree::Build(data);
  }

  cst::Cst BuildCst(double fraction) const {
    cst::CstOptions copt;
    copt.space_budget_bytes =
        static_cast<size_t>(fraction * static_cast<double>(xml_bytes));
    return cst::Cst::Build(data, pst, copt);
  }
};

const Corpus& SharedCorpus() {
  static const Corpus* corpus = new Corpus();
  return *corpus;
}

query::Twig MustParse(const char* text) {
  Result<query::Twig> twig = query::ParseTwig(text);
  EXPECT_TRUE(twig.ok()) << text;
  return std::move(twig).value();
}

// ---------------------------------------------------------------------------
// SnapshotCatalog

TEST(SnapshotCatalogTest, EmptyUntilFirstPublish) {
  SnapshotCatalog catalog;
  EXPECT_EQ(catalog.Current(), nullptr);
  EXPECT_EQ(catalog.version(), 0u);
  EXPECT_FALSE(catalog.rebuild_in_flight());
  EXPECT_TRUE(catalog.WaitForRebuild().ok());  // no rebuild ever ran
}

TEST(SnapshotCatalogTest, PublishAssignsMonotoneVersionsAndMetadata) {
  SnapshotCatalog catalog;
  EXPECT_EQ(catalog.Publish(BuildFigureOneCst(), "first", 0.25), 1u);
  EXPECT_EQ(catalog.Publish(BuildFigureOneCst(), "second"), 2u);
  std::shared_ptr<const CstSnapshot> current = catalog.Current();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, 2u);
  EXPECT_EQ(current->source, "second");
  EXPECT_EQ(catalog.version(), 2u);
}

TEST(SnapshotCatalogTest, ReadersStayPinnedAcrossPublish) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  std::shared_ptr<const CstSnapshot> pinned = catalog.Current();
  const query::Twig twig = MustParse("book(author, year)");
  const double before =
      core::TwigEstimator(pinned->summary.get())
          .Estimate(twig, core::Algorithm::kMsh);
  catalog.Publish(BuildFigureOneCst(), "v2");
  EXPECT_EQ(catalog.version(), 2u);
  // The pinned snapshot still answers, identically, after the swap.
  EXPECT_EQ(pinned->version, 1u);
  const double after =
      core::TwigEstimator(pinned->summary.get())
          .Estimate(twig, core::Algorithm::kMsh);
  EXPECT_EQ(before, after);
}

TEST(SnapshotCatalogTest, BackgroundRebuildPublishesOnSuccess) {
  SnapshotCatalog catalog;
  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(BuildFigureOneCst()); }, "background"));
  EXPECT_TRUE(catalog.WaitForRebuild().ok());
  std::shared_ptr<const CstSnapshot> current = catalog.Current();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, 1u);
  EXPECT_EQ(current->source, "background");
  EXPECT_GE(current->build_seconds, 0.0);
}

TEST(SnapshotCatalogTest, FailedRebuildLeavesCatalogUntouched) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "good");
  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(Status::Corruption("bad blob")); },
      "doomed"));
  const Status status = catalog.WaitForRebuild();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(catalog.version(), 1u);
  EXPECT_EQ(catalog.Current()->source, "good");
}

TEST(SnapshotCatalogTest, SecondRebuildRefusedWhileInFlight) {
  SnapshotCatalog catalog;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ASSERT_TRUE(catalog.BeginRebuild(
      [gate] {
        gate.wait();
        return Result<cst::Cst>(BuildFigureOneCst());
      },
      "slow"));
  EXPECT_TRUE(catalog.rebuild_in_flight());
  EXPECT_FALSE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(BuildFigureOneCst()); }, "refused"));
  release.set_value();
  EXPECT_TRUE(catalog.WaitForRebuild().ok());
  EXPECT_EQ(catalog.Current()->source, "slow");
  // With the first rebuild landed, a new one is accepted again.
  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(BuildFigureOneCst()); }, "second"));
  EXPECT_TRUE(catalog.WaitForRebuild().ok());
  EXPECT_EQ(catalog.version(), 2u);
}

TEST(SnapshotCatalogTest, RebuildListenerSeesEachOutcomeBeforeWaitReturns) {
  SnapshotCatalog catalog;
  std::mutex mutex;
  std::vector<StatusCode> seen;
  catalog.SetRebuildListener([&](const Status& status) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.push_back(status.code());
  });
  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(BuildFigureOneCst()); }, "good"));
  EXPECT_TRUE(catalog.WaitForRebuild().ok());
  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(Status::Corruption("bad blob")); },
      "doomed"));
  EXPECT_FALSE(catalog.WaitForRebuild().ok());
  {
    // WaitForRebuild returning implies the listener already ran.
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], StatusCode::kOk);
    EXPECT_EQ(seen[1], StatusCode::kCorruption);
  }
  // Clearing the listener drains: later rebuilds must not touch it.
  catalog.SetRebuildListener(nullptr);
  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(BuildFigureOneCst()); }, "silent"));
  EXPECT_TRUE(catalog.WaitForRebuild().ok());
  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(SnapshotCatalogTest, RebuildFailpointFailsTheRebuildKeepsLastGood) {
  util::FailpointRegistry::Get().Reset();
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "good");
  ASSERT_TRUE(
      util::FailpointRegistry::Get().Configure("snapshot/rebuild", "error")
          .ok());
  // The builder itself would succeed; the injected fault wins, and the
  // last good snapshot keeps serving.
  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(BuildFigureOneCst()); }, "chaos"));
  const Status status = catalog.WaitForRebuild();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("injected fault"), std::string::npos);
  EXPECT_EQ(catalog.version(), 1u);
  EXPECT_EQ(catalog.Current()->source, "good");
  EXPECT_GE(util::FailpointRegistry::Get().Info("snapshot/rebuild").triggers,
            1u);
  // Disarmed, the same rebuild lands.
  util::FailpointRegistry::Get().Reset();
  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(BuildFigureOneCst()); }, "recovered"));
  EXPECT_TRUE(catalog.WaitForRebuild().ok());
  EXPECT_EQ(catalog.version(), 2u);
}

// The concurrent-swap guarantee: readers pinned on version N keep
// producing bit-identical estimates (and never touch freed memory —
// run under ASan via the verify-asan workflow) while version N+1
// publishes and the catalog drops its reference to N.
TEST(SnapshotCatalogTest, ConcurrentSwapKeepsPinnedReadersBitIdentical) {
  const Corpus& corpus = SharedCorpus();
  SnapshotCatalog catalog;
  catalog.Publish(corpus.BuildCst(0.02), "v1");

  const query::Twig twig = MustParse("article(author, year)");
  std::shared_ptr<const CstSnapshot> reference = catalog.Current();
  const double expected =
      core::TwigEstimator(reference->summary.get())
          .Estimate(twig, core::Algorithm::kMsh);

  constexpr size_t kReaders = 4;
  constexpr int kRoundsPerReader = 50;
  std::atomic<bool> mismatch{false};
  std::atomic<size_t> pinned_old{0};
  std::atomic<size_t> ready{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      // Pin v1 before the publish is allowed to proceed, so the
      // "reader holds the old version across the swap" window is
      // guaranteed, not raced for.
      std::shared_ptr<const CstSnapshot> held = catalog.Current();
      ready.fetch_add(1);
      for (int round = 0; round < kRoundsPerReader; ++round) {
        std::shared_ptr<const CstSnapshot> pinned =
            round == 0 ? held : catalog.Current();
        if (pinned->version == 1) {
          pinned_old.fetch_add(1);
          const double got = core::TwigEstimator(pinned->summary.get())
                                 .Estimate(twig, core::Algorithm::kMsh);
          // Bit-identical: the snapshot is immutable, so a pinned
          // reader must reproduce the pre-swap estimate exactly.
          if (got != expected) mismatch.store(true);
        }
        if (round == 0) held.reset();
      }
    });
  }
  // Publish v2 (a different space budget: different CST contents) only
  // once every reader holds a v1 pin, then drop our own v1 pin so the
  // readers' pins are the only thing keeping v1 alive.
  while (ready.load() < kReaders) std::this_thread::yield();
  catalog.Publish(corpus.BuildCst(0.05), "v2");
  reference.reset();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_GT(pinned_old.load(), 0u);  // the race window was real
  EXPECT_EQ(catalog.version(), 2u);
}

// ---------------------------------------------------------------------------
// DatasetCatalog

TEST(DatasetCatalogTest, KeyedLineagesWithDefaultResolution) {
  DatasetCatalog datasets;
  SnapshotCatalog* created = datasets.Create("dblp");
  ASSERT_NE(created, nullptr);
  EXPECT_EQ(datasets.Create("dblp"), created);  // idempotent

  SnapshotCatalog external;
  EXPECT_TRUE(datasets.Register("external", &external));
  EXPECT_FALSE(datasets.Register("external", &external));  // duplicate

  EXPECT_EQ(datasets.Find("dblp"), created);
  EXPECT_EQ(datasets.Find("external"), &external);
  EXPECT_EQ(datasets.Find("missing"), nullptr);
  EXPECT_EQ(datasets.size(), 2u);

  // The empty id resolves to "default".
  EXPECT_EQ(datasets.Find(""), nullptr);
  EXPECT_EQ(datasets.Default(), nullptr);
  SnapshotCatalog* fallback = datasets.Create(kDefaultDataset);
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(datasets.Find(""), fallback);
  EXPECT_EQ(datasets.Default(), fallback);

  const std::vector<std::string> ids = datasets.DatasetIds();
  EXPECT_EQ(ids, (std::vector<std::string>{"dblp", "default", "external"}));

  // Lineages are independent: publishing one never moves another.
  created->Publish(BuildFigureOneCst(), "v1");
  EXPECT_EQ(created->version(), 1u);
  EXPECT_EQ(external.version(), 0u);
  EXPECT_EQ(fallback->version(), 0u);
}

// ---------------------------------------------------------------------------
// ResultCache

ResultCache::Key CacheKey(uint64_t version, const char* text,
                          core::Algorithm algorithm = core::Algorithm::kMsh) {
  return ResultCache::MakeKey(version, algorithm,
                              core::CountSemantics::kOccurrence,
                              MustParse(text));
}

CachedEstimate CacheValue(double estimate, uint64_t version) {
  return CachedEstimate{estimate, version, std::chrono::nanoseconds(1000)};
}

TEST(ResultCacheTest, MissThenHitWithExactAccounting) {
  ResultCache cache(ResultCacheOptions{2, 1});
  CachedEstimate out;
  EXPECT_FALSE(cache.Lookup(CacheKey(1, "a.b"), &out));
  cache.Insert(CacheKey(1, "a.b"), CacheValue(41.5, 1));
  ASSERT_TRUE(cache.Lookup(CacheKey(1, "a.b"), &out));
  EXPECT_EQ(out.estimate, 41.5);
  EXPECT_EQ(out.snapshot_version, 1u);
  EXPECT_EQ(out.exec_time, std::chrono::nanoseconds(1000));
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, EvictsTheLeastRecentlyUsedEntry) {
  ResultCache cache(ResultCacheOptions{2, 1});
  cache.Insert(CacheKey(1, "a.b"), CacheValue(1, 1));
  cache.Insert(CacheKey(1, "a.c"), CacheValue(2, 1));
  CachedEstimate out;
  // Touch a.b so a.c becomes the LRU victim.
  ASSERT_TRUE(cache.Lookup(CacheKey(1, "a.b"), &out));
  cache.Insert(CacheKey(1, "a.d"), CacheValue(3, 1));
  EXPECT_FALSE(cache.Lookup(CacheKey(1, "a.c"), &out));
  EXPECT_TRUE(cache.Lookup(CacheKey(1, "a.b"), &out));
  EXPECT_TRUE(cache.Lookup(CacheKey(1, "a.d"), &out));
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCacheTest, InsertRefreshesAnExistingEntryWithoutEvicting) {
  ResultCache cache(ResultCacheOptions{2, 1});
  cache.Insert(CacheKey(1, "a.b"), CacheValue(1, 1));
  cache.Insert(CacheKey(1, "a.c"), CacheValue(2, 1));
  // Re-inserting a.b updates in place (and makes it MRU): no eviction.
  cache.Insert(CacheKey(1, "a.b"), CacheValue(10, 1));
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.Insert(CacheKey(1, "a.d"), CacheValue(3, 1));  // evicts a.c
  CachedEstimate out;
  EXPECT_FALSE(cache.Lookup(CacheKey(1, "a.c"), &out));
  ASSERT_TRUE(cache.Lookup(CacheKey(1, "a.b"), &out));
  EXPECT_EQ(out.estimate, 10);
}

TEST(ResultCacheTest, VersionsAreIsolated) {
  ResultCache cache(ResultCacheOptions{8, 1});
  cache.Insert(CacheKey(1, "a.b"), CacheValue(10, 1));
  cache.Insert(CacheKey(2, "a.b"), CacheValue(20, 2));
  CachedEstimate out;
  ASSERT_TRUE(cache.Lookup(CacheKey(1, "a.b"), &out));
  EXPECT_EQ(out.estimate, 10);
  ASSERT_TRUE(cache.Lookup(CacheKey(2, "a.b"), &out));
  EXPECT_EQ(out.estimate, 20);
  // A version nobody cached under never hits, same query or not.
  EXPECT_FALSE(cache.Lookup(CacheKey(3, "a.b"), &out));
}

TEST(ResultCacheTest, DatasetsPartitionTheKeySpace) {
  // Two datasets run independent version sequences, so "version 1 of
  // query a.b" is ambiguous without the dataset in the key — the same
  // canonical twig must be able to hold a different answer per dataset.
  ResultCache cache(ResultCacheOptions{8, 1});
  const query::Twig twig = MustParse("a.b");
  const ResultCache::Key on_x =
      ResultCache::MakeKey(1, core::Algorithm::kMsh,
                           core::CountSemantics::kOccurrence, twig, "x");
  const ResultCache::Key on_y =
      ResultCache::MakeKey(1, core::Algorithm::kMsh,
                           core::CountSemantics::kOccurrence, twig, "y");
  cache.Insert(on_x, CacheValue(10, 1));
  cache.Insert(on_y, CacheValue(20, 1));
  CachedEstimate out;
  ASSERT_TRUE(cache.Lookup(on_x, &out));
  EXPECT_EQ(out.estimate, 10);
  ASSERT_TRUE(cache.Lookup(on_y, &out));
  EXPECT_EQ(out.estimate, 20);
  // The dataset-less spelling of the same (version, twig) is a third,
  // distinct entry — legacy single-dataset keys never collide with
  // keyed ones.
  EXPECT_FALSE(cache.Lookup(CacheKey(1, "a.b"), &out));
}

TEST(ResultCacheTest, AlgorithmAndSpellingFoldIntoTheKey) {
  ResultCache cache(ResultCacheOptions{8, 1});
  cache.Insert(CacheKey(1, "book(author, year)"), CacheValue(7, 1));
  CachedEstimate out;
  // A different spelling of the same twig is the same key...
  EXPECT_TRUE(
      cache.Lookup(CacheKey(1, "  book ( author , year ) "), &out));
  EXPECT_EQ(out.estimate, 7);
  // ...but a different algorithm is a different question.
  EXPECT_FALSE(cache.Lookup(
      CacheKey(1, "book(author, year)", core::Algorithm::kMo), &out));
}

TEST(ResultCacheTest, FingerprintCollisionDegradesToAMiss) {
  ResultCache cache(ResultCacheOptions{8, 1});
  // Two hand-built keys that collide on (version, fingerprint) but
  // are different queries. The exact text compare must refuse to
  // serve one query's value for the other.
  ResultCache::Key first;
  first.snapshot_version = 1;
  first.fingerprint = 0x1234;
  first.canonical_text = "a.b";
  ResultCache::Key second = first;
  second.canonical_text = "a.c";
  cache.Insert(first, CacheValue(10, 1));
  CachedEstimate out;
  EXPECT_FALSE(cache.Lookup(second, &out));  // collision != hit
  ASSERT_TRUE(cache.Lookup(first, &out));
  EXPECT_EQ(out.estimate, 10);
}

TEST(ResultCacheTest, ShardAndCapacityRounding) {
  // Shards round up to a power of two.
  EXPECT_EQ(ResultCache(ResultCacheOptions{4096, 3}).num_shards(), 4u);
  EXPECT_EQ(ResultCache(ResultCacheOptions{4096, 8}).num_shards(), 8u);
  // Tiny caches shed shards rather than create empty ones.
  const ResultCache tiny(ResultCacheOptions{2, 8});
  EXPECT_LE(tiny.num_shards(), 2u);
  EXPECT_GE(tiny.capacity(), 2u);
  // Zero entries still yields a working one-entry cache.
  ResultCache minimal(ResultCacheOptions{0, 0});
  EXPECT_GE(minimal.capacity(), 1u);
  minimal.Insert(CacheKey(1, "a.b"), CacheValue(1, 1));
  CachedEstimate out;
  EXPECT_TRUE(minimal.Lookup(CacheKey(1, "a.b"), &out));
}

// Run under TSan via the verify-tsan workflow: concurrent lookups,
// inserts, and evictions across versions must stay data-race free and
// never pay out a value that belongs to a different key.
TEST(ResultCacheTest, ConcurrentHammerStaysConsistent) {
  ResultCache cache(ResultCacheOptions{64, 4});
  // A small key space over two "versions" so threads constantly
  // collide on shards and force evictions (64 entries, 100 keys).
  std::vector<ResultCache::Key> keys;
  for (uint64_t version = 1; version <= 2; ++version) {
    for (int q = 0; q < 50; ++q) {
      ResultCache::Key key;
      key.snapshot_version = version;
      key.canonical_text = "q" + std::to_string(q);
      key.fingerprint = core::CanonicalQueryFingerprint(
          key.canonical_text, key.algorithm, key.semantics);
      keys.push_back(std::move(key));
    }
  }
  const auto value_for = [](const ResultCache::Key& key) {
    return static_cast<double>(key.fingerprint ^ key.snapshot_version);
  };

  constexpr size_t kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<size_t> lookups{0};
  std::atomic<bool> corrupted{false};
  std::vector<std::thread> threads;
  for (size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      std::mt19937 rng(static_cast<unsigned>(tid) * 7919 + 3);
      std::uniform_int_distribution<size_t> pick(0, keys.size() - 1);
      std::uniform_int_distribution<int> coin(0, 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const ResultCache::Key& key = keys[pick(rng)];
        if (coin(rng) == 0) {
          cache.Insert(key, CacheValue(value_for(key),
                                       key.snapshot_version));
        } else {
          lookups.fetch_add(1, std::memory_order_relaxed);
          CachedEstimate out;
          if (cache.Lookup(key, &out) &&
              (out.estimate != value_for(key) ||
               out.snapshot_version != key.snapshot_version)) {
            corrupted.store(true);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(corrupted.load());
  const ResultCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, cache.capacity());
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);  // 100 keys through 64 entries
}

// ---------------------------------------------------------------------------
// HealthMonitor

TEST(HealthMonitorTest, StartsOkAndSparseOutcomesDoNotTrip) {
  HealthMonitor health;
  EXPECT_EQ(health.Report().state, HealthState::kOk);
  // Fewer than min_window outcomes: the rate is not judged yet, even
  // if every one of them missed its deadline.
  for (int i = 0; i < 8; ++i) health.ObserveOutcome(/*deadline_miss=*/true);
  EXPECT_EQ(health.Assess(/*queue_depth=*/0, /*queue_capacity=*/100),
            HealthState::kOk);
}

TEST(HealthMonitorTest, QueuePressureEntersBrownoutAndDrainRecovers) {
  HealthOptions options;
  options.quiet_period = milliseconds(1);
  HealthMonitor health(options);
  EXPECT_EQ(health.Assess(95, 100), HealthState::kBrownout);
  const HealthReport report = health.Report();
  EXPECT_EQ(report.state, HealthState::kBrownout);
  EXPECT_NE(report.reason.find("queue"), std::string::npos);
  EXPECT_GT(report.retry_after.count(), 0);
  // Still deep: no exit, even though no deadline ever missed.
  EXPECT_EQ(health.Assess(80, 100), HealthState::kBrownout);
  // Shallow queue + a quiet period (no outcomes at all since entry).
  std::this_thread::sleep_for(milliseconds(5));
  EXPECT_EQ(health.Assess(10, 100), HealthState::kOk);
  EXPECT_EQ(health.Report().state, HealthState::kOk);
}

TEST(HealthMonitorTest, DeadlineMissRateEntersBrownoutAndCleanTrafficExits) {
  HealthMonitor health;  // min_window 16, enter at 50%, exit at 10%
  for (int i = 0; i < 16; ++i) health.ObserveOutcome(/*deadline_miss=*/true);
  EXPECT_EQ(health.Assess(0, 100), HealthState::kBrownout);
  EXPECT_NE(health.Report().reason.find("deadline-miss"), std::string::npos);
  // Entry reset the window: recovery judges post-entry traffic only.
  for (int i = 0; i < 16; ++i) health.ObserveOutcome(/*deadline_miss=*/false);
  EXPECT_EQ(health.Assess(0, 100), HealthState::kOk);
}

TEST(HealthMonitorTest, DegradedIsStickyAndOutrankedByBrownout) {
  HealthOptions options;
  options.quiet_period = milliseconds(1);
  HealthMonitor health(options);
  health.SetDegraded("rebuild failed: disk ate it");
  EXPECT_EQ(health.Assess(0, 100), HealthState::kDegraded);
  EXPECT_EQ(health.Report().reason, "rebuild failed: disk ate it");
  // Brown-out outranks the sticky degraded state while it lasts...
  EXPECT_EQ(health.Assess(100, 100), HealthState::kBrownout);
  std::this_thread::sleep_for(milliseconds(5));
  // ...and degraded resurfaces after the brown-out clears.
  EXPECT_EQ(health.Assess(0, 100), HealthState::kDegraded);
  health.ClearDegraded();
  EXPECT_EQ(health.Assess(0, 100), HealthState::kOk);
}

// ---------------------------------------------------------------------------
// RetryPolicy

TEST(RetryPolicyTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Unavailable("overloaded")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::InvalidArgument("bad")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Corruption("torn")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::DeadlineExceeded("late")));
  RetryPolicy policy;
  EXPECT_FALSE(
      policy.NextBackoff(Status::InvalidArgument("bad"), 1).has_value());
}

TEST(RetryPolicyTest, BackoffStaysWithinBaseAndCap) {
  RetryOptions options;
  options.max_attempts = 64;
  options.base_backoff = milliseconds(2);
  options.max_backoff = milliseconds(50);
  options.budget_cap = 1000;
  RetryPolicy policy(options);
  for (int attempt = 1; attempt < 64; ++attempt) {
    const std::optional<milliseconds> backoff =
        policy.NextBackoff(Status::Unavailable("x"), attempt);
    ASSERT_TRUE(backoff.has_value()) << attempt;
    EXPECT_GE(backoff->count(), 2) << attempt;
    EXPECT_LE(backoff->count(), 50) << attempt;
  }
  // Attempt == max_attempts: the budget for this request is spent.
  EXPECT_FALSE(
      policy.NextBackoff(Status::Unavailable("x"), 64).has_value());
}

TEST(RetryPolicyTest, DeadlineVetoesARetryThatWouldLandLate) {
  RetryOptions options;
  options.base_backoff = milliseconds(10);
  RetryPolicy policy(options);
  // A deadline already behind us: no retry, whatever the budget says.
  EXPECT_FALSE(policy
                   .NextBackoff(Status::Unavailable("x"), 1,
                                Clock::now() - milliseconds(1))
                   .has_value());
  // A generous deadline grants as usual.
  EXPECT_TRUE(policy
                  .NextBackoff(Status::Unavailable("x"), 1,
                               Clock::now() + std::chrono::seconds(10))
                  .has_value());
}

TEST(RetryPolicyTest, ServerHintFloorsTheDrawnBackoff) {
  RetryOptions options;
  options.base_backoff = milliseconds(1);
  options.max_backoff = milliseconds(250);
  RetryPolicy policy(options);
  const std::optional<milliseconds> backoff = policy.NextBackoff(
      Status::Unavailable("browning out"), 1,
      Clock::time_point::max(), /*server_hint=*/milliseconds(40));
  ASSERT_TRUE(backoff.has_value());
  EXPECT_GE(backoff->count(), 40);
}

TEST(RetryPolicyTest, TokenBudgetBoundsRetryAmplification) {
  RetryOptions options;
  options.max_attempts = 100;
  options.budget_cap = 2.0;
  options.budget_ratio = 1.0;
  RetryPolicy policy(options);
  // Two tokens: two retries, then sustained failure is cut off.
  EXPECT_TRUE(policy.NextBackoff(Status::Unavailable("x"), 1).has_value());
  EXPECT_TRUE(policy.NextBackoff(Status::Unavailable("x"), 2).has_value());
  EXPECT_FALSE(policy.NextBackoff(Status::Unavailable("x"), 3).has_value());
  // A success earns budget back; first attempts were never blocked.
  policy.RecordSuccess();
  EXPECT_TRUE(policy.NextBackoff(Status::Unavailable("x"), 1).has_value());
}

// ---------------------------------------------------------------------------
// EstimateService

EstimateRequest MakeRequest(const char* text,
                            core::Algorithm algorithm = core::Algorithm::kMsh) {
  EstimateRequest request;
  request.twig = MustParse(text);
  request.algorithm = algorithm;
  return request;
}

TEST(EstimateServiceTest, ServedEstimatesMatchDirectEstimatorCalls) {
  const Corpus& corpus = SharedCorpus();
  SnapshotCatalog catalog;
  catalog.Publish(corpus.BuildCst(0.02), "v1");
  ServiceOptions options;
  options.num_workers = 2;
  EstimateService service(&catalog, options);

  const std::shared_ptr<const CstSnapshot> snapshot = catalog.Current();
  const core::TwigEstimator direct(snapshot->summary.get());
  for (const char* text : {"article(author, year)", "article.title",
                           "inproceedings(author, pages)", "book.publisher"}) {
    for (core::Algorithm algorithm :
         {core::Algorithm::kMsh, core::Algorithm::kMo,
          core::Algorithm::kGreedy}) {
      EstimateResponse response =
          service.SubmitAndWait(MakeRequest(text, algorithm));
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_EQ(response.estimate,
                direct.Estimate(MustParse(text), algorithm))
          << text << " via " << core::AlgorithmName(algorithm);
      EXPECT_EQ(response.snapshot_version, 1u);
      EXPECT_GE(response.queue_wait.count(), 0);
      EXPECT_GT(response.exec_time.count(), 0);
    }
  }
}

TEST(EstimateServiceTest, NoSnapshotYieldsUnavailable) {
  SnapshotCatalog catalog;
  EstimateService service(&catalog);
  EstimateResponse response =
      service.SubmitAndWait(MakeRequest("article.author"));
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
}

/// Holds the first dequeued request until released, so tests can fill
/// the queue deterministically behind it.
class WorkerGate {
 public:
  /// Starts armed by default; pass false to let requests flow until
  /// Arm() (e.g. to warm a cache first).
  explicit WorkerGate(bool armed = true) : armed_(armed) {}

  void Arm() {
    std::unique_lock<std::mutex> lock(mutex_);
    armed_ = true;
    held_ = false;
  }

  ServiceOptions Options(size_t queue_capacity) {
    ServiceOptions options;
    options.num_workers = 1;
    options.queue_capacity = queue_capacity;
    options.dequeue_hook = [this] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (armed_) {
        held_ = true;
        held_cv_.notify_all();
        release_cv_.wait(lock, [&] { return !armed_; });
      }
    };
    return options;
  }

  /// Blocks until a worker is parked inside the hook.
  void AwaitHeld() {
    std::unique_lock<std::mutex> lock(mutex_);
    held_cv_.wait(lock, [&] { return held_; });
  }

  void Release() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      armed_ = false;
    }
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable held_cv_;
  std::condition_variable release_cv_;
  bool armed_;
  bool held_ = false;
};

TEST(EstimateServiceTest, FullQueueRejectsWithStructuredOverload) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  WorkerGate gate;
  ServiceOptions options = gate.Options(/*queue_capacity=*/1);
  // Disable queue-depth brown-out so this exercises the TryPush path
  // itself (with brown-out on, a 1/1 queue is shed before the push —
  // see BrownoutShedsUncachedWorkButServesCacheHits).
  options.health.brownout_queue_fraction = 2.0;
  EstimateService service(&catalog, options);

  // First request parks the only worker; second fills the queue; the
  // third must be rejected immediately with a structured overload.
  std::future<EstimateResponse> in_flight =
      service.Submit(MakeRequest("book.author"));
  gate.AwaitHeld();
  std::future<EstimateResponse> queued =
      service.Submit(MakeRequest("book.author"));
  EstimateResponse overloaded =
      service.SubmitAndWait(MakeRequest("book.author"));
  EXPECT_EQ(overloaded.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(overloaded.status.message().find("overloaded"),
            std::string::npos);

  gate.Release();
  EXPECT_TRUE(in_flight.get().status.ok());
  EXPECT_TRUE(queued.get().status.ok());
}

TEST(EstimateServiceTest, ExpiredDeadlineIsAMissNotAnEstimate) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  EstimateService service(&catalog);
  EstimateRequest request = MakeRequest("book.author");
  request.deadline = Clock::now() - milliseconds(1);
  EstimateResponse response = service.SubmitAndWait(std::move(request));
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);

  // The default deadline applies to requests that carry none.
  ServiceOptions options;
  options.num_workers = 1;
  options.default_deadline = milliseconds(1);
  options.dequeue_hook = [] {
    std::this_thread::sleep_for(milliseconds(50));
  };
  EstimateService slow(&catalog, options);
  response = slow.SubmitAndWait(MakeRequest("book.author"));
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(EstimateServiceTest, ShutdownWithDrainAnswersEverythingAdmitted) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  WorkerGate gate;
  EstimateService service(&catalog, gate.Options(/*queue_capacity=*/8));

  std::future<EstimateResponse> first =
      service.Submit(MakeRequest("book.author"));
  gate.AwaitHeld();
  std::vector<std::future<EstimateResponse>> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(service.Submit(MakeRequest("book.author")));
  }
  std::thread closer([&] { service.Shutdown(/*drain=*/true); });
  gate.Release();
  closer.join();
  EXPECT_TRUE(first.get().status.ok());
  for (auto& f : queued) EXPECT_TRUE(f.get().status.ok());
  // After shutdown, new submissions reject without blocking.
  EstimateResponse late = service.SubmitAndWait(MakeRequest("book.author"));
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
}

TEST(EstimateServiceTest, ShutdownWithoutDrainRejectsTheQueuedRemainder) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  WorkerGate gate;
  EstimateService service(&catalog, gate.Options(/*queue_capacity=*/8));

  std::future<EstimateResponse> first =
      service.Submit(MakeRequest("book.author"));
  gate.AwaitHeld();
  std::vector<std::future<EstimateResponse>> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(service.Submit(MakeRequest("book.author")));
  }
  std::thread closer([&] { service.Shutdown(/*drain=*/false); });
  // Shutdown(drop) empties the queue into rejections while the worker
  // is still parked; release the gate only once that has happened, so
  // no queued request can sneak through and get served.
  while (service.queue_depth() != 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  gate.Release();
  closer.join();
  // The in-flight request completes; the queued remainder is rejected —
  // but every admitted future resolves either way.
  EXPECT_TRUE(first.get().status.ok());
  for (auto& f : queued) {
    EstimateResponse response = f.get();
    EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  }
}

TEST(EstimateServiceTest, StagesFeedTheMetricsRegistry) {
  auto& registry = obs::MetricsRegistry::Get();
  const obs::MetricsSnapshot before = registry.Snapshot();

  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  EstimateService service(&catalog);
  ASSERT_TRUE(
      service.SubmitAndWait(MakeRequest("book(author, year)")).status.ok());
  EstimateRequest expired = MakeRequest("book.author");
  expired.deadline = Clock::now() - milliseconds(1);
  service.SubmitAndWait(std::move(expired));
  service.Shutdown(/*drain=*/true);
  service.SubmitAndWait(MakeRequest("book.author"));  // rejected

  const obs::MetricsSnapshot delta = registry.Snapshot().Delta(before);
  const auto count = [&](obs::Counter c) {
    return delta.counters[static_cast<size_t>(c)];
  };
  EXPECT_GE(count(obs::Counter::kSnapshotPublishes), 1u);
  EXPECT_GE(count(obs::Counter::kServeEnqueued), 2u);
  EXPECT_GE(count(obs::Counter::kServeServed), 1u);
  EXPECT_GE(count(obs::Counter::kServeDeadlineMisses), 1u);
  EXPECT_GE(count(obs::Counter::kServeRejected), 1u);
  EXPECT_GE(delta.latency[obs::kServeWaitSeries].count, 2u);
}

TEST(EstimateServiceTest, CacheIsOffUnlessConfigured) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  EstimateService service(&catalog);
  EXPECT_EQ(service.result_cache(), nullptr);
  EstimateResponse response = service.SubmitAndWait(MakeRequest("book.author"));
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.cached);
  response = service.SubmitAndWait(MakeRequest("book.author"));
  EXPECT_FALSE(response.cached);  // same query, still computed
}

TEST(EstimateServiceTest, CacheHitIsBitIdenticalAndBypassesAFullQueue) {
  const Corpus& corpus = SharedCorpus();
  SnapshotCatalog catalog;
  catalog.Publish(corpus.BuildCst(0.02), "v1");
  WorkerGate gate(/*armed=*/false);
  ServiceOptions options = gate.Options(/*queue_capacity=*/1);
  options.cache_entries = 64;
  EstimateService service(&catalog, options);
  ASSERT_NE(service.result_cache(), nullptr);

  // Warm the cache while the gate lets requests flow.
  const double expected =
      core::TwigEstimator(catalog.Current()->summary.get())
          .Estimate(MustParse("article(author, year)"), core::Algorithm::kMsh);
  EstimateResponse first =
      service.SubmitAndWait(MakeRequest("article(author, year)"));
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cached);
  EXPECT_EQ(first.estimate, expected);

  // Park the only worker and fill the one-slot queue with misses.
  gate.Arm();
  std::future<EstimateResponse> parked =
      service.Submit(MakeRequest("article.title"));
  gate.AwaitHeld();
  std::future<EstimateResponse> queued =
      service.Submit(MakeRequest("inproceedings(author, pages)"));
  EstimateResponse overloaded =
      service.SubmitAndWait(MakeRequest("book.publisher"));
  EXPECT_EQ(overloaded.status.code(), StatusCode::kUnavailable);

  // The cached query sails past the saturated queue: answered
  // immediately, bit-identical, flagged, echoing the original compute
  // cost.
  EstimateResponse hit =
      service.SubmitAndWait(MakeRequest("article(author, year)"));
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.estimate, expected);
  EXPECT_EQ(hit.snapshot_version, 1u);
  EXPECT_EQ(hit.exec_time, first.exec_time);

  gate.Release();
  EXPECT_TRUE(parked.get().status.ok());
  EXPECT_TRUE(queued.get().status.ok());
  EXPECT_GE(service.result_cache()->stats().hits, 1u);
}

TEST(EstimateServiceTest, CacheEntriesAreVersionIsolatedAcrossAHotSwap) {
  const Corpus& corpus = SharedCorpus();
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Get().Snapshot();
  SnapshotCatalog catalog;
  catalog.Publish(corpus.BuildCst(0.02), "v1");
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_entries = 64;
  EstimateService service(&catalog, options);

  EstimateRequest request = MakeRequest("article(author, year)");
  EstimateResponse computed_v1 = service.SubmitAndWait(request);
  ASSERT_TRUE(computed_v1.status.ok());
  EXPECT_FALSE(computed_v1.cached);
  EstimateResponse hit_v1 = service.SubmitAndWait(request);
  ASSERT_TRUE(hit_v1.status.ok());
  EXPECT_TRUE(hit_v1.cached);
  EXPECT_EQ(hit_v1.estimate, computed_v1.estimate);
  EXPECT_EQ(hit_v1.snapshot_version, 1u);

  // Hot swap to a different CST. The v1 entry must not answer for v2.
  catalog.Publish(corpus.BuildCst(0.05), "v2");
  const double expected_v2 =
      core::TwigEstimator(catalog.Current()->summary.get())
          .Estimate(MustParse("article(author, year)"), core::Algorithm::kMsh);
  EstimateResponse computed_v2 = service.SubmitAndWait(request);
  ASSERT_TRUE(computed_v2.status.ok());
  EXPECT_FALSE(computed_v2.cached);  // fresh version, fresh compute
  EXPECT_EQ(computed_v2.snapshot_version, 2u);
  EXPECT_EQ(computed_v2.estimate, expected_v2);
  EstimateResponse hit_v2 = service.SubmitAndWait(request);
  ASSERT_TRUE(hit_v2.status.ok());
  EXPECT_TRUE(hit_v2.cached);
  EXPECT_EQ(hit_v2.snapshot_version, 2u);
  EXPECT_EQ(hit_v2.estimate, expected_v2);

  service.Shutdown(/*drain=*/true);
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Get().Snapshot().Delta(before);
  const auto count = [&](obs::Counter c) {
    return delta.counters[static_cast<size_t>(c)];
  };
  EXPECT_GE(count(obs::Counter::kServeCacheHits), 2u);
  EXPECT_GE(count(obs::Counter::kServeCacheMisses), 2u);
  EXPECT_GE(delta.latency[obs::kServeCacheHitSeries].count, 2u);
}

/// A second, smaller generated corpus so multi-dataset tests have two
/// datasets whose answers genuinely differ for the same query.
const Corpus& AltCorpus() {
  static const Corpus* corpus = [] {
    auto* alt = new Corpus();
    data::DblpOptions gen;
    gen.target_bytes = 24 * 1024;
    gen.seed = 7;
    alt->data = data::GenerateDblp(gen);
    alt->xml_bytes = xml::XmlByteSize(alt->data);
    alt->pst = suffix::PathSuffixTree::Build(alt->data);
    return alt;
  }();
  return *corpus;
}

TEST(EstimateServiceTest, CacheNeverConflatesDatasets) {
  // The conflation bug this pins down: two datasets serve the same
  // canonical twig at the same snapshot version; without the dataset
  // in the cache key, whichever dataset answers first poisons the
  // other with its result.
  DatasetCatalog datasets;
  SnapshotCatalog* big = datasets.Create("big");
  SnapshotCatalog* alt = datasets.Create("alt");
  big->Publish(SharedCorpus().BuildCst(0.02), "big-v1");
  alt->Publish(AltCorpus().BuildCst(0.02), "alt-v1");
  ASSERT_EQ(big->version(), alt->version());  // identical but for dataset

  ServiceOptions options;
  options.num_workers = 1;
  options.cache_entries = 64;
  EstimateService service(&datasets, options);

  const char* kQuery = "article(author, year)";
  const double expected_big =
      core::TwigEstimator(big->Current()->summary.get())
          .Estimate(MustParse(kQuery), core::Algorithm::kMsh);
  const double expected_alt =
      core::TwigEstimator(alt->Current()->summary.get())
          .Estimate(MustParse(kQuery), core::Algorithm::kMsh);
  ASSERT_NE(expected_big, expected_alt);  // the corpora really differ

  EstimateRequest on_big = MakeRequest(kQuery);
  on_big.dataset = "big";
  EstimateRequest on_alt = MakeRequest(kQuery);
  on_alt.dataset = "alt";

  // Warm big's entry, then ask alt: it must compute its own answer,
  // not hit big's.
  EXPECT_FALSE(service.SubmitAndWait(on_big).cached);
  EstimateResponse alt_first = service.SubmitAndWait(on_alt);
  ASSERT_TRUE(alt_first.status.ok());
  EXPECT_FALSE(alt_first.cached);
  EXPECT_EQ(alt_first.estimate, expected_alt);

  // Both now hit, each with its own dataset's answer.
  EstimateResponse big_hit = service.SubmitAndWait(on_big);
  EXPECT_TRUE(big_hit.cached);
  EXPECT_EQ(big_hit.estimate, expected_big);
  EstimateResponse alt_hit = service.SubmitAndWait(on_alt);
  EXPECT_TRUE(alt_hit.cached);
  EXPECT_EQ(alt_hit.estimate, expected_alt);

  // Swapping one dataset invalidates only its own entries: big moves
  // to v2 and recomputes, alt keeps hitting its v1 entry.
  big->Publish(SharedCorpus().BuildCst(0.05), "big-v2");
  EstimateResponse big_v2 = service.SubmitAndWait(on_big);
  ASSERT_TRUE(big_v2.status.ok());
  EXPECT_FALSE(big_v2.cached);
  EXPECT_EQ(big_v2.snapshot_version, 2u);
  EstimateResponse alt_after = service.SubmitAndWait(on_alt);
  EXPECT_TRUE(alt_after.cached);
  EXPECT_EQ(alt_after.estimate, expected_alt);
  EXPECT_EQ(alt_after.snapshot_version, 1u);

  // An unregistered dataset is a structured admission error.
  EstimateRequest unknown = MakeRequest(kQuery);
  unknown.dataset = "nope";
  EXPECT_EQ(service.SubmitAndWait(unknown).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(EstimateServiceTest, TenantQuotaThrottlesWithStructuredError) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  ServiceOptions options;
  options.num_workers = 1;
  options.tenants.overrides["metered"].rate = 0.001;  // ~one per 17 min
  options.tenants.overrides["metered"].burst = 2;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Get().Snapshot();
  EstimateService service(&catalog, options);

  EstimateRequest request = MakeRequest("article.author");
  request.tenant = "metered";
  EXPECT_TRUE(service.SubmitAndWait(request).status.ok());
  EXPECT_TRUE(service.SubmitAndWait(request).status.ok());
  EstimateResponse throttled = service.SubmitAndWait(request);
  EXPECT_EQ(throttled.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(throttled.status.message().find("throttled"), std::string::npos);
  EXPECT_GE(throttled.retry_after.count(), 1);  // when the token lands

  // Another tenant is untouched by the metered tenant's bucket.
  EstimateRequest other = MakeRequest("article.author");
  other.tenant = "free";
  EXPECT_TRUE(service.SubmitAndWait(other).status.ok());

  const std::vector<TenantStats> stats = service.tenant_stats();
  uint64_t metered_throttled = 0;
  for (const TenantStats& tenant : stats) {
    if (tenant.tenant == "metered") metered_throttled = tenant.throttled;
  }
  EXPECT_GE(metered_throttled, 1u);

  service.Shutdown(/*drain=*/true);
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Get().Snapshot().Delta(before);
  EXPECT_GE(delta.counters[static_cast<size_t>(
                obs::Counter::kServeTenantAdmitted)],
            3u);
  EXPECT_GE(delta.counters[static_cast<size_t>(
                obs::Counter::kServeTenantThrottled)],
            1u);
}

// ---------------------------------------------------------------------------
// Spans, the flight recorder, and the accuracy sampler in the service

TEST(EstimateServiceTest, TracingIsOffWhenRecorderEntriesIsZero) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  ServiceOptions options;
  options.recorder_entries = 0;
  EstimateService service(&catalog, options);
  EXPECT_EQ(service.recorder(), nullptr);
  EXPECT_TRUE(service.SubmitAndWait(MakeRequest("book.author")).status.ok());
}

TEST(EstimateServiceTest, SpansRecordEveryOutcome) {
  const Corpus& corpus = SharedCorpus();
  SnapshotCatalog catalog;
  catalog.Publish(corpus.BuildCst(0.02), "v1");
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_entries = 16;
  EstimateService service(&catalog, options);
  ASSERT_NE(service.recorder(), nullptr);

  ASSERT_TRUE(
      service.SubmitAndWait(MakeRequest("article.author")).status.ok());
  EstimateResponse hit = service.SubmitAndWait(MakeRequest("article.author"));
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cached);
  EstimateRequest expired = MakeRequest("book.author");
  expired.deadline = Clock::now() - milliseconds(1);
  service.SubmitAndWait(std::move(expired));
  service.Shutdown(/*drain=*/true);
  service.SubmitAndWait(MakeRequest("book.author"));  // rejected at admission

  const std::vector<obs::SpanRecord> spans =
      service.recorder()->RecentSpans();
  ASSERT_EQ(spans.size(), 4u);
  const auto with = [&](obs::SpanOutcome outcome) {
    const obs::SpanRecord* found = nullptr;
    for (const obs::SpanRecord& span : spans) {
      if (span.outcome == outcome) found = &span;
    }
    return found;
  };
  const auto offset = [](const obs::SpanRecord& span, obs::SpanStage stage) {
    return span.offset_ns[static_cast<size_t>(stage)];
  };

  // The served span walked the full pipeline, in order.
  const obs::SpanRecord* served = with(obs::SpanOutcome::kServed);
  ASSERT_NE(served, nullptr);
  for (size_t stage = 0; stage < obs::kSpanStageCount; ++stage) {
    ASSERT_NE(served->offset_ns[stage], obs::kSpanStageUnset)
        << obs::SpanStageName(static_cast<obs::SpanStage>(stage));
  }
  EXPECT_LE(offset(*served, obs::SpanStage::kEnqueued),
            offset(*served, obs::SpanStage::kDequeued));
  EXPECT_LE(offset(*served, obs::SpanStage::kEstimated),
            offset(*served, obs::SpanStage::kReplied));
  EXPECT_EQ(served->snapshot_version, 1u);
  EXPECT_EQ(served->query, query::FormatTwig(MustParse("article.author")));
  EXPECT_EQ(served->total_ns(), offset(*served, obs::SpanStage::kReplied));

  // A cache hit replies straight after the lookup: never enqueued.
  const obs::SpanRecord* cache_hit = with(obs::SpanOutcome::kCacheHit);
  ASSERT_NE(cache_hit, nullptr);
  EXPECT_NE(offset(*cache_hit, obs::SpanStage::kCacheLookup),
            obs::kSpanStageUnset);
  EXPECT_EQ(offset(*cache_hit, obs::SpanStage::kEnqueued),
            obs::kSpanStageUnset);
  EXPECT_EQ(cache_hit->estimate, served->estimate);

  // The expired request was dequeued, then replied without estimating.
  const obs::SpanRecord* missed = with(obs::SpanOutcome::kDeadlineMiss);
  ASSERT_NE(missed, nullptr);
  EXPECT_NE(offset(*missed, obs::SpanStage::kDequeued), obs::kSpanStageUnset);
  EXPECT_EQ(offset(*missed, obs::SpanStage::kEstimated), obs::kSpanStageUnset);

  // Refused at admission after shutdown: no queue stages at all.
  const obs::SpanRecord* rejected = with(obs::SpanOutcome::kRejected);
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(offset(*rejected, obs::SpanStage::kEnqueued), obs::kSpanStageUnset);
  EXPECT_NE(offset(*rejected, obs::SpanStage::kReplied), obs::kSpanStageUnset);
}

TEST(EstimateServiceTest, ShutdownFlushesInFlightSpansExactlyOnce) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  WorkerGate gate;
  EstimateService service(&catalog, gate.Options(/*queue_capacity=*/8));
  ASSERT_NE(service.recorder(), nullptr);

  // One request parked in the worker, three queued behind it; a
  // drop-mode shutdown flushes the queued remainder into rejections
  // while the first completes normally.
  std::future<EstimateResponse> first =
      service.Submit(MakeRequest("book.author"));
  gate.AwaitHeld();
  std::vector<std::future<EstimateResponse>> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(service.Submit(MakeRequest("book.author")));
  }
  std::thread closer([&] { service.Shutdown(/*drain=*/false); });
  while (service.queue_depth() != 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  gate.Release();
  closer.join();
  EXPECT_TRUE(first.get().status.ok());
  for (auto& f : queued) f.get();

  // Every admitted request left exactly one span — the flushed ones as
  // rejections, the in-flight one as served — with distinct ids.
  const std::vector<obs::SpanRecord> spans =
      service.recorder()->RecentSpans();
  ASSERT_EQ(spans.size(), 4u);
  std::set<uint64_t> ids;
  size_t served = 0, rejected = 0;
  for (const obs::SpanRecord& span : spans) {
    EXPECT_TRUE(ids.insert(span.request_id).second)
        << "request " << span.request_id << " recorded twice";
    served += span.outcome == obs::SpanOutcome::kServed;
    rejected += span.outcome == obs::SpanOutcome::kRejected;
  }
  EXPECT_EQ(served, 1u);
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(service.recorder()->stats().dropped, 0u);
}

TEST(EstimateServiceTest, AccuracySamplerIsExactOnAnUnprunedCst) {
  const Corpus& corpus = SharedCorpus();
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Get().Snapshot();
  cst::CstOptions copt;
  copt.prune_threshold = 1;  // unpruned: estimates are sharp (tier-1
                             // exactness, see differential_test.cc)
  SnapshotCatalog catalog;
  // The corpus outlives every test; a non-owning alias is safe.
  catalog.Publish(
      cst::Cst::Build(corpus.data, corpus.pst, copt), "v1",
      /*build_seconds=*/0,
      std::shared_ptr<const tree::Tree>(std::shared_ptr<const tree::Tree>(),
                                        &corpus.data));
  ServiceOptions options;
  options.num_workers = 1;
  options.accuracy_sample_every = 1;  // re-execute every request
  EstimateService service(&catalog, options);

  const char* queries[] = {"dblp//author", "dblp//title", "article//title",
                           "dblp.*"};
  for (const char* text : queries) {
    ASSERT_TRUE(service.SubmitAndWait(MakeRequest(text)).status.ok()) << text;
  }
  service.Shutdown(/*drain=*/true);

  const std::vector<obs::SpanRecord> spans =
      service.recorder()->RecentSpans();
  ASSERT_EQ(spans.size(), std::size(queries));
  for (const obs::SpanRecord& span : spans) {
    EXPECT_TRUE(span.accuracy_sampled) << span.query;
    EXPECT_NEAR(span.relative_error, 0.0, 1e-9) << span.query;
  }
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Get().Snapshot();
  const obs::MetricsSnapshot delta = after.Delta(before);
  EXPECT_GE(delta.counters[static_cast<size_t>(
                obs::Counter::kServeAccuracySamples)],
            std::size(queries));
  EXPECT_NEAR(after.accuracy.MeanAbs(), 0.0, 1e-9);
}

TEST(EstimateServiceTest, AccuracySamplerSkipsSnapshotsWithoutATree) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");  // no data tree attached
  ServiceOptions options;
  options.accuracy_sample_every = 1;
  EstimateService service(&catalog, options);
  ASSERT_TRUE(service.SubmitAndWait(MakeRequest("book.author")).status.ok());
  service.Shutdown(/*drain=*/true);
  for (const obs::SpanRecord& span : service.recorder()->RecentSpans()) {
    EXPECT_FALSE(span.accuracy_sampled);
  }
}

TEST(EstimateServiceTest, FailedRebuildFlipsHealthDegradedUntilOneLands) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  EstimateService service(&catalog);
  EXPECT_EQ(service.health().Report().state, HealthState::kOk);

  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(Status::Corruption("bad blob")); },
      "doomed"));
  EXPECT_FALSE(catalog.WaitForRebuild().ok());
  HealthReport report = service.health().Report();
  EXPECT_EQ(report.state, HealthState::kDegraded);
  EXPECT_NE(report.reason.find("rebuild failed"), std::string::npos);
  // Degraded, not down: the last good snapshot still answers.
  EstimateResponse response =
      service.SubmitAndWait(MakeRequest("book.author"));
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(response.snapshot_version, 1u);

  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(BuildFigureOneCst()); }, "fixed"));
  EXPECT_TRUE(catalog.WaitForRebuild().ok());
  EXPECT_EQ(service.health().Report().state, HealthState::kOk);
}

TEST(EstimateServiceTest, ShutdownDuringRebuildDetachesTheListenerSafely) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  {
    EstimateService service(&catalog);
    ASSERT_TRUE(catalog.BeginRebuild(
        [gate] {
          gate.wait();
          return Result<cst::Cst>(BuildFigureOneCst());
        },
        "slow"));
    // Shutdown while the rebuild is parked: the listener must detach
    // before the service goes away (run under TSan via verify-tsan).
    std::thread unblock([&] {
      std::this_thread::sleep_for(milliseconds(20));
      release.set_value();
    });
    service.Shutdown(/*drain=*/true);
    unblock.join();
  }
  // The rebuild still lands after the service is gone — into the
  // catalog, with no listener left to call.
  EXPECT_TRUE(catalog.WaitForRebuild().ok());
  EXPECT_EQ(catalog.version(), 2u);
}

TEST(EstimateServiceTest, AdmissionAndEstimateFailpointsRejectStructurally) {
  util::FailpointRegistry::Get().Reset();
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  EstimateService service(&catalog);

  ASSERT_TRUE(
      util::FailpointRegistry::Get().Configure("serve/admission", "error")
          .ok());
  EstimateResponse rejected =
      service.SubmitAndWait(MakeRequest("book.author"));
  EXPECT_EQ(rejected.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status.message().find("injected fault"),
            std::string::npos);

  ASSERT_TRUE(
      util::FailpointRegistry::Get().Configure("serve/admission", "off")
          .ok());
  ASSERT_TRUE(
      util::FailpointRegistry::Get().Configure("serve/estimate", "error")
          .ok());
  EstimateResponse failed = service.SubmitAndWait(MakeRequest("book.author"));
  EXPECT_EQ(failed.status.code(), StatusCode::kUnavailable);
  // The request was admitted and reached a worker: it reports the
  // snapshot it would have used.
  EXPECT_EQ(failed.snapshot_version, 1u);

  util::FailpointRegistry::Get().Reset();
  EXPECT_TRUE(service.SubmitAndWait(MakeRequest("book.author")).status.ok());
}

TEST(EstimateServiceTest, BrownoutShedsUncachedWorkButServesCacheHits) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  WorkerGate gate(/*armed=*/false);
  ServiceOptions options = gate.Options(/*queue_capacity=*/2);
  options.cache_entries = 64;
  EstimateService service(&catalog, options);

  // Warm the cache while the gate is open.
  ASSERT_TRUE(service.SubmitAndWait(MakeRequest("book.author")).status.ok());

  // Park the worker and fill the queue to capacity: depth 2/2 crosses
  // the 90% brown-out threshold at the next uncached admission.
  gate.Arm();
  std::future<EstimateResponse> in_flight =
      service.Submit(MakeRequest("book(author, year)"));
  gate.AwaitHeld();
  std::future<EstimateResponse> q1 =
      service.Submit(MakeRequest("book.publisher"));
  std::future<EstimateResponse> q2 =
      service.Submit(MakeRequest("book.title"));

  EstimateResponse shed = service.SubmitAndWait(MakeRequest("book.year"));
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status.message().find("browning out"), std::string::npos);
  EXPECT_GT(shed.retry_after.count(), 0);  // the Retry-After hint

  // A warmed cache entry costs no worker time: served mid-brown-out.
  EstimateResponse hit = service.SubmitAndWait(MakeRequest("book.author"));
  EXPECT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cached);

  gate.Release();
  EXPECT_TRUE(in_flight.get().status.ok());
  EXPECT_TRUE(q1.get().status.ok());
  EXPECT_TRUE(q2.get().status.ok());
}

// ---------------------------------------------------------------------------
// Wire protocol

obs::JsonValue MustParseJson(const std::string& text) {
  Result<obs::JsonValue> parsed = obs::ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return parsed.ok() ? std::move(parsed).value() : obs::JsonValue{};
}

TEST(WireTest, ParseAlgorithmNameCoversAllAlgorithms) {
  for (core::Algorithm algorithm : core::kAllAlgorithms) {
    core::Algorithm parsed;
    ASSERT_TRUE(ParseAlgorithmName(core::AlgorithmName(algorithm), &parsed));
    EXPECT_EQ(parsed, algorithm);
  }
  core::Algorithm parsed;
  EXPECT_FALSE(ParseAlgorithmName("msh", &parsed));  // case-sensitive
  EXPECT_FALSE(ParseAlgorithmName("", &parsed));
}

TEST(WireTest, ParseRequestReadsAllFieldsAndAppliesDefaults) {
  Result<WireRequest> r = ParseRequest(
      "{\"op\":\"estimate\",\"id\":7,\"query\":\"a(b, c)\",\"algo\":\"MO\","
      "\"semantics\":\"presence\",\"deadline_ms\":250.5,\"space\":0.05,"
      "\"future_field\":[1,2]}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->op, "estimate");
  EXPECT_TRUE(r->has_id);
  EXPECT_EQ(r->id, 7u);
  EXPECT_EQ(r->query, "a(b, c)");
  EXPECT_EQ(r->algorithm, core::Algorithm::kMo);
  EXPECT_EQ(r->semantics, core::CountSemantics::kPresence);
  EXPECT_DOUBLE_EQ(r->deadline_ms, 250.5);
  EXPECT_DOUBLE_EQ(r->space, 0.05);

  r = ParseRequest(
      "{\"op\":\"failpoint\",\"spec\":\"serve/estimate=error:0.1\"}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->spec, "serve/estimate=error:0.1");

  r = ParseRequest("{\"op\":\"ping\"}");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_id);
  EXPECT_EQ(r->algorithm, core::Algorithm::kMsh);
  EXPECT_EQ(r->semantics, core::CountSemantics::kOccurrence);
  EXPECT_DOUBLE_EQ(r->deadline_ms, 0.0);
}

TEST(WireTest, ParseRequestRejectsMalformedRequests) {
  for (const char* bad : {
           "not json",
           "[1,2,3]",                               // not an object
           "{}",                                    // missing op
           "{\"op\":3}",                            // op not a string
           "{\"op\":\"ping\",\"id\":-1}",           // negative id
           "{\"op\":\"ping\",\"id\":\"x\"}",        // id not a number
           "{\"op\":\"estimate\",\"query\":1}",     // query not a string
           "{\"op\":\"estimate\",\"algo\":\"nope\"}",
           "{\"op\":\"estimate\",\"semantics\":\"sometimes\"}",
           "{\"op\":\"estimate\",\"deadline_ms\":-5}",
           "{\"op\":\"swap\",\"space\":-0.1}",
       }) {
    Result<WireRequest> r = ParseRequest(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
  }
}

TEST(WireTest, ResponsesEncodeTheDocumentedSchema) {
  WireRequest request;
  request.op = "estimate";
  request.has_id = true;
  request.id = 42;
  request.algorithm = core::Algorithm::kMsh;

  EstimateResponse ok;
  ok.status = Status::OK();
  ok.estimate = 17.25;
  ok.snapshot_version = 3;
  ok.queue_wait = std::chrono::nanoseconds(1500);
  ok.exec_time = std::chrono::nanoseconds(2500);
  Result<obs::JsonValue> parsed =
      obs::ParseJson(EstimateWireResponse(request, ok));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->GetNumber("id"), 42);
  EXPECT_TRUE(parsed->GetBool("ok"));
  EXPECT_EQ(parsed->GetString("op"), "estimate");
  EXPECT_DOUBLE_EQ(parsed->GetNumber("estimate"), 17.25);
  EXPECT_EQ(parsed->GetString("algo"), "MSH");
  EXPECT_DOUBLE_EQ(parsed->GetNumber("version"), 3);
  EXPECT_DOUBLE_EQ(parsed->GetNumber("wait_us"), 1.5);
  EXPECT_DOUBLE_EQ(parsed->GetNumber("exec_us"), 2.5);

  EstimateResponse failed;
  failed.status = Status::Unavailable("overloaded: request queue is full");
  parsed = obs::ParseJson(EstimateWireResponse(request, failed));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBool("ok", true));
  const obs::JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetString("code"), "Unavailable");
  EXPECT_EQ(error->GetString("message"), "overloaded: request queue is full");

  // A line that never parsed gets an error response with no id echo.
  parsed = obs::ParseJson(
      ErrorResponse(nullptr, Status::ParseError("unrecognized JSON token")));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("id"), nullptr);
  EXPECT_FALSE(parsed->GetBool("ok", true));

  // Metrics responses embed the registry export as a nested document.
  WireRequest metrics_request;
  metrics_request.op = "metrics";
  parsed = obs::ParseJson(MetricsResponse(
      metrics_request, obs::MetricsRegistry::Get().Snapshot().ToJson(),
      /*version=*/1, /*queue_depth=*/0, /*queue_capacity=*/256));
  ASSERT_TRUE(parsed.ok());
  const obs::JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->Find("counters"), nullptr);
}

// Regression: validation used to be `number_value < 0`, which huge
// finite doubles pass — and 1e308 milliseconds overflows the
// steady_clock duration conversion in the TCP front-end (signed
// integer overflow, UB). NaN also passes `< 0` (every comparison with
// NaN is false); the strict JSON parser keeps NaN/Inf literals off
// the wire, so the helper is pinned directly too.
TEST(WireTest, RejectsNonFiniteAndOverflowingRangeFields) {
  Result<WireRequest> r =
      ParseRequest("{\"op\":\"estimate\",\"deadline_ms\":1e308}");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  r = ParseRequest("{\"op\":\"swap\",\"space\":1e308}");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  r = ParseRequest("{\"op\":\"estimate\",\"deadline_ms\":-1}");
  EXPECT_FALSE(r.ok());

  // The documented bounds themselves are accepted.
  r = ParseRequest("{\"op\":\"estimate\",\"deadline_ms\":1e9}");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  r = ParseRequest("{\"op\":\"swap\",\"space\":1e6}");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  r = ParseRequest("{\"op\":\"estimate\",\"deadline_ms\":1.000001e9}");
  EXPECT_FALSE(r.ok());

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(IsFiniteNonNegative(nan, kMaxDeadlineMs));
  EXPECT_FALSE(IsFiniteNonNegative(inf, kMaxDeadlineMs));
  EXPECT_FALSE(IsFiniteNonNegative(-inf, kMaxDeadlineMs));
  EXPECT_FALSE(IsFiniteNonNegative(-1, kMaxDeadlineMs));
  EXPECT_FALSE(IsFiniteNonNegative(kMaxDeadlineMs * 1.01, kMaxDeadlineMs));
  EXPECT_TRUE(IsFiniteNonNegative(0, kMaxDeadlineMs));
  EXPECT_TRUE(IsFiniteNonNegative(-0.0, kMaxDeadlineMs));
  EXPECT_TRUE(IsFiniteNonNegative(kMaxDeadlineMs, kMaxDeadlineMs));
}

// Regression: a NaN/Inf estimate pushed through JsonWriter::Double
// renders as null (bare NaN is not JSON); the response must stay
// parseable and say what happened instead of silently nulling.
TEST(WireTest, NonFiniteEstimateEncodesAsNullPlusErrorFlag) {
  WireRequest request;
  request.op = "estimate";
  request.has_id = true;
  request.id = 5;

  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    EstimateResponse response;
    response.status = Status::OK();
    response.estimate = bad;
    response.snapshot_version = 1;
    const std::string line = EstimateWireResponse(request, response);
    Result<obs::JsonValue> parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;  // the whole point: valid JSON
    const obs::JsonValue* estimate = parsed->Find("estimate");
    ASSERT_NE(estimate, nullptr);
    EXPECT_EQ(estimate->kind, obs::JsonValue::Kind::kNull);
    EXPECT_EQ(parsed->GetString("estimate_error"), "non-finite estimate");
  }

  // A finite estimate carries no error flag.
  EstimateResponse good;
  good.status = Status::OK();
  good.estimate = 2.5;
  Result<obs::JsonValue> parsed =
      obs::ParseJson(EstimateWireResponse(request, good));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("estimate_error"), nullptr);
  EXPECT_DOUBLE_EQ(parsed->GetNumber("estimate"), 2.5);
}

TEST(WireTest, CachedFlagRoundTripsThroughTheWire) {
  WireRequest request;
  request.op = "estimate";
  EstimateResponse response;
  response.status = Status::OK();
  response.estimate = 3.5;
  response.cached = true;
  Result<obs::JsonValue> parsed =
      obs::ParseJson(EstimateWireResponse(request, response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->GetBool("cached"));

  response.cached = false;
  parsed = obs::ParseJson(EstimateWireResponse(request, response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBool("cached", true));
}

TEST(WireTest, StatsAndRecentResponsesEncodeTheDocumentedSchema) {
  WireRequest request;
  request.op = "stats";
  request.has_id = true;
  request.id = 7;

  // Hand-built snapshot: no global-registry noise in the assertions.
  const size_t msh_series =
      static_cast<size_t>(core::Algorithm::kMsh);  // pins series<->algorithm
  obs::MetricsSnapshot snapshot;
  for (int i = 0; i < 8; ++i) {
    snapshot.latency[msh_series].Record(1024);
  }
  snapshot.accuracy.recorded = 2;
  snapshot.accuracy.window = {0.5, -0.5};

  obs::FlightRecorder recorder(
      obs::FlightRecorderOptions{8, 8, /*slow_threshold_ns=*/1000});
  obs::SpanRecord span;
  span.request_id = 1;
  span.query = "book.author";
  span.series = static_cast<uint8_t>(msh_series);
  span.outcome = obs::SpanOutcome::kServed;
  span.offset_ns[static_cast<size_t>(obs::SpanStage::kAdmitted)] = 0;
  span.offset_ns[static_cast<size_t>(obs::SpanStage::kReplied)] = 500;
  recorder.Record(span);
  span.request_id = 2;
  span.offset_ns[static_cast<size_t>(obs::SpanStage::kReplied)] = 2000;
  recorder.Record(span);  // over the threshold: also in the slow log

  Result<obs::JsonValue> parsed = obs::ParseJson(
      StatsResponse(request, snapshot, &recorder, /*version=*/3,
                    /*queue_depth=*/1, /*queue_capacity=*/256));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->GetBool("ok"));
  EXPECT_EQ(parsed->GetString("op"), "stats");
  EXPECT_DOUBLE_EQ(parsed->GetNumber("id"), 7);
  EXPECT_DOUBLE_EQ(parsed->GetNumber("version"), 3);
  EXPECT_DOUBLE_EQ(parsed->GetNumber("schema_version"),
                   static_cast<double>(obs::kMetricsSchemaVersion));
  EXPECT_DOUBLE_EQ(parsed->GetNumber("queue_capacity"), 256);
  const obs::JsonValue* latency = parsed->Find("latency");
  ASSERT_NE(latency, nullptr);
  const obs::JsonValue* msh = latency->Find("MSH");
  ASSERT_NE(msh, nullptr);
  EXPECT_DOUBLE_EQ(msh->GetNumber("count"), 8);
  EXPECT_GT(msh->GetNumber("p50_us"), 0.0);
  EXPECT_LE(msh->GetNumber("p50_us"), msh->GetNumber("p99_us"));
  const obs::JsonValue* accuracy = parsed->Find("accuracy");
  ASSERT_NE(accuracy, nullptr);
  EXPECT_DOUBLE_EQ(accuracy->GetNumber("recorded"), 2);
  EXPECT_DOUBLE_EQ(accuracy->GetNumber("mean"), 0.0);
  EXPECT_DOUBLE_EQ(accuracy->GetNumber("mean_abs"), 0.5);
  const obs::JsonValue* rec = parsed->Find("recorder");
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->GetBool("enabled"));
  EXPECT_DOUBLE_EQ(rec->GetNumber("recorded"), 2);
  EXPECT_DOUBLE_EQ(rec->GetNumber("slow_recorded"), 1);
  EXPECT_DOUBLE_EQ(rec->GetNumber("slow_threshold_us"), 1.0);

  // Tracing disabled: stats still answers, the recorder is marked off.
  parsed = obs::ParseJson(
      StatsResponse(request, snapshot, nullptr, 3, 0, 256));
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("recorder"), nullptr);
  EXPECT_FALSE(parsed->Find("recorder")->GetBool("enabled", true));

  request.op = "recent";
  parsed = obs::ParseJson(RecentResponse(request, &recorder, /*version=*/3));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->GetBool("ok"));
  EXPECT_EQ(parsed->GetString("op"), "recent");
  EXPECT_DOUBLE_EQ(parsed->GetNumber("recorded"), 2);
  EXPECT_DOUBLE_EQ(parsed->GetNumber("dropped"), 0);
  const obs::JsonValue* spans = parsed->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->elements.size(), 2u);
  EXPECT_DOUBLE_EQ(spans->elements[0].GetNumber("id"), 1);
  EXPECT_EQ(spans->elements[0].GetString("outcome"), "served");
  EXPECT_EQ(spans->elements[0].GetString("algo"), "MSH");
  const obs::JsonValue* slow = parsed->Find("slow");
  ASSERT_NE(slow, nullptr);
  ASSERT_EQ(slow->elements.size(), 1u);
  EXPECT_DOUBLE_EQ(slow->elements[0].GetNumber("id"), 2);

  // `recent` with tracing off is a structured error, not a disconnect.
  parsed = obs::ParseJson(RecentResponse(request, nullptr, /*version=*/3));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBool("ok", true));
  ASSERT_NE(parsed->Find("error"), nullptr);
  EXPECT_EQ(parsed->Find("error")->GetString("code"), "Unavailable");
}

TEST(WireTest, HealthFailpointAndRetryAfterEncodeTheDocumentedSchema) {
  WireRequest request;
  request.op = "health";
  request.has_id = true;
  request.id = 9;

  HealthReport report;
  report.state = HealthState::kBrownout;
  report.reason = "queue at 9/10";
  report.retry_after = milliseconds(50);
  obs::JsonValue health = MustParseJson(HealthResponse(request, report, 3));
  EXPECT_TRUE(health.GetBool("ok"));
  EXPECT_EQ(health.GetString("state"), "browning-out");
  EXPECT_EQ(health.GetString("reason"), "queue at 9/10");
  EXPECT_DOUBLE_EQ(health.GetNumber("retry_after_ms"), 50);
  EXPECT_DOUBLE_EQ(health.GetNumber("version"), 3);

  // A healthy report carries neither reason nor hint.
  obs::JsonValue ok = MustParseJson(HealthResponse(request, HealthReport{}, 3));
  EXPECT_EQ(ok.GetString("state"), "ok");
  EXPECT_EQ(ok.Find("reason"), nullptr);
  EXPECT_EQ(ok.Find("retry_after_ms"), nullptr);

  // A shed's Retry-After hint rides inside the error object.
  obs::JsonValue error = MustParseJson(ErrorResponse(
      &request, Status::Unavailable("browning out"), milliseconds(25)));
  ASSERT_NE(error.Find("error"), nullptr);
  EXPECT_DOUBLE_EQ(error.Find("error")->GetNumber("retry_after_ms"), 25);
  // No hint, no key.
  error = MustParseJson(ErrorResponse(&request, Status::Unavailable("x")));
  EXPECT_EQ(error.Find("error")->Find("retry_after_ms"), nullptr);

  util::FailpointInfo info;
  info.name = "serve/estimate";
  info.action = util::FailpointAction::kError;
  info.probability = 0.1;
  info.hits = 12;
  info.triggers = 2;
  request.op = "failpoint";
  obs::JsonValue listed = MustParseJson(FailpointResponse(request, {info}));
  EXPECT_TRUE(listed.GetBool("ok"));
  const obs::JsonValue* failpoints = listed.Find("failpoints");
  ASSERT_NE(failpoints, nullptr);
  ASSERT_EQ(failpoints->elements.size(), 1u);
  const obs::JsonValue& entry = failpoints->elements[0];
  EXPECT_EQ(entry.GetString("name"), "serve/estimate");
  EXPECT_EQ(entry.GetString("action"), "error");
  EXPECT_DOUBLE_EQ(entry.GetNumber("probability"), 0.1);
  EXPECT_DOUBLE_EQ(entry.GetNumber("hits"), 12);
  EXPECT_DOUBLE_EQ(entry.GetNumber("triggers"), 2);
}

// ---------------------------------------------------------------------------
// TCP front-end (loopback)

/// Minimal blocking line-protocol client for the tests.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = fd_ >= 0 &&
                 connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0;
  }

  ~TestClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  /// Sends one line, returns the one-line response (empty on EOF).
  std::string RoundTrip(const std::string& request) {
    std::string line = request + "\n";
    if (send(fd_, line.data(), line.size(), MSG_NOSIGNAL) < 0) return "";
    return ReadLine();
  }

  /// Sends one line without waiting for the reply (hangup tests).
  void Send(const std::string& request) {
    std::string line = request + "\n";
    (void)send(fd_, line.data(), line.size(), MSG_NOSIGNAL);
  }

  std::string ReadLine() {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

class TcpFrontEndTest : public ::testing::Test {
 protected:
  void StartServer(TcpOptions options = {}) {
    catalog_.Publish(SharedCorpus().BuildCst(0.02), "v1");
    ServiceOptions sopt;
    sopt.num_workers = 2;
    service_.emplace(&catalog_, sopt);
    options.port = 0;  // ephemeral
    front_end_.emplace(&catalog_, &*service_, options);
    ASSERT_TRUE(front_end_->Start().ok());
  }

  void TearDown() override {
    if (front_end_.has_value()) front_end_->Stop();
    // Failpoints are process-global; never leak one into other tests.
    util::FailpointRegistry::Get().Reset();
  }

  SnapshotCatalog catalog_;
  std::optional<EstimateService> service_;
  std::optional<TcpFrontEnd> front_end_;
};

TEST_F(TcpFrontEndTest, AnswersTheCoreOpsOverLoopback) {
  StartServer();
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());

  obs::JsonValue pong =
      MustParseJson(client.RoundTrip("{\"op\":\"ping\",\"id\":1}"));
  EXPECT_TRUE(pong.GetBool("ok"));
  EXPECT_DOUBLE_EQ(pong.GetNumber("id"), 1);
  EXPECT_DOUBLE_EQ(pong.GetNumber("version"), 1);

  // A served estimate equals the direct estimator call bit for bit.
  const std::shared_ptr<const CstSnapshot> snapshot = catalog_.Current();
  const double expected =
      core::TwigEstimator(snapshot->summary.get())
          .Estimate(MustParse("article(author, year)"),
                    core::Algorithm::kMsh);
  obs::JsonValue estimate = MustParseJson(client.RoundTrip(
      "{\"op\":\"estimate\",\"id\":2,\"query\":\"article(author, year)\","
      "\"algo\":\"MSH\"}"));
  EXPECT_TRUE(estimate.GetBool("ok"));
  EXPECT_EQ(estimate.GetNumber("estimate"), expected);
  EXPECT_DOUBLE_EQ(estimate.GetNumber("version"), 1);

  obs::JsonValue explain = MustParseJson(client.RoundTrip(
      "{\"op\":\"explain\",\"id\":3,\"query\":\"article.author\"}"));
  EXPECT_TRUE(explain.GetBool("ok"));
  const obs::JsonValue* trace = explain.Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->GetString("query"), "article.author");

  obs::JsonValue metrics =
      MustParseJson(client.RoundTrip("{\"op\":\"metrics\",\"id\":4}"));
  EXPECT_TRUE(metrics.GetBool("ok"));
  ASSERT_NE(metrics.Find("metrics"), nullptr);
  EXPECT_NE(metrics.Find("metrics")->Find("counters"), nullptr);
}

TEST_F(TcpFrontEndTest, StatsAndRecentVerbsReflectServedTraffic) {
  StartServer();
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(MustParseJson(client.RoundTrip(
                  "{\"op\":\"estimate\",\"id\":1,"
                  "\"query\":\"article.author\"}"))
                  .GetBool("ok"));

  obs::JsonValue stats =
      MustParseJson(client.RoundTrip("{\"op\":\"stats\",\"id\":2}"));
  EXPECT_TRUE(stats.GetBool("ok"));
  EXPECT_DOUBLE_EQ(stats.GetNumber("schema_version"),
                   static_cast<double>(obs::kMetricsSchemaVersion));
  ASSERT_NE(stats.Find("latency"), nullptr);
  ASSERT_NE(stats.Find("latency")->Find("MSH"), nullptr);
  ASSERT_NE(stats.Find("accuracy"), nullptr);
  ASSERT_NE(stats.Find("recorder"), nullptr);
  EXPECT_TRUE(stats.Find("recorder")->GetBool("enabled"));
  EXPECT_GE(stats.Find("recorder")->GetNumber("recorded"), 1.0);

  obs::JsonValue recent =
      MustParseJson(client.RoundTrip("{\"op\":\"recent\",\"id\":3}"));
  EXPECT_TRUE(recent.GetBool("ok"));
  const obs::JsonValue* spans = recent.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_GE(spans->elements.size(), 1u);
  const obs::JsonValue& last = spans->elements.back();
  EXPECT_EQ(last.GetString("query"), "article.author");
  EXPECT_EQ(last.GetString("outcome"), "served");
  EXPECT_NE(last.Find("stages_us"), nullptr);
}

TEST_F(TcpFrontEndTest, BadInputGetsStructuredErrorsNotDisconnects) {
  StartServer();
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());

  obs::JsonValue error = MustParseJson(client.RoundTrip("this is not json"));
  EXPECT_FALSE(error.GetBool("ok", true));
  EXPECT_EQ(error.Find("error")->GetString("code"), "ParseError");

  error = MustParseJson(client.RoundTrip("{\"op\":\"frobnicate\",\"id\":9}"));
  EXPECT_FALSE(error.GetBool("ok", true));
  EXPECT_DOUBLE_EQ(error.GetNumber("id"), 9);  // id echoes on errors too
  EXPECT_EQ(error.Find("error")->GetString("code"), "InvalidArgument");

  error = MustParseJson(
      client.RoundTrip("{\"op\":\"estimate\",\"query\":\"((bad\"}"));
  EXPECT_FALSE(error.GetBool("ok", true));

  // Swap without a configured rebuild source is Unimplemented.
  error = MustParseJson(client.RoundTrip("{\"op\":\"swap\",\"id\":10}"));
  EXPECT_EQ(error.Find("error")->GetString("code"), "Unimplemented");

  // The connection survived all of the above.
  EXPECT_TRUE(
      MustParseJson(client.RoundTrip("{\"op\":\"ping\"}")).GetBool("ok"));
}

TEST_F(TcpFrontEndTest, OversizedLinesCloseTheConnectionWithAnError) {
  TcpOptions options;
  options.max_line_bytes = 128;
  StartServer(options);
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());
  const std::string huge(4096, 'x');  // no newline: exceeds the buffer cap
  obs::JsonValue error = MustParseJson(client.RoundTrip(huge));
  EXPECT_FALSE(error.GetBool("ok", true));
  EXPECT_EQ(error.Find("error")->GetString("code"), "InvalidArgument");
  EXPECT_EQ(client.ReadLine(), "");  // then the server hangs up
}

TEST_F(TcpFrontEndTest, SwapRebuildsAndPublishesANewVersion) {
  TcpOptions options;
  options.rebuild = [](double space) {
    return Result<cst::Cst>(
        SharedCorpus().BuildCst(space > 0 ? space : 0.02));
  };
  StartServer(options);
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());

  obs::JsonValue swapped = MustParseJson(
      client.RoundTrip("{\"op\":\"swap\",\"id\":1,\"space\":0.05}"));
  EXPECT_TRUE(swapped.GetBool("ok"));
  EXPECT_DOUBLE_EQ(swapped.GetNumber("version"), 2);
  EXPECT_EQ(catalog_.version(), 2u);

  // Estimates now come from the new snapshot.
  obs::JsonValue estimate = MustParseJson(client.RoundTrip(
      "{\"op\":\"estimate\",\"id\":2,\"query\":\"article.author\"}"));
  EXPECT_TRUE(estimate.GetBool("ok"));
  EXPECT_DOUBLE_EQ(estimate.GetNumber("version"), 2);
}

TEST_F(TcpFrontEndTest, ShutdownOpStopsWaitForShutdown) {
  StartServer();
  std::thread waiter([&] { front_end_->WaitForShutdown(); });
  {
    TestClient client(front_end_->port());
    ASSERT_TRUE(client.connected());
    obs::JsonValue bye =
        MustParseJson(client.RoundTrip("{\"op\":\"shutdown\",\"id\":1}"));
    EXPECT_TRUE(bye.GetBool("ok"));
    EXPECT_TRUE(bye.GetBool("stopping"));
  }
  waiter.join();  // returns only because the op requested the stop
  front_end_->Stop();  // idempotent after WaitForShutdown's teardown
}

TEST_F(TcpFrontEndTest, HealthVerbTracksRebuildFailureAndRecovery) {
  StartServer();
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());

  obs::JsonValue health =
      MustParseJson(client.RoundTrip("{\"op\":\"health\",\"id\":1}"));
  EXPECT_TRUE(health.GetBool("ok"));
  EXPECT_EQ(health.GetString("state"), "ok");

  // A failed rebuild leaves the last good snapshot serving and flips
  // health degraded with the failure as the reason.
  ASSERT_TRUE(catalog_.BeginRebuild(
      [] { return Result<cst::Cst>(Status::Corruption("disk ate it")); },
      "doomed"));
  EXPECT_FALSE(catalog_.WaitForRebuild().ok());
  health = MustParseJson(client.RoundTrip("{\"op\":\"health\",\"id\":2}"));
  EXPECT_EQ(health.GetString("state"), "degraded");
  EXPECT_NE(health.GetString("reason").find("rebuild failed"),
            std::string_view::npos);
  obs::JsonValue estimate = MustParseJson(client.RoundTrip(
      "{\"op\":\"estimate\",\"id\":3,\"query\":\"article.author\"}"));
  EXPECT_TRUE(estimate.GetBool("ok"));
  EXPECT_DOUBLE_EQ(estimate.GetNumber("version"), 1);

  // The next successful rebuild clears the degradation.
  ASSERT_TRUE(catalog_.BeginRebuild(
      [] { return Result<cst::Cst>(SharedCorpus().BuildCst(0.02)); },
      "fixed"));
  EXPECT_TRUE(catalog_.WaitForRebuild().ok());
  health = MustParseJson(client.RoundTrip("{\"op\":\"health\",\"id\":4}"));
  EXPECT_EQ(health.GetString("state"), "ok");
  EXPECT_DOUBLE_EQ(health.GetNumber("version"), 2);
}

TEST_F(TcpFrontEndTest, FailpointVerbArmsListsAndDisarmsOverTheWire) {
  util::FailpointRegistry::Get().Reset();
  StartServer();
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());

  obs::JsonValue armed = MustParseJson(client.RoundTrip(
      "{\"op\":\"failpoint\",\"id\":1,\"spec\":\"serve/estimate=error\"}"));
  ASSERT_TRUE(armed.GetBool("ok"));
  const obs::JsonValue* failpoints = armed.Find("failpoints");
  ASSERT_NE(failpoints, nullptr);
  ASSERT_EQ(failpoints->elements.size(), 1u);
  EXPECT_EQ(failpoints->elements[0].GetString("name"), "serve/estimate");
  EXPECT_EQ(failpoints->elements[0].GetString("action"), "error");

  obs::JsonValue failed = MustParseJson(client.RoundTrip(
      "{\"op\":\"estimate\",\"id\":2,\"query\":\"article.author\"}"));
  EXPECT_FALSE(failed.GetBool("ok", true));
  EXPECT_EQ(failed.Find("error")->GetString("code"), "Unavailable");

  // A malformed spec is a structured error, not a disconnect.
  obs::JsonValue bad = MustParseJson(client.RoundTrip(
      "{\"op\":\"failpoint\",\"id\":3,\"spec\":\"nonsense\"}"));
  EXPECT_FALSE(bad.GetBool("ok", true));
  EXPECT_EQ(bad.Find("error")->GetString("code"), "InvalidArgument");

  // Disarm over the wire; the empty spec lists stats that prove the
  // fault actually landed.
  ASSERT_TRUE(MustParseJson(
                  client.RoundTrip("{\"op\":\"failpoint\",\"id\":4,"
                                   "\"spec\":\"serve/estimate=off\"}"))
                  .GetBool("ok"));
  obs::JsonValue listed = MustParseJson(
      client.RoundTrip("{\"op\":\"failpoint\",\"id\":5}"));
  ASSERT_TRUE(listed.GetBool("ok"));
  const obs::JsonValue& entry = listed.Find("failpoints")->elements[0];
  EXPECT_EQ(entry.GetString("action"), "off");
  EXPECT_GE(entry.GetNumber("hits"), 1.0);
  EXPECT_GE(entry.GetNumber("triggers"), 1.0);

  obs::JsonValue served = MustParseJson(client.RoundTrip(
      "{\"op\":\"estimate\",\"id\":6,\"query\":\"article.author\"}"));
  EXPECT_TRUE(served.GetBool("ok"));
}

// Satellite regression for the EINTR/partial-write hardening: a client
// that hangs up before (or while) the reply is written must surface as
// EPIPE on the handler thread, never as SIGPIPE killing the process.
TEST_F(TcpFrontEndTest, HangupMidReplyLeavesTheServerServing) {
  StartServer();
  for (int i = 0; i < 8; ++i) {
    TestClient hangup(front_end_->port());
    ASSERT_TRUE(hangup.connected());
    hangup.Send(
        "{\"op\":\"estimate\",\"id\":1,\"query\":\"article.author\"}");
    // Destructor closes the socket immediately, racing the reply.
  }
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());
  EXPECT_TRUE(
      MustParseJson(client.RoundTrip("{\"op\":\"ping\",\"id\":9}"))
          .GetBool("ok"));
}

TEST_F(TcpFrontEndTest, TornIoFailpointsDropConnectionsCleanly) {
  StartServer();
  // tcp/write tears the reply mid-line: the client sees a truncated
  // line then EOF, and the server carries on.
  ASSERT_TRUE(
      util::FailpointRegistry::Get().Configure("tcp/write", "error").ok());
  {
    TestClient client(front_end_->port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.RoundTrip("{\"op\":\"ping\",\"id\":1}"), "");
  }
  // tcp/read drops the connection before the request is handled.
  ASSERT_TRUE(
      util::FailpointRegistry::Get().Configure("tcp/write", "off").ok());
  ASSERT_TRUE(
      util::FailpointRegistry::Get().Configure("tcp/read", "error").ok());
  {
    TestClient client(front_end_->port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.RoundTrip("{\"op\":\"ping\",\"id\":2}"), "");
  }
  util::FailpointRegistry::Get().Reset();
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());
  EXPECT_TRUE(
      MustParseJson(client.RoundTrip("{\"op\":\"ping\",\"id\":3}"))
          .GetBool("ok"));
}

TEST_F(TcpFrontEndTest, PipelinedBurstRepliesByteIdenticalToSequential) {
  // The framing regression this pins down: the old per-recv
  // buffer.erase(0, ...) compaction was quadratic over a pipelined
  // burst, and any consume-offset bug reorders or tears replies. A
  // burst sent as one write must produce the exact reply bytes of the
  // same requests sent one at a time.
  StartServer();
  std::vector<std::string> requests;
  requests.reserve(200);
  for (int i = 0; i < 200; ++i) {
    requests.push_back("{\"op\":\"ping\",\"id\":" + std::to_string(i) + "}");
  }

  std::vector<std::string> sequential;
  {
    TestClient client(front_end_->port());
    ASSERT_TRUE(client.connected());
    for (const std::string& request : requests) {
      sequential.push_back(client.RoundTrip(request));
      ASSERT_FALSE(sequential.back().empty());
    }
  }

  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());
  std::string burst;
  for (const std::string& request : requests) burst += request + "\n";
  client.Send(burst.substr(0, burst.size() - 1));  // Send re-adds one \n
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(client.ReadLine(), sequential[i]) << "reply " << i;
  }
}

TEST_F(TcpFrontEndTest, PipelinedEstimatesReplyInRequestOrder) {
  // Estimates resolve through futures off the event loop; the reply
  // slots must still release them in request order, interleaved
  // correctly with inline ops.
  StartServer();
  const char* kQueries[] = {"article(author, year)", "article.title",
                            "inproceedings(author, pages)",
                            "book.publisher"};
  std::string burst;
  for (int i = 0; i < 40; ++i) {
    if (i % 5 == 4) {
      burst += "{\"op\":\"ping\",\"id\":" + std::to_string(i) + "}\n";
    } else {
      burst += "{\"op\":\"estimate\",\"id\":" + std::to_string(i) +
               ",\"query\":\"" + std::string(kQueries[i % 4]) + "\"}\n";
    }
  }
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());
  client.Send(burst.substr(0, burst.size() - 1));
  for (int i = 0; i < 40; ++i) {
    obs::JsonValue reply = MustParseJson(client.ReadLine());
    EXPECT_TRUE(reply.GetBool("ok")) << i;
    EXPECT_DOUBLE_EQ(reply.GetNumber("id"), i);
    EXPECT_EQ(reply.GetString("op"), i % 5 == 4 ? "ping" : "estimate");
  }
}

TEST_F(TcpFrontEndTest, AcceptRidesOutFdExhaustion) {
  // The accept-death regression: a transient EMFILE from accept() used
  // to kill the handler thread for good — the server stayed up but
  // went deaf. Now it counts a retry, backs off, and accepts again
  // once descriptors free up.
  StartServer();
  {
    TestClient warm(front_end_->port());
    ASSERT_TRUE(warm.connected());
    EXPECT_TRUE(MustParseJson(warm.RoundTrip("{\"op\":\"ping\",\"id\":1}"))
                    .GetBool("ok"));
  }
  const auto retries = [] {
    return obs::MetricsRegistry::Get().Snapshot().counters[static_cast<size_t>(
        obs::Counter::kServeAcceptRetries)];
  };
  const uint64_t before = retries();

  rlimit old_limit{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  rlimit low = old_limit;
  low.rlim_cur = 256;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &low), 0);

  // Exhaust the process's descriptors, keeping one in reserve for the
  // victim client's socket.
  std::vector<int> hogs;
  for (;;) {
    const int fd = open("/dev/null", O_RDONLY);
    if (fd < 0) break;
    hogs.push_back(fd);
  }
  ASSERT_FALSE(hogs.empty());
  close(hogs.back());
  hogs.pop_back();

  // The victim's connect completes from the listen backlog without the
  // server spending a descriptor; the server's accept4 hits EMFILE.
  TestClient victim(front_end_->port());
  ASSERT_TRUE(victim.connected());
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (retries() == before && Clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_GT(retries(), before);

  // Release the descriptors: the backlogged connection must now be
  // accepted and served — the listener never died.
  for (const int fd : hogs) close(fd);
  hogs.clear();
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &old_limit), 0);
  const std::string reply = victim.RoundTrip("{\"op\":\"ping\",\"id\":2}");
  ASSERT_FALSE(reply.empty());
  EXPECT_TRUE(MustParseJson(reply).GetBool("ok"));
}

// ---------------------------------------------------------------------------
// Multi-dataset, multi-tenant serving over TCP

TEST(MultiDatasetTcpTest, RoutesEstimatesSwapsAndStatsPerDataset) {
  DatasetCatalog datasets;
  SnapshotCatalog* big = datasets.Create("big");
  SnapshotCatalog* alt = datasets.Create("alt");
  big->Publish(SharedCorpus().BuildCst(0.02), "big-v1");
  alt->Publish(AltCorpus().BuildCst(0.02), "alt-v1");

  ServiceOptions sopt;
  sopt.num_workers = 2;
  sopt.cache_entries = 64;
  EstimateService service(&datasets, sopt);

  TcpOptions topt;
  topt.dataset_rebuilds["big"].rebuild = [](double space) {
    return Result<cst::Cst>(
        SharedCorpus().BuildCst(space > 0 ? space : 0.02));
  };
  TcpFrontEnd front_end(&datasets, &service, topt);
  ASSERT_TRUE(front_end.Start().ok());

  const char* kQuery = "article(author, year)";
  const double expected_big =
      core::TwigEstimator(big->Current()->summary.get())
          .Estimate(MustParse(kQuery), core::Algorithm::kMsh);
  const double expected_alt =
      core::TwigEstimator(alt->Current()->summary.get())
          .Estimate(MustParse(kQuery), core::Algorithm::kMsh);
  ASSERT_NE(expected_big, expected_alt);

  TestClient client(front_end.port());
  ASSERT_TRUE(client.connected());
  const auto estimate_on = [&](const char* dataset) {
    return MustParseJson(client.RoundTrip(
        std::string("{\"op\":\"estimate\",\"id\":1,\"query\":\"") + kQuery +
        "\",\"dataset\":\"" + dataset + "\"}"));
  };

  // Identical query, different dataset, different correct answer —
  // and the response echoes which dataset served it.
  obs::JsonValue on_big = estimate_on("big");
  ASSERT_TRUE(on_big.GetBool("ok"));
  EXPECT_DOUBLE_EQ(on_big.GetNumber("estimate"), expected_big);
  EXPECT_EQ(on_big.GetString("dataset"), "big");
  obs::JsonValue on_alt = estimate_on("alt");
  ASSERT_TRUE(on_alt.GetBool("ok"));
  EXPECT_DOUBLE_EQ(on_alt.GetNumber("estimate"), expected_alt);
  EXPECT_EQ(on_alt.GetString("dataset"), "alt");

  // Unknown datasets are structured errors on every routed verb.
  obs::JsonValue unknown = MustParseJson(client.RoundTrip(
      "{\"op\":\"ping\",\"id\":2,\"dataset\":\"nope\"}"));
  EXPECT_FALSE(unknown.GetBool("ok", true));
  EXPECT_EQ(unknown.Find("error")->GetString("code"), "InvalidArgument");

  // Swap routes per dataset: big moves to v2, alt stays at v1 and its
  // answers are bit-identical across the other dataset's swap.
  obs::JsonValue swapped = MustParseJson(client.RoundTrip(
      "{\"op\":\"swap\",\"id\":3,\"dataset\":\"big\",\"space\":0.05}"));
  ASSERT_TRUE(swapped.GetBool("ok"));
  EXPECT_DOUBLE_EQ(swapped.GetNumber("version"), 2);
  EXPECT_EQ(big->version(), 2u);
  EXPECT_EQ(alt->version(), 1u);
  obs::JsonValue alt_after = estimate_on("alt");
  ASSERT_TRUE(alt_after.GetBool("ok"));
  EXPECT_DOUBLE_EQ(alt_after.GetNumber("estimate"), expected_alt);
  EXPECT_DOUBLE_EQ(alt_after.GetNumber("version"), 1);

  // A dataset without a rebuild source refuses to swap, structurally.
  obs::JsonValue no_source = MustParseJson(client.RoundTrip(
      "{\"op\":\"swap\",\"id\":4,\"dataset\":\"alt\"}"));
  EXPECT_FALSE(no_source.GetBool("ok", true));
  EXPECT_EQ(no_source.Find("error")->GetString("code"), "Unimplemented");

  // The stats verb reports every dataset's version.
  obs::JsonValue stats = MustParseJson(
      client.RoundTrip("{\"op\":\"stats\",\"id\":5,\"dataset\":\"big\"}"));
  ASSERT_TRUE(stats.GetBool("ok"));
  const obs::JsonValue* per_dataset = stats.Find("datasets");
  ASSERT_NE(per_dataset, nullptr);
  EXPECT_DOUBLE_EQ(per_dataset->Find("big")->GetNumber("version"), 2);
  EXPECT_DOUBLE_EQ(per_dataset->Find("alt")->GetNumber("version"), 1);

  front_end.Stop();
}

TEST(MultiTenantTcpTest, HotTenantThrottledWithRetryHintOthersServed) {
  SnapshotCatalog catalog;
  catalog.Publish(SharedCorpus().BuildCst(0.02), "v1");
  ServiceOptions sopt;
  sopt.num_workers = 2;
  sopt.tenants.overrides["hot"].rate = 0.001;
  sopt.tenants.overrides["hot"].burst = 1;
  EstimateService service(&catalog, sopt);
  TcpFrontEnd front_end(&catalog, &service);
  ASSERT_TRUE(front_end.Start().ok());

  TestClient client(front_end.port());
  ASSERT_TRUE(client.connected());
  const auto estimate_as = [&](const char* tenant, int id) {
    return MustParseJson(client.RoundTrip(
        "{\"op\":\"estimate\",\"id\":" + std::to_string(id) +
        ",\"query\":\"article.author\",\"tenant\":\"" + tenant + "\"}"));
  };

  // The hot tenant spends its burst of one, then gets a structured
  // throttle carrying the token-bucket backoff hint.
  EXPECT_TRUE(estimate_as("hot", 1).GetBool("ok"));
  obs::JsonValue throttled = estimate_as("hot", 2);
  EXPECT_FALSE(throttled.GetBool("ok", true));
  const obs::JsonValue* error = throttled.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetString("code"), "Unavailable");
  EXPECT_NE(error->GetString("message").find("throttled"),
            std::string::npos);
  EXPECT_GE(error->GetNumber("retry_after_ms"), 1);

  // A different tenant on the same connection keeps being served.
  EXPECT_TRUE(estimate_as("calm", 3).GetBool("ok"));

  // The stats verb reports per-tenant admission accounting.
  obs::JsonValue stats =
      MustParseJson(client.RoundTrip("{\"op\":\"stats\",\"id\":4}"));
  ASSERT_TRUE(stats.GetBool("ok"));
  const obs::JsonValue* tenants = stats.Find("tenants");
  ASSERT_NE(tenants, nullptr);
  bool saw_hot = false;
  for (const obs::JsonValue& tenant : tenants->elements) {
    if (tenant.GetString("tenant") == "hot") {
      saw_hot = true;
      EXPECT_GE(tenant.GetNumber("admitted"), 1);
      EXPECT_GE(tenant.GetNumber("throttled"), 1);
    }
  }
  EXPECT_TRUE(saw_hot);

  front_end.Stop();
}

// ---------------------------------------------------------------------------
// End-to-end: concurrent clients, hot swap mid-run, exact answers

TEST(ServeEndToEndTest, ConcurrentLoadSurvivesAHotSwapWithExactAnswers) {
  const Corpus& corpus = SharedCorpus();
  SnapshotCatalog catalog;
  catalog.Publish(corpus.BuildCst(0.02), "v1");
  ServiceOptions sopt;
  sopt.num_workers = 2;
  EstimateService service(&catalog, sopt);
  TcpOptions topt;
  topt.rebuild = [&corpus](double) {
    return Result<cst::Cst>(corpus.BuildCst(0.05));
  };
  TcpFrontEnd front_end(&catalog, &service, topt);
  ASSERT_TRUE(front_end.Start().ok());

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Get().Snapshot();
  const query::Twig twig = MustParse("article(author, year)");
  // Ground truth per version, pinned before and after the swap.
  const double expected_v1 =
      core::TwigEstimator(catalog.Current()->summary.get())
          .Estimate(twig, core::Algorithm::kMsh);

  constexpr size_t kClients = 4;
  constexpr size_t kRequestsPerClient = 100;
  std::atomic<size_t> transport_errors{0};
  std::atomic<size_t> served{0};
  std::atomic<size_t> structured_errors{0};
  std::mutex mutex;
  std::map<uint64_t, std::vector<double>> estimates_by_version;

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      TestClient client(front_end.port());
      if (!client.connected()) {
        transport_errors.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < kRequestsPerClient; ++i) {
        const std::string response = client.RoundTrip(
            "{\"op\":\"estimate\",\"query\":\"article(author, year)\","
            "\"algo\":\"MSH\"}");
        Result<obs::JsonValue> parsed = obs::ParseJson(response);
        if (!parsed.ok()) {
          transport_errors.fetch_add(1);
          continue;
        }
        if (parsed->GetBool("ok")) {
          served.fetch_add(1);
          std::lock_guard<std::mutex> lock(mutex);
          estimates_by_version[static_cast<uint64_t>(
                                   parsed->GetNumber("version"))]
              .push_back(parsed->GetNumber("estimate"));
        } else if (parsed->Find("error") != nullptr) {
          structured_errors.fetch_add(1);  // overloads are answers too
        } else {
          transport_errors.fetch_add(1);
        }
      }
    });
  }

  // Hot swap roughly mid-run, over the wire like any other client.
  TestClient swapper(front_end.port());
  ASSERT_TRUE(swapper.connected());
  obs::JsonValue swapped =
      MustParseJson(swapper.RoundTrip("{\"op\":\"swap\",\"id\":1}"));
  EXPECT_TRUE(swapped.GetBool("ok"));
  const double expected_v2 =
      core::TwigEstimator(catalog.Current()->summary.get())
          .Estimate(twig, core::Algorithm::kMsh);

  for (std::thread& t : clients) t.join();
  front_end.Stop();
  service.Shutdown(/*drain=*/true);

  EXPECT_EQ(transport_errors.load(), 0u);
  EXPECT_EQ(served.load() + structured_errors.load(),
            kClients * kRequestsPerClient);
  EXPECT_GT(served.load(), 0u);
  // Every served estimate matches the direct estimator on the exact
  // snapshot version that served it — bit for bit, swap or no swap.
  for (const auto& [version, estimates] : estimates_by_version) {
    ASSERT_TRUE(version == 1 || version == 2) << version;
    const double expected = version == 1 ? expected_v1 : expected_v2;
    for (double estimate : estimates) EXPECT_EQ(estimate, expected);
  }
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Get().Snapshot().Delta(before);
  const auto count = [&](obs::Counter c) {
    return delta.counters[static_cast<size_t>(c)];
  };
  EXPECT_GE(count(obs::Counter::kServeEnqueued), served.load());
  EXPECT_GE(count(obs::Counter::kServeServed), served.load());
  EXPECT_GE(count(obs::Counter::kSnapshotPublishes), 1u);
}

}  // namespace
}  // namespace twig::serve
