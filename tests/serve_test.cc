#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/estimator.h"
#include "cst/cst.h"
#include "data/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "query/twig.h"
#include "serve/bounded_queue.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/tcp.h"
#include "serve/wire.h"
#include "suffix/path_suffix_tree.h"
#include "test_trees.h"
#include "tree/tree.h"
#include "xml/xml.h"

namespace twig::serve {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    int item = i;
    EXPECT_TRUE(q.TryPush(item));
  }
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    std::optional<int> got = q.Pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, i);
  }
  q.Close(/*drain=*/true);
}

TEST(BoundedQueueTest, TryPushRejectsWhenFullAndLeavesItemIntact) {
  BoundedQueue<std::string> q(1);
  std::string first = "first";
  EXPECT_TRUE(q.TryPush(first));
  std::string second = "second";
  EXPECT_FALSE(q.TryPush(second));
  EXPECT_EQ(second, "second");  // a rejected item is not consumed
  q.Close(/*drain=*/false);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q(2);
  std::promise<int> popped;
  std::thread consumer([&] { popped.set_value(q.Pop().value()); });
  std::this_thread::sleep_for(milliseconds(10));
  int item = 7;
  EXPECT_TRUE(q.TryPush(item));
  EXPECT_EQ(popped.get_future().get(), 7);
  consumer.join();
  q.Close(/*drain=*/true);
}

TEST(BoundedQueueTest, CloseWithDrainDeliversQueuedItemsThenEndsStream) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 3; ++i) {
    int item = i;
    ASSERT_TRUE(q.TryPush(item));
  }
  EXPECT_TRUE(q.Close(/*drain=*/true).empty());
  EXPECT_TRUE(q.closed());
  int item = 9;
  EXPECT_FALSE(q.TryPush(item));  // closed queue admits nothing
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.Pop().value(), i);
  EXPECT_FALSE(q.Pop().has_value());  // end of stream
}

TEST(BoundedQueueTest, CloseWithoutDrainReturnsLeftoversAndWakesPoppers) {
  BoundedQueue<int> q(4);
  std::promise<bool> blocked_pop;
  std::thread consumer([&] { blocked_pop.set_value(q.Pop().has_value()); });
  std::this_thread::sleep_for(milliseconds(10));
  // Close(drop) must wake the blocked Pop with end-of-stream...
  std::vector<int> leftovers = q.Close(/*drain=*/false);
  EXPECT_FALSE(blocked_pop.get_future().get());
  consumer.join();
  EXPECT_TRUE(leftovers.empty());

  // ...and hand back anything still queued so the caller can reject it.
  BoundedQueue<int> q2(4);
  for (int i = 0; i < 3; ++i) {
    int item = i;
    ASSERT_TRUE(q2.TryPush(item));
  }
  leftovers = q2.Close(/*drain=*/false);
  EXPECT_EQ(leftovers, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(q2.Pop().has_value());
  EXPECT_TRUE(q2.Close(/*drain=*/false).empty());  // idempotent
}

TEST(BoundedQueueTest, ZeroCapacityIsBumpedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  q.Close(/*drain=*/true);
}

// ---------------------------------------------------------------------------
// Shared CST fixtures

cst::Cst BuildFigureOneCst() {
  const tree::Tree data = testutil::FigureOneTree();
  const auto pst = suffix::PathSuffixTree::Build(data);
  cst::CstOptions copt;
  copt.space_budget_bytes = 1 << 20;  // keep everything
  return cst::Cst::Build(data, pst, copt);
}

/// A larger generated corpus, so concurrent tests exercise real work.
struct Corpus {
  tree::Tree data;
  size_t xml_bytes;
  suffix::PathSuffixTree pst;

  Corpus() {
    data::DblpOptions gen;
    gen.target_bytes = 96 * 1024;
    data = data::GenerateDblp(gen);
    xml_bytes = xml::XmlByteSize(data);
    pst = suffix::PathSuffixTree::Build(data);
  }

  cst::Cst BuildCst(double fraction) const {
    cst::CstOptions copt;
    copt.space_budget_bytes =
        static_cast<size_t>(fraction * static_cast<double>(xml_bytes));
    return cst::Cst::Build(data, pst, copt);
  }
};

const Corpus& SharedCorpus() {
  static const Corpus* corpus = new Corpus();
  return *corpus;
}

query::Twig MustParse(const char* text) {
  Result<query::Twig> twig = query::ParseTwig(text);
  EXPECT_TRUE(twig.ok()) << text;
  return std::move(twig).value();
}

// ---------------------------------------------------------------------------
// SnapshotCatalog

TEST(SnapshotCatalogTest, EmptyUntilFirstPublish) {
  SnapshotCatalog catalog;
  EXPECT_EQ(catalog.Current(), nullptr);
  EXPECT_EQ(catalog.version(), 0u);
  EXPECT_FALSE(catalog.rebuild_in_flight());
  EXPECT_TRUE(catalog.WaitForRebuild().ok());  // no rebuild ever ran
}

TEST(SnapshotCatalogTest, PublishAssignsMonotoneVersionsAndMetadata) {
  SnapshotCatalog catalog;
  EXPECT_EQ(catalog.Publish(BuildFigureOneCst(), "first", 0.25), 1u);
  EXPECT_EQ(catalog.Publish(BuildFigureOneCst(), "second"), 2u);
  std::shared_ptr<const CstSnapshot> current = catalog.Current();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, 2u);
  EXPECT_EQ(current->source, "second");
  EXPECT_EQ(catalog.version(), 2u);
}

TEST(SnapshotCatalogTest, ReadersStayPinnedAcrossPublish) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  std::shared_ptr<const CstSnapshot> pinned = catalog.Current();
  const query::Twig twig = MustParse("book(author, year)");
  const double before =
      core::TwigEstimator(&pinned->summary)
          .Estimate(twig, core::Algorithm::kMsh);
  catalog.Publish(BuildFigureOneCst(), "v2");
  EXPECT_EQ(catalog.version(), 2u);
  // The pinned snapshot still answers, identically, after the swap.
  EXPECT_EQ(pinned->version, 1u);
  const double after =
      core::TwigEstimator(&pinned->summary)
          .Estimate(twig, core::Algorithm::kMsh);
  EXPECT_EQ(before, after);
}

TEST(SnapshotCatalogTest, BackgroundRebuildPublishesOnSuccess) {
  SnapshotCatalog catalog;
  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(BuildFigureOneCst()); }, "background"));
  EXPECT_TRUE(catalog.WaitForRebuild().ok());
  std::shared_ptr<const CstSnapshot> current = catalog.Current();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, 1u);
  EXPECT_EQ(current->source, "background");
  EXPECT_GE(current->build_seconds, 0.0);
}

TEST(SnapshotCatalogTest, FailedRebuildLeavesCatalogUntouched) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "good");
  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(Status::Corruption("bad blob")); },
      "doomed"));
  const Status status = catalog.WaitForRebuild();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(catalog.version(), 1u);
  EXPECT_EQ(catalog.Current()->source, "good");
}

TEST(SnapshotCatalogTest, SecondRebuildRefusedWhileInFlight) {
  SnapshotCatalog catalog;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ASSERT_TRUE(catalog.BeginRebuild(
      [gate] {
        gate.wait();
        return Result<cst::Cst>(BuildFigureOneCst());
      },
      "slow"));
  EXPECT_TRUE(catalog.rebuild_in_flight());
  EXPECT_FALSE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(BuildFigureOneCst()); }, "refused"));
  release.set_value();
  EXPECT_TRUE(catalog.WaitForRebuild().ok());
  EXPECT_EQ(catalog.Current()->source, "slow");
  // With the first rebuild landed, a new one is accepted again.
  ASSERT_TRUE(catalog.BeginRebuild(
      [] { return Result<cst::Cst>(BuildFigureOneCst()); }, "second"));
  EXPECT_TRUE(catalog.WaitForRebuild().ok());
  EXPECT_EQ(catalog.version(), 2u);
}

// The concurrent-swap guarantee: readers pinned on version N keep
// producing bit-identical estimates (and never touch freed memory —
// run under ASan via the verify-asan workflow) while version N+1
// publishes and the catalog drops its reference to N.
TEST(SnapshotCatalogTest, ConcurrentSwapKeepsPinnedReadersBitIdentical) {
  const Corpus& corpus = SharedCorpus();
  SnapshotCatalog catalog;
  catalog.Publish(corpus.BuildCst(0.02), "v1");

  const query::Twig twig = MustParse("article(author, year)");
  std::shared_ptr<const CstSnapshot> reference = catalog.Current();
  const double expected =
      core::TwigEstimator(&reference->summary)
          .Estimate(twig, core::Algorithm::kMsh);

  constexpr size_t kReaders = 4;
  constexpr int kRoundsPerReader = 50;
  std::atomic<bool> mismatch{false};
  std::atomic<size_t> pinned_old{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int round = 0; round < kRoundsPerReader; ++round) {
        std::shared_ptr<const CstSnapshot> pinned = catalog.Current();
        if (pinned->version == 1) {
          pinned_old.fetch_add(1);
          const double got = core::TwigEstimator(&pinned->summary)
                                 .Estimate(twig, core::Algorithm::kMsh);
          // Bit-identical: the snapshot is immutable, so a pinned
          // reader must reproduce the pre-swap estimate exactly.
          if (got != expected) mismatch.store(true);
        }
      }
    });
  }
  // Publish v2 (a different space budget: different CST contents) while
  // the readers are mid-loop, then drop our own v1 pin so the readers'
  // pins are the only thing keeping v1 alive.
  catalog.Publish(corpus.BuildCst(0.05), "v2");
  reference.reset();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_GT(pinned_old.load(), 0u);  // the race window was real
  EXPECT_EQ(catalog.version(), 2u);
}

// ---------------------------------------------------------------------------
// EstimateService

EstimateRequest MakeRequest(const char* text,
                            core::Algorithm algorithm = core::Algorithm::kMsh) {
  EstimateRequest request;
  request.twig = MustParse(text);
  request.algorithm = algorithm;
  return request;
}

TEST(EstimateServiceTest, ServedEstimatesMatchDirectEstimatorCalls) {
  const Corpus& corpus = SharedCorpus();
  SnapshotCatalog catalog;
  catalog.Publish(corpus.BuildCst(0.02), "v1");
  ServiceOptions options;
  options.num_workers = 2;
  EstimateService service(&catalog, options);

  const std::shared_ptr<const CstSnapshot> snapshot = catalog.Current();
  const core::TwigEstimator direct(&snapshot->summary);
  for (const char* text : {"article(author, year)", "article.title",
                           "inproceedings(author, pages)", "book.publisher"}) {
    for (core::Algorithm algorithm :
         {core::Algorithm::kMsh, core::Algorithm::kMo,
          core::Algorithm::kGreedy}) {
      EstimateResponse response =
          service.SubmitAndWait(MakeRequest(text, algorithm));
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_EQ(response.estimate,
                direct.Estimate(MustParse(text), algorithm))
          << text << " via " << core::AlgorithmName(algorithm);
      EXPECT_EQ(response.snapshot_version, 1u);
      EXPECT_GE(response.queue_wait.count(), 0);
      EXPECT_GT(response.exec_time.count(), 0);
    }
  }
}

TEST(EstimateServiceTest, NoSnapshotYieldsUnavailable) {
  SnapshotCatalog catalog;
  EstimateService service(&catalog);
  EstimateResponse response =
      service.SubmitAndWait(MakeRequest("article.author"));
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
}

/// Holds the first dequeued request until released, so tests can fill
/// the queue deterministically behind it.
class WorkerGate {
 public:
  ServiceOptions Options(size_t queue_capacity) {
    ServiceOptions options;
    options.num_workers = 1;
    options.queue_capacity = queue_capacity;
    options.dequeue_hook = [this] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (armed_) {
        held_ = true;
        held_cv_.notify_all();
        release_cv_.wait(lock, [&] { return !armed_; });
      }
    };
    return options;
  }

  /// Blocks until a worker is parked inside the hook.
  void AwaitHeld() {
    std::unique_lock<std::mutex> lock(mutex_);
    held_cv_.wait(lock, [&] { return held_; });
  }

  void Release() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      armed_ = false;
    }
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable held_cv_;
  std::condition_variable release_cv_;
  bool armed_ = true;
  bool held_ = false;
};

TEST(EstimateServiceTest, FullQueueRejectsWithStructuredOverload) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  WorkerGate gate;
  EstimateService service(&catalog, gate.Options(/*queue_capacity=*/1));

  // First request parks the only worker; second fills the queue; the
  // third must be rejected immediately with a structured overload.
  std::future<EstimateResponse> in_flight =
      service.Submit(MakeRequest("book.author"));
  gate.AwaitHeld();
  std::future<EstimateResponse> queued =
      service.Submit(MakeRequest("book.author"));
  EstimateResponse overloaded =
      service.SubmitAndWait(MakeRequest("book.author"));
  EXPECT_EQ(overloaded.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(overloaded.status.message().find("overloaded"),
            std::string::npos);

  gate.Release();
  EXPECT_TRUE(in_flight.get().status.ok());
  EXPECT_TRUE(queued.get().status.ok());
}

TEST(EstimateServiceTest, ExpiredDeadlineIsAMissNotAnEstimate) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  EstimateService service(&catalog);
  EstimateRequest request = MakeRequest("book.author");
  request.deadline = Clock::now() - milliseconds(1);
  EstimateResponse response = service.SubmitAndWait(std::move(request));
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);

  // The default deadline applies to requests that carry none.
  ServiceOptions options;
  options.num_workers = 1;
  options.default_deadline = milliseconds(1);
  options.dequeue_hook = [] {
    std::this_thread::sleep_for(milliseconds(50));
  };
  EstimateService slow(&catalog, options);
  response = slow.SubmitAndWait(MakeRequest("book.author"));
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(EstimateServiceTest, ShutdownWithDrainAnswersEverythingAdmitted) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  WorkerGate gate;
  EstimateService service(&catalog, gate.Options(/*queue_capacity=*/8));

  std::future<EstimateResponse> first =
      service.Submit(MakeRequest("book.author"));
  gate.AwaitHeld();
  std::vector<std::future<EstimateResponse>> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(service.Submit(MakeRequest("book.author")));
  }
  std::thread closer([&] { service.Shutdown(/*drain=*/true); });
  gate.Release();
  closer.join();
  EXPECT_TRUE(first.get().status.ok());
  for (auto& f : queued) EXPECT_TRUE(f.get().status.ok());
  // After shutdown, new submissions reject without blocking.
  EstimateResponse late = service.SubmitAndWait(MakeRequest("book.author"));
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
}

TEST(EstimateServiceTest, ShutdownWithoutDrainRejectsTheQueuedRemainder) {
  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  WorkerGate gate;
  EstimateService service(&catalog, gate.Options(/*queue_capacity=*/8));

  std::future<EstimateResponse> first =
      service.Submit(MakeRequest("book.author"));
  gate.AwaitHeld();
  std::vector<std::future<EstimateResponse>> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(service.Submit(MakeRequest("book.author")));
  }
  std::thread closer([&] { service.Shutdown(/*drain=*/false); });
  // Shutdown(drop) empties the queue into rejections while the worker
  // is still parked; release the gate only once that has happened, so
  // no queued request can sneak through and get served.
  while (service.queue_depth() != 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  gate.Release();
  closer.join();
  // The in-flight request completes; the queued remainder is rejected —
  // but every admitted future resolves either way.
  EXPECT_TRUE(first.get().status.ok());
  for (auto& f : queued) {
    EstimateResponse response = f.get();
    EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  }
}

TEST(EstimateServiceTest, StagesFeedTheMetricsRegistry) {
  auto& registry = obs::MetricsRegistry::Get();
  const obs::MetricsSnapshot before = registry.Snapshot();

  SnapshotCatalog catalog;
  catalog.Publish(BuildFigureOneCst(), "v1");
  EstimateService service(&catalog);
  ASSERT_TRUE(
      service.SubmitAndWait(MakeRequest("book(author, year)")).status.ok());
  EstimateRequest expired = MakeRequest("book.author");
  expired.deadline = Clock::now() - milliseconds(1);
  service.SubmitAndWait(std::move(expired));
  service.Shutdown(/*drain=*/true);
  service.SubmitAndWait(MakeRequest("book.author"));  // rejected

  const obs::MetricsSnapshot delta = registry.Snapshot().Delta(before);
  const auto count = [&](obs::Counter c) {
    return delta.counters[static_cast<size_t>(c)];
  };
  EXPECT_GE(count(obs::Counter::kSnapshotPublishes), 1u);
  EXPECT_GE(count(obs::Counter::kServeEnqueued), 2u);
  EXPECT_GE(count(obs::Counter::kServeServed), 1u);
  EXPECT_GE(count(obs::Counter::kServeDeadlineMisses), 1u);
  EXPECT_GE(count(obs::Counter::kServeRejected), 1u);
  EXPECT_GE(delta.latency[obs::kServeWaitSeries].count, 2u);
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(WireTest, ParseAlgorithmNameCoversAllAlgorithms) {
  for (core::Algorithm algorithm : core::kAllAlgorithms) {
    core::Algorithm parsed;
    ASSERT_TRUE(ParseAlgorithmName(core::AlgorithmName(algorithm), &parsed));
    EXPECT_EQ(parsed, algorithm);
  }
  core::Algorithm parsed;
  EXPECT_FALSE(ParseAlgorithmName("msh", &parsed));  // case-sensitive
  EXPECT_FALSE(ParseAlgorithmName("", &parsed));
}

TEST(WireTest, ParseRequestReadsAllFieldsAndAppliesDefaults) {
  Result<WireRequest> r = ParseRequest(
      "{\"op\":\"estimate\",\"id\":7,\"query\":\"a(b, c)\",\"algo\":\"MO\","
      "\"semantics\":\"presence\",\"deadline_ms\":250.5,\"space\":0.05,"
      "\"future_field\":[1,2]}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->op, "estimate");
  EXPECT_TRUE(r->has_id);
  EXPECT_EQ(r->id, 7u);
  EXPECT_EQ(r->query, "a(b, c)");
  EXPECT_EQ(r->algorithm, core::Algorithm::kMo);
  EXPECT_EQ(r->semantics, core::CountSemantics::kPresence);
  EXPECT_DOUBLE_EQ(r->deadline_ms, 250.5);
  EXPECT_DOUBLE_EQ(r->space, 0.05);

  r = ParseRequest("{\"op\":\"ping\"}");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_id);
  EXPECT_EQ(r->algorithm, core::Algorithm::kMsh);
  EXPECT_EQ(r->semantics, core::CountSemantics::kOccurrence);
  EXPECT_DOUBLE_EQ(r->deadline_ms, 0.0);
}

TEST(WireTest, ParseRequestRejectsMalformedRequests) {
  for (const char* bad : {
           "not json",
           "[1,2,3]",                               // not an object
           "{}",                                    // missing op
           "{\"op\":3}",                            // op not a string
           "{\"op\":\"ping\",\"id\":-1}",           // negative id
           "{\"op\":\"ping\",\"id\":\"x\"}",        // id not a number
           "{\"op\":\"estimate\",\"query\":1}",     // query not a string
           "{\"op\":\"estimate\",\"algo\":\"nope\"}",
           "{\"op\":\"estimate\",\"semantics\":\"sometimes\"}",
           "{\"op\":\"estimate\",\"deadline_ms\":-5}",
           "{\"op\":\"swap\",\"space\":-0.1}",
       }) {
    Result<WireRequest> r = ParseRequest(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
  }
}

TEST(WireTest, ResponsesEncodeTheDocumentedSchema) {
  WireRequest request;
  request.op = "estimate";
  request.has_id = true;
  request.id = 42;
  request.algorithm = core::Algorithm::kMsh;

  EstimateResponse ok;
  ok.status = Status::OK();
  ok.estimate = 17.25;
  ok.snapshot_version = 3;
  ok.queue_wait = std::chrono::nanoseconds(1500);
  ok.exec_time = std::chrono::nanoseconds(2500);
  Result<obs::JsonValue> parsed =
      obs::ParseJson(EstimateWireResponse(request, ok));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->GetNumber("id"), 42);
  EXPECT_TRUE(parsed->GetBool("ok"));
  EXPECT_EQ(parsed->GetString("op"), "estimate");
  EXPECT_DOUBLE_EQ(parsed->GetNumber("estimate"), 17.25);
  EXPECT_EQ(parsed->GetString("algo"), "MSH");
  EXPECT_DOUBLE_EQ(parsed->GetNumber("version"), 3);
  EXPECT_DOUBLE_EQ(parsed->GetNumber("wait_us"), 1.5);
  EXPECT_DOUBLE_EQ(parsed->GetNumber("exec_us"), 2.5);

  EstimateResponse failed;
  failed.status = Status::Unavailable("overloaded: request queue is full");
  parsed = obs::ParseJson(EstimateWireResponse(request, failed));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBool("ok", true));
  const obs::JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetString("code"), "Unavailable");
  EXPECT_EQ(error->GetString("message"), "overloaded: request queue is full");

  // A line that never parsed gets an error response with no id echo.
  parsed = obs::ParseJson(
      ErrorResponse(nullptr, Status::ParseError("unrecognized JSON token")));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("id"), nullptr);
  EXPECT_FALSE(parsed->GetBool("ok", true));

  // Metrics responses embed the registry export as a nested document.
  WireRequest metrics_request;
  metrics_request.op = "metrics";
  parsed = obs::ParseJson(MetricsResponse(
      metrics_request, obs::MetricsRegistry::Get().Snapshot().ToJson(),
      /*version=*/1, /*queue_depth=*/0, /*queue_capacity=*/256));
  ASSERT_TRUE(parsed.ok());
  const obs::JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->Find("counters"), nullptr);
}

// ---------------------------------------------------------------------------
// TCP front-end (loopback)

/// Minimal blocking line-protocol client for the tests.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = fd_ >= 0 &&
                 connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0;
  }

  ~TestClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  /// Sends one line, returns the one-line response (empty on EOF).
  std::string RoundTrip(const std::string& request) {
    std::string line = request + "\n";
    if (send(fd_, line.data(), line.size(), MSG_NOSIGNAL) < 0) return "";
    return ReadLine();
  }

  std::string ReadLine() {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

obs::JsonValue MustParseJson(const std::string& text) {
  Result<obs::JsonValue> parsed = obs::ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return parsed.ok() ? std::move(parsed).value() : obs::JsonValue{};
}

class TcpFrontEndTest : public ::testing::Test {
 protected:
  void StartServer(TcpOptions options = {}) {
    catalog_.Publish(SharedCorpus().BuildCst(0.02), "v1");
    ServiceOptions sopt;
    sopt.num_workers = 2;
    service_.emplace(&catalog_, sopt);
    options.port = 0;  // ephemeral
    front_end_.emplace(&catalog_, &*service_, options);
    ASSERT_TRUE(front_end_->Start().ok());
  }

  void TearDown() override {
    if (front_end_.has_value()) front_end_->Stop();
  }

  SnapshotCatalog catalog_;
  std::optional<EstimateService> service_;
  std::optional<TcpFrontEnd> front_end_;
};

TEST_F(TcpFrontEndTest, AnswersTheCoreOpsOverLoopback) {
  StartServer();
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());

  obs::JsonValue pong =
      MustParseJson(client.RoundTrip("{\"op\":\"ping\",\"id\":1}"));
  EXPECT_TRUE(pong.GetBool("ok"));
  EXPECT_DOUBLE_EQ(pong.GetNumber("id"), 1);
  EXPECT_DOUBLE_EQ(pong.GetNumber("version"), 1);

  // A served estimate equals the direct estimator call bit for bit.
  const std::shared_ptr<const CstSnapshot> snapshot = catalog_.Current();
  const double expected =
      core::TwigEstimator(&snapshot->summary)
          .Estimate(MustParse("article(author, year)"),
                    core::Algorithm::kMsh);
  obs::JsonValue estimate = MustParseJson(client.RoundTrip(
      "{\"op\":\"estimate\",\"id\":2,\"query\":\"article(author, year)\","
      "\"algo\":\"MSH\"}"));
  EXPECT_TRUE(estimate.GetBool("ok"));
  EXPECT_EQ(estimate.GetNumber("estimate"), expected);
  EXPECT_DOUBLE_EQ(estimate.GetNumber("version"), 1);

  obs::JsonValue explain = MustParseJson(client.RoundTrip(
      "{\"op\":\"explain\",\"id\":3,\"query\":\"article.author\"}"));
  EXPECT_TRUE(explain.GetBool("ok"));
  const obs::JsonValue* trace = explain.Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->GetString("query"), "article.author");

  obs::JsonValue metrics =
      MustParseJson(client.RoundTrip("{\"op\":\"metrics\",\"id\":4}"));
  EXPECT_TRUE(metrics.GetBool("ok"));
  ASSERT_NE(metrics.Find("metrics"), nullptr);
  EXPECT_NE(metrics.Find("metrics")->Find("counters"), nullptr);
}

TEST_F(TcpFrontEndTest, BadInputGetsStructuredErrorsNotDisconnects) {
  StartServer();
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());

  obs::JsonValue error = MustParseJson(client.RoundTrip("this is not json"));
  EXPECT_FALSE(error.GetBool("ok", true));
  EXPECT_EQ(error.Find("error")->GetString("code"), "ParseError");

  error = MustParseJson(client.RoundTrip("{\"op\":\"frobnicate\",\"id\":9}"));
  EXPECT_FALSE(error.GetBool("ok", true));
  EXPECT_DOUBLE_EQ(error.GetNumber("id"), 9);  // id echoes on errors too
  EXPECT_EQ(error.Find("error")->GetString("code"), "InvalidArgument");

  error = MustParseJson(
      client.RoundTrip("{\"op\":\"estimate\",\"query\":\"((bad\"}"));
  EXPECT_FALSE(error.GetBool("ok", true));

  // Swap without a configured rebuild source is Unimplemented.
  error = MustParseJson(client.RoundTrip("{\"op\":\"swap\",\"id\":10}"));
  EXPECT_EQ(error.Find("error")->GetString("code"), "Unimplemented");

  // The connection survived all of the above.
  EXPECT_TRUE(
      MustParseJson(client.RoundTrip("{\"op\":\"ping\"}")).GetBool("ok"));
}

TEST_F(TcpFrontEndTest, OversizedLinesCloseTheConnectionWithAnError) {
  TcpOptions options;
  options.max_line_bytes = 128;
  StartServer(options);
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());
  const std::string huge(4096, 'x');  // no newline: exceeds the buffer cap
  obs::JsonValue error = MustParseJson(client.RoundTrip(huge));
  EXPECT_FALSE(error.GetBool("ok", true));
  EXPECT_EQ(error.Find("error")->GetString("code"), "InvalidArgument");
  EXPECT_EQ(client.ReadLine(), "");  // then the server hangs up
}

TEST_F(TcpFrontEndTest, SwapRebuildsAndPublishesANewVersion) {
  TcpOptions options;
  options.rebuild = [](double space) {
    return Result<cst::Cst>(
        SharedCorpus().BuildCst(space > 0 ? space : 0.02));
  };
  StartServer(options);
  TestClient client(front_end_->port());
  ASSERT_TRUE(client.connected());

  obs::JsonValue swapped = MustParseJson(
      client.RoundTrip("{\"op\":\"swap\",\"id\":1,\"space\":0.05}"));
  EXPECT_TRUE(swapped.GetBool("ok"));
  EXPECT_DOUBLE_EQ(swapped.GetNumber("version"), 2);
  EXPECT_EQ(catalog_.version(), 2u);

  // Estimates now come from the new snapshot.
  obs::JsonValue estimate = MustParseJson(client.RoundTrip(
      "{\"op\":\"estimate\",\"id\":2,\"query\":\"article.author\"}"));
  EXPECT_TRUE(estimate.GetBool("ok"));
  EXPECT_DOUBLE_EQ(estimate.GetNumber("version"), 2);
}

TEST_F(TcpFrontEndTest, ShutdownOpStopsWaitForShutdown) {
  StartServer();
  std::thread waiter([&] { front_end_->WaitForShutdown(); });
  {
    TestClient client(front_end_->port());
    ASSERT_TRUE(client.connected());
    obs::JsonValue bye =
        MustParseJson(client.RoundTrip("{\"op\":\"shutdown\",\"id\":1}"));
    EXPECT_TRUE(bye.GetBool("ok"));
    EXPECT_TRUE(bye.GetBool("stopping"));
  }
  waiter.join();  // returns only because the op requested the stop
  front_end_->Stop();  // idempotent after WaitForShutdown's teardown
}

// ---------------------------------------------------------------------------
// End-to-end: concurrent clients, hot swap mid-run, exact answers

TEST(ServeEndToEndTest, ConcurrentLoadSurvivesAHotSwapWithExactAnswers) {
  const Corpus& corpus = SharedCorpus();
  SnapshotCatalog catalog;
  catalog.Publish(corpus.BuildCst(0.02), "v1");
  ServiceOptions sopt;
  sopt.num_workers = 2;
  EstimateService service(&catalog, sopt);
  TcpOptions topt;
  topt.rebuild = [&corpus](double) {
    return Result<cst::Cst>(corpus.BuildCst(0.05));
  };
  TcpFrontEnd front_end(&catalog, &service, topt);
  ASSERT_TRUE(front_end.Start().ok());

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Get().Snapshot();
  const query::Twig twig = MustParse("article(author, year)");
  // Ground truth per version, pinned before and after the swap.
  const double expected_v1 =
      core::TwigEstimator(&catalog.Current()->summary)
          .Estimate(twig, core::Algorithm::kMsh);

  constexpr size_t kClients = 4;
  constexpr size_t kRequestsPerClient = 100;
  std::atomic<size_t> transport_errors{0};
  std::atomic<size_t> served{0};
  std::atomic<size_t> structured_errors{0};
  std::mutex mutex;
  std::map<uint64_t, std::vector<double>> estimates_by_version;

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      TestClient client(front_end.port());
      if (!client.connected()) {
        transport_errors.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < kRequestsPerClient; ++i) {
        const std::string response = client.RoundTrip(
            "{\"op\":\"estimate\",\"query\":\"article(author, year)\","
            "\"algo\":\"MSH\"}");
        Result<obs::JsonValue> parsed = obs::ParseJson(response);
        if (!parsed.ok()) {
          transport_errors.fetch_add(1);
          continue;
        }
        if (parsed->GetBool("ok")) {
          served.fetch_add(1);
          std::lock_guard<std::mutex> lock(mutex);
          estimates_by_version[static_cast<uint64_t>(
                                   parsed->GetNumber("version"))]
              .push_back(parsed->GetNumber("estimate"));
        } else if (parsed->Find("error") != nullptr) {
          structured_errors.fetch_add(1);  // overloads are answers too
        } else {
          transport_errors.fetch_add(1);
        }
      }
    });
  }

  // Hot swap roughly mid-run, over the wire like any other client.
  TestClient swapper(front_end.port());
  ASSERT_TRUE(swapper.connected());
  obs::JsonValue swapped =
      MustParseJson(swapper.RoundTrip("{\"op\":\"swap\",\"id\":1}"));
  EXPECT_TRUE(swapped.GetBool("ok"));
  const double expected_v2 =
      core::TwigEstimator(&catalog.Current()->summary)
          .Estimate(twig, core::Algorithm::kMsh);

  for (std::thread& t : clients) t.join();
  front_end.Stop();
  service.Shutdown(/*drain=*/true);

  EXPECT_EQ(transport_errors.load(), 0u);
  EXPECT_EQ(served.load() + structured_errors.load(),
            kClients * kRequestsPerClient);
  EXPECT_GT(served.load(), 0u);
  // Every served estimate matches the direct estimator on the exact
  // snapshot version that served it — bit for bit, swap or no swap.
  for (const auto& [version, estimates] : estimates_by_version) {
    ASSERT_TRUE(version == 1 || version == 2) << version;
    const double expected = version == 1 ? expected_v1 : expected_v2;
    for (double estimate : estimates) EXPECT_EQ(estimate, expected);
  }
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Get().Snapshot().Delta(before);
  const auto count = [&](obs::Counter c) {
    return delta.counters[static_cast<size_t>(c)];
  };
  EXPECT_GE(count(obs::Counter::kServeEnqueued), served.load());
  EXPECT_GE(count(obs::Counter::kServeServed), served.load());
  EXPECT_GE(count(obs::Counter::kSnapshotPublishes), 1u);
}

}  // namespace
}  // namespace twig::serve
