// End-to-end tests across modules: XML -> tree -> suffix tree -> CST ->
// estimators vs the exact matcher, on generated corpora.

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "cst/cst.h"
#include "data/generators.h"
#include "exp/harness.h"
#include "match/matcher.h"
#include "query/twig.h"
#include "suffix/path_suffix_tree.h"
#include "workload/workload.h"
#include "xml/xml.h"

namespace twig {
namespace {

TEST(IntegrationTest, XmlRoundTripPreservesCounts) {
  data::DblpOptions options;
  options.target_bytes = 32 * 1024;
  tree::Tree original = data::GenerateDblp(options);
  auto reparsed = xml::ParseXml(xml::WriteXml(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->size(), original.size());
  auto twig = query::ParseTwig("article(author, year)");
  ASSERT_TRUE(twig.ok());
  const auto a = match::CountTwigMatches(original, *twig).value();
  const auto b = match::CountTwigMatches(*reparsed, *twig).value();
  EXPECT_DOUBLE_EQ(a.occurrence, b.occurrence);
  EXPECT_DOUBLE_EQ(a.presence, b.presence);
}

TEST(IntegrationTest, UnprunedCstIsExactOnSinglePaths) {
  data::DblpOptions options;
  options.target_bytes = 24 * 1024;
  tree::Tree data = data::GenerateDblp(options);
  auto pst = suffix::PathSuffixTree::Build(data);
  cst::CstOptions copt;
  copt.prune_threshold = 1;
  cst::Cst summary = cst::Cst::Build(data, pst, copt);
  core::TwigEstimator estimator(&summary);

  workload::WorkloadOptions wopt;
  wopt.num_queries = 40;
  wopt.seed = 5;
  // Keep predicates within the indexed value prefix.
  wopt.max_value_chars = static_cast<int>(copt.max_value_chars);
  workload::Workload wl = workload::GenerateTrivial(data, wopt);
  ASSERT_EQ(wl.size(), 40u);
  for (const auto& wq : wl) {
    const double est = estimator.Estimate(wq.twig, core::Algorithm::kMo);
    EXPECT_NEAR(est, wq.truth.occurrence, 1e-6)
        << query::FormatTwig(wq.twig);
  }
}

TEST(IntegrationTest, EstimatorsTrackTruthOnUnprunedCst) {
  data::DblpOptions options;
  options.target_bytes = 24 * 1024;
  tree::Tree data = data::GenerateDblp(options);
  auto pst = suffix::PathSuffixTree::Build(data);
  cst::CstOptions copt;
  copt.prune_threshold = 1;
  copt.signature_length = 256;  // sharp signatures for this test
  cst::Cst summary = cst::Cst::Build(data, pst, copt);
  core::TwigEstimator estimator(&summary);

  workload::WorkloadOptions wopt;
  wopt.num_queries = 60;
  wopt.seed = 6;
  wopt.root_at_top_probability = 0;  // record-rooted joint queries
  workload::Workload wl = workload::GeneratePositive(data, wopt);
  stats::ErrorAccumulator msh_err;
  stats::ErrorAccumulator greedy_err;
  for (const auto& wq : wl) {
    msh_err.Add(wq.truth.occurrence,
                estimator.Estimate(wq.twig, core::Algorithm::kMsh));
    greedy_err.Add(wq.truth.occurrence,
                   estimator.Estimate(wq.twig, core::Algorithm::kGreedy));
  }
  // With a full CST and long signatures, MSH should be far more
  // accurate than the Greedy baseline, which ignores correlations.
  EXPECT_LT(msh_err.AvgRelativeError(), 0.6);
  EXPECT_GT(greedy_err.AvgRelativeError(),
            2 * msh_err.AvgRelativeError());
}

TEST(IntegrationTest, PrunedEstimatesDegradeGracefully) {
  data::DblpOptions options;
  options.target_bytes = 64 * 1024;
  tree::Tree data = data::GenerateDblp(options);
  auto pst = suffix::PathSuffixTree::Build(data);
  const size_t xml_bytes = xml::XmlByteSize(data);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 40;
  wopt.seed = 7;
  workload::Workload wl = workload::GeneratePositive(data, wopt);

  double prev_err = -1;
  for (double fraction : {0.01, 0.08, 0.5}) {
    cst::CstOptions copt;
    copt.space_budget_bytes =
        static_cast<size_t>(fraction * static_cast<double>(xml_bytes));
    cst::Cst summary = cst::Cst::Build(data, pst, copt);
    core::TwigEstimator estimator(&summary);
    stats::ErrorAccumulator err;
    for (const auto& wq : wl) {
      err.Add(wq.truth.occurrence,
              estimator.Estimate(wq.twig, core::Algorithm::kMsh));
    }
    if (prev_err >= 0) {
      // More space never makes things dramatically worse.
      EXPECT_LT(err.AvgRelativeError(), prev_err + 0.35);
    }
    prev_err = err.AvgRelativeError();
  }
}

TEST(IntegrationTest, NegativeQueryEstimatesAreSmall) {
  data::DblpOptions options;
  options.target_bytes = 64 * 1024;
  tree::Tree data = data::GenerateDblp(options);
  auto pst = suffix::PathSuffixTree::Build(data);
  cst::CstOptions copt;
  copt.prune_threshold = 1;
  cst::Cst summary = cst::Cst::Build(data, pst, copt);
  core::TwigEstimator estimator(&summary);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 30;
  wopt.seed = 8;
  workload::Workload wl = workload::GenerateNegative(data, wopt);
  for (const auto& wq : wl) {
    const double est = estimator.Estimate(wq.twig, core::Algorithm::kMsh);
    // True count is 0; estimates stay well below typical positive
    // counts (thousands).
    EXPECT_LT(est, 100.0) << query::FormatTwig(wq.twig);
  }
}

TEST(IntegrationTest, HarnessEvaluatesAllAlgorithms) {
  exp::Dataset ds = exp::MakeDataset(exp::DatasetKind::kDblp, 48 * 1024, 9);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 20;
  wopt.seed = 10;
  workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);
  cst::Cst summary = exp::BuildCstAtFraction(ds, 0.05);
  auto evals = exp::EvaluateAll(summary, wl);
  ASSERT_EQ(evals.size(), core::kAllAlgorithms.size());
  for (const auto& eval : evals) {
    EXPECT_EQ(eval.errors.count(), wl.size());
    EXPECT_EQ(eval.ratios.count(), wl.size());
  }
}

TEST(IntegrationTest, SerializedCstGivesIdenticalEstimates) {
  data::DblpOptions options;
  options.target_bytes = 48 * 1024;
  tree::Tree data = data::GenerateDblp(options);
  auto pst = suffix::PathSuffixTree::Build(data);
  cst::CstOptions copt;
  copt.space_budget_bytes = xml::XmlByteSize(data) / 20;
  cst::Cst original = cst::Cst::Build(data, pst, copt);
  auto restored = cst::Cst::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  core::TwigEstimator before(&original);
  core::TwigEstimator after(&*restored);
  workload::WorkloadOptions wopt;
  wopt.num_queries = 25;
  wopt.seed = 14;
  wopt.compute_true_counts = false;
  for (const auto& wq : workload::GeneratePositive(data, wopt)) {
    for (core::Algorithm a : core::kAllAlgorithms) {
      EXPECT_DOUBLE_EQ(before.Estimate(wq.twig, a), after.Estimate(wq.twig, a))
          << core::AlgorithmName(a) << " on " << query::FormatTwig(wq.twig);
    }
  }
}

TEST(IntegrationTest, SwissProtPipelineWorks) {
  exp::Dataset ds =
      exp::MakeDataset(exp::DatasetKind::kSwissProt, 64 * 1024, 12);
  EXPECT_EQ(ds.name, "swissprot");
  workload::WorkloadOptions wopt;
  wopt.num_queries = 15;
  wopt.seed = 13;
  workload::Workload wl = workload::GeneratePositive(ds.tree, wopt);
  ASSERT_EQ(wl.size(), 15u);
  cst::Cst summary = exp::BuildCstAtFraction(ds, 0.1);
  core::TwigEstimator estimator(&summary);
  for (const auto& wq : wl) {
    EXPECT_GE(estimator.Estimate(wq.twig, core::Algorithm::kMsh), 0.0);
  }
}

}  // namespace
}  // namespace twig
