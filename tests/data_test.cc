#include <gtest/gtest.h>

#include <set>
#include <string>

#include "data/generators.h"
#include "data/vocab.h"
#include "tree/tree.h"
#include "util/rng.h"
#include "xml/xml.h"

namespace twig::data {
namespace {

TEST(VocabularyTest, GeneratesDistinctWords) {
  Rng rng(3);
  Vocabulary vocab(500, 1.0, WordStyle::kLowercase, rng);
  std::set<std::string> words;
  for (size_t i = 0; i < vocab.size(); ++i) words.insert(vocab.At(i));
  EXPECT_EQ(words.size(), 500u);
}

TEST(VocabularyTest, CapitalizedStyle) {
  Rng rng(3);
  Vocabulary vocab(50, 0.5, WordStyle::kCapitalized, rng);
  for (size_t i = 0; i < vocab.size(); ++i) {
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(vocab.At(i)[0])))
        << vocab.At(i);
  }
}

TEST(VocabularyTest, ZipfSamplingFavorsLowRanks) {
  Rng rng(5);
  Vocabulary vocab(100, 1.2, WordStyle::kLowercase, rng);
  size_t top = 0;
  for (int i = 0; i < 5000; ++i) {
    if (vocab.Sample(rng) == vocab.At(0)) ++top;
  }
  EXPECT_GT(top, 200u);  // far above the uniform 50
}

TEST(DblpGeneratorTest, HitsTargetSize) {
  DblpOptions options;
  options.target_bytes = 256 * 1024;
  tree::Tree t = GenerateDblp(options);
  const size_t bytes = xml::XmlByteSize(t);
  EXPECT_GE(bytes, options.target_bytes);
  EXPECT_LE(bytes, options.target_bytes + options.target_bytes / 4);
}

TEST(DblpGeneratorTest, DeterministicInSeed) {
  DblpOptions options;
  options.target_bytes = 32 * 1024;
  tree::Tree a = GenerateDblp(options);
  tree::Tree b = GenerateDblp(options);
  EXPECT_EQ(xml::WriteXml(a), xml::WriteXml(b));
  options.seed = 43;
  tree::Tree c = GenerateDblp(options);
  EXPECT_NE(xml::WriteXml(a), xml::WriteXml(c));
}

TEST(DblpGeneratorTest, HasExpectedSchema) {
  DblpOptions options;
  options.target_bytes = 128 * 1024;
  tree::Tree t = GenerateDblp(options);
  EXPECT_EQ(t.LabelName(t.root()), "dblp");
  std::set<std::string> record_tags;
  size_t multi_author_records = 0;
  for (tree::NodeId record : t.Children(t.root())) {
    record_tags.insert(std::string(t.LabelName(record)));
    size_t authors = 0;
    bool has_title = false;
    bool has_year = false;
    for (tree::NodeId field : t.Children(record)) {
      const std::string_view tag = t.LabelName(field);
      if (tag == "author") ++authors;
      if (tag == "title") has_title = true;
      if (tag == "year") has_year = true;
    }
    EXPECT_GE(authors, 1u);
    EXPECT_LE(authors, 5u);
    EXPECT_TRUE(has_title);
    EXPECT_TRUE(has_year);
    if (authors >= 2) ++multi_author_records;
  }
  // All four record types appear, and duplicate sibling labels (the
  // multiset problem) are common.
  EXPECT_EQ(record_tags.count("article"), 1u);
  EXPECT_EQ(record_tags.count("inproceedings"), 1u);
  EXPECT_EQ(record_tags.count("book"), 1u);
  EXPECT_GT(multi_author_records, t.Children(t.root()).size() / 4);
}

TEST(DblpGeneratorTest, CommunityCorrelationPresent) {
  // Authors publish in few journals: the per-author journal
  // distribution must be much narrower than the global one.
  DblpOptions options;
  options.target_bytes = 512 * 1024;
  tree::Tree t = GenerateDblp(options);
  std::map<std::string, std::set<std::string>> journals_by_author;
  std::set<std::string> all_journals;
  for (tree::NodeId record : t.Children(t.root())) {
    std::string journal;
    std::vector<std::string> authors;
    for (tree::NodeId field : t.Children(record)) {
      const std::string_view tag = t.LabelName(field);
      if (t.Children(field).empty()) continue;
      const std::string_view value = t.Value(t.Children(field)[0]);
      if (tag == "journal") journal = std::string(value);
      if (tag == "author") authors.emplace_back(value);
    }
    if (journal.empty()) continue;
    all_journals.insert(journal);
    for (auto& a : authors) journals_by_author[a].insert(journal);
  }
  ASSERT_GT(all_journals.size(), 10u);
  // Median distinct journals per author is small.
  std::vector<size_t> counts;
  for (auto& [a, js] : journals_by_author) counts.push_back(js.size());
  std::sort(counts.begin(), counts.end());
  EXPECT_LE(counts[counts.size() / 2], all_journals.size() / 4);
}

TEST(SwissProtGeneratorTest, HitsTargetSizeAndSchema) {
  SwissProtOptions options;
  options.target_bytes = 128 * 1024;
  tree::Tree t = GenerateSwissProt(options);
  EXPECT_GE(xml::XmlByteSize(t), options.target_bytes);
  EXPECT_EQ(t.LabelName(t.root()), "sptr");
  // Deeper than DBLP and with more distinct tags per byte.
  tree::TreeStats stats = tree::ComputeStats(t);
  EXPECT_GE(stats.max_depth, 5u);
  EXPECT_GT(stats.distinct_labels, 15u);
}

TEST(SwissProtGeneratorTest, LineageConsistentPerOrganism) {
  SwissProtOptions options;
  options.target_bytes = 256 * 1024;
  tree::Tree t = GenerateSwissProt(options);
  // Same organism name => same lineage (families are stable).
  std::map<std::string, std::string> lineage_by_organism;
  for (tree::NodeId entry : t.Children(t.root())) {
    std::string name;
    std::string lineage;
    for (tree::NodeId c : t.Children(entry)) {
      if (t.LabelName(c) != "organism") continue;
      for (tree::NodeId oc : t.Children(c)) {
        if (t.LabelName(oc) == "name") {
          name = std::string(t.Value(t.Children(oc)[0]));
        } else if (t.LabelName(oc) == "lineage") {
          for (tree::NodeId taxon : t.Children(oc)) {
            lineage += std::string(t.Value(t.Children(taxon)[0]));
            lineage += '/';
          }
        }
      }
    }
    ASSERT_FALSE(name.empty());
    auto [it, inserted] = lineage_by_organism.emplace(name, lineage);
    if (!inserted) EXPECT_EQ(it->second, lineage) << name;
  }
}

TEST(GeneratorComplexityContrast, SwissProtDenserSubpaths) {
  // The SWISS-PROT stand-in must be structurally richer per byte — the
  // paper's reason it needs more summary space.
  DblpOptions dopt;
  dopt.target_bytes = 256 * 1024;
  SwissProtOptions sopt;
  sopt.target_bytes = 256 * 1024;
  tree::Tree dblp = GenerateDblp(dopt);
  tree::Tree sprot = GenerateSwissProt(sopt);
  tree::TreeStats ds = tree::ComputeStats(dblp);
  tree::TreeStats ss = tree::ComputeStats(sprot);
  EXPECT_GT(ss.max_depth, ds.max_depth);
  EXPECT_GT(ss.distinct_labels, ds.distinct_labels);
}

}  // namespace
}  // namespace twig::data
