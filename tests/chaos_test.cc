// Chaos suite (DESIGN.md §14): randomized fault injection across the
// serving path, holding three invariants whatever the fault schedule:
//
//   1. Every admitted request resolves exactly once — an estimate or a
//      structured error, never a hang, never a double answer.
//   2. Answers are never torn: all responses claiming one snapshot
//      version agree bit-for-bit per query, and agree with a direct
//      estimator call pinned on that version.
//   3. A failed rebuild leaves the last good snapshot serving; client
//      retry rides out transient faults with high goodput.
//
// Fault schedules draw from the seeded failpoint Rng, so a failing run
// replays. Run under ASan/TSan via the verify-asan / verify-tsan /
// verify-chaos workflows.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/estimator.h"
#include "cst/cst.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "query/twig.h"
#include "serve/retry.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "suffix/path_suffix_tree.h"
#include "tree/tree.h"
#include "util/failpoint.h"
#include "xml/xml.h"

namespace twig::serve {
namespace {

using std::chrono::milliseconds;

uint64_t CounterValue(obs::Counter counter) {
  return obs::MetricsRegistry::Get().Snapshot().counters[static_cast<size_t>(
      counter)];
}

query::Twig MustParse(const char* text) {
  Result<query::Twig> twig = query::ParseTwig(text);
  EXPECT_TRUE(twig.ok()) << text;
  return std::move(twig).value();
}

EstimateRequest MakeRequest(const char* text) {
  EstimateRequest request;
  request.twig = MustParse(text);
  request.algorithm = core::Algorithm::kMsh;
  return request;
}

/// One generated corpus shared by the suite; CSTs at two space
/// fractions so swaps change real content.
struct ChaosCorpus {
  tree::Tree data;
  size_t xml_bytes;
  suffix::PathSuffixTree pst;

  ChaosCorpus() {
    data::DblpOptions gen;
    gen.target_bytes = 64 * 1024;
    data = data::GenerateDblp(gen);
    xml_bytes = xml::XmlByteSize(data);
    pst = suffix::PathSuffixTree::Build(data);
  }

  cst::Cst BuildCst(double fraction) const {
    cst::CstOptions copt;
    copt.space_budget_bytes =
        static_cast<size_t>(fraction * static_cast<double>(xml_bytes));
    return cst::Cst::Build(data, pst, copt);
  }
};

const ChaosCorpus& Corpus() {
  static const ChaosCorpus* corpus = new ChaosCorpus();
  return *corpus;
}

constexpr const char* kQueries[] = {
    "article(author, year)",
    "article.title",
    "inproceedings(author, pages)",
    "book.publisher",
};

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FailpointRegistry::Get().Reset();
    util::FailpointRegistry::Get().Seed(0xc4a05u);
  }

  void TearDown() override { util::FailpointRegistry::Get().Reset(); }
};

// Invariant 1: with admission and execution faults firing at random,
// every submitted request resolves exactly once, and everything that
// was served matches the direct estimator bit for bit.
TEST_F(ChaosTest, EveryRequestResolvesExactlyOnceUnderInjectedFaults) {
  SnapshotCatalog catalog;
  catalog.Publish(Corpus().BuildCst(0.02), "v1");
  const std::shared_ptr<const CstSnapshot> snapshot = catalog.Current();
  const core::TwigEstimator direct(snapshot->summary.get());
  std::map<std::string, double> expected;
  for (const char* text : kQueries) {
    expected[text] =
        direct.Estimate(MustParse(text), core::Algorithm::kMsh);
  }

  ASSERT_TRUE(util::FailpointRegistry::Get()
                  .ConfigureList("serve/admission=error:0.1,"
                                 "serve/estimate=error:0.2")
                  .ok());
  ServiceOptions options;
  options.num_workers = 2;
  EstimateService service(&catalog, options);

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 200;
  std::atomic<size_t> served{0}, failed{0}, mismatched{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const char* text = kQueries[(t + i) % std::size(kQueries)];
        // SubmitAndWait resolving is itself the exactly-once check: a
        // dropped promise would throw, a hang would time the suite out.
        EstimateResponse response = service.SubmitAndWait(MakeRequest(text));
        if (response.status.ok()) {
          served.fetch_add(1);
          if (response.estimate != expected[text]) mismatched.fetch_add(1);
        } else {
          failed.fetch_add(1);
          // Injected faults surface as transient Unavailable, exactly
          // like an overload — retryable, never a torn answer.
          EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(served.load() + failed.load(), kThreads * kPerThread);
  EXPECT_EQ(mismatched.load(), 0u);
  // At 10% + 20% fault rates both outcomes must actually occur, or the
  // chaos never landed.
  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(failed.load(), 0u);
  EXPECT_GE(util::FailpointRegistry::Get().Info("serve/estimate").triggers,
            1u);
}

// Invariant 2: concurrent swaps — half of them injected to fail — never
// tear a snapshot. Every (version, query) pair seen by any client maps
// to exactly one estimate, and failed rebuilds leave serving intact.
TEST_F(ChaosTest, FaultySwapsNeverTearServedAnswers) {
  SnapshotCatalog catalog;
  catalog.Publish(Corpus().BuildCst(0.02), "v1");
  ASSERT_TRUE(util::FailpointRegistry::Get()
                  .Configure("snapshot/rebuild", "error:0.5")
                  .ok());
  ServiceOptions options;
  options.num_workers = 2;
  EstimateService service(&catalog, options);

  const uint64_t rebuild_failures_before =
      CounterValue(obs::Counter::kRebuildFailures);
  std::atomic<bool> stop{false};
  std::mutex mutex;
  // (query index, version) -> set of distinct estimates served.
  std::map<std::pair<size_t, uint64_t>, std::set<double>> answers;
  std::atomic<size_t> answered{0};

  std::vector<std::thread> clients;
  for (size_t t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t query = i++ % std::size(kQueries);
        EstimateResponse response =
            service.SubmitAndWait(MakeRequest(kQueries[query]));
        if (!response.status.ok()) continue;
        answered.fetch_add(1);
        std::lock_guard<std::mutex> lock(mutex);
        answers[{query, response.snapshot_version}].insert(response.estimate);
      }
    });
  }

  // Drive rebuilds as fast as they land, alternating space fractions so
  // consecutive versions really differ; the failpoint fails ~half.
  size_t rebuilds = 0, rebuild_errors = 0;
  for (int round = 0; round < 12; ++round) {
    const double fraction = (round % 2 == 0) ? 0.05 : 0.02;
    if (!catalog.BeginRebuild(
            [fraction] {
              return Result<cst::Cst>(Corpus().BuildCst(fraction));
            },
            "chaos swap")) {
      continue;
    }
    ++rebuilds;
    if (!catalog.WaitForRebuild().ok()) ++rebuild_errors;
    // The catalog must always be serving something, failed or not.
    ASSERT_NE(catalog.Current(), nullptr);
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  service.Shutdown(/*drain=*/true);

  EXPECT_GT(rebuilds, 0u);
  EXPECT_GT(rebuild_errors, 0u);  // the 50% schedule must have fired
  EXPECT_LT(rebuild_errors, rebuilds);  // ... and some rebuilds landed
  EXPECT_GE(CounterValue(obs::Counter::kRebuildFailures),
            rebuild_failures_before + rebuild_errors);
  EXPECT_GT(answered.load(), 0u);
  // The torn-snapshot check: one estimate per (query, version), ever.
  for (const auto& [key, estimates] : answers) {
    EXPECT_EQ(estimates.size(), 1u)
        << "query " << key.first << " @ v" << key.second << " served "
        << estimates.size() << " distinct estimates";
  }
}

// Invariant 3 (client side): RetryPolicy rides out a 10% injected
// fault rate with >= 90% goodput — the bench_serve acceptance bar, held
// as a regression test at test-suite scale.
TEST_F(ChaosTest, RetryRidesOutTransientFaultsWithHighGoodput) {
  SnapshotCatalog catalog;
  catalog.Publish(Corpus().BuildCst(0.02), "v1");
  ASSERT_TRUE(util::FailpointRegistry::Get()
                  .Configure("serve/estimate", "error:0.1")
                  .ok());
  ServiceOptions options;
  options.num_workers = 2;
  EstimateService service(&catalog, options);

  RetryOptions ropt;
  ropt.base_backoff = milliseconds(1);
  ropt.max_backoff = milliseconds(4);
  RetryPolicy policy(ropt);

  constexpr size_t kRequests = 400;
  size_t ok = 0, gave_up = 0, retries = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    const char* text = kQueries[i % std::size(kQueries)];
    for (int attempt = 1;; ++attempt) {
      EstimateResponse response = service.SubmitAndWait(MakeRequest(text));
      if (response.status.ok()) {
        ++ok;
        policy.RecordSuccess();
        break;
      }
      const std::optional<milliseconds> backoff = policy.NextBackoff(
          response.status, attempt,
          std::chrono::steady_clock::time_point::max(),
          response.retry_after);
      if (!backoff.has_value()) {
        ++gave_up;
        break;
      }
      ++retries;
      std::this_thread::sleep_for(*backoff);
    }
  }
  EXPECT_EQ(ok + gave_up, kRequests);
  EXPECT_GT(retries, 0u);
  EXPECT_GE(static_cast<double>(ok), 0.9 * kRequests)
      << ok << "/" << kRequests << " after " << retries << " retries";
}

// Brown-out lifecycle under a burst: shed with a hint while drowning,
// recover once the queue drains and the pressure stays away.
TEST_F(ChaosTest, BrownoutShedsUnderBurstThenRecovers) {
  SnapshotCatalog catalog;
  catalog.Publish(Corpus().BuildCst(0.02), "v1");
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  options.health.quiet_period = milliseconds(25);
  options.dequeue_hook = [] { std::this_thread::sleep_for(milliseconds(1)); };
  EstimateService service(&catalog, options);

  const uint64_t sheds_before = CounterValue(obs::Counter::kBrownoutSheds);
  std::vector<std::future<EstimateResponse>> in_flight;
  in_flight.reserve(200);
  for (size_t i = 0; i < 200; ++i) {
    in_flight.push_back(
        service.Submit(MakeRequest(kQueries[i % std::size(kQueries)])));
  }
  size_t shed = 0;
  for (auto& f : in_flight) {
    EstimateResponse response = f.get();  // exactly-once, burst-wide
    if (!response.status.ok() &&
        response.status.message().find("browning out") != std::string::npos) {
      ++shed;
      EXPECT_GT(response.retry_after.count(), 0);
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GE(CounterValue(obs::Counter::kBrownoutSheds), sheds_before + shed);

  // With the burst done and the queue drained, the brown-out must lift
  // within a few quiet periods.
  bool recovered = false;
  for (int i = 0; i < 100 && !recovered; ++i) {
    std::this_thread::sleep_for(milliseconds(10));
    recovered = service.SubmitAndWait(MakeRequest("article.title"))
                    .status.ok();
  }
  EXPECT_TRUE(recovered);
}

// Tenant-starvation invariant: one tenant floods at ~10x its rate
// quota with execution faults firing, while two well-behaved tenants
// run closed-loop. The flood must be shed with structured throttles,
// the steady tenants must keep getting served (their weighted share of
// the queue and the workers), and every admitted request — flood
// included — resolves exactly once.
TEST_F(ChaosTest, FloodingTenantIsShedWhileOthersKeepTheirShare) {
  SnapshotCatalog catalog;
  catalog.Publish(Corpus().BuildCst(0.02), "v1");
  ServiceOptions options;
  options.num_workers = 1;  // one drain point: DRR order is the test
  // Capacity comfortably above the flood's worst-case instantaneous
  // hold (its token burst plus backlog), so a full-queue "overloaded"
  // can only mean the occupancy cap failed to contain the flood.
  options.queue_capacity = 32;
  // Keep the health brown-out out of the picture: this test is about
  // the tenant gate, not the load shedder.
  options.health.brownout_queue_fraction = 1.1;
  options.health.brownout_miss_rate = 1.1;
  options.tenants.overrides["flood"] = TenantQuota{/*rate=*/500,
                                                   /*burst=*/4,
                                                   /*weight=*/1};
  options.tenants.overrides["s1"] = TenantQuota{/*rate=*/0, /*burst=*/8,
                                                /*weight=*/3};
  options.tenants.overrides["s2"] = TenantQuota{/*rate=*/0, /*burst=*/8,
                                                /*weight=*/3};
  // A slow worker keeps the queue contended so fairness is exercised,
  // not just admission.
  options.dequeue_hook = [] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };
  EstimateService service(&catalog, options);
  ASSERT_TRUE(util::FailpointRegistry::Get()
                  .Configure("serve/estimate", "error:0.05")
                  .ok());

  constexpr int kSteadyRequests = 150;
  std::atomic<int> steady_done{0};
  std::atomic<int> steady_ok[2] = {{0}, {0}};
  std::atomic<bool> steady_overloaded{false};
  std::vector<std::thread> steady;
  for (int t = 0; t < 2; ++t) {
    steady.emplace_back([&, t] {
      const char* tenant = t == 0 ? "s1" : "s2";
      for (int i = 0; i < kSteadyRequests; ++i) {
        EstimateRequest request =
            MakeRequest(kQueries[i % std::size(kQueries)]);
        request.tenant = tenant;
        EstimateResponse response = service.SubmitAndWait(request);
        if (response.status.ok()) {
          steady_ok[t].fetch_add(1);
        } else if (response.status.message().find("overloaded") !=
                   std::string::npos) {
          // A closed-loop tenant holding at most one queued request
          // can only see "queue full" if the flood ate the shared
          // capacity — exactly what the occupancy cap must prevent.
          steady_overloaded.store(true);
        }
      }
      steady_done.fetch_add(1);
    });
  }

  // The flood: open-loop, ~10x its 500/s token rate, for as long as
  // the steady tenants are running.
  std::vector<std::future<EstimateResponse>> flood;
  flood.reserve(20000);
  std::thread flooder([&] {
    while (steady_done.load() < 2 && flood.size() < 20000) {
      EstimateRequest request =
          MakeRequest(kQueries[flood.size() % std::size(kQueries)]);
      request.tenant = "flood";
      flood.push_back(service.Submit(std::move(request)));
      if (flood.size() % 64 == 0) {
        std::this_thread::sleep_for(milliseconds(1));  // ~10x 500/s
      }
    }
  });
  for (std::thread& t : steady) t.join();
  flooder.join();

  // Exactly-once: every flood future resolves, OK or structured error.
  size_t flood_ok = 0;
  size_t flood_throttled = 0;
  for (auto& f : flood) {
    EstimateResponse response = f.get();
    if (response.status.ok()) {
      ++flood_ok;
    } else if (response.status.message().find("throttled") !=
               std::string::npos) {
      ++flood_throttled;
      EXPECT_GT(response.retry_after.count(), 0);
    }
  }
  service.Shutdown(/*drain=*/true);

  // The flood was shed — most of it — with structured throttles.
  EXPECT_GT(flood_throttled, 0u);
  EXPECT_GT(flood.size(), flood_ok + flood.size() / 2);
  // The steady tenants were never squeezed out of the shared queue and
  // kept real goodput (only the injected 5% fault rate bites).
  EXPECT_FALSE(steady_overloaded.load());
  EXPECT_GE(steady_ok[0].load(), kSteadyRequests * 3 / 4);
  EXPECT_GE(steady_ok[1].load(), kSteadyRequests * 3 / 4);

  // The lifetime stats verb data agrees.
  uint64_t stats_throttled = 0;
  for (const TenantStats& tenant : service.tenant_stats()) {
    if (tenant.tenant == "flood") stats_throttled = tenant.throttled;
  }
  EXPECT_EQ(stats_throttled, flood_throttled);
}

}  // namespace
}  // namespace twig::serve
