#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/hash.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace twig {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kOutOfRange, StatusCode::kCorruption,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<uint64_t> values;
  for (uint64_t i = 0; i < 1000; ++i) values.insert(Mix64(i));
  EXPECT_EQ(values.size(), 1000u);
}

TEST(HashTest, SeededHashDependsOnSeed) {
  EXPECT_NE(SeededHash64(1, 99), SeededHash64(2, 99));
  EXPECT_EQ(SeededHash64(1, 99), SeededHash64(1, 99));
}

TEST(HashTest, HashBytesStable) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes("abc", 1), HashBytes("abc", 2));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo = saw_lo || v == 2;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(5);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(ZipfTest, SkewedWhenThetaLarge) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a.b", '.'), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(StrSplit("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", '.'), (std::vector<std::string>{""}));
}

TEST(StringsTest, JoinRoundTrips) {
  const std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, "."), "x.y.z");
  EXPECT_EQ(StrSplit(StrJoin(pieces, "."), '.'), pieces);
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("Stonebraker", "Stone"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MB");
}

}  // namespace
}  // namespace twig
