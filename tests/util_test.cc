#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/flags.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/small_vector.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace twig {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kOutOfRange, StatusCode::kCorruption,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kUnavailable, StatusCode::kDeadlineExceeded}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, ServingCodesCarryCodeAndMessage) {
  Status unavailable = Status::Unavailable("queue full");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "Unavailable: queue full");
  Status expired = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(expired.ToString(), "DeadlineExceeded: too slow");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<uint64_t> values;
  for (uint64_t i = 0; i < 1000; ++i) values.insert(Mix64(i));
  EXPECT_EQ(values.size(), 1000u);
}

TEST(HashTest, SeededHashDependsOnSeed) {
  EXPECT_NE(SeededHash64(1, 99), SeededHash64(2, 99));
  EXPECT_EQ(SeededHash64(1, 99), SeededHash64(1, 99));
}

TEST(HashTest, HashBytesStable) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes("abc", 1), HashBytes("abc", 2));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo = saw_lo || v == 2;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(5);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(ZipfTest, SkewedWhenThetaLarge) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a.b", '.'), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(StrSplit("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", '.'), (std::vector<std::string>{""}));
}

TEST(StringsTest, JoinRoundTrips) {
  const std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, "."), "x.y.z");
  EXPECT_EQ(StrSplit(StrJoin(pieces, "."), '.'), pieces);
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("Stonebraker", "Stone"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(SmallVectorTest, StaysInlineThenSpillsToHeap) {
  util::SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 99);
}

TEST(SmallVectorTest, ConvertsFromVectorAndInitializerList) {
  const std::vector<int> source = {1, 2, 3, 4, 5, 6};
  util::SmallVector<int, 4> from_vector = source;
  EXPECT_TRUE(std::equal(from_vector.begin(), from_vector.end(),
                         source.begin(), source.end()));
  util::SmallVector<int, 4> from_list = {7, 8};
  EXPECT_EQ(from_list.size(), 2u);
  from_list = {9};
  EXPECT_EQ(from_list.size(), 1u);
  EXPECT_EQ(from_list[0], 9);
}

TEST(SmallVectorTest, CopyAndMoveAcrossStorageModes) {
  util::SmallVector<std::string, 2> inline_v = {"a", "b"};
  util::SmallVector<std::string, 2> heap_v = {"a", "b", "c", "d"};
  auto inline_copy = inline_v;
  auto heap_copy = heap_v;
  EXPECT_EQ(inline_copy, inline_v);
  EXPECT_EQ(heap_copy, heap_v);
  auto inline_moved = std::move(inline_copy);
  auto heap_moved = std::move(heap_copy);
  EXPECT_EQ(inline_moved, inline_v);
  EXPECT_EQ(heap_moved, heap_v);
  heap_moved = inline_v;  // shrink back across modes
  EXPECT_EQ(heap_moved, inline_v);
}

TEST(SmallVectorTest, InsertEraseResize) {
  util::SmallVector<int, 4> v = {1, 2, 5};
  const std::vector<int> mid = {3, 4};
  v.insert(v.begin() + 2, mid.begin(), mid.end());
  EXPECT_EQ(v, (util::SmallVector<int, 4>{1, 2, 3, 4, 5}));
  v.erase(v.begin() + 1, v.begin() + 3);
  EXPECT_EQ(v, (util::SmallVector<int, 4>{1, 4, 5}));
  v.resize(5);
  EXPECT_EQ(v, (util::SmallVector<int, 4>{1, 4, 5, 0, 0}));
  v.resize(2);
  EXPECT_EQ(v, (util::SmallVector<int, 4>{1, 4}));
}

TEST(ThreadPoolTest, ParallelForVisitsEveryItemExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr size_t kItems = 5000;
  std::vector<int> hits(kItems, 0);  // distinct slots: no contention
  std::vector<int> worker_used(pool.size(), 0);
  pool.ParallelFor(kItems, [&](size_t item, size_t worker) {
    ASSERT_LT(item, kItems);
    ASSERT_LT(worker, pool.size());
    hits[item] += 1;
    worker_used[worker] = 1;
  });
  for (size_t i = 0; i < kItems; ++i) EXPECT_EQ(hits[i], 1) << i;
  // At least one worker ran; how many share the batch is scheduling-
  // dependent (a fast worker may drain it alone on a loaded machine).
  EXPECT_GE(worker_used[0] + worker_used[1] + worker_used[2] +
                worker_used[3],
            1);
}

TEST(ThreadPoolTest, ReusableAcrossBatchesAndHandlesEmpty) {
  util::ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t, size_t) { FAIL(); });
  for (int round = 0; round < 50; ++round) {
    std::vector<int> hits(round + 1, 0);
    pool.ParallelFor(hits.size(),
                     [&](size_t item, size_t) { hits[item] += 1; });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndThenRunsInline) {
  util::ThreadPool pool(2);
  pool.Shutdown(/*drain=*/true);
  pool.Shutdown(/*drain=*/true);  // second call is a no-op
  EXPECT_EQ(pool.size(), 0u);
  // After Shutdown, ParallelFor degrades to an inline loop on the
  // calling thread (worker index 0).
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), [&](size_t item, size_t worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    hits[item] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ShutdownWithDrainCompletesInFlightBatch) {
  util::ThreadPool pool(2);
  std::atomic<size_t> visited{0};
  std::atomic<bool> batch_started{false};
  std::thread caller([&] {
    pool.ParallelFor(2000, [&](size_t, size_t) {
      batch_started.store(true);
      visited.fetch_add(1);
    });
  });
  while (!batch_started.load()) std::this_thread::yield();
  pool.Shutdown(/*drain=*/true);  // must not strand the caller
  caller.join();
  EXPECT_EQ(visited.load(), 2000u);
}

TEST(ThreadPoolTest, ShutdownWithoutDrainAbandonsUnclaimedItems) {
  util::ThreadPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  std::atomic<size_t> visited{0};
  std::thread caller([&] {
    pool.ParallelFor(100000, [&](size_t, size_t) {
      visited.fetch_add(1);
      std::unique_lock<std::mutex> lock(mutex);
      started = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    });
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return started; });
  }
  // The single worker is parked inside item 0; Shutdown(false) abandons
  // the unclaimed tail, so once the worker is released the batch ends
  // after only the in-progress items.
  std::thread shutdown([&] { pool.Shutdown(/*drain=*/false); });
  {
    std::unique_lock<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  shutdown.join();
  caller.join();
  EXPECT_LT(visited.load(), 100000u);
  EXPECT_GE(visited.load(), 1u);
}

TEST(FlagParserTest, ParsesEveryFlagKind) {
  std::string name = "default";
  size_t bytes = 0;
  double space = 0;
  bool json = false;
  std::string custom;
  std::vector<std::string> positional;
  util::FlagParser flags("prog", "usage: prog\n");
  flags.String("name", &name);
  flags.Size("bytes", &bytes);
  flags.Double("space", &space);
  flags.Bool("json", &json);
  flags.Custom("algo", [&](std::string_view v) {
    custom.assign(v);
    return !v.empty();
  });
  flags.Positional(&positional);
  const char* argv[] = {"prog",          "--name=x",    "--bytes=42",
                        "--space=0.25",  "--json",      "--algo=MSH",
                        "first",         "second"};
  EXPECT_EQ(flags.Parse(8, const_cast<char**>(argv)), -1);
  EXPECT_EQ(name, "x");
  EXPECT_EQ(bytes, 42u);
  EXPECT_DOUBLE_EQ(space, 0.25);
  EXPECT_TRUE(json);
  EXPECT_EQ(custom, "MSH");
  EXPECT_EQ(positional, (std::vector<std::string>{"first", "second"}));
}

TEST(FlagParserTest, RejectsUnknownBadAndMisshapenArguments) {
  const auto parse_one = [](const char* arg, bool with_positional = false) {
    size_t bytes = 0;
    bool json = false;
    std::vector<std::string> positional;
    util::FlagParser flags("prog", "usage: prog\n");
    flags.Size("bytes", &bytes);
    flags.Bool("json", &json);
    if (with_positional) flags.Positional(&positional);
    const char* argv[] = {"prog", arg};
    return flags.Parse(2, const_cast<char**>(argv));
  };
  EXPECT_EQ(parse_one("--no-such-flag"), 2);
  EXPECT_EQ(parse_one("-x"), 2);             // single-dash is never a flag
  EXPECT_EQ(parse_one("--bytes=12abc"), 2);  // trailing junk in a number
  EXPECT_EQ(parse_one("--bytes"), 2);        // value flag without a value
  EXPECT_EQ(parse_one("--json=1"), 2);       // bool flag with a value
  EXPECT_EQ(parse_one("stray"), 2);          // positional without opt-in
  EXPECT_EQ(parse_one("stray", /*with_positional=*/true), -1);
}

TEST(FlagParserTest, HelpReportsExitZeroAndCustomCanReject) {
  util::FlagParser flags("prog", "usage: prog\n");
  const char* help_argv[] = {"prog", "--help"};
  EXPECT_EQ(flags.Parse(2, const_cast<char**>(help_argv)), 0);

  util::FlagParser rejecting("prog", "usage: prog\n");
  rejecting.Custom("algo", [](std::string_view) { return false; });
  const char* bad_argv[] = {"prog", "--algo=nope"};
  EXPECT_EQ(rejecting.Parse(2, const_cast<char**>(bad_argv)), 2);
}

}  // namespace
}  // namespace twig
