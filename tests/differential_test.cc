// Differential tests: the estimator against the exact matcher over the
// extended query language (`*` wildcards and `//` descendant edges).
//
// Three tiers:
//   1. Exactness — on an unpruned CST, element-only single-path twigs
//      with wildcard / descendant specials aggregate occurrence counts
//      over the frontier of matching label paths, and distinct label
//      paths denote disjoint instance sets, so the estimate must equal
//      the exact matcher's occurrence count.
//   2. Validity — random GenerateAxes workloads (which are positive by
//      construction): every estimate resolves via TryEstimate with no
//      error, is finite and non-negative, and — for MO on an unpruned
//      CST, where every piece count is a real subpath count >= 1 —
//      strictly positive. This is the regression tier for the original
//      bug: wildcard twigs the matcher counts silently estimated 0.
//   3. Identity — canonical query keys must distinguish edge kinds and
//      wildcards (`a.b` vs `a//b` vs `a.*`) so the serving-layer result
//      cache can never conflate them.

#include <gtest/gtest.h>

#include <cmath>

#include "core/canonical.h"
#include "core/estimator.h"
#include "cst/cst.h"
#include "data/generators.h"
#include "match/matcher.h"
#include "query/twig.h"
#include "suffix/path_suffix_tree.h"
#include "workload/workload.h"

namespace twig {
namespace {

using core::Algorithm;
using core::CountSemantics;
using core::TwigEstimator;

class DifferentialTest : public ::testing::Test {
 protected:
  DifferentialTest() {
    data::DblpOptions options;
    options.target_bytes = 32 * 1024;
    data_ = data::GenerateDblp(options);
    auto pst = suffix::PathSuffixTree::Build(data_);
    cst::CstOptions copt;
    copt.prune_threshold = 1;  // unpruned: aggregation should be sharp
    cst_ = cst::Cst::Build(data_, pst, copt);
  }

  double Truth(const query::Twig& twig) {
    return match::CountTwigMatches(data_, twig).value().occurrence;
  }

  tree::Tree data_;
  cst::Cst cst_;
};

// The bug this PR fixes, as a one-liner: a descendant twig the exact
// matcher counts must not estimate 0.
TEST_F(DifferentialTest, WildcardTwigsNoLongerEstimateZero) {
  auto twig = query::ParseTwig("dblp//author");
  ASSERT_TRUE(twig.ok());
  ASSERT_GT(Truth(*twig), 0.0);
  TwigEstimator estimator(&cst_);
  for (Algorithm algorithm : core::kAllAlgorithms) {
    const double est = estimator.Estimate(*twig, algorithm);
    EXPECT_TRUE(std::isfinite(est)) << core::AlgorithmName(algorithm);
    EXPECT_GT(est, 0.0) << core::AlgorithmName(algorithm);
  }
}

TEST_F(DifferentialTest, SinglePathSpecialsExactOnUnprunedCst) {
  // Element-only single-path twigs; `dblp//title` exercises frontier
  // nodes at several depths (record titles and cite titles).
  const char* queries[] = {
      "dblp//author", "dblp//title", "dblp//year", "dblp.*",
      "*.author",     "dblp.*.author", "article//title", "dblp.*.cite",
  };
  TwigEstimator estimator(&cst_);
  for (const char* text : queries) {
    auto twig = query::ParseTwig(text);
    ASSERT_TRUE(twig.ok()) << text;
    const double truth = Truth(*twig);
    ASSERT_GT(truth, 0.0) << text;
    for (Algorithm algorithm : {Algorithm::kMo, Algorithm::kMsh}) {
      const auto est = estimator.TryEstimate(*twig, algorithm);
      ASSERT_TRUE(est.ok()) << text << ": " << est.status().ToString();
      EXPECT_NEAR(*est, truth, 1e-6 * truth)
          << text << " via " << core::AlgorithmName(algorithm);
    }
  }
}

TEST_F(DifferentialTest, PresenceIsAnUpperBoundOnSpecialPaths) {
  // Presence sums per-label-path presence counts; a data node can head
  // matches of several label paths, so the sum can only overcount.
  core::EstimateOptions options;
  options.semantics = CountSemantics::kPresence;
  TwigEstimator estimator(&cst_);
  for (const char* text : {"dblp//title", "dblp//year", "*.author"}) {
    auto twig = query::ParseTwig(text);
    ASSERT_TRUE(twig.ok()) << text;
    const double truth =
        match::CountTwigMatches(data_, *twig).value().presence;
    const auto est = estimator.TryEstimate(*twig, Algorithm::kMo, options);
    ASSERT_TRUE(est.ok()) << text << ": " << est.status().ToString();
    EXPECT_GE(*est, truth - 1e-9) << text;
  }
}

TEST_F(DifferentialTest, AxesWorkloadsEstimateValidly) {
  const struct {
    double wildcard;
    double descendant;
  } mixes[] = {{0.3, 0.0}, {0.0, 0.3}, {0.3, 0.3}};
  TwigEstimator estimator(&cst_);
  for (const auto& mix : mixes) {
    workload::WorkloadOptions wopt;
    wopt.num_queries = 20;
    wopt.seed = 11;
    wopt.wildcard_probability = mix.wildcard;
    wopt.descendant_probability = mix.descendant;
    workload::Workload wl = workload::GenerateAxes(data_, wopt);
    ASSERT_EQ(wl.size(), 20u);
    for (const auto& wq : wl) {
      const std::string text = query::FormatTwig(wq.twig);
      ASSERT_GT(wq.truth.occurrence, 0.0) << text;  // positive workload
      for (Algorithm algorithm :
           {Algorithm::kMo, Algorithm::kMosh, Algorithm::kMsh}) {
        const auto est = estimator.TryEstimate(wq.twig, algorithm);
        ASSERT_TRUE(est.ok())
            << text << " via " << core::AlgorithmName(algorithm) << ": "
            << est.status().ToString();
        EXPECT_TRUE(std::isfinite(*est)) << text;
        EXPECT_GE(*est, 0.0) << text;
      }
      // MO multiplies real subpath counts and containment ratios, all
      // >= 1 resp. > 0 on an unpruned CST, so a matching twig cannot
      // estimate to zero.
      EXPECT_GT(estimator.Estimate(wq.twig, Algorithm::kMo), 0.0) << text;
    }
  }
}

TEST(CanonicalKeyTest, EdgeKindsAndWildcardsKeyDistinctly) {
  auto parse = [](const char* text) {
    auto twig = query::ParseTwig(text);
    EXPECT_TRUE(twig.ok()) << text;
    return *twig;
  };
  const auto key = [&](const char* text) {
    return core::CanonicalizeQuery(parse(text), Algorithm::kMsh,
                                   CountSemantics::kOccurrence);
  };
  const auto child = key("a/b");
  const auto desc = key("a//b");
  const auto wild = key("a/*");
  EXPECT_NE(child.text, desc.text);
  EXPECT_NE(child.text, wild.text);
  EXPECT_NE(desc.text, wild.text);
  EXPECT_NE(child.fingerprint, desc.fingerprint);
  EXPECT_NE(child.fingerprint, wild.fingerprint);
  EXPECT_NE(desc.fingerprint, wild.fingerprint);

  // `/` is an alias spelling of the child edge, so it canonicalizes to
  // the same key as `.` — the cache must merge these.
  const auto dot = key("a.b");
  EXPECT_EQ(child.text, dot.text);
  EXPECT_EQ(child.fingerprint, dot.fingerprint);
}

}  // namespace
}  // namespace twig
