#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "suffix/path_suffix_tree.h"
#include "test_trees.h"

namespace twig::suffix {
namespace {

using tree::Tree;

/// Walks the tree along a subpath written as dotted tags followed by
/// optional value characters, e.g. "book.author:Su" or ":uciu".
PstNodeId Find(const PathSuffixTree& pst, const Tree& data,
               const std::string& spec) {
  const size_t colon = spec.find(':');
  const std::string tags = spec.substr(0, colon == std::string::npos
                                              ? spec.size()
                                              : colon);
  PstNodeId node = pst.root();
  if (!tags.empty()) {
    size_t start = 0;
    while (start <= tags.size()) {
      size_t dot = tags.find('.', start);
      const std::string tag =
          tags.substr(start, dot == std::string::npos ? std::string::npos
                                                      : dot - start);
      tree::LabelId id = data.labels().Find(tag);
      if (id == tree::kInvalidLabel) return kNoPstNode;
      node = pst.FindChild(node, TagSymbol(id));
      if (node == kNoPstNode) return kNoPstNode;
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
  }
  if (colon != std::string::npos) {
    for (char c : spec.substr(colon + 1)) {
      node = pst.FindChild(node, CharSymbol(c));
      if (node == kNoPstNode) return kNoPstNode;
    }
  }
  return node;
}

TEST(PathSuffixTreeTest, ContainsTagSubpathsOfAllSuffixes) {
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  EXPECT_NE(Find(pst, data, "dblp.book.author"), kNoPstNode);
  EXPECT_NE(Find(pst, data, "book.author"), kNoPstNode);
  EXPECT_NE(Find(pst, data, "author"), kNoPstNode);
  EXPECT_NE(Find(pst, data, "book.year"), kNoPstNode);
}

TEST(PathSuffixTreeTest, ValueCharsOnlyReachableAsPrefixAfterTags) {
  // "author.Su" exists, "author.uciu" must not (paper Section 3.1).
  Tree data;
  auto dblp = data.AddRoot("dblp");
  auto book = data.AddElement(dblp, "book");
  auto author = data.AddElement(book, "author");
  data.AddValue(author, "Suciu");
  auto pst = PathSuffixTree::Build(data);
  EXPECT_NE(Find(pst, data, "author:S"), kNoPstNode);
  EXPECT_NE(Find(pst, data, "author:Suciu"), kNoPstNode);
  EXPECT_EQ(Find(pst, data, "author:uciu"), kNoPstNode);
  // Character-only suffixes of the value do exist.
  EXPECT_NE(Find(pst, data, ":uciu"), kNoPstNode);
  EXPECT_NE(Find(pst, data, ":u"), kNoPstNode);
}

TEST(PathSuffixTreeTest, NoTagSplitMidName) {
  // "uthor.Suciu" must not exist: tags are atomic symbols.
  Tree data;
  auto dblp = data.AddRoot("dblp");
  auto author = data.AddElement(dblp, "author");
  data.AddValue(author, "Suciu");
  auto pst = PathSuffixTree::Build(data);
  // There is no single-char 'u' path followed by tag-like content;
  // verify by checking that from the root, the only tag children are
  // real tags and chars come only from value suffixes.
  EXPECT_EQ(Find(pst, data, "uthor"), kNoPstNode);
}

TEST(PathSuffixTreeTest, PathCountsArePathsContainingSubpath) {
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  // 12 root-to-leaf paths (one per value node).
  EXPECT_EQ(pst.total_paths(), 12u);
  // Every path contains "dblp" and "book".
  EXPECT_EQ(pst.PathCount(Find(pst, data, "dblp")), 12u);
  EXPECT_EQ(pst.PathCount(Find(pst, data, "book")), 12u);
  // 6 author paths.
  EXPECT_EQ(pst.PathCount(Find(pst, data, "book.author")), 6u);
  EXPECT_EQ(pst.PathCount(Find(pst, data, "dblp.book.author")), 6u);
  // 3 year paths, all with value Y1.
  EXPECT_EQ(pst.PathCount(Find(pst, data, "year:Y1")), 3u);
}

TEST(PathSuffixTreeTest, RepeatedSubpathInOnePathCountedOnce) {
  // Path a.a.a.v: subpath "a" occurs three times but in one path.
  Tree data;
  auto a1 = data.AddRoot("a");
  auto a2 = data.AddElement(a1, "a");
  auto a3 = data.AddElement(a2, "a");
  data.AddValue(a3, "v");
  auto pst = PathSuffixTree::Build(data);
  EXPECT_EQ(pst.PathCount(Find(pst, data, "a")), 1u);
  EXPECT_EQ(pst.PathCount(Find(pst, data, "a.a")), 1u);
  EXPECT_EQ(pst.PathCount(Find(pst, data, "a.a.a")), 1u);
}

TEST(PathSuffixTreeTest, PtIsMonotoneUnderSubpaths) {
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  // pt(child) <= pt(parent) across the whole trie.
  for (PstNodeId n = 1; n < pst.node_count(); ++n) {
    if (pst.Parent(n) == pst.root()) continue;
    EXPECT_LE(pst.PathCount(n), pst.PathCount(pst.Parent(n)))
        << "node " << n;
  }
}

TEST(PathSuffixTreeTest, StartsWithTagFlag) {
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  EXPECT_TRUE(pst.StartsWithTag(Find(pst, data, "book.author")));
  EXPECT_TRUE(pst.StartsWithTag(Find(pst, data, "author:A")));
  EXPECT_FALSE(pst.StartsWithTag(Find(pst, data, ":A")));
  EXPECT_FALSE(pst.StartsWithTag(Find(pst, data, ":1")));
}

TEST(PathSuffixTreeTest, ChildlessElementIsALeafPath) {
  Tree data;
  auto a = data.AddRoot("a");
  data.AddElement(a, "br");
  auto pst = PathSuffixTree::Build(data);
  EXPECT_EQ(pst.total_paths(), 1u);
  EXPECT_NE(Find(pst, data, "a.br"), kNoPstNode);
}

TEST(PathSuffixTreeTest, ValueCharCapRespected) {
  Tree data;
  auto a = data.AddRoot("a");
  data.AddValue(a, "abcdefghijklmnop");
  PathSuffixTreeOptions options;
  options.max_value_chars = 4;
  auto pst = PathSuffixTree::Build(data, options);
  EXPECT_NE(Find(pst, data, "a:abcd"), kNoPstNode);
  EXPECT_EQ(Find(pst, data, "a:abcde"), kNoPstNode);
}

TEST(PathSuffixTreeTest, MaxNodesCapTruncates) {
  Tree data = testutil::FigureOneTree();
  PathSuffixTreeOptions options;
  options.max_nodes = 10;
  auto pst = PathSuffixTree::Build(data, options);
  EXPECT_LE(pst.node_count(), 10u);
  EXPECT_TRUE(pst.truncated());
  auto full = PathSuffixTree::Build(data);
  EXPECT_FALSE(full.truncated());
}

TEST(PathSuffixTreeTest, DepthTracked) {
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  EXPECT_EQ(pst.Depth(Find(pst, data, "dblp")), 1u);
  EXPECT_EQ(pst.Depth(Find(pst, data, "dblp.book.author")), 3u);
  EXPECT_EQ(pst.Depth(Find(pst, data, "book.author:A1")), 4u);
}

TEST(PathSuffixTreeTest, OutOfRangeSymbolsNeverMatch) {
  // Regression for the packed child-map key: symbol (1 << 22) | s on
  // node n used to alias node n+1's edge along s.
  Tree data = testutil::FigureOneTree();
  auto pst = PathSuffixTree::Build(data);
  std::vector<Symbol> in_range;
  for (const char* tag : {"dblp", "book", "author", "year"}) {
    const tree::LabelId id = data.labels().Find(tag);
    ASSERT_NE(id, tree::kInvalidLabel) << tag;
    in_range.push_back(TagSymbol(id));
  }
  for (char c : {'A', 'Y', '1'}) in_range.push_back(CharSymbol(c));
  for (PstNodeId n = 0; n < static_cast<PstNodeId>(pst.node_count()); ++n) {
    EXPECT_EQ(pst.FindChild(n, kMaxSymbol + 1), kNoPstNode);
    for (Symbol s : in_range) {
      EXPECT_EQ(pst.FindChild(n, s | (1u << 22)), kNoPstNode);
    }
  }
}

TEST(SymbolTest, EncodingRoundTrips) {
  EXPECT_TRUE(IsTagSymbol(TagSymbol(0)));
  EXPECT_FALSE(IsTagSymbol(CharSymbol('a')));
  EXPECT_EQ(SymbolLabel(TagSymbol(7)), 7u);
  EXPECT_EQ(SymbolChar(CharSymbol('x')), 'x');
  // High-bit characters must not collide with tags.
  EXPECT_FALSE(IsTagSymbol(CharSymbol('\xff')));
}

}  // namespace
}  // namespace twig::suffix
