#include <gtest/gtest.h>

#include <cmath>

#include "core/combine.h"
#include "core/parse.h"
#include "cst/cst.h"
#include "query/twig.h"
#include "test_trees.h"

namespace twig::core {
namespace {

using cst::Cst;
using cst::CstOptions;
using query::ParseTwig;
using suffix::PathSuffixTree;
using tree::Tree;

Cst BuildCst(const Tree& data) {
  auto pst = PathSuffixTree::Build(data);
  CstOptions options;
  options.prune_threshold = 1;
  return Cst::Build(data, pst, options);
}

/// Builds a single-subpath piece from explicit atoms.
EstimandPiece PathPiece(const std::vector<AtomId>& atoms) {
  EstimandPiece piece;
  piece.root_atom = atoms.front();
  piece.atoms = atoms;
  piece.subpaths.push_back(atoms);
  return piece;
}

class CombinerTest : public ::testing::Test {
 protected:
  CombinerTest()
      : data_(testutil::FigureOneTree()), cst_(BuildCst(data_)) {}

  Combiner MakeCombiner(CountSemantics semantics) {
    CombineOptions options;
    options.semantics = semantics;
    return Combiner(eq_, cst_, options);
  }

  void Expand(const char* twig_text) {
    auto twig = ParseTwig(twig_text);
    ASSERT_TRUE(twig.ok());
    twig_ = std::move(*twig);
    eq_ = ExpandQuery(twig_, cst_);
  }

  Tree data_;
  Cst cst_;
  query::Twig twig_;
  ExpandedQuery eq_;
};

TEST_F(CombinerTest, SingleSubpathPieceReadsCst) {
  Expand("book.author");
  Combiner presence = MakeCombiner(CountSemantics::kPresence);
  Combiner occurrence = MakeCombiner(CountSemantics::kOccurrence);
  EstimandPiece piece = PathPiece({0, 1});
  EXPECT_DOUBLE_EQ(presence.PieceCount(piece), 3.0);   // 3 books
  EXPECT_DOUBLE_EQ(occurrence.PieceCount(piece), 6.0);  // 6 pairs
}

TEST_F(CombinerTest, MissingPieceChargedDefault) {
  Expand("book.author");
  CombineOptions options;
  options.missing_count = 7.5;
  Combiner combiner(eq_, cst_, options);
  EstimandPiece piece = PathPiece({0});
  piece.missing = true;
  EXPECT_DOUBLE_EQ(combiner.PieceCount(piece), 7.5);
}

TEST_F(CombinerTest, TwigletIntersectionExactOnIdenticalSets) {
  // book.author and book.year root at the same 3 books: presence 3;
  // occurrences 6 author-pairs x 3/3 year = 6 (the Section 5 example).
  Expand("book(author, year)");
  Combiner presence = MakeCombiner(CountSemantics::kPresence);
  Combiner occurrence = MakeCombiner(CountSemantics::kOccurrence);
  EstimandPiece twiglet;
  twiglet.root_atom = 0;
  twiglet.subpaths = {{0, 1}, {0, 2}};  // book.author, book.year
  twiglet.atoms = {0, 1, 2};
  EXPECT_DOUBLE_EQ(presence.PieceCount(twiglet), 3.0);
  EXPECT_DOUBLE_EQ(occurrence.PieceCount(twiglet), 6.0);
}

TEST_F(CombinerTest, MoCombineConditionsOnOverlap) {
  // Two chained pieces book.author and author.'A': estimate
  // = N * Pr(book.author) * Pr(author.A) / Pr(author).
  Expand("book.author=\"A\"");
  Combiner combiner = MakeCombiner(CountSemantics::kPresence);
  const double n = static_cast<double>(cst_.data_node_count());
  std::vector<EstimandPiece> pieces = {PathPiece({0, 1}),
                                       PathPiece({1, 2})};
  const double expected = n * (3.0 / n) * (6.0 / n) / (6.0 / n);
  EXPECT_NEAR(combiner.MoCombine(pieces), expected, 1e-9);
}

TEST_F(CombinerTest, MoCombineSkipsFullyCoveredPieces) {
  Expand("book.author");
  Combiner combiner = MakeCombiner(CountSemantics::kPresence);
  std::vector<EstimandPiece> pieces = {PathPiece({0, 1}), PathPiece({0, 1})};
  EXPECT_DOUBLE_EQ(combiner.MoCombine(pieces), 3.0);
}

TEST_F(CombinerTest, IndependenceCombineDoesNotCondition) {
  Expand("book(author, year)");
  Combiner combiner = MakeCombiner(CountSemantics::kPresence);
  const double n = static_cast<double>(cst_.data_node_count());
  std::vector<EstimandPiece> pieces = {PathPiece({0, 1}), PathPiece({0, 2})};
  // Greedy: N * Pr(book.author) * Pr(book.year) — no division by
  // the shared book.
  EXPECT_NEAR(combiner.IndependenceCombine(pieces), n * (3 / n) * (3 / n),
              1e-9);
  // MO conditions on the shared root and recovers the true count.
  EXPECT_NEAR(combiner.MoCombine(pieces), 3.0, 0.5);
}

TEST_F(CombinerTest, AtomSetProbSinglePath) {
  Expand("book.author");
  Combiner combiner = MakeCombiner(CountSemantics::kPresence);
  const double n = static_cast<double>(cst_.data_node_count());
  EXPECT_NEAR(combiner.AtomSetProb({0}), 3.0 / n, 1e-12);
  EXPECT_NEAR(combiner.AtomSetProb({0, 1}), 3.0 / n, 1e-12);
  EXPECT_DOUBLE_EQ(combiner.AtomSetProb({}), 1.0);
}

TEST_F(CombinerTest, AtomSetProbDisconnectedComponentsMultiply) {
  // book(author, year): atoms {1} (author) and {2} (year) with the
  // root excluded form two components.
  Expand("book(author, year)");
  Combiner combiner = MakeCombiner(CountSemantics::kPresence);
  const double n = static_cast<double>(cst_.data_node_count());
  const double pa = combiner.AtomSetProb({1});
  const double py = combiner.AtomSetProb({2});
  EXPECT_NEAR(combiner.AtomSetProb({1, 2}), pa * py, 1e-12);
  EXPECT_NEAR(pa, 6.0 / n, 1e-12);
}

TEST_F(CombinerTest, AtomSetProbSubtreeUsesSetHashing) {
  // The connected set {book, author, year} is a subtree: estimated by
  // intersecting the author/year signatures (exact here).
  Expand("book(author, year)");
  Combiner combiner = MakeCombiner(CountSemantics::kPresence);
  const double n = static_cast<double>(cst_.data_node_count());
  EXPECT_NEAR(combiner.AtomSetProb({0, 1, 2}), 3.0 / n, 1e-9);
}

TEST_F(CombinerTest, DeepSharedPrefixTwigletConstrained) {
  // Twiglet dblp(book.author, book.year) where both subpaths go through
  // the *same* book atom: count must reflect the joint structure, not
  // independent picks of books.
  Expand("dblp.book(author, year)");
  // Atoms: dblp=0, book=1, author=2, year=3.
  Combiner occurrence = MakeCombiner(CountSemantics::kOccurrence);
  EstimandPiece twiglet;
  twiglet.root_atom = 0;
  twiglet.subpaths = {{0, 1, 2}, {0, 1, 3}};
  twiglet.atoms = {0, 1, 2, 3};
  // True joint occurrence: all 3 books have authors and years: 6.
  EXPECT_NEAR(occurrence.PieceCount(twiglet), 6.0, 1.0);
}

TEST_F(CombinerTest, DuplicateSubpathsUseFallingFactorial) {
  // book(author, author): per-book multiplicity m = 2, so the
  // duplicate-aware occurrence scale is m(m-1) = 2 rather than m^2 = 4
  // over presence 3 -> estimate 6 (true 8); the uncorrected scale
  // yields 12.
  Expand("book(author, author)");
  EstimandPiece twiglet;
  twiglet.root_atom = 0;
  twiglet.subpaths = {{0, 1}, {0, 2}};
  twiglet.atoms = {0, 1, 2};
  CombineOptions corrected;
  corrected.semantics = CountSemantics::kOccurrence;
  EXPECT_NEAR(Combiner(eq_, cst_, corrected).PieceCount(twiglet), 6.0, 1e-9);
  CombineOptions naive;
  naive.semantics = CountSemantics::kOccurrence;
  naive.duplicate_aware_occurrence = false;
  EXPECT_NEAR(Combiner(eq_, cst_, naive).PieceCount(twiglet), 12.0, 1e-9);
}

TEST_F(CombinerTest, AutoMissingCountTracksThreshold) {
  Expand("book.author");
  CombineOptions options;  // missing_count = 0 -> auto
  Combiner combiner(eq_, cst_, options);
  EstimandPiece missing = PathPiece({0});
  missing.missing = true;
  // Threshold 1 -> max(0.5, 0.5) = 0.5.
  EXPECT_DOUBLE_EQ(combiner.PieceCount(missing), 0.5);
}

}  // namespace
}  // namespace twig::core
