// Quickstart: build a CST summary over an XML document and estimate
// twig-match counts, comparing against exact ground truth.
//
//   ./quickstart                 # uses a built-in DBLP-like sample
//   ./quickstart file.xml        # summarizes your own XML document

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "cst/cst.h"
#include "data/generators.h"
#include "match/matcher.h"
#include "query/twig.h"
#include "suffix/path_suffix_tree.h"
#include "util/flags.h"
#include "util/strings.h"
#include "xml/xml.h"

namespace {

twig::tree::Tree LoadOrGenerate(const std::vector<std::string>& paths) {
  if (!paths.empty()) {
    std::ifstream in(paths.front());
    if (!in) {
      std::fprintf(stderr, "cannot open %s; using generated data\n",
                   paths.front().c_str());
    } else {
      std::ostringstream buf;
      buf << in.rdbuf();
      auto parsed = twig::xml::ParseXml(buf.str());
      if (parsed.ok()) return std::move(parsed).value();
      std::fprintf(stderr, "parse error: %s; using generated data\n",
                   parsed.status().ToString().c_str());
    }
  }
  twig::data::DblpOptions options;
  options.target_bytes = 512 * 1024;
  return twig::data::GenerateDblp(options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace twig;

  std::vector<std::string> paths;
  util::FlagParser flags("quickstart", "usage: quickstart [file.xml]\n");
  flags.Positional(&paths);
  if (int code = flags.Parse(argc, argv); code >= 0) return code;

  // 1. A node-labeled data tree (from XML or the built-in generator).
  tree::Tree data = LoadOrGenerate(paths);
  const size_t xml_bytes = xml::XmlByteSize(data);
  std::printf("data tree: %zu nodes, %s serialized\n", data.size(),
              HumanBytes(xml_bytes).c_str());

  // 2. Build the summary: path suffix tree, then a CST sized to 1% of
  //    the data.
  auto pst = suffix::PathSuffixTree::Build(data);
  cst::CstOptions copt;
  copt.space_budget_bytes = xml_bytes / 100;
  cst::Cst summary = cst::Cst::Build(data, pst, copt);
  std::printf("CST: %zu subpaths, %s (%.2f%% of data), prune threshold %u\n",
              summary.node_count(), HumanBytes(summary.size_bytes()).c_str(),
              100.0 * summary.size_bytes() / xml_bytes,
              summary.prune_threshold());

  // 3. Estimate some twig queries and compare with exact counts.
  core::TwigEstimator estimator(&summary);
  const char* kQueries[] = {
      "article(author, year)",
      "article(author, title)",
      "book.publisher",
      "inproceedings(author, pages)",
  };
  std::printf("\n%-36s %12s %12s %12s %12s\n", "query", "true", "MSH", "MO",
              "Greedy");
  for (const char* text : kQueries) {
    auto twig_query = query::ParseTwig(text);
    if (!twig_query.ok()) {
      std::fprintf(stderr, "bad query %s: %s\n", text,
                   twig_query.status().ToString().c_str());
      continue;
    }
    const match::TwigCounts truth =
        match::CountTwigMatches(data, *twig_query).value();
    const double msh =
        estimator.Estimate(*twig_query, core::Algorithm::kMsh);
    const double mo = estimator.Estimate(*twig_query, core::Algorithm::kMo);
    const double greedy =
        estimator.Estimate(*twig_query, core::Algorithm::kGreedy);
    std::printf("%-36s %12.0f %12.1f %12.1f %12.1f\n", text, truth.occurrence,
                msh, mo, greedy);
  }
  return 0;
}
