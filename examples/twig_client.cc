// twig_client: command-line client for twig_serve (DESIGN.md §10).
//
//   ./twig_client --port=7411 --op=ping
//   ./twig_client --port=7411 --op=estimate --query='article(author)'
//   ./twig_client --port=7411 --op=shutdown
//   ./twig_client --port=7411                 # REPL: stdin lines are
//                                             # requests, responses print
//   ./twig_client --port=7411 --bench --count=1000 --threads=4
//                 --swap-at=500               # load + hot swap mid-run
//
// Bench mode drives `count` estimate requests across `threads`
// connections, optionally triggering a snapshot swap once `swap-at`
// requests have completed, and reports served/rejected/deadline-missed
// totals plus every snapshot version observed — the e2e smoke check
// that a hot swap never drops or corrupts in-flight traffic.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/retry.h"
#include "util/flags.h"
#include "util/status.h"

namespace {

using namespace twig;

struct Options {
  size_t port = 7411;
  std::string op;
  std::string query;
  std::string algo = "MSH";
  std::string semantics;
  double deadline_ms = 0;
  double space = 0;
  std::string spec;
  bool bench = false;
  size_t count = 1000;
  size_t threads = 4;
  size_t swap_at = 0;
  size_t min_cached = 0;
  size_t retries = 0;
  double retry_base_ms = 2;
  double retry_max_ms = 250;
  std::string dataset;
  std::string tenant;
  size_t idle_conns = 0;
  size_t idle_hold_ms = 1000;
};

/// nullptr when --retries=0: requests are sent exactly once.
std::unique_ptr<serve::RetryPolicy> MakeRetryPolicy(const Options& options) {
  if (options.retries == 0) return nullptr;
  serve::RetryOptions ropt;
  ropt.max_attempts = static_cast<int>(options.retries) + 1;
  ropt.base_backoff = std::chrono::milliseconds(
      static_cast<long long>(std::max(1.0, options.retry_base_ms)));
  ropt.max_backoff = std::chrono::milliseconds(
      static_cast<long long>(std::max(1.0, options.retry_max_ms)));
  return std::make_unique<serve::RetryPolicy>(ropt);
}

constexpr char kUsage[] =
    "usage: twig_client --port=N [--op=NAME ...] [--bench ...]\n"
    "  --port=N         server port on 127.0.0.1 (default 7411)\n"
    "single-shot (one request, prints the response line):\n"
    "  --op=NAME        ping | estimate | explain | metrics | stats |\n"
    "                   recent | swap | health | failpoint | shutdown\n"
    "                   (stats and recent also pretty-print)\n"
    "  --query=TWIG     estimate/explain query\n"
    "  --algo=NAME      Leaf | Greedy | MO | MOSH | PMOSH | MSH\n"
    "  --semantics=S    occurrence | presence\n"
    "  --deadline-ms=F  per-request deadline\n"
    "  --space=F        swap: CST space fraction (0 = server default)\n"
    "  --spec=LIST      failpoint: name=action[:arg] entries to apply;\n"
    "                   empty lists the server's failpoints\n"
    "bench (estimate load across connections):\n"
    "  --bench          enable bench mode\n"
    "  --count=N        total requests (default 1000)\n"
    "  --threads=N      client connections (default 4)\n"
    "  --swap-at=N      trigger a snapshot swap after N requests\n"
    "  --min-cached=N   fail unless at least N responses were cache hits\n"
    "retry (single-shot and bench; transient failures only):\n"
    "  --retries=N      retry Unavailable errors and dropped connections\n"
    "                   up to N times with jittered backoff (default 0)\n"
    "  --retry-base-ms=F first backoff / jitter floor (default 2)\n"
    "  --retry-max-ms=F  backoff ceiling (default 250)\n"
    "multi-dataset / multi-tenant (single-shot and bench):\n"
    "  --dataset=ID     route against this dataset (default \"default\")\n"
    "  --tenant=ID      bill requests to this tenant's quota\n"
    "idle-connection soak:\n"
    "  --idle-conns=N   open N idle connections, hold them, then verify\n"
    "                   the server still answers; exits 0 on success\n"
    "  --idle-hold-ms=N how long to hold the idle herd (default 1000)\n"
    "with neither --op nor --bench, stdin lines are sent as requests.\n";

/// A blocking loopback connection speaking one-line-per-request.
class Connection {
 public:
  ~Connection() {
    if (fd_ >= 0) close(fd_);
  }

  Status Open(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return Status::Internal(std::string("socket: ") + std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      return Status::Unavailable(std::string("connect: ") +
                                 std::strerror(errno));
    }
    return Status::OK();
  }

  /// Closes and reconnects, dropping any half-read reply — the retry
  /// path after a transport failure.
  Status Reopen(uint16_t port) {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
    buffer_.clear();
    return Open(port);
  }

  /// Sends `request` (plus newline) and reads one response line.
  Result<std::string> RoundTrip(std::string request) {
    request.push_back('\n');
    size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = send(fd_, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        return Status::Unavailable(std::string("send: ") +
                                   std::strerror(errno));
      }
      sent += static_cast<size_t>(n);
    }
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        return Status::Unavailable("server closed the connection");
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string BuildRequest(const Options& options, uint64_t id) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("op");
  w.String(options.op);
  w.Key("id");
  w.Uint(id);
  if (options.op == "estimate" || options.op == "explain") {
    w.Key("query");
    w.String(options.query);
    w.Key("algo");
    w.String(options.algo);
    if (!options.semantics.empty()) {
      w.Key("semantics");
      w.String(options.semantics);
    }
    if (options.deadline_ms > 0) {
      w.Key("deadline_ms");
      w.Double(options.deadline_ms);
    }
  }
  if (options.op == "swap" && options.space > 0) {
    w.Key("space");
    w.Double(options.space);
  }
  if (options.op == "failpoint" && !options.spec.empty()) {
    w.Key("spec");
    w.String(options.spec);
  }
  if (!options.dataset.empty()) {
    w.Key("dataset");
    w.String(options.dataset);
  }
  if (!options.tenant.empty()) {
    w.Key("tenant");
    w.String(options.tenant);
  }
  w.EndObject();
  return std::move(w).str();
}

/// Sends `request`, retrying transient failures under `policy`
/// (nullptr = exactly one attempt). A dropped connection reopens and
/// resends; a structured Unavailable error backs off (flooring by the
/// server's retry_after_ms hint) and resends. Definitive answers —
/// ok responses and non-Unavailable errors — return immediately; so
/// does the last failure once the policy stops granting retries.
/// Never sleeps past `deadline`. Granted retries bump `retries_used`.
Result<std::string> RoundTripWithRetry(
    Connection* conn, uint16_t port, const std::string& request,
    serve::RetryPolicy* policy,
    std::chrono::steady_clock::time_point deadline,
    std::atomic<size_t>* retries_used) {
  for (int attempt = 1;; ++attempt) {
    Result<std::string> line = conn->RoundTrip(request);
    Status failure = Status::OK();
    std::chrono::milliseconds hint{0};
    bool transport = false;
    if (line.ok()) {
      Result<obs::JsonValue> parsed = obs::ParseJson(line.value());
      if (!parsed.ok()) return line;  // not a protocol line; don't resend
      if (parsed.value().GetBool("ok")) {
        if (policy != nullptr) policy->RecordSuccess();
        return line;
      }
      const obs::JsonValue* error = parsed.value().Find("error");
      if (error == nullptr || error->GetString("code") != "Unavailable") {
        return line;  // a definitive answer (bad query, corruption, ...)
      }
      failure = Status::Unavailable(std::string(error->GetString("message")));
      hint = std::chrono::milliseconds(
          static_cast<long long>(error->GetNumber("retry_after_ms")));
    } else {
      transport = true;
      failure = line.status();
    }
    if (policy == nullptr) return line;
    const std::optional<std::chrono::milliseconds> backoff =
        policy->NextBackoff(failure, attempt, deadline, hint);
    if (!backoff.has_value()) return line;
    if (retries_used != nullptr) retries_used->fetch_add(1);
    std::this_thread::sleep_for(*backoff);
    if (transport) {
      if (Status status = conn->Reopen(port); !status.ok()) {
        return status;
      }
    }
  }
}

/// The retry deadline: --deadline-ms bounds the whole retry sequence
/// client-side, matching the server-side per-attempt deadline.
std::chrono::steady_clock::time_point RetryDeadline(const Options& options) {
  if (options.deadline_ms <= 0) {
    return std::chrono::steady_clock::time_point::max();
  }
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(
             static_cast<long long>(options.deadline_ms));
}

/// Bench tallies, merged across worker threads.
struct BenchTally {
  size_t sent = 0;
  size_t ok = 0;
  size_t cached = 0;
  size_t transport_errors = 0;
  std::map<std::string, size_t> error_codes;
  std::set<uint64_t> versions;
  /// Every distinct estimate seen per snapshot version. The bench
  /// sends one query, so any version mapping to more than one value
  /// means a cache hit and a fresh compute disagreed — corruption.
  std::map<uint64_t, std::set<double>> version_estimates;

  void RecordOk(const obs::JsonValue& response) {
    ++ok;
    if (response.GetBool("cached")) ++cached;
    const auto version = static_cast<uint64_t>(response.GetNumber("version"));
    versions.insert(version);
    version_estimates[version].insert(response.GetNumber("estimate"));
  }

  void MergeFrom(const BenchTally& other) {
    sent += other.sent;
    ok += other.ok;
    cached += other.cached;
    transport_errors += other.transport_errors;
    for (const auto& [code, n] : other.error_codes) error_codes[code] += n;
    versions.insert(other.versions.begin(), other.versions.end());
    for (const auto& [version, estimates] : other.version_estimates) {
      version_estimates[version].insert(estimates.begin(), estimates.end());
    }
  }
};

int RunBench(const Options& options) {
  std::atomic<size_t> next_request{0};
  std::atomic<size_t> completed{0};
  std::atomic<size_t> retries_used{0};
  std::mutex mutex;
  BenchTally total;
  // One policy across all workers: the retry budget is per-process, so
  // a failing server sees bounded amplification from this client.
  const std::unique_ptr<serve::RetryPolicy> policy = MakeRetryPolicy(options);

  auto worker = [&] {
    Connection conn;
    if (!conn.Open(static_cast<uint16_t>(options.port)).ok()) {
      std::lock_guard<std::mutex> lock(mutex);
      ++total.transport_errors;
      return;
    }
    Options request_options = options;
    request_options.op = "estimate";
    BenchTally tally;
    for (size_t id = next_request.fetch_add(1); id < options.count;
         id = next_request.fetch_add(1)) {
      ++tally.sent;
      Result<std::string> line = RoundTripWithRetry(
          &conn, static_cast<uint16_t>(options.port),
          BuildRequest(request_options, id), policy.get(),
          RetryDeadline(options), &retries_used);
      completed.fetch_add(1);
      if (!line.ok()) {
        ++tally.transport_errors;
        break;  // the connection is gone; stop this worker
      }
      Result<obs::JsonValue> parsed = obs::ParseJson(line.value());
      if (!parsed.ok()) {
        ++tally.transport_errors;
        continue;
      }
      const obs::JsonValue& response = parsed.value();
      if (response.GetBool("ok")) {
        tally.RecordOk(response);
      } else if (const obs::JsonValue* error = response.Find("error")) {
        ++tally.error_codes[std::string(error->GetString("code", "?"))];
      } else {
        ++tally.transport_errors;
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    total.MergeFrom(tally);
  };

  std::vector<std::thread> workers;
  for (size_t i = 0; i < std::max<size_t>(1, options.threads); ++i) {
    workers.emplace_back(worker);
  }

  // The swap runs on its own connection once enough requests completed,
  // so the hot swap lands mid-run with estimate traffic in flight.
  bool swap_ok = true;
  if (options.swap_at > 0) {
    while (completed.load() < options.swap_at &&
           completed.load() < options.count) {
      std::this_thread::yield();
    }
    Connection conn;
    swap_ok = false;
    if (conn.Open(static_cast<uint16_t>(options.port)).ok()) {
      Options swap_options = options;
      swap_options.op = "swap";
      Result<std::string> line =
          conn.RoundTrip(BuildRequest(swap_options, options.count + 1));
      if (line.ok()) {
        Result<obs::JsonValue> parsed = obs::ParseJson(line.value());
        swap_ok = parsed.ok() && parsed.value().GetBool("ok");
        std::printf("swap: %s\n", line.value().c_str());
      }
      // Post-swap estimates on this connection: with the swap
      // acknowledged, these must be served by the new snapshot version
      // even while pre-swap bench traffic is still in flight.
      Options estimate_options = options;
      estimate_options.op = "estimate";
      for (size_t i = 0; swap_ok && i < 10; ++i) {
        Result<std::string> post =
            conn.RoundTrip(BuildRequest(estimate_options,
                                        options.count + 2 + i));
        if (!post.ok()) {
          swap_ok = false;
          break;
        }
        {
          std::lock_guard<std::mutex> lock(mutex);
          ++total.sent;
        }
        Result<obs::JsonValue> parsed = obs::ParseJson(post.value());
        if (!parsed.ok() || !parsed.value().GetBool("ok")) continue;
        std::lock_guard<std::mutex> lock(mutex);
        total.RecordOk(parsed.value());
      }
    }
  }
  for (std::thread& t : workers) t.join();

  std::printf("bench: %zu sent, %zu ok (%zu cached), %zu transport errors, "
              "%zu retries\n",
              total.sent, total.ok, total.cached, total.transport_errors,
              retries_used.load());
  for (const auto& [code, n] : total.error_codes) {
    std::printf("bench: %zu x %s\n", n, code.c_str());
  }
  std::printf("bench: versions seen:");
  for (uint64_t v : total.versions) {
    std::printf(" %llu", static_cast<unsigned long long>(v));
  }
  std::printf("\n");
  // Cached and computed answers for the same (query, version) must be
  // bit-identical; a version with two distinct estimates is corruption.
  bool estimates_consistent = true;
  for (const auto& [version, estimates] : total.version_estimates) {
    if (estimates.size() > 1) {
      estimates_consistent = false;
      std::printf("bench: version %llu served %zu distinct estimates\n",
                  static_cast<unsigned long long>(version), estimates.size());
    }
  }
  if (options.min_cached > 0 && total.cached < options.min_cached) {
    std::printf("bench: expected >= %zu cache hits, saw %zu\n",
                options.min_cached, total.cached);
    return 1;
  }
  // Failure = broken transport, a swap that didn't land, or cache/
  // compute disagreement; structured rejections (overload, deadline)
  // are expected under load.
  return total.transport_errors == 0 && swap_ok && estimates_consistent &&
                 total.ok > 0
             ? 0
             : 1;
}

/// Renders the `stats` verb as a table: one latency row per active
/// series, then the accuracy window and the recorder occupancy.
void PrettyPrintStats(const obs::JsonValue& response) {
  std::printf("snapshot v%.0f | queue %.0f/%.0f | schema v%.0f\n",
              response.GetNumber("version"),
              response.GetNumber("queue_depth"),
              response.GetNumber("queue_capacity"),
              response.GetNumber("schema_version"));
  if (const obs::JsonValue* latency = response.Find("latency")) {
    std::printf("%-16s %10s %10s %10s %10s %10s %10s\n", "series", "count",
                "mean_us", "p50_us", "p90_us", "p95_us", "p99_us");
    for (const auto& [name, series] : latency->members) {
      if (series.GetNumber("count") == 0) continue;
      std::printf("%-16s %10.0f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                  name.c_str(), series.GetNumber("count"),
                  series.GetNumber("mean_us"), series.GetNumber("p50_us"),
                  series.GetNumber("p90_us"), series.GetNumber("p95_us"),
                  series.GetNumber("p99_us"));
    }
  }
  if (const obs::JsonValue* accuracy = response.Find("accuracy")) {
    std::printf("accuracy: %.0f sampled, window %.0f | mean %+.4g | "
                "mean|e| %.4g | p50|e| %.4g | p99|e| %.4g\n",
                accuracy->GetNumber("recorded"),
                accuracy->GetNumber("window"), accuracy->GetNumber("mean"),
                accuracy->GetNumber("mean_abs"),
                accuracy->GetNumber("p50_abs"),
                accuracy->GetNumber("p99_abs"));
  }
  if (const obs::JsonValue* recorder = response.Find("recorder")) {
    if (recorder->GetBool("enabled")) {
      std::printf("recorder: %.0f spans (%.0f dropped) in %.0f slots | "
                  "slow log %.0f/%.0f at >= %.0f us\n",
                  recorder->GetNumber("recorded"),
                  recorder->GetNumber("dropped"),
                  recorder->GetNumber("capacity"),
                  recorder->GetNumber("slow_recorded"),
                  recorder->GetNumber("slow_capacity"),
                  recorder->GetNumber("slow_threshold_us"));
    } else {
      std::printf("recorder: disabled\n");
    }
  }
}

/// One flight-recorder span per line: identity, outcome, timing, and
/// the sampled accuracy error when present.
void PrettyPrintSpans(const char* label, const obs::JsonValue& spans) {
  for (const obs::JsonValue& span : spans.elements) {
    std::printf("%s #%.0f %-13s %-6s v%.0f %9.1f us  %s", label,
                span.GetNumber("id"), span.GetString("outcome", "?").data(),
                span.GetString("algo", "?").data(),
                span.GetNumber("version"), span.GetNumber("total_us"),
                std::string(span.GetString("query")).c_str());
    if (const obs::JsonValue* err = span.Find("relative_error")) {
      std::printf("  (rel err %+.4g)", err->number_value);
    }
    std::printf("\n");
  }
}

void PrettyPrintRecent(const obs::JsonValue& response) {
  std::printf("recorder: %.0f recorded, %.0f dropped\n",
              response.GetNumber("recorded"), response.GetNumber("dropped"));
  if (const obs::JsonValue* spans = response.Find("spans")) {
    PrettyPrintSpans("span", *spans);
  }
  if (const obs::JsonValue* slow = response.Find("slow")) {
    if (!slow->elements.empty()) {
      PrettyPrintSpans("slow", *slow);
    }
  }
}

int RunRepl(const Options& options) {
  Connection conn;
  if (Status status = conn.Open(static_cast<uint16_t>(options.port));
      !status.ok()) {
    std::fprintf(stderr, "twig_client: %s\n", status.ToString().c_str());
    return 1;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    Result<std::string> response = conn.RoundTrip(line);
    if (!response.ok()) {
      std::fprintf(stderr, "twig_client: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", response.value().c_str());
    std::fflush(stdout);
  }
  return 0;
}

/// Opens `idle_conns` connections, holds them idle for `idle_hold_ms`,
/// then proves the server is still responsive by round-tripping a ping
/// on a fresh connection *and* on one of the idle herd. Exercises the
/// front end's fd budget and idle-connection handling (the smoke test
/// uses this with ~1k connections).
int RunIdle(const Options& options) {
  const uint16_t port = static_cast<uint16_t>(options.port);
  std::vector<std::unique_ptr<Connection>> herd;
  herd.reserve(options.idle_conns);
  size_t opened = 0;
  for (size_t i = 0; i < options.idle_conns; ++i) {
    auto conn = std::make_unique<Connection>();
    if (Status status = conn->Open(port); !status.ok()) {
      std::fprintf(stderr, "twig_client: idle connection %zu/%zu: %s\n",
                   i + 1, options.idle_conns, status.ToString().c_str());
      return 1;
    }
    herd.push_back(std::move(conn));
    ++opened;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(options.idle_hold_ms));

  Options ping = options;
  ping.op = "ping";
  // A fresh connection proves the accept path still has headroom while
  // the herd holds its fds; the herd member proves idle connections
  // stay serviceable rather than being reaped or wedged.
  Connection fresh;
  if (Status status = fresh.Open(port); !status.ok()) {
    std::fprintf(stderr, "twig_client: fresh connect with %zu idle: %s\n",
                 opened, status.ToString().c_str());
    return 1;
  }
  Result<std::string> response = fresh.RoundTrip(BuildRequest(ping, 1));
  if (!response.ok()) {
    std::fprintf(stderr, "twig_client: ping with %zu idle: %s\n", opened,
                 response.status().ToString().c_str());
    return 1;
  }
  if (!herd.empty()) {
    response = herd.front()->RoundTrip(BuildRequest(ping, 2));
    if (!response.ok()) {
      std::fprintf(stderr, "twig_client: idle-herd ping: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
  }
  Result<obs::JsonValue> parsed = obs::ParseJson(response.value());
  if (!parsed.ok() || !parsed.value().GetBool("ok")) {
    std::fprintf(stderr, "twig_client: ping rejected: %s\n",
                 response.value().c_str());
    return 1;
  }
  std::printf("idle soak ok: %zu connections held %zums, server responsive\n",
              opened, options.idle_hold_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  util::FlagParser flags("twig_client", kUsage);
  flags.Size("port", &options.port);
  flags.String("op", &options.op);
  flags.String("query", &options.query);
  flags.String("algo", &options.algo);
  flags.String("semantics", &options.semantics);
  flags.Double("deadline-ms", &options.deadline_ms);
  flags.Double("space", &options.space);
  flags.String("spec", &options.spec);
  flags.Bool("bench", &options.bench);
  flags.Size("count", &options.count);
  flags.Size("threads", &options.threads);
  flags.Size("swap-at", &options.swap_at);
  flags.Size("min-cached", &options.min_cached);
  flags.Size("retries", &options.retries);
  flags.Double("retry-base-ms", &options.retry_base_ms);
  flags.Double("retry-max-ms", &options.retry_max_ms);
  flags.String("dataset", &options.dataset);
  flags.String("tenant", &options.tenant);
  flags.Size("idle-conns", &options.idle_conns);
  flags.Size("idle-hold-ms", &options.idle_hold_ms);
  if (int code = flags.Parse(argc, argv); code >= 0) return code;
  if (options.port == 0 || options.port > 65535) {
    std::fprintf(stderr, "twig_client: --port must be a TCP port\n");
    return 2;
  }

  // --query alone means "estimate this", not the stdin REPL; ops that
  // need a query but got none fall back to a default one.
  if (options.op.empty() && !options.query.empty() && !options.bench) {
    options.op = "estimate";
  }
  if (options.query.empty() &&
      (options.bench || options.op == "estimate" || options.op == "explain")) {
    options.query = "article(author, year)";
  }
  if (options.idle_conns > 0) return RunIdle(options);
  if (options.bench) return RunBench(options);
  if (options.op.empty()) return RunRepl(options);

  Connection conn;
  if (Status status = conn.Open(static_cast<uint16_t>(options.port));
      !status.ok()) {
    std::fprintf(stderr, "twig_client: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::unique_ptr<serve::RetryPolicy> policy = MakeRetryPolicy(options);
  Result<std::string> response = RoundTripWithRetry(
      &conn, static_cast<uint16_t>(options.port), BuildRequest(options, 1),
      policy.get(), RetryDeadline(options), nullptr);
  if (!response.ok()) {
    std::fprintf(stderr, "twig_client: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response.value().c_str());
  // Exit 0 only for an ok response, so scripts can gate on the result.
  Result<obs::JsonValue> parsed = obs::ParseJson(response.value());
  const bool ok = parsed.ok() && parsed.value().GetBool("ok");
  // The raw line above keeps scripts greppable; the observability
  // verbs additionally render human-readable.
  if (ok && options.op == "stats") PrettyPrintStats(parsed.value());
  if (ok && options.op == "recent") PrettyPrintRecent(parsed.value());
  return ok ? 0 : 1;
}
