// Plan chooser: the cost-based optimization use case from the paper's
// introduction ("knowing selectivities of various subqueries can help
// in identifying cheap query evaluation plans").
//
// For a twig query, a simple left-deep evaluation strategy matches one
// root-to-leaf branch first and then probes the remaining branches for
// every candidate found. Its cost is dominated by the *driver* branch:
// cost ~ count(driver) + sum over survivors of probe costs. Picking the
// most selective branch first is cheapest — but an optimizer only has
// estimates. This example compares the plan chosen with MSH estimates
// (1% summary) against the true optimum and the worst plan.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "cst/cst.h"
#include "data/generators.h"
#include "match/matcher.h"
#include "query/twig.h"
#include "suffix/path_suffix_tree.h"
#include "util/flags.h"
#include "xml/xml.h"

namespace {

using namespace twig;

/// One root-to-leaf branch of a twig, as its own single-path twig.
query::Twig BranchTwig(const query::Twig& twig,
                       const std::vector<query::TwigNodeId>& path) {
  query::Twig out;
  query::TwigNodeId parent = query::kNullTwigNode;
  for (query::TwigNodeId n : path) {
    if (twig.IsValue(n)) {
      out.AddValue(parent, twig.Value(n));
    } else if (parent == query::kNullTwigNode) {
      parent = out.AddRoot(twig.Tag(n));
    } else {
      parent = out.AddElement(parent, twig.Tag(n));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags("plan_chooser",
                         "usage: plan_chooser  (takes no arguments)\n");
  if (int code = flags.Parse(argc, argv); code >= 0) return code;
  data::DblpOptions options;
  options.target_bytes = 2 * 1024 * 1024;
  tree::Tree data = data::GenerateDblp(options);
  auto pst = suffix::PathSuffixTree::Build(data);
  cst::CstOptions copt;
  copt.space_budget_bytes = xml::XmlByteSize(data) / 100;
  cst::Cst summary = cst::Cst::Build(data, pst, copt);
  core::TwigEstimator estimator(&summary);

  const char* kQueries[] = {
      "article(year=\"19\", journal=\"Journal of\", author=\"Pr\")",
      "article(author=\"S\", volume=\"1\", pages=\"2\")",
      "inproceedings(booktitle=\"Proc\", author=\"Ka\", year=\"199\")",
      "book(publisher=\"B\", author=\"M\", year=\"1\")",
  };

  int chosen_optimal = 0;
  int total = 0;
  for (const char* text : kQueries) {
    auto twig = query::ParseTwig(text);
    if (!twig.ok()) continue;
    std::printf("query: %s\n", text);

    struct Branch {
      std::string text;
      double estimated;
      double true_count;
    };
    std::vector<Branch> branches;
    for (const auto& path : twig->RootToLeafPaths()) {
      query::Twig branch = BranchTwig(*twig, path);
      Branch b;
      b.text = query::FormatTwig(branch);
      b.estimated = estimator.Estimate(branch, core::Algorithm::kMsh);
      b.true_count = match::CountTwigMatches(data, branch).value().occurrence;
      branches.push_back(std::move(b));
    }
    for (const auto& b : branches) {
      std::printf("  branch %-42s est %10.1f  true %8.0f\n", b.text.c_str(),
                  b.estimated, b.true_count);
    }
    const auto by_est =
        std::min_element(branches.begin(), branches.end(),
                         [](const Branch& a, const Branch& b) {
                           return a.estimated < b.estimated;
                         });
    const auto by_true =
        std::min_element(branches.begin(), branches.end(),
                         [](const Branch& a, const Branch& b) {
                           return a.true_count < b.true_count;
                         });
    const auto worst =
        std::max_element(branches.begin(), branches.end(),
                         [](const Branch& a, const Branch& b) {
                           return a.true_count < b.true_count;
                         });
    std::printf("  optimizer drives with: %s (true cost %.0f)\n",
                by_est->text.c_str(), by_est->true_count);
    std::printf("  true optimum:          %s (cost %.0f); worst plan cost "
                "%.0f\n\n",
                by_true->text.c_str(), by_true->true_count,
                worst->true_count);
    ++total;
    if (by_est->true_count <= by_true->true_count * 2) ++chosen_optimal;
  }
  std::printf("estimator-guided plans within 2x of optimal: %d / %d\n",
              chosen_optimal, total);
  return 0;
}
