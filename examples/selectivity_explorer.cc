// Selectivity explorer: the "query feedback" use case from the paper's
// introduction. Builds CST summaries at several space budgets over a
// bibliography and shows, for each query you ask, what every
// estimation algorithm would report — next to the exact answer.
//
//   ./selectivity_explorer                         # built-in demo queries
//   ./selectivity_explorer 'book(author="Su")'     # your own twigs
//   ./selectivity_explorer file.xml 'a.b(c="x")'   # over your own XML

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "cst/cst.h"
#include "data/generators.h"
#include "match/matcher.h"
#include "query/twig.h"
#include "suffix/path_suffix_tree.h"
#include "util/flags.h"
#include "util/strings.h"
#include "xml/xml.h"

namespace {

using namespace twig;

tree::Tree LoadTree(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = xml::ParseXml(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "failed to parse %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(parsed).value();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  util::FlagParser flags("selectivity_explorer",
                         "usage: selectivity_explorer [file.xml] [TWIG...]\n");
  flags.Positional(&args);
  if (int code = flags.Parse(argc, argv); code >= 0) return code;

  std::vector<std::string> query_texts;
  tree::Tree data;
  bool generated = true;
  for (const std::string& arg : args) {
    if (arg.size() > 4 && arg.substr(arg.size() - 4) == ".xml") {
      data = LoadTree(arg);
      generated = false;
    } else {
      query_texts.push_back(arg);
    }
  }
  if (generated) {
    data::DblpOptions options;
    options.target_bytes = 2 * 1024 * 1024;
    data = data::GenerateDblp(options);
  }
  if (query_texts.empty()) {
    query_texts = {
        "article(author=\"S\", year=\"19\")",
        "article(journal=\"Journal\", author=\"B\")",
        "inproceedings(booktitle=\"Proc\", pages=\"1\")",
        "book(publisher=\"P\", year=\"198\")",
        "dblp.article.author=\"Ch\"",
    };
  }

  const size_t xml_bytes = xml::XmlByteSize(data);
  std::printf("data: %zu nodes, %s\n", data.size(),
              HumanBytes(xml_bytes).c_str());
  auto pst = suffix::PathSuffixTree::Build(data);

  for (double fraction : {0.01, 0.05}) {
    cst::CstOptions copt;
    copt.space_budget_bytes =
        static_cast<size_t>(fraction * static_cast<double>(xml_bytes));
    cst::Cst summary = cst::Cst::Build(data, pst, copt);
    core::TwigEstimator estimator(&summary);
    std::printf("\n-- CST at %.1f%% space: %zu subpaths, %s, threshold %u --\n",
                100 * fraction, summary.node_count(),
                HumanBytes(summary.size_bytes()).c_str(),
                summary.prune_threshold());
    std::printf("%-44s %10s", "query", "true");
    for (core::Algorithm a : core::kAllAlgorithms) {
      std::printf(" %9s", core::AlgorithmName(a));
    }
    std::printf("\n");
    for (const auto& text : query_texts) {
      auto twig = query::ParseTwig(text);
      if (!twig.ok()) {
        std::fprintf(stderr, "bad query '%s': %s\n", text.c_str(),
                     twig.status().ToString().c_str());
        continue;
      }
      const match::TwigCounts truth =
          match::CountTwigMatches(data, *twig).value();
      std::printf("%-44s %10.0f", text.c_str(), truth.occurrence);
      for (core::Algorithm a : core::kAllAlgorithms) {
        std::printf(" %9.1f", estimator.Estimate(*twig, a));
      }
      std::printf("\n");
    }
  }
  return 0;
}
