// twig_convert: converts serialized CSTs between the whole-blob
// TWCST02 format and the paged TWCST03 store format (DESIGN.md §15),
// sniffing the input format from its magic prefix.
//
//   ./twig_convert --in=cst.twcst02 --out=cst.twcst03
//   ./twig_convert --in=cst.twcst03 --out=cst.twcst02 --to=twcst02
//   ./twig_convert --in=store.twcst03 --info   # print header, no output
//
// Conversion is lossless in both directions: the paged store carries
// exactly the fields of the whole-blob format, re-arranged into
// checksummed pages.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "cst/cst.h"
#include "cst/paged_cst.h"
#include "storage/page.h"
#include "util/flags.h"
#include "util/strings.h"

namespace {

using namespace twig;

struct Options {
  std::string in_path;
  std::string out_path;
  std::string to = "twcst03";
  size_t page_bytes = storage::kDefaultPageBytes;
  bool info = false;
};

constexpr char kUsage[] =
    "usage: twig_convert --in=FILE [--out=FILE] [--to=FMT]\n"
    "                    [--page-bytes=N] [--info]\n"
    "  --in=FILE        serialized CST to read (TWCST02 or TWCST03;\n"
    "                   the format is sniffed from the magic prefix)\n"
    "  --out=FILE       where to write the converted CST\n"
    "  --to=FMT         output format: twcst02 | twcst03 (default\n"
    "                   twcst03)\n"
    "  --page-bytes=N   page size for twcst03 output (default 65536)\n"
    "  --info           print the input's format and summary stats and\n"
    "                   exit (no --out needed)\n";

const char* FormatName(cst::CstFormat format) {
  switch (format) {
    case cst::CstFormat::kTwcst02:
      return "TWCST02 (whole-blob)";
    case cst::CstFormat::kTwcst03:
      return "TWCST03 (paged)";
    case cst::CstFormat::kUnknown:
      break;
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  util::FlagParser flags("twig_convert", kUsage);
  flags.String("in", &options.in_path);
  flags.String("out", &options.out_path);
  flags.String("to", &options.to);
  flags.Size("page-bytes", &options.page_bytes);
  flags.Bool("info", &options.info);
  if (int code = flags.Parse(argc, argv); code >= 0) return code;
  if (options.in_path.empty()) {
    std::fprintf(stderr, "twig_convert: --in is required\n%s", kUsage);
    return 2;
  }
  if (options.to != "twcst02" && options.to != "twcst03") {
    std::fprintf(stderr, "twig_convert: --to must be twcst02 or twcst03\n");
    return 2;
  }
  if (!options.info && options.out_path.empty()) {
    std::fprintf(stderr, "twig_convert: --out is required (or --info)\n");
    return 2;
  }

  std::ifstream in(options.in_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "twig_convert: cannot open %s\n",
                 options.in_path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = std::move(buffer).str();

  const cst::CstFormat format = cst::SniffCstFormat(bytes);
  if (format == cst::CstFormat::kUnknown) {
    std::fprintf(stderr,
                 "twig_convert: %s is neither TWCST02 nor TWCST03\n",
                 options.in_path.c_str());
    return 1;
  }

  // Materialize through the format-agnostic loader: TWCST02
  // deserializes, TWCST03 pages in (and is fully walked below only if
  // we re-serialize to TWCST02).
  auto view = cst::LoadCstBlob(std::move(bytes), options.in_path);
  if (!view.ok()) {
    std::fprintf(stderr, "twig_convert: %s\n",
                 view.status().ToString().c_str());
    return 1;
  }

  if (options.info) {
    std::printf("%s: %s\n", options.in_path.c_str(), FormatName(format));
    std::printf("  nodes       %zu\n", view.value()->node_count());
    std::printf("  signatures  %zu x %zu hashes\n",
                view.value()->signature_count(),
                view.value()->signature_length());
    std::printf("  labels      %zu\n", view.value()->labels().size());
    std::printf("  data nodes  %llu\n",
                static_cast<unsigned long long>(
                    view.value()->data_node_count()));
    std::printf("  size        %s\n",
                HumanBytes(view.value()->size_bytes()).c_str());
    return 0;
  }

  // Re-serialization needs a materialized Cst; a paged input is walked
  // into one first (identical fields, so the round trip is lossless).
  Result<cst::Cst> memory = cst::Cst::Materialize(*view.value());
  if (!memory.ok()) {
    std::fprintf(stderr, "twig_convert: %s\n",
                 memory.status().ToString().c_str());
    return 1;
  }
  std::string out_bytes;
  if (options.to == "twcst02") {
    out_bytes = memory.value().Serialize();
  } else {
    Result<std::string> paged =
        memory.value().SerializePaged(options.page_bytes);
    if (!paged.ok()) {
      std::fprintf(stderr, "twig_convert: %s\n",
                   paged.status().ToString().c_str());
      return 1;
    }
    out_bytes = std::move(paged).value();
  }

  std::ofstream out(options.out_path,
                    std::ios::binary | std::ios::trunc);
  out.write(out_bytes.data(),
            static_cast<std::streamsize>(out_bytes.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "twig_convert: cannot write %s\n",
                 options.out_path.c_str());
    return 1;
  }
  std::printf("%s (%s) -> %s (%s, %s)\n", options.in_path.c_str(),
              FormatName(format), options.out_path.c_str(),
              options.to.c_str(), HumanBytes(out_bytes.size()).c_str());
  return 0;
}
