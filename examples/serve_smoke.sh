#!/bin/sh
# End-to-end smoke for the serving subsystem: start twig_serve on an
# ephemeral port, drive it with twig_client (ping, explain, metrics, a
# multi-threaded estimate bench with a snapshot hot-swap mid-run),
# check the observability verbs (stats percentiles, the accuracy
# window, the flight recorder's recent/slow spans), then shut it down
# over the wire and check it exits cleanly.
#
#   serve_smoke.sh <twig_serve> <twig_client> <workdir>
set -eu

SERVE="$1"
CLIENT="$2"
WORK="$3"

mkdir -p "$WORK"
PORT_FILE="$WORK/port"
LOG="$WORK/serve.log"
rm -f "$PORT_FILE"

# Observability cranked up: every estimate is re-executed exactly
# (--accuracy-sample=1) and a 1 us slow threshold pushes essentially
# every span into the slow log, so the stats/recent checks below see
# a populated accuracy window and slow ring.
"$SERVE" --port=0 --port-file="$PORT_FILE" --bytes=131072 --workers=2 \
    --conns=4 --recorder-entries=256 --slow-us=1 --accuracy-sample=1 \
    >"$LOG" 2>&1 &
SERVE_PID=$!

fail() {
    echo "serve_smoke: $1" >&2
    cat "$LOG" >&2 || true
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}

# Wait for the server to write its bound port.
tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "server did not start"
    kill -0 "$SERVE_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
done
PORT=$(cat "$PORT_FILE")
echo "serve_smoke: server on port $PORT"

"$CLIENT" --port="$PORT" --op=ping || fail "ping failed"
"$CLIENT" --port="$PORT" --op=estimate --query='article(author, year)' \
    || fail "estimate failed"
"$CLIENT" --port="$PORT" --op=explain --query='article.author' \
    || fail "explain failed"

# Load: 1000 estimates across 4 connections with a snapshot swap once
# 300 have completed. Transport errors or a failed swap exit nonzero.
"$CLIENT" --port="$PORT" --bench --count=1000 --threads=4 --swap-at=300 \
    --space=0.02 || fail "bench with hot swap failed"

# The metrics snapshot must reflect the traffic.
METRICS=$("$CLIENT" --port="$PORT" --op=metrics) || fail "metrics failed"
case "$METRICS" in
  *serve_served*) : ;;
  *) fail "metrics response lacks serve counters: $METRICS" ;;
esac

# stats: latency percentiles for the worked series, and — at sampling
# rate 1 — an accuracy window covering every served estimate.
STATS=$("$CLIENT" --port="$PORT" --op=stats) || fail "stats failed"
case "$STATS" in
  *'"p99_us"'*) : ;;
  *) fail "stats response lacks latency percentiles: $STATS" ;;
esac
case "$STATS" in
  *'"accuracy":{"recorded":0'*) fail "accuracy window is empty: $STATS" ;;
  *'"accuracy":{"recorded":'*) : ;;
  *) fail "stats response lacks the accuracy window: $STATS" ;;
esac
case "$STATS" in
  *'"recorder":{"enabled":true'*) : ;;
  *) fail "stats response lacks recorder occupancy: $STATS" ;;
esac

# recent: the flight recorder retained spans, and the 1 us slow
# threshold forced well-formed slow-log entries (a slow entry carries
# the same keys as a recent span: outcome and per-stage offsets).
RECENT=$("$CLIENT" --port="$PORT" --op=recent) || fail "recent failed"
case "$RECENT" in
  *'"spans":[]'*) fail "flight recorder retained no spans: $RECENT" ;;
  *'"spans":[{"id":'*) : ;;
  *) fail "recent response lacks spans: $RECENT" ;;
esac
case "$RECENT" in
  *'"slow":[{"id":'*) : ;;
  *) fail "slow log is empty despite --slow-us=1: $RECENT" ;;
esac
case "$RECENT" in
  *'"outcome":"served"'*) : ;;
  *) fail "no served span in the recorder: $RECENT" ;;
esac
case "$RECENT" in
  *'"stages_us":{"admitted":'*) : ;;
  *) fail "spans lack per-stage offsets: $RECENT" ;;
esac

"$CLIENT" --port="$PORT" --op=shutdown || fail "shutdown op failed"

# Graceful exit: the server process must stop on its own.
tries=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "server did not stop after shutdown"
    sleep 0.1
done
wait "$SERVE_PID" 2>/dev/null || fail "server exited nonzero"
grep -q "stopped" "$LOG" || fail "server log lacks clean-stop line"

# ---------------------------------------------------------------------------
# Second run: same server with the result cache enabled. The bench
# repeats one query 1000 times with a swap mid-run, so the cache must
# take hits, every (version, query) pair must stay bit-identical
# (twig_client exits nonzero otherwise), and swapping back to the
# original space fraction must reproduce the pre-swap estimate exactly.
rm -f "$PORT_FILE"
LOG="$WORK/serve_cache.log"
"$SERVE" --port=0 --port-file="$PORT_FILE" --bytes=131072 --workers=2 \
    --conns=4 --space=0.01 --cache-entries=1024 >"$LOG" 2>&1 &
SERVE_PID=$!

tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "cached server did not start"
    kill -0 "$SERVE_PID" 2>/dev/null || fail "cached server died during startup"
    sleep 0.1
done
PORT=$(cat "$PORT_FILE")
echo "serve_smoke: cached server on port $PORT"

# Ground truth at the server's startup snapshot (version 1, space 0.01).
E1_LINE=$("$CLIENT" --port="$PORT" --op=estimate \
    --query='article(author, year)') || fail "cached-server estimate failed"
E1=$(printf '%s' "$E1_LINE" | sed 's/.*"estimate":\([^,}]*\).*/\1/')
[ -n "$E1" ] || fail "could not extract pre-swap estimate: $E1_LINE"

"$CLIENT" --port="$PORT" --bench --count=1000 --threads=4 --swap-at=300 \
    --space=0.02 --min-cached=1 \
    || fail "cached bench with hot swap failed (hits or bit-identity)"

# Swap back to the startup space fraction: the rebuilt snapshot is a
# new version, but the same data at the same budget, so the estimate
# must reproduce E1 bit for bit (printed identically).
"$CLIENT" --port="$PORT" --op=swap --space=0.01 || fail "swap-back failed"
E2_LINE=$("$CLIENT" --port="$PORT" --op=estimate \
    --query='article(author, year)') || fail "post-swap estimate failed"
E2=$(printf '%s' "$E2_LINE" | sed 's/.*"estimate":\([^,}]*\).*/\1/')
[ "$E1" = "$E2" ] || fail "post-swap estimate $E2 != pre-swap $E1"

# The cache counters must show real hits.
METRICS=$("$CLIENT" --port="$PORT" --op=metrics) || fail "cached metrics failed"
case "$METRICS" in
  *'"serve_cache_hits":0'*) fail "cache took no hits: $METRICS" ;;
  *serve_cache_hits*) : ;;
  *) fail "metrics response lacks cache counters: $METRICS" ;;
esac

"$CLIENT" --port="$PORT" --op=shutdown || fail "cached shutdown op failed"
tries=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "cached server did not stop after shutdown"
    sleep 0.1
done
wait "$SERVE_PID" 2>/dev/null || fail "cached server exited nonzero"

# ---------------------------------------------------------------------------
# Third run: the fault path. Arm the snapshot/rebuild failpoint over
# the wire, force a swap to fail, and check that the server keeps
# serving from the last good snapshot, reports itself degraded on the
# health verb, and recovers to ok once a disarmed swap lands.
rm -f "$PORT_FILE"
LOG="$WORK/serve_faults.log"
"$SERVE" --port=0 --port-file="$PORT_FILE" --bytes=131072 --workers=2 \
    --conns=4 --space=0.01 >"$LOG" 2>&1 &
SERVE_PID=$!

tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "fault server did not start"
    kill -0 "$SERVE_PID" 2>/dev/null || fail "fault server died during startup"
    sleep 0.1
done
PORT=$(cat "$PORT_FILE")
echo "serve_smoke: fault server on port $PORT"

HEALTH=$("$CLIENT" --port="$PORT" --op=health) || fail "health verb failed"
case "$HEALTH" in
  *'"state":"ok"'*) : ;;
  *) fail "fresh server is not healthy: $HEALTH" ;;
esac

"$CLIENT" --port="$PORT" --op=failpoint --spec='snapshot/rebuild=error' \
    || fail "failpoint arm failed"
# The armed failpoint makes the rebuild fail: swap must report the
# injected error (client exits nonzero on the error response)...
"$CLIENT" --port="$PORT" --op=swap --space=0.02 >/dev/null 2>&1 \
    && fail "swap unexpectedly succeeded with snapshot/rebuild armed"
# ...the last good snapshot keeps serving...
"$CLIENT" --port="$PORT" --op=estimate --query='article(author, year)' \
    || fail "estimate failed during degradation"
# ...and health reports degraded with the rebuild failure as reason.
HEALTH=$("$CLIENT" --port="$PORT" --op=health) || fail "health verb failed"
case "$HEALTH" in
  *'"state":"degraded"'*'rebuild failed'*) : ;;
  *) fail "health is not degraded after a failed rebuild: $HEALTH" ;;
esac

# Disarm over the wire; the failpoint stats must show the trigger.
FP=$("$CLIENT" --port="$PORT" --op=failpoint --spec='snapshot/rebuild=off') \
    || fail "failpoint disarm failed"
case "$FP" in
  *'"triggers":0'*) fail "armed failpoint never fired: $FP" ;;
  *'"triggers":'*) : ;;
  *) fail "failpoint list lacks trigger stats: $FP" ;;
esac

# A clean swap lands and clears the degradation.
"$CLIENT" --port="$PORT" --op=swap --space=0.02 || fail "recovery swap failed"
HEALTH=$("$CLIENT" --port="$PORT" --op=health) || fail "health verb failed"
case "$HEALTH" in
  *'"state":"ok"'*) : ;;
  *) fail "health did not recover after a clean swap: $HEALTH" ;;
esac

# Injected estimate faults: shed requests are structured Unavailable
# errors, and --retries rides them out (exit 0 = final answer was ok).
"$CLIENT" --port="$PORT" --op=failpoint --spec='serve/estimate=error:0.5' \
    || fail "failpoint arm (estimate) failed"
"$CLIENT" --port="$PORT" --op=estimate --query='article(author, year)' \
    --retries=10 || fail "retried estimate failed at 50% fault rate"
"$CLIENT" --port="$PORT" --op=failpoint --spec='serve/estimate=off' \
    || fail "failpoint disarm (estimate) failed"

"$CLIENT" --port="$PORT" --op=shutdown || fail "fault shutdown op failed"
tries=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "fault server did not stop after shutdown"
    sleep 0.1
done
wait "$SERVE_PID" 2>/dev/null || fail "fault server exited nonzero"

# ---------------------------------------------------------------------------
# Fourth run: paged storage. First an in-memory reference server for
# ground truth; then a server that writes the same summary to a
# TWCST03 store and serves it through a deliberately tiny buffer pool
# (4 frames of 1 KiB), so answers must be bit-identical while the pool
# demonstrably evicts. Then corrupt reads are injected over the wire:
# estimates must fail as structured errors (never wrong answers) and
# health must degrade with a storage reason, recovering on swap.
rm -f "$PORT_FILE"
LOG="$WORK/serve_memory_ref.log"
"$SERVE" --port=0 --port-file="$PORT_FILE" --bytes=131072 --workers=2 \
    --conns=4 --space=0.01 >"$LOG" 2>&1 &
SERVE_PID=$!

tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "reference server did not start"
    kill -0 "$SERVE_PID" 2>/dev/null || fail "reference server died during startup"
    sleep 0.1
done
PORT=$(cat "$PORT_FILE")
echo "serve_smoke: in-memory reference server on port $PORT"

MEM_LINE=$("$CLIENT" --port="$PORT" --op=estimate \
    --query='article(author, year)') || fail "reference estimate failed"
MEM=$(printf '%s' "$MEM_LINE" | sed 's/.*"estimate":\([^,}]*\).*/\1/')
[ -n "$MEM" ] || fail "could not extract reference estimate: $MEM_LINE"
"$CLIENT" --port="$PORT" --op=shutdown || fail "reference shutdown failed"
tries=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "reference server did not stop"
    sleep 0.1
done
wait "$SERVE_PID" 2>/dev/null || fail "reference server exited nonzero"

rm -f "$PORT_FILE"
LOG="$WORK/serve_paged.log"
STORE="$WORK/cst.twcst03"
"$SERVE" --port=0 --port-file="$PORT_FILE" --bytes=131072 --workers=2 \
    --conns=4 --space=0.01 --store-out="$STORE" --page-bytes=1024 \
    --buffer-mb=0.004 >"$LOG" 2>&1 &
SERVE_PID=$!

tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "paged server did not start"
    kill -0 "$SERVE_PID" 2>/dev/null || fail "paged server died during startup"
    sleep 0.1
done
PORT=$(cat "$PORT_FILE")
echo "serve_smoke: paged server on port $PORT (store $STORE)"
[ -s "$STORE" ] || fail "paged server wrote no store file"

# Same generated data, same space budget, served through 1 KiB pages:
# the estimate must reproduce the in-memory answer bit for bit.
PAGED_LINE=$("$CLIENT" --port="$PORT" --op=estimate \
    --query='article(author, year)') || fail "paged estimate failed"
PAGED=$(printf '%s' "$PAGED_LINE" | sed 's/.*"estimate":\([^,}]*\).*/\1/')
[ "$PAGED" = "$MEM" ] || fail "paged estimate $PAGED != in-memory $MEM"

# The 4-frame pool cannot hold a walk's working set: the metrics must
# show the clock actually evicting.
METRICS=$("$CLIENT" --port="$PORT" --op=metrics) || fail "paged metrics failed"
case "$METRICS" in
  *'"storage_page_evictions":0'*) fail "paged serving never evicted: $METRICS" ;;
  *storage_page_evictions*) : ;;
  *) fail "metrics response lacks storage counters: $METRICS" ;;
esac

# Injected checksum corruption: estimates turn into structured errors
# (degraded reads never silently skew an answer)...
"$CLIENT" --port="$PORT" --op=failpoint --spec='storage/checksum=error' \
    || fail "failpoint arm (storage/checksum) failed"
"$CLIENT" --port="$PORT" --op=estimate --query='article(author, year)' \
    >/dev/null 2>&1 \
    && fail "estimate unexpectedly succeeded with storage/checksum armed"
# ...and health degrades with the storage reason instead of crashing.
HEALTH=$("$CLIENT" --port="$PORT" --op=health) || fail "health verb failed"
case "$HEALTH" in
  *'"state":"degraded"'*storage*) : ;;
  *) fail "health is not storage-degraded under checksum faults: $HEALTH" ;;
esac

# Disarm; reads work again (failed pages were never cached), and a
# swap — rebuild, rewrite the store, reopen — clears the degradation.
"$CLIENT" --port="$PORT" --op=failpoint --spec='storage/checksum=off' \
    || fail "failpoint disarm (storage/checksum) failed"
"$CLIENT" --port="$PORT" --op=estimate --query='article(author, year)' \
    || fail "estimate did not recover after disarm"
"$CLIENT" --port="$PORT" --op=swap || fail "paged recovery swap failed"
HEALTH=$("$CLIENT" --port="$PORT" --op=health) || fail "health verb failed"
case "$HEALTH" in
  *'"state":"ok"'*) : ;;
  *) fail "paged health did not recover after swap: $HEALTH" ;;
esac

"$CLIENT" --port="$PORT" --op=shutdown || fail "paged shutdown op failed"
tries=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "paged server did not stop after shutdown"
    sleep 0.1
done
wait "$SERVE_PID" 2>/dev/null || fail "paged server exited nonzero"

# ---------------------------------------------------------------------------
# Fifth run: multi-dataset, multi-tenant. One server hosts "default"
# plus a second generated dataset "beta", each with its own snapshot
# lineage; tenant "hot" gets a starved token bucket (rate 0.001/s,
# burst 1) while "calm" is unlimited. Checks: estimates route per
# dataset, a beta swap leaves default bit-identical, the throttled
# tenant sees a structured Unavailable with a retry_after_ms hint
# while calm keeps being served, and the epoll front end survives a
# herd of 1000 idle connections without wedging the accept path.
rm -f "$PORT_FILE"
LOG="$WORK/serve_multi.log"
"$SERVE" --port=0 --port-file="$PORT_FILE" --bytes=131072 --workers=2 \
    --conns=4 --space=0.01 --datasets=beta:65536 \
    --tenants='hot=0.001:1:1,calm=0:8:3' >"$LOG" 2>&1 &
SERVE_PID=$!

tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "multi server did not start"
    kill -0 "$SERVE_PID" 2>/dev/null || fail "multi server died during startup"
    sleep 0.1
done
PORT=$(cat "$PORT_FILE")
echo "serve_smoke: multi-dataset server on port $PORT"

# The same twig against the two datasets hits two different corpora,
# and a routed reply echoes which dataset answered.
DEF_LINE=$("$CLIENT" --port="$PORT" --op=estimate \
    --query='article(author, year)') || fail "default-dataset estimate failed"
DEF=$(printf '%s' "$DEF_LINE" | sed 's/.*"estimate":\([^,}]*\).*/\1/')
[ -n "$DEF" ] || fail "could not extract default estimate: $DEF_LINE"
BETA_LINE=$("$CLIENT" --port="$PORT" --op=estimate --dataset=beta \
    --query='article(author, year)') || fail "beta-dataset estimate failed"
BETA=$(printf '%s' "$BETA_LINE" | sed 's/.*"estimate":\([^,}]*\).*/\1/')
case "$BETA_LINE" in
  *'"dataset":"beta"'*) : ;;
  *) fail "beta reply does not echo its dataset: $BETA_LINE" ;;
esac
[ "$DEF" != "$BETA" ] || fail "datasets served identical estimates: $DEF"

# Unknown datasets are rejected, not silently defaulted.
"$CLIENT" --port="$PORT" --op=ping --dataset=nope >/dev/null 2>&1 \
    && fail "unknown dataset was accepted"

# Per-dataset swap: rebuilding beta at a new space budget bumps only
# beta's lineage; default's estimate stays bit-identical.
"$CLIENT" --port="$PORT" --op=swap --dataset=beta --space=0.02 \
    || fail "beta swap failed"
DEF2_LINE=$("$CLIENT" --port="$PORT" --op=estimate \
    --query='article(author, year)') || fail "post-swap default estimate failed"
DEF2=$(printf '%s' "$DEF2_LINE" | sed 's/.*"estimate":\([^,}]*\).*/\1/')
[ "$DEF" = "$DEF2" ] || fail "beta swap disturbed default: $DEF2 != $DEF"
STATS=$("$CLIENT" --port="$PORT" --op=stats) || fail "multi stats failed"
case "$STATS" in
  *'"beta":{"version":2'*) : ;;
  *) fail "stats does not show beta at version 2: $STATS" ;;
esac
case "$STATS" in
  *'"default":{"version":1'*) : ;;
  *) fail "stats does not show default still at version 1: $STATS" ;;
esac

# Tenant quotas: hot's single-token bucket admits one estimate, then
# sheds with a structured Unavailable carrying a retry hint; calm is
# untouched by hot's throttling.
"$CLIENT" --port="$PORT" --op=estimate --tenant=hot \
    --query='article(author, year)' || fail "hot tenant's first request failed"
THROTTLED=$("$CLIENT" --port="$PORT" --op=estimate --tenant=hot \
    --query='article(author, year)' 2>/dev/null) \
    && fail "hot tenant's second request was not throttled: $THROTTLED"
case "$THROTTLED" in
  *'"code":"Unavailable"'*) : ;;
  *) fail "throttle is not a structured Unavailable: $THROTTLED" ;;
esac
case "$THROTTLED" in
  *'"retry_after_ms":'*) : ;;
  *) fail "throttle carries no retry_after_ms hint: $THROTTLED" ;;
esac
"$CLIENT" --port="$PORT" --op=estimate --tenant=calm \
    --query='article(author, year)' \
    || fail "calm tenant was collaterally throttled"
STATS=$("$CLIENT" --port="$PORT" --op=stats) || fail "tenant stats failed"
case "$STATS" in
  *'"tenant":"hot"'*'"throttled":'*) : ;;
  *) fail "stats lacks per-tenant admission counters: $STATS" ;;
esac

# 1000 idle connections held open must not wedge the accept path or
# starve live traffic (twig_client verifies a fresh connection and an
# idle-herd member both still round-trip a ping).
"$CLIENT" --port="$PORT" --idle-conns=1000 --idle-hold-ms=500 \
    || fail "server wilted under 1000 idle connections"

"$CLIENT" --port="$PORT" --op=shutdown || fail "multi shutdown op failed"
tries=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "multi server did not stop after shutdown"
    sleep 0.1
done
wait "$SERVE_PID" 2>/dev/null || fail "multi server exited nonzero"
echo "serve_smoke: OK"
