#!/bin/sh
# End-to-end smoke for the serving subsystem: start twig_serve on an
# ephemeral port, drive it with twig_client (ping, explain, metrics, a
# multi-threaded estimate bench with a snapshot hot-swap mid-run), then
# shut it down over the wire and check it exits cleanly.
#
#   serve_smoke.sh <twig_serve> <twig_client> <workdir>
set -eu

SERVE="$1"
CLIENT="$2"
WORK="$3"

mkdir -p "$WORK"
PORT_FILE="$WORK/port"
LOG="$WORK/serve.log"
rm -f "$PORT_FILE"

"$SERVE" --port=0 --port-file="$PORT_FILE" --bytes=131072 --workers=2 \
    --conns=4 >"$LOG" 2>&1 &
SERVE_PID=$!

fail() {
    echo "serve_smoke: $1" >&2
    cat "$LOG" >&2 || true
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}

# Wait for the server to write its bound port.
tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "server did not start"
    kill -0 "$SERVE_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
done
PORT=$(cat "$PORT_FILE")
echo "serve_smoke: server on port $PORT"

"$CLIENT" --port="$PORT" --op=ping || fail "ping failed"
"$CLIENT" --port="$PORT" --op=estimate --query='article(author, year)' \
    || fail "estimate failed"
"$CLIENT" --port="$PORT" --op=explain --query='article.author' \
    || fail "explain failed"

# Load: 1000 estimates across 4 connections with a snapshot swap once
# 300 have completed. Transport errors or a failed swap exit nonzero.
"$CLIENT" --port="$PORT" --bench --count=1000 --threads=4 --swap-at=300 \
    --space=0.02 || fail "bench with hot swap failed"

# The metrics snapshot must reflect the traffic.
METRICS=$("$CLIENT" --port="$PORT" --op=metrics) || fail "metrics failed"
case "$METRICS" in
  *serve_served*) : ;;
  *) fail "metrics response lacks serve counters: $METRICS" ;;
esac

"$CLIENT" --port="$PORT" --op=shutdown || fail "shutdown op failed"

# Graceful exit: the server process must stop on its own.
tries=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "server did not stop after shutdown"
    sleep 0.1
done
wait "$SERVE_PID" 2>/dev/null || fail "server exited nonzero"
grep -q "stopped" "$LOG" || fail "server log lacks clean-stop line"
echo "serve_smoke: OK"
