// twig_serve: the estimation server (DESIGN.md §10). Summarizes a
// document into a CST snapshot, publishes it to a SnapshotCatalog, and
// serves estimate/explain/metrics/swap requests over newline-delimited
// JSON on loopback TCP.
//
//   ./twig_serve                         # generated DBLP data, port 7411
//   ./twig_serve --xml=file.xml          # serve your own document
//   ./twig_serve --port=0 --port-file=p  # ephemeral port, written to ./p
//   ./twig_serve --store=cst.twcst03 --buffer-mb=16
//                                        # serve a paged store, no parse
//   ./twig_serve --datasets=eu:65536,us:131072 \
//                --tenants=gold=0:8:4,probe=5:2:1
//                                        # extra datasets + tenant quotas
//
// Stop it with {"op":"shutdown"} (e.g. via twig_client --op=shutdown).

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cst/cst.h"
#include "cst/paged_cst.h"
#include "data/generators.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/tcp.h"
#include "storage/page.h"
#include "suffix/path_suffix_tree.h"
#include "tree/tree.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/strings.h"
#include "xml/xml.h"

namespace {

using namespace twig;

struct Options {
  size_t port = 7411;
  std::string port_file;
  std::string xml_path;
  size_t bytes = 2 * 1024 * 1024;
  double space = 0.01;
  size_t workers = 2;
  size_t conns = 4;
  size_t queue = 256;
  size_t deadline_ms = 0;
  size_t cache_entries = 0;
  size_t cache_shards = 8;
  size_t recorder_entries = 256;
  size_t slow_us = 50000;
  size_t accuracy_sample = 256;
  std::string failpoints;
  size_t failpoint_seed = 0;
  std::string store_path;
  std::string store_out;
  double buffer_mb = 16;
  size_t page_bytes = storage::kDefaultPageBytes;
  std::string datasets;
  std::string tenants;
};

constexpr char kUsage[] =
    "usage: twig_serve [--port=N] [--port-file=PATH] [--xml=FILE]\n"
    "                  [--bytes=N] [--space=F] [--workers=N] [--conns=N]\n"
    "                  [--queue=N] [--deadline-ms=N] [--cache-entries=N]\n"
    "                  [--cache-shards=N] [--recorder-entries=N]\n"
    "                  [--slow-us=N] [--accuracy-sample=N]\n"
    "  --port=N         TCP port on 127.0.0.1; 0 = ephemeral (default "
    "7411)\n"
    "  --port-file=PATH write the bound port to PATH (for scripts)\n"
    "  --xml=FILE       serve FILE instead of generated DBLP data\n"
    "  --bytes=N        generated data target size in bytes (default "
    "2097152)\n"
    "  --space=F        CST space fraction of the data (default 0.01)\n"
    "  --workers=N      estimation worker threads (default 2)\n"
    "  --conns=N        concurrent client connections (default 4)\n"
    "  --queue=N        request queue capacity (default 256)\n"
    "  --deadline-ms=N  default per-request deadline; 0 = none\n"
    "  --cache-entries=N result cache capacity; 0 = cache off (default)\n"
    "  --cache-shards=N  result cache shards (default 8)\n"
    "  --recorder-entries=N flight recorder span slots; 0 = tracing off\n"
    "                   (default 256)\n"
    "  --slow-us=N      retain spans at least this slow in the slow log;\n"
    "                   0 = slow log off (default 50000)\n"
    "  --accuracy-sample=N re-execute every Nth estimate exactly and\n"
    "                   record its relative error; 0 = off (default 256)\n"
    "  --failpoints=LIST arm failpoints at startup, e.g.\n"
    "                   serve/estimate=error:0.1,tcp/write=error:0.05\n"
    "                   (also settable at runtime via the failpoint verb)\n"
    "  --failpoint-seed=N seed probabilistic failpoint draws; 0 = default\n"
    "  --store=FILE     serve a paged TWCST03 store (mmap, no document\n"
    "                   parse; excludes --xml; swap re-opens the store)\n"
    "  --store-out=FILE summarize the document, write the CST to FILE as\n"
    "                   TWCST03, and serve the paged store; swap rebuilds\n"
    "                   and rewrites it\n"
    "  --buffer-mb=F    storage buffer pool size in MiB for paged serving\n"
    "                   (default 16; fractional values allowed)\n"
    "  --page-bytes=N   TWCST03 page size for --store-out (default "
    "65536)\n"
    "  --datasets=LIST  extra generated datasets beside \"default\", as\n"
    "                   id:bytes,... (each its own snapshot lineage, seed\n"
    "                   derived from the id, swappable independently via\n"
    "                   the \"dataset\" wire field)\n"
    "  --tenants=LIST   per-tenant admission quotas, as\n"
    "                   name=rate:burst:weight,... (rate in requests/s,\n"
    "                   0 = unlimited; burst and weight optional,\n"
    "                   defaults 8 and 1)\n";

tree::Tree LoadOrGenerate(const Options& options) {
  if (!options.xml_path.empty()) {
    std::ifstream in(options.xml_path);
    if (!in) {
      std::fprintf(stderr, "twig_serve: cannot open %s\n",
                   options.xml_path.c_str());
      std::exit(1);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = xml::ParseXml(buf.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "twig_serve: parse error in %s: %s\n",
                   options.xml_path.c_str(),
                   parsed.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(parsed).value();
  }
  data::DblpOptions gen;
  gen.target_bytes = options.bytes;
  return data::GenerateDblp(gen);
}

cst::Cst BuildSummary(const tree::Tree& data,
                      const suffix::PathSuffixTree& pst, size_t xml_bytes,
                      double space) {
  cst::CstOptions copt;
  copt.space_budget_bytes =
      static_cast<size_t>(space * static_cast<double>(xml_bytes));
  return cst::Cst::Build(data, pst, copt);
}

Status WriteStoreFile(const std::string& path, const std::string& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.flush();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

/// Builds a CST at `space`, writes it to `path` as TWCST03, and opens
/// a paged reader over the freshly written file. The swap op runs this
/// end to end so the on-disk store always matches what is served.
Result<std::shared_ptr<const cst::CstView>> RebuildStore(
    const tree::Tree& data, const suffix::PathSuffixTree& pst,
    size_t xml_bytes, double space, const std::string& path,
    size_t page_bytes, size_t pool_bytes) {
  const cst::Cst summary = BuildSummary(data, pst, xml_bytes, space);
  Result<std::string> blob = summary.SerializePaged(page_bytes);
  if (!blob.ok()) return blob.status();
  if (Status written = WriteStoreFile(path, blob.value()); !written.ok()) {
    return written;
  }
  cst::PagedCstOptions popt;
  popt.pool_bytes = pool_bytes;
  Result<std::shared_ptr<cst::PagedCst>> opened =
      cst::PagedCst::OpenFile(path, popt);
  if (!opened.ok()) return opened.status();
  return std::shared_ptr<const cst::CstView>(std::move(opened).value());
}

/// Parses --tenants=name=rate:burst:weight,... into policy overrides.
bool ParseTenantSpec(const std::string& spec,
                     serve::TenantPolicy* policy) {
  for (const std::string& entry : StrSplit(spec, ',')) {
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    const std::string name = entry.substr(0, eq);
    const std::vector<std::string> parts =
        StrSplit(entry.substr(eq + 1), ':');
    if (parts.empty() || parts.size() > 3) return false;
    serve::TenantQuota quota;
    char* end = nullptr;
    quota.rate = std::strtod(parts[0].c_str(), &end);
    if (end == parts[0].c_str() || *end != '\0' || quota.rate < 0) {
      return false;
    }
    if (parts.size() > 1) {
      quota.burst = std::strtod(parts[1].c_str(), &end);
      if (end == parts[1].c_str() || *end != '\0' || quota.burst < 1) {
        return false;
      }
    }
    if (parts.size() > 2) {
      quota.weight = std::strtod(parts[2].c_str(), &end);
      if (end == parts[2].c_str() || *end != '\0' || quota.weight <= 0) {
        return false;
      }
    }
    policy->overrides[name] = quota;
  }
  return true;
}

/// Parses one --datasets entry "id:bytes". Returns false on bad input.
bool ParseDatasetEntry(const std::string& entry, std::string* id,
                       size_t* bytes) {
  const size_t colon = entry.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  *id = entry.substr(0, colon);
  char* end = nullptr;
  const unsigned long long value =
      std::strtoull(entry.c_str() + colon + 1, &end, 10);
  if (end == entry.c_str() + colon + 1 || *end != '\0' || value == 0) {
    return false;
  }
  *bytes = static_cast<size_t>(value);
  return true;
}

/// Many idle connections cost one fd each; run at the hard fd limit so
/// "a few thousand idle clients" is a non-event, not an EMFILE storm.
void RaiseFdLimit() {
  rlimit nofile{};
  if (getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &nofile);  // best effort
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  util::FlagParser flags("twig_serve", kUsage);
  flags.Size("port", &options.port);
  flags.String("port-file", &options.port_file);
  flags.String("xml", &options.xml_path);
  flags.Size("bytes", &options.bytes);
  flags.Double("space", &options.space);
  flags.Size("workers", &options.workers);
  flags.Size("conns", &options.conns);
  flags.Size("queue", &options.queue);
  flags.Size("deadline-ms", &options.deadline_ms);
  flags.Size("cache-entries", &options.cache_entries);
  flags.Size("cache-shards", &options.cache_shards);
  flags.Size("recorder-entries", &options.recorder_entries);
  flags.Size("slow-us", &options.slow_us);
  flags.Size("accuracy-sample", &options.accuracy_sample);
  flags.String("failpoints", &options.failpoints);
  flags.Size("failpoint-seed", &options.failpoint_seed);
  flags.String("store", &options.store_path);
  flags.String("store-out", &options.store_out);
  flags.Double("buffer-mb", &options.buffer_mb);
  flags.Size("page-bytes", &options.page_bytes);
  flags.String("datasets", &options.datasets);
  flags.String("tenants", &options.tenants);
  // Underscore spellings, for callers used to other tools' convention.
  flags.Size("cache_entries", &options.cache_entries);
  flags.Size("cache_shards", &options.cache_shards);
  flags.Size("recorder_entries", &options.recorder_entries);
  flags.Size("slow_us", &options.slow_us);
  flags.Size("accuracy_sample", &options.accuracy_sample);
  if (int code = flags.Parse(argc, argv); code >= 0) return code;
  if (options.port > 65535 || options.space <= 0 || options.bytes == 0) {
    std::fprintf(stderr,
                 "twig_serve: --port must fit a TCP port, --bytes and "
                 "--space must be > 0\n");
    return 2;
  }
  if (!options.store_path.empty() &&
      (!options.xml_path.empty() || !options.store_out.empty())) {
    std::fprintf(stderr,
                 "twig_serve: --store excludes --xml and --store-out "
                 "(the store already is the summary)\n");
    return 2;
  }
  if (options.buffer_mb <= 0 ||
      !storage::ValidPageSize(
          static_cast<uint32_t>(options.page_bytes))) {
    std::fprintf(stderr,
                 "twig_serve: --buffer-mb must be > 0 and --page-bytes a "
                 "power of two in [%zu, %zu]\n",
                 static_cast<size_t>(storage::kMinPageBytes),
                 static_cast<size_t>(storage::kMaxPageBytes));
    return 2;
  }
  if (options.failpoint_seed != 0) {
    util::FailpointRegistry::Get().Seed(options.failpoint_seed);
  }
  if (!options.failpoints.empty()) {
    if (Status status = util::FailpointRegistry::Get().ConfigureList(
            options.failpoints);
        !status.ok()) {
      std::fprintf(stderr, "twig_serve: --failpoints: %s\n",
                   status.ToString().c_str());
      return 2;
    }
  }

  RaiseFdLimit();
  const size_t pool_bytes =
      static_cast<size_t>(options.buffer_mb * 1024.0 * 1024.0);

  serve::DatasetCatalog datasets;
  serve::SnapshotCatalog& catalog = *datasets.Create(serve::kDefaultDataset);
  serve::TcpOptions topt;
  topt.port = static_cast<uint16_t>(options.port);
  topt.num_connection_threads = options.conns;

  // Three serving modes: a paged TWCST03 store (--store, no document
  // parse at all), a document summarized to a store and served paged
  // (--store-out), or the classic fully in-memory path.
  std::shared_ptr<const tree::Tree> data;
  size_t xml_bytes = 0;
  std::string source;
  if (!options.store_path.empty()) {
    source = options.store_path;
    cst::PagedCstOptions popt;
    popt.pool_bytes = pool_bytes;
    auto opened = cst::PagedCst::OpenFile(options.store_path, popt);
    if (!opened.ok()) {
      std::fprintf(stderr, "twig_serve: --store: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    catalog.Publish(
        std::shared_ptr<const cst::CstView>(std::move(opened).value()),
        source + " (paged)");
    // Swap re-opens the store from disk. A store swapped out from
    // under the server — or unreadable, or corrupt — fails the reopen,
    // and the open error (errno text included) reaches the health verb
    // through the catalog's rebuild listener.
    topt.rebuild_view = [path = options.store_path,
                         pool_bytes](double /*space*/)
        -> Result<std::shared_ptr<const cst::CstView>> {
      cst::PagedCstOptions reopen;
      reopen.pool_bytes = pool_bytes;
      auto paged = cst::PagedCst::OpenFile(path, reopen);
      if (!paged.ok()) return paged.status();
      return std::shared_ptr<const cst::CstView>(std::move(paged).value());
    };
  } else {
    // The data tree and its path suffix tree stay resident so the swap
    // op can rebuild CSTs at other space fractions without re-parsing;
    // the tree is shared into each snapshot for the accuracy sampler.
    data = std::make_shared<const tree::Tree>(LoadOrGenerate(options));
    xml_bytes = xml::XmlByteSize(*data);
    const auto pst = std::make_shared<const suffix::PathSuffixTree>(
        suffix::PathSuffixTree::Build(*data));
    source = options.xml_path.empty() ? "generated dblp"
                                      : options.xml_path;
    topt.rebuild_data = data;
    if (!options.store_out.empty()) {
      auto view = RebuildStore(*data, *pst, xml_bytes, options.space,
                               options.store_out, options.page_bytes,
                               pool_bytes);
      if (!view.ok()) {
        std::fprintf(stderr, "twig_serve: --store-out: %s\n",
                     view.status().ToString().c_str());
        return 1;
      }
      catalog.Publish(std::move(view).value(),
                      source + " -> " + options.store_out + " @ " +
                          std::to_string(options.space),
                      /*build_seconds=*/0, data);
      topt.rebuild_view = [data, pst, xml_bytes,
                           default_space = options.space,
                           path = options.store_out,
                           page_bytes = options.page_bytes,
                           pool_bytes](double space) {
        return RebuildStore(*data, *pst, xml_bytes,
                            space > 0 ? space : default_space, path,
                            page_bytes, pool_bytes);
      };
    } else {
      catalog.Publish(BuildSummary(*data, *pst, xml_bytes, options.space),
                      source + " @ " + std::to_string(options.space),
                      /*build_seconds=*/0, data);
      topt.rebuild = [data, pst, xml_bytes,
                      default_space = options.space](double space) {
        return Result<cst::Cst>(BuildSummary(
            *data, *pst, xml_bytes, space > 0 ? space : default_space));
      };
    }
  }

  // Extra datasets: independent generated corpora, each with its own
  // snapshot lineage and rebuild hook, addressable over the wire via
  // the "dataset" field and swappable without touching the others.
  if (!options.datasets.empty()) {
    for (const std::string& entry : StrSplit(options.datasets, ',')) {
      if (entry.empty()) continue;
      std::string id;
      size_t bytes = 0;
      if (!ParseDatasetEntry(entry, &id, &bytes) ||
          id == serve::kDefaultDataset) {
        std::fprintf(stderr,
                     "twig_serve: --datasets entries must be id:bytes "
                     "with a non-default id (got '%s')\n",
                     entry.c_str());
        return 2;
      }
      data::DblpOptions gen;
      gen.target_bytes = bytes;
      gen.seed = std::hash<std::string>{}(id);
      auto extra =
          std::make_shared<const tree::Tree>(data::GenerateDblp(gen));
      const size_t extra_bytes = xml::XmlByteSize(*extra);
      const auto extra_pst = std::make_shared<const suffix::PathSuffixTree>(
          suffix::PathSuffixTree::Build(*extra));
      serve::SnapshotCatalog* lineage = datasets.Create(id);
      lineage->Publish(
          BuildSummary(*extra, *extra_pst, extra_bytes, options.space),
          "generated dblp '" + id + "' @ " +
              std::to_string(options.space),
          /*build_seconds=*/0, extra);
      serve::RebuildSource& rebuild = topt.dataset_rebuilds[id];
      rebuild.rebuild_data = extra;
      rebuild.rebuild = [extra, extra_pst, extra_bytes,
                         default_space = options.space](double space) {
        return Result<cst::Cst>(
            BuildSummary(*extra, *extra_pst, extra_bytes,
                         space > 0 ? space : default_space));
      };
      std::printf("twig_serve: dataset '%s' | data %zu nodes, %s | v%llu\n",
                  id.c_str(), extra->size(),
                  HumanBytes(extra_bytes).c_str(),
                  static_cast<unsigned long long>(lineage->version()));
    }
  }

  serve::ServiceOptions sopt;
  sopt.num_workers = options.workers;
  sopt.queue_capacity = options.queue;
  sopt.default_deadline = std::chrono::milliseconds(options.deadline_ms);
  sopt.cache_entries = options.cache_entries;
  sopt.cache_shards = options.cache_shards;
  sopt.recorder_entries = options.recorder_entries;
  sopt.slow_threshold = std::chrono::microseconds(options.slow_us);
  sopt.accuracy_sample_every =
      static_cast<uint32_t>(options.accuracy_sample);
  if (!options.tenants.empty() &&
      !ParseTenantSpec(options.tenants, &sopt.tenants)) {
    std::fprintf(stderr,
                 "twig_serve: --tenants entries must be "
                 "name=rate[:burst[:weight]] (rate >= 0, burst >= 1, "
                 "weight > 0)\n");
    return 2;
  }
  serve::EstimateService service(&datasets, sopt);

  serve::TcpFrontEnd front_end(&datasets, &service, topt);
  if (Status status = front_end.Start(); !status.ok()) {
    std::fprintf(stderr, "twig_serve: %s\n", status.ToString().c_str());
    return 1;
  }

  if (!options.port_file.empty()) {
    std::ofstream out(options.port_file);
    out << front_end.port() << "\n";
    if (!out) {
      std::fprintf(stderr, "twig_serve: cannot write %s\n",
                   options.port_file.c_str());
      front_end.Stop();
      return 1;
    }
  }
  if (data != nullptr) {
    std::printf("twig_serve: %s | data %zu nodes, %s | snapshot v%llu | "
                "listening on 127.0.0.1:%u\n",
                source.c_str(), data->size(),
                HumanBytes(xml_bytes).c_str(),
                static_cast<unsigned long long>(catalog.version()),
                front_end.port());
  } else {
    std::printf("twig_serve: %s | paged store, buffer %.3f MiB | "
                "snapshot v%llu | listening on 127.0.0.1:%u\n",
                source.c_str(), options.buffer_mb,
                static_cast<unsigned long long>(catalog.version()),
                front_end.port());
  }
  std::fflush(stdout);

  front_end.WaitForShutdown();
  service.Shutdown(/*drain=*/true);
  std::printf("twig_serve: stopped\n");
  return 0;
}
