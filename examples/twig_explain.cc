// Twig explain: per-query estimation traces (the observability layer's
// "EXPLAIN"). Runs one twig query through the estimation algorithms and
// prints, for each, how the estimate was assembled: the decomposition
// into pieces/twiglets, every CST subpath lookup with its counts (or
// the missing-count fallback), every set-hash intersection, and every
// maximal-overlap combination term.
//
//   ./twig_explain                               # defaults: all six algorithms
//   ./twig_explain --query='book(author, year)'  # your own twig
//   ./twig_explain --algo=MSH --json             # one algorithm, JSON trace
//   ./twig_explain --xml=file.xml --space=0.05   # your data, 5% summary
//
// Flags:
//   --query=TWIG    query text (default: article(author="S", year="19"))
//   --xml=FILE      summarize FILE instead of generated DBLP data
//   --bytes=N       generated data target size in bytes (default 2097152)
//   --space=F       CST space budget as a fraction of data (default 0.01)
//   --algo=NAME     trace only Leaf|Greedy|MO|MOSH|PMOSH|MSH
//   --json          emit traces as a JSON array (DESIGN.md §9 schema)
//   --metrics       also print the obs metrics registry snapshot (JSON)
//   --help          this message

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "cst/cst.h"
#include "data/generators.h"
#include "match/matcher.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/twig.h"
#include "suffix/path_suffix_tree.h"
#include "util/flags.h"
#include "util/strings.h"
#include "xml/xml.h"

namespace {

using namespace twig;

struct Options {
  std::string query = "article(author=\"S\", year=\"19\")";
  std::string xml_path;
  size_t bytes = 2 * 1024 * 1024;
  double space = 0.01;
  std::vector<core::Algorithm> algorithms{core::kAllAlgorithms.begin(),
                                          core::kAllAlgorithms.end()};
  bool json = false;
  bool metrics = false;
};

constexpr char kUsage[] =
    "usage: twig_explain [--query=TWIG] [--xml=FILE] [--bytes=N]\n"
    "                    [--space=F] [--algo=NAME] [--json] [--metrics]\n"
    "  --query=TWIG  query text, e.g. 'book(author=\"Su\", year)'\n"
    "  --xml=FILE    summarize FILE instead of generated DBLP data\n"
    "  --bytes=N     generated data target size in bytes (default "
    "2097152)\n"
    "  --space=F     CST space fraction of the data (default 0.01)\n"
    "  --algo=NAME   one of Leaf, Greedy, MO, MOSH, PMOSH, MSH "
    "(default: all)\n"
    "  --json        emit traces as a JSON array (schema: DESIGN.md §9)\n"
    "  --metrics     also print the obs metrics registry snapshot\n";

int ParseArgs(int argc, char** argv, Options* out) {
  util::FlagParser flags("twig_explain", kUsage);
  flags.String("query", &out->query);
  flags.String("xml", &out->xml_path);
  flags.Size("bytes", &out->bytes);
  flags.Double("space", &out->space);
  flags.Custom("algo", [out](std::string_view v) {
    out->algorithms.clear();
    for (core::Algorithm a : core::kAllAlgorithms) {
      if (v == core::AlgorithmName(a)) out->algorithms.push_back(a);
    }
    if (out->algorithms.empty()) {
      std::fprintf(stderr, "twig_explain: unknown algorithm '%.*s'\n",
                   static_cast<int>(v.size()), v.data());
      return false;
    }
    return true;
  });
  flags.Bool("json", &out->json);
  flags.Bool("metrics", &out->metrics);
  if (int code = flags.Parse(argc, argv); code >= 0) return code;
  if (out->bytes == 0 || out->space <= 0) {
    std::fprintf(stderr, "twig_explain: --bytes and --space must be > 0\n");
    return 2;
  }
  return -1;
}

tree::Tree LoadOrGenerate(const Options& options) {
  if (!options.xml_path.empty()) {
    std::ifstream in(options.xml_path);
    if (!in) {
      std::fprintf(stderr, "twig_explain: cannot open %s\n",
                   options.xml_path.c_str());
      std::exit(1);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = xml::ParseXml(buf.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "twig_explain: parse error in %s: %s\n",
                   options.xml_path.c_str(),
                   parsed.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(parsed).value();
  }
  data::DblpOptions gen;
  gen.target_bytes = options.bytes;
  return data::GenerateDblp(gen);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (int code = ParseArgs(argc, argv, &options); code >= 0) return code;

  auto twig = query::ParseTwig(options.query);
  if (!twig.ok()) {
    std::fprintf(stderr, "twig_explain: bad query '%s': %s\n",
                 options.query.c_str(), twig.status().ToString().c_str());
    return 1;
  }

  tree::Tree data = LoadOrGenerate(options);
  const size_t xml_bytes = xml::XmlByteSize(data);
  auto pst = suffix::PathSuffixTree::Build(data);
  cst::CstOptions copt;
  copt.space_budget_bytes =
      static_cast<size_t>(options.space * static_cast<double>(xml_bytes));
  cst::Cst summary = cst::Cst::Build(data, pst, copt);
  if (!options.json) {
    std::printf("data: %zu nodes, %s | CST: %zu subpaths, %s (%.2f%%), "
                "prune threshold %u\n",
                data.size(), HumanBytes(xml_bytes).c_str(),
                summary.node_count(),
                HumanBytes(summary.size_bytes()).c_str(),
                100.0 * summary.size_bytes() / xml_bytes,
                summary.prune_threshold());
    const match::TwigCounts truth =
        match::CountTwigMatches(data, *twig).value();
    std::printf("query %s: true presence %.0f, true occurrence %.0f\n",
                query::FormatTwig(*twig).c_str(), truth.presence,
                truth.occurrence);
  }

  core::TwigEstimator estimator(&summary);
  obs::Trace trace;
  core::EstimateOptions eopt;
  eopt.trace = &trace;
  if (options.json) std::printf("[");
  bool first = true;
  for (core::Algorithm algorithm : options.algorithms) {
    estimator.Estimate(*twig, algorithm, eopt);
    // Frontier aggregation (wildcard / descendant steps summing counts
    // over several label paths) is easy to miss inside the per-piece
    // dump, so surface it per algorithm: one entry per aggregated
    // subpath with the frontier width.
    struct Aggregation {
      std::string subpath;
      size_t width;
      double count;
    };
    std::vector<Aggregation> aggregations;
    for (const obs::PieceTrace& piece : trace.pieces) {
      for (const obs::SubpathTrace& sp : piece.subpaths) {
        if (sp.aggregated > 1) {
          aggregations.push_back({sp.subpath, sp.aggregated, sp.count});
        }
      }
    }
    if (options.json) {
      obs::JsonWriter w;
      w.BeginObject();
      w.Key("trace");
      w.RawValue(trace.ToJson());
      w.Key("aggregation");
      w.BeginArray();
      for (const Aggregation& a : aggregations) {
        w.BeginObject();
        w.Key("subpath");
        w.String(a.subpath);
        w.Key("width");
        w.Uint(a.width);
        w.Key("count");
        w.Double(a.count);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
      std::printf("%s%s", first ? "" : ",\n", std::move(w).str().c_str());
    } else {
      std::printf("\n%s", trace.ToText().c_str());
      for (const Aggregation& a : aggregations) {
        std::printf("  aggregation: %s summed %zu label paths "
                    "(count %.0f)\n",
                    a.subpath.c_str(), a.width, a.count);
      }
    }
    first = false;
  }
  if (options.json) std::printf("]\n");

  if (options.metrics) {
    if (!options.json) std::printf("\n== obs metrics snapshot ==\n");
    std::printf("%s\n",
                obs::MetricsRegistry::Get().Snapshot().ToJson().c_str());
  }
  return 0;
}
