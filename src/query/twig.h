// Twig queries: small rooted node-labeled trees (Section 2).
//
// Non-leaf query nodes carry tag labels; leaf query nodes may carry a
// value-string predicate. A value predicate matches a data value node
// whose string has the predicate as a *prefix* — this is the semantics
// the CST's path suffix tree encodes for tag-anchored leaf strings
// (e.g. the subpath "author.Su" exists because some author value
// starts with "Su"); the exact ground-truth matcher uses the same
// semantics so estimates and true counts are comparable.
//
// A textual syntax is provided for examples and tools:
//   book(author="Su", year="199")
//   dblp.book(title="Data", author)
//   dblp//book(author, //year="199")
// where `a.b.c` is shorthand for a child chain (`a/b` is an accepted
// alias for `a.b`), `(x, y)` lists children, and `//` marks an
// ancestor-descendant edge: `a//b` asks for a `b` anywhere strictly
// below the matched `a`; inside a child list, a `//` prefix marks that
// child's edge (`a(//b, c)`). Value predicates always hang on a child
// edge — `//"v"` and `a//="v"` are syntax errors. The wildcard tag "*"
// matches any element label (paper Section 7 extension). Both edge
// kinds and wildcards are supported by the exact matcher and the
// estimator.

#ifndef TWIG_QUERY_TWIG_H_
#define TWIG_QUERY_TWIG_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace twig::query {

/// Index of a node within a Twig.
using TwigNodeId = uint32_t;

inline constexpr TwigNodeId kNullTwigNode = 0xffffffffu;

/// Kind of the edge connecting a twig node to its parent. Child is the
/// paper's parent-child edge; Descendant is the XPath-style
/// ancestor-descendant axis (`a//b`: b strictly below a). The root has
/// no incoming edge and reports kChild.
enum class EdgeKind : uint8_t {
  kChild,
  kDescendant,
};

/// A twig query.
class Twig {
 public:
  Twig() = default;

  /// Creates the root element. Must be the first node added.
  TwigNodeId AddRoot(std::string_view tag) {
    assert(nodes_.empty());
    return AddNode(kNullTwigNode, tag, /*is_value=*/false);
  }

  /// Adds an element node under `parent`. Tag "*" is the wildcard;
  /// `edge` selects the parent-child (default) or ancestor-descendant
  /// axis for the new node's incoming edge.
  TwigNodeId AddElement(TwigNodeId parent, std::string_view tag,
                        EdgeKind edge = EdgeKind::kChild) {
    assert(parent != kNullTwigNode);
    return AddNode(parent, tag, /*is_value=*/false, edge);
  }

  /// Adds a leaf value-predicate node under `parent`.
  TwigNodeId AddValue(TwigNodeId parent, std::string_view value) {
    assert(parent != kNullTwigNode);
    return AddNode(parent, value, /*is_value=*/true);
  }

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  TwigNodeId root() const {
    assert(!empty());
    return 0;
  }

  bool IsValue(TwigNodeId n) const { return nodes_[n].is_value; }
  bool IsWildcard(TwigNodeId n) const {
    return !nodes_[n].is_value && nodes_[n].text == "*";
  }

  /// Kind of the edge from n's parent to n (kChild for the root and
  /// for value leaves, whose predicates always bind to the parent).
  EdgeKind EdgeFromParent(TwigNodeId n) const { return nodes_[n].edge; }

  /// True if any node hangs on a descendant edge or is a wildcard.
  bool HasSpecialEdgesOrWildcards() const {
    for (TwigNodeId n = 0; n < size(); ++n) {
      if (nodes_[n].edge == EdgeKind::kDescendant) return true;
      if (IsWildcard(n)) return true;
    }
    return false;
  }

  /// Tag of an element node.
  std::string_view Tag(TwigNodeId n) const {
    assert(!IsValue(n));
    return nodes_[n].text;
  }

  /// Value predicate of a value node.
  std::string_view Value(TwigNodeId n) const {
    assert(IsValue(n));
    return nodes_[n].text;
  }

  TwigNodeId Parent(TwigNodeId n) const { return nodes_[n].parent; }
  const std::vector<TwigNodeId>& Children(TwigNodeId n) const {
    return nodes_[n].children;
  }
  bool IsLeaf(TwigNodeId n) const { return nodes_[n].children.empty(); }

  /// Number of element (non-value) nodes.
  size_t ElementCount() const {
    size_t c = 0;
    for (const auto& node : nodes_) c += node.is_value ? 0 : 1;
    return c;
  }

  /// Root-to-leaf node-ID sequences, in left-to-right order.
  std::vector<std::vector<TwigNodeId>> RootToLeafPaths() const;

  /// Branch nodes: element nodes with two or more children.
  std::vector<TwigNodeId> BranchNodes() const;

  /// Depth of node `n` (root = 0).
  size_t Depth(TwigNodeId n) const {
    size_t d = 0;
    while (nodes_[n].parent != kNullTwigNode) {
      n = nodes_[n].parent;
      ++d;
    }
    return d;
  }

 private:
  struct Node {
    std::string text;  // tag or value predicate
    bool is_value = false;
    EdgeKind edge = EdgeKind::kChild;  // edge from parent
    TwigNodeId parent = kNullTwigNode;
    std::vector<TwigNodeId> children;
  };

  TwigNodeId AddNode(TwigNodeId parent, std::string_view text, bool is_value,
                     EdgeKind edge = EdgeKind::kChild) {
    TwigNodeId id = static_cast<TwigNodeId>(nodes_.size());
    Node node;
    node.text = std::string(text);
    node.is_value = is_value;
    node.edge = edge;
    node.parent = parent;
    nodes_.push_back(std::move(node));
    if (parent != kNullTwigNode) {
      assert(!nodes_[parent].is_value && "value nodes cannot have children");
      nodes_[parent].children.push_back(id);
    }
    return id;
  }

  std::vector<Node> nodes_;
};

/// Parses the textual twig syntax described in the header comment.
Result<Twig> ParseTwig(std::string_view text);

/// Prints a twig in canonical textual syntax (inverse of ParseTwig).
std::string FormatTwig(const Twig& twig);

/// True if the two twigs are structurally identical (same shape, tags,
/// values, edge kinds, and child order).
bool TwigEquals(const Twig& a, const Twig& b);

}  // namespace twig::query

#endif  // TWIG_QUERY_TWIG_H_
