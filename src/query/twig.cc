#include "query/twig.h"

#include <cctype>

namespace twig::query {

std::vector<std::vector<TwigNodeId>> Twig::RootToLeafPaths() const {
  std::vector<std::vector<TwigNodeId>> paths;
  if (empty()) return paths;
  std::vector<TwigNodeId> current;
  auto dfs = [&](auto&& self, TwigNodeId n) -> void {
    current.push_back(n);
    if (Children(n).empty()) {
      paths.push_back(current);
    } else {
      for (TwigNodeId c : Children(n)) self(self, c);
    }
    current.pop_back();
  };
  dfs(dfs, root());
  return paths;
}

std::vector<TwigNodeId> Twig::BranchNodes() const {
  std::vector<TwigNodeId> out;
  for (TwigNodeId n = 0; n < size(); ++n) {
    if (!IsValue(n) && Children(n).size() >= 2) out.push_back(n);
  }
  return out;
}

namespace {

class TwigParser {
 public:
  explicit TwigParser(std::string_view input) : input_(input) {}

  Result<Twig> Parse() {
    Twig twig;
    Status s = ParseNode(&twig, kNullTwigNode);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ < input_.size()) return Error("trailing input");
    if (twig.empty()) return Status::ParseError("empty twig");
    return twig;
  }

 private:
  Status Error(std::string msg) const {
    return Status::ParseError(msg + " at position " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '*';
  }

  Result<std::string_view> ParseName() {
    SkipWhitespace();
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected name");
    return input_.substr(start, pos_ - start);
  }

  Result<std::string> ParseQuotedString() {
    SkipWhitespace();
    if (pos_ >= input_.size() || input_[pos_] != '"') {
      return Error("expected '\"'");
    }
    ++pos_;
    std::string out;
    while (pos_ < input_.size() && input_[pos_] != '"') {
      if (input_[pos_] == '\\' && pos_ + 1 < input_.size()) ++pos_;
      out.push_back(input_[pos_]);
      ++pos_;
    }
    if (pos_ >= input_.size()) return Error("unterminated string");
    ++pos_;
    return out;
  }

  // child := "//"? node | string
  // A bare quoted string in a child list is a value-predicate leaf;
  // FormatTwig prints one whenever a node mixes value and element
  // children (or carries several value children), so the parser must
  // read the form back for Parse(Format(t)) == t to hold. A "//"
  // prefix puts the child on a descendant edge; value predicates only
  // bind to child edges, so "//" before a quoted string is an error.
  Status ParseChild(Twig* twig, TwigNodeId parent) {
    SkipWhitespace();
    EdgeKind edge = EdgeKind::kChild;
    if (input_.substr(pos_, 2) == "//") {
      pos_ += 2;
      edge = EdgeKind::kDescendant;
      SkipWhitespace();
      if (pos_ < input_.size() && input_[pos_] == '"') {
        return Error("value predicates cannot hang on a '//' edge");
      }
    }
    if (pos_ < input_.size() && input_[pos_] == '"') {
      auto value = ParseQuotedString();
      if (!value.ok()) return value.status();
      twig->AddValue(parent, *value);
      SkipWhitespace();
      return Status::OK();
    }
    return ParseNode(twig, parent, edge);
  }

  // Chain separator after a name: "." and "/" are child edges, "//" is
  // a descendant edge. Returns false when no separator follows.
  bool ParseSeparator(EdgeKind* edge) {
    if (pos_ >= input_.size()) return false;
    if (input_.substr(pos_, 2) == "//") {
      pos_ += 2;
      *edge = EdgeKind::kDescendant;
      return true;
    }
    if (input_[pos_] == '.' || input_[pos_] == '/') {
      ++pos_;
      *edge = EdgeKind::kChild;
      return true;
    }
    return false;
  }

  // node := name (("." | "/" | "//") name)* ("=" string)?
  //              ("(" child ("," child)* ")")?
  Status ParseNode(Twig* twig, TwigNodeId parent,
                   EdgeKind edge = EdgeKind::kChild) {
    auto first = ParseName();
    if (!first.ok()) return first.status();
    TwigNodeId node = (parent == kNullTwigNode)
                          ? twig->AddRoot(*first)
                          : twig->AddElement(parent, *first, edge);
    SkipWhitespace();
    EdgeKind next_edge = EdgeKind::kChild;
    while (ParseSeparator(&next_edge)) {
      if (next_edge == EdgeKind::kDescendant) {
        SkipWhitespace();
        if (pos_ < input_.size() &&
            (input_[pos_] == '"' || input_[pos_] == '=')) {
          return Error("value predicates cannot hang on a '//' edge");
        }
      }
      auto name = ParseName();
      if (!name.ok()) return name.status();
      node = twig->AddElement(node, *name, next_edge);
      SkipWhitespace();
    }
    if (pos_ < input_.size() && input_[pos_] == '=') {
      ++pos_;
      auto value = ParseQuotedString();
      if (!value.ok()) return value.status();
      twig->AddValue(node, *value);
      SkipWhitespace();
      return Status::OK();
    }
    if (pos_ < input_.size() && input_[pos_] == '(') {
      ++pos_;
      while (true) {
        Status s = ParseChild(twig, node);
        if (!s.ok()) return s;
        SkipWhitespace();
        if (pos_ < input_.size() && input_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      if (pos_ >= input_.size() || input_[pos_] != ')') {
        return Error("expected ')'");
      }
      ++pos_;
    }
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

void FormatNode(const Twig& twig, TwigNodeId n, std::string* out) {
  if (twig.IsValue(n)) {
    out->push_back('"');
    for (char c : twig.Value(n)) {
      if (c == '"' || c == '\\') out->push_back('\\');
      out->push_back(c);
    }
    out->push_back('"');
    return;
  }
  out->append(twig.Tag(n));
  const auto& children = twig.Children(n);
  if (children.empty()) return;
  // Canonical edge spellings: '.' for child chains ('/' parses as an
  // alias but is never printed), "//" for descendant edges.
  if (children.size() == 1 && twig.IsValue(children[0])) {
    out->push_back('=');
    FormatNode(twig, children[0], out);
    return;
  }
  if (children.size() == 1 && !twig.IsValue(children[0])) {
    if (twig.EdgeFromParent(children[0]) == EdgeKind::kDescendant) {
      out->append("//");
    } else {
      out->push_back('.');
    }
    FormatNode(twig, children[0], out);
    return;
  }
  out->push_back('(');
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out->append(", ");
    if (!twig.IsValue(children[i]) &&
        twig.EdgeFromParent(children[i]) == EdgeKind::kDescendant) {
      out->append("//");
    }
    FormatNode(twig, children[i], out);
  }
  out->push_back(')');
}

bool NodeEquals(const Twig& a, TwigNodeId na, const Twig& b, TwigNodeId nb) {
  if (a.IsValue(na) != b.IsValue(nb)) return false;
  if (a.IsValue(na)) return a.Value(na) == b.Value(nb);
  if (a.Tag(na) != b.Tag(nb)) return false;
  const auto& ca = a.Children(na);
  const auto& cb = b.Children(nb);
  if (ca.size() != cb.size()) return false;
  for (size_t i = 0; i < ca.size(); ++i) {
    if (a.EdgeFromParent(ca[i]) != b.EdgeFromParent(cb[i])) return false;
    if (!NodeEquals(a, ca[i], b, cb[i])) return false;
  }
  return true;
}

}  // namespace

Result<Twig> ParseTwig(std::string_view text) {
  TwigParser parser(text);
  return parser.Parse();
}

std::string FormatTwig(const Twig& twig) {
  std::string out;
  if (!twig.empty()) FormatNode(twig, twig.root(), &out);
  return out;
}

bool TwigEquals(const Twig& a, const Twig& b) {
  if (a.empty() || b.empty()) return a.empty() && b.empty();
  return NodeEquals(a, a.root(), b, b.root());
}

}  // namespace twig::query
