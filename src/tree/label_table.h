// Interned label (tag) table.
//
// Non-leaf node labels come from a small alphabet of tags; interning
// them lets the tree, the suffix tree, and the query engine compare
// labels as 32-bit IDs.

#ifndef TWIG_TREE_LABEL_TABLE_H_
#define TWIG_TREE_LABEL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace twig::tree {

/// Interned ID of a non-leaf (tag) label.
using LabelId = uint32_t;

/// Sentinel for "no label".
inline constexpr LabelId kInvalidLabel = 0xffffffffu;

/// Bidirectional map between tag strings and dense LabelIds.
class LabelTable {
 public:
  /// Returns the ID for `name`, interning it if new.
  LabelId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    LabelId id = static_cast<LabelId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the ID for `name`, or kInvalidLabel if never interned.
  LabelId Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kInvalidLabel : it->second;
  }

  /// Returns the string for an ID. Requires a valid ID.
  std::string_view Name(LabelId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

}  // namespace twig::tree

#endif  // TWIG_TREE_LABEL_TABLE_H_
