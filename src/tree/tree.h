// The node-labeled data tree (Section 2 of the paper).
//
// A Tree is a rooted tree whose non-leaf nodes are labeled with tags
// from a small alphabet (interned LabelIds) and whose leaf nodes are
// labeled with arbitrary value strings. An XML document maps onto a
// Tree with element tags and attribute names as non-leaf labels and
// text / attribute values as leaf labels.

#ifndef TWIG_TREE_TREE_H_
#define TWIG_TREE_TREE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tree/label_table.h"

namespace twig::tree {

/// Index of a node within a Tree. IDs are dense and assigned in
/// creation order; generators and parsers create nodes in document
/// (preorder) order.
using NodeId = uint32_t;

/// Sentinel for "no node" (e.g., parent of the root).
inline constexpr NodeId kNullNode = 0xffffffffu;

/// A rooted node-labeled tree. Nodes are either *elements* (tag label,
/// may have children) or *values* (leaf string label, no children).
class Tree {
 public:
  Tree() = default;

  // Movable but not copyable: trees can be large.
  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;
  Tree(Tree&&) = default;
  Tree& operator=(Tree&&) = default;

  /// Creates the root element. Must be the first node added.
  NodeId AddRoot(std::string_view tag) {
    assert(nodes_.empty());
    return AddNode(kNullNode, labels_.Intern(tag), /*is_value=*/false, {});
  }

  /// Adds an element node under `parent`.
  NodeId AddElement(NodeId parent, std::string_view tag) {
    assert(parent != kNullNode);
    return AddNode(parent, labels_.Intern(tag), /*is_value=*/false, {});
  }

  /// Adds a leaf value node under `parent`.
  NodeId AddValue(NodeId parent, std::string_view value) {
    assert(parent != kNullNode);
    return AddNode(parent, kInvalidLabel, /*is_value=*/true, value);
  }

  /// Number of nodes.
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// The root node (node 0). Requires a non-empty tree.
  NodeId root() const {
    assert(!empty());
    return 0;
  }

  /// True if `n` is a leaf *value* node (string-labeled).
  bool IsValue(NodeId n) const { return nodes_[n].is_value; }

  /// Tag label of an element node.
  LabelId Label(NodeId n) const {
    assert(!IsValue(n));
    return nodes_[n].label;
  }

  /// Tag string of an element node.
  std::string_view LabelName(NodeId n) const {
    return labels_.Name(Label(n));
  }

  /// String label of a value node.
  std::string_view Value(NodeId n) const {
    assert(IsValue(n));
    const Node& node = nodes_[n];
    return std::string_view(values_).substr(node.value_offset,
                                            node.value_length);
  }

  NodeId Parent(NodeId n) const { return nodes_[n].parent; }

  const std::vector<NodeId>& Children(NodeId n) const {
    return nodes_[n].children;
  }

  /// Depth of `n`; the root has depth 0.
  size_t Depth(NodeId n) const {
    size_t d = 0;
    while (nodes_[n].parent != kNullNode) {
      n = nodes_[n].parent;
      ++d;
    }
    return d;
  }

  const LabelTable& labels() const { return labels_; }
  LabelTable& mutable_labels() { return labels_; }

 private:
  struct Node {
    LabelId label = kInvalidLabel;  // tag, for element nodes
    NodeId parent = kNullNode;
    uint32_t value_offset = 0;  // into values_, for value nodes
    uint32_t value_length = 0;
    bool is_value = false;
    std::vector<NodeId> children;
  };

  NodeId AddNode(NodeId parent, LabelId label, bool is_value,
                 std::string_view value) {
    NodeId id = static_cast<NodeId>(nodes_.size());
    Node node;
    node.label = label;
    node.parent = parent;
    node.is_value = is_value;
    if (is_value) {
      node.value_offset = static_cast<uint32_t>(values_.size());
      node.value_length = static_cast<uint32_t>(value.size());
      values_.append(value);
    }
    nodes_.push_back(std::move(node));
    if (parent != kNullNode) {
      assert(!nodes_[parent].is_value && "value nodes cannot have children");
      nodes_[parent].children.push_back(id);
    }
    return id;
  }

  std::vector<Node> nodes_;
  std::string values_;  // all value strings, concatenated
  LabelTable labels_;
};

/// Summary statistics of a tree, used in reports and for sizing the
/// summary-structure space budget.
struct TreeStats {
  size_t node_count = 0;
  size_t element_count = 0;
  size_t value_count = 0;
  size_t distinct_labels = 0;
  size_t max_depth = 0;
  size_t total_value_bytes = 0;
  size_t total_label_bytes = 0;  // sum over element nodes of tag length
  /// Approximate serialized (XML) size; the denominator for the paper's
  /// "space as a percentage of the data set size".
  size_t approx_xml_bytes = 0;
};

/// Computes TreeStats in one pass.
TreeStats ComputeStats(const Tree& tree);

}  // namespace twig::tree

#endif  // TWIG_TREE_TREE_H_
