#include "tree/tree.h"

#include <algorithm>

namespace twig::tree {

TreeStats ComputeStats(const Tree& tree) {
  TreeStats stats;
  stats.node_count = tree.size();
  stats.distinct_labels = tree.labels().size();
  for (NodeId n = 0; n < tree.size(); ++n) {
    if (tree.IsValue(n)) {
      ++stats.value_count;
      stats.total_value_bytes += tree.Value(n).size();
      // Serialized as text content.
      stats.approx_xml_bytes += tree.Value(n).size();
    } else {
      ++stats.element_count;
      const size_t tag = tree.LabelName(n).size();
      stats.total_label_bytes += tag;
      // "<tag>" + "</tag>": 2 * tag + 5 bytes of markup.
      stats.approx_xml_bytes += 2 * tag + 5;
    }
    stats.max_depth = std::max(stats.max_depth, tree.Depth(n));
  }
  return stats;
}

}  // namespace twig::tree
