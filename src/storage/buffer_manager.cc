#include "storage/buffer_manager.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/hash.h"

namespace twig::storage {

// ---------------------------------------------------------- PinnedPage

PinnedPage& PinnedPage::operator=(PinnedPage&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    frame_ = other.frame_;
    other.manager_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

void PinnedPage::Release() {
  if (frame_ != nullptr) {
    manager_->Unpin(static_cast<BufferManager::Frame*>(frame_));
    manager_ = nullptr;
    frame_ = nullptr;
  }
}

const char* PinnedPage::payload() const {
  return static_cast<const BufferManager::Frame*>(frame_)->data.data() +
         kPageHeaderBytes;
}

uint32_t PinnedPage::payload_bytes() const {
  return static_cast<const BufferManager::Frame*>(frame_)->payload_bytes;
}

// ------------------------------------------------------- BufferManager

size_t BufferManager::PageKeyHash::operator()(const PageKey& k) const {
  return static_cast<size_t>(
      HashCombine(k.source_id, Mix64(k.page_id)));
}

BufferManager::BufferManager(size_t pool_bytes, uint32_t page_size)
    : page_size_(page_size) {
  const size_t count = std::max<size_t>(2, pool_bytes / page_size);
  frames_.reserve(count);
  free_frames_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    frames_.push_back(std::make_unique<Frame>());
    free_frames_.push_back(frames_.back().get());
  }
}

BufferManager::~BufferManager() = default;

BufferManager::Shard& BufferManager::ShardFor(const PageKey& key) {
  return shards_[PageKeyHash{}(key) % kShards];
}

Result<uint64_t> BufferManager::RegisterSource(
    std::shared_ptr<const PageSource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("null page source");
  }
  if (source->page_size() != page_size_) {
    return Status::InvalidArgument(
        source->name() + ": page size " +
        std::to_string(source->page_size()) + " does not match pool's " +
        std::to_string(page_size_));
  }
  std::lock_guard<std::mutex> lock(pool_mutex_);
  const uint64_t id = next_source_id_++;
  sources_.emplace(id, std::move(source));
  return id;
}

void BufferManager::DropSource(uint64_t source_id) {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    sources_.erase(source_id);
  }
  // Sweep each shard for this source's unpinned, settled frames. The
  // frames collected here are out of every map, so pushing them onto
  // the free list afterwards (pool lock, respecting pool -> shard
  // order) races with nothing.
  std::vector<Frame*> reclaimed;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      Frame* frame = it->second;
      if (it->first.source_id == source_id &&
          frame->state == FrameState::kReady &&
          frame->pin_count.load(std::memory_order_acquire) == 0) {
        frame->state = FrameState::kFree;
        reclaimed.push_back(frame);
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (!reclaimed.empty()) {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    free_frames_.insert(free_frames_.end(), reclaimed.begin(),
                        reclaimed.end());
  }
}

BufferManager::Frame* BufferManager::ReserveFrame(const PageKey& for_key) {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  // A frame's key fields are written only here, under the pool mutex,
  // while the frame is in no shard map; the clock below reads them
  // under the same mutex, so they are never torn.
  auto claim = [&](Frame* frame) {
    frame->source_id = for_key.source_id;
    frame->page_id = for_key.page_id;
    return frame;
  };
  if (!free_frames_.empty()) {
    Frame* frame = free_frames_.back();
    free_frames_.pop_back();
    return claim(frame);
  }
  // Clock sweep. First pass clears second-chance bits, second pass
  // takes the first frame still unpinned; beyond that everything is
  // pinned or in flight and the pool is genuinely exhausted. The
  // acquire pin_count load pairs with Unpin's release decrement so the
  // last reader's accesses happen-before this tenancy's overwrite.
  const size_t budget = 2 * frames_.size();
  for (size_t step = 0; step < budget; ++step) {
    Frame* frame = frames_[clock_hand_].get();
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    const PageKey key{frame->source_id, frame->page_id};
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> shard_lock(shard.mutex);
    if (frame->state != FrameState::kReady ||
        frame->pin_count.load(std::memory_order_acquire) != 0) {
      continue;
    }
    if (frame->referenced.exchange(false, std::memory_order_relaxed)) {
      continue;  // second chance
    }
    shard.map.erase(key);
    frame->state = FrameState::kFree;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::CountEvent(obs::Counter::kStoragePageEvictions);
    return claim(frame);
  }
  return nullptr;
}

Status BufferManager::LoadFrame(
    const std::shared_ptr<const PageSource>& source, uint32_t page_id,
    Frame* frame) {
  Status injected = util::FailpointCheck("storage/read");
  if (!injected.ok()) return injected;
  frame->data.resize(page_size_);
  Status read = source->ReadPage(page_id, frame->data.data());
  if (!read.ok()) return read;
  reads_.fetch_add(1, std::memory_order_relaxed);
  obs::CountEvent(obs::Counter::kStoragePageReads);
  Status valid = Status::OK();
  if (!util::FailpointCheck("storage/checksum").ok()) {
    // The injected flavor of a bad page: same structured Corruption a
    // real bit flip would produce, so callers cannot tell them apart.
    valid = Status::Corruption(source->name() + ": page " +
                               std::to_string(page_id) +
                               ": checksum mismatch (injected)");
  } else {
    valid = ValidatePage(frame->data.data(), page_size_, page_id);
  }
  if (!valid.ok()) {
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    obs::CountEvent(obs::Counter::kStorageChecksumFailures);
    return valid;
  }
  PageHeader header;
  DecodePageHeader(frame->data.data(), page_size_, &header);
  frame->payload_bytes = header.payload_bytes;
  return Status::OK();
}

Result<PinnedPage> BufferManager::Pin(uint64_t source_id, uint32_t page_id) {
  const PageKey key{source_id, page_id};
  Shard& shard = ShardFor(key);
  for (;;) {
    // Hit path: one shard lock.
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      for (;;) {
        auto it = shard.map.find(key);
        if (it == shard.map.end()) break;
        Frame* frame = it->second;
        if (frame->state == FrameState::kLoading) {
          shard.cv.wait(lock);
          continue;  // settled: either kReady now or erased (retry)
        }
        frame->pin_count.fetch_add(1, std::memory_order_relaxed);
        frame->referenced.store(true, std::memory_order_relaxed);
        pins_.fetch_add(1, std::memory_order_relaxed);
        obs::CountEvent(obs::Counter::kStoragePagePins);
        return PinnedPage(this, frame);
      }
    }

    // Miss: look the source up and bounds-check before spending a
    // frame on it.
    std::shared_ptr<const PageSource> source;
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      auto it = sources_.find(source_id);
      if (it != sources_.end()) source = it->second;
    }
    if (source == nullptr) {
      return Status::NotFound("unknown page source " +
                              std::to_string(source_id));
    }
    if (page_id >= source->page_count()) {
      return Status::InvalidArgument(
          source->name() + ": page " + std::to_string(page_id) +
          " out of range (store has " +
          std::to_string(source->page_count()) + ")");
    }

    Frame* frame = ReserveFrame(key);
    if (frame == nullptr) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "buffer pool exhausted: all " + std::to_string(frames_.size()) +
          " frames pinned");
    }

    // Claim the table slot in the kLoading state (pre-pinned so the
    // clock skips it). If another thread claimed it while the shard
    // lock was dropped, return the frame and retry as a hit/waiter.
    // The frame is returned to the free list only after the shard lock
    // is released (lock order is pool -> shard, never the reverse).
    bool lost_race = false;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.map.find(key) != shard.map.end()) {
        lost_race = true;
      } else {
        frame->state = FrameState::kLoading;
        frame->pin_count.store(1, std::memory_order_relaxed);
        shard.map.emplace(key, frame);
      }
    }
    if (lost_race) {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      free_frames_.push_back(frame);
      continue;
    }

    // IO + validation with no locks held.
    Status loaded = LoadFrame(source, page_id, frame);

    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (loaded.ok()) {
        frame->state = FrameState::kReady;
        frame->referenced.store(true, std::memory_order_relaxed);
      } else {
        // Do not cache failures: erase so waiters (and later pins)
        // retry the load once the cause clears.
        shard.map.erase(key);
        frame->state = FrameState::kFree;
        frame->pin_count.store(0, std::memory_order_relaxed);
      }
      shard.cv.notify_all();
    }
    if (loaded.ok()) {
      pins_.fetch_add(1, std::memory_order_relaxed);
      obs::CountEvent(obs::Counter::kStoragePagePins);
      return PinnedPage(this, frame);
    }
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      free_frames_.push_back(frame);
    }
    return loaded;
  }
}

void BufferManager::Unpin(Frame* frame) {
  frame->pin_count.fetch_sub(1, std::memory_order_release);
}

BufferManager::Stats BufferManager::stats() const {
  Stats s;
  s.pins = pins_.load(std::memory_order_relaxed);
  s.reads = reads_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.checksum_failures = checksum_failures_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace twig::storage
