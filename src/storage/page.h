// The TWCST03 page: the fixed-size, self-describing unit of disk-backed
// CST storage.
//
// A store is an array of `page_size` pages. Every page opens with a
// 24-byte header and carries its own FNV-1a checksum over the rest of
// the page (PR 8's whole-blob footer, pushed down to per-page
// granularity so a demand-paged reader can verify exactly the bytes it
// touches):
//
//   offset  field          meaning
//   ------  -------------  -------------------------------------------
//        0  magic   u32    kPageMagic ("TWP3")
//        4  type    u16    PageType of the payload
//        6  flags   u16    reserved, must be 0
//        8  page_id u32    this page's index in the store
//       12  payload u32    meaningful payload bytes (<= capacity)
//       16  checksum u64   FNV-1a over bytes [24, page_size)
//
// Bytes past the payload are zero (and checksummed as zeros), so a
// truncated write, a bit flip anywhere in the page, or a page served
// at the wrong index all fail validation. Page 0 is the meta page: the
// store-wide scalars plus a section directory locating the node /
// child-index / signature / string sections (cst/paged_cst.cc owns
// that layout; this header only knows about pages).

#ifndef TWIG_STORAGE_PAGE_H_
#define TWIG_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "util/hash.h"
#include "util/status.h"

namespace twig::storage {

/// "TWP3" in byte order; distinct from every TWCST02 prefix so the
/// format sniffer can tell the two apart from the first four bytes.
inline constexpr char kPageMagicBytes[4] = {'T', 'W', 'P', '3'};

/// Default page size. 64 KiB amortizes the per-page header and
/// checksum to 0.04% while keeping a 16 MiB pool 256 frames deep.
inline constexpr size_t kDefaultPageBytes = 64 * 1024;

/// Smallest supported page: headers plus at least one node record per
/// page must fit with room to spare.
inline constexpr size_t kMinPageBytes = 256;
inline constexpr size_t kMaxPageBytes = 16 * 1024 * 1024;

/// Bytes of the page header preceding the payload.
inline constexpr size_t kPageHeaderBytes = 24;

enum class PageType : uint16_t {
  kMeta = 0,        // page 0: scalars + section directory + labels
  kNodes = 1,       // fixed-size node records
  kChildOffsets = 2,  // per-node child-span offsets (u32 each)
  kChildEntries = 3,  // sorted (symbol, child) edges (8 bytes each)
  kSignatures = 4,  // set-hash signatures (signature_length u32s each)
  kStrings = 5,     // length-prefixed label strings, streamed
};

/// Decoded page header.
struct PageHeader {
  PageType type = PageType::kMeta;
  uint16_t flags = 0;
  uint32_t page_id = 0;
  uint32_t payload_bytes = 0;
  uint64_t checksum = 0;
};

/// True if `page_size` is an acceptable TWCST03 page size.
inline bool ValidPageSize(size_t page_size) {
  return page_size >= kMinPageBytes && page_size <= kMaxPageBytes &&
         (page_size & (page_size - 1)) == 0;
}

/// Payload bytes available per page.
inline size_t PageCapacity(size_t page_size) {
  return page_size - kPageHeaderBytes;
}

/// Checksum of a page's post-header bytes (zero padding included).
inline uint64_t PageChecksum(const char* page, size_t page_size) {
  return HashBytes(
      std::string_view(page + kPageHeaderBytes, page_size - kPageHeaderBytes));
}

/// Serializes `header` into the first kPageHeaderBytes of `page`.
void EncodePageHeader(const PageHeader& header, char* page);

/// Parses a page header without verifying the checksum (used to probe
/// the meta page before the page size is known).
bool DecodePageHeader(const char* page, size_t available, PageHeader* out);

/// Full validation of one page: magic, expected id, payload bound, and
/// the checksum over [kPageHeaderBytes, page_size). Returns Corruption
/// with a specific reason on any mismatch.
Status ValidatePage(const char* page, size_t page_size, uint32_t expected_id);

/// Reads the store-wide page geometry from the head of a raw TWCST03
/// byte stream (the meta page's first bytes — no checksum needed, the
/// meta page is re-validated once it is pinned through the buffer
/// pool). `bytes` needs only the first ~64 bytes of the store.
Status ProbeStoreGeometry(std::string_view bytes, uint32_t* page_size,
                          uint32_t* page_count);

/// "TWCST03" + NUL: the format magic opening the meta page's payload.
inline constexpr char kStoreMagic[8] = {'T', 'W', 'C', 'S', 'T', '0', '3',
                                        '\0'};
inline constexpr uint32_t kStoreVersion = 1;

}  // namespace twig::storage

#endif  // TWIG_STORAGE_PAGE_H_
