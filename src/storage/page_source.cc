#include "storage/page_source.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/page.h"

namespace twig::storage {

Status CheckStoreGeometry(std::string_view head, size_t total_bytes,
                          const std::string& name, uint32_t* page_size,
                          uint32_t* page_count) {
  Status probe = ProbeStoreGeometry(head, page_size, page_count);
  if (!probe.ok()) {
    return Status::Corruption(name + ": " + std::string(probe.message()));
  }
  const uint64_t need =
      static_cast<uint64_t>(*page_size) * static_cast<uint64_t>(*page_count);
  if (total_bytes < need) {
    return Status::Corruption(
        name + ": store truncated (" + std::to_string(total_bytes) +
        " bytes, geometry needs " + std::to_string(need) + ")");
  }
  return Status::OK();
}

// ---------------------------------------------------------------- blob

BlobPageSource::BlobPageSource(std::string blob, std::string name,
                               uint32_t page_size, uint32_t page_count)
    : PageSource(std::move(name), page_size, page_count),
      blob_(std::move(blob)) {}

Result<std::unique_ptr<BlobPageSource>> BlobPageSource::Open(
    std::string blob, std::string name) {
  uint32_t page_size = 0;
  uint32_t page_count = 0;
  Status geometry =
      CheckStoreGeometry(blob, blob.size(), name, &page_size, &page_count);
  if (!geometry.ok()) return geometry;
  return std::unique_ptr<BlobPageSource>(new BlobPageSource(
      std::move(blob), std::move(name), page_size, page_count));
}

Status BlobPageSource::ReadPage(uint32_t page_id, char* out) const {
  if (page_id >= page_count_) {
    return Status::InvalidArgument(name_ + ": page " +
                                   std::to_string(page_id) + " out of range");
  }
  std::memcpy(out, blob_.data() + static_cast<size_t>(page_id) * page_size_,
              page_size_);
  return Status::OK();
}

// ---------------------------------------------------------------- mmap

MmapPageSource::MmapPageSource(std::string path, const char* map,
                               size_t map_bytes, uint32_t page_size,
                               uint32_t page_count)
    : PageSource(std::move(path), page_size, page_count),
      map_(map),
      map_bytes_(map_bytes) {}

MmapPageSource::~MmapPageSource() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_bytes_);
  }
}

Result<std::unique_ptr<MmapPageSource>> MmapPageSource::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound(path + ": open failed: " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status out = Status::Internal(path + ": fstat failed: " +
                                  std::strerror(errno));
    ::close(fd);
    return out;
  }
  const size_t bytes = static_cast<size_t>(st.st_size);
  if (bytes == 0) {
    ::close(fd);
    return Status::Corruption(path + ": empty store file");
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is
  // no longer needed either way.
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::Internal(path + ": mmap failed: " + std::strerror(errno));
  }
  const char* base = static_cast<const char*>(map);
  uint32_t page_size = 0;
  uint32_t page_count = 0;
  Status geometry = CheckStoreGeometry(std::string_view(base, bytes), bytes,
                                       path, &page_size, &page_count);
  if (!geometry.ok()) {
    ::munmap(map, bytes);
    return geometry;
  }
  return std::unique_ptr<MmapPageSource>(
      new MmapPageSource(path, base, bytes, page_size, page_count));
}

Status MmapPageSource::ReadPage(uint32_t page_id, char* out) const {
  if (page_id >= page_count_) {
    return Status::InvalidArgument(name_ + ": page " +
                                   std::to_string(page_id) + " out of range");
  }
  std::memcpy(out, map_ + static_cast<size_t>(page_id) * page_size_,
              page_size_);
  return Status::OK();
}

}  // namespace twig::storage
