#include "storage/page_writer.h"

#include <cassert>
#include <cstring>

namespace twig::storage {

PageWriter::PageWriter(uint32_t page_size) : page_size_(page_size) {
  assert(ValidPageSize(page_size));
}

void PageWriter::Seal(uint32_t id, uint32_t payload_bytes) {
  char* page = PageAt(id);
  PageHeader header;
  header.type = types_[id];
  header.page_id = id;
  header.payload_bytes = payload_bytes;
  header.checksum = PageChecksum(page, page_size_);
  EncodePageHeader(header, page);
}

uint32_t PageWriter::BeginPage(PageType type) {
  if (open_) {
    Seal(page_count() - 1, static_cast<uint32_t>(payload_used_));
  }
  const uint32_t id = page_count();
  types_.push_back(type);
  blob_.resize(blob_.size() + page_size_, '\0');
  payload_used_ = 0;
  open_ = true;
  return id;
}

size_t PageWriter::remaining() const {
  return open_ ? PageCapacity(page_size_) - payload_used_ : 0;
}

void PageWriter::Append(const void* data, size_t bytes) {
  assert(open_ && bytes <= remaining());
  char* page = PageAt(page_count() - 1);
  std::memcpy(page + kPageHeaderBytes + payload_used_, data, bytes);
  payload_used_ += bytes;
}

uint32_t PageWriter::EnsureRoom(PageType type, size_t bytes) {
  assert(bytes <= PageCapacity(page_size_));
  if (!open_ || types_.back() != type || remaining() < bytes) {
    return BeginPage(type);
  }
  return page_count() - 1;
}

void PageWriter::AppendSpill(PageType type, const void* data, size_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    if (!open_ || types_.back() != type || remaining() == 0) {
      BeginPage(type);
    }
    const size_t take = bytes < remaining() ? bytes : remaining();
    Append(p, take);
    p += take;
    bytes -= take;
  }
}

void PageWriter::OverwritePage(uint32_t id, const void* payload,
                               size_t bytes) {
  assert(id < page_count() && bytes <= PageCapacity(page_size_));
  // Patching the page in progress just resets its payload; Finish
  // re-seals it identically.
  if (open_ && id == page_count() - 1) payload_used_ = bytes;
  char* page = PageAt(id);
  std::memset(page + kPageHeaderBytes, 0, PageCapacity(page_size_));
  std::memcpy(page + kPageHeaderBytes, payload, bytes);
  Seal(id, static_cast<uint32_t>(bytes));
}

std::string PageWriter::Finish() {
  if (open_) {
    Seal(page_count() - 1, static_cast<uint32_t>(payload_used_));
    open_ = false;
  }
  return std::move(blob_);
}

}  // namespace twig::storage
