// Streaming TWCST03 page builder. The writer grows an in-memory blob
// one sealed page at a time: callers open a page, append payload bytes
// into it, and the writer stamps the header and per-page checksum when
// the page closes. Page 0 (the meta page) is typically reserved first
// and patched at the end, once the section directory and page count
// are known — OverwritePage re-seals it with a fresh checksum.
//
// Fixed-size records must not straddle pages (the paged reader decodes
// a record from a single pinned frame); EnsureRoom rolls to a new page
// of the same type when the current one cannot fit the next record.

#ifndef TWIG_STORAGE_PAGE_WRITER_H_
#define TWIG_STORAGE_PAGE_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/page.h"

namespace twig::storage {

class PageWriter {
 public:
  explicit PageWriter(uint32_t page_size);

  uint32_t page_size() const { return page_size_; }

  /// Pages opened so far (including the one in progress).
  uint32_t page_count() const {
    return static_cast<uint32_t>(types_.size());
  }

  /// Seals the page in progress (if any) and opens a new one of
  /// `type`. Returns the new page's id.
  uint32_t BeginPage(PageType type);

  /// Payload bytes still free in the page in progress.
  size_t remaining() const;

  /// Appends `bytes` payload bytes to the page in progress; they must
  /// fit (callers size records via EnsureRoom first).
  void Append(const void* data, size_t bytes);

  /// Opens a new page of `type` unless the current page is of that
  /// type with at least `bytes` free. Returns the current page id.
  uint32_t EnsureRoom(PageType type, size_t bytes);

  /// Appends `bytes` to pages of `type`, splitting across page
  /// boundaries freely (for byte-stream sections like label strings).
  void AppendSpill(PageType type, const void* data, size_t bytes);

  /// Replaces page `id`'s payload (an already-sealed page — the meta
  /// patch) and re-seals it. `bytes` must fit the page capacity.
  void OverwritePage(uint32_t id, const void* payload, size_t bytes);

  /// Seals the page in progress and returns the finished store bytes.
  /// The writer is spent afterwards.
  std::string Finish();

 private:
  char* PageAt(uint32_t id) {
    return blob_.data() + static_cast<size_t>(id) * page_size_;
  }
  void Seal(uint32_t id, uint32_t payload_bytes);

  const uint32_t page_size_;
  std::string blob_;
  std::vector<PageType> types_;   // per opened page
  bool open_ = false;             // a page is in progress
  size_t payload_used_ = 0;       // of the page in progress
};

}  // namespace twig::storage

#endif  // TWIG_STORAGE_PAGE_WRITER_H_
