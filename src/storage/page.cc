#include "storage/page.h"

#include <cstring>

namespace twig::storage {

namespace {

void PutU16(char* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(char* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

uint16_t GetU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

void EncodePageHeader(const PageHeader& header, char* page) {
  std::memcpy(page, kPageMagicBytes, sizeof(kPageMagicBytes));
  PutU16(page + 4, static_cast<uint16_t>(header.type));
  PutU16(page + 6, header.flags);
  PutU32(page + 8, header.page_id);
  PutU32(page + 12, header.payload_bytes);
  PutU64(page + 16, header.checksum);
}

bool DecodePageHeader(const char* page, size_t available, PageHeader* out) {
  if (available < kPageHeaderBytes) return false;
  if (std::memcmp(page, kPageMagicBytes, sizeof(kPageMagicBytes)) != 0) {
    return false;
  }
  out->type = static_cast<PageType>(GetU16(page + 4));
  out->flags = GetU16(page + 6);
  out->page_id = GetU32(page + 8);
  out->payload_bytes = GetU32(page + 12);
  out->checksum = GetU64(page + 16);
  return true;
}

Status ValidatePage(const char* page, size_t page_size, uint32_t expected_id) {
  PageHeader header;
  if (!DecodePageHeader(page, page_size, &header)) {
    return Status::Corruption("page " + std::to_string(expected_id) +
                              ": bad page magic");
  }
  if (header.page_id != expected_id) {
    return Status::Corruption("page " + std::to_string(expected_id) +
                              ": header claims page " +
                              std::to_string(header.page_id));
  }
  if (header.flags != 0) {
    return Status::Corruption("page " + std::to_string(expected_id) +
                              ": unknown flags");
  }
  if (header.payload_bytes > PageCapacity(page_size)) {
    return Status::Corruption("page " + std::to_string(expected_id) +
                              ": payload overruns page");
  }
  if (PageChecksum(page, page_size) != header.checksum) {
    return Status::Corruption("page " + std::to_string(expected_id) +
                              ": checksum mismatch");
  }
  return Status::OK();
}

Status ProbeStoreGeometry(std::string_view bytes, uint32_t* page_size,
                          uint32_t* page_count) {
  // Meta payload layout (paged_cst.cc writes it): store magic, version,
  // page_size, page_count are the first four fields after the header.
  constexpr size_t kNeed = kPageHeaderBytes + sizeof(kStoreMagic) + 12;
  PageHeader header;
  if (!DecodePageHeader(bytes.data(), bytes.size(), &header) ||
      header.type != PageType::kMeta || header.page_id != 0) {
    return Status::Corruption("not a TWCST03 store: bad meta page header");
  }
  if (bytes.size() < kNeed) {
    return Status::Corruption("TWCST03 store truncated before meta fields");
  }
  const char* p = bytes.data() + kPageHeaderBytes;
  if (std::memcmp(p, kStoreMagic, sizeof(kStoreMagic)) != 0) {
    return Status::Corruption("not a TWCST03 store: bad format magic");
  }
  p += sizeof(kStoreMagic);
  const uint32_t version = GetU32(p);
  if (version != kStoreVersion) {
    return Status::Corruption("TWCST03 version " + std::to_string(version) +
                              " unsupported");
  }
  *page_size = GetU32(p + 4);
  *page_count = GetU32(p + 8);
  if (!ValidPageSize(*page_size)) {
    return Status::Corruption("TWCST03 page size " +
                              std::to_string(*page_size) + " invalid");
  }
  if (*page_count == 0) {
    return Status::Corruption("TWCST03 store has zero pages");
  }
  return Status::OK();
}

}  // namespace twig::storage
