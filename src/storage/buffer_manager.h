// A bounded pool of validated page frames shared by every paged CST in
// the process. Callers Pin a (source, page) pair and receive an RAII
// handle; while any handle is live the frame's bytes are immovable.
// Unpinned frames stay cached and are recycled by a clock
// (second-chance) sweep when the pool is full, so resident page memory
// is bounded by the pool size regardless of store size.
//
// Concurrency protocol (the tsan suite hammers exactly these edges):
//   * The page table is lock-striped: key -> frame lives in one of
//     kShards maps, each behind its own mutex. Pins take only that
//     shard's lock on the hit path.
//   * pin_count is incremented ONLY under the owning shard's mutex and
//     decremented lock-free. The evictor inspects pin_count while
//     holding both the pool mutex and the frame's shard mutex, so a
//     0 it observes cannot concurrently become 1 (increments need the
//     shard lock it holds); a stale 1 merely skips an evictable frame.
//   * Lock order is pool mutex -> shard mutex, never the reverse. A
//     miss therefore releases the shard lock, reserves a frame under
//     the pool mutex, then re-locks the shard and double-checks — if
//     another thread inserted meanwhile, the reserved frame goes back
//     to the free list and the pin retries as a hit.
//   * Page IO and checksum validation run with NO locks held. The
//     in-flight frame sits in the table in the kLoading state and
//     concurrent pins of the same page wait on the shard's condvar.
//   * Failed loads are not cached: the loader erases the entry and
//     frees the frame before signalling, so waiters retry the load
//     themselves (and recover as soon as the failpoint or IO error
//     clears).
//
// Pool exhaustion (every frame pinned, two full clock sweeps finding
// nothing) is a load-shedding condition, not a deadlock: Pin returns
// Unavailable and the caller degrades the same way the serving layer
// degrades on a full queue.

#ifndef TWIG_STORAGE_BUFFER_MANAGER_H_
#define TWIG_STORAGE_BUFFER_MANAGER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/page_source.h"
#include "util/status.h"

namespace twig::storage {

class BufferManager;

/// RAII pin on one validated page. While live, the page's bytes are
/// stable; destruction unpins (lock-free). Movable, not copyable.
class PinnedPage {
 public:
  PinnedPage() = default;
  PinnedPage(PinnedPage&& other) noexcept { *this = std::move(other); }
  PinnedPage& operator=(PinnedPage&& other) noexcept;
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;
  ~PinnedPage() { Release(); }

  explicit operator bool() const { return frame_ != nullptr; }

  /// The page's payload (past the header); valid while pinned.
  const char* payload() const;
  uint32_t payload_bytes() const;

  void Release();

 private:
  friend class BufferManager;
  PinnedPage(BufferManager* manager, void* frame)
      : manager_(manager), frame_(frame) {}

  BufferManager* manager_ = nullptr;
  void* frame_ = nullptr;
};

class BufferManager {
 public:
  /// Pool totals since construction (obs counters aggregate the same
  /// events process-wide; these are per-pool for tests and the paged
  /// CST's own accounting).
  struct Stats {
    uint64_t pins = 0;        // successful Pin calls
    uint64_t reads = 0;       // loads that went to the PageSource
    uint64_t evictions = 0;   // frames recycled by the clock
    uint64_t checksum_failures = 0;  // pages failing validation
    uint64_t exhausted = 0;   // pins refused: no evictable frame
  };

  /// A pool of floor(pool_bytes / page_size) frames (at least two, so
  /// a meta page and a data page can be pinned simultaneously).
  BufferManager(size_t pool_bytes, uint32_t page_size);
  ~BufferManager();
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Registers a source and returns its pool-unique id (unique for the
  /// process lifetime — ids are never reused, so a stale id after
  /// DropSource cannot alias a newer source). The source's page size
  /// must match the pool's.
  Result<uint64_t> RegisterSource(std::shared_ptr<const PageSource> source);

  /// Forgets the source and frees its unpinned cached frames. Pinned
  /// and in-flight frames survive (their bytes are copies) and age out
  /// through the clock; subsequent pins of this id fail NotFound.
  void DropSource(uint64_t source_id);

  /// Pins page `page_id` of source `source_id`, loading and validating
  /// it if not cached. Errors: NotFound (unknown source),
  /// InvalidArgument (page out of range), Corruption (checksum or
  /// structural failure, counted), Unavailable (pool exhausted or
  /// injected fault).
  Result<PinnedPage> Pin(uint64_t source_id, uint32_t page_id);

  uint32_t page_size() const { return page_size_; }
  size_t frame_count() const { return frames_.size(); }
  Stats stats() const;

 private:
  friend class PinnedPage;

  enum class FrameState : uint8_t { kFree, kLoading, kReady };

  struct Frame {
    std::string data;  // page_size bytes once loaded
    uint64_t source_id = 0;
    uint32_t page_id = 0;
    uint32_t payload_bytes = 0;
    FrameState state = FrameState::kFree;  // guarded by owning shard
    std::atomic<uint32_t> pin_count{0};
    std::atomic<bool> referenced{false};  // clock's second chance
  };

  struct PageKey {
    uint64_t source_id;
    uint32_t page_id;
    bool operator==(const PageKey& o) const {
      return source_id == o.source_id && page_id == o.page_id;
    }
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const;
  };

  static constexpr size_t kShards = 16;
  struct Shard {
    std::mutex mutex;
    std::condition_variable cv;  // signalled when a load settles
    std::unordered_map<PageKey, Frame*, PageKeyHash> map;
  };

  Shard& ShardFor(const PageKey& key);
  /// Reserves a frame for `for_key` under the pool mutex: free list
  /// first, then the clock sweep. nullptr after two full sweeps find
  /// nothing unpinned. The frame's key fields are assigned here (only
  /// ever under the pool mutex) so the clock can read them untorn.
  Frame* ReserveFrame(const PageKey& for_key);
  /// Loads + validates into `frame` with no locks held.
  Status LoadFrame(const std::shared_ptr<const PageSource>& source,
                   uint32_t page_id, Frame* frame);
  void Unpin(Frame* frame);

  const uint32_t page_size_;

  mutable std::mutex pool_mutex_;  // frames_ free list, clock hand, sources
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<Frame*> free_frames_;
  size_t clock_hand_ = 0;
  std::unordered_map<uint64_t, std::shared_ptr<const PageSource>> sources_;
  uint64_t next_source_id_ = 1;

  std::array<Shard, kShards> shards_;

  std::atomic<uint64_t> pins_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::atomic<uint64_t> exhausted_{0};
};

}  // namespace twig::storage

#endif  // TWIG_STORAGE_BUFFER_MANAGER_H_
