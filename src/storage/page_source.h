// Where pages come from. A PageSource hands raw page bytes to the
// BufferManager, which owns validation (checksums), caching, and
// eviction; sources stay dumb and stateless beyond their backing
// bytes. Two implementations:
//
//   BlobPageSource — pages served out of an in-memory string. Used by
//     tests and by serialize-then-reopen flows that never touch disk.
//   MmapPageSource — a read-only mmap of a .twcst03 file. The kernel's
//     page cache backs cold reads; the buffer pool above bounds how
//     much validated, decoded data the process keeps hot.
//
// Both verify at Open that the byte stream is page-aligned and large
// enough for the geometry the meta page declares, so a truncated store
// fails fast instead of at some later pin.

#ifndef TWIG_STORAGE_PAGE_SOURCE_H_
#define TWIG_STORAGE_PAGE_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace twig::storage {

class PageSource {
 public:
  virtual ~PageSource() = default;

  /// Copies page `page_id`'s raw bytes (header included) into `out`,
  /// which has room for page_size() bytes. No checksum verification —
  /// the buffer manager does that once per load, not once per read.
  virtual Status ReadPage(uint32_t page_id, char* out) const = 0;

  uint32_t page_size() const { return page_size_; }
  uint32_t page_count() const { return page_count_; }

  /// Human-readable origin ("<memory>" or a file path) for errors.
  const std::string& name() const { return name_; }

 protected:
  PageSource(std::string name, uint32_t page_size, uint32_t page_count)
      : name_(std::move(name)),
        page_size_(page_size),
        page_count_(page_count) {}

  std::string name_;
  uint32_t page_size_ = 0;
  uint32_t page_count_ = 0;
};

/// Serves pages from a string owned by the source.
class BlobPageSource : public PageSource {
 public:
  static Result<std::unique_ptr<BlobPageSource>> Open(std::string blob,
                                                      std::string name);

  Status ReadPage(uint32_t page_id, char* out) const override;

 private:
  BlobPageSource(std::string blob, std::string name, uint32_t page_size,
                 uint32_t page_count);

  std::string blob_;
};

/// Serves pages from a read-only memory map of a store file. Open
/// errors carry errno text so an unreadable path surfaces a concrete
/// reason (satellite: BeginRebuild failures report it via health).
class MmapPageSource : public PageSource {
 public:
  static Result<std::unique_ptr<MmapPageSource>> Open(
      const std::string& path);

  ~MmapPageSource() override;
  MmapPageSource(const MmapPageSource&) = delete;
  MmapPageSource& operator=(const MmapPageSource&) = delete;

  Status ReadPage(uint32_t page_id, char* out) const override;

 private:
  MmapPageSource(std::string path, const char* map, size_t map_bytes,
                 uint32_t page_size, uint32_t page_count);

  const char* map_ = nullptr;
  size_t map_bytes_ = 0;
};

/// Validates the byte-stream geometry shared by both sources: probes
/// the meta prefix, checks `total_bytes` covers page_size * page_count.
Status CheckStoreGeometry(std::string_view head, size_t total_bytes,
                          const std::string& name, uint32_t* page_size,
                          uint32_t* page_count);

}  // namespace twig::storage

#endif  // TWIG_STORAGE_PAGE_SOURCE_H_
