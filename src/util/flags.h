// Tiny declarative command-line parser for the example / tool
// binaries, covering exactly the conventions they already share:
//
//   * value flags are spelled `--name=value` (never `--name value`),
//   * boolean flags are bare `--name`,
//   * `--help` prints the usage text to stdout and Parse reports exit 0,
//   * an unknown flag or a malformed value prints
//     "<program>: unknown argument '<arg>'" (or a bad-value message)
//     plus the usage text to stderr and Parse reports exit 2,
//   * arguments not starting with '-' are positional; they are errors
//     unless the binary opted in with Positional().
//
// Typical use:
//   util::FlagParser flags("twig_explain", kUsage);
//   flags.String("query", &options.query);
//   flags.Size("bytes", &options.bytes);
//   flags.Bool("json", &options.json);
//   if (int code = flags.Parse(argc, argv); code >= 0) return code;

#ifndef TWIG_UTIL_FLAGS_H_
#define TWIG_UTIL_FLAGS_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace twig::util {

class FlagParser {
 public:
  /// `program` prefixes error messages; `usage` is the full usage text
  /// (printed verbatim, should end with a newline).
  FlagParser(std::string program, std::string usage);

  /// Registers `--name=value` flags writing into caller-owned storage.
  /// Names are given without the leading dashes.
  void String(std::string name, std::string* out);
  void Size(std::string name, size_t* out);     // base-10 unsigned
  void Double(std::string name, double* out);   // strtod
  /// Registers a bare `--name` flag that sets *out to true.
  void Bool(std::string name, bool* out);
  /// Registers `--name=value` with a caller-supplied handler. The
  /// handler returns false to reject the value (it should print its own
  /// diagnostic); Parse then prints the usage text and reports exit 2.
  void Custom(std::string name, std::function<bool(std::string_view)> handler);

  /// Opts in to positional (non-flag) arguments, collected in order.
  void Positional(std::vector<std::string>* out);

  /// Parses argv. Returns -1 when the program should proceed, otherwise
  /// the exit code to return immediately: 0 after `--help` (usage on
  /// stdout), 2 after an unknown flag / bad value / unexpected
  /// positional (diagnostic + usage on stderr).
  int Parse(int argc, char** argv);

 private:
  enum class Kind { kString, kSize, kDouble, kBool, kCustom };

  struct Flag {
    std::string name;  // without "--"
    Kind kind;
    void* target = nullptr;
    std::function<bool(std::string_view)> handler;
  };

  /// Applies one "--name" / "--name=value" argument; false on error
  /// (diagnostic already printed).
  bool ApplyFlag(std::string_view arg);

  std::string program_;
  std::string usage_;
  std::vector<Flag> flags_;
  std::vector<std::string>* positional_ = nullptr;
};

}  // namespace twig::util

#endif  // TWIG_UTIL_FLAGS_H_
