// A fixed-size worker pool for fanning independent work items across
// threads.
//
// Built for batch estimation: a workload's queries are independent
// reads against a shared immutable CST, so the pool only needs static
// index-range dispatch — ParallelFor hands out item indices through a
// shared atomic counter, which balances load without any per-item
// queueing or allocation. Workers are started once and reused across
// calls; the pool joins them on destruction.
//
// Shutdown semantics: there is no queue of pending batches (ParallelFor
// is synchronous), so the only work that can be "queued" is the
// unclaimed tail of an in-flight batch. Destruction is equivalent to
// Shutdown(/*drain=*/true): an in-flight ParallelFor finishes every
// item before the workers join. Long-lived owners (e.g. the serving
// layer) call Shutdown explicitly so teardown order is deterministic
// instead of racing the destructor.

#ifndef TWIG_UTIL_THREAD_POOL_H_
#define TWIG_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace twig::util {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Equivalent to Shutdown(/*drain=*/true).
  ~ThreadPool();

  /// Stops the pool and joins the workers. With `drain` (the
  /// destructor's behavior) an in-flight ParallelFor completes all of
  /// its items first; without it, items not yet claimed by a worker are
  /// abandoned — the blocked ParallelFor caller still returns once the
  /// items already in progress finish, but its body will not have run
  /// for every index. Idempotent and safe to call concurrently with a
  /// ParallelFor issued from another thread. After Shutdown, ParallelFor
  /// runs its items inline on the calling thread.
  void Shutdown(bool drain = true);

  /// Number of worker threads (>= 1 until Shutdown, 0 after).
  size_t size() const { return threads_.size(); }

  /// Runs body(item, worker) for every item in [0, count), fanned
  /// across the workers; `worker` identifies the calling worker in
  /// [0, size()). Blocks until all items are done. The body must not
  /// itself call ParallelFor on this pool.
  void ParallelFor(size_t count,
                   const std::function<void(size_t item, size_t worker)>& body);

 private:
  void WorkerMain(size_t worker);

  /// Runs the current batch's items until the shared index runs out.
  void DrainItems(size_t worker);

  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  /// Incremented per ParallelFor call; workers wake when it changes.
  uint64_t generation_ = 0;
  bool stopping_ = false;
  /// Set once Shutdown has joined the workers (ParallelFor runs inline).
  bool shut_down_ = false;

  // State of the in-flight ParallelFor, valid while busy_workers_ > 0
  // or next_item_ < item_count_.
  const std::function<void(size_t, size_t)>* body_ = nullptr;
  size_t item_count_ = 0;
  std::atomic<size_t> next_item_{0};
  size_t busy_workers_ = 0;
};

}  // namespace twig::util

#endif  // TWIG_UTIL_THREAD_POOL_H_
