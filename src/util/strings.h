// Small string helpers shared across modules.

#ifndef TWIG_UTIL_STRINGS_H_
#define TWIG_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace twig {

/// Splits `s` on `sep`; empty pieces are kept ("a..b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins pieces with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// True if `s` starts with `prefix`.
inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Formats a byte count as "12.3 KB" / "4.5 MB" for reports.
std::string HumanBytes(size_t bytes);

/// Formats a double with `digits` significant fraction digits.
std::string FormatDouble(double v, int digits = 3);

}  // namespace twig

#endif  // TWIG_UTIL_STRINGS_H_
