#include "util/strings.h"

#include <cstdio>

namespace twig {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string HumanBytes(size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace twig
