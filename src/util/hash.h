// 64-bit mixing and seeded hash streams.
//
// These are the primitives beneath the set-hash (min-hash) signatures:
// each signature component uses an independently seeded hash function
// over data-tree node IDs. We use SplitMix64-style finalizers, which
// pass standard avalanche tests and are cheap and deterministic across
// platforms.

#ifndef TWIG_UTIL_HASH_H_
#define TWIG_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace twig {

/// SplitMix64 finalizer: a strong 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hashes `value` under the hash function identified by `seed`.
/// Different seeds give (empirically) independent hash functions.
inline uint64_t SeededHash64(uint64_t seed, uint64_t value) {
  return Mix64(value + Mix64(seed + 0x2545f4914f6cdd1dULL));
}

/// FNV-1a over bytes; stable across platforms. Used for interning and
/// for hashing label strings.
inline uint64_t HashBytes(std::string_view bytes, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ULL ^ Mix64(seed);
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

/// Combines two hash values (order-dependent).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace twig

#endif  // TWIG_UTIL_HASH_H_
