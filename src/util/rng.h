// Deterministic pseudo-random number generation.
//
// All randomness in the library (dataset generation, workload sampling,
// signature seeds) flows through explicitly seeded Rng instances so that
// every experiment is reproducible bit-for-bit.

#ifndef TWIG_UTIL_RNG_H_
#define TWIG_UTIL_RNG_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "util/hash.h"

namespace twig {

/// xoshiro256** generator seeded via SplitMix64. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x7ee1f00dULL) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x = Mix64(x + 0x9e3779b97f4a7c15ULL);
      s = x;
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    // Rejection-free modulo is fine here; n is always tiny relative to 2^64.
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Forks an independent generator; deterministic in (this stream, tag).
  Rng Fork(uint64_t tag) { return Rng(Mix64(Next() ^ Mix64(tag))); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Samples indices in [0, n) with the Zipf distribution
/// P(i) proportional to 1 / (i+1)^theta, via precomputed CDF inversion.
/// Used to give generated leaf vocabularies realistic skew.
class ZipfSampler {
 public:
  /// Builds a sampler over n items with exponent theta (>= 0; 0 = uniform).
  ZipfSampler(size_t n, double theta);

  /// Draws one index in [0, n).
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace twig

#endif  // TWIG_UTIL_RNG_H_
