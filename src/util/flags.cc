#include "util/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace twig::util {

FlagParser::FlagParser(std::string program, std::string usage)
    : program_(std::move(program)), usage_(std::move(usage)) {}

void FlagParser::String(std::string name, std::string* out) {
  flags_.push_back({std::move(name), Kind::kString, out, nullptr});
}

void FlagParser::Size(std::string name, size_t* out) {
  flags_.push_back({std::move(name), Kind::kSize, out, nullptr});
}

void FlagParser::Double(std::string name, double* out) {
  flags_.push_back({std::move(name), Kind::kDouble, out, nullptr});
}

void FlagParser::Bool(std::string name, bool* out) {
  flags_.push_back({std::move(name), Kind::kBool, out, nullptr});
}

void FlagParser::Custom(std::string name,
                        std::function<bool(std::string_view)> handler) {
  flags_.push_back({std::move(name), Kind::kCustom, nullptr,
                    std::move(handler)});
}

void FlagParser::Positional(std::vector<std::string>* out) {
  positional_ = out;
}

bool FlagParser::ApplyFlag(std::string_view arg) {
  // Split "--name=value" (value flags) from "--name" (booleans).
  std::string_view body = arg.substr(2);
  const size_t eq = body.find('=');
  const std::string_view name =
      eq == std::string_view::npos ? body : body.substr(0, eq);
  const bool has_value = eq != std::string_view::npos;
  const std::string_view value = has_value ? body.substr(eq + 1) : "";

  for (const Flag& flag : flags_) {
    if (flag.name != name) continue;
    if ((flag.kind == Kind::kBool) == has_value) break;  // wrong shape
    switch (flag.kind) {
      case Kind::kBool:
        *static_cast<bool*>(flag.target) = true;
        return true;
      case Kind::kString:
        static_cast<std::string*>(flag.target)->assign(value);
        return true;
      case Kind::kCustom:
        if (flag.handler(value)) return true;
        std::fputs(usage_.c_str(), stderr);
        return false;
      case Kind::kSize:
      case Kind::kDouble: {
        const std::string text(value);
        char* end = nullptr;
        errno = 0;
        if (flag.kind == Kind::kSize) {
          const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
          if (errno != 0 || end == text.c_str() || *end != '\0') break;
          *static_cast<size_t*>(flag.target) = static_cast<size_t>(parsed);
        } else {
          const double parsed = std::strtod(text.c_str(), &end);
          if (errno != 0 || end == text.c_str() || *end != '\0') break;
          *static_cast<double*>(flag.target) = parsed;
        }
        return true;
      }
    }
    std::fprintf(stderr, "%s: bad value in '%.*s'\n", program_.c_str(),
                 static_cast<int>(arg.size()), arg.data());
    std::fputs(usage_.c_str(), stderr);
    return false;
  }
  std::fprintf(stderr, "%s: unknown argument '%.*s'\n", program_.c_str(),
               static_cast<int>(arg.size()), arg.data());
  std::fputs(usage_.c_str(), stderr);
  return false;
}

int FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help") {
      std::fputs(usage_.c_str(), stdout);
      return 0;
    }
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      if (!ApplyFlag(arg)) return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      // Single-dash arguments are never flags here; reject like unknown.
      std::fprintf(stderr, "%s: unknown argument '%.*s'\n", program_.c_str(),
                   static_cast<int>(arg.size()), arg.data());
      std::fputs(usage_.c_str(), stderr);
      return 2;
    } else if (positional_ != nullptr) {
      positional_->push_back(std::string(arg));
    } else {
      std::fprintf(stderr, "%s: unexpected argument '%.*s'\n",
                   program_.c_str(), static_cast<int>(arg.size()), arg.data());
      std::fputs(usage_.c_str(), stderr);
      return 2;
    }
  }
  return -1;
}

}  // namespace twig::util
