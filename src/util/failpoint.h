// Deterministic fault injection: named failpoints compiled into the
// riskiest seams of the serving path (TWCST02 deserialization, snapshot
// rebuild/publish, queue admission, worker estimate execution, TCP
// read/write) and activated at runtime — `twig_serve
// --failpoints=name=action:arg,...` at startup, or the `failpoint` wire
// verb mid-run.
//
// Design constraints, in order:
//   * Zero overhead when disabled. A process with no armed failpoint
//     pays one relaxed atomic load per site (a global armed count);
//     the registry, its mutex, and the name lookup are only touched
//     once something is armed. The acceptance bar is "compiled in but
//     disabled is within noise of not compiled in".
//   * Deterministic. Probabilistic triggering draws from one seeded
//     Rng owned by the registry, so a chaos schedule replays the same
//     trigger sequence for the same seed and evaluation order.
//   * Observable. Every failpoint counts hits (evaluations while
//     armed) and triggers (actions actually fired), surfaced on the
//     `failpoint` wire verb so a chaos harness can assert its faults
//     actually landed.
//
// Actions (the spec grammar of Configure / --failpoints):
//   name=off            disarm
//   name=error[:p]      Evaluate returns Unavailable with prob. p (1)
//   name=delay:ms[:p]   Evaluate sleeps ms milliseconds
//   name=crash-once     first trigger crashes the process, then disarms
//                       (the handler is injectable for tests)
//
// Call sites decide what a fired error *means*: the serving layer
// forwards the transient Unavailable, Cst::Deserialize maps it to the
// same structured Corruption a hostile blob would produce.

#ifndef TWIG_UTIL_FAILPOINT_H_
#define TWIG_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace twig::util {

enum class FailpointAction : uint8_t {
  kOff,
  kError,
  kDelay,
  kCrashOnce,
};

/// Stable spelling of an action ("error", "delay", ...).
const char* FailpointActionName(FailpointAction action);

/// One failpoint's configuration + lifetime stats, as returned by
/// FailpointRegistry::Snapshot for the `failpoint` wire verb.
struct FailpointInfo {
  std::string name;
  FailpointAction action = FailpointAction::kOff;
  /// Trigger probability in [0, 1] (error/delay actions).
  double probability = 1.0;
  /// Sleep for delay actions.
  uint32_t delay_ms = 0;
  /// Evaluations that reached an armed entry.
  uint64_t hits = 0;
  /// Evaluations whose action actually fired.
  uint64_t triggers = 0;
};

namespace failpoint_internal {
/// Count of armed failpoints across the process; the disabled fast
/// path is a single relaxed load of this.
extern std::atomic<int> g_armed_count;
}  // namespace failpoint_internal

/// True when at least one failpoint is armed anywhere in the process.
inline bool FailpointsArmed() {
  return failpoint_internal::g_armed_count.load(std::memory_order_relaxed) >
         0;
}

/// The process-wide failpoint table. All methods are thread-safe.
class FailpointRegistry {
 public:
  static FailpointRegistry& Get();

  /// Applies one "action[:arg[:p]]" spec to `name`. Names are
  /// restricted to [A-Za-z0-9_./-] (they round-trip through JSON and
  /// flag syntax unescaped). Configuring "off" disarms but keeps the
  /// entry's stats.
  Status Configure(std::string_view name, std::string_view spec);

  /// Applies a comma-separated "name=spec,name=spec,..." list (the
  /// --failpoints flag / wire verb grammar). Stops at the first bad
  /// entry, leaving earlier ones applied.
  Status ConfigureList(std::string_view list);

  /// Reseeds the trigger Rng (default seed is fixed). Affects
  /// subsequent draws only.
  void Seed(uint64_t seed);

  /// Disarms everything and forgets all entries and stats.
  void Reset();

  /// The slow path behind FailpointCheck: looks `name` up and applies
  /// its action. Returns Unavailable("injected fault at <name>") when
  /// an error action fires, OK otherwise (delay sleeps, crash-once
  /// crashes). Also OK for names never configured.
  Status Evaluate(std::string_view name);

  /// All configured entries (armed or not), name order.
  std::vector<FailpointInfo> Snapshot() const;

  /// Lifetime stats for one name; zeros when never configured.
  FailpointInfo Info(std::string_view name) const;

  /// Replaces the crash-once action's handler (default: abort). Tests
  /// install a recorder so the action is coverable without a death
  /// test. Pass nullptr to restore the default.
  void SetCrashHandlerForTest(std::function<void()> handler);

 private:
  FailpointRegistry();
  struct Impl;
  Impl* impl_;
};

/// The hit-site helper: free when nothing is armed, one registry
/// lookup when something is. Sites that can fail return the status;
/// sites that only stall call it for the delay side effect.
inline Status FailpointCheck(std::string_view name) {
  if (!FailpointsArmed()) return Status::OK();
  return FailpointRegistry::Get().Evaluate(name);
}

}  // namespace twig::util

#endif  // TWIG_UTIL_FAILPOINT_H_
