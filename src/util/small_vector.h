// A vector with inline storage for its first N elements.
//
// The estimation hot path (expand -> parse -> decompose -> combine)
// manipulates many short sequences of atom IDs — query paths, parsed
// subpaths, twiglet member lists — almost all of which fit in a few
// dozen bytes. Profiling shows a full estimate spends most of its time
// in the allocator servicing those tiny vectors. SmallVector keeps up
// to N elements in the object itself and only touches the heap when a
// sequence outgrows that, which removes the large majority of per-query
// allocations while keeping std::vector's contiguous-iteration API
// (begin/end are raw pointers, so <algorithm> and std::span work
// unchanged).

#ifndef TWIG_UTIL_SMALL_VECTOR_H_
#define TWIG_UTIL_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace twig::util {

template <typename T, size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  template <typename It>
  SmallVector(It first, It last) {
    assign(first, last);
  }

  /// Implicit from std::vector, so call sites and tests can keep
  /// building sequences with ordinary vectors.
  SmallVector(const std::vector<T>& v)  // NOLINT(runtime/explicit)
      : SmallVector(v.begin(), v.end()) {}

  SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  SmallVector& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  ~SmallVector() { Reset(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T* data() { return data_; }
  const T* data() const { return data_; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(size_t want) {
    if (want > capacity_) Grow(want);
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  void clear() {
    std::destroy(begin(), end());
    size_ = 0;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) emplace_back(*first);
  }

  void resize(size_t count) {
    while (size_ > count) pop_back();
    reserve(count);
    while (size_ < count) emplace_back();
  }

  /// Appends [first, last); insertion elsewhere is rotated into place
  /// (the hot paths only ever append).
  template <typename It>
  iterator insert(const_iterator pos, It first, It last) {
    const size_t at = static_cast<size_t>(pos - begin());
    const size_t old_size = size_;
    for (; first != last; ++first) emplace_back(*first);
    std::rotate(begin() + at, begin() + old_size, end());
    return begin() + at;
  }

  iterator erase(const_iterator first, const_iterator last) {
    iterator f = begin() + (first - begin());
    iterator l = begin() + (last - begin());
    iterator new_end = std::move(l, end(), f);
    while (end() != new_end) pop_back();
    return f;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  bool OnHeap() const { return data_ != nullptr && capacity_ > N; }

  void Grow(size_t want) {
    const size_t new_capacity = std::max(want, std::max<size_t>(N * 2, 8));
    T* heap = static_cast<T*>(::operator new(new_capacity * sizeof(T)));
    std::uninitialized_move(begin(), end(), heap);
    const size_t count = size_;
    Reset();
    data_ = heap;
    size_ = count;
    capacity_ = new_capacity;
  }

  /// Destroys elements and releases any heap block; leaves the vector
  /// empty and inline.
  void Reset() {
    std::destroy(begin(), end());
    if (OnHeap()) ::operator delete(data_);
    data_ = InlineData();
    size_ = 0;
    capacity_ = N;
  }

  void MoveFrom(SmallVector&& other) {
    if (other.OnHeap()) {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlineData();
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      std::uninitialized_move(other.begin(), other.end(), InlineData());
      size_ = other.size_;
      other.clear();
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = InlineData();
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace twig::util

#endif  // TWIG_UTIL_SMALL_VECTOR_H_
