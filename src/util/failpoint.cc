#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "util/rng.h"

namespace twig::util {

namespace failpoint_internal {
std::atomic<int> g_armed_count{0};
}  // namespace failpoint_internal

namespace {

constexpr uint64_t kDefaultSeed = 0xfa11fa11ULL;
constexpr uint32_t kMaxDelayMs = 60'000;

bool IsValidName(std::string_view name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '/' || c == '-';
    if (!ok) return false;
  }
  return true;
}

// Strict decimal parse into [0, 1]; no strtod so "1e3"/"nan" are
// rejected uniformly across locales.
bool ParseProbability(std::string_view s, double* out) {
  if (s.empty() || s.size() > 32) return false;
  double value = 0.0;
  size_t i = 0;
  bool any_digit = false;
  for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
    value = value * 10.0 + (s[i] - '0');
    any_digit = true;
  }
  if (i < s.size()) {
    if (s[i] != '.') return false;
    ++i;
    double scale = 0.1;
    for (; i < s.size(); ++i, scale *= 0.1) {
      if (s[i] < '0' || s[i] > '9') return false;
      value += (s[i] - '0') * scale;
      any_digit = true;
    }
  }
  if (!any_digit || value > 1.0) return false;
  *out = value;
  return true;
}

bool ParseDelayMs(std::string_view s, uint32_t* out) {
  if (s.empty() || s.size() > 8) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (value > kMaxDelayMs) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

struct Entry {
  FailpointAction action = FailpointAction::kOff;
  double probability = 1.0;
  uint32_t delay_ms = 0;
  uint64_t hits = 0;
  uint64_t triggers = 0;
};

}  // namespace

const char* FailpointActionName(FailpointAction action) {
  switch (action) {
    case FailpointAction::kOff:
      return "off";
    case FailpointAction::kError:
      return "error";
    case FailpointAction::kDelay:
      return "delay";
    case FailpointAction::kCrashOnce:
      return "crash-once";
  }
  return "off";
}

struct FailpointRegistry::Impl {
  mutable std::mutex mutex;
  // std::map: Snapshot() comes back in name order for free, and the
  // table holds a handful of entries at most.
  std::map<std::string, Entry, std::less<>> entries;
  Rng rng{kDefaultSeed};
  std::function<void()> crash_handler;
};

FailpointRegistry& FailpointRegistry::Get() {
  static FailpointRegistry registry;
  return registry;
}

FailpointRegistry::FailpointRegistry() : impl_(new Impl) {}

Status FailpointRegistry::Configure(std::string_view name,
                                    std::string_view spec) {
  if (!IsValidName(name)) {
    return Status::InvalidArgument("bad failpoint name: '" +
                                   std::string(name) + "'");
  }
  Entry parsed;
  std::string_view action = spec;
  std::string_view rest;
  if (size_t colon = spec.find(':'); colon != std::string_view::npos) {
    action = spec.substr(0, colon);
    rest = spec.substr(colon + 1);
  }
  if (action == "off") {
    if (!rest.empty()) {
      return Status::InvalidArgument("failpoint 'off' takes no argument");
    }
  } else if (action == "error") {
    parsed.action = FailpointAction::kError;
    if (!rest.empty() && !ParseProbability(rest, &parsed.probability)) {
      return Status::InvalidArgument(
          "bad failpoint probability (want [0,1]): '" + std::string(rest) +
          "'");
    }
  } else if (action == "delay") {
    parsed.action = FailpointAction::kDelay;
    std::string_view ms = rest;
    if (size_t colon = rest.find(':'); colon != std::string_view::npos) {
      ms = rest.substr(0, colon);
      if (!ParseProbability(rest.substr(colon + 1), &parsed.probability)) {
        return Status::InvalidArgument(
            "bad failpoint probability (want [0,1]): '" +
            std::string(rest.substr(colon + 1)) + "'");
      }
    }
    if (!ParseDelayMs(ms, &parsed.delay_ms)) {
      return Status::InvalidArgument(
          "bad failpoint delay (want integer ms <= 60000): '" +
          std::string(ms) + "'");
    }
  } else if (action == "crash-once") {
    parsed.action = FailpointAction::kCrashOnce;
    if (!rest.empty()) {
      return Status::InvalidArgument(
          "failpoint 'crash-once' takes no argument");
    }
  } else {
    return Status::InvalidArgument("unknown failpoint action: '" +
                                   std::string(action) + "'");
  }

  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    it = impl_->entries.emplace(std::string(name), Entry{}).first;
  }
  const bool was_armed = it->second.action != FailpointAction::kOff;
  const bool now_armed = parsed.action != FailpointAction::kOff;
  parsed.hits = it->second.hits;
  parsed.triggers = it->second.triggers;
  it->second = parsed;
  if (was_armed != now_armed) {
    failpoint_internal::g_armed_count.fetch_add(now_armed ? 1 : -1,
                                                std::memory_order_relaxed);
  }
  return Status::OK();
}

Status FailpointRegistry::ConfigureList(std::string_view list) {
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) comma = list.size();
    const std::string_view item = list.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          "failpoint entry lacks '=' (want name=action[:arg]): '" +
          std::string(item) + "'");
    }
    Status s = Configure(item.substr(0, eq), item.substr(eq + 1));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

void FailpointRegistry::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->rng = Rng(seed);
}

void FailpointRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& [name, entry] : impl_->entries) {
    if (entry.action != FailpointAction::kOff) {
      failpoint_internal::g_armed_count.fetch_sub(1,
                                                  std::memory_order_relaxed);
    }
  }
  impl_->entries.clear();
  impl_->rng = Rng(kDefaultSeed);
}

Status FailpointRegistry::Evaluate(std::string_view name) {
  uint32_t sleep_ms = 0;
  bool crashing = false;
  std::function<void()> crash;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->entries.find(name);
    if (it == impl_->entries.end() ||
        it->second.action == FailpointAction::kOff) {
      return Status::OK();
    }
    Entry& entry = it->second;
    ++entry.hits;
    switch (entry.action) {
      case FailpointAction::kOff:
        return Status::OK();
      case FailpointAction::kError:
        if (entry.probability < 1.0 &&
            !impl_->rng.Bernoulli(entry.probability)) {
          return Status::OK();
        }
        ++entry.triggers;
        return Status::Unavailable("injected fault at " + std::string(name));
      case FailpointAction::kDelay:
        if (entry.probability < 1.0 &&
            !impl_->rng.Bernoulli(entry.probability)) {
          return Status::OK();
        }
        ++entry.triggers;
        sleep_ms = entry.delay_ms;
        break;
      case FailpointAction::kCrashOnce:
        ++entry.triggers;
        entry.action = FailpointAction::kOff;
        failpoint_internal::g_armed_count.fetch_sub(
            1, std::memory_order_relaxed);
        crashing = true;
        crash = impl_->crash_handler;
        break;
    }
  }
  // Side effects run outside the lock so a stalled or crashing site
  // cannot wedge Configure/Snapshot on other threads.
  if (crashing) {
    if (crash) {
      crash();
      return Status::OK();
    }
    std::abort();
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return Status::OK();
}

std::vector<FailpointInfo> FailpointRegistry::Snapshot() const {
  std::vector<FailpointInfo> out;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  out.reserve(impl_->entries.size());
  for (const auto& [name, entry] : impl_->entries) {
    FailpointInfo info;
    info.name = name;
    info.action = entry.action;
    info.probability = entry.probability;
    info.delay_ms = entry.delay_ms;
    info.hits = entry.hits;
    info.triggers = entry.triggers;
    out.push_back(std::move(info));
  }
  return out;
}

FailpointInfo FailpointRegistry::Info(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  FailpointInfo info;
  info.name = std::string(name);
  auto it = impl_->entries.find(name);
  if (it != impl_->entries.end()) {
    info.action = it->second.action;
    info.probability = it->second.probability;
    info.delay_ms = it->second.delay_ms;
    info.hits = it->second.hits;
    info.triggers = it->second.triggers;
  }
  return info;
}

void FailpointRegistry::SetCrashHandlerForTest(
    std::function<void()> handler) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->crash_handler = std::move(handler);
}

}  // namespace twig::util
