#include "util/thread_pool.h"

#include <algorithm>

namespace twig::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    threads_.emplace_back([this, w] { WorkerMain(w); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(/*drain=*/true); }

void ThreadPool::Shutdown(bool drain) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    stopping_ = true;
    // Workers exit their wait loop once stopping_ is set, but a worker
    // inside DrainItems keeps claiming items until the shared index is
    // exhausted — so an in-flight batch always drains unless we exhaust
    // the index here ourselves.
    if (!drain) {
      next_item_.store(item_count_, std::memory_order_relaxed);
    }
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void ThreadPool::DrainItems(size_t worker) {
  const size_t count = item_count_;
  while (true) {
    const size_t item = next_item_.fetch_add(1, std::memory_order_relaxed);
    if (item >= count) break;
    (*body_)(item, worker);
  }
}

void ThreadPool::WorkerMain(size_t worker) {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      // A batch published before (or racing) Shutdown must still be
      // drained — otherwise its ParallelFor caller would wait on
      // busy_workers_ forever. Exit only when there is no fresh batch.
      if (generation_ == seen_generation) return;
      seen_generation = generation_;
    }
    DrainItems(worker);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      const bool batch_done = --busy_workers_ == 0;
      if (batch_done) work_done_.notify_all();
      if (stopping_) return;
    }
  }
}

void ThreadPool::ParallelFor(
    size_t count, const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shut_down_) {
      lock.unlock();
      for (size_t item = 0; item < count; ++item) body(item, 0);
      return;
    }
    body_ = &body;
    item_count_ = count;
    next_item_.store(0, std::memory_order_relaxed);
    busy_workers_ = threads_.size();
    ++generation_;
  }
  work_ready_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] { return busy_workers_ == 0; });
    body_ = nullptr;
  }
}

}  // namespace twig::util
