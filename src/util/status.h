// Lightweight Status / Result error-handling primitives.
//
// The library does not use exceptions on its hot paths; fallible
// operations (parsing XML, parsing query syntax, deserializing a CST)
// return a Status or a Result<T> in the style of Arrow / RocksDB.

#ifndef TWIG_UTIL_STATUS_H_
#define TWIG_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace twig {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kUnimplemented,
  kInternal,
  kUnavailable,       // transient: overload, shutdown, no snapshot yet
  kDeadlineExceeded,  // request deadline passed before completion
};

/// Returns a human-readable name for a StatusCode ("OK", "ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. Accessing the value of a failed Result is a
/// programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace twig

#endif  // TWIG_UTIL_STATUS_H_
