#include "xml/xml.h"

#include <cctype>
#include <string>
#include <vector>

namespace twig::xml {

namespace {

using tree::kNullNode;
using tree::NodeId;
using tree::Tree;

/// Internal cursor over the document with error reporting.
class Parser {
 public:
  Parser(std::string_view input, const XmlParseOptions& options)
      : input_(input), options_(options) {}

  Result<Tree> Parse() {
    SkipProlog();
    Tree tree;
    Status s = ParseElement(&tree, kNullNode);
    if (!s.ok()) return s;
    SkipMisc();
    if (!AtEnd()) {
      return Error("trailing content after document element");
    }
    if (tree.empty()) return Status::ParseError("no document element");
    return tree;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Lookahead(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  Status Error(std::string msg) const {
    return Status::ParseError(msg + " at byte " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  /// Skips comments, PIs and whitespace between markup.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (Lookahead("<!--")) {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 3;
      } else if (Lookahead("<?")) {
        size_t end = input_.find("?>", pos_ + 2);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 2;
      } else if (Lookahead("<!DOCTYPE")) {
        // Skip to the matching '>'. Bracket counting covers internal
        // subsets and nested markup declarations; quoted literals
        // (system identifiers, entity values) may contain '<', '>',
        // '[' and ']' and must not disturb the depth.
        pos_ += 9;
        int depth = 0;
        char quote = 0;
        while (!AtEnd()) {
          char c = input_[pos_++];
          if (quote != 0) {
            if (c == quote) quote = 0;
            continue;
          }
          if (c == '"' || c == '\'') {
            quote = c;
            continue;
          }
          if (c == '<' || c == '[') ++depth;
          if (c == ']') --depth;
          if (c == '>') {
            if (depth == 0) break;
            --depth;
          }
        }
      } else {
        break;
      }
    }
  }

  void SkipProlog() { SkipMisc(); }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  Result<std::string_view> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return input_.substr(start, pos_ - start);
  }

  /// Decodes entity and character references in `raw` into `out`.
  Status DecodeText(std::string_view raw, std::string* out) {
    for (size_t i = 0; i < raw.size();) {
      char c = raw[i];
      if (c != '&') {
        out->push_back(c);
        ++i;
        continue;
      }
      size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Status::ParseError("unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out->push_back('&');
      } else if (ent == "lt") {
        out->push_back('<');
      } else if (ent == "gt") {
        out->push_back('>');
      } else if (ent == "quot") {
        out->push_back('"');
      } else if (ent == "apos") {
        out->push_back('\'');
      } else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        // Encode as UTF-8 (covers the BMP; enough for data files).
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        // Unknown entity: keep it verbatim so data is not lost.
        out->push_back('&');
        out->append(ent);
        out->push_back(';');
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  /// Appends text content to `parent`, applying whitespace policy.
  Status EmitText(Tree* tree, NodeId parent, std::string_view raw) {
    std::string decoded;
    Status s = DecodeText(raw, &decoded);
    if (!s.ok()) return s;
    if (options_.normalize_text_whitespace) {
      std::string norm;
      bool in_space = false;
      for (char c : decoded) {
        if (std::isspace(static_cast<unsigned char>(c))) {
          in_space = true;
          continue;
        }
        if (in_space && !norm.empty()) norm.push_back(' ');
        in_space = false;
        norm.push_back(c);
      }
      decoded = std::move(norm);
    }
    if (options_.skip_whitespace_text) {
      bool all_space = true;
      for (char c : decoded) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          all_space = false;
          break;
        }
      }
      if (all_space) return Status::OK();
    }
    if (!decoded.empty()) tree->AddValue(parent, decoded);
    return Status::OK();
  }

  Status ParseAttributes(Tree* tree, NodeId element) {
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') return Status::OK();
      auto name = ParseName();
      if (!name.ok()) return name.status();
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      std::string_view raw = input_.substr(start, pos_ - start);
      ++pos_;  // closing quote
      if (options_.attributes_as_children) {
        NodeId attr = tree->AddElement(element, *name);
        std::string decoded;
        Status s = DecodeText(raw, &decoded);
        if (!s.ok()) return s;
        if (!decoded.empty()) tree->AddValue(attr, decoded);
      }
    }
  }

  Status ParseContent(Tree* tree, NodeId element) {
    size_t text_start = pos_;
    while (true) {
      if (AtEnd()) return Error("unterminated element content");
      if (Peek() != '<') {
        ++pos_;
        continue;
      }
      // Flush pending text.
      if (pos_ > text_start) {
        Status s =
            EmitText(tree, element, input_.substr(text_start, pos_ - text_start));
        if (!s.ok()) return s;
      }
      if (Lookahead("</")) return Status::OK();  // caller consumes end tag
      if (Lookahead("<!--")) {
        size_t end = input_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return Error("unterminated comment");
        pos_ = end + 3;
      } else if (Lookahead("<![CDATA[")) {
        size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        std::string_view data = input_.substr(pos_ + 9, end - pos_ - 9);
        if (!data.empty()) tree->AddValue(element, data);
        pos_ = end + 3;
      } else if (Lookahead("<?")) {
        size_t end = input_.find("?>", pos_ + 2);
        if (end == std::string_view::npos) return Error("unterminated PI");
        pos_ = end + 2;
      } else {
        Status s = ParseElement(tree, element);
        if (!s.ok()) return s;
      }
      text_start = pos_;
    }
  }

  Status ParseElement(Tree* tree, NodeId parent) {
    if (AtEnd() || Peek() != '<') return Error("expected '<'");
    ++pos_;
    auto name = ParseName();
    if (!name.ok()) return name.status();
    NodeId element = (parent == kNullNode) ? tree->AddRoot(*name)
                                           : tree->AddElement(parent, *name);
    Status s = ParseAttributes(tree, element);
    if (!s.ok()) return s;
    if (Lookahead("/>")) {
      pos_ += 2;
      return Status::OK();
    }
    if (AtEnd() || Peek() != '>') return Error("expected '>'");
    ++pos_;
    s = ParseContent(tree, element);
    if (!s.ok()) return s;
    // Consume "</name>".
    pos_ += 2;
    auto end_name = ParseName();
    if (!end_name.ok()) return end_name.status();
    if (*end_name != *name) {
      return Error("mismatched end tag </" + std::string(*end_name) +
                   "> for <" + std::string(*name) + ">");
    }
    SkipWhitespace();
    if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
    ++pos_;
    return Status::OK();
  }

  std::string_view input_;
  const XmlParseOptions& options_;
  size_t pos_ = 0;
};

/// Shared serialization walker for WriteXml and XmlByteSize.
template <typename Sink>
void Serialize(const Tree& tree, NodeId n, int depth, bool pretty,
               Sink& sink) {
  if (tree.IsValue(n)) {
    sink.Text(EscapeXml(tree.Value(n)));
    return;
  }
  std::string_view tag = tree.LabelName(n);
  if (pretty) sink.Indent(depth);
  sink.Text("<");
  sink.Text(tag);
  const auto& children = tree.Children(n);
  if (children.empty()) {
    sink.Text("/>");
    if (pretty) sink.Text("\n");
    return;
  }
  sink.Text(">");
  const bool has_element_child = [&] {
    for (NodeId c : children) {
      if (!tree.IsValue(c)) return true;
    }
    return false;
  }();
  if (pretty && has_element_child) sink.Text("\n");
  for (NodeId c : children) {
    Serialize(tree, c, depth + 1, pretty && has_element_child, sink);
  }
  if (pretty && has_element_child) sink.Indent(depth);
  sink.Text("</");
  sink.Text(tag);
  sink.Text(">");
  if (pretty) sink.Text("\n");
}

struct StringSink {
  std::string out;
  void Text(std::string_view s) { out.append(s); }
  void Indent(int depth) { out.append(static_cast<size_t>(depth) * 2, ' '); }
};

struct CountSink {
  size_t bytes = 0;
  void Text(std::string_view s) { bytes += s.size(); }
  void Indent(int depth) { bytes += static_cast<size_t>(depth) * 2; }
};

}  // namespace

Result<tree::Tree> ParseXml(std::string_view input,
                            const XmlParseOptions& options) {
  Parser parser(input, options);
  return parser.Parse();
}

std::string WriteXml(const tree::Tree& tree, const XmlWriteOptions& options) {
  if (tree.empty()) return "";
  StringSink sink;
  Serialize(tree, tree.root(), 0, options.pretty, sink);
  return std::move(sink.out);
}

size_t XmlByteSize(const tree::Tree& tree) {
  if (tree.empty()) return 0;
  CountSink sink;
  Serialize(tree, tree.root(), 0, /*pretty=*/false, sink);
  return sink.bytes;
}

std::string EscapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace twig::xml
