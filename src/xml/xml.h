// XML <-> node-labeled tree conversion.
//
// This is the substrate that turns XML documents (the paper's data
// model instance) into the Tree the estimators operate on:
//  * element tags and attribute names become non-leaf labels,
//  * text content and attribute values become leaf value nodes.
//
// The parser is a small, self-contained recursive-descent parser that
// handles elements, attributes, character data, entity references,
// comments, CDATA sections, processing instructions and the XML
// declaration. It is not a validating parser; it accepts the
// well-formed subset needed for data files like DBLP and SWISS-PROT.

#ifndef TWIG_XML_XML_H_
#define TWIG_XML_XML_H_

#include <string>
#include <string_view>

#include "tree/tree.h"
#include "util/status.h"

namespace twig::xml {

/// Options controlling XML -> Tree conversion.
struct XmlParseOptions {
  /// If true, attributes become child elements holding a value node
  /// (`<a b="c"/>` parses like `<a><b>c</b></a>`). If false, attributes
  /// are dropped.
  bool attributes_as_children = true;
  /// If true, whitespace-only text between elements is ignored.
  bool skip_whitespace_text = true;
  /// Collapse runs of whitespace inside text content to single spaces.
  bool normalize_text_whitespace = true;
};

/// Parses an XML document into a Tree. Returns ParseError with a
/// byte-offset diagnostic on malformed input.
Result<tree::Tree> ParseXml(std::string_view xml,
                            const XmlParseOptions& options = {});

/// Options controlling Tree -> XML serialization.
struct XmlWriteOptions {
  /// Indent with two spaces per depth level when true; compact otherwise.
  bool pretty = false;
};

/// Serializes a Tree as an XML document (value nodes as text content).
std::string WriteXml(const tree::Tree& tree, const XmlWriteOptions& options = {});

/// Number of bytes WriteXml(tree, {.pretty = false}) would produce,
/// without materializing the string. Used as the "data set size"
/// denominator for summary-structure space budgets.
size_t XmlByteSize(const tree::Tree& tree);

/// Escapes &, <, >, ", ' for inclusion in XML text or attribute values.
std::string EscapeXml(std::string_view text);

}  // namespace twig::xml

#endif  // TWIG_XML_XML_H_
