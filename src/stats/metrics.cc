#include "stats/metrics.h"

#include <algorithm>
#include <cmath>

namespace twig::stats {

double SignedRelativeError(double truth, double estimate) {
  return (estimate - truth) / std::max(truth, 1.0);
}

void ErrorAccumulator::Add(double truth, double estimate) {
  if (!std::isfinite(estimate)) return;  // skipped / failed batch slot
  ++count_;
  const double diff = truth - estimate;
  sum_sq_ += diff * diff;
  if (truth > 0) {
    ++positive_count_;
    sum_rel_ += std::abs(diff) / truth;
    sum_rel_sq_ += (diff * diff) / (truth * truth);
  }
}

double ErrorAccumulator::AvgRelativeError() const {
  return positive_count_ == 0 ? 0.0
                              : sum_rel_ / static_cast<double>(positive_count_);
}

double ErrorAccumulator::AvgRelativeSquaredError() const {
  return positive_count_ == 0
             ? 0.0
             : sum_rel_sq_ / static_cast<double>(positive_count_);
}

double ErrorAccumulator::Rmse() const {
  return count_ == 0 ? 0.0
                     : std::sqrt(sum_sq_ / static_cast<double>(count_));
}

double ErrorAccumulator::Log10(double value) {
  return std::log10(std::max(value, 1e-6));
}

const std::array<const char*, RatioHistogram::kBuckets>&
RatioHistogram::Labels() {
  static const std::array<const char*, kBuckets> kLabels = {
      "<0.1", "<0.5", "<1", "<1.5", "<10", ">=10"};
  return kLabels;
}

void RatioHistogram::Add(double truth, double estimate) {
  if (truth <= 0) return;           // ratio undefined for negative queries
  if (!std::isfinite(estimate)) return;  // skipped / failed batch slot
  const double ratio = estimate / truth;
  size_t bucket;
  if (ratio < 0.1) {
    bucket = 0;
  } else if (ratio < 0.5) {
    bucket = 1;
  } else if (ratio < 1.0) {
    bucket = 2;
  } else if (ratio < 1.5) {
    bucket = 3;
  } else if (ratio < 10.0) {
    bucket = 4;
  } else {
    bucket = 5;
  }
  ++buckets_[bucket];
  ++count_;
}

double RatioHistogram::Percent(size_t i) const {
  return count_ == 0
             ? 0.0
             : 100.0 * static_cast<double>(buckets_[i]) /
                   static_cast<double>(count_);
}

}  // namespace twig::stats
