// Error metrics of Section 6.1.
//
// For positive queries the paper reports the average relative error and
// the average relative *squared* error (which penalizes large absolute
// mistakes on small counts); for negative queries (true count 0) it
// reports the root mean squared error.

#ifndef TWIG_STATS_METRICS_H_
#define TWIG_STATS_METRICS_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace twig::stats {

/// Per-thread accounting for one batch-estimation run
/// (core::TwigEstimator::EstimateBatch). Worker w handled
/// queries_per_thread[w] queries spending busy_seconds_per_thread[w]
/// inside Estimate; wall_seconds spans the whole batch including
/// dispatch, so throughput is reported against the wall.
struct BatchStats {
  size_t num_threads = 0;
  std::vector<size_t> queries_per_thread;
  std::vector<double> busy_seconds_per_thread;
  /// Queries abandoned because BatchOptions::deadline passed before
  /// they started (their estimate slots hold quiet NaN).
  size_t queries_skipped = 0;
  /// Queries whose TryEstimate returned an error (e.g. a blown
  /// wildcard/descendant aggregation budget); NaN slots too.
  size_t queries_failed = 0;
  double wall_seconds = 0;
  /// Global obs counter deltas across the batch (registry snapshot
  /// after minus before): CST subpath hit/miss mix, set-hash
  /// intersections, fallbacks. The registry is process-wide, so
  /// concurrent non-batch estimation bleeds into the delta.
  obs::CounterArray counter_deltas{};

  /// counter_deltas as a JSON object (obs::CountersToJson).
  std::string CounterDeltasJson() const {
    return obs::CountersToJson(counter_deltas);
  }

  size_t total_queries() const {
    size_t total = 0;
    for (size_t q : queries_per_thread) total += q;
    return total;
  }

  double busy_seconds() const {
    double total = 0;
    for (double s : busy_seconds_per_thread) total += s;
    return total;
  }

  /// Queries completed per wall-clock second.
  double throughput_qps() const {
    return wall_seconds > 0 ? static_cast<double>(total_queries()) /
                                  wall_seconds
                            : 0;
  }

  /// Mean per-query estimation latency (busy time, excluding queueing).
  double avg_latency_seconds() const {
    const size_t n = total_queries();
    return n > 0 ? busy_seconds() / static_cast<double>(n) : 0;
  }
};

/// Signed relative error of `estimate` against `truth`:
/// (estimate - truth) / max(truth, 1). Positive = overestimate. The
/// max(truth, 1) denominator keeps zero-truth queries finite (absolute
/// error is then reported relative to 1 match), which is what the
/// serving layer's live accuracy sampler wants for a windowed mean.
double SignedRelativeError(double truth, double estimate);

/// Accumulates (truth, estimate) pairs and reports the paper's metrics.
/// Non-finite estimates (the NaN slots EstimateBatch leaves for
/// deadline-skipped or failed queries) are ignored, so error averages
/// cover exactly the queries that produced an estimate; `count()`
/// against the workload size reveals how many were dropped.
class ErrorAccumulator {
 public:
  void Add(double truth, double estimate);

  size_t count() const { return count_; }

  /// (1/|W|) sum |t - e| / t. Pairs with t == 0 are skipped (use Rmse
  /// for negative workloads).
  double AvgRelativeError() const;

  /// (1/|W|) sum (t - e)^2 / t^2. Pairs with t == 0 are skipped.
  double AvgRelativeSquaredError() const;

  /// sqrt((1/|W|) sum (t - e)^2).
  double Rmse() const;

  /// log10 of a metric, with a floor so error-free runs plot finitely.
  static double Log10(double value);

 private:
  size_t count_ = 0;
  size_t positive_count_ = 0;
  double sum_rel_ = 0;
  double sum_rel_sq_ = 0;
  double sum_sq_ = 0;
};

/// Distribution of estimate/truth ratios over the paper's buckets
/// (<0.1, <0.5, <1, <1.5, <10, >=10) — Figure 5(a).
///
/// Bucket edges follow the half-open convention [lo, hi): bucket i
/// holds ratios in [edge_{i-1}, edge_i) with edges 0.1, 0.5, 1.0, 1.5,
/// 10.0 — so a ratio exactly on an edge lands in the bucket *above* it
/// (1.0 is "<1.5", i.e. an exact estimate counts as not
/// underestimated; 10.0 is ">=10"). Pairs with truth <= 0 are skipped
/// (the ratio is undefined; negative workloads report RMSE instead),
/// as are non-finite estimates (skipped / failed batch slots).
class RatioHistogram {
 public:
  static constexpr size_t kBuckets = 6;
  static const std::array<const char*, kBuckets>& Labels();

  void Add(double truth, double estimate);

  size_t count() const { return count_; }
  /// Percentage of queries in bucket `i`.
  double Percent(size_t i) const;

 private:
  std::array<size_t, kBuckets> buckets_ = {};
  size_t count_ = 0;
};

}  // namespace twig::stats

#endif  // TWIG_STATS_METRICS_H_
