#include "workload/workload.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace twig::workload {

namespace {

using query::Twig;
using query::TwigNodeId;
using tree::NodeId;
using tree::Tree;

/// One sampled root-to-leaf piece: a chain of data element nodes plus
/// an optional value predicate taken from an actual leaf.
struct SampledPath {
  std::vector<NodeId> elements;  // starts at the query root node
  NodeId value_node = tree::kNullNode;
  std::string value_prefix;

  bool operator<(const SampledPath& o) const {
    if (elements != o.elements) return elements < o.elements;
    return value_node < o.value_node;
  }
  bool operator==(const SampledPath& o) const {
    return elements == o.elements && value_node == o.value_node;
  }
};

/// Shared sampling machinery.
class Sampler {
 public:
  Sampler(const Tree& data, const WorkloadOptions& options)
      : data_(data), options_(options), rng_(options.seed) {
    for (NodeId n = 0; n < data.size(); ++n) {
      if (data.IsValue(n)) continue;
      bool has_element_child = false;
      for (NodeId c : data.Children(n)) {
        if (!data.IsValue(c)) {
          has_element_child = true;
          break;
        }
      }
      if (has_element_child) roots_.push_back(n);
      by_label_[data.Label(n)].push_back(n);
    }
  }

  /// Random downward chain continuing `path` (which already holds a
  /// prefix) until it has `target` internal nodes, ending in a value
  /// predicate when the final element has value children.
  void ExtendPath(SampledPath* path, int target) {
    NodeId cur = path->elements.back();
    while (static_cast<int>(path->elements.size()) < target) {
      NodeId next = RandomElementChild(cur);
      if (next == tree::kNullNode) break;
      path->elements.push_back(next);
      cur = next;
    }
    // Value predicate: a prefix of a real leaf value under the last
    // element, when one exists.
    std::vector<NodeId> values;
    for (NodeId c : data_.Children(cur)) {
      if (data_.IsValue(c) && !data_.Value(c).empty()) values.push_back(c);
    }
    if (!values.empty()) {
      path->value_node = values[rng_.Uniform(values.size())];
      const std::string_view value = data_.Value(path->value_node);
      const size_t take = std::min<size_t>(
          value.size(), static_cast<size_t>(rng_.UniformInt(
                            options_.min_value_chars,
                            options_.max_value_chars)));
      path->value_prefix = std::string(value.substr(0, take));
    }
  }

  /// Random downward chain from `from` with the configured number of
  /// internal nodes. Returns nullopt if the chain comes out shorter
  /// than min_internal (e.g. `from` has no element children).
  std::optional<SampledPath> SamplePathFrom(NodeId from) {
    SampledPath path;
    path.elements.push_back(from);
    ExtendPath(&path, static_cast<int>(rng_.UniformInt(
                          options_.min_internal, options_.max_internal)));
    if (static_cast<int>(path.elements.size()) < options_.min_internal) {
      return std::nullopt;
    }
    return path;
  }

  /// A path branching off `base` at a random position: it reuses the
  /// prefix (so the twig gets branch nodes at arbitrary depths, not
  /// only at its root) and descends freshly from there.
  std::optional<SampledPath> SampleBranchingPath(const SampledPath& base) {
    SampledPath path;
    const size_t pos = rng_.Uniform(base.elements.size());
    path.elements.assign(base.elements.begin(),
                         base.elements.begin() + pos + 1);
    const int lo = std::max(options_.min_internal,
                            static_cast<int>(path.elements.size()));
    const int hi = std::max(options_.max_internal, lo);
    ExtendPath(&path, static_cast<int>(rng_.UniformInt(lo, hi)));
    if (static_cast<int>(path.elements.size()) < options_.min_internal) {
      return std::nullopt;
    }
    return path;
  }

  /// Builds a twig from sampled paths sharing their first element
  /// (paths are merged on common data-node prefixes).
  Twig BuildTwig(const std::vector<SampledPath>& paths) {
    Twig twig;
    std::unordered_map<NodeId, TwigNodeId> node_map;
    for (const SampledPath& path : paths) {
      TwigNodeId parent = query::kNullTwigNode;
      for (NodeId e : path.elements) {
        auto it = node_map.find(e);
        if (it != node_map.end()) {
          parent = it->second;
          continue;
        }
        TwigNodeId t = (parent == query::kNullTwigNode)
                           ? twig.AddRoot(data_.LabelName(e))
                           : twig.AddElement(parent, data_.LabelName(e));
        node_map.emplace(e, t);
        parent = t;
      }
      if (path.value_node != tree::kNullNode && !path.value_prefix.empty()) {
        twig.AddValue(parent, path.value_prefix);
      }
    }
    return twig;
  }

  /// One positive query rooted at a random data node.
  std::optional<Twig> SamplePositive(int min_paths, int max_paths) {
    if (roots_.empty()) return std::nullopt;
    const NodeId root = rng_.Bernoulli(options_.root_at_top_probability)
                            ? data_.root()
                            : roots_[rng_.Uniform(roots_.size())];
    const int want =
        static_cast<int>(rng_.UniformInt(min_paths, max_paths));
    std::vector<SampledPath> paths;
    auto first = SamplePathFrom(root);
    if (!first) return std::nullopt;  // root cannot support any path
    paths.push_back(std::move(*first));
    for (int attempt = 0; attempt < want * 4; ++attempt) {
      if (static_cast<int>(paths.size()) >= want) break;
      // Later paths branch off an existing one at a random depth, so
      // twigs get branch nodes below the root too.
      auto path = SampleBranchingPath(paths[rng_.Uniform(paths.size())]);
      if (!path) continue;
      if (std::find(paths.begin(), paths.end(), *path) == paths.end()) {
        paths.push_back(std::move(*path));
      }
    }
    // A predicate-free path whose element chain is a prefix of another
    // path contributes no leaf to the twig; drop such paths so the
    // query really has the requested number of root-to-leaf paths.
    std::vector<SampledPath> kept;
    for (const SampledPath& p : paths) {
      bool redundant = false;
      if (p.value_node == tree::kNullNode || p.value_prefix.empty()) {
        for (const SampledPath& q : paths) {
          if (&p == &q || q.elements.size() <= p.elements.size()) continue;
          if (std::equal(p.elements.begin(), p.elements.end(),
                         q.elements.begin())) {
            redundant = true;
            break;
          }
        }
      }
      if (!redundant) kept.push_back(p);
    }
    if (static_cast<int>(kept.size()) < min_paths) return std::nullopt;
    return BuildTwig(kept);
  }

  /// One negative candidate: paths sampled from *different* data nodes
  /// that share the query root's label, glued at a common root.
  std::optional<Twig> SampleNegativeCandidate() {
    if (roots_.empty()) return std::nullopt;
    const NodeId seed_root = roots_[rng_.Uniform(roots_.size())];
    const auto& same_label = by_label_[data_.Label(seed_root)];
    const int want = static_cast<int>(
        rng_.UniformInt(options_.min_paths, options_.max_paths));
    std::vector<SampledPath> paths;
    for (int attempt = 0; attempt < want * 6; ++attempt) {
      if (static_cast<int>(paths.size()) >= want) break;
      const NodeId other = same_label[rng_.Uniform(same_label.size())];
      auto path = SamplePathFrom(other);
      if (!path) continue;
      // Re-root: pretend the path starts at the glue root. Element 0 is
      // replaced logically by seed_root so BuildTwig merges all paths.
      path->elements[0] = seed_root;
      if (std::find(paths.begin(), paths.end(), *path) == paths.end()) {
        paths.push_back(std::move(*path));
      }
    }
    if (static_cast<int>(paths.size()) < std::max(options_.min_paths, 2)) {
      return std::nullopt;
    }
    return BuildTwig(paths);
  }

  Rng& rng() { return rng_; }

 private:
  NodeId RandomElementChild(NodeId n) {
    std::vector<NodeId> elems;
    for (NodeId c : data_.Children(n)) {
      if (!data_.IsValue(c)) elems.push_back(c);
    }
    if (elems.empty()) return tree::kNullNode;
    return elems[rng_.Uniform(elems.size())];
  }

  const Tree& data_;
  const WorkloadOptions& options_;
  Rng rng_;
  std::vector<NodeId> roots_;
  std::unordered_map<tree::LabelId, std::vector<NodeId>> by_label_;
};

Workload GenerateFromSampler(const Tree& data, const WorkloadOptions& options,
                             int min_paths, int max_paths) {
  Sampler sampler(data, options);
  Workload workload;
  size_t failures = 0;
  while (workload.size() < options.num_queries &&
         failures < options.num_queries * 50 + 1000) {
    auto twig = sampler.SamplePositive(min_paths, max_paths);
    if (!twig) {
      ++failures;
      continue;
    }
    WorkloadQuery wq;
    wq.twig = std::move(*twig);
    if (options.compute_true_counts) {
      // Sampled twigs have <= max_paths children per node, far under
      // the matcher's fan-out limit.
      wq.truth = match::CountTwigMatches(data, wq.twig).value();
    }
    workload.push_back(std::move(wq));
  }
  return workload;
}

}  // namespace

Workload GeneratePositive(const Tree& data, const WorkloadOptions& options) {
  return GenerateFromSampler(data, options, options.min_paths,
                             options.max_paths);
}

Workload GenerateTrivial(const Tree& data, const WorkloadOptions& options) {
  return GenerateFromSampler(data, options, 1, 1);
}

Workload GenerateAxes(const Tree& data, const WorkloadOptions& options) {
  WorkloadOptions base = options;
  base.compute_true_counts = false;  // truth belongs to the rewritten twig
  const Workload seeds = GeneratePositive(data, base);
  // Twigs are append-only, so generalization builds a rewritten clone.
  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 1);
  Workload workload;
  for (const WorkloadQuery& seed : seeds) {
    const Twig& from = seed.twig;
    Twig twig;
    auto clone = [&](auto&& self, TwigNodeId n, TwigNodeId parent) -> void {
      if (from.IsValue(n)) {
        twig.AddValue(parent, from.Value(n));
        return;
      }
      const bool wild = rng.Bernoulli(options.wildcard_probability);
      const std::string_view tag = wild ? "*" : from.Tag(n);
      TwigNodeId t;
      if (parent == query::kNullTwigNode) {
        t = twig.AddRoot(tag);
      } else {
        const query::EdgeKind edge =
            rng.Bernoulli(options.descendant_probability)
                ? query::EdgeKind::kDescendant
                : query::EdgeKind::kChild;
        t = twig.AddElement(parent, tag, edge);
      }
      for (TwigNodeId c : from.Children(n)) self(self, c, t);
    };
    clone(clone, from.root(), query::kNullTwigNode);
    WorkloadQuery wq;
    wq.twig = std::move(twig);
    if (options.compute_true_counts) {
      wq.truth = match::CountTwigMatches(data, wq.twig).value();
    }
    workload.push_back(std::move(wq));
  }
  return workload;
}

Workload GenerateNegative(const Tree& data, const WorkloadOptions& options) {
  Sampler sampler(data, options);
  Workload workload;
  size_t failures = 0;
  while (workload.size() < options.num_queries &&
         failures < options.num_queries * 100 + 1000) {
    auto twig = sampler.SampleNegativeCandidate();
    if (!twig) {
      ++failures;
      continue;
    }
    const match::TwigCounts truth =
        match::CountTwigMatches(data, *twig).value();
    if (truth.occurrence != 0) {
      ++failures;  // accidentally satisfiable — resample
      continue;
    }
    WorkloadQuery wq;
    wq.twig = std::move(*twig);
    wq.truth = truth;
    workload.push_back(std::move(wq));
  }
  return workload;
}

}  // namespace twig::workload
