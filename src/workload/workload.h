// Query workload generation (Section 6.1).
//
// Positive queries are sampled from the data: a random query root node,
// 2-5 root-to-leaf paths of 2-4 internal (element) nodes each, and 1-4
// leading characters of actual leaf values as value predicates — so
// every positive query matches by construction. Trivial queries are
// the single-path variant. Negative queries glue subpaths sampled from
// *different* data nodes sharing a label, and are verified to have a
// true count of zero with the exact matcher.
//
// All sampling is deterministic in the options' seed. Exact presence /
// occurrence counts are attached to each query so experiment harnesses
// never recompute ground truth.

#ifndef TWIG_WORKLOAD_WORKLOAD_H_
#define TWIG_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "match/matcher.h"
#include "query/twig.h"
#include "tree/tree.h"

namespace twig::workload {

/// Knobs for all three workload kinds.
struct WorkloadOptions {
  size_t num_queries = 1000;
  int min_paths = 2;
  int max_paths = 5;
  /// Internal (element) nodes per root-to-leaf path, inclusive.
  int min_internal = 2;
  int max_internal = 4;
  /// Leading characters taken from leaf value strings, inclusive.
  int min_value_chars = 1;
  int max_value_chars = 4;
  /// Probability that a query is rooted at the data tree's root (deep
  /// twigs whose paths have 3-4 internal nodes and whose branches sit
  /// below the root); otherwise the root is a uniformly random element
  /// node. Mixing the two covers the paper's "2 to 4 internal nodes
  /// per path" range.
  double root_at_top_probability = 0.25;
  /// GenerateAxes only: probability that a sampled element node's tag
  /// is rewritten to the wildcard `*`, and that a non-root element's
  /// edge is relaxed to a descendant (`//`) edge. Both rewrites only
  /// generalize, so axes queries stay positive by construction.
  double wildcard_probability = 0.0;
  double descendant_probability = 0.0;
  uint64_t seed = 7;
  /// Attach exact counts (always true for negative workloads, where
  /// verification needs them anyway).
  bool compute_true_counts = true;
};

/// One generated query with its exact ground truth.
struct WorkloadQuery {
  query::Twig twig;
  match::TwigCounts truth;
};

using Workload = std::vector<WorkloadQuery>;

/// Positive, non-trivial queries (multi-path twigs present in data).
Workload GeneratePositive(const tree::Tree& data,
                          const WorkloadOptions& options);

/// Trivial queries: single root-to-leaf paths (Figure 3's workload).
Workload GenerateTrivial(const tree::Tree& data,
                         const WorkloadOptions& options);

/// Negative queries: glued from real subpaths, verified true count 0.
Workload GenerateNegative(const tree::Tree& data,
                          const WorkloadOptions& options);

/// Positive queries with wildcard (`*`) and descendant (`//`) axes:
/// sampled like GeneratePositive, then tags / edges are generalized
/// with the options' wildcard_probability / descendant_probability.
/// Every query still matches the data (generalizing a matching twig
/// cannot lose its witness embedding); exact counts are recomputed on
/// the rewritten twig.
Workload GenerateAxes(const tree::Tree& data, const WorkloadOptions& options);

}  // namespace twig::workload

#endif  // TWIG_WORKLOAD_WORKLOAD_H_
