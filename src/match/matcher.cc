#include "match/matcher.h"

#include <cassert>
#include <vector>

#include "util/strings.h"

namespace twig::match {

namespace {

using query::Twig;
using query::TwigNodeId;
using tree::NodeId;
using tree::Tree;

/// Per-data-node DP results: (twig node, number of embeddings of that
/// twig subtree rooted here). Sparse — only nonzero entries are kept.
using ResultList = std::vector<std::pair<TwigNodeId, double>>;

class Counter {
 public:
  Counter(const Tree& data, const Twig& twig, const MatchOptions& options)
      : data_(data), twig_(twig), options_(options) {
    // Index element twig nodes by data LabelId; wildcards separately.
    by_label_.resize(data.labels().size());
    for (TwigNodeId q = 0; q < twig.size(); ++q) {
      if (twig.IsValue(q)) continue;
      if (twig.IsWildcard(q)) {
        wildcards_.push_back(q);
        continue;
      }
      tree::LabelId id = data.labels().Find(twig.Tag(q));
      if (id != tree::kInvalidLabel) by_label_[id].push_back(q);
    }
  }

  TwigCounts Count() {
    TwigCounts counts;
    if (data_.empty() || twig_.empty()) return counts;
    Walk(data_.root(), &counts);
    return counts;
  }

 private:
  /// Twig element nodes that can label-match data node `d`.
  void CompatibleTwigNodes(NodeId d, std::vector<TwigNodeId>* out) const {
    out->clear();
    const auto& exact = by_label_[data_.Label(d)];
    out->insert(out->end(), exact.begin(), exact.end());
    out->insert(out->end(), wildcards_.begin(), wildcards_.end());
  }

  /// Number of embeddings of twig subtree `q` rooted at data node `d`,
  /// given the already-computed result lists of d's children.
  double EmbeddingsAt(TwigNodeId q, NodeId d,
                      const std::vector<ResultList>& child_results) const {
    const auto& qchildren = twig_.Children(q);
    if (qchildren.empty()) return 1.0;
    const size_t k = qchildren.size();
    assert(k <= 20 && "twig fan-out exceeds subset-DP width");
    const auto& dchildren = data_.Children(d);
    if (dchildren.size() < k) return 0.0;

    // emb[j][i]: embeddings of twig child i at data child j (0 if the
    // pair is incompatible). Value-predicate twig children are resolved
    // directly against data value children.
    // Assembled per data child from its ResultList.
    std::vector<double> emb(k);
    if (!options_.ordered) {
      // Unordered: permanent via subset DP. g[S] = number of injective
      // mappings of twig-children set S into the data children seen so
      // far.
      std::vector<double> g(size_t{1} << k, 0.0);
      g[0] = 1.0;
      for (size_t j = 0; j < dchildren.size(); ++j) {
        if (!ChildEmbeddings(qchildren, dchildren[j], child_results[j], &emb)) {
          continue;
        }
        for (size_t s = (size_t{1} << k) - 1; s + 1 > 0; --s) {
          if (g[s] == 0.0) continue;
          for (size_t i = 0; i < k; ++i) {
            if ((s >> i) & 1) continue;
            if (emb[i] == 0.0) continue;
            g[s | (size_t{1} << i)] += g[s] * emb[i];
          }
          if (s == 0) break;
        }
      }
      return g[(size_t{1} << k) - 1];
    }
    // Ordered: order-preserving injective mappings. f[i] = ways to map
    // the first i twig children into the data children seen so far.
    std::vector<double> f(k + 1, 0.0);
    f[0] = 1.0;
    for (size_t j = 0; j < dchildren.size(); ++j) {
      if (!ChildEmbeddings(qchildren, dchildren[j], child_results[j], &emb)) {
        continue;
      }
      for (size_t i = k; i >= 1; --i) {
        if (emb[i - 1] != 0.0) f[i] += f[i - 1] * emb[i - 1];
      }
    }
    return f[k];
  }

  /// Fills emb[i] = embeddings of twig child i at this data child.
  /// Returns false if all zero (child contributes nothing).
  bool ChildEmbeddings(const std::vector<TwigNodeId>& qchildren, NodeId dchild,
                       const ResultList& results,
                       std::vector<double>* emb) const {
    bool any = false;
    for (size_t i = 0; i < qchildren.size(); ++i) {
      const TwigNodeId qc = qchildren[i];
      double value = 0.0;
      if (twig_.IsValue(qc)) {
        if (data_.IsValue(dchild) &&
            StartsWith(data_.Value(dchild), twig_.Value(qc))) {
          value = 1.0;
        }
      } else if (!data_.IsValue(dchild)) {
        for (const auto& [q, v] : results) {
          if (q == qc) {
            value = v;
            break;
          }
        }
      }
      (*emb)[i] = value;
      any = any || value != 0.0;
    }
    return any;
  }

  /// Post-order walk; returns the result list for `d` and accumulates
  /// whole-twig counts.
  ResultList Walk(NodeId d, TwigCounts* counts) {
    ResultList mine;
    if (data_.IsValue(d)) return mine;

    const auto& children = data_.Children(d);
    std::vector<ResultList> child_results(children.size());
    for (size_t j = 0; j < children.size(); ++j) {
      child_results[j] = Walk(children[j], counts);
    }

    std::vector<TwigNodeId> compatible;
    CompatibleTwigNodes(d, &compatible);
    for (TwigNodeId q : compatible) {
      const double occ = EmbeddingsAt(q, d, child_results);
      if (occ == 0.0) continue;
      mine.emplace_back(q, occ);
      if (q == twig_.root()) {
        counts->presence += 1;
        counts->occurrence += occ;
      }
    }
    return mine;
  }

  const Tree& data_;
  const Twig& twig_;
  const MatchOptions& options_;
  std::vector<std::vector<TwigNodeId>> by_label_;
  std::vector<TwigNodeId> wildcards_;
};

}  // namespace

TwigCounts CountTwigMatches(const Tree& data, const Twig& twig,
                            const MatchOptions& options) {
  Counter counter(data, twig, options);
  return counter.Count();
}

}  // namespace twig::match
