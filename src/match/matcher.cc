#include "match/matcher.h"

#include <string>
#include <utility>
#include <vector>

#include "util/strings.h"

namespace twig::match {

namespace {

using query::EdgeKind;
using query::Twig;
using query::TwigNodeId;
using tree::NodeId;
using tree::Tree;

/// Per-data-node DP results: (twig node, number of embeddings of that
/// twig subtree rooted here). Sparse — only nonzero entries are kept.
using ResultList = std::vector<std::pair<TwigNodeId, double>>;

void AddEntry(ResultList* list, TwigNodeId q, double value) {
  for (auto& [tq, tv] : *list) {
    if (tq == q) {
      tv += value;
      return;
    }
  }
  list->emplace_back(q, value);
}

class Counter {
 public:
  Counter(const Tree& data, const Twig& twig, const MatchOptions& options)
      : data_(data), twig_(twig), options_(options) {
    // Index element twig nodes by data LabelId; wildcards separately.
    by_label_.resize(data.labels().size());
    desc_target_.assign(twig.size(), 0);
    for (TwigNodeId q = 0; q < twig.size(); ++q) {
      if (twig.IsValue(q)) continue;
      if (twig.EdgeFromParent(q) == EdgeKind::kDescendant) {
        desc_target_[q] = 1;
        has_descendants_ = true;
      }
      if (twig.IsWildcard(q)) {
        wildcards_.push_back(q);
        continue;
      }
      tree::LabelId id = data.labels().Find(twig.Tag(q));
      if (id != tree::kInvalidLabel) by_label_[id].push_back(q);
    }
  }

  TwigCounts Count() {
    TwigCounts counts;
    if (data_.empty() || twig_.empty()) return counts;
    Walk(&counts);
    return counts;
  }

 private:
  /// Twig element nodes that can label-match data node `d`.
  void CompatibleTwigNodes(NodeId d, std::vector<TwigNodeId>* out) const {
    out->clear();
    const auto& exact = by_label_[data_.Label(d)];
    out->insert(out->end(), exact.begin(), exact.end());
    out->insert(out->end(), wildcards_.begin(), wildcards_.end());
  }

  /// Number of embeddings of twig subtree `q` rooted at data node `d`,
  /// given the already-computed result lists (rooted embeddings) and
  /// subtree totals (descendant embeddings) of d's children.
  double EmbeddingsAt(TwigNodeId q, NodeId d,
                      const std::vector<ResultList>& child_results,
                      const std::vector<ResultList>& child_totals) const {
    const auto& qchildren = twig_.Children(q);
    if (qchildren.empty()) return 1.0;
    const size_t k = qchildren.size();
    const auto& dchildren = data_.Children(d);
    if (dchildren.size() < k) return 0.0;

    // emb[i]: embeddings of twig child i routed through the current
    // data child (0 if the pair is incompatible). Value-predicate twig
    // children are resolved directly against data value children;
    // descendant-edge children read the child's whole-subtree total.
    // Assembled per data child from its ResultList.
    std::vector<double> emb(k);
    if (!options_.ordered) {
      // Unordered: permanent via subset DP. g[S] = number of injective
      // mappings of twig-children set S into the data children seen so
      // far.
      std::vector<double> g(size_t{1} << k, 0.0);
      g[0] = 1.0;
      for (size_t j = 0; j < dchildren.size(); ++j) {
        if (!ChildEmbeddings(qchildren, dchildren[j], child_results[j],
                             child_totals.empty() ? nullptr
                                                  : &child_totals[j],
                             &emb)) {
          continue;
        }
        for (size_t s = (size_t{1} << k) - 1; s + 1 > 0; --s) {
          if (g[s] == 0.0) continue;
          for (size_t i = 0; i < k; ++i) {
            if ((s >> i) & 1) continue;
            if (emb[i] == 0.0) continue;
            g[s | (size_t{1} << i)] += g[s] * emb[i];
          }
          if (s == 0) break;
        }
      }
      return g[(size_t{1} << k) - 1];
    }
    // Ordered: order-preserving injective mappings. f[i] = ways to map
    // the first i twig children into the data children seen so far.
    std::vector<double> f(k + 1, 0.0);
    f[0] = 1.0;
    for (size_t j = 0; j < dchildren.size(); ++j) {
      if (!ChildEmbeddings(qchildren, dchildren[j], child_results[j],
                           child_totals.empty() ? nullptr : &child_totals[j],
                           &emb)) {
        continue;
      }
      for (size_t i = k; i >= 1; --i) {
        if (emb[i - 1] != 0.0) f[i] += f[i - 1] * emb[i - 1];
      }
    }
    return f[k];
  }

  /// Fills emb[i] = embeddings of twig child i routed through this data
  /// child. Returns false if all zero (child contributes nothing).
  bool ChildEmbeddings(const std::vector<TwigNodeId>& qchildren, NodeId dchild,
                       const ResultList& results, const ResultList* totals,
                       std::vector<double>* emb) const {
    bool any = false;
    for (size_t i = 0; i < qchildren.size(); ++i) {
      const TwigNodeId qc = qchildren[i];
      double value = 0.0;
      if (twig_.IsValue(qc)) {
        if (data_.IsValue(dchild) &&
            StartsWith(data_.Value(dchild), twig_.Value(qc))) {
          value = 1.0;
        }
      } else if (!data_.IsValue(dchild)) {
        const ResultList& source =
            (desc_target_[qc] && totals != nullptr) ? *totals : results;
        for (const auto& [q, v] : source) {
          if (q == qc) {
            value = v;
            break;
          }
        }
      }
      (*emb)[i] = value;
      any = any || value != 0.0;
    }
    return any;
  }

  /// Explicit-stack post-order walk over the data tree. Each frame
  /// holds its element node, the next child to visit, and the
  /// accumulated per-child DP lists; completing a frame computes its
  /// own result list (plus, when the twig has descendant edges, its
  /// inclusive-subtree totals for the descendant-target twig nodes)
  /// and delivers both into the parent frame's slot.
  void Walk(TwigCounts* counts) {
    struct Frame {
      NodeId node;
      size_t parent_slot;
      size_t next_child = 0;
      std::vector<ResultList> child_results;
      std::vector<ResultList> child_totals;
    };
    if (data_.IsValue(data_.root())) return;
    std::vector<Frame> stack;
    auto push = [&](NodeId n, size_t slot) {
      Frame frame;
      frame.node = n;
      frame.parent_slot = slot;
      const size_t fanout = data_.Children(n).size();
      frame.child_results.resize(fanout);
      if (has_descendants_) frame.child_totals.resize(fanout);
      stack.push_back(std::move(frame));
    };
    push(data_.root(), 0);
    std::vector<TwigNodeId> compatible;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& children = data_.Children(frame.node);
      if (frame.next_child < children.size()) {
        const NodeId c = children[frame.next_child];
        const size_t slot = frame.next_child;
        ++frame.next_child;
        // Value children keep their (empty) slot lists; only element
        // children get frames.
        if (!data_.IsValue(c)) push(c, slot);
        continue;
      }
      // All children done: run the DP at this node.
      ResultList mine;
      CompatibleTwigNodes(frame.node, &compatible);
      for (TwigNodeId q : compatible) {
        const double occ =
            EmbeddingsAt(q, frame.node, frame.child_results,
                         frame.child_totals);
        if (occ == 0.0) continue;
        mine.emplace_back(q, occ);
        if (q == twig_.root()) {
          counts->presence += 1;
          counts->occurrence += occ;
        }
      }
      ResultList totals;
      if (has_descendants_) {
        // Inclusive subtree totals, kept sparse over the descendant
        // targets only so chains carry O(twig) state per level.
        for (const auto& [q, v] : mine) {
          if (desc_target_[q]) AddEntry(&totals, q, v);
        }
        for (const ResultList& ct : frame.child_totals) {
          for (const auto& [q, v] : ct) AddEntry(&totals, q, v);
        }
      }
      const size_t slot = frame.parent_slot;
      stack.pop_back();
      if (stack.empty()) break;
      Frame& parent = stack.back();
      parent.child_results[slot] = std::move(mine);
      if (has_descendants_) parent.child_totals[slot] = std::move(totals);
    }
  }

  const Tree& data_;
  const Twig& twig_;
  const MatchOptions& options_;
  std::vector<std::vector<TwigNodeId>> by_label_;
  std::vector<TwigNodeId> wildcards_;
  std::vector<unsigned char> desc_target_;
  bool has_descendants_ = false;
};

}  // namespace

Result<TwigCounts> CountTwigMatches(const Tree& data, const Twig& twig,
                                    const MatchOptions& options) {
  for (TwigNodeId q = 0; q < twig.size(); ++q) {
    if (twig.IsValue(q)) continue;
    const size_t fanout = twig.Children(q).size();
    if (fanout > kMaxTwigFanOut) {
      return Status::InvalidArgument(
          "twig node fan-out " + std::to_string(fanout) +
          " exceeds the subset-DP width (" + std::to_string(kMaxTwigFanOut) +
          ")");
    }
  }
  Counter counter(data, twig, options);
  return counter.Count();
}

}  // namespace twig::match
