// Exact twig match counting (ground truth for the estimators).
//
// Implements Definitions 1-3 of the paper: a match is a 1-1 mapping
// from twig nodes to data nodes preserving labels and parent-child
// edges; matching is unordered. Because a twig is a tree, injectivity
// reduces to sibling-level injectivity: children of one twig node must
// map to *distinct* children of the image node. In the set version
// (distinct sibling labels) this is automatic; in the multiset version
// it makes occurrence counting a permanent computation over the
// child-compatibility matrix, which we evaluate with a subset DP (twig
// fan-out is small).
//
//  * presence count  = number of distinct data nodes at which the twig
//    is rooted (Definition 2),
//  * occurrence count = total number of mappings (Definition 3).
//
// Value-predicate leaves match data value nodes whose string has the
// predicate as a prefix (the semantics the CST encodes). The wildcard
// tag "*" matches any element label (paper Section 7 extension). An
// ordered-matching mode (document-order-preserving sibling mapping,
// the Section 2 example) is provided for the ordered/unordered gap
// ablation.
//
// Descendant edges (query::EdgeKind::kDescendant, the `a//b` syntax)
// use disjoint-subtree routing semantics: every child of a twig node q
// — child-edge or descendant-edge — is routed through a *distinct*
// data child of q's image, and a descendant-edge child may map to any
// node of its routed child's subtree (the routed child included).
// Routing through distinct children keeps sibling-level injectivity
// sufficient for global injectivity (the routed subtrees are
// disjoint), and for child-only twigs it reduces exactly to the
// paper's semantics, so all existing counts are unchanged.
//
// The data-tree walk is an explicit-stack post-order traversal, so
// arbitrarily deep data trees (chains of hundreds of thousands of
// nodes) cannot overflow the call stack.

#ifndef TWIG_MATCH_MATCHER_H_
#define TWIG_MATCH_MATCHER_H_

#include "query/twig.h"
#include "tree/tree.h"
#include "util/status.h"

namespace twig::match {

/// Exact match counts of a twig in a data tree.
struct TwigCounts {
  /// Number of distinct data nodes rooting at least one match.
  double presence = 0;
  /// Total number of matches (1-1 mappings).
  double occurrence = 0;
};

/// Options for exact counting.
struct MatchOptions {
  /// If true, sibling mappings must preserve document order (ordered
  /// twig matching); default is the paper's unordered semantics.
  bool ordered = false;
};

/// Maximum children per twig node the subset DP supports. The DP
/// allocates 2^fan-out state, so this is a hard width limit, checked
/// up front in all build modes (it used to be a debug-only assert,
/// leaving release builds open to shift UB at fan-out >= 64).
inline constexpr size_t kMaxTwigFanOut = 20;

/// Counts matches of `twig` in `data` exactly. Counts are exact as long
/// as they stay within double precision (< 2^53), which covers any
/// realistic data set. Returns InvalidArgument if any twig node has
/// more than kMaxTwigFanOut children (realistic twigs have <= 5).
Result<TwigCounts> CountTwigMatches(const tree::Tree& data,
                                    const query::Twig& twig,
                                    const MatchOptions& options = {});

}  // namespace twig::match

#endif  // TWIG_MATCH_MATCHER_H_
