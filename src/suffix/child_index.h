// Flat, cache-friendly child adjacency for the path suffix tree and
// the CST.
//
// Both trees previously resolved (node, symbol) -> child through one
// global std::unordered_map keyed by a packed 64-bit (node, symbol)
// pair. That map was the hot path of construction, LongestMatch, and
// every estimation algorithm, and the 22-bit symbol pack could alias
// keys for out-of-range symbols. The ChildIndex replaces it with the
// layout the tree-pattern-matching literature uses: one contiguous
// backing array of (symbol, child) entries, grouped per parent node,
// each group sorted by symbol and binary-searched on lookup. Lookups
// touch one offsets slot and one short sorted span — two cache lines
// for typical fan-outs — and symbols are compared at full 32-bit
// width, so no symbol value can alias another node's entries.
//
// The index is immutable: it is built once, after all nodes exist,
// from the nodes' (parent, symbol) fields.

#ifndef TWIG_SUFFIX_CHILD_INDEX_H_
#define TWIG_SUFFIX_CHILD_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "suffix/symbol.h"

namespace twig::suffix {

class ChildIndex {
 public:
  /// One child edge: `child` is reached from its parent along `symbol`.
  struct Entry {
    Symbol symbol = 0;
    uint32_t child = 0;
  };

  /// Returned by Find when `node` has no child along `symbol`. Equal to
  /// kNoPstNode / cst::kNoCstNode so callers can return it directly.
  static constexpr uint32_t kNotFound = 0xffffffffu;

  ChildIndex() = default;

  /// Builds the index for a tree of `node_count` nodes whose node 0 is
  /// the root. `parent_of(n)` / `symbol_of(n)` describe the edge into
  /// node n (n >= 1); parents must be < n (topological ID order) and
  /// (parent, symbol) pairs must be unique.
  template <typename ParentFn, typename SymbolFn>
  static ChildIndex Build(size_t node_count, ParentFn&& parent_of,
                          SymbolFn&& symbol_of) {
    ChildIndex index;
    if (node_count == 0) return index;
    index.offsets_.assign(node_count + 1, 0);
    // Counting sort by parent: count fan-outs, prefix-sum into offsets,
    // then place each edge at its parent's cursor.
    for (size_t n = 1; n < node_count; ++n) {
      ++index.offsets_[parent_of(n) + 1];
    }
    for (size_t n = 1; n <= node_count; ++n) {
      index.offsets_[n] += index.offsets_[n - 1];
    }
    index.entries_.resize(node_count - 1);
    std::vector<uint32_t> cursor(index.offsets_.begin(),
                                 index.offsets_.end() - 1);
    for (size_t n = 1; n < node_count; ++n) {
      index.entries_[cursor[parent_of(n)]++] =
          Entry{symbol_of(n), static_cast<uint32_t>(n)};
    }
    for (size_t n = 0; n < node_count; ++n) {
      std::sort(index.entries_.begin() + index.offsets_[n],
                index.entries_.begin() + index.offsets_[n + 1],
                [](const Entry& a, const Entry& b) {
                  return a.symbol < b.symbol;
                });
    }
    return index;
  }

  /// Child of `node` along `symbol`, or kNotFound. Symbols above
  /// kMaxSymbol (including the kUnknownSymbol sentinel) never match:
  /// entries are compared at full width, and Build rejects storing
  /// them, so the search simply finds nothing.
  uint32_t Find(uint32_t node, Symbol symbol) const {
    if (node + 1 >= offsets_.size()) return kNotFound;
    const Entry* first = entries_.data() + offsets_[node];
    const Entry* last = entries_.data() + offsets_[node + 1];
    while (first < last) {
      const Entry* mid = first + (last - first) / 2;
      if (mid->symbol < symbol) {
        first = mid + 1;
      } else if (symbol < mid->symbol) {
        last = mid;
      } else {
        return mid->child;
      }
    }
    return kNotFound;
  }

  /// All child edges of `node`, sorted by symbol.
  std::span<const Entry> Children(uint32_t node) const {
    return {entries_.data() + offsets_[node],
            entries_.data() + offsets_[node + 1]};
  }

  size_t node_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t entry_count() const { return entries_.size(); }

  /// Raw parts, for serialization. offsets() has node_count()+1 slots;
  /// offsets()[n]..offsets()[n+1] delimit node n's span in entries().
  std::span<const uint32_t> offsets() const { return offsets_; }
  std::span<const Entry> entries() const { return entries_; }

  /// Reassembles an index from serialized parts. Returns false (and
  /// leaves `out` empty) unless the parts are structurally valid:
  /// offsets monotone from 0 to entries.size() with node_count+1
  /// slots, every span strictly sorted by symbol, every symbol within
  /// kMaxSymbol, and every child a valid non-root node ID. Parent /
  /// symbol consistency against the node array is the caller's check.
  static bool FromParts(size_t node_count, std::vector<uint32_t> offsets,
                        std::vector<Entry> entries, ChildIndex* out) {
    *out = ChildIndex();
    if (offsets.size() != node_count + 1) return false;
    if (offsets.front() != 0 || offsets.back() != entries.size()) return false;
    // Validate the whole offsets array before touching entries: a span
    // bound is only known to be <= entries.size() once every later
    // offset has been seen to be non-decreasing too.
    for (size_t n = 0; n < node_count; ++n) {
      if (offsets[n] > offsets[n + 1]) return false;
    }
    for (size_t n = 0; n < node_count; ++n) {
      for (uint32_t e = offsets[n]; e < offsets[n + 1]; ++e) {
        if (e > offsets[n] && entries[e - 1].symbol >= entries[e].symbol) {
          return false;  // unsorted or duplicate symbol in span
        }
        if (entries[e].symbol > kMaxSymbol) return false;
        if (entries[e].child == 0 || entries[e].child >= node_count) {
          return false;
        }
      }
    }
    out->offsets_ = std::move(offsets);
    out->entries_ = std::move(entries);
    return true;
  }

 private:
  std::vector<uint32_t> offsets_;
  std::vector<Entry> entries_;
};

}  // namespace twig::suffix

#endif  // TWIG_SUFFIX_CHILD_INDEX_H_
