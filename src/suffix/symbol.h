// Trie symbols for the path suffix tree and the CST.
//
// A subpath (Section 3.1) is a sequence of symbols: non-leaf labels
// (tags) are atomic symbols, while leaf value strings contribute one
// symbol per character. This encoding is what makes "book.author",
// "author.Su" and "uciu" representable while "uthor.Suciu" (a tag
// split mid-name) is not.

#ifndef TWIG_SUFFIX_SYMBOL_H_
#define TWIG_SUFFIX_SYMBOL_H_

#include <cstdint>
#include <string>

#include "tree/label_table.h"

namespace twig::suffix {

/// A trie symbol: values 0..255 are characters of leaf value strings;
/// values >= 256 are 256 + LabelId for tag labels.
using Symbol = uint32_t;

inline constexpr Symbol kFirstTagSymbol = 256;

/// Symbols must fit in 22 bits so a (node, symbol) pair packs into a
/// 64-bit child-map key; this allows ~4M distinct tag labels.
inline constexpr Symbol kMaxSymbol = (1u << 22) - 1;

inline Symbol CharSymbol(char c) {
  return static_cast<Symbol>(static_cast<unsigned char>(c));
}

inline Symbol TagSymbol(tree::LabelId label) {
  return kFirstTagSymbol + label;
}

inline bool IsTagSymbol(Symbol s) { return s >= kFirstTagSymbol; }

inline tree::LabelId SymbolLabel(Symbol s) { return s - kFirstTagSymbol; }

inline char SymbolChar(Symbol s) { return static_cast<char>(s); }

/// Renders a symbol for diagnostics: the tag name via `labels`, or the
/// character.
std::string SymbolToString(Symbol s, const tree::LabelTable& labels);

}  // namespace twig::suffix

#endif  // TWIG_SUFFIX_SYMBOL_H_
