#include "suffix/path_suffix_tree.h"

#include <algorithm>

namespace twig::suffix {

std::string SymbolToString(Symbol s, const tree::LabelTable& labels) {
  if (IsTagSymbol(s)) return std::string(labels.Name(SymbolLabel(s)));
  return std::string(1, SymbolChar(s));
}

void PathSuffixTree::InsertPathSuffixes(const std::vector<Symbol>& symbols,
                                        uint32_t path_id, size_t max_nodes,
                                        BuildMap& build_map) {
  for (size_t start = 0; start < symbols.size(); ++start) {
    PstNodeId node = root();
    for (size_t i = start; i < symbols.size(); ++i) {
      const Symbol symbol = symbols[i];
      const uint64_t key = BuildKey(node, symbol);
      auto it = build_map.find(key);
      PstNodeId child;
      if (it != build_map.end()) {
        child = it->second;
      } else {
        if (max_nodes != 0 && nodes_.size() >= max_nodes) {
          truncated_ = true;
          break;  // stop extending this suffix
        }
        child = static_cast<PstNodeId>(nodes_.size());
        Node n;
        n.symbol = symbol;
        n.parent = node;
        n.depth = nodes_[node].depth + 1;
        n.starts_with_tag =
            (node == root()) ? IsTagSymbol(symbol) : nodes_[node].starts_with_tag;
        nodes_.push_back(n);
        build_map.emplace(key, child);
      }
      Node& c = nodes_[child];
      if (c.last_path != path_id) {
        c.last_path = path_id;
        ++c.pt;
      }
      node = child;
    }
  }
}

PathSuffixTree PathSuffixTree::Build(const tree::Tree& data,
                                     const PathSuffixTreeOptions& options) {
  PathSuffixTree pst;
  pst.nodes_.push_back(Node{});  // root: the empty subpath

  // DFS over the data tree maintaining the current tag-symbol stack;
  // each leaf terminates one root-to-leaf path. Child edges go into a
  // hash map only during construction (insertion is incremental); the
  // flat index that serves all post-build lookups is built once at the
  // end.
  BuildMap build_map;
  std::vector<Symbol> symbols;
  uint32_t path_id = 0;
  auto dfs = [&](auto&& self, tree::NodeId n) -> void {
    if (data.IsValue(n)) {
      const std::string_view value = data.Value(n);
      const size_t take = std::min(value.size(), options.max_value_chars);
      for (size_t i = 0; i < take; ++i) {
        symbols.push_back(CharSymbol(value[i]));
      }
      pst.InsertPathSuffixes(symbols, path_id++, options.max_nodes, build_map);
      symbols.resize(symbols.size() - take);
      return;
    }
    symbols.push_back(TagSymbol(data.Label(n)));
    if (data.Children(n).empty()) {
      // A childless element is itself a leaf of the data tree.
      pst.InsertPathSuffixes(symbols, path_id++, options.max_nodes, build_map);
    } else {
      for (tree::NodeId c : data.Children(n)) self(self, c);
    }
    symbols.pop_back();
  };
  if (!data.empty()) dfs(dfs, data.root());
  pst.total_paths_ = path_id;
  pst.child_index_ = ChildIndex::Build(
      pst.nodes_.size(), [&](size_t n) { return pst.nodes_[n].parent; },
      [&](size_t n) { return pst.nodes_[n].symbol; });
  return pst;
}

}  // namespace twig::suffix
