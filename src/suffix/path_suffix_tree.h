// The path suffix tree (Section 3.1, first construction stage).
//
// Contains every subpath of every root-to-leaf path of the data tree
// (tags atomic, leaf values character-wise, value portions reachable
// only as a prefix when tags precede them), with each node's *path
// appearance count* pt = number of root-to-leaf paths containing the
// subpath. pt is the pruning statistic: it is monotone (pt of any
// sub-subpath >= pt of the subpath), so threshold pruning keeps the
// CST closed under taking subpaths, which the maximal-overlap
// combination step relies on. Presence / occurrence counts and set-hash
// signatures are attached later, by Cst::Build, only for the retained
// nodes.

#ifndef TWIG_SUFFIX_PATH_SUFFIX_TREE_H_
#define TWIG_SUFFIX_PATH_SUFFIX_TREE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "suffix/child_index.h"
#include "suffix/symbol.h"
#include "tree/tree.h"

namespace twig::suffix {

/// Index of a node in the path suffix tree. Node 0 is the root (the
/// empty subpath).
using PstNodeId = uint32_t;

inline constexpr PstNodeId kNoPstNode = 0xffffffffu;

/// Options for path suffix tree construction.
struct PathSuffixTreeOptions {
  /// At most this many leading characters of each leaf value string are
  /// indexed. Caps the quadratic blow-up of character-level suffixes;
  /// queries use short (1-4 char) leaf predicates, so a modest cap
  /// loses nothing in practice.
  size_t max_value_chars = 8;
  /// Safety valve: once this many trie nodes exist, insertion stops
  /// creating new nodes (existing counts stay exact; subpaths first
  /// seen afterwards are missed). 0 disables the cap.
  size_t max_nodes = 0;
};

/// The unpruned (stage-one) path suffix tree over a data tree.
class PathSuffixTree {
 public:
  /// Builds the tree over all root-to-leaf paths of `data`.
  static PathSuffixTree Build(const tree::Tree& data,
                              const PathSuffixTreeOptions& options = {});

  size_t node_count() const { return nodes_.size(); }

  PstNodeId root() const { return 0; }

  /// Child of `node` along `symbol`, or kNoPstNode. Out-of-range
  /// symbols (> kMaxSymbol, including unknown-tag sentinels) never
  /// match any child.
  PstNodeId FindChild(PstNodeId node, Symbol symbol) const {
    if (symbol > kMaxSymbol) return kNoPstNode;
    return child_index_.Find(node, symbol);
  }

  /// Path appearance count of the node's subpath.
  uint32_t PathCount(PstNodeId node) const { return nodes_[node].pt; }

  /// True if the node's subpath begins with a tag symbol (i.e., is
  /// rooted at a non-leaf data node). Only such subpaths carry set-hash
  /// signatures in the CST (paper footnote 3).
  bool StartsWithTag(PstNodeId node) const {
    return nodes_[node].starts_with_tag;
  }

  Symbol GetSymbol(PstNodeId node) const { return nodes_[node].symbol; }
  PstNodeId Parent(PstNodeId node) const { return nodes_[node].parent; }
  uint32_t Depth(PstNodeId node) const { return nodes_[node].depth; }

  /// Total number of root-to-leaf paths inserted.
  uint32_t total_paths() const { return total_paths_; }

  /// True if the node cap was hit during construction (some infrequent
  /// subpaths are missing and their pt is not represented).
  bool truncated() const { return truncated_; }

 private:
  struct Node {
    Symbol symbol = 0;
    PstNodeId parent = kNoPstNode;
    uint32_t pt = 0;            // path appearance count
    uint32_t last_path = 0xffffffffu;  // dedup marker during build
    uint32_t depth = 0;
    bool starts_with_tag = false;
  };

  /// Construction-time child lookup: a full-width (node, symbol) pack,
  /// so no symbol value can alias another node's key. Dropped once the
  /// flat index is built.
  using BuildMap = std::unordered_map<uint64_t, PstNodeId>;
  static uint64_t BuildKey(PstNodeId node, Symbol symbol) {
    return (static_cast<uint64_t>(node) << 32) | symbol;
  }

  /// Inserts all suffixes of one root-to-leaf path given as symbols.
  void InsertPathSuffixes(const std::vector<Symbol>& symbols,
                          uint32_t path_id, size_t max_nodes,
                          BuildMap& build_map);

  std::vector<Node> nodes_;
  ChildIndex child_index_;
  uint32_t total_paths_ = 0;
  bool truncated_ = false;
};

}  // namespace twig::suffix

#endif  // TWIG_SUFFIX_PATH_SUFFIX_TREE_H_
