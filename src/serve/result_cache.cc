#include "serve/result_cache.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/metrics.h"
#include "util/hash.h"

namespace twig::serve {

uint64_t ResultCache::Key::IndexHash() const {
  // The fingerprint already encodes (text, algorithm, semantics);
  // folding the version in makes every published snapshot a disjoint
  // key space, which is the whole invalidation story. The dataset id
  // joins the mix because each dataset runs its own version sequence:
  // without it, "version 3 of dblp" and "version 3 of reuters" would
  // collide for the same canonical twig.
  uint64_t h = HashCombine(Mix64(snapshot_version), fingerprint);
  if (!dataset.empty()) h = HashCombine(h, HashBytes(dataset));
  return h;
}

ResultCache::Key ResultCache::MakeKey(uint64_t snapshot_version,
                                      core::Algorithm algorithm,
                                      core::CountSemantics semantics,
                                      const query::Twig& twig,
                                      std::string_view dataset) {
  return MakeKeyFromCanonical(
      snapshot_version, algorithm, semantics,
      core::CanonicalizeQuery(twig, algorithm, semantics), dataset);
}

ResultCache::Key ResultCache::MakeKeyFromCanonical(
    uint64_t snapshot_version, core::Algorithm algorithm,
    core::CountSemantics semantics, core::CanonicalQueryKey canonical,
    std::string_view dataset) {
  Key key;
  key.snapshot_version = snapshot_version;
  key.algorithm = algorithm;
  key.semantics = semantics;
  key.fingerprint = canonical.fingerprint;
  key.canonical_text = std::move(canonical.text);
  key.dataset = std::string(dataset);
  return key;
}

namespace {

bool SameKey(const ResultCache::Key& a, const ResultCache::Key& b) {
  return a.snapshot_version == b.snapshot_version &&
         a.algorithm == b.algorithm && a.semantics == b.semantics &&
         a.fingerprint == b.fingerprint &&
         a.canonical_text == b.canonical_text && a.dataset == b.dataset;
}

}  // namespace

ResultCache::ResultCache(const ResultCacheOptions& options) {
  const size_t entries = std::max<size_t>(1, options.max_entries);
  size_t shards = std::bit_ceil(std::max<size_t>(1, options.num_shards));
  // Never create a shard that cannot hold an entry.
  while (shards > 1 && entries / shards == 0) shards /= 2;
  shards_ = std::vector<Shard>(shards);
  shard_mask_ = shards - 1;
  per_shard_capacity_ = std::max<size_t>(1, entries / shards);
  capacity_ = per_shard_capacity_ * shards;
}

bool ResultCache::Lookup(const Key& key, CachedEstimate* out) {
  const uint64_t hash = key.IndexHash();
  Shard& shard = ShardFor(hash);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(hash);
    if (it != shard.index.end() && SameKey(it->second->key, key)) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->value;
      ++shard.hits;
      obs::CountEvent(obs::Counter::kServeCacheHits);
      return true;
    }
    ++shard.misses;
  }
  obs::CountEvent(obs::Counter::kServeCacheMisses);
  return false;
}

void ResultCache::Insert(const Key& key, const CachedEstimate& value) {
  const uint64_t hash = key.IndexHash();
  Shard& shard = ShardFor(hash);
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(hash);
    if (it != shard.index.end()) {
      // Refresh: concurrent workers that both missed insert the same
      // answer twice; an index-hash collision overwrites (Lookup's
      // exact compare makes the overwrite a plain miss, never a wrong
      // answer).
      it->second->key = key;
      it->second->value = value;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= per_shard_capacity_) {
      const Entry& victim = shard.lru.back();
      shard.index.erase(victim.key.IndexHash());
      shard.lru.pop_back();
      ++shard.evictions;
      evicted = true;
    }
    shard.lru.push_front(Entry{key, value});
    shard.index.emplace(hash, shard.lru.begin());
  }
  if (evicted) obs::CountEvent(obs::Counter::kServeCacheEvictions);
}

ResultCache::Stats ResultCache::stats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.entries += shard.lru.size();
  }
  return stats;
}

}  // namespace twig::serve
