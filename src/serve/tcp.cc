#include "serve/tcp.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/twig.h"
#include "util/failpoint.h"

namespace twig::serve {

namespace {

/// Sends the whole buffer plus the protocol's line terminator, riding
/// out EINTR and partial writes. MSG_NOSIGNAL: a peer that hung up
/// yields EPIPE, not SIGPIPE — a client closing mid-reply must never
/// kill the server.
bool SendLine(int fd, std::string line) {
  line.push_back('\n');
  // "tcp/write": a fired error tears this reply — a prefix goes out,
  // then the connection drops, exactly what a mid-reply network
  // failure looks like to the client.
  if (!util::FailpointCheck("tcp/write").ok()) {
    obs::CountEvent(obs::Counter::kFaultInjected);
    size_t sent = 0;
    const size_t torn = line.size() / 2;
    while (sent < torn) {
      const ssize_t n = send(fd, line.data() + sent, torn - sent,
                             MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    return false;
  }
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal mid-write: resume
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpFrontEnd::TcpFrontEnd(SnapshotCatalog* catalog, EstimateService* service,
                         const TcpOptions& options)
    : catalog_(catalog), service_(service), options_(options) {}

TcpFrontEnd::~TcpFrontEnd() { Stop(); }

Status TcpFrontEnd::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, SOMAXCONN) != 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) != 0) {
    const Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);

  const size_t n = std::max<size_t>(1, options_.num_connection_threads);
  handlers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    handlers_.emplace_back([this] { HandlerMain(); });
  }
  return Status::OK();
}

void TcpFrontEnd::HandlerMain() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EINVAL/EBADF after Stop shuts the listener down; any other
      // persistent accept failure also ends the handler.
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_requested_) {
        close(fd);
        return;
      }
      open_connections_.push_back(fd);
    }
    ServeConnection(fd);
    {
      // Deregister and close under one lock so Stop never shuts down a
      // descriptor number this close has already released for reuse.
      std::lock_guard<std::mutex> lock(mutex_);
      open_connections_.erase(std::remove(open_connections_.begin(),
                                          open_connections_.end(), fd),
                              open_connections_.end());
      close(fd);
    }
  }
}

void TcpFrontEnd::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;  // signal mid-read: resume
    if (n <= 0) return;  // EOF, error, or Stop's shutdown()
    // "tcp/read": a fired error drops the connection as if the read
    // side failed; whatever the client already sent is discarded.
    if (!util::FailpointCheck("tcp/read").ok()) {
      obs::CountEvent(obs::Counter::kFaultInjected);
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;
      if (line.empty()) continue;
      bool stop_after_reply = false;
      const bool sent = SendLine(fd, HandleLine(line, &stop_after_reply));
      // The shutdown op answers its client first, then flags the stop —
      // flagging earlier would race Stop()'s connection teardown against
      // the reply still sitting in this thread.
      if (stop_after_reply) {
        RequestStop();
        return;
      }
      if (!sent) return;
    }
    buffer.erase(0, start);
    if (buffer.size() > options_.max_line_bytes) {
      SendLine(fd, ErrorResponse(nullptr,
                                 Status::InvalidArgument(
                                     "request line exceeds max_line_bytes")));
      return;
    }
  }
}

std::string TcpFrontEnd::HandleLine(std::string_view line,
                                    bool* stop_after_reply) {
  Result<WireRequest> parsed = ParseRequest(line);
  if (!parsed.ok()) return ErrorResponse(nullptr, parsed.status());
  const WireRequest& request = parsed.value();

  if (request.op == "ping") {
    return PingResponse(request, catalog_->version(), service_->queue_depth());
  }
  if (request.op == "estimate") return HandleEstimate(request);
  if (request.op == "explain") return HandleExplain(request);
  if (request.op == "metrics") return HandleMetrics(request);
  if (request.op == "stats") return HandleStats(request);
  if (request.op == "recent") return HandleRecent(request);
  if (request.op == "swap") return HandleSwap(request);
  if (request.op == "health") return HandleHealth(request);
  if (request.op == "failpoint") return HandleFailpoint(request);
  if (request.op == "shutdown") {
    *stop_after_reply = true;
    return ShutdownResponse(request);
  }
  return ErrorResponse(&request, Status::InvalidArgument(
                                     "unknown op '" + request.op + "'"));
}

std::string TcpFrontEnd::HandleEstimate(const WireRequest& request) {
  if (request.query.empty()) {
    return ErrorResponse(&request,
                         Status::InvalidArgument("estimate needs a query"));
  }
  Result<query::Twig> twig = query::ParseTwig(request.query);
  if (!twig.ok()) return ErrorResponse(&request, twig.status());

  EstimateRequest estimate;
  estimate.twig = std::move(twig).value();
  estimate.algorithm = request.algorithm;
  estimate.semantics = request.semantics;
  if (request.deadline_ms > 0) {
    estimate.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(request.deadline_ms));
  }
  return EstimateWireResponse(request, service_->SubmitAndWait(
                                           std::move(estimate)));
}

std::string TcpFrontEnd::HandleExplain(const WireRequest& request) {
  if (request.query.empty()) {
    return ErrorResponse(&request,
                         Status::InvalidArgument("explain needs a query"));
  }
  Result<query::Twig> twig = query::ParseTwig(request.query);
  if (!twig.ok()) return ErrorResponse(&request, twig.status());
  const std::shared_ptr<const CstSnapshot> snapshot = catalog_->Current();
  if (snapshot == nullptr) {
    return ErrorResponse(&request,
                         Status::Unavailable("no snapshot published yet"));
  }
  // Traces are single-query sinks, so explain runs on the handler
  // thread with a local trace instead of going through the service.
  obs::Trace trace;
  core::EstimateOptions eopt;
  eopt.semantics = request.semantics;
  eopt.trace = &trace;
  const core::TwigEstimator estimator(snapshot->summary.get());
  const Result<double> estimate =
      estimator.TryEstimate(twig.value(), request.algorithm, eopt);
  if (!estimate.ok()) return ErrorResponse(&request, estimate.status());
  return ExplainResponse(request, trace.ToJson(), snapshot->version);
}

std::string TcpFrontEnd::HandleMetrics(const WireRequest& request) {
  return MetricsResponse(request,
                         obs::MetricsRegistry::Get().Snapshot().ToJson(),
                         catalog_->version(), service_->queue_depth(),
                         service_->queue_capacity());
}

std::string TcpFrontEnd::HandleStats(const WireRequest& request) {
  return StatsResponse(request, obs::MetricsRegistry::Get().Snapshot(),
                       service_->recorder(), catalog_->version(),
                       service_->queue_depth(), service_->queue_capacity());
}

std::string TcpFrontEnd::HandleRecent(const WireRequest& request) {
  return RecentResponse(request, service_->recorder(), catalog_->version());
}

std::string TcpFrontEnd::HandleSwap(const WireRequest& request) {
  if (!options_.rebuild && !options_.rebuild_view) {
    return ErrorResponse(
        &request, Status::Unimplemented("server has no rebuild source"));
  }
  const double space = request.space;
  const bool begun =
      options_.rebuild_view
          ? catalog_->BeginRebuild(
                SnapshotCatalog::ViewBuilder(
                    [rebuild = options_.rebuild_view, space] {
                      return rebuild(space);
                    }),
                "swap request", options_.rebuild_data)
          : catalog_->BeginRebuild(
                SnapshotCatalog::Builder(
                    [rebuild = options_.rebuild, space] {
                      return rebuild(space);
                    }),
                "swap request", options_.rebuild_data);
  if (!begun) {
    return ErrorResponse(&request,
                         Status::Unavailable("rebuild already in flight"));
  }
  const Status status = catalog_->WaitForRebuild();
  if (!status.ok()) return ErrorResponse(&request, status);
  return SwapResponse(request, catalog_->version());
}

std::string TcpFrontEnd::HandleHealth(const WireRequest& request) {
  // Re-run the brown-out transition against the live queue so the verb
  // reports (and advances) the same state admission would see.
  service_->health().Assess(service_->queue_depth(),
                            service_->queue_capacity());
  return HealthResponse(request, service_->health().Report(),
                        catalog_->version());
}

std::string TcpFrontEnd::HandleFailpoint(const WireRequest& request) {
  if (!request.spec.empty()) {
    const Status status =
        util::FailpointRegistry::Get().ConfigureList(request.spec);
    if (!status.ok()) return ErrorResponse(&request, status);
  }
  return FailpointResponse(request,
                           util::FailpointRegistry::Get().Snapshot());
}

void TcpFrontEnd::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void TcpFrontEnd::WaitForShutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_cv_.wait(lock, [&] { return stop_requested_; });
  }
  Stop();
}

void TcpFrontEnd::Stop() {
  RequestStop();
  std::lock_guard<std::mutex> teardown(teardown_mutex_);
  if (stopped_) return;
  stopped_ = true;
  // shutdown() (not close) unblocks threads inside accept/recv; the
  // handlers own the close of their connection fds, and listen_fd_ is
  // closed here after the joins so its descriptor number cannot be
  // recycled under a handler still entering accept. Connection fds are
  // shut down while holding mutex_: a handler removes its fd from
  // open_connections_ and closes it under the same lock, so a shutdown
  // here can never land on a recycled descriptor number.
  if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int fd : open_connections_) shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  handlers_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace twig::serve
