#include "serve/tcp.h"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <future>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/twig.h"
#include "util/failpoint.h"

namespace twig::serve {

namespace {

/// epoll_event user-data tags for the two non-connection fds; Conn
/// pointers are always aligned, so low small integers cannot collide.
constexpr uint64_t kListenerTag = 1;
constexpr uint64_t kWakeTag = 2;

/// Best-effort nonblocking send of `data`, for the torn-reply
/// failpoint: whatever the kernel takes goes out, then the caller
/// drops the connection.
void SendBestEffort(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

/// One reply slot. Every request line gets exactly one, in arrival
/// order; a connection's replies are released strictly front-to-back,
/// so pipelined bursts answer in request order regardless of how the
/// service schedules the work.
struct ReplySlot {
  /// True once `text` holds the rendered reply line (sans newline).
  bool ready = false;
  std::string text;
  /// The estimate future and its request, for slots answered by the
  /// service off-thread.
  std::future<EstimateResponse> future;
  WireRequest request;
};

struct TcpFrontEnd::Conn {
  int fd = -1;
  /// Read side: bytes [in_start, in.size()) are unconsumed. Offset
  /// consume with amortized compaction — the old erase-per-recv
  /// re-copied the tail once per chunk, quadratic over a pipelined
  /// burst.
  std::string in;
  size_t in_start = 0;
  /// Write side: bytes [out_start, out.size()) await the socket.
  std::string out;
  size_t out_start = 0;
  std::deque<ReplySlot> slots;
  /// Slots whose future is not yet ready.
  size_t pending_futures = 0;
  /// Registered in Worker::pending (has unfinished futures).
  bool in_pending = false;
  /// EPOLLOUT armed (the socket refused part of the backlog).
  bool want_write = false;
  /// Close once every slot has drained and the backlog is flushed.
  bool close_after_flush = false;
  /// close_after_flush, plus flag the server stop once flushed (the
  /// shutdown op answers its client before the teardown begins).
  bool stop_after_flush = false;
  /// Closed mid-iteration; skip any further events this pass.
  bool dead = false;
};

struct TcpFrontEnd::Worker {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  /// Connections with unfinished estimate futures, polled between
  /// epoll waits.
  std::vector<Conn*> pending;
  /// Closed-this-iteration connections, freed at a safe point.
  std::vector<std::unique_ptr<Conn>> graveyard;

  ~Worker() {
    if (epoll_fd >= 0) close(epoll_fd);
    if (wake_fd >= 0) close(wake_fd);
  }
};

TcpFrontEnd::TcpFrontEnd(SnapshotCatalog* catalog, EstimateService* service,
                         const TcpOptions& options)
    : owned_datasets_(std::make_unique<DatasetCatalog>()),
      datasets_(owned_datasets_.get()),
      service_(service),
      options_(options) {
  owned_datasets_->Register(kDefaultDataset, catalog);
  rebuilds_ = options_.dataset_rebuilds;
  if (rebuilds_.find(kDefaultDataset) == rebuilds_.end()) {
    RebuildSource source;
    source.rebuild = options_.rebuild;
    source.rebuild_view = options_.rebuild_view;
    source.rebuild_data = options_.rebuild_data;
    rebuilds_.emplace(kDefaultDataset, std::move(source));
  }
}

TcpFrontEnd::TcpFrontEnd(DatasetCatalog* datasets, EstimateService* service,
                         const TcpOptions& options)
    : datasets_(datasets), service_(service), options_(options) {
  rebuilds_ = options_.dataset_rebuilds;
  if (rebuilds_.find(kDefaultDataset) == rebuilds_.end()) {
    RebuildSource source;
    source.rebuild = options_.rebuild;
    source.rebuild_view = options_.rebuild_view;
    source.rebuild_data = options_.rebuild_data;
    rebuilds_.emplace(kDefaultDataset, std::move(source));
  }
}

TcpFrontEnd::~TcpFrontEnd() { Stop(); }

Status TcpFrontEnd::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, SOMAXCONN) != 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) != 0) {
    const Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);

  const size_t n = std::max<size_t>(1, options_.num_connection_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = epoll_create1(0);
    worker->wake_fd =
        worker->epoll_fd < 0 ? -1 : eventfd(0, EFD_NONBLOCK);
    if (worker->epoll_fd < 0 || worker->wake_fd < 0) {
      const Status status = Status::Internal(
          std::string("epoll setup: ") + std::strerror(errno));
      workers_.clear();
      close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    epoll_event listen_ev{};
    // Every worker polls the shared listener; EPOLLEXCLUSIVE (where
    // the kernel has it) wakes one worker per connection instead of
    // the whole pool.
    listen_ev.events = EPOLLIN;
#ifdef EPOLLEXCLUSIVE
    listen_ev.events |= EPOLLEXCLUSIVE;
#endif
    listen_ev.data.u64 = kListenerTag;
    epoll_event wake_ev{};
    wake_ev.events = EPOLLIN;
    wake_ev.data.u64 = kWakeTag;
    if (epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, listen_fd_,
                  &listen_ev) != 0 ||
        epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->wake_fd,
                  &wake_ev) != 0) {
      const Status status = Status::Internal(
          std::string("epoll_ctl: ") + std::strerror(errno));
      workers_.clear();
      close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    workers_.push_back(std::move(worker));
  }
  worker_threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    worker_threads_.emplace_back(
        [this, worker = workers_[i].get()] { WorkerMain(*worker); });
  }
  return Status::OK();
}

void TcpFrontEnd::WorkerMain(Worker& worker) {
  std::array<epoll_event, 64> events;
  // Futures have no fd to wait on, so while any are outstanding the
  // loop polls: spin (timeout 0) briefly for microsecond estimates,
  // then degrade to 1 ms ticks so a stalled worker does not burn a
  // core for the duration of a chaos delay.
  int fruitless_polls = 0;
  while (!shutting_down_.load(std::memory_order_acquire)) {
    int timeout = -1;
    if (!worker.pending.empty()) timeout = fruitless_polls < 256 ? 0 : 1;
    const int n =
        epoll_wait(worker.epoll_fd, events.data(),
                   static_cast<int>(events.size()), timeout);
    if (shutting_down_.load(std::memory_order_acquire)) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& event = events[static_cast<size_t>(i)];
      if (event.data.u64 == kListenerTag) {
        AcceptBurst(worker);
        continue;
      }
      if (event.data.u64 == kWakeTag) {
        uint64_t drained;
        while (read(worker.wake_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      Conn& conn = *static_cast<Conn*>(event.data.ptr);
      if (conn.dead) continue;
      bool alive = true;
      if ((event.events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        alive = ReadConn(worker, conn);
      }
      if (alive) alive = PumpConn(worker, conn);
      if (!alive) CloseConn(worker, conn);
    }
    // Poll connections with outstanding futures; release whatever
    // completed, in request order per connection.
    bool progressed = false;
    for (size_t i = 0; i < worker.pending.size();) {
      Conn* conn = worker.pending[i];
      if (conn->dead) {
        worker.pending[i] = worker.pending.back();
        worker.pending.pop_back();
        continue;
      }
      const size_t before = conn->pending_futures;
      if (!PumpConn(worker, *conn)) {
        CloseConn(worker, *conn);
        worker.pending[i] = worker.pending.back();
        worker.pending.pop_back();
        continue;
      }
      if (conn->pending_futures < before) progressed = true;
      if (conn->pending_futures == 0) {
        conn->in_pending = false;
        worker.pending[i] = worker.pending.back();
        worker.pending.pop_back();
        continue;
      }
      ++i;
    }
    fruitless_polls = (progressed || n > 0) ? 0 : fruitless_polls + 1;
    worker.graveyard.clear();
  }
  // Shutdown: this worker owns its connections; closing them here
  // unblocks any client still reading.
  for (auto& [fd, conn] : worker.conns) close(fd);
  worker.conns.clear();
  worker.pending.clear();
  worker.graveyard.clear();
}

void TcpFrontEnd::AcceptBurst(Worker& worker) {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd >= 0) {
      if (shutting_down_.load(std::memory_order_acquire)) {
        close(fd);
        return;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      if (epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        close(fd);
        continue;
      }
      worker.conns.emplace(fd, std::move(conn));
      continue;
    }
    const int err = errno;
    if (err == EAGAIN || err == EWOULDBLOCK) return;  // backlog drained
    if (err == EINTR || err == ECONNABORTED) {
      // A signal, or the peer hung up while queued: the next accept
      // may well succeed — retrying immediately is the whole fix for
      // the old accept-loop death (any non-EINTR failure used to kill
      // the handler thread for good).
      obs::CountEvent(obs::Counter::kServeAcceptRetries);
      continue;
    }
    if (err == EMFILE || err == ENFILE || err == ENOMEM) {
      // Resource exhaustion is transient — some connection will close
      // and release a descriptor. Back off briefly and yield; the
      // level-triggered listener stays readable, so epoll re-reports
      // it and the loop retries until the pressure clears.
      obs::CountEvent(obs::Counter::kServeAcceptRetries);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return;
    }
    // EBADF/EINVAL after Stop shut the listener down, or a genuinely
    // fatal condition: stop accepting (open connections keep serving).
    return;
  }
}

bool TcpFrontEnd::ReadConn(Worker& worker, Conn& conn) {
  char chunk[16384];
  for (;;) {
    const ssize_t n = recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;  // signal mid-read: resume
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n <= 0) {
      // EOF or a hard error. The peer may have sent requests and
      // half-closed; anything already buffered still answers below
      // only if a reply is owed — matching the old behavior (drop), we
      // close unless replies are pending flush.
      return false;
    }
    // "tcp/read": a fired error drops the connection as if the read
    // side failed; whatever the client already sent is discarded.
    if (!util::FailpointCheck("tcp/read").ok()) {
      obs::CountEvent(obs::Counter::kFaultInjected);
      return false;
    }
    conn.in.append(chunk, static_cast<size_t>(n));
    // A short read usually means the socket is drained; if not, the
    // level-triggered epoll reports it again next pass.
    if (static_cast<size_t>(n) < sizeof(chunk)) break;
  }
  while (!conn.close_after_flush) {
    const size_t nl = conn.in.find('\n', conn.in_start);
    if (nl == std::string::npos) break;
    std::string_view line(conn.in.data() + conn.in_start,
                          nl - conn.in_start);
    conn.in_start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    if (line.size() > options_.max_line_bytes) {
      ReplySlot slot;
      slot.ready = true;
      slot.text = ErrorResponse(
          nullptr,
          Status::InvalidArgument("request line exceeds max_line_bytes"));
      conn.slots.push_back(std::move(slot));
      conn.close_after_flush = true;
      break;
    }
    DispatchLine(worker, conn, line);
  }
  // Amortized compaction: drop the consumed prefix only when it is
  // the whole buffer (free) or at least half of a nontrivial one, so
  // each byte is copied O(1) times however the burst is chunked.
  if (conn.in_start == conn.in.size()) {
    conn.in.clear();
    conn.in_start = 0;
  } else if (conn.in_start >= 4096 && conn.in_start >= conn.in.size() / 2) {
    conn.in.erase(0, conn.in_start);
    conn.in_start = 0;
  }
  if (conn.in.size() - conn.in_start > options_.max_line_bytes) {
    ReplySlot slot;
    slot.ready = true;
    slot.text = ErrorResponse(
        nullptr,
        Status::InvalidArgument("request line exceeds max_line_bytes"));
    conn.slots.push_back(std::move(slot));
    conn.close_after_flush = true;
  }
  return true;
}

void TcpFrontEnd::DispatchLine(Worker& worker, Conn& conn,
                               std::string_view line) {
  ReplySlot slot;
  Result<WireRequest> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    slot.ready = true;
    slot.text = ErrorResponse(nullptr, parsed.status());
    conn.slots.push_back(std::move(slot));
    return;
  }
  WireRequest& request = parsed.value();

  if (request.op == "estimate") {
    if (request.query.empty()) {
      slot.ready = true;
      slot.text = ErrorResponse(
          &request, Status::InvalidArgument("estimate needs a query"));
      conn.slots.push_back(std::move(slot));
      return;
    }
    Result<query::Twig> twig = query::ParseTwig(request.query);
    if (!twig.ok()) {
      slot.ready = true;
      slot.text = ErrorResponse(&request, twig.status());
      conn.slots.push_back(std::move(slot));
      return;
    }
    EstimateRequest estimate;
    estimate.twig = std::move(twig).value();
    estimate.algorithm = request.algorithm;
    estimate.semantics = request.semantics;
    estimate.dataset = request.dataset;
    estimate.tenant = request.tenant;
    if (request.deadline_ms > 0) {
      estimate.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(request.deadline_ms));
    }
    // Asynchronous: the worker never blocks on the service, so queued
    // estimates (anyone's, notably a flooded tenant's) cannot stall
    // the other connections this loop owns.
    slot.request = std::move(request);
    slot.future = service_->Submit(std::move(estimate));
    conn.slots.push_back(std::move(slot));
    ++conn.pending_futures;
    if (!conn.in_pending) {
      conn.in_pending = true;
      worker.pending.push_back(&conn);
    }
    return;
  }

  bool stop_after_reply = false;
  slot.ready = true;
  if (request.op == "ping") {
    const SnapshotCatalog* catalog = CatalogFor(request.dataset);
    slot.text = catalog == nullptr
                    ? ErrorResponse(&request,
                                    Status::InvalidArgument(
                                        "unknown dataset '" +
                                        request.dataset + "'"))
                    : PingResponse(request, catalog->version(),
                                   service_->queue_depth());
  } else if (request.op == "explain") {
    slot.text = HandleExplain(request);
  } else if (request.op == "metrics") {
    slot.text = HandleMetrics(request);
  } else if (request.op == "stats") {
    slot.text = HandleStats(request);
  } else if (request.op == "recent") {
    slot.text = HandleRecent(request);
  } else if (request.op == "swap") {
    slot.text = HandleSwap(request);
  } else if (request.op == "health") {
    slot.text = HandleHealth(request);
  } else if (request.op == "failpoint") {
    slot.text = HandleFailpoint(request);
  } else if (request.op == "shutdown") {
    stop_after_reply = true;
    slot.text = ShutdownResponse(request);
  } else {
    slot.text = ErrorResponse(
        &request,
        Status::InvalidArgument("unknown op '" + request.op + "'"));
  }
  conn.slots.push_back(std::move(slot));
  if (stop_after_reply) {
    // The shutdown op answers its client first, then flags the stop —
    // the flag is raised by PumpConn only after the reply is flushed,
    // so the response can never race the teardown.
    conn.stop_after_flush = true;
    conn.close_after_flush = true;
  }
}

bool TcpFrontEnd::PumpConn(Worker& worker, Conn& conn) {
  (void)worker;
  while (!conn.slots.empty()) {
    ReplySlot& slot = conn.slots.front();
    if (!slot.ready) {
      if (slot.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        break;  // replies release strictly in request order
      }
      slot.text = EstimateWireResponse(slot.request, slot.future.get());
      slot.ready = true;
      --conn.pending_futures;
    }
    // "tcp/write": a fired error tears this reply — a prefix goes
    // out after the flushed backlog, then the connection drops,
    // exactly what a mid-reply network failure looks like.
    if (!util::FailpointCheck("tcp/write").ok()) {
      obs::CountEvent(obs::Counter::kFaultInjected);
      std::string torn = conn.out.substr(conn.out_start);
      torn.append(slot.text, 0, (slot.text.size() + 1) / 2);
      SendBestEffort(conn.fd, torn);
      return false;
    }
    conn.out += slot.text;
    conn.out.push_back('\n');
    conn.slots.pop_front();
  }
  if (!FlushConn(worker, conn)) return false;
  const bool flushed = conn.out_start >= conn.out.size();
  if (flushed && conn.slots.empty() && conn.close_after_flush) {
    if (conn.stop_after_flush) RequestStop();
    return false;
  }
  return true;
}

bool TcpFrontEnd::FlushConn(Worker& worker, Conn& conn) {
  while (conn.out_start < conn.out.size()) {
    const ssize_t n = send(conn.fd, conn.out.data() + conn.out_start,
                           conn.out.size() - conn.out_start, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal mid-write: resume
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.ptr = &conn;
        epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
      }
      return true;  // EPOLLOUT resumes the flush
    }
    if (n <= 0) return false;  // peer went away mid-reply
    conn.out_start += static_cast<size_t>(n);
  }
  conn.out.clear();
  conn.out_start = 0;
  if (conn.want_write) {
    conn.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &conn;
    epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  }
  return true;
}

void TcpFrontEnd::CloseConn(Worker& worker, Conn& conn) {
  if (conn.dead) return;
  conn.dead = true;
  epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
  close(conn.fd);
  auto it = worker.conns.find(conn.fd);
  if (it != worker.conns.end()) {
    // Defer the free: the current epoll batch (or the pending sweep)
    // may still hold this pointer; the graveyard clears at the end of
    // the loop iteration.
    worker.graveyard.push_back(std::move(it->second));
    worker.conns.erase(it);
  }
}

SnapshotCatalog* TcpFrontEnd::CatalogFor(std::string_view dataset) const {
  return datasets_->Find(dataset);
}

const RebuildSource& TcpFrontEnd::RebuildFor(std::string_view dataset) const {
  static const RebuildSource kNone;
  auto it = rebuilds_.find(std::string(ResolveDatasetId(dataset)));
  return it == rebuilds_.end() ? kNone : it->second;
}

std::string TcpFrontEnd::HandleExplain(const WireRequest& request) {
  if (request.query.empty()) {
    return ErrorResponse(&request,
                         Status::InvalidArgument("explain needs a query"));
  }
  Result<query::Twig> twig = query::ParseTwig(request.query);
  if (!twig.ok()) return ErrorResponse(&request, twig.status());
  const SnapshotCatalog* catalog = CatalogFor(request.dataset);
  if (catalog == nullptr) {
    return ErrorResponse(&request,
                         Status::InvalidArgument("unknown dataset '" +
                                                 request.dataset + "'"));
  }
  const std::shared_ptr<const CstSnapshot> snapshot = catalog->Current();
  if (snapshot == nullptr) {
    return ErrorResponse(&request,
                         Status::Unavailable("no snapshot published yet"));
  }
  // Traces are single-query sinks, so explain runs on the worker
  // thread with a local trace instead of going through the service.
  obs::Trace trace;
  core::EstimateOptions eopt;
  eopt.semantics = request.semantics;
  eopt.trace = &trace;
  const core::TwigEstimator estimator(snapshot->summary.get());
  const Result<double> estimate =
      estimator.TryEstimate(twig.value(), request.algorithm, eopt);
  if (!estimate.ok()) return ErrorResponse(&request, estimate.status());
  return ExplainResponse(request, trace.ToJson(), snapshot->version);
}

std::string TcpFrontEnd::HandleMetrics(const WireRequest& request) {
  const SnapshotCatalog* catalog = CatalogFor(request.dataset);
  if (catalog == nullptr) {
    return ErrorResponse(&request,
                         Status::InvalidArgument("unknown dataset '" +
                                                 request.dataset + "'"));
  }
  return MetricsResponse(request,
                         obs::MetricsRegistry::Get().Snapshot().ToJson(),
                         catalog->version(), service_->queue_depth(),
                         service_->queue_capacity());
}

std::string TcpFrontEnd::HandleStats(const WireRequest& request) {
  const SnapshotCatalog* catalog = CatalogFor(request.dataset);
  if (catalog == nullptr) {
    return ErrorResponse(&request,
                         Status::InvalidArgument("unknown dataset '" +
                                                 request.dataset + "'"));
  }
  std::vector<DatasetWireInfo> datasets;
  for (const std::string& id : datasets_->DatasetIds()) {
    DatasetWireInfo info;
    info.dataset = id;
    info.version = datasets_->Find(id)->version();
    datasets.push_back(std::move(info));
  }
  return StatsResponse(request, obs::MetricsRegistry::Get().Snapshot(),
                       service_->recorder(), catalog->version(),
                       service_->queue_depth(), service_->queue_capacity(),
                       datasets, service_->tenant_stats());
}

std::string TcpFrontEnd::HandleRecent(const WireRequest& request) {
  const SnapshotCatalog* catalog = CatalogFor(request.dataset);
  if (catalog == nullptr) {
    return ErrorResponse(&request,
                         Status::InvalidArgument("unknown dataset '" +
                                                 request.dataset + "'"));
  }
  return RecentResponse(request, service_->recorder(), catalog->version());
}

std::string TcpFrontEnd::HandleSwap(const WireRequest& request) {
  SnapshotCatalog* catalog = CatalogFor(request.dataset);
  if (catalog == nullptr) {
    return ErrorResponse(&request,
                         Status::InvalidArgument("unknown dataset '" +
                                                 request.dataset + "'"));
  }
  const RebuildSource& source = RebuildFor(request.dataset);
  if (source.empty()) {
    return ErrorResponse(
        &request, Status::Unimplemented("server has no rebuild source"));
  }
  const double space = request.space;
  const bool begun =
      source.rebuild_view
          ? catalog->BeginRebuild(
                SnapshotCatalog::ViewBuilder(
                    [rebuild = source.rebuild_view, space] {
                      return rebuild(space);
                    }),
                "swap request", source.rebuild_data)
          : catalog->BeginRebuild(
                SnapshotCatalog::Builder(
                    [rebuild = source.rebuild, space] {
                      return rebuild(space);
                    }),
                "swap request", source.rebuild_data);
  if (!begun) {
    return ErrorResponse(&request,
                         Status::Unavailable("rebuild already in flight"));
  }
  const Status status = catalog->WaitForRebuild();
  if (!status.ok()) return ErrorResponse(&request, status);
  return SwapResponse(request, catalog->version());
}

std::string TcpFrontEnd::HandleHealth(const WireRequest& request) {
  const SnapshotCatalog* catalog = CatalogFor(request.dataset);
  if (catalog == nullptr) {
    return ErrorResponse(&request,
                         Status::InvalidArgument("unknown dataset '" +
                                                 request.dataset + "'"));
  }
  // Re-run the brown-out transition against the live queue so the verb
  // reports (and advances) the same state admission would see.
  service_->health().Assess(service_->queue_depth(),
                            service_->queue_capacity());
  return HealthResponse(request, service_->health().Report(),
                        catalog->version());
}

std::string TcpFrontEnd::HandleFailpoint(const WireRequest& request) {
  if (!request.spec.empty()) {
    const Status status =
        util::FailpointRegistry::Get().ConfigureList(request.spec);
    if (!status.ok()) return ErrorResponse(&request, status);
  }
  return FailpointResponse(request,
                           util::FailpointRegistry::Get().Snapshot());
}

void TcpFrontEnd::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void TcpFrontEnd::WaitForShutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_cv_.wait(lock, [&] { return stop_requested_; });
  }
  Stop();
}

void TcpFrontEnd::Stop() {
  RequestStop();
  std::lock_guard<std::mutex> teardown(teardown_mutex_);
  if (stopped_) return;
  stopped_ = true;
  // Raise the flag first, then wake every worker through its eventfd;
  // each worker re-checks the flag after epoll_wait, closes the
  // connections it owns, and exits. The listener is closed only after
  // the joins, so its descriptor number cannot be recycled under a
  // worker still inside accept4.
  shutting_down_.store(true, std::memory_order_release);
  for (const std::unique_ptr<Worker>& worker : workers_) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t written =
        write(worker->wake_fd, &one, sizeof(one));
  }
  for (std::thread& thread : worker_threads_) {
    if (thread.joinable()) thread.join();
  }
  worker_threads_.clear();
  workers_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace twig::serve
