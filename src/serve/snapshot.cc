#include "serve/snapshot.h"

#include <chrono>

#include "obs/metrics.h"

namespace twig::serve {

SnapshotCatalog::~SnapshotCatalog() { WaitForRebuild(); }

std::shared_ptr<const CstSnapshot> SnapshotCatalog::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

uint64_t SnapshotCatalog::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_ == nullptr ? 0 : current_->version;
}

uint64_t SnapshotCatalog::Publish(cst::Cst summary, std::string source,
                                  double build_seconds,
                                  std::shared_ptr<const tree::Tree> data) {
  // Assemble the snapshot outside the lock; the swap itself is two
  // pointer writes.
  auto snapshot = std::make_shared<CstSnapshot>();
  snapshot->source = std::move(source);
  snapshot->build_seconds = build_seconds;
  snapshot->summary = std::move(summary);
  snapshot->data = std::move(data);
  uint64_t version;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    version = next_version_++;
    snapshot->version = version;
    current_ = std::move(snapshot);
  }
  obs::CountEvent(obs::Counter::kSnapshotPublishes);
  return version;
}

void SnapshotCatalog::RebuildMain(Builder builder, std::string source,
                                  std::shared_ptr<const tree::Tree> data) {
  const auto t0 = std::chrono::steady_clock::now();
  Result<cst::Cst> built = builder();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (built.ok()) {
    Publish(std::move(built).value(), std::move(source), seconds,
            std::move(data));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_rebuild_status_ = built.ok() ? Status::OK() : built.status();
    rebuild_in_flight_ = false;
  }
  rebuild_done_.notify_all();
}

bool SnapshotCatalog::BeginRebuild(Builder builder, std::string source,
                                   std::shared_ptr<const tree::Tree> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (rebuild_in_flight_) return false;
  // A previous rebuild has finished: its thread is past any use of
  // this object (the in-flight flag is its final locked write), so
  // joining here is immediate.
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
  rebuild_in_flight_ = true;
  rebuild_thread_ = std::thread([this, builder = std::move(builder),
                                 source = std::move(source),
                                 data = std::move(data)]() mutable {
    RebuildMain(std::move(builder), std::move(source), std::move(data));
  });
  return true;
}

Status SnapshotCatalog::WaitForRebuild() {
  std::unique_lock<std::mutex> lock(mutex_);
  rebuild_done_.wait(lock, [&] { return !rebuild_in_flight_; });
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
  return last_rebuild_status_;
}

bool SnapshotCatalog::rebuild_in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rebuild_in_flight_;
}

}  // namespace twig::serve
