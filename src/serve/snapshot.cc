#include "serve/snapshot.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "util/failpoint.h"

namespace twig::serve {

SnapshotCatalog::~SnapshotCatalog() { WaitForRebuild(); }

std::shared_ptr<const CstSnapshot> SnapshotCatalog::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

uint64_t SnapshotCatalog::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_ == nullptr ? 0 : current_->version;
}

uint64_t SnapshotCatalog::Publish(cst::Cst summary, std::string source,
                                  double build_seconds,
                                  std::shared_ptr<const tree::Tree> data) {
  return Publish(std::shared_ptr<const cst::CstView>(
                     std::make_shared<cst::Cst>(std::move(summary))),
                 std::move(source), build_seconds, std::move(data));
}

uint64_t SnapshotCatalog::Publish(std::shared_ptr<const cst::CstView> summary,
                                  std::string source, double build_seconds,
                                  std::shared_ptr<const tree::Tree> data) {
  // Assemble the snapshot outside the lock; the swap itself is two
  // pointer writes.
  // "snapshot/publish" is a delay-only chaos seam: Publish cannot fail
  // (the CST is already built), but stalling here widens the window in
  // which readers race the pointer swap. A fired error action is
  // counted by the registry but cannot veto the publish.
  (void)util::FailpointCheck("snapshot/publish");
  auto snapshot = std::make_shared<CstSnapshot>();
  snapshot->source = std::move(source);
  snapshot->build_seconds = build_seconds;
  snapshot->summary = std::move(summary);
  snapshot->data = std::move(data);
  uint64_t version;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    version = next_version_++;
    snapshot->version = version;
    current_ = std::move(snapshot);
  }
  obs::CountEvent(obs::Counter::kSnapshotPublishes);
  return version;
}

void SnapshotCatalog::RebuildMain(ViewBuilder builder, std::string source,
                                  std::shared_ptr<const tree::Tree> data) {
  const auto t0 = std::chrono::steady_clock::now();
  // "snapshot/rebuild": an injected error fails the whole rebuild
  // exactly as a corrupt blob would — the builder never runs, the
  // published snapshot stays untouched.
  Status injected = util::FailpointCheck("snapshot/rebuild");
  if (!injected.ok()) obs::CountEvent(obs::Counter::kFaultInjected);
  using BuiltView = Result<std::shared_ptr<const cst::CstView>>;
  BuiltView built =
      injected.ok() ? builder() : BuiltView(std::move(injected));
  if (built.ok() && built.value() == nullptr) {
    built = Status::Internal("rebuild produced a null summary");
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (built.ok()) {
    Publish(std::move(built).value(), std::move(source), seconds,
            std::move(data));
  } else {
    obs::CountEvent(obs::Counter::kRebuildFailures);
  }
  const Status outcome = built.ok() ? Status::OK() : built.status();
  {
    // The listener runs before the rebuild is marked done, so a caller
    // returning from WaitForRebuild observes its effects (e.g. health
    // already flipped to degraded).
    std::lock_guard<std::mutex> listener_lock(listener_mutex_);
    if (rebuild_listener_) rebuild_listener_(outcome);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_rebuild_status_ = outcome;
    rebuild_in_flight_ = false;
  }
  rebuild_done_.notify_all();
}

void SnapshotCatalog::SetRebuildListener(
    std::function<void(const Status&)> listener) {
  std::lock_guard<std::mutex> lock(listener_mutex_);
  rebuild_listener_ = std::move(listener);
}

bool SnapshotCatalog::BeginRebuild(Builder builder, std::string source,
                                   std::shared_ptr<const tree::Tree> data) {
  // Adapt the materializing builder to the view-returning one; the
  // rebuild machinery only ever deals in views.
  return BeginRebuild(
      ViewBuilder([builder = std::move(builder)]()
                      -> Result<std::shared_ptr<const cst::CstView>> {
        Result<cst::Cst> built = builder();
        if (!built.ok()) return built.status();
        return std::shared_ptr<const cst::CstView>(
            std::make_shared<cst::Cst>(std::move(built).value()));
      }),
      std::move(source), std::move(data));
}

bool SnapshotCatalog::BeginRebuild(ViewBuilder builder, std::string source,
                                   std::shared_ptr<const tree::Tree> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (rebuild_in_flight_) return false;
  // A previous rebuild has finished: its thread is past any use of
  // this object (the in-flight flag is its final locked write), so
  // joining here is immediate.
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
  rebuild_in_flight_ = true;
  rebuild_thread_ = std::thread([this, builder = std::move(builder),
                                 source = std::move(source),
                                 data = std::move(data)]() mutable {
    RebuildMain(std::move(builder), std::move(source), std::move(data));
  });
  return true;
}

Status SnapshotCatalog::WaitForRebuild() {
  std::unique_lock<std::mutex> lock(mutex_);
  rebuild_done_.wait(lock, [&] { return !rebuild_in_flight_; });
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
  return last_rebuild_status_;
}

bool SnapshotCatalog::rebuild_in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rebuild_in_flight_;
}

SnapshotCatalog* DatasetCatalog::Create(std::string_view id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(id);
  if (it != datasets_.end()) return it->second.catalog;
  Entry entry;
  entry.owned = std::make_unique<SnapshotCatalog>();
  entry.catalog = entry.owned.get();
  SnapshotCatalog* catalog = entry.catalog;
  datasets_.emplace(std::string(id), std::move(entry));
  return catalog;
}

bool DatasetCatalog::Register(std::string_view id, SnapshotCatalog* catalog) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (datasets_.find(id) != datasets_.end()) return false;
  Entry entry;
  entry.catalog = catalog;
  datasets_.emplace(std::string(id), std::move(entry));
  return true;
}

SnapshotCatalog* DatasetCatalog::Find(std::string_view id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(ResolveDatasetId(id));
  return it == datasets_.end() ? nullptr : it->second.catalog;
}

std::vector<std::string> DatasetCatalog::DatasetIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(datasets_.size());
  for (const auto& [id, entry] : datasets_) ids.push_back(id);
  return ids;  // std::map iterates sorted
}

size_t DatasetCatalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return datasets_.size();
}

}  // namespace twig::serve
