#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace twig::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ToNanos(Clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

EstimateService::EstimateService(SnapshotCatalog* catalog,
                                 const ServiceOptions& options)
    : catalog_(catalog),
      options_(options),
      num_workers_(options.num_workers == 0
                       ? std::max(1u, std::thread::hardware_concurrency())
                       : options.num_workers),
      cache_(options.cache_entries == 0
                 ? nullptr
                 : std::make_unique<ResultCache>(ResultCacheOptions{
                       options.cache_entries, options.cache_shards})),
      queue_(options.queue_capacity),
      pool_(num_workers_) {
  // The pool's ParallelFor is synchronous, so a dispatcher thread
  // hosts it: each "item" is one worker's whole serve loop, which
  // blocks in Pop until the queue closes.
  dispatcher_ = std::thread([this] {
    pool_.ParallelFor(num_workers_, [this](size_t, size_t) { ServeLoop(); });
  });
}

EstimateService::~EstimateService() { Shutdown(/*drain=*/true); }

void EstimateService::Reject(Item item, Status status) {
  obs::CountEvent(obs::Counter::kServeRejected);
  EstimateResponse response;
  response.status = std::move(status);
  item.promise.set_value(std::move(response));
}

std::future<EstimateResponse> EstimateService::Submit(
    EstimateRequest request) {
  Item item;
  item.request = std::move(request);
  item.enqueued = Clock::now();
  if (item.request.deadline == Clock::time_point::max() &&
      options_.default_deadline.count() > 0) {
    item.request.deadline = item.enqueued + options_.default_deadline;
  }
  std::future<EstimateResponse> future = item.promise.get_future();
  if (shut_down_.load(std::memory_order_acquire)) {
    Reject(std::move(item), Status::Unavailable("service is shut down"));
    return future;
  }
  if (cache_ != nullptr) {
    // Admission-time lookup, before the queue: a hit bypasses
    // backpressure entirely. The key uses the version current *now*;
    // a hit therefore claims exactly the version it was computed on.
    const uint64_t version = catalog_->version();
    if (version != 0) {
      item.canonical = core::CanonicalizeQuery(
          item.request.twig, item.request.algorithm, item.request.semantics);
      CachedEstimate cached;
      if (cache_->Lookup(
              ResultCache::MakeKeyFromCanonical(
                  version, item.request.algorithm, item.request.semantics,
                  item.canonical),
              &cached)) {
        EstimateResponse response;
        response.status = Status::OK();
        response.estimate = cached.estimate;
        response.snapshot_version = cached.snapshot_version;
        response.exec_time = cached.exec_time;
        response.queue_wait =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - item.enqueued);
        response.cached = true;
        obs::MetricsRegistry::Get().RecordLatency(
            obs::kServeCacheHitSeries, ToNanos(response.queue_wait));
        obs::CountEvent(obs::Counter::kServeServed);
        item.promise.set_value(std::move(response));
        return future;
      }
    }
  }
  if (!queue_.TryPush(item)) {
    Reject(std::move(item),
           queue_.closed()
               ? Status::Unavailable("service is shutting down")
               : Status::Unavailable("overloaded: request queue is full"));
    return future;
  }
  obs::CountEvent(obs::Counter::kServeEnqueued);
  return future;
}

EstimateResponse EstimateService::SubmitAndWait(EstimateRequest request) {
  return Submit(std::move(request)).get();
}

void EstimateService::ServeLoop() {
  auto& registry = obs::MetricsRegistry::Get();
  while (std::optional<Item> popped = queue_.Pop()) {
    Item item = std::move(*popped);
    if (options_.dequeue_hook) options_.dequeue_hook();
    const auto dequeued = Clock::now();
    EstimateResponse response;
    response.queue_wait =
        std::chrono::duration_cast<std::chrono::nanoseconds>(dequeued -
                                                             item.enqueued);
    registry.RecordLatency(obs::kServeWaitSeries,
                           ToNanos(dequeued - item.enqueued));
    if (dequeued >= item.request.deadline) {
      obs::CountEvent(obs::Counter::kServeDeadlineMisses);
      response.status =
          Status::DeadlineExceeded("deadline passed while queued");
      item.promise.set_value(std::move(response));
      continue;
    }
    const std::shared_ptr<const CstSnapshot> snapshot = catalog_->Current();
    if (snapshot == nullptr) {
      obs::CountEvent(obs::Counter::kServeRejected);
      response.status = Status::Unavailable("no snapshot published yet");
      item.promise.set_value(std::move(response));
      continue;
    }
    const core::TwigEstimator estimator(&snapshot->summary);
    core::EstimateOptions eopt;
    eopt.semantics = item.request.semantics;
    const auto t0 = Clock::now();
    const Result<double> estimate =
        estimator.TryEstimate(item.request.twig, item.request.algorithm,
                              eopt);
    const auto elapsed = Clock::now() - t0;
    registry.RecordLatency(static_cast<size_t>(item.request.algorithm),
                           ToNanos(elapsed));
    response.exec_time =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed);
    response.snapshot_version = snapshot->version;
    if (!estimate.ok()) {
      // The estimator could not produce a trustworthy number (e.g. a
      // wildcard aggregation over budget): surface the error and keep
      // the result cache free of poisoned entries.
      response.status = estimate.status();
      obs::CountEvent(obs::Counter::kServeServed);
      item.promise.set_value(std::move(response));
      continue;
    }
    response.estimate = *estimate;
    response.status = Status::OK();
    if (cache_ != nullptr && !item.canonical.text.empty()) {
      // Key under the version that actually served the request (a hot
      // swap may have landed since admission), so the entry is correct
      // by construction and immutable-snapshot semantics make it
      // correct forever.
      cache_->Insert(
          ResultCache::MakeKeyFromCanonical(
              snapshot->version, item.request.algorithm,
              item.request.semantics, item.canonical),
          CachedEstimate{response.estimate, snapshot->version,
                         response.exec_time});
    }
    obs::CountEvent(obs::Counter::kServeServed);
    item.promise.set_value(std::move(response));
  }
}

void EstimateService::Shutdown(bool drain) {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (shut_down_.load(std::memory_order_acquire)) return;
  // Close first so workers see end-of-stream; only then mark the
  // service down for Submit (requests racing the close are rejected by
  // TryPush on the closed queue).
  std::vector<Item> leftovers = queue_.Close(drain);
  for (Item& item : leftovers) {
    Reject(std::move(item), Status::Unavailable("service is shutting down"));
  }
  shut_down_.store(true, std::memory_order_release);
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.Shutdown(/*drain=*/true);
}

}  // namespace twig::serve
