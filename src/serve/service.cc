#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "match/matcher.h"
#include "obs/metrics.h"
#include "stats/metrics.h"
#include "util/failpoint.h"

namespace twig::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ToNanos(Clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

namespace {

std::unique_ptr<DatasetCatalog> WrapAsDefault(SnapshotCatalog* catalog) {
  auto datasets = std::make_unique<DatasetCatalog>();
  datasets->Register(kDefaultDataset, catalog);
  return datasets;
}

}  // namespace

EstimateService::EstimateService(SnapshotCatalog* catalog,
                                 const ServiceOptions& options)
    : EstimateService(nullptr, WrapAsDefault(catalog), options) {}

EstimateService::EstimateService(DatasetCatalog* datasets,
                                 const ServiceOptions& options)
    : EstimateService(datasets, nullptr, options) {}

EstimateService::EstimateService(DatasetCatalog* datasets,
                                 std::unique_ptr<DatasetCatalog> owned,
                                 const ServiceOptions& options)
    : owned_datasets_(std::move(owned)),
      datasets_(datasets != nullptr ? datasets : owned_datasets_.get()),
      options_(options),
      num_workers_(options.num_workers == 0
                       ? std::max(1u, std::thread::hardware_concurrency())
                       : options.num_workers),
      health_(options.health),
      cache_(options.cache_entries == 0
                 ? nullptr
                 : std::make_unique<ResultCache>(ResultCacheOptions{
                       options.cache_entries, options.cache_shards})),
      recorder_(options.recorder_entries == 0
                    ? nullptr
                    : std::make_unique<obs::FlightRecorder>(
                          obs::FlightRecorderOptions{
                              options.recorder_entries,
                              options.recorder_slow_entries,
                              static_cast<uint64_t>(
                                  std::chrono::duration_cast<
                                      std::chrono::nanoseconds>(
                                      options.slow_threshold)
                                      .count())})),
      queue_(options.queue_capacity, options.tenants),
      pool_(num_workers_) {
  // The pool's ParallelFor is synchronous, so a dispatcher thread
  // hosts it: each "item" is one worker's whole serve loop, which
  // blocks in Pop until the queue closes.
  dispatcher_ = std::thread([this] {
    pool_.ParallelFor(num_workers_, [this](size_t, size_t) { ServeLoop(); });
  });
  // A failed rebuild leaves the last good snapshot answering but the
  // operator should know: flip health to degraded with the builder's
  // error as the reason; the next successful rebuild on that dataset
  // clears it. One HealthMonitor covers all datasets (the service
  // brown-out is process-wide), so the reason names the dataset.
  // Shutdown unregisters before this service dies.
  for (const std::string& id : datasets_->DatasetIds()) {
    datasets_->Find(id)->SetRebuildListener([this, id](const Status& status) {
      if (status.ok()) {
        health_.ClearDegraded();
      } else {
        health_.SetDegraded("rebuild failed (dataset '" + id +
                            "'): " + status.message());
      }
    });
  }
}

EstimateService::~EstimateService() { Shutdown(/*drain=*/true); }

void EstimateService::FinishSpan(Item& item, obs::SpanOutcome outcome) {
  if (!item.span.active) return;
  item.span.record.outcome = outcome;
  item.span.Mark(obs::SpanStage::kReplied);
  item.span.active = false;
  recorder_->Record(item.span.record);
}

void EstimateService::Reject(Item item, Status status,
                             std::chrono::milliseconds retry_after) {
  obs::CountEvent(obs::Counter::kServeRejected);
  FinishSpan(item, obs::SpanOutcome::kRejected);
  EstimateResponse response;
  response.status = std::move(status);
  response.retry_after = retry_after;
  item.promise.set_value(std::move(response));
}

std::future<EstimateResponse> EstimateService::Submit(
    EstimateRequest request) {
  Item item;
  item.request = std::move(request);
  item.enqueued = Clock::now();
  if (item.request.deadline == Clock::time_point::max() &&
      options_.default_deadline.count() > 0) {
    item.request.deadline = item.enqueued + options_.default_deadline;
  }
  if (recorder_ != nullptr) {
    // Every Submit gets exactly one span, armed before any exit path.
    item.span.Begin(next_request_id_.fetch_add(1, std::memory_order_relaxed),
                    query::FormatTwig(item.request.twig),
                    static_cast<uint8_t>(item.request.algorithm),
                    item.enqueued);
  }
  std::future<EstimateResponse> future = item.promise.get_future();
  if (shut_down_.load(std::memory_order_acquire)) {
    Reject(std::move(item), Status::Unavailable("service is shut down"));
    return future;
  }
  // Dataset routing happens first: an unknown dataset is a client
  // error, rejected before it can cost a cache probe or a queue slot.
  item.dataset = std::string(ResolveDatasetId(item.request.dataset));
  item.catalog = datasets_->Find(item.dataset);
  if (item.catalog == nullptr) {
    Reject(std::move(item), Status::InvalidArgument(
                                "unknown dataset '" + item.dataset + "'"));
    return future;
  }
  if (cache_ != nullptr) {
    // Admission-time lookup, before the queue: a hit bypasses
    // backpressure entirely. The key uses the version current *now*;
    // a hit therefore claims exactly the version it was computed on.
    const uint64_t version = item.catalog->version();
    if (version != 0) {
      item.canonical = core::CanonicalizeQuery(
          item.request.twig, item.request.algorithm, item.request.semantics);
      CachedEstimate cached;
      const bool hit = cache_->Lookup(
          ResultCache::MakeKeyFromCanonical(version, item.request.algorithm,
                                            item.request.semantics,
                                            item.canonical, item.dataset),
          &cached);
      item.span.Mark(obs::SpanStage::kCacheLookup);
      if (hit) {
        EstimateResponse response;
        response.status = Status::OK();
        response.estimate = cached.estimate;
        response.snapshot_version = cached.snapshot_version;
        response.exec_time = cached.exec_time;
        response.queue_wait =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - item.enqueued);
        response.cached = true;
        obs::MetricsRegistry::Get().RecordLatency(
            obs::kServeCacheHitSeries, ToNanos(response.queue_wait));
        obs::CountEvent(obs::Counter::kServeServed);
        item.span.record.estimate = cached.estimate;
        item.span.record.snapshot_version = cached.snapshot_version;
        FinishSpan(item, obs::SpanOutcome::kCacheHit);
        item.promise.set_value(std::move(response));
        return future;
      }
    }
  }
  // Brown-out: the cache path above still answers (hits cost no worker
  // time), but uncached work is shed with a Retry-After hint until the
  // queue drains and the deadline-miss rate subsides.
  if (health_.Assess(queue_.size(), queue_.capacity()) ==
      HealthState::kBrownout) {
    obs::CountEvent(obs::Counter::kBrownoutSheds);
    Reject(std::move(item),
           Status::Unavailable("browning out: uncached work is shed"),
           health_.retry_after());
    return future;
  }
  // Fault-injection seam covering BoundedQueue admission: a fired
  // "serve/admission" failpoint rejects exactly as a full queue would.
  if (Status injected = util::FailpointCheck("serve/admission");
      !injected.ok()) {
    obs::CountEvent(obs::Counter::kFaultInjected);
    item.span.record.fault_injected = true;
    Reject(std::move(item), std::move(injected));
    return future;
  }
  item.span.Mark(obs::SpanStage::kEnqueued);
  const std::string tenant(ResolveTenantId(item.request.tenant));
  std::chrono::milliseconds throttle_hint{0};
  switch (queue_.TryPush(tenant, item, &throttle_hint)) {
    case FairQueue<Item>::PushVerdict::kAdmitted:
      obs::CountEvent(obs::Counter::kServeEnqueued);
      obs::CountEvent(obs::Counter::kServeTenantAdmitted);
      return future;
    case FairQueue<Item>::PushVerdict::kThrottled:
      obs::CountEvent(obs::Counter::kServeTenantThrottled);
      item.span.record.offset_ns[static_cast<size_t>(
          obs::SpanStage::kEnqueued)] = obs::kSpanStageUnset;
      Reject(std::move(item),
             Status::Unavailable("tenant '" + tenant +
                                 "' throttled: over rate or queue share"),
             throttle_hint);
      return future;
    case FairQueue<Item>::PushVerdict::kClosed:
      item.span.record.offset_ns[static_cast<size_t>(
          obs::SpanStage::kEnqueued)] = obs::kSpanStageUnset;
      Reject(std::move(item),
             Status::Unavailable("service is shutting down"));
      return future;
    case FairQueue<Item>::PushVerdict::kFull:
      break;
  }
  // The queue refused at total capacity: the span never entered it.
  item.span.record.offset_ns[static_cast<size_t>(
      obs::SpanStage::kEnqueued)] = obs::kSpanStageUnset;
  Reject(std::move(item),
         Status::Unavailable("overloaded: request queue is full"));
  return future;
}

EstimateResponse EstimateService::SubmitAndWait(EstimateRequest request) {
  return Submit(std::move(request)).get();
}

void EstimateService::ServeLoop() {
  auto& registry = obs::MetricsRegistry::Get();
  while (std::optional<Item> popped = queue_.Pop()) {
    Item item = std::move(*popped);
    if (options_.dequeue_hook) options_.dequeue_hook();
    const auto dequeued = Clock::now();
    item.span.Mark(obs::SpanStage::kDequeued);
    EstimateResponse response;
    response.queue_wait =
        std::chrono::duration_cast<std::chrono::nanoseconds>(dequeued -
                                                             item.enqueued);
    registry.RecordLatency(obs::kServeWaitSeries,
                           ToNanos(dequeued - item.enqueued));
    if (dequeued >= item.request.deadline) {
      obs::CountEvent(obs::Counter::kServeDeadlineMisses);
      health_.ObserveOutcome(/*deadline_miss=*/true);
      response.status =
          Status::DeadlineExceeded("deadline passed while queued");
      FinishSpan(item, obs::SpanOutcome::kDeadlineMiss);
      item.promise.set_value(std::move(response));
      continue;
    }
    const std::shared_ptr<const CstSnapshot> snapshot =
        item.catalog->Current();
    if (snapshot == nullptr) {
      obs::CountEvent(obs::Counter::kServeRejected);
      response.status = Status::Unavailable("no snapshot published yet");
      FinishSpan(item, obs::SpanOutcome::kRejected);
      item.promise.set_value(std::move(response));
      continue;
    }
    item.span.Mark(obs::SpanStage::kPinned);
    item.span.record.snapshot_version = snapshot->version;
    // Worker-execution seam: an error action fails this request like
    // an estimator error; a delay action stalls the worker (FailpointCheck
    // sleeps inline), which is how chaos schedules force queue backlog
    // and deadline misses.
    if (Status injected = util::FailpointCheck("serve/estimate");
        !injected.ok()) {
      obs::CountEvent(obs::Counter::kFaultInjected);
      item.span.record.fault_injected = true;
      health_.ObserveOutcome(/*deadline_miss=*/false);
      response.status = std::move(injected);
      response.snapshot_version = snapshot->version;
      obs::CountEvent(obs::Counter::kServeServed);
      FinishSpan(item, obs::SpanOutcome::kFailed);
      item.promise.set_value(std::move(response));
      continue;
    }
    const core::TwigEstimator estimator(snapshot->summary.get());
    core::EstimateOptions eopt;
    eopt.semantics = item.request.semantics;
    // A paged summary degrades failed page reads to misses rather than
    // erroring mid-walk; bracketing the estimate with its error count
    // turns any such degradation into a failed request instead of a
    // silently skewed estimate.
    const uint64_t storage_errors_before =
        snapshot->summary->storage_error_count();
    const auto t0 = Clock::now();
    Result<double> estimate =
        estimator.TryEstimate(item.request.twig, item.request.algorithm,
                              eopt);
    const auto elapsed = Clock::now() - t0;
    const uint64_t storage_errors =
        snapshot->summary->storage_error_count() - storage_errors_before;
    if (estimate.ok() && storage_errors > 0) {
      const Status cause = snapshot->summary->storage_health();
      estimate = Status::Unavailable(
          "summary storage degraded (" + std::to_string(storage_errors) +
          " failed page reads): " +
          std::string(cause.ok() ? "unknown cause" : cause.message()));
      health_.SetDegraded("storage: " +
                          std::string(cause.ok() ? "failed page reads"
                                                 : cause.message()));
    }
    registry.RecordLatency(static_cast<size_t>(item.request.algorithm),
                           ToNanos(elapsed));
    item.span.Mark(obs::SpanStage::kEstimated);
    response.exec_time =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed);
    response.snapshot_version = snapshot->version;
    if (!estimate.ok()) {
      // The estimator could not produce a trustworthy number (e.g. a
      // wildcard aggregation over budget): surface the error and keep
      // the result cache free of poisoned entries.
      response.status = estimate.status();
      health_.ObserveOutcome(/*deadline_miss=*/false);
      obs::CountEvent(obs::Counter::kServeServed);
      FinishSpan(item, obs::SpanOutcome::kFailed);
      item.promise.set_value(std::move(response));
      continue;
    }
    response.estimate = *estimate;
    response.status = Status::OK();
    item.span.record.estimate = *estimate;
    if (options_.accuracy_sample_every > 0 && snapshot->data != nullptr &&
        accuracy_tick_.fetch_add(1, std::memory_order_relaxed) %
                options_.accuracy_sample_every ==
            0) {
      // Live accuracy feedback: re-execute this request against the
      // exact matcher on the same pinned snapshot's tree and record
      // how wrong the estimate was.
      const Result<match::TwigCounts> exact =
          match::CountTwigMatches(*snapshot->data, item.request.twig);
      if (exact.ok()) {
        const double truth =
            item.request.semantics == core::CountSemantics::kPresence
                ? exact->presence
                : exact->occurrence;
        const double err = stats::SignedRelativeError(truth, *estimate);
        registry.RecordAccuracySample(err);
        obs::CountEvent(obs::Counter::kServeAccuracySamples);
        item.span.record.accuracy_sampled = true;
        item.span.record.relative_error = err;
      } else {
        obs::CountEvent(obs::Counter::kServeAccuracyFailures);
      }
    }
    if (cache_ != nullptr && !item.canonical.text.empty()) {
      // Key under the version that actually served the request (a hot
      // swap may have landed since admission), so the entry is correct
      // by construction and immutable-snapshot semantics make it
      // correct forever.
      cache_->Insert(
          ResultCache::MakeKeyFromCanonical(
              snapshot->version, item.request.algorithm,
              item.request.semantics, item.canonical, item.dataset),
          CachedEstimate{response.estimate, snapshot->version,
                         response.exec_time});
    }
    health_.ObserveOutcome(/*deadline_miss=*/false);
    obs::CountEvent(obs::Counter::kServeServed);
    FinishSpan(item, obs::SpanOutcome::kServed);
    item.promise.set_value(std::move(response));
  }
}

void EstimateService::Shutdown(bool drain) {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (shut_down_.load(std::memory_order_acquire)) return;
  // Unregister the rebuild listeners first: they capture `this`, and
  // SetRebuildListener blocks until any in-progress invocation
  // returns, so no rebuild thread can touch health_ past this line.
  for (const std::string& id : datasets_->DatasetIds()) {
    datasets_->Find(id)->SetRebuildListener(nullptr);
  }
  // Close first so workers see end-of-stream; only then mark the
  // service down for Submit (requests racing the close are rejected by
  // TryPush on the closed queue).
  std::vector<Item> leftovers = queue_.Close(drain);
  for (Item& item : leftovers) {
    Reject(std::move(item), Status::Unavailable("service is shutting down"));
  }
  shut_down_.store(true, std::memory_order_release);
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.Shutdown(/*drain=*/true);
}

}  // namespace twig::serve
