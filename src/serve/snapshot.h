// Versioned, immutable CST snapshots with an RCU-style publication
// protocol (the serving layer's answer to "the document changed while
// queries were in flight").
//
// A CstSnapshot is frozen at construction: the CST, the metadata
// describing how it was built, and a monotone version id. The catalog
// hands read paths a shared_ptr they *pin* for the duration of one
// request — publishing version N+1 is a pointer swap, so in-flight
// readers keep answering against version N and the old snapshot is
// freed exactly when its last pinned reader drops it. Readers never
// wait on builders: the only shared critical section is a refcount
// bump under a mutex held for a pointer copy.
//
// Rebuilds run off-thread (BeginRebuild): the builder callback
// constructs a CST from whatever source the caller closes over — the
// data tree, or a serialized TWCST02 blob via cst::Cst::Deserialize —
// and the catalog hot-swaps on completion. One rebuild may be in
// flight at a time; a second BeginRebuild is refused rather than
// queued (the newest data wins anyway once the current rebuild lands).

#ifndef TWIG_SERVE_SNAPSHOT_H_
#define TWIG_SERVE_SNAPSHOT_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cst/cst.h"
#include "tree/tree.h"
#include "util/status.h"

namespace twig::serve {

/// One immutable published summary. Everything a request needs to be
/// answered — and labeled with the version that answered it.
struct CstSnapshot {
  /// Monotone catalog version, starting at 1.
  uint64_t version = 0;
  /// Human description of the build source ("dblp 2.0 MB @ 1%",
  /// "blob swap", ...). Diagnostic only.
  std::string source;
  /// Wall seconds the build took (0 when built synchronously outside
  /// the catalog).
  double build_seconds = 0;
  /// The summary behind this snapshot: a materialized cst::Cst, or a
  /// cst::PagedCst reading a TWCST03 store through a buffer pool.
  /// Never null in a published snapshot.
  std::shared_ptr<const cst::CstView> summary;
  /// The data tree the summary was built from, when the publisher
  /// still has it (nullptr for blob-deserialized snapshots). The
  /// accuracy sampler re-executes requests against it; absent, the
  /// sampler skips the request.
  std::shared_ptr<const tree::Tree> data;
};

class SnapshotCatalog {
 public:
  SnapshotCatalog() = default;
  SnapshotCatalog(const SnapshotCatalog&) = delete;
  SnapshotCatalog& operator=(const SnapshotCatalog&) = delete;

  /// Joins any in-flight rebuild (its publish still happens).
  ~SnapshotCatalog();

  /// The current snapshot, pinned: valid until the returned pointer is
  /// dropped, regardless of how many versions publish meanwhile.
  /// nullptr before the first Publish.
  std::shared_ptr<const CstSnapshot> Current() const;

  /// Version of the current snapshot; 0 before the first Publish.
  uint64_t version() const;

  /// Publishes `summary` as the new current snapshot and returns its
  /// version. In-flight readers holding an older snapshot are
  /// unaffected. Thread-safe (builders may publish concurrently; each
  /// gets a distinct version, last one wins as "current"). `data`,
  /// when provided, is the tree the summary was built from — it
  /// enables the accuracy sampler on this snapshot.
  uint64_t Publish(cst::Cst summary, std::string source,
                   double build_seconds = 0,
                   std::shared_ptr<const tree::Tree> data = nullptr);

  /// Publishes an already-shared summary view (e.g. a cst::PagedCst
  /// over a TWCST03 store). `summary` must not be null.
  uint64_t Publish(std::shared_ptr<const cst::CstView> summary,
                   std::string source, double build_seconds = 0,
                   std::shared_ptr<const tree::Tree> data = nullptr);

  /// Builds a CST; the Result carries why a rebuild failed (e.g. a
  /// corrupt blob).
  using Builder = std::function<Result<cst::Cst>()>;

  /// Builds a summary view. A builder returning any other type (e.g.
  /// Result<cst::Cst>) selects the Builder overload instead — the two
  /// Result types do not convert, so lambdas resolve unambiguously.
  using ViewBuilder =
      std::function<Result<std::shared_ptr<const cst::CstView>>()>;

  /// Starts an off-thread rebuild that runs `builder` and publishes on
  /// success. Returns false (and does nothing) if a rebuild is already
  /// in flight. `source` labels the resulting snapshot; `data`, when
  /// provided, is attached to it on publish (the tree the builder
  /// summarizes, for the accuracy sampler).
  bool BeginRebuild(Builder builder, std::string source,
                    std::shared_ptr<const tree::Tree> data = nullptr);
  bool BeginRebuild(ViewBuilder builder, std::string source,
                    std::shared_ptr<const tree::Tree> data = nullptr);

  /// Blocks until no rebuild is in flight and returns the status of
  /// the most recent one (OK if none ever ran).
  Status WaitForRebuild();

  bool rebuild_in_flight() const;

  /// Observes every rebuild's outcome (OK or the builder's error),
  /// invoked on the rebuild thread after the publish (on success) but
  /// before the rebuild is marked finished — so once WaitForRebuild
  /// returns, the listener has already run for that rebuild. At most
  /// one listener; nullptr unregisters. Setting blocks until any
  /// in-progress invocation of the previous listener returns, so after
  /// SetRebuildListener(nullptr) the old listener's captures are safe
  /// to destroy. The serving layer uses this to flip health to
  /// degraded on failure and back on the next success.
  void SetRebuildListener(std::function<void(const Status&)> listener);

 private:
  void RebuildMain(ViewBuilder builder, std::string source,
                   std::shared_ptr<const tree::Tree> data);

  mutable std::mutex mutex_;
  std::condition_variable rebuild_done_;
  std::shared_ptr<const CstSnapshot> current_;
  uint64_t next_version_ = 1;
  std::thread rebuild_thread_;
  bool rebuild_in_flight_ = false;
  Status last_rebuild_status_;
  /// Separate from mutex_ so a listener may call back into the catalog
  /// (version(), Current()) without deadlocking, and so holding it
  /// through the invocation gives SetRebuildListener its drain
  /// guarantee.
  std::mutex listener_mutex_;
  std::function<void(const Status&)> rebuild_listener_;
};

/// The dataset id requests resolve to when they carry none. Also the
/// id under which the single-catalog compatibility constructors
/// register their catalog.
inline constexpr const char kDefaultDataset[] = "default";

/// Normalizes a wire-supplied dataset id: empty means "default".
inline std::string_view ResolveDatasetId(std::string_view id) {
  return id.empty() ? std::string_view(kDefaultDataset) : id;
}

/// A keyed map `dataset id -> snapshot lineage`. Each dataset keeps
/// its own SnapshotCatalog — its own RCU lineage, version sequence,
/// rebuild machinery, and rebuild listener — so corpora swap and
/// degrade independently. The map itself is insert-only: datasets are
/// registered before serving starts and never removed, so Find returns
/// a pointer that stays valid for the catalog's lifetime and the
/// per-request cost is one mutex-guarded map lookup.
///
/// Catalogs may be owned (Create) or borrowed (Register) — borrowing
/// is how the single-catalog compatibility constructors wrap a
/// caller-owned SnapshotCatalog as the "default" dataset without
/// changing its lifetime.
class DatasetCatalog {
 public:
  DatasetCatalog() = default;
  DatasetCatalog(const DatasetCatalog&) = delete;
  DatasetCatalog& operator=(const DatasetCatalog&) = delete;

  /// Creates (and owns) an empty lineage for `id`. Returns the
  /// existing catalog when `id` is already registered.
  SnapshotCatalog* Create(std::string_view id);

  /// Registers a caller-owned catalog under `id` (the caller keeps it
  /// alive for this object's lifetime). Returns false when `id` is
  /// already registered (the existing entry wins).
  bool Register(std::string_view id, SnapshotCatalog* catalog);

  /// The catalog for `id` (empty = default), or nullptr when no such
  /// dataset is registered. The pointer stays valid forever (datasets
  /// are never removed).
  SnapshotCatalog* Find(std::string_view id) const;

  /// Find(kDefaultDataset).
  SnapshotCatalog* Default() const { return Find(kDefaultDataset); }

  /// Registered dataset ids, sorted.
  std::vector<std::string> DatasetIds() const;

  size_t size() const;

 private:
  struct Entry {
    std::unique_ptr<SnapshotCatalog> owned;  // null for Register()ed
    SnapshotCatalog* catalog = nullptr;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> datasets_;
};

}  // namespace twig::serve

#endif  // TWIG_SERVE_SNAPSHOT_H_
