// Event-driven TCP front-end for the estimation service.
//
// Transport: loopback TCP, newline-delimited JSON (serve/wire.h).
// num_connection_threads epoll worker loops share a nonblocking
// listening socket (EPOLLEXCLUSIVE where available); each accepted
// connection is owned by the worker that accepted it and carries a
// read buffer (offset-consumed, amortized compaction — a pipelined
// burst costs O(bytes), not O(bytes * lines)) and a write backlog
// flushed on EPOLLOUT when the socket fills. Tens of thousands of
// idle connections cost one epoll registration each, no threads.
//
// Request handling: cheap ops (ping, metrics, stats, health, ...)
// answer inline on the worker. Estimates are submitted to the
// EstimateService *asynchronously*: each request line gets an ordered
// reply slot on its connection, the worker polls outstanding futures
// between epoll waits, and replies are released strictly in request
// order — so pipelined clients see byte-identical reply sequences and
// a tenant whose requests are queued can never stall another tenant's
// connections at the transport layer (the fairness the admission
// queue provides would otherwise be defeated here).
//
// Accept robustness: transient accept failures — EMFILE/ENFILE (fd
// exhaustion), ECONNABORTED, ENOMEM, EINTR — are counted
// (serve_accept_retries) and retried with a short backoff instead of
// killing the loop, so a burst of failures degrades throughput but
// never turns the server deaf.
//
// Datasets: requests carry an optional "dataset" wire field routed
// through a DatasetCatalog (absent = "default"); swap resolves a
// per-dataset rebuild source. The single-catalog constructor wraps
// its catalog as the "default" dataset.
//
// Lifecycle: Start() binds and spawns the workers; the server runs
// until Stop() — called directly, or by WaitForShutdown() after a
// client sends {"op":"shutdown"} (the worker flushes the reply, flags
// the stop, and teardown happens on the WaitForShutdown caller's
// thread). Stop wakes every worker via an eventfd; workers close
// their own connections and exit.

#ifndef TWIG_SERVE_TCP_H_
#define TWIG_SERVE_TCP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cst/cst.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "util/status.h"

namespace twig::serve {

/// How a dataset rebuilds on the "swap" op.
struct RebuildSource {
  /// Builds a replacement CST, `space` being the client-requested
  /// space fraction (0 = builder's default).
  std::function<Result<cst::Cst>(double space)> rebuild;
  /// View-returning flavor, for summaries that are not materialized
  /// cst::Cst objects (e.g. a cst::PagedCst over a TWCST03 store).
  /// Takes precedence over `rebuild` when both are set.
  std::function<Result<std::shared_ptr<const cst::CstView>>(double space)>
      rebuild_view;
  /// The data tree the rebuild summarizes, attached to each swapped-in
  /// snapshot so the accuracy sampler keeps working after a swap.
  std::shared_ptr<const tree::Tree> rebuild_data;

  bool empty() const { return !rebuild && !rebuild_view; }
};

struct TcpOptions {
  /// Port to bind on 127.0.0.1; 0 = kernel-assigned ephemeral port
  /// (read it back from port() after Start).
  uint16_t port = 0;
  /// Epoll worker loops. Each owns the connections it accepted.
  size_t num_connection_threads = 4;
  /// A request line longer than this closes the connection with a
  /// structured error (guards the per-connection buffer).
  size_t max_line_bytes = 1 << 20;
  /// The default dataset's rebuild source for the "swap" op. Unset =
  /// swap answers Unimplemented (unless rebuild_view is set).
  std::function<Result<cst::Cst>(double space)> rebuild;
  /// View-returning flavor of `rebuild`; takes precedence when both
  /// are set.
  std::function<Result<std::shared_ptr<const cst::CstView>>(double space)>
      rebuild_view;
  /// The data tree `rebuild` summarizes (see RebuildSource).
  std::shared_ptr<const tree::Tree> rebuild_data;
  /// Rebuild sources for non-default datasets, keyed by dataset id. A
  /// "default" entry here overrides the three fields above.
  std::map<std::string, RebuildSource> dataset_rebuilds;
};

class TcpFrontEnd {
 public:
  /// Single-dataset compatibility constructor: wraps `catalog` as the
  /// "default" dataset. `catalog` and `service` must outlive the
  /// front-end.
  TcpFrontEnd(SnapshotCatalog* catalog, EstimateService* service,
              const TcpOptions& options = {});

  /// Multi-dataset constructor: requests route by their "dataset"
  /// wire field against `datasets` (normally the same map the service
  /// was built on). `datasets` and `service` must outlive the
  /// front-end.
  TcpFrontEnd(DatasetCatalog* datasets, EstimateService* service,
              const TcpOptions& options = {});

  TcpFrontEnd(const TcpFrontEnd&) = delete;
  TcpFrontEnd& operator=(const TcpFrontEnd&) = delete;

  /// Equivalent to Stop().
  ~TcpFrontEnd();

  /// Binds 127.0.0.1:port, listens, and spawns the worker loops.
  Status Start();

  /// The bound port (the kernel's pick when options.port was 0).
  /// Valid after a successful Start.
  uint16_t port() const { return port_; }

  /// Blocks until a client requests shutdown (or Stop is called), then
  /// tears the server down. The intended main-thread loop of a server
  /// binary.
  void WaitForShutdown();

  /// Stops accepting, disconnects open connections, joins the
  /// workers. Idempotent, callable from any non-worker thread.
  void Stop();

 private:
  struct Conn;
  struct Worker;

  /// One epoll worker loop: accept, read, dispatch, flush, repeat
  /// until Stop wakes it.
  void WorkerMain(Worker& worker);

  /// Drains the accept backlog into `worker`. Transient errno classes
  /// are counted and retried; only a dead listener ends accepting.
  void AcceptBurst(Worker& worker);

  /// Reads everything available, consumes complete lines into reply
  /// slots, and enforces max_line_bytes. False = close the connection.
  bool ReadConn(Worker& worker, Conn& conn);

  /// Dispatches one request line: sync ops fill the slot immediately,
  /// estimates leave a pending future.
  void DispatchLine(Worker& worker, Conn& conn, std::string_view line);

  /// Releases completed reply slots in request order into the write
  /// backlog and flushes it. False = close the connection.
  bool PumpConn(Worker& worker, Conn& conn);

  /// Sends the write backlog until done or EAGAIN (arming EPOLLOUT).
  /// False = peer error, close the connection.
  bool FlushConn(Worker& worker, Conn& conn);

  void CloseConn(Worker& worker, Conn& conn);

  /// Resolves a request's dataset catalog; nullptr = unknown dataset.
  SnapshotCatalog* CatalogFor(std::string_view dataset) const;

  /// The rebuild source configured for `dataset` (empty() when none).
  const RebuildSource& RebuildFor(std::string_view dataset) const;

  std::string HandleExplain(const WireRequest& request);
  std::string HandleMetrics(const WireRequest& request);
  std::string HandleStats(const WireRequest& request);
  std::string HandleRecent(const WireRequest& request);
  std::string HandleSwap(const WireRequest& request);
  std::string HandleHealth(const WireRequest& request);
  std::string HandleFailpoint(const WireRequest& request);

  /// Flags the stop and wakes WaitForShutdown.
  void RequestStop();

  /// The single-catalog constructor's wrapper; null when the caller
  /// provided a DatasetCatalog. Declared before datasets_ so the
  /// member initializer may read it.
  std::unique_ptr<DatasetCatalog> owned_datasets_;
  DatasetCatalog* const datasets_;
  EstimateService* const service_;
  const TcpOptions options_;
  /// options_ normalized: dataset_rebuilds plus the top-level default
  /// source folded in under "default".
  std::map<std::string, RebuildSource> rebuilds_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> worker_threads_;
  /// Set by Stop() before the eventfd wakeups; workers exit on it.
  std::atomic<bool> shutting_down_{false};

  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;

  /// Serializes teardown: a concurrent second Stop blocks until the
  /// first finishes joining, then returns.
  std::mutex teardown_mutex_;
  bool stopped_ = false;
};

}  // namespace twig::serve

#endif  // TWIG_SERVE_TCP_H_
