// Blocking TCP front-end for the estimation service.
//
// Transport: loopback TCP, newline-delimited JSON (serve/wire.h). A
// small pool of connection-handler threads shares the listening
// socket; each thread accepts one connection at a time and serves it
// to completion, so up to num_connection_threads clients are served
// concurrently and further connects queue in the kernel backlog.
// "Slow" ops (estimate) go through the EstimateService queue — its
// backpressure and deadlines apply unchanged — while cheap ops (ping,
// metrics) answer on the handler thread, and explain runs inline
// because traces are single-query sinks.
//
// Lifecycle: Start() binds and spawns handlers; the server runs until
// Stop() — called directly, or by WaitForShutdown() after a client
// sends {"op":"shutdown"} (the handler answers the client, flags the
// stop, and teardown happens on the WaitForShutdown caller's thread,
// never on a handler joining itself). Stop shuts down the listening
// socket and every open connection, so blocked accept/recv calls
// return and the handlers join promptly.

#ifndef TWIG_SERVE_TCP_H_
#define TWIG_SERVE_TCP_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cst/cst.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "util/status.h"

namespace twig::serve {

struct TcpOptions {
  /// Port to bind on 127.0.0.1; 0 = kernel-assigned ephemeral port
  /// (read it back from port() after Start).
  uint16_t port = 0;
  /// Concurrent connections served; later connects wait in the kernel
  /// accept backlog.
  size_t num_connection_threads = 4;
  /// A request line longer than this closes the connection with a
  /// structured error (guards the per-connection buffer).
  size_t max_line_bytes = 1 << 20;
  /// Builds a replacement CST for the "swap" op, `space` being the
  /// client-requested space fraction (0 = builder's default). Unset =
  /// swap answers Unimplemented (unless rebuild_view is set).
  std::function<Result<cst::Cst>(double space)> rebuild;
  /// View-returning flavor of `rebuild`, for servers whose summaries
  /// are not materialized cst::Cst objects (e.g. a cst::PagedCst over
  /// a TWCST03 store). Takes precedence over `rebuild` when both are
  /// set.
  std::function<Result<std::shared_ptr<const cst::CstView>>(double space)>
      rebuild_view;
  /// The data tree the rebuild summarizes, attached to each swapped-in
  /// snapshot so the accuracy sampler keeps working after a swap.
  std::shared_ptr<const tree::Tree> rebuild_data;
};

class TcpFrontEnd {
 public:
  /// `catalog` and `service` must outlive the front-end.
  TcpFrontEnd(SnapshotCatalog* catalog, EstimateService* service,
              const TcpOptions& options = {});

  TcpFrontEnd(const TcpFrontEnd&) = delete;
  TcpFrontEnd& operator=(const TcpFrontEnd&) = delete;

  /// Equivalent to Stop().
  ~TcpFrontEnd();

  /// Binds 127.0.0.1:port, listens, and spawns the handler threads.
  Status Start();

  /// The bound port (the kernel's pick when options.port was 0).
  /// Valid after a successful Start.
  uint16_t port() const { return port_; }

  /// Blocks until a client requests shutdown (or Stop is called), then
  /// tears the server down. The intended main-thread loop of a server
  /// binary.
  void WaitForShutdown();

  /// Stops accepting, disconnects open connections, joins the
  /// handlers. Idempotent, callable from any non-handler thread.
  void Stop();

 private:
  /// One handler thread: accept, serve the connection to close,
  /// repeat until the listening socket shuts down.
  void HandlerMain();

  /// Reads lines off `fd` and answers them until EOF/error/oversize.
  void ServeConnection(int fd);

  /// Dispatches one request line to its op handler; returns the
  /// response line (without the newline). Sets `*stop_after_reply` for
  /// the shutdown op, so the caller can send the reply before the stop
  /// tears the connection down.
  std::string HandleLine(std::string_view line, bool* stop_after_reply);

  std::string HandleEstimate(const WireRequest& request);
  std::string HandleExplain(const WireRequest& request);
  std::string HandleMetrics(const WireRequest& request);
  std::string HandleStats(const WireRequest& request);
  std::string HandleRecent(const WireRequest& request);
  std::string HandleSwap(const WireRequest& request);
  std::string HandleHealth(const WireRequest& request);
  std::string HandleFailpoint(const WireRequest& request);

  /// Flags the stop and wakes WaitForShutdown.
  void RequestStop();

  SnapshotCatalog* const catalog_;
  EstimateService* const service_;
  const TcpOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::thread> handlers_;

  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  /// Open connection fds, so Stop can unblock recv on them.
  std::vector<int> open_connections_;

  /// Serializes teardown: a concurrent second Stop blocks until the
  /// first finishes joining, then returns.
  std::mutex teardown_mutex_;
  bool stopped_ = false;
};

}  // namespace twig::serve

#endif  // TWIG_SERVE_TCP_H_
