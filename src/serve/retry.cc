#include "serve/retry.h"

#include <algorithm>

#include "obs/metrics.h"

namespace twig::serve {

RetryPolicy::RetryPolicy(const RetryOptions& options)
    : options_(options),
      rng_(options.seed),
      tokens_(options.budget_cap),
      prev_backoff_(options.base_backoff) {}

std::optional<std::chrono::milliseconds> RetryPolicy::NextBackoff(
    const Status& status, int attempt,
    std::chrono::steady_clock::time_point deadline,
    std::chrono::milliseconds server_hint) {
  if (!IsRetryable(status)) return std::nullopt;
  if (attempt >= options_.max_attempts) return std::nullopt;

  std::lock_guard<std::mutex> lock(mutex_);
  if (tokens_ < 1.0) return std::nullopt;

  // Decorrelated jitter: uniform in [base, 3 * previous], capped.
  const int64_t base = options_.base_backoff.count();
  const int64_t ceiling =
      std::min(options_.max_backoff.count(),
               std::max(base, 3 * prev_backoff_.count()));
  std::chrono::milliseconds backoff{rng_.UniformInt(base, ceiling)};
  backoff = std::max(backoff, server_hint);
  backoff = std::min(backoff, options_.max_backoff);

  // Never retry past the deadline: if the next attempt could not even
  // start in time, the caller is better served by the real error now.
  if (deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() + backoff >= deadline) {
    return std::nullopt;
  }

  tokens_ -= 1.0;
  prev_backoff_ = backoff;
  obs::CountEvent(obs::Counter::kRetries);
  return backoff;
}

void RetryPolicy::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  tokens_ = std::min(tokens_ + options_.budget_ratio, options_.budget_cap);
}

double RetryPolicy::budget() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tokens_;
}

}  // namespace twig::serve
