// The serving wire protocol: newline-delimited JSON, one request
// object per line, one response object per line (DESIGN.md §10).
//
// Requests:
//   {"op":"ping", "id":1}
//   {"op":"estimate", "id":2, "query":"article(author, year)",
//    "algo":"MSH", "semantics":"occurrence", "deadline_ms":250}
//   {"op":"explain", "id":3, "query":"book.author", "algo":"MO"}
//   {"op":"metrics", "id":4}
//   {"op":"swap", "id":5, "space":0.02}
//   {"op":"shutdown", "id":6}
//   {"op":"stats", "id":7}    — latency percentiles + accuracy window
//   {"op":"recent", "id":8}   — flight recorder + slow-log dump
//   {"op":"health", "id":9}   — health state machine (ok / degraded /
//                               browning-out) + reason + retry hint
//   {"op":"failpoint", "id":10, "spec":"serve/estimate=error:0.1"}
//                             — arm/disarm failpoints mid-run; empty
//                               spec lists them with hit/trigger stats
//
// Responses always carry "ok" and echo "op" and "id" (when sent):
//   {"id":2,"ok":true,"op":"estimate","estimate":41.5,"version":1,
//    "wait_us":12.0,"exec_us":35.2}
//   {"id":2,"ok":false,"op":"estimate",
//    "error":{"code":"Unavailable","message":"overloaded: ..."}}
//
// This header is transport-free (no sockets): ParseRequest decodes and
// validates a request line, the encoders render response lines
// (without the trailing newline). The TCP front-end and the tests
// share it.

#ifndef TWIG_SERVE_WIRE_H_
#define TWIG_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include <vector>

#include "core/estimator.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/health.h"
#include "serve/service.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace twig::serve {

/// A decoded request line. Fields default to the protocol defaults so
/// handlers can use them directly.
struct WireRequest {
  std::string op;
  /// Client correlation id, echoed in the response when present.
  bool has_id = false;
  uint64_t id = 0;
  std::string query;
  core::Algorithm algorithm = core::Algorithm::kMsh;
  core::CountSemantics semantics = core::CountSemantics::kOccurrence;
  /// Relative deadline in milliseconds; 0 = none given.
  double deadline_ms = 0;
  /// swap: CST space fraction to rebuild at; 0 = server default.
  double space = 0;
  /// failpoint: the "name=action[:arg],..." list to apply; empty =
  /// list the configured failpoints with their stats.
  std::string spec;
  /// Dataset to route against; empty = "default". Honored by
  /// estimate/explain/swap/ping/health (and echoed in responses when
  /// nonempty); an unknown dataset is a structured error.
  std::string dataset;
  /// Tenant the request bills to; empty = "default". Feeds the
  /// admission quotas and fair queue.
  std::string tenant;
};

/// Parses "MSH" / "MO" / ... (core::AlgorithmName spelling).
bool ParseAlgorithmName(std::string_view name, core::Algorithm* out);

/// Upper bound on "deadline_ms" (~11.6 days). Bounds the relative
/// deadline so converting it into a steady_clock time point can never
/// overflow the clock's integer representation — an unbounded double
/// from the wire would poison every deadline comparison downstream.
inline constexpr double kMaxDeadlineMs = 1e9;

/// Upper bound on "space" (a CST space fraction; generous, but keeps
/// space * data_bytes inside size_t for any real document).
inline constexpr double kMaxSpaceFraction = 1e6;

/// Upper bound on the "dataset" and "tenant" id fields. Both key
/// server-side maps, so the wire must bound them.
inline constexpr size_t kMaxIdBytes = 256;

/// True iff `value` is a finite number in [0, max]. NaN fails every
/// comparison with false, so `value < 0` alone would let NaN (and
/// +Infinity) through — this is the wire's single gate for numeric
/// range fields.
bool IsFiniteNonNegative(double value, double max);

/// Decodes and validates one request line: must be a JSON object with
/// a string "op"; optional fields must have the right types ("algo"
/// must name an algorithm, "semantics" must be "occurrence" or
/// "presence"). Range fields are rejected with InvalidArgument unless
/// finite and in range: "deadline_ms" in [0, kMaxDeadlineMs], "space"
/// in [0, kMaxSpaceFraction] — non-finite or overflowing values would
/// poison the steady-clock deadline arithmetic in the service. Unknown
/// keys are ignored (forward compatibility); unknown *ops* are left to
/// the dispatcher so it can answer with an error that echoes the id.
Result<WireRequest> ParseRequest(std::string_view line);

/// {"id":..,"ok":false,"op":..,"error":{"code":..,"message":..}}.
/// `request` may be nullptr when the line didn't parse (no id/op).
/// A nonzero `retry_after` (a brown-out shed's hint) adds
/// "retry_after_ms" inside the error object.
std::string ErrorResponse(const WireRequest* request, const Status& status,
                          std::chrono::milliseconds retry_after =
                              std::chrono::milliseconds{0});

/// Encodes a service response: OK → estimate/cached/version/timings,
/// error → ErrorResponse with the status (overloads and deadline
/// misses are structured errors, not dropped lines). "cached" is true
/// when the result cache answered. A non-finite estimate (e.g. a NaN
/// from a deadline-skipped batch slot) is encoded as a JSON null plus
/// an "estimate_error" flag — never as a bare NaN/Inf token, which is
/// not JSON.
std::string EstimateWireResponse(const WireRequest& request,
                                 const EstimateResponse& response);

std::string PingResponse(const WireRequest& request, uint64_t version,
                         size_t queue_depth);

/// Embeds a pre-rendered metrics JSON document (registry snapshot).
std::string MetricsResponse(const WireRequest& request,
                            std::string_view metrics_json, uint64_t version,
                            size_t queue_depth, size_t queue_capacity);

std::string SwapResponse(const WireRequest& request, uint64_t version);

/// Embeds a pre-rendered obs::Trace::ToJson document.
std::string ExplainResponse(const WireRequest& request,
                            std::string_view trace_json, uint64_t version);

/// The `stats` verb: percentile summaries of every latency series plus
/// the accuracy sampler's window, from `snapshot`, and the recorder's
/// occupancy (`recorder` may be nullptr = tracing disabled):
///   {"id":..,"ok":true,"op":"stats","version":v,"schema_version":2,
///    "queue_depth":d,"queue_capacity":c,
///    "latency":{"MSH":{"count":n,"mean_us":..,"p50_us":..,"p90_us":..,
///        "p95_us":..,"p99_us":..}, ...},
///    "accuracy":{"recorded":r,"window":w,"mean":..,"mean_abs":..,
///        "p50_abs":..,"p99_abs":..},
///    "recorder":{"enabled":..,"capacity":..,"recorded":..,"dropped":..,
///        "slow_capacity":..,"slow_recorded":..,"slow_threshold_us":..}}
/// Per-dataset line for the stats verb: id and current version.
struct DatasetWireInfo {
  std::string dataset;
  uint64_t version = 0;
};

std::string StatsResponse(const WireRequest& request,
                          const obs::MetricsSnapshot& snapshot,
                          const obs::FlightRecorder* recorder,
                          uint64_t version, size_t queue_depth,
                          size_t queue_capacity,
                          const std::vector<DatasetWireInfo>& datasets = {},
                          const std::vector<TenantStats>& tenants = {});

/// The `recent` verb: the flight recorder's retained spans and slow
/// log as JSON arrays (SpanRecordToJson elements, oldest first):
///   {"id":..,"ok":true,"op":"recent","version":v,"recorded":..,
///    "dropped":..,"spans":[...],"slow":[...]}
/// A nullptr `recorder` (tracing disabled) renders an Unavailable
/// error instead.
std::string RecentResponse(const WireRequest& request,
                           const obs::FlightRecorder* recorder,
                           uint64_t version);

std::string ShutdownResponse(const WireRequest& request);

/// The `health` verb:
///   {"id":..,"ok":true,"op":"health","version":v,"state":"ok",
///    "reason":"...","retry_after_ms":50}
/// "reason" only when nonempty, "retry_after_ms" only when nonzero.
std::string HealthResponse(const WireRequest& request,
                           const HealthReport& report, uint64_t version);

/// The `failpoint` verb's success response: the configured failpoints
/// with their lifetime stats:
///   {"id":..,"ok":true,"op":"failpoint","failpoints":[
///     {"name":"serve/estimate","action":"error","probability":0.1,
///      "delay_ms":0,"hits":12,"triggers":2}, ...]}
std::string FailpointResponse(const WireRequest& request,
                              const std::vector<util::FailpointInfo>& infos);

}  // namespace twig::serve

#endif  // TWIG_SERVE_WIRE_H_
