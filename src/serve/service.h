// The estimation service: a tenant-fair bounded request queue in
// front of a pool of estimation workers reading from a DatasetCatalog
// (or a single wrapped SnapshotCatalog).
//
// Admission discipline (in the order a request meets it):
//   0. Dataset routing: the request's dataset id (empty = "default")
//     resolves to its SnapshotCatalog at admission; an unknown id
//     rejects with InvalidArgument before costing anything else.
//   0b. Result cache (when enabled): a request whose (dataset, current
//     snapshot version, algorithm, semantics, canonical twig) was
//     answered before resolves immediately with the cached,
//     bit-identical estimate — it never touches the queue, so a hit
//     cannot be rejected as overload and costs no worker time.
//   1. Backpressure, tenant-fair (serve/fair_queue.h): a tenant over
//     its token-bucket rate or its weighted queue share is *throttled*
//     (Unavailable with a retry_after hint); a full queue rejects with
//     overload. Either way the caller is never blocked and queued work
//     drains by deficit round-robin, so one hot tenant cannot starve
//     the rest.
//   2. Deadlines: each request carries an absolute deadline (or
//     inherits the service default). A request that expires while
//     queued is answered DeadlineExceeded by the worker that dequeues
//     it — expiry costs a dequeue, not an estimate.
//   3. Snapshot pinning: the worker pins catalog->Current() for
//     exactly one request, so a hot swap mid-stream never mixes
//     versions within a response and the answer records which version
//     produced it.
//   4. Shutdown: Shutdown(drain=true) (also the destructor) answers
//     everything already admitted, then stops; Shutdown(drain=false)
//     rejects the queued remainder with Unavailable. Either way every
//     admitted request gets exactly one response.
//
// Every stage feeds obs::MetricsRegistry: serve_enqueued /
// serve_served / serve_rejected / serve_deadline_misses counters, the
// serve_wait latency series (time from admission to dequeue), and the
// per-algorithm estimate latency series (execution time).
//
// Workers run on a util::ThreadPool whose explicit Shutdown keeps
// teardown ordering deterministic (queue closes first, workers drain,
// then the pool joins).

#ifndef TWIG_SERVE_SERVICE_H_
#define TWIG_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include <memory>

#include "core/canonical.h"
#include "core/estimator.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "query/twig.h"
#include "serve/fair_queue.h"
#include "serve/health.h"
#include "serve/result_cache.h"
#include "serve/snapshot.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace twig::serve {

struct ServiceOptions {
  /// Estimation workers; 0 = one per hardware thread.
  size_t num_workers = 2;
  /// Requests the queue holds before rejecting with overload.
  size_t queue_capacity = 256;
  /// Deadline applied to requests that carry none; zero = unbounded.
  std::chrono::milliseconds default_deadline{0};
  /// Result cache entries (serve/result_cache.h); 0 disables the
  /// cache. Hits are answered at admission, before the queue, so a
  /// cached request can never be rejected as overload.
  size_t cache_entries = 0;
  /// Result cache shards (rounded to a power of two).
  size_t cache_shards = 8;
  /// Flight recorder entries (rounded to a power of two); 0 disables
  /// span tracing and the recorder entirely.
  size_t recorder_entries = 256;
  /// Slow-log ring entries.
  size_t recorder_slow_entries = 64;
  /// A request whose admission-to-reply time reaches this is retained
  /// in the slow log; zero disables the slow log.
  std::chrono::microseconds slow_threshold{50000};
  /// Accuracy sampling rate: every Nth successful estimate is
  /// re-executed against the exact matcher on the pinned snapshot's
  /// tree (when the snapshot carries one) and the signed relative
  /// error recorded. 0 disables sampling.
  uint32_t accuracy_sample_every = 0;
  /// Health state machine thresholds (serve/health.h): when brown-out
  /// begins and ends, and the Retry-After hint shed responses carry.
  HealthOptions health;
  /// Per-tenant admission quotas and weights (serve/fair_queue.h).
  /// The defaults — unlimited rate, weight 1 — make single-tenant
  /// traffic behave exactly like the plain bounded queue.
  TenantPolicy tenants;
  /// Test seam: runs on the worker after dequeuing each request,
  /// before the deadline check. Lets tests hold a worker mid-request
  /// to force deterministic overload / expiry / drain scenarios.
  std::function<void()> dequeue_hook;
};

struct EstimateRequest {
  query::Twig twig;
  core::Algorithm algorithm = core::Algorithm::kMsh;
  core::CountSemantics semantics = core::CountSemantics::kOccurrence;
  /// Absolute deadline; time_point::max() = none (the service default
  /// applies at admission).
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Dataset to answer against; empty = "default". An unregistered
  /// dataset rejects with InvalidArgument at admission.
  std::string dataset;
  /// Tenant the request bills to; empty = "default". Quotas and queue
  /// shares come from ServiceOptions::tenants.
  std::string tenant;
};

struct EstimateResponse {
  /// OK, Unavailable (overload / shutdown / no snapshot), or
  /// DeadlineExceeded.
  Status status;
  double estimate = 0;
  /// Version of the snapshot that served the request (0 if none did).
  uint64_t snapshot_version = 0;
  /// Admission-to-dequeue wait; zero for requests rejected at
  /// admission, admission-to-answer for cache hits.
  std::chrono::nanoseconds queue_wait{0};
  /// Time inside TwigEstimator::Estimate; zero unless status is OK.
  /// Cache hits echo the exec_time of the compute that filled the
  /// entry, not the (near-zero) hit cost — see serve_cache_hit series
  /// for the latter.
  std::chrono::nanoseconds exec_time{0};
  /// True when the estimate was answered from the result cache (same
  /// snapshot version, bit-identical value).
  bool cached = false;
  /// Server backoff hint for rejected requests (nonzero only on
  /// brown-out sheds): "come back after this long". Rendered on the
  /// wire as retry_after_ms inside the error object.
  std::chrono::milliseconds retry_after{0};
};

class EstimateService {
 public:
  /// Single-dataset compatibility constructor: wraps `catalog` as the
  /// "default" dataset of an internal DatasetCatalog. `catalog` must
  /// outlive the service. Workers start immediately; requests
  /// submitted before the first Publish are answered Unavailable.
  explicit EstimateService(SnapshotCatalog* catalog,
                           const ServiceOptions& options = {});

  /// Multi-dataset constructor: requests route by EstimateRequest::
  /// dataset against `datasets`, which must outlive the service and
  /// have every dataset registered before construction (rebuild
  /// listeners are wired here; later registrations serve but do not
  /// flip health on rebuild failures).
  explicit EstimateService(DatasetCatalog* datasets,
                           const ServiceOptions& options = {});

  EstimateService(const EstimateService&) = delete;
  EstimateService& operator=(const EstimateService&) = delete;

  /// Equivalent to Shutdown(/*drain=*/true).
  ~EstimateService();

  /// Admits `request` (or rejects it immediately); the future always
  /// becomes ready — with an estimate, a structured rejection, or a
  /// deadline miss. Never blocks.
  std::future<EstimateResponse> Submit(EstimateRequest request);

  /// Convenience: Submit and wait for the response.
  EstimateResponse SubmitAndWait(EstimateRequest request);

  /// Stops the service. With `drain`, requests already admitted are
  /// answered first; without it they are rejected with Unavailable.
  /// Either way new Submits reject, every admitted request's future
  /// completes, and the workers are joined before returning.
  /// Idempotent (the first caller's drain choice wins).
  void Shutdown(bool drain);

  size_t queue_depth() const { return queue_.size(); }
  size_t queue_capacity() const { return queue_.capacity(); }
  size_t num_workers() const { return num_workers_; }

  /// The dataset map requests route against (the internal wrapper for
  /// the single-catalog constructor).
  DatasetCatalog* datasets() const { return datasets_; }

  /// Lifetime per-tenant admission accounting, for the stats verb.
  std::vector<TenantStats> tenant_stats() const {
    return queue_.tenant_stats();
  }

  /// The result cache, nullptr when options.cache_entries was 0.
  const ResultCache* result_cache() const { return cache_.get(); }

  /// The flight recorder, nullptr when options.recorder_entries was 0.
  const obs::FlightRecorder* recorder() const { return recorder_.get(); }

  /// The health state machine. Report() for the `health` verb; tests
  /// may SetDegraded/ClearDegraded directly.
  HealthMonitor& health() { return health_; }
  const HealthMonitor& health() const { return health_; }

 private:
  struct Item {
    EstimateRequest request;
    std::promise<EstimateResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Canonical form computed once at admission (for the cache
    /// lookup) and reused by the worker to insert under the snapshot
    /// version that actually served the request. Empty text = caching
    /// disabled for this item.
    core::CanonicalQueryKey canonical;
    /// The request's timeline; inactive when the recorder is disabled.
    obs::RequestSpan span;
    /// The dataset's catalog, resolved at admission so the worker
    /// never re-routes (and an unknown dataset never reaches a
    /// worker). Normalized dataset id alongside, for the cache key.
    SnapshotCatalog* catalog = nullptr;
    std::string dataset;
  };

  /// One worker's serve loop: pop, check deadline, pin snapshot,
  /// estimate, respond. Returns when the queue closes.
  void ServeLoop();

  /// Completes `item` with a rejection, counts it, and lands its span.
  /// `retry_after` is the server backoff hint (zero = none).
  void Reject(Item item, Status status,
              std::chrono::milliseconds retry_after =
                  std::chrono::milliseconds{0});

  /// Marks the reply stage, stamps the outcome, and hands the finished
  /// span to the recorder. No-op on an inactive span.
  void FinishSpan(Item& item, obs::SpanOutcome outcome);

  /// Shared tail of the public constructors; `owned` is the wrapper
  /// catalog the single-dataset constructor builds (null otherwise).
  EstimateService(DatasetCatalog* datasets,
                  std::unique_ptr<DatasetCatalog> owned,
                  const ServiceOptions& options);

  /// The single-catalog constructor's wrapper; null when the caller
  /// provided a DatasetCatalog. Declared before datasets_ so the
  /// member initializer may read it.
  std::unique_ptr<DatasetCatalog> owned_datasets_;
  DatasetCatalog* const datasets_;
  const ServiceOptions options_;
  const size_t num_workers_;
  /// Health state machine; fed by admission (Assess) and the workers
  /// (ObserveOutcome), flipped degraded by the catalog's rebuild
  /// listener.
  HealthMonitor health_;
  /// Created before the workers, destroyed after them; workers insert
  /// into it and Submit reads it, both through the pointer.
  std::unique_ptr<ResultCache> cache_;
  /// Created before the workers, destroyed after them (lock-free; any
  /// thread records). nullptr disables span tracing.
  std::unique_ptr<obs::FlightRecorder> recorder_;
  FairQueue<Item> queue_;
  util::ThreadPool pool_;
  /// Runs the blocking ParallelFor that hosts the serve loops.
  std::thread dispatcher_;
  std::atomic<bool> shut_down_{false};
  std::mutex shutdown_mutex_;
  /// Request ids for spans, monotone from 1.
  std::atomic<uint64_t> next_request_id_{1};
  /// Accuracy sampler tick: every Nth successful estimate is checked.
  std::atomic<uint64_t> accuracy_tick_{0};
};

}  // namespace twig::serve

#endif  // TWIG_SERVE_SERVICE_H_
