#include "serve/health.h"

#include <algorithm>
#include <utility>

namespace twig::serve {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kBrownout:
      return "browning-out";
  }
  return "ok";
}

HealthMonitor::HealthMonitor(const HealthOptions& options)
    : options_(options), window_(std::max<size_t>(options.window, 1), 0) {}

void HealthMonitor::ObserveOutcome(bool deadline_miss) {
  std::lock_guard<std::mutex> lock(mutex_);
  window_misses_ -= window_[window_pos_];
  window_[window_pos_] = deadline_miss ? 1 : 0;
  window_misses_ += window_[window_pos_];
  window_pos_ = (window_pos_ + 1) % window_.size();
  window_filled_ = std::min(window_filled_ + 1, window_.size());
  last_outcome_ = Clock::now();
}

double HealthMonitor::MissRateLocked() const {
  if (window_filled_ < std::max<size_t>(options_.min_window, 1)) return -1.0;
  return static_cast<double>(window_misses_) /
         static_cast<double>(window_filled_);
}

void HealthMonitor::ResetWindowLocked() {
  std::fill(window_.begin(), window_.end(), 0);
  window_pos_ = 0;
  window_filled_ = 0;
  window_misses_ = 0;
}

HealthState HealthMonitor::Assess(size_t queue_depth, size_t queue_capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double depth_fraction =
      queue_capacity == 0 ? 0.0
                          : static_cast<double>(queue_depth) /
                                static_cast<double>(queue_capacity);
  const double miss_rate = MissRateLocked();
  if (!browning_out_) {
    if (depth_fraction >= options_.brownout_queue_fraction) {
      browning_out_ = true;
      brownout_reason_ = "queue at " + std::to_string(queue_depth) + "/" +
                         std::to_string(queue_capacity);
    } else if (miss_rate >= options_.brownout_miss_rate) {
      browning_out_ = true;
      brownout_reason_ =
          "deadline-miss rate " +
          std::to_string(static_cast<int>(miss_rate * 100)) + "%";
    }
    if (browning_out_) {
      // Recovery judges what happens *after* entry, not the burst that
      // caused it.
      ResetWindowLocked();
      last_outcome_ = Clock::now();
    }
  } else {
    const bool queue_recovered =
        depth_fraction <= options_.recover_queue_fraction;
    const bool rate_recovered =
        miss_rate >= 0.0 ? miss_rate <= options_.recover_miss_rate
                         // Too few post-entry outcomes to judge: only a
                         // quiet period (the pressure stopped) counts.
                         : Clock::now() - last_outcome_ >=
                               options_.quiet_period;
    if (queue_recovered && rate_recovered) {
      browning_out_ = false;
      brownout_reason_.clear();
      ResetWindowLocked();
    }
  }
  if (browning_out_) return HealthState::kBrownout;
  return degraded_ ? HealthState::kDegraded : HealthState::kOk;
}

void HealthMonitor::SetDegraded(std::string reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  degraded_ = true;
  degraded_reason_ = std::move(reason);
}

void HealthMonitor::ClearDegraded() {
  std::lock_guard<std::mutex> lock(mutex_);
  degraded_ = false;
  degraded_reason_.clear();
}

HealthReport HealthMonitor::Report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HealthReport report;
  if (browning_out_) {
    report.state = HealthState::kBrownout;
    report.reason = brownout_reason_;
    report.retry_after = options_.retry_after;
  } else if (degraded_) {
    report.state = HealthState::kDegraded;
    report.reason = degraded_reason_;
  }
  return report;
}

}  // namespace twig::serve
