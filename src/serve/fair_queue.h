// Per-tenant fair admission in front of the estimation workers: token
// buckets for rate, weighted occupancy caps for queue share, and a
// deficit-round-robin drain so one hot tenant cannot starve the rest.
//
// The queue replaces BoundedQueue at the service's admission point
// while keeping its contract: TryPush never blocks (a refusal is a
// structured signal, not a parking lot), Pop blocks (consumers are
// dedicated workers), and Close picks drain-or-drop with nothing
// silently lost. On top of that it adds three tenant disciplines, in
// the order a request meets them:
//
//   1. Token bucket (rate): each tenant accrues `rate` tokens/second
//      up to `burst`; a push with no token is *throttled* — a per-
//      tenant verdict with a retry-after hint telling the client when
//      the next token lands. rate 0 = unlimited (no bucket).
//   2. Occupancy cap (space): a tenant may hold at most
//      capacity * weight / (sum of active tenants' weights) queued
//      items (at least one), where "active" means tenants with queued
//      work plus the pusher. A flooding tenant saturates its own share
//      and is throttled; the remaining capacity stays available to
//      everyone else, so their pushes keep admitting.
//   3. Weighted drain (time): Pop serves tenant subqueues by deficit
//      round-robin — each pass over the active ring grants a tenant
//      `weight` credits and serving one item costs one credit, so
//      long-run worker time divides proportionally to weight. A single
//      active tenant degenerates to plain FIFO.
//
// Tenancy is by name; the empty tenant maps to "default". Tenants are
// created on first push and their admitted/throttled counters persist
// after their queues drain (the stats verb reports lifetime numbers).

#ifndef TWIG_SERVE_FAIR_QUEUE_H_
#define TWIG_SERVE_FAIR_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace twig::serve {

/// The tenant id requests resolve to when they carry none.
inline constexpr const char kDefaultTenant[] = "default";

/// Normalizes a wire-supplied tenant id: empty means "default".
inline std::string_view ResolveTenantId(std::string_view id) {
  return id.empty() ? std::string_view(kDefaultTenant) : id;
}

/// One tenant's admission contract.
struct TenantQuota {
  /// Token-bucket refill, tokens (requests) per second; 0 = unlimited
  /// (the bucket is skipped entirely).
  double rate = 0;
  /// Bucket depth: how large a burst an idle tenant may land at once.
  /// Values below 1 are clamped to 1 (a tenant must be able to send
  /// *something*).
  double burst = 8;
  /// Share of queue space and worker time relative to other tenants.
  /// Clamped to a small positive minimum.
  double weight = 1;
};

/// Quotas for everyone: a default contract plus per-tenant overrides.
struct TenantPolicy {
  TenantQuota defaults;
  std::map<std::string, TenantQuota, std::less<>> overrides;
  /// Retry hint attached to occupancy-cap throttles (a rate throttle
  /// hints the time until the next token instead).
  std::chrono::milliseconds occupancy_retry{10};

  const TenantQuota& QuotaFor(std::string_view tenant) const {
    auto it = overrides.find(tenant);
    return it == overrides.end() ? defaults : it->second;
  }
};

/// Lifetime accounting for one tenant, for the `stats` verb.
struct TenantStats {
  std::string tenant;
  uint64_t admitted = 0;
  uint64_t throttled = 0;
  size_t queued = 0;
  double weight = 1;
};

template <typename T>
class FairQueue {
 public:
  enum class PushVerdict {
    kAdmitted,   // queued; Pop will deliver it
    kThrottled,  // tenant out of tokens or over its occupancy share
    kFull,       // queue at total capacity (tenant-independent overload)
    kClosed,     // shutting down
  };

  using Clock = std::chrono::steady_clock;

  explicit FairQueue(size_t capacity, TenantPolicy policy = {})
      : capacity_(capacity == 0 ? 1 : capacity),
        policy_(std::move(policy)) {}

  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  /// Enqueues `item` under `tenant` (empty = "default"), or refuses
  /// without blocking. The item is untouched on refusal, so the caller
  /// can still complete it. On kThrottled, `*retry_after` (when
  /// non-null) is set to the backoff hint: time until the tenant's
  /// next token, or the policy's occupancy_retry for a share cap.
  PushVerdict TryPush(std::string_view tenant, T& item,
                      std::chrono::milliseconds* retry_after = nullptr,
                      Clock::time_point now = Clock::now()) {
    const std::string_view id = ResolveTenantId(tenant);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushVerdict::kClosed;
      Tenant& state = TenantFor(id);
      if (state.quota.rate > 0 && !TakeToken(state, now)) {
        ++state.throttled;
        if (retry_after != nullptr) *retry_after = TokenWait(state);
        return PushVerdict::kThrottled;
      }
      if (total_queued_ >= capacity_) {
        // Tenant-independent overload. No token was minted back: the
        // tenant did spend its rate allowance trying.
        return PushVerdict::kFull;
      }
      if (state.queue.size() >= OccupancyCap(state)) {
        ++state.throttled;
        if (retry_after != nullptr) *retry_after = policy_.occupancy_retry;
        return PushVerdict::kThrottled;
      }
      state.queue.push_back(std::move(item));
      ++total_queued_;
      ++state.admitted;
      if (state.queue.size() == 1) Activate(&state);
    }
    ready_.notify_one();
    return PushVerdict::kAdmitted;
  }

  /// Blocks until an item is available (returned) or the queue will
  /// never produce one again (nullopt): closed with drain once empty,
  /// or closed without drain immediately. Items are delivered by
  /// deficit round-robin over tenants with queued work.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || total_queued_ > 0; });
    if (total_queued_ == 0 || (closed_ && !drain_)) return std::nullopt;
    // DRR: visit the active ring; a visit with credit serves one item
    // (cost 1), a visit without refills by `weight` and moves on. Every
    // pass grants each active tenant weight credits, so service rates
    // are weight-proportional. Terminates: credits strictly grow on
    // non-serving visits and some queue is nonempty.
    for (;;) {
      Tenant* tenant = active_[cursor_ % active_.size()];
      if (tenant->credit < 1.0) {
        tenant->credit += tenant->weight;
        cursor_ = (cursor_ + 1) % active_.size();
        continue;
      }
      tenant->credit -= 1.0;
      T item = std::move(tenant->queue.front());
      tenant->queue.pop_front();
      --total_queued_;
      if (tenant->queue.empty()) Deactivate(tenant);
      return item;
    }
  }

  /// Closes the queue: every subsequent TryPush refuses with kClosed.
  /// With `drain`, consumers keep popping until empty; without it they
  /// wake with nullopt at once and the unconsumed items are returned
  /// for the caller to complete. Idempotent.
  std::vector<T> Close(bool drain) {
    std::vector<T> leftovers;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!closed_) {
        closed_ = true;
        drain_ = drain;
        if (!drain) {
          leftovers.reserve(total_queued_);
          for (auto& [id, tenant] : tenants_) {
            for (T& item : tenant.queue) leftovers.push_back(std::move(item));
            tenant.queue.clear();
          }
          total_queued_ = 0;
          active_.clear();
          cursor_ = 0;
        }
      }
    }
    ready_.notify_all();
    return leftovers;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_queued_;
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Lifetime per-tenant accounting, sorted by tenant id. Tenants that
  /// ever pushed are reported even when currently idle.
  std::vector<TenantStats> tenant_stats() const {
    std::vector<TenantStats> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(tenants_.size());
    for (const auto& [id, tenant] : tenants_) {
      TenantStats stats;
      stats.tenant = id;
      stats.admitted = tenant.admitted;
      stats.throttled = tenant.throttled;
      stats.queued = tenant.queue.size();
      stats.weight = tenant.weight;
      out.push_back(std::move(stats));
    }
    return out;
  }

 private:
  struct Tenant {
    TenantQuota quota;
    double weight = 1;           // quota.weight, clamped positive
    double tokens = 0;           // current bucket level
    Clock::time_point refilled;  // last bucket update
    std::deque<T> queue;
    double credit = 0;           // DRR deficit counter
    bool active = false;         // member of active_
    uint64_t admitted = 0;
    uint64_t throttled = 0;
  };

  Tenant& TenantFor(std::string_view id) {
    auto it = tenants_.find(id);
    if (it != tenants_.end()) return it->second;
    Tenant tenant;
    tenant.quota = policy_.QuotaFor(id);
    tenant.quota.burst = std::max(1.0, tenant.quota.burst);
    tenant.weight = std::max(1e-3, tenant.quota.weight);
    tenant.tokens = tenant.quota.burst;  // a fresh tenant may burst
    tenant.refilled = Clock::now();
    return tenants_.emplace(std::string(id), std::move(tenant))
        .first->second;
  }

  bool TakeToken(Tenant& tenant, Clock::time_point now) {
    if (now > tenant.refilled) {
      const double dt = std::chrono::duration<double>(now - tenant.refilled)
                            .count();
      tenant.tokens =
          std::min(tenant.quota.burst, tenant.tokens + dt * tenant.quota.rate);
      tenant.refilled = now;
    }
    if (tenant.tokens < 1.0) return false;
    tenant.tokens -= 1.0;
    return true;
  }

  std::chrono::milliseconds TokenWait(const Tenant& tenant) const {
    const double deficit = std::max(0.0, 1.0 - tenant.tokens);
    const double ms = std::ceil(deficit / tenant.quota.rate * 1e3);
    return std::chrono::milliseconds(
        std::max<int64_t>(1, static_cast<int64_t>(ms)));
  }

  /// The pusher's queue-space share: capacity split by weight over the
  /// tenants currently holding work (the pusher included), never below
  /// one slot. Recomputed per push — shares tighten as more tenants
  /// activate and relax as they drain.
  size_t OccupancyCap(const Tenant& pusher) const {
    double active_weight = pusher.active ? 0.0 : pusher.weight;
    for (const Tenant* tenant : active_) active_weight += tenant->weight;
    const double share = static_cast<double>(capacity_) * pusher.weight /
                         std::max(pusher.weight, active_weight);
    return std::max<size_t>(1, static_cast<size_t>(share));
  }

  void Activate(Tenant* tenant) {
    if (tenant->active) return;
    tenant->active = true;
    tenant->credit = std::max(tenant->credit, tenant->weight);
    active_.push_back(tenant);
  }

  void Deactivate(Tenant* tenant) {
    tenant->active = false;
    tenant->credit = 0;
    auto it = std::find(active_.begin(), active_.end(), tenant);
    const size_t index = static_cast<size_t>(it - active_.begin());
    active_.erase(it);
    // Keep the cursor on the element that followed the removed one.
    if (!active_.empty() && cursor_ > index) --cursor_;
    if (!active_.empty()) cursor_ %= active_.size();
  }

  const size_t capacity_;
  const TenantPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  /// Node-stable map: Tenant* stays valid across inserts, so active_
  /// may hold raw pointers.
  std::map<std::string, Tenant, std::less<>> tenants_;
  /// Tenants with queued work, in DRR ring order.
  std::vector<Tenant*> active_;
  size_t cursor_ = 0;
  size_t total_queued_ = 0;
  bool closed_ = false;
  bool drain_ = true;
};

}  // namespace twig::serve

#endif  // TWIG_SERVE_FAIR_QUEUE_H_
