// Client-side retry policy: capped exponential backoff with
// decorrelated jitter, a retry token budget, and deadline awareness.
//
// Shared between twig_client and bench_serve so "goodput under
// injected faults" is measured with exactly the retry behavior real
// clients run.
//
// Semantics:
//   * Retryable means transient: kUnavailable only (overload, brown-
//     out shedding, injected faults, shutdown races; the client maps
//     transport-level I/O errors to Unavailable before asking).
//     kInvalidArgument, kCorruption, kDeadlineExceeded etc. are
//     answers, not weather — retrying them burns the server for
//     nothing.
//   * Backoff is decorrelated jitter (Brooker): sleep_n is drawn
//     uniformly from [base, 3 * sleep_{n-1}], capped. Independent
//     clients desynchronize instead of retrying in lockstep.
//   * A server Retry-After hint floors the drawn backoff — the server
//     knows how long its brown-out lasts better than the client does.
//   * Deadline-aware: a retry whose backoff would land past the
//     request deadline is not granted; the caller reports the last
//     real error instead of burning the remaining budget.
//   * The token budget bounds retry amplification under sustained
//     failure: a retry costs one token, a success earns a fraction
//     (budget_ratio) back. When the bucket is empty, first attempts
//     still flow — only retries are suppressed — so a fleet of
//     retrying clients cannot multiply overload.
//
// Granted retries count obs::Counter::kRetries.

#ifndef TWIG_SERVE_RETRY_H_
#define TWIG_SERVE_RETRY_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>

#include "util/rng.h"
#include "util/status.h"

namespace twig::serve {

struct RetryOptions {
  /// Total attempts, the first included. 1 disables retries.
  int max_attempts = 4;
  /// First backoff and the jitter draw's lower bound.
  std::chrono::milliseconds base_backoff{2};
  /// Backoff ceiling.
  std::chrono::milliseconds max_backoff{250};
  /// Tokens earned back per successful request.
  double budget_ratio = 0.1;
  /// Token bucket capacity (also the initial balance).
  double budget_cap = 10.0;
  /// Jitter seed; policies with the same seed draw the same sequence.
  uint64_t seed = 0x5e771eULL;
};

/// Thread-safe: one policy is typically shared by all of a client's
/// connections so the budget is global to the process.
class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryOptions& options = {});

  RetryPolicy(const RetryPolicy&) = delete;
  RetryPolicy& operator=(const RetryPolicy&) = delete;

  /// Is this failure transient, i.e. worth retrying at all?
  static bool IsRetryable(const Status& status) {
    return status.code() == StatusCode::kUnavailable;
  }

  /// Decides whether to retry after `status` failed attempt number
  /// `attempt` (1-based: 1 = the initial try). Returns the backoff to
  /// sleep before the next attempt, or nullopt to give up (non-
  /// retryable error, attempts exhausted, budget empty, or the backoff
  /// would land past `deadline`). `server_hint` is the server's
  /// Retry-After (zero = none); it floors the drawn backoff.
  std::optional<std::chrono::milliseconds> NextBackoff(
      const Status& status, int attempt,
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max(),
      std::chrono::milliseconds server_hint = std::chrono::milliseconds{0});

  /// Feeds the budget: a success earns budget_ratio tokens (capped).
  void RecordSuccess();

  /// Current token balance (for tests and stats).
  double budget() const;

 private:
  const RetryOptions options_;
  mutable std::mutex mutex_;
  Rng rng_;
  double tokens_;
  std::chrono::milliseconds prev_backoff_;
};

}  // namespace twig::serve

#endif  // TWIG_SERVE_RETRY_H_
