// The serving layer's health state machine: ok / degraded / browning
// out, driven by queue depth and deadline-miss rate.
//
// Brown-out is the load-shedding state: entered when the bounded queue
// is nearly full or a sliding window of recent request outcomes shows
// a high deadline-miss rate, exited with hysteresis (the queue must
// drain well below the entry threshold and the post-entry miss rate
// must subside, or the traffic that produced the misses must stop
// entirely for a quiet period). While browning out, the service keeps
// answering result-cache hits — they cost no worker time — and sheds
// uncached work at admission with a Retry-After hint, so upstream
// retry policies spread the returning load instead of stampeding.
//
// Degraded is the sticky operator-facing state: something is wrong but
// the service still answers from the last good snapshot (the canonical
// producer is a failed rebuild — e.g. a corrupt TWCST02 blob — which
// leaves the previous snapshot published). It carries a reason string
// for the `health` wire verb and clears when the condition does (the
// next successful rebuild).
//
// Brown-out outranks degraded in the report: shedding changes caller
// behavior now, degraded is advisory.

#ifndef TWIG_SERVE_HEALTH_H_
#define TWIG_SERVE_HEALTH_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace twig::serve {

enum class HealthState : uint8_t {
  kOk,
  kDegraded,  // last good snapshot still answering; reason attached
  kBrownout,  // shedding uncached work at admission
};

/// Stable name ("ok", "degraded", "browning-out") for the wire.
const char* HealthStateName(HealthState state);

struct HealthOptions {
  /// Queue depth fraction at which brown-out begins.
  double brownout_queue_fraction = 0.9;
  /// Queue depth fraction the queue must drain to before brown-out can
  /// end (hysteresis: strictly below the entry fraction).
  double recover_queue_fraction = 0.5;
  /// Deadline-miss rate over the outcome window that begins brown-out.
  double brownout_miss_rate = 0.5;
  /// Post-entry miss rate below which brown-out can end.
  double recover_miss_rate = 0.1;
  /// Outcomes retained in the sliding window.
  size_t window = 128;
  /// Outcomes required before the miss rate is trusted at all.
  size_t min_window = 16;
  /// The Retry-After hint attached to shed responses.
  std::chrono::milliseconds retry_after{50};
  /// With no new outcomes for this long, a stale window no longer
  /// holds brown-out open (the misses it remembers are history).
  std::chrono::milliseconds quiet_period{250};
};

/// What the `health` wire verb reports.
struct HealthReport {
  HealthState state = HealthState::kOk;
  /// Why (nonempty for degraded and brown-out).
  std::string reason;
  /// Suggested client backoff; zero outside brown-out.
  std::chrono::milliseconds retry_after{0};
};

/// Thread-safe; one per EstimateService. Workers feed ObserveOutcome,
/// admission calls Assess, the rebuild listener flips the degraded
/// flag.
class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthOptions& options = {});

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Records one finished request: did it miss its deadline?
  void ObserveOutcome(bool deadline_miss);

  /// Re-evaluates brown-out against the queue and returns the state
  /// admission should act on (brown-out wins over degraded).
  HealthState Assess(size_t queue_depth, size_t queue_capacity);

  /// Enters (or re-reasons) the sticky degraded state.
  void SetDegraded(std::string reason);

  /// Leaves degraded (no-op when not degraded).
  void ClearDegraded();

  /// Point-in-time view for the `health` verb. Does not re-run the
  /// brown-out transition logic — call Assess for that.
  HealthReport Report() const;

  std::chrono::milliseconds retry_after() const {
    return options_.retry_after;
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// Miss rate over the current window; -1 with too few outcomes.
  double MissRateLocked() const;
  void ResetWindowLocked();

  const HealthOptions options_;
  mutable std::mutex mutex_;
  std::vector<uint8_t> window_;  // 1 = deadline miss
  size_t window_pos_ = 0;
  size_t window_filled_ = 0;
  size_t window_misses_ = 0;
  Clock::time_point last_outcome_{};
  bool browning_out_ = false;
  std::string brownout_reason_;
  bool degraded_ = false;
  std::string degraded_reason_;
};

}  // namespace twig::serve

#endif  // TWIG_SERVE_HEALTH_H_
