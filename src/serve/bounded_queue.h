// A bounded MPMC queue with explicit overload and shutdown semantics,
// built for admission control in front of the estimation workers.
//
// Design choices, in order of importance:
//   * TryPush never blocks: a full queue is an *overload signal* the
//     caller turns into a structured rejection, not a place to park
//     unbounded producers (the reject-rather-than-buffer discipline of
//     the serving layer).
//   * Pop blocks, because consumers are dedicated workers with nothing
//     better to do.
//   * Close picks one of two documented endgames: drain (consumers
//     keep receiving queued items until empty — graceful shutdown) or
//     drop (queued items are *returned to the closer*, who must still
//     complete them, e.g. by rejecting each one — nothing is silently
//     lost either way).

#ifndef TWIG_SERVE_BOUNDED_QUEUE_H_
#define TWIG_SERVE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace twig::serve {

template <typename T>
class BoundedQueue {
 public:
  /// A zero capacity would make every push an overload; treat it as 1.
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item`, or returns false without blocking when the queue
  /// is full (overload) or closed (shutdown). The item is untouched on
  /// failure, so the caller can still complete it.
  bool TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available (returned) or the queue will
  /// never produce one again (nullopt): closed with drain once empty,
  /// or closed without drain immediately.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty() || (closed_ && !drain_)) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: every subsequent TryPush fails. With `drain`,
  /// consumers keep popping until the queue empties; without it they
  /// wake with nullopt at once and the unconsumed items are returned
  /// here for the caller to complete. Idempotent — later calls return
  /// no items and cannot turn drain into drop or back.
  std::vector<T> Close(bool drain) {
    std::vector<T> leftovers;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!closed_) {
        closed_ = true;
        drain_ = drain;
        if (!drain) {
          leftovers.reserve(items_.size());
          for (T& item : items_) leftovers.push_back(std::move(item));
          items_.clear();
        }
      }
    }
    ready_.notify_all();
    return leftovers;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
  bool drain_ = true;
};

}  // namespace twig::serve

#endif  // TWIG_SERVE_BOUNDED_QUEUE_H_
