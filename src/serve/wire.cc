#include "serve/wire.h"

#include <cmath>
#include <utility>

#include "obs/json.h"

namespace twig::serve {

namespace {

double ToMicros(std::chrono::nanoseconds d) {
  return static_cast<double>(d.count()) / 1e3;
}

/// Opens the response object and writes the envelope fields shared by
/// every response: id (when the request carried one), ok, op.
void BeginResponse(obs::JsonWriter& writer, const WireRequest* request,
                   bool ok) {
  writer.BeginObject();
  if (request != nullptr && request->has_id) {
    writer.Key("id");
    writer.Uint(request->id);
  }
  writer.Key("ok");
  writer.Bool(ok);
  if (request != nullptr && !request->op.empty()) {
    writer.Key("op");
    writer.String(request->op);
  }
  // Multi-dataset clients get their routing echoed back; requests
  // that carried no dataset see the exact pre-dataset envelope.
  if (request != nullptr && !request->dataset.empty()) {
    writer.Key("dataset");
    writer.String(request->dataset);
  }
}

}  // namespace

bool IsFiniteNonNegative(double value, double max) {
  // Written so NaN fails: NaN >= 0 and NaN <= max are both false.
  return std::isfinite(value) && value >= 0 && value <= max;
}

bool ParseAlgorithmName(std::string_view name, core::Algorithm* out) {
  for (core::Algorithm algorithm : core::kAllAlgorithms) {
    if (name == core::AlgorithmName(algorithm)) {
      *out = algorithm;
      return true;
    }
  }
  return false;
}

Result<WireRequest> ParseRequest(std::string_view line) {
  Result<obs::JsonValue> parsed = obs::ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const obs::JsonValue& root = parsed.value();
  if (root.kind != obs::JsonValue::Kind::kObject) {
    return Status::ParseError("request must be a JSON object");
  }

  WireRequest request;
  const obs::JsonValue* op = root.Find("op");
  if (op == nullptr || op->kind != obs::JsonValue::Kind::kString) {
    return Status::ParseError("request needs a string \"op\"");
  }
  request.op = op->string_value;

  if (const obs::JsonValue* id = root.Find("id"); id != nullptr) {
    if (id->kind != obs::JsonValue::Kind::kNumber || id->number_value < 0) {
      return Status::ParseError("\"id\" must be a non-negative number");
    }
    request.has_id = true;
    request.id = static_cast<uint64_t>(id->number_value);
  }

  if (const obs::JsonValue* query = root.Find("query"); query != nullptr) {
    if (query->kind != obs::JsonValue::Kind::kString) {
      return Status::ParseError("\"query\" must be a string");
    }
    request.query = query->string_value;
  }

  if (const obs::JsonValue* algo = root.Find("algo"); algo != nullptr) {
    if (algo->kind != obs::JsonValue::Kind::kString ||
        !ParseAlgorithmName(algo->string_value, &request.algorithm)) {
      return Status::ParseError("\"algo\" must name an algorithm (Leaf, "
                                "Greedy, MO, MOSH, PMOSH, MSH)");
    }
  }

  if (const obs::JsonValue* semantics = root.Find("semantics");
      semantics != nullptr) {
    if (semantics->kind == obs::JsonValue::Kind::kString &&
        semantics->string_value == "occurrence") {
      request.semantics = core::CountSemantics::kOccurrence;
    } else if (semantics->kind == obs::JsonValue::Kind::kString &&
               semantics->string_value == "presence") {
      request.semantics = core::CountSemantics::kPresence;
    } else {
      return Status::ParseError(
          "\"semantics\" must be \"occurrence\" or \"presence\"");
    }
  }

  if (const obs::JsonValue* deadline = root.Find("deadline_ms");
      deadline != nullptr) {
    if (deadline->kind != obs::JsonValue::Kind::kNumber) {
      return Status::ParseError("\"deadline_ms\" must be a number");
    }
    if (!IsFiniteNonNegative(deadline->number_value, kMaxDeadlineMs)) {
      return Status::InvalidArgument(
          "\"deadline_ms\" must be a finite number in [0, 1e9]");
    }
    request.deadline_ms = deadline->number_value;
  }

  if (const obs::JsonValue* space = root.Find("space"); space != nullptr) {
    if (space->kind != obs::JsonValue::Kind::kNumber) {
      return Status::ParseError("\"space\" must be a number");
    }
    if (!IsFiniteNonNegative(space->number_value, kMaxSpaceFraction)) {
      return Status::InvalidArgument(
          "\"space\" must be a finite number in [0, 1e6]");
    }
    request.space = space->number_value;
  }

  if (const obs::JsonValue* spec = root.Find("spec"); spec != nullptr) {
    if (spec->kind != obs::JsonValue::Kind::kString) {
      return Status::ParseError("\"spec\" must be a string");
    }
    request.spec = spec->string_value;
  }

  // Dataset and tenant ids are bounded: both become map keys on the
  // server (tenant state persists for the process), so an adversarial
  // client must not be able to key unbounded state with huge names.
  if (const obs::JsonValue* dataset = root.Find("dataset");
      dataset != nullptr) {
    if (dataset->kind != obs::JsonValue::Kind::kString ||
        dataset->string_value.size() > kMaxIdBytes) {
      return Status::ParseError(
          "\"dataset\" must be a string of at most 256 bytes");
    }
    request.dataset = dataset->string_value;
  }

  if (const obs::JsonValue* tenant = root.Find("tenant"); tenant != nullptr) {
    if (tenant->kind != obs::JsonValue::Kind::kString ||
        tenant->string_value.size() > kMaxIdBytes) {
      return Status::ParseError(
          "\"tenant\" must be a string of at most 256 bytes");
    }
    request.tenant = tenant->string_value;
  }

  return request;
}

std::string ErrorResponse(const WireRequest* request, const Status& status,
                          std::chrono::milliseconds retry_after) {
  obs::JsonWriter writer;
  BeginResponse(writer, request, /*ok=*/false);
  writer.Key("error");
  writer.BeginObject();
  writer.Key("code");
  writer.String(StatusCodeToString(status.code()));
  writer.Key("message");
  writer.String(status.message());
  if (retry_after.count() > 0) {
    writer.Key("retry_after_ms");
    writer.Uint(static_cast<uint64_t>(retry_after.count()));
  }
  writer.EndObject();
  writer.EndObject();
  return std::move(writer).str();
}

std::string EstimateWireResponse(const WireRequest& request,
                                 const EstimateResponse& response) {
  if (!response.status.ok()) {
    return ErrorResponse(&request, response.status, response.retry_after);
  }
  obs::JsonWriter writer;
  BeginResponse(writer, &request, /*ok=*/true);
  writer.Key("estimate");
  writer.Double(response.estimate);
  if (!std::isfinite(response.estimate)) {
    // Double() rendered null (NaN/Inf are not JSON); flag it so
    // clients can tell "no number" from a bug in their parser.
    writer.Key("estimate_error");
    writer.String("non-finite estimate");
  }
  writer.Key("cached");
  writer.Bool(response.cached);
  writer.Key("algo");
  writer.String(core::AlgorithmName(request.algorithm));
  writer.Key("version");
  writer.Uint(response.snapshot_version);
  writer.Key("wait_us");
  writer.Double(ToMicros(response.queue_wait));
  writer.Key("exec_us");
  writer.Double(ToMicros(response.exec_time));
  writer.EndObject();
  return std::move(writer).str();
}

std::string PingResponse(const WireRequest& request, uint64_t version,
                         size_t queue_depth) {
  obs::JsonWriter writer;
  BeginResponse(writer, &request, /*ok=*/true);
  writer.Key("version");
  writer.Uint(version);
  writer.Key("queue_depth");
  writer.Uint(queue_depth);
  writer.EndObject();
  return std::move(writer).str();
}

std::string MetricsResponse(const WireRequest& request,
                            std::string_view metrics_json, uint64_t version,
                            size_t queue_depth, size_t queue_capacity) {
  obs::JsonWriter writer;
  BeginResponse(writer, &request, /*ok=*/true);
  writer.Key("version");
  writer.Uint(version);
  writer.Key("queue_depth");
  writer.Uint(queue_depth);
  writer.Key("queue_capacity");
  writer.Uint(queue_capacity);
  writer.Key("metrics");
  writer.RawValue(metrics_json);
  writer.EndObject();
  return std::move(writer).str();
}

std::string SwapResponse(const WireRequest& request, uint64_t version) {
  obs::JsonWriter writer;
  BeginResponse(writer, &request, /*ok=*/true);
  writer.Key("version");
  writer.Uint(version);
  writer.EndObject();
  return std::move(writer).str();
}

std::string ExplainResponse(const WireRequest& request,
                            std::string_view trace_json, uint64_t version) {
  obs::JsonWriter writer;
  BeginResponse(writer, &request, /*ok=*/true);
  writer.Key("version");
  writer.Uint(version);
  writer.Key("trace");
  writer.RawValue(trace_json);
  writer.EndObject();
  return std::move(writer).str();
}

std::string StatsResponse(const WireRequest& request,
                          const obs::MetricsSnapshot& snapshot,
                          const obs::FlightRecorder* recorder,
                          uint64_t version, size_t queue_depth,
                          size_t queue_capacity,
                          const std::vector<DatasetWireInfo>& datasets,
                          const std::vector<TenantStats>& tenants) {
  obs::JsonWriter writer;
  BeginResponse(writer, &request, /*ok=*/true);
  writer.Key("version");
  writer.Uint(version);
  writer.Key("schema_version");
  writer.Uint(obs::kMetricsSchemaVersion);
  writer.Key("queue_depth");
  writer.Uint(queue_depth);
  writer.Key("queue_capacity");
  writer.Uint(queue_capacity);
  writer.Key("latency");
  writer.BeginObject();
  for (size_t s = 0; s < obs::kLatencySeries; ++s) {
    const obs::LatencyPercentiles p =
        obs::SummarizeLatency(snapshot.latency[s]);
    writer.Key(obs::kLatencySeriesNames[s]);
    writer.BeginObject();
    writer.Key("count");
    writer.Uint(p.count);
    writer.Key("mean_us");
    writer.Double(p.mean_us);
    writer.Key("p50_us");
    writer.Double(p.p50_us);
    writer.Key("p90_us");
    writer.Double(p.p90_us);
    writer.Key("p95_us");
    writer.Double(p.p95_us);
    writer.Key("p99_us");
    writer.Double(p.p99_us);
    writer.EndObject();
  }
  writer.EndObject();
  writer.Key("accuracy");
  writer.BeginObject();
  writer.Key("recorded");
  writer.Uint(snapshot.accuracy.recorded);
  writer.Key("window");
  writer.Uint(snapshot.accuracy.window.size());
  writer.Key("mean");
  writer.Double(snapshot.accuracy.Mean());
  writer.Key("mean_abs");
  writer.Double(snapshot.accuracy.MeanAbs());
  writer.Key("p50_abs");
  writer.Double(snapshot.accuracy.QuantileAbs(0.5));
  writer.Key("p99_abs");
  writer.Double(snapshot.accuracy.QuantileAbs(0.99));
  writer.EndObject();
  writer.Key("recorder");
  writer.BeginObject();
  writer.Key("enabled");
  writer.Bool(recorder != nullptr);
  if (recorder != nullptr) {
    const obs::FlightRecorder::Stats stats = recorder->stats();
    writer.Key("capacity");
    writer.Uint(stats.capacity);
    writer.Key("recorded");
    writer.Uint(stats.recorded);
    writer.Key("dropped");
    writer.Uint(stats.dropped);
    writer.Key("slow_capacity");
    writer.Uint(stats.slow_capacity);
    writer.Key("slow_recorded");
    writer.Uint(stats.slow_recorded);
    writer.Key("slow_threshold_us");
    writer.Double(static_cast<double>(stats.slow_threshold_ns) / 1e3);
  }
  writer.EndObject();
  if (!datasets.empty()) {
    writer.Key("datasets");
    writer.BeginObject();
    for (const DatasetWireInfo& info : datasets) {
      writer.Key(info.dataset);
      writer.BeginObject();
      writer.Key("version");
      writer.Uint(info.version);
      writer.EndObject();
    }
    writer.EndObject();
  }
  if (!tenants.empty()) {
    writer.Key("tenants");
    writer.BeginArray();
    for (const TenantStats& tenant : tenants) {
      writer.BeginObject();
      writer.Key("tenant");
      writer.String(tenant.tenant);
      writer.Key("admitted");
      writer.Uint(tenant.admitted);
      writer.Key("throttled");
      writer.Uint(tenant.throttled);
      writer.Key("queued");
      writer.Uint(tenant.queued);
      writer.Key("weight");
      writer.Double(tenant.weight);
      writer.EndObject();
    }
    writer.EndArray();
  }
  writer.EndObject();
  return std::move(writer).str();
}

std::string RecentResponse(const WireRequest& request,
                           const obs::FlightRecorder* recorder,
                           uint64_t version) {
  if (recorder == nullptr) {
    return ErrorResponse(
        &request, Status::Unavailable("span tracing is disabled "
                                      "(--recorder-entries=0)"));
  }
  const obs::FlightRecorder::Stats stats = recorder->stats();
  obs::JsonWriter writer;
  BeginResponse(writer, &request, /*ok=*/true);
  writer.Key("version");
  writer.Uint(version);
  writer.Key("recorded");
  writer.Uint(stats.recorded);
  writer.Key("dropped");
  writer.Uint(stats.dropped);
  writer.Key("spans");
  writer.RawValue(recorder->SpansJson());
  writer.Key("slow");
  writer.RawValue(recorder->SlowJson());
  writer.EndObject();
  return std::move(writer).str();
}

std::string ShutdownResponse(const WireRequest& request) {
  obs::JsonWriter writer;
  BeginResponse(writer, &request, /*ok=*/true);
  writer.Key("stopping");
  writer.Bool(true);
  writer.EndObject();
  return std::move(writer).str();
}

std::string HealthResponse(const WireRequest& request,
                           const HealthReport& report, uint64_t version) {
  obs::JsonWriter writer;
  BeginResponse(writer, &request, /*ok=*/true);
  writer.Key("version");
  writer.Uint(version);
  writer.Key("state");
  writer.String(HealthStateName(report.state));
  if (!report.reason.empty()) {
    writer.Key("reason");
    writer.String(report.reason);
  }
  if (report.retry_after.count() > 0) {
    writer.Key("retry_after_ms");
    writer.Uint(static_cast<uint64_t>(report.retry_after.count()));
  }
  writer.EndObject();
  return std::move(writer).str();
}

std::string FailpointResponse(const WireRequest& request,
                              const std::vector<util::FailpointInfo>& infos) {
  obs::JsonWriter writer;
  BeginResponse(writer, &request, /*ok=*/true);
  writer.Key("failpoints");
  writer.BeginArray();
  for (const util::FailpointInfo& info : infos) {
    writer.BeginObject();
    writer.Key("name");
    writer.String(info.name);
    writer.Key("action");
    writer.String(util::FailpointActionName(info.action));
    writer.Key("probability");
    writer.Double(info.probability);
    writer.Key("delay_ms");
    writer.Uint(info.delay_ms);
    writer.Key("hits");
    writer.Uint(info.hits);
    writer.Key("triggers");
    writer.Uint(info.triggers);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return std::move(writer).str();
}

}  // namespace twig::serve
