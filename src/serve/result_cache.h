// Snapshot-versioned estimate cache for the serving path.
//
// Skewed serving workloads recompute the same hot estimates on every
// request; this cache answers them from memory instead. An entry is
// keyed by (snapshot version, algorithm, semantics, canonical twig),
// so the design inherits hot-swap correctness from the RCU snapshot
// protocol for free:
//
//   * The canonical twig key (core::CanonicalizeQuery) is the printed
//     form FormatTwig emits, so syntactically different spellings of
//     the same query share one entry.
//   * Snapshot versions are monotone and a CstSnapshot is immutable,
//     so a cached value is correct for its version forever. There is
//     no invalidation: publishing version N+1 simply orphans the
//     version-N entries — no lookup keyed N+1 can ever see them — and
//     the LRU bound ages them out as new-version traffic displaces
//     them.
//   * Values are the bit-exact estimator output for that version, so
//     a hit is indistinguishable from a recompute (minus the latency).
//
// Fingerprints are 64-bit; a collision between two live queries is
// astronomically unlikely but not impossible, so entries carry the
// canonical text and lookups compare it — a collision degrades to a
// miss, never to a wrong answer.
//
// The cache is sharded: each shard owns a mutex, an LRU list, and a
// hash index, so concurrent admission-path lookups from many
// connection threads contend only 1/num_shards of the time. Every
// lookup and eviction feeds obs::MetricsRegistry
// (serve_cache_hits/misses/evictions) in addition to the cache's own
// cheap aggregate stats.

#ifndef TWIG_SERVE_RESULT_CACHE_H_
#define TWIG_SERVE_RESULT_CACHE_H_

#include <chrono>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/canonical.h"
#include "core/combine.h"
#include "core/estimator.h"
#include "query/twig.h"

namespace twig::serve {

struct ResultCacheOptions {
  /// Total cached estimates across all shards (the LRU bound). Each
  /// shard holds max_entries / num_shards, at least one.
  size_t max_entries = 4096;
  /// Concurrency shards; rounded up to a power of two, capped so no
  /// shard is created empty.
  size_t num_shards = 8;
};

/// One cached answer: the estimator's bit-exact output for the keyed
/// snapshot version, plus the execution cost of the original compute
/// (echoed on hits so wire timings and dashboards stay meaningful —
/// a hit's own latency is tracked separately in the serve_cache_hit
/// series).
struct CachedEstimate {
  double estimate = 0;
  uint64_t snapshot_version = 0;
  std::chrono::nanoseconds exec_time{0};
};

class ResultCache {
 public:
  /// A fully-derived cache key. Build with MakeKey (from a twig) or
  /// MakeKeyFromCanonical (from an already-canonicalized query, e.g.
  /// when re-keying the same request under the snapshot version that
  /// actually served it).
  struct Key {
    uint64_t snapshot_version = 0;
    core::Algorithm algorithm = core::Algorithm::kMsh;
    core::CountSemantics semantics = core::CountSemantics::kOccurrence;
    uint64_t fingerprint = 0;  // canonical fingerprint (text+algo+sem)
    std::string canonical_text;
    /// The serving dataset the answer belongs to. Each dataset runs
    /// its own snapshot version sequence, so two corpora both at
    /// version N would conflate without this component — identical
    /// canonical twigs on different trees must never share an entry.
    /// Empty means the default dataset (single-dataset callers never
    /// set it).
    std::string dataset;

    /// The shard/index hash: fingerprint mixed with the version and
    /// the dataset id.
    uint64_t IndexHash() const;
  };

  static Key MakeKey(uint64_t snapshot_version, core::Algorithm algorithm,
                     core::CountSemantics semantics, const query::Twig& twig,
                     std::string_view dataset = {});
  static Key MakeKeyFromCanonical(uint64_t snapshot_version,
                                  core::Algorithm algorithm,
                                  core::CountSemantics semantics,
                                  core::CanonicalQueryKey canonical,
                                  std::string_view dataset = {});

  explicit ResultCache(const ResultCacheOptions& options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// True and fills `*out` when an entry matches `key` exactly
  /// (version, algorithm, semantics, and canonical text); the entry
  /// becomes most-recently-used. Counts a hit or a miss either way.
  bool Lookup(const Key& key, CachedEstimate* out);

  /// Inserts (or refreshes) the entry for `key`, evicting the shard's
  /// least-recently-used entry when the shard is at capacity.
  void Insert(const Key& key, const CachedEstimate& value);

  /// Aggregate accounting across shards (consistent per shard, not
  /// across shards — counters, not a snapshot barrier).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  Stats stats() const;

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    Key key;
    CachedEstimate value;
  };

  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru;
    /// IndexHash -> LRU position. One slot per index hash: a hash
    /// collision between distinct keys overwrites (vanishingly rare,
    /// and Lookup's exact compare keeps it correct).
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(uint64_t index_hash) {
    return shards_[(index_hash >> 48) & shard_mask_];
  }

  std::vector<Shard> shards_;
  uint64_t shard_mask_ = 0;
  size_t per_shard_capacity_ = 0;
  size_t capacity_ = 0;
};

}  // namespace twig::serve

#endif  // TWIG_SERVE_RESULT_CACHE_H_
