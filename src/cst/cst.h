// The correlated subpath tree (CST) — the paper's summary data
// structure (Section 3).
//
// A CST is a pruned path suffix tree whose every retained subpath
// carries:
//   * the presence count  C_p = number of distinct data nodes rooting
//     the subpath (for character-only subpaths: distinct (value node,
//     offset) occurrences),
//   * the occurrence count C_o = number of distinct node-sequence
//     instances of the subpath (used by the multiset extension,
//     Section 5),
//   * for subpaths rooted at a non-leaf label: a set-hash signature of
//     the set of data-node IDs rooting the subpath (Section 3.4-3.5).
//
// Pruning is by path appearance count (pt), which favors subpaths
// toward the root (paper footnote 5) and is monotone, so the retained
// set is closed under taking sub-subpaths — the property the
// maximal-overlap combination step relies on.
//
// Construction runs in two stages so that experiment sweeps can share
// work: PathSuffixTree::Build is done once per data set; Cst::Build
// (threshold selection + counting + signatures) is done once per space
// budget.

#ifndef TWIG_CST_CST_H_
#define TWIG_CST_CST_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cst/view.h"
#include "sethash/sethash.h"
#include "suffix/child_index.h"
#include "suffix/path_suffix_tree.h"
#include "suffix/symbol.h"
#include "tree/tree.h"
#include "util/status.h"

namespace twig::cst {

/// Options for CST construction.
struct CstOptions {
  /// Number of components in each set-hash signature.
  size_t signature_length = 64;
  /// Seed for the signature hash family.
  uint64_t signature_seed = 0x5e7aa5e7aa5ULL;

  /// Explicit prune threshold: keep subpaths whose path appearance
  /// count is >= this. Ignored when space_budget_bytes is set.
  uint32_t prune_threshold = 1;

  /// If nonzero, pick the smallest threshold whose retained size (under
  /// the cost model below) fits the budget.
  size_t space_budget_bytes = 0;

  /// Cost model: structural bytes per retained node (symbol, child
  /// link, C_p, C_o) and bytes per signature component.
  size_t bytes_per_node = 16;
  size_t bytes_per_signature_component = 4;

  /// Must match the PathSuffixTree the CST is built from.
  size_t max_value_chars = 8;
};

/// The CST summary structure, fully materialized in memory.
/// Self-contained: keeps its own copy of the label table so estimation
/// never touches the data tree. Implements the CstView lookup surface
/// (cst/view.h); `final` so calls through a concrete Cst devirtualize.
class Cst final : public CstView {
 public:
  /// Builds a CST over `data` from its (stage-one) path suffix tree.
  static Cst Build(const tree::Tree& data, const suffix::PathSuffixTree& pst,
                   const CstOptions& options = {});

  // -- Navigation (CstView) ----------------------------------------------

  /// Child of `node` along `symbol`, or kNoCstNode. Out-of-range
  /// symbols (> suffix::kMaxSymbol, including kUnknownSymbol) never
  /// match: the flat index stores full-width symbols, so no sentinel
  /// can alias another (node, symbol) entry.
  CstNodeId Step(CstNodeId node, suffix::Symbol symbol) const override {
    if (symbol > suffix::kMaxSymbol) return kNoCstNode;
    return child_index_.Find(node, symbol);
  }

  Match LongestMatch(std::span<const suffix::Symbol> symbols,
                     size_t start) const override;

  /// All child edges of `node`, sorted by symbol, as a zero-copy span
  /// into the flat index (valid for the Cst's lifetime). Generic
  /// callers go through CopyChildren instead.
  std::span<const suffix::ChildIndex::Entry> ChildrenOf(CstNodeId node) const {
    return child_index_.Children(node);
  }

  size_t CopyChildren(CstNodeId node,
                      std::vector<suffix::ChildIndex::Entry>* out)
      const override {
    const auto children = child_index_.Children(node);
    out->assign(children.begin(), children.end());
    return out->size();
  }

  // -- Per-node statistics (CstView) --------------------------------------

  double PresenceCount(CstNodeId node) const override {
    return nodes_[node].cp;
  }

  double OccurrenceCount(CstNodeId node) const override {
    return nodes_[node].co;
  }

  bool StartsWithTag(CstNodeId node) const override {
    return nodes_[node].starts_with_tag;
  }

  /// Set-hash signature of the node's rooting set, or nullptr for
  /// character-only subpaths. The in-memory pool is stable, so the
  /// scratch overload ignores its scratch argument.
  const sethash::Signature* GetSignature(CstNodeId node) const {
    const uint32_t idx = nodes_[node].signature_index;
    return idx == 0xffffffffu ? nullptr : &signatures_[idx];
  }
  const sethash::Signature* GetSignature(
      CstNodeId node, sethash::Signature* /*scratch*/) const override {
    return GetSignature(node);
  }

  uint32_t Depth(CstNodeId node) const override { return nodes_[node].depth; }
  suffix::Symbol GetSymbol(CstNodeId node) const override {
    return nodes_[node].symbol;
  }
  CstNodeId Parent(CstNodeId node) const override {
    return nodes_[node].parent;
  }

  // -- Global statistics (CstView) -----------------------------------------

  uint64_t data_node_count() const override { return data_node_count_; }
  uint32_t prune_threshold() const override { return prune_threshold_; }
  size_t size_bytes() const override { return size_bytes_; }
  size_t node_count() const override { return nodes_.size(); }
  size_t signature_count() const override { return signatures_.size(); }
  size_t signature_length() const override { return signature_length_; }
  size_t max_value_chars() const override { return max_value_chars_; }

  // -- Serialization --------------------------------------------------------

  /// Serializes the CST to a compact binary blob (host endianness).
  /// The blob is self-contained: counts, signatures, and the label
  /// table are included, so estimation needs no access to the data.
  std::string Serialize() const;

  /// Reconstructs a CST from Serialize() output. Returns Corruption on
  /// malformed input.
  static Result<Cst> Deserialize(std::string_view blob);

  /// Serializes the CST in the paged TWCST03 format (cst/paged_cst.h):
  /// fixed-size self-checksummed pages that cst::PagedCst reads back
  /// on demand through a storage::BufferManager. InvalidArgument when
  /// `page_size` is not a power of two in storage's supported range or
  /// is too small to hold one record (a signature of the default
  /// length needs >= 512-byte pages).
  Result<std::string> SerializePaged(size_t page_size) const;
  Result<std::string> SerializePaged() const;  // storage::kDefaultPageBytes

  /// Rebuilds a fully in-memory Cst from any CstView (e.g. a paged
  /// TWCST03 reader), by walking every node. The result answers every
  /// CstView query identically to `view`. Returns the view's storage
  /// error if a degraded read is detected mid-walk — a half-copied
  /// summary is never returned.
  static Result<Cst> Materialize(const CstView& view);

  // -- Label mapping --------------------------------------------------------

  const tree::LabelTable& labels() const override { return labels_; }

 private:
  struct Node {
    suffix::Symbol symbol = 0;
    CstNodeId parent = kNoCstNode;
    uint32_t depth = 0;
    bool starts_with_tag = false;
    double cp = 0;  // presence count
    double co = 0;  // occurrence count
    uint32_t signature_index = 0xffffffffu;
  };

  /// Picks the smallest threshold whose retained size fits the budget.
  static uint32_t ThresholdForBudget(const suffix::PathSuffixTree& pst,
                                     const CstOptions& options);

  /// Stage two: walk the data tree accumulating C_p / C_o / signatures
  /// for the retained nodes.
  void AccumulateCounts(const tree::Tree& data,
                        const sethash::SetHashFamily& family);

  std::vector<Node> nodes_;
  suffix::ChildIndex child_index_;
  std::vector<sethash::Signature> signatures_;
  tree::LabelTable labels_;
  uint64_t data_node_count_ = 0;
  uint32_t prune_threshold_ = 1;
  size_t size_bytes_ = 0;
  size_t signature_length_ = 0;
  size_t max_value_chars_ = 16;
};

}  // namespace twig::cst

#endif  // TWIG_CST_CST_H_
