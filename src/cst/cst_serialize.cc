// Binary (de)serialization of the CST summary.
//
// Layout (format "TWCST02"): magic, global scalars, the label table,
// the node array, the flat child index (per-node offsets + sorted
// (symbol, child) entries), and the signature pool. Everything a
// deployment needs to answer estimates without the data tree. Host
// endianness (the summary is a cache artifact, not an interchange
// format).
//
// Deserialize treats the blob as untrusted: every count is bounded
// against the bytes actually remaining before anything is allocated,
// label names must be unique (duplicates would collapse under Intern
// and silently shift every later LabelId), node symbols must be within
// suffix::kMaxSymbol with tag symbols resolvable in the label table,
// and the child index must exactly mirror the node array's (parent,
// symbol) edges.

#include <cstring>
#include <type_traits>

#include "cst/cst.h"
#include "util/failpoint.h"
#include "util/hash.h"

namespace twig::cst {

namespace {

constexpr char kMagic[8] = {'T', 'W', 'C', 'S', 'T', '0', '2', '\0'};

// Checksum footer appended after the payload: a 4-byte footer magic
// plus an FNV-1a hash (util::HashBytes) of every byte before the
// footer. Blobs written before the footer existed lack it and still
// load; a blob that ends in the footer magic but whose hash disagrees
// is rejected. The footer is detected *after* the payload parses — the
// payload grammar is self-delimiting, so the last 12 bytes are only
// footer if the payload did not consume them.
constexpr char kChecksumMagic[4] = {'T', 'W', 'C', 'K'};
constexpr size_t kChecksumFooterBytes =
    sizeof(kChecksumMagic) + sizeof(uint64_t);

/// Bytes of the fixed-width fields of one serialized node record.
constexpr size_t kNodeRecordBytes = 4 * sizeof(uint32_t) + 2 * sizeof(double) +
                                    sizeof(uint32_t);

/// Append-only raw writer.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_->append(reinterpret_cast<const char*>(&value), sizeof(T));
  }
  void U32(uint32_t v) { Pod(v); }
  void U64(uint64_t v) { Pod(v); }
  void F64(double v) { Pod(v); }
  void String(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s);
  }

 private:
  std::string* out_;
};

/// Bounds-checked raw reader.
class Reader {
 public:
  explicit Reader(std::string_view in) : in_(in) {}

  template <typename T>
  bool Pod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (in_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool U32(uint32_t* v) { return Pod(v); }
  bool U64(uint64_t* v) { return Pod(v); }
  bool F64(double* v) { return Pod(v); }
  bool String(std::string* s) {
    uint32_t size = 0;
    if (!U32(&size) || in_.size() - pos_ < size) return false;
    s->assign(in_.substr(pos_, size));
    pos_ += size;
    return true;
  }
  bool AtEnd() const { return pos_ == in_.size(); }

  /// Bytes not yet consumed — the bound for any upcoming repeat count.
  size_t Remaining() const { return in_.size() - pos_; }

 private:
  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

std::string Cst::Serialize() const {
  std::string out;
  Writer w(&out);
  out.append(kMagic, sizeof(kMagic));
  w.U64(data_node_count_);
  w.U32(prune_threshold_);
  w.U64(size_bytes_);
  w.U64(signature_length_);
  w.U64(max_value_chars_);

  w.U32(static_cast<uint32_t>(labels_.size()));
  for (tree::LabelId id = 0; id < labels_.size(); ++id) {
    w.String(labels_.Name(id));
  }

  w.U32(static_cast<uint32_t>(nodes_.size()));
  for (const Node& node : nodes_) {
    w.U32(node.symbol);
    w.U32(node.parent);
    w.U32(node.depth);
    w.U32(node.starts_with_tag ? 1 : 0);
    w.F64(node.cp);
    w.F64(node.co);
    w.U32(node.signature_index);
  }

  // The flat child index: node_count+1 span offsets, then the entries
  // (one per non-root node), each span sorted by symbol.
  for (uint32_t offset : child_index_.offsets()) w.U32(offset);
  w.U32(static_cast<uint32_t>(child_index_.entry_count()));
  for (const suffix::ChildIndex::Entry& e : child_index_.entries()) {
    w.U32(e.symbol);
    w.U32(e.child);
  }

  w.U32(static_cast<uint32_t>(signatures_.size()));
  for (const sethash::Signature& sig : signatures_) {
    for (uint32_t component : sig) w.U32(component);
  }

  const uint64_t checksum = HashBytes(out);
  out.append(kChecksumMagic, sizeof(kChecksumMagic));
  w.U64(checksum);
  return out;
}

Result<Cst> Cst::Deserialize(std::string_view blob) {
  // Fault-injection seam: a fired "cst/deserialize" failpoint behaves
  // exactly like a corrupt blob would, so rebuild/publish error paths
  // are drivable without crafting hostile bytes.
  if (Status injected = util::FailpointCheck("cst/deserialize");
      !injected.ok()) {
    return Status::Corruption(injected.message());
  }
  if (blob.size() < sizeof(kMagic) ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a CST blob (bad magic)");
  }
  Reader r(blob.substr(sizeof(kMagic)));
  Cst cst;
  cst.nodes_.clear();
  uint64_t signature_length = 0;
  uint64_t max_value_chars = 0;
  if (!r.U64(&cst.data_node_count_) || !r.Pod(&cst.prune_threshold_) ||
      !r.U64(&cst.size_bytes_) || !r.U64(&signature_length) ||
      !r.U64(&max_value_chars)) {
    return Status::Corruption("truncated CST header");
  }
  cst.signature_length_ = signature_length;
  cst.max_value_chars_ = max_value_chars;

  uint32_t label_count = 0;
  if (!r.U32(&label_count)) return Status::Corruption("truncated labels");
  // Each label carries at least its 4-byte length prefix.
  if (label_count > r.Remaining() / sizeof(uint32_t)) {
    return Status::Corruption("label count exceeds blob size");
  }
  for (uint32_t i = 0; i < label_count; ++i) {
    std::string name;
    if (!r.String(&name)) return Status::Corruption("truncated label");
    if (cst.labels_.Find(name) != tree::kInvalidLabel) {
      // Intern would collapse the duplicate and shift every later
      // LabelId, silently attaching counts to the wrong tags.
      return Status::Corruption("duplicate label name");
    }
    cst.labels_.Intern(name);
  }

  uint32_t node_count = 0;
  if (!r.U32(&node_count)) return Status::Corruption("truncated nodes");
  if (node_count > r.Remaining() / kNodeRecordBytes) {
    return Status::Corruption("node count exceeds blob size");
  }
  cst.nodes_.reserve(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    Node node;
    uint32_t starts_with_tag = 0;
    if (!r.U32(&node.symbol) || !r.U32(&node.parent) || !r.U32(&node.depth) ||
        !r.U32(&starts_with_tag) || !r.F64(&node.cp) || !r.F64(&node.co) ||
        !r.U32(&node.signature_index)) {
      return Status::Corruption("truncated node record");
    }
    node.starts_with_tag = starts_with_tag != 0;
    if (node.symbol > suffix::kMaxSymbol) {
      return Status::Corruption("node symbol out of range");
    }
    if (suffix::IsTagSymbol(node.symbol) &&
        suffix::SymbolLabel(node.symbol) >= label_count) {
      return Status::Corruption("node tag symbol has no label");
    }
    if (i > 0 && node.parent >= i) {
      return Status::Corruption("node parent out of order");
    }
    cst.nodes_.push_back(std::move(node));
  }
  if (cst.nodes_.empty()) return Status::Corruption("empty CST");

  // Child index: offsets, then entries. Validated structurally by
  // FromParts and cross-checked edge-by-edge against the node array.
  if (static_cast<size_t>(node_count) + 1 >
      r.Remaining() / sizeof(uint32_t)) {
    return Status::Corruption("truncated child index offsets");
  }
  std::vector<uint32_t> offsets(static_cast<size_t>(node_count) + 1);
  for (uint32_t& offset : offsets) {
    if (!r.U32(&offset)) return Status::Corruption("truncated child index");
  }
  uint32_t entry_count = 0;
  if (!r.U32(&entry_count)) return Status::Corruption("truncated child index");
  if (entry_count != node_count - 1) {
    return Status::Corruption("child index entry count mismatch");
  }
  if (entry_count > r.Remaining() / (2 * sizeof(uint32_t))) {
    return Status::Corruption("child index exceeds blob size");
  }
  std::vector<suffix::ChildIndex::Entry> entries(entry_count);
  for (suffix::ChildIndex::Entry& e : entries) {
    if (!r.U32(&e.symbol) || !r.U32(&e.child)) {
      return Status::Corruption("truncated child index entry");
    }
  }
  if (!suffix::ChildIndex::FromParts(node_count, std::move(offsets),
                                     std::move(entries), &cst.child_index_)) {
    return Status::Corruption("malformed child index");
  }
  for (uint32_t n = 0; n < node_count; ++n) {
    for (const suffix::ChildIndex::Entry& e : cst.child_index_.Children(n)) {
      if (cst.nodes_[e.child].parent != n ||
          cst.nodes_[e.child].symbol != e.symbol) {
        return Status::Corruption("child index disagrees with node array");
      }
    }
  }

  uint32_t signature_count = 0;
  if (!r.U32(&signature_count)) {
    return Status::Corruption("truncated signatures");
  }
  // At most one signature per node, and all components must fit in the
  // remaining bytes — checked before any signature storage is reserved.
  if (signature_count > node_count) {
    return Status::Corruption("more signatures than nodes");
  }
  if (signature_count > 0 &&
      (cst.signature_length_ > r.Remaining() / sizeof(uint32_t) ||
       (cst.signature_length_ > 0 &&
        signature_count >
            r.Remaining() / (cst.signature_length_ * sizeof(uint32_t))))) {
    return Status::Corruption("signatures exceed blob size");
  }
  cst.signatures_.reserve(signature_count);
  for (uint32_t i = 0; i < signature_count; ++i) {
    sethash::Signature sig(cst.signature_length_);
    for (size_t c = 0; c < cst.signature_length_; ++c) {
      if (!r.U32(&sig[c])) return Status::Corruption("truncated signature");
    }
    cst.signatures_.push_back(std::move(sig));
  }
  for (const Node& node : cst.nodes_) {
    if (node.signature_index != 0xffffffffu &&
        node.signature_index >= cst.signatures_.size()) {
      return Status::Corruption("signature index out of range");
    }
  }
  // Footer: legacy blobs end exactly here; current blobs leave the
  // 12-byte checksum footer, which must verify over everything before
  // it. Any other remainder is trailing garbage, footer or not.
  if (r.Remaining() == kChecksumFooterBytes) {
    char footer_magic[sizeof(kChecksumMagic)];
    uint64_t stored = 0;
    if (!r.Pod(&footer_magic) || !r.U64(&stored)) {
      return Status::Corruption("truncated CST checksum footer");
    }
    if (std::memcmp(footer_magic, kChecksumMagic, sizeof(kChecksumMagic)) !=
        0) {
      return Status::Corruption("trailing bytes in CST blob");
    }
    const uint64_t computed =
        HashBytes(blob.substr(0, blob.size() - kChecksumFooterBytes));
    if (stored != computed) {
      return Status::Corruption("CST checksum mismatch");
    }
  } else if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in CST blob");
  }
  return cst;
}

}  // namespace twig::cst
