// Binary (de)serialization of the CST summary.
//
// Layout: magic, global scalars, the label table, the node array, and
// the signature pool. Everything a deployment needs to answer
// estimates without the data tree. Host endianness (the summary is a
// cache artifact, not an interchange format).

#include <cstring>
#include <type_traits>

#include "cst/cst.h"

namespace twig::cst {

namespace {

constexpr char kMagic[8] = {'T', 'W', 'C', 'S', 'T', '0', '1', '\0'};

/// Append-only raw writer.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_->append(reinterpret_cast<const char*>(&value), sizeof(T));
  }
  void U32(uint32_t v) { Pod(v); }
  void U64(uint64_t v) { Pod(v); }
  void F64(double v) { Pod(v); }
  void String(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s);
  }

 private:
  std::string* out_;
};

/// Bounds-checked raw reader.
class Reader {
 public:
  explicit Reader(std::string_view in) : in_(in) {}

  template <typename T>
  bool Pod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (in_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool U32(uint32_t* v) { return Pod(v); }
  bool U64(uint64_t* v) { return Pod(v); }
  bool F64(double* v) { return Pod(v); }
  bool String(std::string* s) {
    uint32_t size = 0;
    if (!U32(&size) || in_.size() - pos_ < size) return false;
    s->assign(in_.substr(pos_, size));
    pos_ += size;
    return true;
  }
  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

std::string Cst::Serialize() const {
  std::string out;
  Writer w(&out);
  out.append(kMagic, sizeof(kMagic));
  w.U64(data_node_count_);
  w.U32(prune_threshold_);
  w.U64(size_bytes_);
  w.U64(signature_length_);
  w.U64(max_value_chars_);

  w.U32(static_cast<uint32_t>(labels_.size()));
  for (tree::LabelId id = 0; id < labels_.size(); ++id) {
    w.String(labels_.Name(id));
  }

  w.U32(static_cast<uint32_t>(nodes_.size()));
  for (const Node& node : nodes_) {
    w.U32(node.symbol);
    w.U32(node.parent);
    w.U32(node.depth);
    w.U32(node.starts_with_tag ? 1 : 0);
    w.F64(node.cp);
    w.F64(node.co);
    w.U32(node.signature_index);
  }

  w.U32(static_cast<uint32_t>(signatures_.size()));
  for (const sethash::Signature& sig : signatures_) {
    for (uint32_t component : sig) w.U32(component);
  }
  return out;
}

Result<Cst> Cst::Deserialize(std::string_view blob) {
  if (blob.size() < sizeof(kMagic) ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a CST blob (bad magic)");
  }
  Reader r(blob.substr(sizeof(kMagic)));
  Cst cst;
  cst.nodes_.clear();
  uint64_t signature_length = 0;
  uint64_t max_value_chars = 0;
  if (!r.U64(&cst.data_node_count_) || !r.Pod(&cst.prune_threshold_) ||
      !r.U64(&cst.size_bytes_) || !r.U64(&signature_length) ||
      !r.U64(&max_value_chars)) {
    return Status::Corruption("truncated CST header");
  }
  cst.signature_length_ = signature_length;
  cst.max_value_chars_ = max_value_chars;

  uint32_t label_count = 0;
  if (!r.U32(&label_count)) return Status::Corruption("truncated labels");
  for (uint32_t i = 0; i < label_count; ++i) {
    std::string name;
    if (!r.String(&name)) return Status::Corruption("truncated label");
    cst.labels_.Intern(name);
  }

  uint32_t node_count = 0;
  if (!r.U32(&node_count)) return Status::Corruption("truncated nodes");
  cst.nodes_.reserve(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    Node node;
    uint32_t starts_with_tag = 0;
    if (!r.U32(&node.symbol) || !r.U32(&node.parent) || !r.U32(&node.depth) ||
        !r.U32(&starts_with_tag) || !r.F64(&node.cp) || !r.F64(&node.co) ||
        !r.U32(&node.signature_index)) {
      return Status::Corruption("truncated node record");
    }
    node.starts_with_tag = starts_with_tag != 0;
    if (i > 0) {
      if (node.parent >= i) {
        return Status::Corruption("node parent out of order");
      }
      cst.child_map_.emplace(ChildKey(node.parent, node.symbol),
                             static_cast<CstNodeId>(i));
    }
    cst.nodes_.push_back(std::move(node));
  }
  if (cst.nodes_.empty()) return Status::Corruption("empty CST");

  uint32_t signature_count = 0;
  if (!r.U32(&signature_count)) {
    return Status::Corruption("truncated signatures");
  }
  cst.signatures_.reserve(signature_count);
  for (uint32_t i = 0; i < signature_count; ++i) {
    sethash::Signature sig(cst.signature_length_);
    for (size_t c = 0; c < cst.signature_length_; ++c) {
      if (!r.U32(&sig[c])) return Status::Corruption("truncated signature");
    }
    cst.signatures_.push_back(std::move(sig));
  }
  for (const Node& node : cst.nodes_) {
    if (node.signature_index != 0xffffffffu &&
        node.signature_index >= cst.signatures_.size()) {
      return Status::Corruption("signature index out of range");
    }
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in CST blob");
  return cst;
}

}  // namespace twig::cst
