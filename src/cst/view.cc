#include "cst/view.h"

namespace twig::cst {

CstView::Match CstView::LongestMatch(std::span<const suffix::Symbol> symbols,
                                     size_t start) const {
  Match match;
  CstNodeId node = root();
  for (size_t i = start; i < symbols.size(); ++i) {
    CstNodeId next = Step(node, symbols[i]);
    if (next == kNoCstNode) break;
    node = next;
    match.node = node;
    match.length = i - start + 1;
  }
  return match;
}

std::string CstView::DescribeSubpath(CstNodeId node) const {
  // Collect symbols root-to-node.
  std::vector<suffix::Symbol> symbols(Depth(node));
  for (CstNodeId n = node; n != root(); n = Parent(n)) {
    symbols[Depth(n) - 1] = GetSymbol(n);
  }
  std::string out;
  bool prev_was_char = false;
  for (suffix::Symbol s : symbols) {
    if (suffix::IsTagSymbol(s)) {
      if (!out.empty()) out.push_back('.');
      out += labels().Name(suffix::SymbolLabel(s));
      prev_was_char = false;
    } else {
      if (!prev_was_char && !out.empty()) out.push_back('.');
      out.push_back(suffix::SymbolChar(s));
      prev_was_char = true;
    }
  }
  return out;
}

}  // namespace twig::cst
