// Demand-paged CST reader over the TWCST03 store format, plus the
// format sniffer that routes load sites between TWCST02 (whole-blob,
// materialized) and TWCST03 (paged).
//
// TWCST03 layout — everything TWCST02 carries, re-arranged into
// fixed-size self-checksummed pages (storage/page.h) so a reader can
// verify and cache exactly the bytes a walk touches:
//
//   page 0 (kMeta)     store magic/version/geometry, the global
//                      scalars, and the section directory
//   kNodes             36-byte node records (same fields as TWCST02)
//   kChildOffsets      node_count+1 u32 span offsets
//   kChildEntries      node_count-1 (symbol, child) u32 pairs
//   kSignatures        signature_count records of signature_length u32s
//   kStrings           label table, length-prefixed, streamed
//
// Fixed-size records never straddle a page boundary: each section
// packs floor(capacity / record_bytes) records per page, so any record
// is decoded from a single pinned frame. Labels are the exception
// (byte stream) and are loaded eagerly at Open — they are small, hot,
// and needed for every query's tag resolution.
//
// PagedCst implements CstView by pinning pages through a
// storage::BufferManager. Accessors degrade to a miss on IO/checksum
// errors (kNoCstNode, zero counts, no signature) and record the error:
// storage_health() holds the first failure sticky, storage_error_count()
// counts every degraded access. serve/service.cc snapshots the count
// around each estimate, so a degraded read fails the request instead
// of silently skewing it.

#ifndef TWIG_CST_PAGED_CST_H_
#define TWIG_CST_PAGED_CST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "cst/cst.h"
#include "cst/view.h"
#include "storage/buffer_manager.h"
#include "storage/page_source.h"
#include "tree/label_table.h"

namespace twig::cst {

/// Which serialized CST format a byte stream holds, by magic prefix.
enum class CstFormat {
  kUnknown,
  kTwcst02,  // "TWCST02\0" — whole-blob, Cst::Deserialize
  kTwcst03,  // "TWP3"      — paged, PagedCst::Open
};

CstFormat SniffCstFormat(std::string_view bytes);

struct PagedCstOptions {
  /// Buffer pool size when `buffer` is not supplied.
  size_t pool_bytes = 16 * 1024 * 1024;

  /// Optional shared pool (its page size must match the store's). When
  /// null, the PagedCst owns a private pool of `pool_bytes`.
  std::shared_ptr<storage::BufferManager> buffer;
};

class PagedCst final : public CstView {
 public:
  /// Opens a paged CST over `source`: registers it with the buffer
  /// pool, pins and parses the meta page, and eagerly loads the label
  /// table. Returns Corruption for structural problems.
  static Result<std::shared_ptr<PagedCst>> Open(
      std::shared_ptr<const storage::PageSource> source,
      const PagedCstOptions& options = {});

  /// Opens a memory-mapped .twcst03 file (NotFound/Corruption with the
  /// concrete reason, errno text included, on failure).
  static Result<std::shared_ptr<PagedCst>> OpenFile(
      const std::string& path, const PagedCstOptions& options = {});

  ~PagedCst() override;

  // -- CstView -----------------------------------------------------------

  CstNodeId Step(CstNodeId node, suffix::Symbol symbol) const override;
  size_t CopyChildren(CstNodeId node,
                      std::vector<suffix::ChildIndex::Entry>* out)
      const override;
  double PresenceCount(CstNodeId node) const override;
  double OccurrenceCount(CstNodeId node) const override;
  bool StartsWithTag(CstNodeId node) const override;
  const sethash::Signature* GetSignature(
      CstNodeId node, sethash::Signature* scratch) const override;
  uint32_t Depth(CstNodeId node) const override;
  suffix::Symbol GetSymbol(CstNodeId node) const override;
  CstNodeId Parent(CstNodeId node) const override;

  uint64_t data_node_count() const override { return meta_.data_node_count; }
  uint32_t prune_threshold() const override { return meta_.prune_threshold; }
  size_t size_bytes() const override { return meta_.size_bytes; }
  size_t node_count() const override { return meta_.node_count; }
  size_t signature_count() const override { return meta_.signature_count; }
  size_t signature_length() const override { return meta_.signature_length; }
  size_t max_value_chars() const override { return meta_.max_value_chars; }
  const tree::LabelTable& labels() const override { return labels_; }

  Status storage_health() const override;
  uint64_t storage_error_count() const override {
    return error_count_.load(std::memory_order_relaxed);
  }

  /// The pool this CST pins through (per-pool traffic stats).
  const storage::BufferManager& buffer() const { return *buffer_; }

 private:
  /// One section's location within the store.
  struct Section {
    uint32_t first_page = 0;
    uint32_t page_count = 0;
    uint32_t record_bytes = 0;
    uint32_t records_per_page = 0;
  };

  struct Meta {
    uint64_t data_node_count = 0;
    uint32_t prune_threshold = 1;
    uint64_t size_bytes = 0;
    uint64_t signature_length = 0;
    uint64_t max_value_chars = 0;
    uint32_t node_count = 0;
    uint32_t signature_count = 0;
    uint32_t label_count = 0;
    Section nodes;
    Section child_offsets;
    Section child_entries;
    Section signatures;
    Section strings;
  };

  /// The decoded fixed fields of one node record.
  struct NodeRecord {
    suffix::Symbol symbol = 0;
    CstNodeId parent = kNoCstNode;
    uint32_t depth = 0;
    bool starts_with_tag = false;
    double cp = 0;
    double co = 0;
    uint32_t signature_index = 0xffffffffu;
  };

  PagedCst() = default;

  Status ParseMeta(std::string_view payload, uint32_t payload_bytes);
  Status LoadLabels();

  /// Pins the page holding record `index` of `section` and returns the
  /// record's bytes via `pin` + pointer. Null on any storage error
  /// (recorded).
  const char* PinRecord(const Section& section, uint64_t index,
                        storage::PinnedPage* pin) const;
  bool ReadNode(CstNodeId node, NodeRecord* out) const;
  bool ReadOffsets(CstNodeId node, uint32_t* lo, uint32_t* hi) const;
  void RecordError(const Status& status) const;

  std::shared_ptr<storage::BufferManager> buffer_;
  std::shared_ptr<const storage::PageSource> source_;
  uint64_t source_id_ = 0;
  Meta meta_;
  tree::LabelTable labels_;

  mutable std::atomic<uint64_t> error_count_{0};
  mutable std::mutex error_mutex_;
  mutable Status first_error_;  // guarded by error_mutex_
};

/// Loads a serialized CST of either format from `bytes`: TWCST02
/// deserializes into an in-memory Cst, TWCST03 opens a paged reader
/// over a blob source. `name` labels errors.
Result<std::shared_ptr<const CstView>> LoadCstBlob(
    std::string bytes, std::string name, const PagedCstOptions& options = {});

/// Loads a serialized CST file of either format: sniffs the prefix,
/// then Cst::Deserialize (whole read) or PagedCst::OpenFile (mmap).
Result<std::shared_ptr<const CstView>> LoadCstFile(
    const std::string& path, const PagedCstOptions& options = {});

}  // namespace twig::cst

#endif  // TWIG_CST_PAGED_CST_H_
