// The abstract CST lookup surface.
//
// Estimation (src/core/) only ever *reads* a summary: longest-match
// walks, child fan-outs, per-node counts, signatures, and a handful of
// global scalars. CstView names exactly that surface so two storage
// strategies can sit behind one estimator:
//
//   * cst::Cst       — the fully materialized in-memory summary
//                      (vectors of nodes, a flat child index, a
//                      signature pool);
//   * cst::PagedCst  — a demand-paged reader over a TWCST03 store,
//                      pinning 64 KiB pages through a bounded
//                      storage::BufferManager as the walk touches them.
//
// Two interface choices exist purely because pages can be *evicted*:
//
//   * GetSignature takes a caller-provided scratch signature. The
//     in-memory summary ignores it and returns a pointer into its
//     pool; the paged reader fills the scratch (the pinned page may be
//     gone by the time the caller dereferences) and returns it.
//     Callers that collect several signatures before use must keep one
//     scratch object alive per signature (see Combiner::SubpathsCount).
//   * Children are copied out (CopyChildren) instead of returned as a
//     span into backing storage, for the same lifetime reason. The
//     frontier walker reuses one buffer across steps, so the copy does
//     not allocate in steady state.
//
// Reads never fail loudly mid-walk: a paged implementation that hits
// an IO or checksum error degrades the failing access to a miss
// (kNoCstNode / zero counts / no signature) and records the error;
// callers that need the no-silent-wrong-answer contract check
// storage_error_count() around an estimate (serve/service.cc does, and
// fails the request instead of returning a poisoned number).

#ifndef TWIG_CST_VIEW_H_
#define TWIG_CST_VIEW_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sethash/sethash.h"
#include "suffix/child_index.h"
#include "suffix/symbol.h"
#include "tree/label_table.h"
#include "util/status.h"

namespace twig::cst {

/// Index of a node in the CST. Node 0 is the root (empty subpath).
using CstNodeId = uint32_t;

inline constexpr CstNodeId kNoCstNode = 0xffffffffu;

/// Read-only summary surface shared by the in-memory and paged CSTs.
class CstView {
 public:
  virtual ~CstView() = default;

  // -- Navigation --------------------------------------------------------

  CstNodeId root() const { return 0; }

  /// Child of `node` along `symbol`, or kNoCstNode. Out-of-range
  /// symbols (> suffix::kMaxSymbol, including kUnknownSymbol) never
  /// match.
  virtual CstNodeId Step(CstNodeId node, suffix::Symbol symbol) const = 0;

  /// Deepest CST node matching a prefix of symbols[start..), plus the
  /// number of symbols matched (0 means symbols[start] has no CST node).
  struct Match {
    CstNodeId node = kNoCstNode;
    size_t length = 0;
  };
  virtual Match LongestMatch(std::span<const suffix::Symbol> symbols,
                             size_t start) const;

  /// Copies all child edges of `node` (sorted by symbol) into `*out`,
  /// replacing its contents, and returns the edge count. A copy rather
  /// than a span: a paged implementation's backing page may be evicted
  /// once the accessor returns.
  virtual size_t CopyChildren(
      CstNodeId node, std::vector<suffix::ChildIndex::Entry>* out) const = 0;

  // -- Per-node statistics ------------------------------------------------

  /// Presence count C_p of the node's subpath.
  virtual double PresenceCount(CstNodeId node) const = 0;

  /// Occurrence count C_o of the node's subpath.
  virtual double OccurrenceCount(CstNodeId node) const = 0;

  /// True if the node's subpath begins with a tag; exactly these nodes
  /// carry signatures.
  virtual bool StartsWithTag(CstNodeId node) const = 0;

  /// Set-hash signature of the node's rooting set, or nullptr for
  /// character-only subpaths. `scratch` must outlive every use of the
  /// returned pointer: the in-memory summary ignores it, the paged
  /// reader copies the signature into it and returns &*scratch.
  virtual const sethash::Signature* GetSignature(
      CstNodeId node, sethash::Signature* scratch) const = 0;

  virtual uint32_t Depth(CstNodeId node) const = 0;
  virtual suffix::Symbol GetSymbol(CstNodeId node) const = 0;
  virtual CstNodeId Parent(CstNodeId node) const = 0;

  /// Renders the node's full subpath for diagnostics and explain
  /// traces ("book.author.Su"). The root renders as "".
  std::string DescribeSubpath(CstNodeId node) const;

  // -- Global statistics ---------------------------------------------------

  /// Number of nodes in the data tree (the paper's normalizer for
  /// Pr(subpath) = C(subpath) / N).
  virtual uint64_t data_node_count() const = 0;

  /// The prune threshold actually applied (pt >= threshold retained).
  virtual uint32_t prune_threshold() const = 0;

  /// Retained size under the construction cost model.
  virtual size_t size_bytes() const = 0;

  virtual size_t node_count() const = 0;
  virtual size_t signature_count() const = 0;
  virtual size_t signature_length() const = 0;
  virtual size_t max_value_chars() const = 0;
  size_t signature_bytes() const {
    return signature_count() * signature_length() * sizeof(uint32_t);
  }

  // -- Storage health ------------------------------------------------------

  /// OK for in-memory summaries. A paged implementation reports the
  /// first IO / checksum error its accessors degraded on (accessors
  /// return misses rather than throwing; see the header comment).
  virtual Status storage_health() const { return Status::OK(); }

  /// Number of degraded page accesses so far (0 for in-memory
  /// summaries). Callers snapshot this around an estimate to detect
  /// whether any lookup silently degraded to a miss.
  virtual uint64_t storage_error_count() const { return 0; }

  // -- Label mapping --------------------------------------------------------

  /// Symbol for a query tag name, or the kUnknownSymbol sentinel if the
  /// tag never occurs in the data (no CST node can match it).
  suffix::Symbol TagSymbolFor(std::string_view tag) const {
    tree::LabelId id = labels().Find(tag);
    return id == tree::kInvalidLabel ? kUnknownSymbol : suffix::TagSymbol(id);
  }

  /// A symbol value that is guaranteed to match no CST child.
  static constexpr suffix::Symbol kUnknownSymbol = 0xffffffffu;

  virtual const tree::LabelTable& labels() const = 0;
};

}  // namespace twig::cst

#endif  // TWIG_CST_VIEW_H_
