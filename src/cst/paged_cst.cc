#include "cst/paged_cst.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "storage/page.h"
#include "storage/page_writer.h"

namespace twig::cst {

namespace {

/// Fixed node record: symbol, parent, depth, starts_with_tag (u32),
/// C_p, C_o (f64), signature_index — the same fields, same order, as
/// one TWCST02 node record.
constexpr uint32_t kNodeRecordBytes =
    4 * sizeof(uint32_t) + 2 * sizeof(double) + sizeof(uint32_t);
constexpr uint32_t kOffsetRecordBytes = sizeof(uint32_t);
constexpr uint32_t kEntryRecordBytes = 2 * sizeof(uint32_t);

/// Meta payload: kStoreMagic, version, page_size, page_count (the
/// prefix storage::ProbeStoreGeometry reads), the global scalars, then
/// five section descriptors (nodes, child_offsets, child_entries,
/// signatures, strings) of 16 bytes each.
constexpr size_t kSectionDescriptorBytes = 4 * sizeof(uint32_t);

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view payload, size_t* pos, T* out) {
  if (payload.size() - *pos < sizeof(T)) return false;
  std::memcpy(out, payload.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

// ----------------------------------------------------------- sniffer

CstFormat SniffCstFormat(std::string_view bytes) {
  static constexpr char kTwcst02Magic[8] = {'T', 'W', 'C', 'S',
                                            'T', '0', '2', '\0'};
  if (bytes.size() >= sizeof(kTwcst02Magic) &&
      std::memcmp(bytes.data(), kTwcst02Magic, sizeof(kTwcst02Magic)) == 0) {
    return CstFormat::kTwcst02;
  }
  if (bytes.size() >= sizeof(storage::kPageMagicBytes) &&
      std::memcmp(bytes.data(), storage::kPageMagicBytes,
                  sizeof(storage::kPageMagicBytes)) == 0) {
    return CstFormat::kTwcst03;
  }
  return CstFormat::kUnknown;
}

// ------------------------------------------------------------ writer

Result<std::string> Cst::SerializePaged(size_t page_size) const {
  if (!storage::ValidPageSize(page_size)) {
    return Status::InvalidArgument(
        "TWCST03 page size must be a power of two in [" +
        std::to_string(storage::kMinPageBytes) + ", " +
        std::to_string(storage::kMaxPageBytes) + "]: " +
        std::to_string(page_size));
  }
  const size_t capacity = storage::PageCapacity(page_size);
  const size_t sig_record = signature_length_ * sizeof(uint32_t);
  if (kNodeRecordBytes > capacity || (sig_record > 0 && sig_record > capacity)) {
    return Status::InvalidArgument(
        "TWCST03 page size " + std::to_string(page_size) +
        " cannot fit one record (signature records need " +
        std::to_string(sig_record + storage::kPageHeaderBytes) + " bytes)");
  }

  storage::PageWriter w(static_cast<uint32_t>(page_size));
  w.BeginPage(storage::PageType::kMeta);  // page 0, patched at the end

  struct SectionPlan {
    uint32_t first_page = 0;
    uint32_t page_count = 0;
    uint32_t record_bytes = 0;
    uint32_t records_per_page = 0;
  };
  // Emits `count` fixed-size records, packing floor(capacity / record)
  // per page — records never straddle a boundary.
  auto write_records = [&](storage::PageType type, uint32_t record_bytes,
                           size_t count, auto&& emit) {
    SectionPlan plan;
    plan.record_bytes = record_bytes;
    plan.records_per_page =
        record_bytes == 0 ? 0
                          : static_cast<uint32_t>(capacity / record_bytes);
    plan.first_page = w.page_count();
    for (size_t i = 0; i < count; ++i) {
      w.EnsureRoom(type, record_bytes);
      emit(i);
    }
    plan.page_count = w.page_count() - plan.first_page;
    return plan;
  };

  const SectionPlan nodes = write_records(
      storage::PageType::kNodes, kNodeRecordBytes, nodes_.size(),
      [&](size_t i) {
        const Node& node = nodes_[i];
        char record[kNodeRecordBytes];
        size_t off = 0;
        auto put = [&](const auto& v) {
          std::memcpy(record + off, &v, sizeof(v));
          off += sizeof(v);
        };
        put(node.symbol);
        put(node.parent);
        put(node.depth);
        put(uint32_t{node.starts_with_tag ? 1u : 0u});
        put(node.cp);
        put(node.co);
        put(node.signature_index);
        w.Append(record, sizeof(record));
      });

  const auto& offsets = child_index_.offsets();
  const SectionPlan child_offsets = write_records(
      storage::PageType::kChildOffsets, kOffsetRecordBytes, offsets.size(),
      [&](size_t i) { w.Append(&offsets[i], sizeof(uint32_t)); });

  const auto entries = child_index_.entries();
  const SectionPlan child_entries = write_records(
      storage::PageType::kChildEntries, kEntryRecordBytes, entries.size(),
      [&](size_t i) {
        uint32_t record[2] = {entries[i].symbol, entries[i].child};
        w.Append(record, sizeof(record));
      });

  const SectionPlan signatures = write_records(
      storage::PageType::kSignatures, static_cast<uint32_t>(sig_record),
      sig_record == 0 ? 0 : signatures_.size(), [&](size_t i) {
        w.Append(signatures_[i].data(), sig_record);
      });

  // Labels: a length-prefixed byte stream, split across pages freely.
  SectionPlan strings;
  strings.first_page = w.page_count();
  std::string label_bytes;
  for (tree::LabelId id = 0; id < labels_.size(); ++id) {
    const std::string_view name = labels_.Name(id);
    AppendPod(&label_bytes, static_cast<uint32_t>(name.size()));
    label_bytes.append(name);
  }
  w.AppendSpill(storage::PageType::kStrings, label_bytes.data(),
                label_bytes.size());
  strings.page_count = w.page_count() - strings.first_page;

  // Patch the meta page now that the directory is complete.
  std::string meta;
  meta.append(storage::kStoreMagic, sizeof(storage::kStoreMagic));
  AppendPod(&meta, storage::kStoreVersion);
  AppendPod(&meta, static_cast<uint32_t>(page_size));
  AppendPod(&meta, w.page_count());
  AppendPod(&meta, data_node_count_);
  AppendPod(&meta, prune_threshold_);
  AppendPod(&meta, static_cast<uint64_t>(size_bytes_));
  AppendPod(&meta, static_cast<uint64_t>(signature_length_));
  AppendPod(&meta, static_cast<uint64_t>(max_value_chars_));
  AppendPod(&meta, static_cast<uint32_t>(nodes_.size()));
  AppendPod(&meta, static_cast<uint32_t>(signatures_.size()));
  AppendPod(&meta, static_cast<uint32_t>(labels_.size()));
  const SectionPlan* plans[] = {&nodes, &child_offsets, &child_entries,
                                &signatures, &strings};
  for (const SectionPlan* plan : plans) {
    AppendPod(&meta, plan->first_page);
    AppendPod(&meta, plan->page_count);
    AppendPod(&meta, plan->record_bytes);
    AppendPod(&meta, plan->records_per_page);
  }
  w.OverwritePage(0, meta.data(), meta.size());
  return w.Finish();
}

Result<std::string> Cst::SerializePaged() const {
  return SerializePaged(storage::kDefaultPageBytes);
}

// ------------------------------------------------------------ reader

Result<std::shared_ptr<PagedCst>> PagedCst::Open(
    std::shared_ptr<const storage::PageSource> source,
    const PagedCstOptions& options) {
  if (source == nullptr) {
    return Status::InvalidArgument("null page source");
  }
  std::shared_ptr<PagedCst> cst(new PagedCst());
  cst->source_ = std::move(source);
  if (options.buffer != nullptr) {
    if (options.buffer->page_size() != cst->source_->page_size()) {
      return Status::InvalidArgument(
          cst->source_->name() + ": store page size " +
          std::to_string(cst->source_->page_size()) +
          " does not match the shared buffer pool's " +
          std::to_string(options.buffer->page_size()));
    }
    cst->buffer_ = options.buffer;
  } else {
    cst->buffer_ = std::make_shared<storage::BufferManager>(
        options.pool_bytes, cst->source_->page_size());
  }
  Result<uint64_t> id = cst->buffer_->RegisterSource(cst->source_);
  if (!id.ok()) return id.status();
  cst->source_id_ = id.value();
  {
    Result<storage::PinnedPage> pin = cst->buffer_->Pin(cst->source_id_, 0);
    if (!pin.ok()) return pin.status();
    Status meta = cst->ParseMeta(
        std::string_view(pin.value().payload(), pin.value().payload_bytes()),
        pin.value().payload_bytes());
    if (!meta.ok()) return meta;
  }
  Status labels = cst->LoadLabels();
  if (!labels.ok()) return labels;
  return cst;
}

Result<std::shared_ptr<PagedCst>> PagedCst::OpenFile(
    const std::string& path, const PagedCstOptions& options) {
  Result<std::unique_ptr<storage::MmapPageSource>> source =
      storage::MmapPageSource::Open(path);
  if (!source.ok()) return source.status();
  return Open(std::shared_ptr<const storage::PageSource>(
                  std::move(source.value())),
              options);
}

PagedCst::~PagedCst() {
  if (buffer_ != nullptr) buffer_->DropSource(source_id_);
}

Status PagedCst::ParseMeta(std::string_view payload,
                           uint32_t /*payload_bytes*/) {
  const std::string& name = source_->name();
  auto corrupt = [&](const std::string& what) {
    return Status::Corruption(name + ": " + what);
  };
  if (payload.size() < sizeof(storage::kStoreMagic) ||
      std::memcmp(payload.data(), storage::kStoreMagic,
                  sizeof(storage::kStoreMagic)) != 0) {
    return corrupt("bad TWCST03 meta magic");
  }
  size_t pos = sizeof(storage::kStoreMagic);
  uint32_t version = 0;
  uint32_t page_size = 0;
  uint32_t page_count = 0;
  if (!ReadPod(payload, &pos, &version) ||
      !ReadPod(payload, &pos, &page_size) ||
      !ReadPod(payload, &pos, &page_count)) {
    return corrupt("truncated TWCST03 meta header");
  }
  if (version != storage::kStoreVersion) {
    return corrupt("unsupported TWCST03 version " + std::to_string(version));
  }
  if (page_size != source_->page_size() ||
      page_count != source_->page_count()) {
    return corrupt("meta geometry disagrees with the probed store");
  }
  if (!ReadPod(payload, &pos, &meta_.data_node_count) ||
      !ReadPod(payload, &pos, &meta_.prune_threshold) ||
      !ReadPod(payload, &pos, &meta_.size_bytes) ||
      !ReadPod(payload, &pos, &meta_.signature_length) ||
      !ReadPod(payload, &pos, &meta_.max_value_chars) ||
      !ReadPod(payload, &pos, &meta_.node_count) ||
      !ReadPod(payload, &pos, &meta_.signature_count) ||
      !ReadPod(payload, &pos, &meta_.label_count)) {
    return corrupt("truncated TWCST03 meta scalars");
  }
  for (Section* section :
       {&meta_.nodes, &meta_.child_offsets, &meta_.child_entries,
        &meta_.signatures, &meta_.strings}) {
    if (!ReadPod(payload, &pos, &section->first_page) ||
        !ReadPod(payload, &pos, &section->page_count) ||
        !ReadPod(payload, &pos, &section->record_bytes) ||
        !ReadPod(payload, &pos, &section->records_per_page)) {
      return corrupt("truncated TWCST03 section directory");
    }
  }
  if (pos != payload.size()) return corrupt("trailing bytes in meta page");

  if (meta_.node_count == 0) return corrupt("empty CST");
  if (meta_.signature_count > meta_.node_count) {
    return corrupt("more signatures than nodes");
  }
  const size_t capacity = storage::PageCapacity(page_size);
  const size_t sig_record = meta_.signature_length * sizeof(uint32_t);
  struct Expectation {
    const Section* section;
    uint32_t record_bytes;
    uint64_t records;
    const char* what;
  };
  const Expectation expected[] = {
      {&meta_.nodes, kNodeRecordBytes, meta_.node_count, "nodes"},
      {&meta_.child_offsets, kOffsetRecordBytes,
       static_cast<uint64_t>(meta_.node_count) + 1, "child offsets"},
      {&meta_.child_entries, kEntryRecordBytes,
       static_cast<uint64_t>(meta_.node_count) - 1, "child entries"},
      {&meta_.signatures, static_cast<uint32_t>(sig_record),
       sig_record == 0 ? 0 : meta_.signature_count, "signatures"},
  };
  for (const Expectation& e : expected) {
    const Section& s = *e.section;
    if (s.record_bytes != e.record_bytes) {
      return corrupt(std::string(e.what) + " section record size mismatch");
    }
    const uint32_t per_page =
        e.record_bytes == 0 ? 0
                            : static_cast<uint32_t>(capacity / e.record_bytes);
    if (s.records_per_page != per_page) {
      return corrupt(std::string(e.what) + " section packing mismatch");
    }
    const uint64_t need_pages =
        e.records == 0 || per_page == 0
            ? 0
            : (e.records + per_page - 1) / per_page;
    if (s.page_count != need_pages) {
      return corrupt(std::string(e.what) + " section page count mismatch");
    }
    if (need_pages > 0 &&
        (s.first_page == 0 ||
         static_cast<uint64_t>(s.first_page) + s.page_count > page_count)) {
      return corrupt(std::string(e.what) + " section out of store bounds");
    }
  }
  if (meta_.strings.page_count > 0 &&
      (meta_.strings.first_page == 0 ||
       static_cast<uint64_t>(meta_.strings.first_page) +
               meta_.strings.page_count >
           page_count)) {
    return corrupt("strings section out of store bounds");
  }
  return Status::OK();
}

Status PagedCst::LoadLabels() {
  // The label stream is small and needed on every query (tag symbol
  // resolution), so it is materialized once at Open rather than paged.
  std::string bytes;
  for (uint32_t p = 0; p < meta_.strings.page_count; ++p) {
    Result<storage::PinnedPage> pin =
        buffer_->Pin(source_id_, meta_.strings.first_page + p);
    if (!pin.ok()) return pin.status();
    bytes.append(pin.value().payload(), pin.value().payload_bytes());
  }
  size_t pos = 0;
  for (uint32_t i = 0; i < meta_.label_count; ++i) {
    uint32_t length = 0;
    if (!ReadPod(bytes, &pos, &length) || bytes.size() - pos < length) {
      return Status::Corruption(source_->name() + ": truncated label " +
                                std::to_string(i));
    }
    const std::string_view label(bytes.data() + pos, length);
    pos += length;
    if (labels_.Find(label) != tree::kInvalidLabel) {
      return Status::Corruption(source_->name() + ": duplicate label name");
    }
    labels_.Intern(label);
  }
  if (pos != bytes.size()) {
    return Status::Corruption(source_->name() +
                              ": trailing bytes after labels");
  }
  return Status::OK();
}

void PagedCst::RecordError(const Status& status) const {
  error_count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (first_error_.ok()) first_error_ = status;
}

Status PagedCst::storage_health() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return first_error_;
}

const char* PagedCst::PinRecord(const Section& section, uint64_t index,
                                storage::PinnedPage* pin) const {
  if (section.records_per_page == 0) return nullptr;
  const uint64_t page = index / section.records_per_page;
  const uint32_t offset = static_cast<uint32_t>(
      (index % section.records_per_page) * section.record_bytes);
  if (page >= section.page_count) {
    RecordError(Status::Corruption(source_->name() +
                                   ": record index past section end"));
    return nullptr;
  }
  Result<storage::PinnedPage> result =
      buffer_->Pin(source_id_, section.first_page + static_cast<uint32_t>(page));
  if (!result.ok()) {
    RecordError(result.status());
    return nullptr;
  }
  *pin = std::move(result.value());
  if (offset + section.record_bytes > pin->payload_bytes()) {
    RecordError(Status::Corruption(source_->name() +
                                   ": record past page payload"));
    return nullptr;
  }
  return pin->payload() + offset;
}

bool PagedCst::ReadNode(CstNodeId node, NodeRecord* out) const {
  if (node >= meta_.node_count) {
    RecordError(Status::Corruption(source_->name() + ": node id " +
                                   std::to_string(node) + " out of range"));
    return false;
  }
  storage::PinnedPage pin;
  const char* record = PinRecord(meta_.nodes, node, &pin);
  if (record == nullptr) return false;
  size_t off = 0;
  auto get = [&](auto* v) {
    std::memcpy(v, record + off, sizeof(*v));
    off += sizeof(*v);
  };
  uint32_t starts = 0;
  get(&out->symbol);
  get(&out->parent);
  get(&out->depth);
  get(&starts);
  get(&out->cp);
  get(&out->co);
  get(&out->signature_index);
  out->starts_with_tag = starts != 0;
  return true;
}

bool PagedCst::ReadOffsets(CstNodeId node, uint32_t* lo, uint32_t* hi) const {
  storage::PinnedPage pin_lo;
  const char* rec_lo = PinRecord(meta_.child_offsets, node, &pin_lo);
  if (rec_lo == nullptr) return false;
  std::memcpy(lo, rec_lo, sizeof(*lo));
  storage::PinnedPage pin_hi;
  const char* rec_hi =
      PinRecord(meta_.child_offsets, static_cast<uint64_t>(node) + 1, &pin_hi);
  if (rec_hi == nullptr) return false;
  std::memcpy(hi, rec_hi, sizeof(*hi));
  const uint32_t entry_count = meta_.node_count - 1;
  if (*hi < *lo || *hi > entry_count) {
    RecordError(Status::Corruption(source_->name() +
                                   ": child span offsets out of order"));
    return false;
  }
  return true;
}

CstNodeId PagedCst::Step(CstNodeId node, suffix::Symbol symbol) const {
  if (symbol > suffix::kMaxSymbol) return kNoCstNode;
  if (node >= meta_.node_count) {
    RecordError(Status::Corruption(source_->name() + ": node id " +
                                   std::to_string(node) + " out of range"));
    return kNoCstNode;
  }
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!ReadOffsets(node, &lo, &hi)) return kNoCstNode;
  auto entry_at = [&](uint32_t i, suffix::ChildIndex::Entry* e) {
    storage::PinnedPage pin;
    const char* record = PinRecord(meta_.child_entries, i, &pin);
    if (record == nullptr) return false;
    std::memcpy(&e->symbol, record, sizeof(uint32_t));
    std::memcpy(&e->child, record + sizeof(uint32_t), sizeof(uint32_t));
    return true;
  };
  // Binary search of the node's sorted child span. Probes pin the
  // containing page each time; after the first load these are buffer
  // hits (a shard-striped map lookup).
  uint32_t a = lo;
  uint32_t b = hi;
  suffix::ChildIndex::Entry entry;
  while (a < b) {
    const uint32_t mid = a + (b - a) / 2;
    if (!entry_at(mid, &entry)) return kNoCstNode;
    if (entry.symbol < symbol) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  if (a == hi) return kNoCstNode;
  if (!entry_at(a, &entry) || entry.symbol != symbol) return kNoCstNode;
  if (entry.child == 0 || entry.child >= meta_.node_count) {
    RecordError(Status::Corruption(source_->name() +
                                   ": child id out of range"));
    return kNoCstNode;
  }
  return entry.child;
}

size_t PagedCst::CopyChildren(CstNodeId node,
                              std::vector<suffix::ChildIndex::Entry>* out)
    const {
  out->clear();
  if (node >= meta_.node_count) {
    RecordError(Status::Corruption(source_->name() + ": node id " +
                                   std::to_string(node) + " out of range"));
    return 0;
  }
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!ReadOffsets(node, &lo, &hi)) return 0;
  out->reserve(hi - lo);
  for (uint32_t i = lo; i < hi; ++i) {
    storage::PinnedPage pin;
    const char* record = PinRecord(meta_.child_entries, i, &pin);
    if (record == nullptr) {
      out->clear();  // a partial child list would skew fan-out walks
      return 0;
    }
    suffix::ChildIndex::Entry entry;
    std::memcpy(&entry.symbol, record, sizeof(uint32_t));
    std::memcpy(&entry.child, record + sizeof(uint32_t), sizeof(uint32_t));
    out->push_back(entry);
  }
  return out->size();
}

double PagedCst::PresenceCount(CstNodeId node) const {
  NodeRecord record;
  return ReadNode(node, &record) ? record.cp : 0.0;
}

double PagedCst::OccurrenceCount(CstNodeId node) const {
  NodeRecord record;
  return ReadNode(node, &record) ? record.co : 0.0;
}

bool PagedCst::StartsWithTag(CstNodeId node) const {
  NodeRecord record;
  return ReadNode(node, &record) && record.starts_with_tag;
}

const sethash::Signature* PagedCst::GetSignature(
    CstNodeId node, sethash::Signature* scratch) const {
  NodeRecord record;
  if (!ReadNode(node, &record)) return nullptr;
  if (record.signature_index == 0xffffffffu) return nullptr;
  if (record.signature_index >= meta_.signature_count) {
    RecordError(Status::Corruption(source_->name() +
                                   ": signature index out of range"));
    return nullptr;
  }
  if (meta_.signature_length == 0) {
    scratch->clear();
    return scratch;
  }
  storage::PinnedPage pin;
  const char* bytes = PinRecord(meta_.signatures, record.signature_index, &pin);
  if (bytes == nullptr) return nullptr;
  scratch->resize(meta_.signature_length);
  std::memcpy(scratch->data(), bytes,
              meta_.signature_length * sizeof(uint32_t));
  return scratch;
}

uint32_t PagedCst::Depth(CstNodeId node) const {
  NodeRecord record;
  return ReadNode(node, &record) ? record.depth : 0;
}

suffix::Symbol PagedCst::GetSymbol(CstNodeId node) const {
  NodeRecord record;
  return ReadNode(node, &record) ? record.symbol : CstView::kUnknownSymbol;
}

CstNodeId PagedCst::Parent(CstNodeId node) const {
  NodeRecord record;
  return ReadNode(node, &record) ? record.parent : kNoCstNode;
}

// ----------------------------------------------------------- loaders

Result<std::shared_ptr<const CstView>> LoadCstBlob(
    std::string bytes, std::string name, const PagedCstOptions& options) {
  switch (SniffCstFormat(bytes)) {
    case CstFormat::kTwcst02: {
      Result<Cst> cst = Cst::Deserialize(bytes);
      if (!cst.ok()) return cst.status();
      return std::shared_ptr<const CstView>(
          std::make_shared<Cst>(std::move(cst.value())));
    }
    case CstFormat::kTwcst03: {
      Result<std::unique_ptr<storage::BlobPageSource>> source =
          storage::BlobPageSource::Open(std::move(bytes), std::move(name));
      if (!source.ok()) return source.status();
      Result<std::shared_ptr<PagedCst>> paged = PagedCst::Open(
          std::shared_ptr<const storage::PageSource>(
              std::move(source.value())),
          options);
      if (!paged.ok()) return paged.status();
      return std::shared_ptr<const CstView>(paged.value());
    }
    case CstFormat::kUnknown:
      break;
  }
  return Status::Corruption(name + ": unrecognized CST format (neither "
                            "TWCST02 nor TWCST03 magic)");
}

Result<std::shared_ptr<const CstView>> LoadCstFile(
    const std::string& path, const PagedCstOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(path + ": cannot open");
  }
  char head[8] = {};
  in.read(head, sizeof(head));
  const std::string_view prefix(head, static_cast<size_t>(in.gcount()));
  switch (SniffCstFormat(prefix)) {
    case CstFormat::kTwcst02: {
      // Whole-blob format: read it all and materialize.
      in.seekg(0);
      std::ostringstream contents;
      contents << in.rdbuf();
      if (!in.good() && !in.eof()) {
        return Status::Internal(path + ": read failed");
      }
      return LoadCstBlob(std::move(contents).str(), path, options);
    }
    case CstFormat::kTwcst03: {
      in.close();
      Result<std::shared_ptr<PagedCst>> paged =
          PagedCst::OpenFile(path, options);
      if (!paged.ok()) return paged.status();
      return std::shared_ptr<const CstView>(paged.value());
    }
    case CstFormat::kUnknown:
      break;
  }
  return Status::Corruption(path + ": unrecognized CST format (neither "
                            "TWCST02 nor TWCST03 magic)");
}

}  // namespace twig::cst
