#include "cst/cst.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace twig::cst {

using suffix::CharSymbol;
using suffix::IsTagSymbol;
using suffix::kNoPstNode;
using suffix::PathSuffixTree;
using suffix::PstNodeId;
using suffix::Symbol;
using suffix::TagSymbol;
using tree::NodeId;
using tree::Tree;

Cst::Match Cst::LongestMatch(std::span<const Symbol> symbols,
                             size_t start) const {
  Match match;
  CstNodeId node = root();
  for (size_t i = start; i < symbols.size(); ++i) {
    CstNodeId next = Step(node, symbols[i]);
    if (next == kNoCstNode) break;
    node = next;
    match.node = node;
    match.length = i - start + 1;
  }
  return match;
}

uint32_t Cst::ThresholdForBudget(const PathSuffixTree& pst,
                                 const CstOptions& options) {
  const size_t sig_bytes =
      options.signature_length * options.bytes_per_signature_component;
  // Group retained cost by pt value, then admit groups from most to
  // least frequent while the budget holds. Whole groups keep the
  // threshold semantics (pt >= t) and hence pruning monotonicity.
  std::map<uint32_t, size_t, std::greater<>> cost_by_pt;
  for (PstNodeId n = 1; n < pst.node_count(); ++n) {
    const size_t cost = options.bytes_per_node +
                        (pst.StartsWithTag(n) ? sig_bytes : 0);
    cost_by_pt[pst.PathCount(n)] += cost;
  }
  size_t used = 0;
  uint32_t threshold = 0xffffffffu;  // retain nothing
  for (const auto& [pt, cost] : cost_by_pt) {
    if (used + cost > options.space_budget_bytes) break;
    used += cost;
    threshold = pt;
  }
  return threshold;
}

Cst Cst::Build(const Tree& data, const PathSuffixTree& pst,
               const CstOptions& options) {
  Cst cst;
  cst.signature_length_ = options.signature_length;
  cst.max_value_chars_ = options.max_value_chars;
  cst.data_node_count_ = data.size();
  cst.prune_threshold_ = options.space_budget_bytes > 0
                             ? ThresholdForBudget(pst, options)
                             : std::max<uint32_t>(options.prune_threshold, 1);

  // Copy the label table so the CST is self-contained.
  for (tree::LabelId id = 0; id < data.labels().size(); ++id) {
    cst.labels_.Intern(data.labels().Name(id));
  }

  // -- Retain pt >= threshold, remapping to dense CST IDs. PST IDs are
  // topologically ordered (parents created first), and pt monotonicity
  // guarantees a retained node's parent is retained.
  const size_t sig_bytes =
      options.signature_length * options.bytes_per_signature_component;
  std::vector<CstNodeId> remap(pst.node_count(), kNoCstNode);
  cst.nodes_.push_back(Node{});  // CST root
  remap[pst.root()] = 0;
  for (PstNodeId n = 1; n < pst.node_count(); ++n) {
    if (pst.PathCount(n) < cst.prune_threshold_) continue;
    assert(remap[pst.Parent(n)] != kNoCstNode);
    Node node;
    node.symbol = pst.GetSymbol(n);
    node.parent = remap[pst.Parent(n)];
    node.depth = pst.Depth(n);
    node.starts_with_tag = pst.StartsWithTag(n);
    if (node.starts_with_tag) {
      node.signature_index = static_cast<uint32_t>(cst.signatures_.size());
      cst.signatures_.emplace_back(options.signature_length,
                                   sethash::kEmptyComponent);
    }
    const CstNodeId id = static_cast<CstNodeId>(cst.nodes_.size());
    remap[n] = id;
    cst.size_bytes_ +=
        options.bytes_per_node + (node.starts_with_tag ? sig_bytes : 0);
    cst.nodes_.push_back(std::move(node));
  }
  cst.child_index_ = suffix::ChildIndex::Build(
      cst.nodes_.size(), [&](size_t n) { return cst.nodes_[n].parent; },
      [&](size_t n) { return cst.nodes_[n].symbol; });

  sethash::SetHashFamily family(options.signature_length,
                                options.signature_seed);
  if (!data.empty() && cst.nodes_.size() > 1) {
    cst.AccumulateCounts(data, family);
  }
  return cst;
}

void Cst::AccumulateCounts(const Tree& data,
                           const sethash::SetHashFamily& family) {
  // Dedup marker: last data root that contributed to a node's C_p.
  std::vector<NodeId> last_root(nodes_.size(), tree::kNullNode);
  std::vector<uint32_t> element_hashes;  // reused per root walk

  // Visits a CST node during the walk rooted at data node `walk_root`.
  auto visit = [&](CstNodeId c, NodeId walk_root) {
    Node& node = nodes_[c];
    node.co += 1;
    if (last_root[c] != walk_root) {
      last_root[c] = walk_root;
      node.cp += 1;
      if (node.signature_index != 0xffffffffu) {
        sethash::MergeElement(signatures_[node.signature_index],
                              element_hashes);
      }
    }
  };

  // Extends a walk over the (capped) prefix of a value string.
  auto walk_value_prefix = [&](CstNodeId c, std::string_view value,
                               NodeId walk_root) {
    const size_t take = std::min(value.size(), max_value_chars_);
    for (size_t i = 0; i < take; ++i) {
      c = Step(c, CharSymbol(value[i]));
      if (c == kNoCstNode) return;
      visit(c, walk_root);
    }
  };

  // Recursive walk matching the CST against the subtree below `m`,
  // all within the walk rooted at data node `walk_root`.
  auto walk = [&](auto&& self, NodeId m, CstNodeId c, NodeId walk_root) -> void {
    visit(c, walk_root);
    for (NodeId ch : data.Children(m)) {
      if (data.IsValue(ch)) {
        walk_value_prefix(c, data.Value(ch), walk_root);
      } else {
        CstNodeId next = Step(c, TagSymbol(data.Label(ch)));
        if (next != kNoCstNode) self(self, ch, next, walk_root);
      }
    }
  };

  for (NodeId n = 0; n < data.size(); ++n) {
    if (data.IsValue(n)) {
      // Character-only subpaths: every (value node, offset) is a root.
      // Each (start, depth) visit is a distinct instance, so C_p and
      // C_o increment unconditionally (no markers needed).
      const std::string_view value = data.Value(n);
      const size_t take = std::min(value.size(), max_value_chars_);
      for (size_t start = 0; start < take; ++start) {
        CstNodeId c = root();
        for (size_t i = start; i < take; ++i) {
          c = Step(c, CharSymbol(value[i]));
          if (c == kNoCstNode) break;
          Node& node = nodes_[c];
          node.cp += 1;
          node.co += 1;
        }
      }
      continue;
    }
    // Tag-rooted subpaths: one walk rooted at element node n.
    CstNodeId c0 = Step(root(), TagSymbol(data.Label(n)));
    if (c0 == kNoCstNode) continue;
    element_hashes = family.HashAll(n);
    walk(walk, n, c0, n);
  }
}

Result<Cst> Cst::Materialize(const CstView& view) {
  const uint64_t errors_before = view.storage_error_count();
  Cst out;
  const size_t node_count = view.node_count();
  out.nodes_.resize(node_count);
  out.signatures_.reserve(view.signature_count());
  std::vector<uint32_t> offsets(node_count + 1, 0);
  std::vector<suffix::ChildIndex::Entry> entries;
  entries.reserve(node_count > 0 ? node_count - 1 : 0);
  std::vector<suffix::ChildIndex::Entry> children;
  sethash::Signature scratch;
  for (CstNodeId node = 0; node < node_count; ++node) {
    Node& n = out.nodes_[node];
    n.symbol = view.GetSymbol(node);
    n.parent = view.Parent(node);
    n.depth = view.Depth(node);
    n.starts_with_tag = view.StartsWithTag(node);
    n.cp = view.PresenceCount(node);
    n.co = view.OccurrenceCount(node);
    const sethash::Signature* signature = view.GetSignature(node, &scratch);
    if (signature != nullptr) {
      n.signature_index = static_cast<uint32_t>(out.signatures_.size());
      out.signatures_.push_back(*signature);
    }
    offsets[node] = static_cast<uint32_t>(entries.size());
    view.CopyChildren(node, &children);
    entries.insert(entries.end(), children.begin(), children.end());
  }
  offsets[node_count] = static_cast<uint32_t>(entries.size());
  // A degraded source yields misses, not garbage — but a Cst built
  // from misses would silently answer wrong. Refuse it.
  if (view.storage_error_count() != errors_before) {
    const Status health = view.storage_health();
    return health.ok() ? Status::Corruption("summary storage degraded "
                                            "during materialization")
                       : health;
  }
  if (!suffix::ChildIndex::FromParts(node_count, std::move(offsets),
                                     std::move(entries),
                                     &out.child_index_)) {
    return Status::Corruption("view's child index is not well-formed");
  }
  out.labels_ = view.labels();
  out.data_node_count_ = view.data_node_count();
  out.prune_threshold_ = view.prune_threshold();
  out.size_bytes_ = view.size_bytes();
  out.signature_length_ = view.signature_length();
  out.max_value_chars_ = view.max_value_chars();
  return out;
}

}  // namespace twig::cst
