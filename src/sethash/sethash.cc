#include "sethash/sethash.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace twig::sethash {

SetHashFamily::SetHashFamily(size_t length, uint64_t seed) : length_(length) {
  assert(length > 0);
  component_seeds_.resize(length);
  uint64_t x = seed;
  for (size_t i = 0; i < length; ++i) {
    x = Mix64(x + 0x9e3779b97f4a7c15ULL);
    component_seeds_[i] = x;
  }
}

std::vector<uint32_t> SetHashFamily::HashAll(uint64_t element) const {
  std::vector<uint32_t> out(length_);
  for (size_t i = 0; i < length_; ++i) out[i] = Hash(i, element);
  return out;
}

Signature SetHashFamily::SignatureOf(
    const std::vector<uint64_t>& elements) const {
  Signature sig = EmptySignature();
  for (uint64_t e : elements) {
    for (size_t i = 0; i < length_; ++i) {
      sig[i] = std::min(sig[i], Hash(i, e));
    }
  }
  return sig;
}

void MergeElement(Signature& sig, const std::vector<uint32_t>& hashes) {
  assert(sig.size() == hashes.size());
  for (size_t i = 0; i < sig.size(); ++i) {
    sig[i] = std::min(sig[i], hashes[i]);
  }
}

Signature UnionSignature(const std::vector<const Signature*>& sigs) {
  assert(!sigs.empty());
  Signature out = *sigs[0];
  for (size_t s = 1; s < sigs.size(); ++s) {
    assert(sigs[s]->size() == out.size());
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = std::min(out[i], (*sigs[s])[i]);
    }
  }
  return out;
}

double EstimateResemblance(const std::vector<const Signature*>& sigs) {
  assert(!sigs.empty());
  const size_t length = sigs[0]->size();
  size_t matching = 0;
  for (size_t i = 0; i < length; ++i) {
    const uint32_t first = (*sigs[0])[i];
    if (first == kEmptyComponent) continue;
    bool all_equal = true;
    for (size_t s = 1; s < sigs.size(); ++s) {
      if ((*sigs[s])[i] != first) {
        all_equal = false;
        break;
      }
    }
    if (all_equal) ++matching;
  }
  return static_cast<double>(matching) / static_cast<double>(length);
}

IntersectionEstimate EstimateIntersectionSize(
    std::span<const SizedSignature> sets) {
  assert(!sets.empty());
  obs::CountEvent(obs::Counter::kSethashIntersections);
  IntersectionEstimate out;
  if (sets.size() == 1) {
    out.size = sets[0].size;
    out.matching_components = sets[0].signature->size();
    out.resemblance = 1.0;
    return out;
  }
  for (const auto& s : sets) {
    if (s.size <= 0) return out;
  }

  // Step 1: resemblance of the k sets — the fraction of components on
  // which all signatures agree (and are non-empty).
  const size_t length = sets[0].signature->size();
  size_t matching = 0;
  for (size_t i = 0; i < length; ++i) {
    const uint32_t first = (*sets[0].signature)[i];
    if (first == kEmptyComponent) continue;
    bool all_equal = true;
    for (size_t s = 1; s < sets.size(); ++s) {
      if ((*sets[s].signature)[i] != first) {
        all_equal = false;
        break;
      }
    }
    if (all_equal) ++matching;
  }
  const double rho =
      static_cast<double>(matching) / static_cast<double>(length);
  out.matching_components = matching;
  out.resemblance = rho;
  if (rho <= 0.0) return out;

  // Step 3 (reordered): the largest set gives the best accuracy for
  // the union size.
  size_t largest = 0;
  for (size_t s = 1; s < sets.size(); ++s) {
    if (sets[s].size > sets[largest].size) largest = s;
  }
  // f estimates |A_largest| / |union| (A_largest is a subset of the
  // union, so their resemblance is exactly that ratio). The union's
  // signature (step 2) is the component-wise minimum; computing each
  // component on the fly avoids materializing it.
  const Signature& largest_sig = *sets[largest].signature;
  size_t f_matching = 0;
  for (size_t i = 0; i < length; ++i) {
    uint32_t union_component = kEmptyComponent;
    for (const auto& s : sets) {
      union_component = std::min(union_component, (*s.signature)[i]);
    }
    if (union_component != kEmptyComponent &&
        largest_sig[i] == union_component) {
      ++f_matching;
    }
  }
  const double f =
      static_cast<double>(f_matching) / static_cast<double>(length);

  // Step 4: |∩| = rho * |union|, with |union| = |A_largest| / f. If f
  // came out zero (signature noise), fall back to the union upper
  // bound: sum of the set sizes.
  double union_size;
  if (f > 0.0) {
    union_size = sets[largest].size / f;
  } else {
    union_size = 0.0;
    for (const auto& s : sets) union_size += s.size;
  }
  // The union can never be smaller than its largest member nor larger
  // than the sum of members; clamp away estimator noise.
  double sum = 0.0;
  for (const auto& s : sets) sum += s.size;
  union_size = std::clamp(union_size, sets[largest].size, sum);

  // The intersection can never exceed the smallest member.
  double smallest = sets[0].size;
  for (const auto& s : sets) smallest = std::min(smallest, s.size);
  out.size = std::min(rho * union_size, smallest);
  return out;
}

}  // namespace twig::sethash
