// Set hashing (min-hash) signatures — paper Sections 3.4–3.6.
//
// Each CST subpath rooted at a non-leaf label keeps a fixed-length
// signature of the set of data-node IDs rooting it. The signature is a
// vector of L components; component i holds the minimum, over the set,
// of an independently seeded hash of the element. Two properties are
// used:
//   * resemblance |A1 ∩ ... ∩ Ak| / |A1 ∪ ... ∪ Ak| is estimated by
//     the fraction of components on which all k signatures agree;
//   * the signature of a union is the component-wise minimum, which
//     lets the intersection size be recovered from the resemblance and
//     one known set size (the paper's steps 1–4, Section 3.6).

#ifndef TWIG_SETHASH_SETHASH_H_
#define TWIG_SETHASH_SETHASH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/hash.h"

namespace twig::sethash {

/// Component value meaning "empty set so far".
inline constexpr uint32_t kEmptyComponent = 0xffffffffu;

/// A min-hash signature: L component minima. An all-kEmptyComponent
/// signature denotes the empty set.
using Signature = std::vector<uint32_t>;

/// A family of L independently seeded hash functions over 64-bit
/// elements, mapping into 32-bit values (a range much larger than any
/// realistic node-ID domain, as required to keep collisions rare).
class SetHashFamily {
 public:
  /// Creates a family of `length` component functions derived from `seed`.
  SetHashFamily(size_t length, uint64_t seed);

  size_t length() const { return length_; }

  /// Hash of `element` under component function `i`.
  uint32_t Hash(size_t i, uint64_t element) const {
    return static_cast<uint32_t>(SeededHash64(component_seeds_[i], element));
  }

  /// All L component hashes of one element; reusable across many
  /// signature accumulators when one data node roots many subpaths.
  std::vector<uint32_t> HashAll(uint64_t element) const;

  /// A fresh empty signature of this family's length.
  Signature EmptySignature() const {
    return Signature(length_, kEmptyComponent);
  }

  /// Builds the signature of a concrete set of elements.
  Signature SignatureOf(const std::vector<uint64_t>& elements) const;

 private:
  size_t length_;
  std::vector<uint64_t> component_seeds_;
};

/// Folds one element's precomputed component hashes into `sig`
/// (component-wise min). `hashes` must have the family length.
void MergeElement(Signature& sig, const std::vector<uint32_t>& hashes);

/// Component-wise minimum of k signatures: the signature of the union.
Signature UnionSignature(const std::vector<const Signature*>& sigs);

/// Estimated resemblance |∩|/|∪| of the k sets behind `sigs`: the
/// fraction of components on which all k signatures agree (and are
/// non-empty). Requires k >= 1; k == 1 returns 1 for non-empty sets.
double EstimateResemblance(const std::vector<const Signature*>& sigs);

/// One set with its signature and exactly known cardinality (C_p from
/// the CST).
struct SizedSignature {
  const Signature* signature;
  double size;
};

/// Result of a k-way intersection estimate.
struct IntersectionEstimate {
  /// Estimated |A_1 ∩ ... ∩ A_k|.
  double size = 0;
  /// Number of signature components on which all k sets agreed — the
  /// estimate's support. Small values (0 or 1) mean the true
  /// resemblance is below the signatures' resolution (~1/length) and
  /// `size` is dominated by quantization noise.
  size_t matching_components = 0;
  /// Estimated k-way resemblance.
  double resemblance = 0;
};

/// Estimates |A_1 ∩ ... ∩ A_k| via the paper's steps 1–4:
/// resemblance of the k signatures, union signature, scale by the
/// largest known set size. k == 1 returns that set's size with full
/// support. Allocation-free (called per twiglet on the estimation hot
/// path).
IntersectionEstimate EstimateIntersectionSize(
    std::span<const SizedSignature> sets);

inline IntersectionEstimate EstimateIntersectionSize(
    std::initializer_list<SizedSignature> sets) {
  return EstimateIntersectionSize(
      std::span<const SizedSignature>(sets.begin(), sets.size()));
}

}  // namespace twig::sethash

#endif  // TWIG_SETHASH_SETHASH_H_
