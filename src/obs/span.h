// Per-request spans: the timeline of one serving-layer request.
//
// A RequestSpan rides inside the service's queue item and collects a
// timestamp at every stage the request passes — admission, the result
// cache lookup, queue entry, worker dequeue, snapshot pin, estimator
// return, and the reply — as nanosecond offsets from admission, so a
// finished span is a compact, allocation-light record of where the
// request's time went. Completed spans are handed to the
// FlightRecorder (flight_recorder.h), which retains the most recent
// ones in a lock-free ring for the wire's `recent` verb.
//
// obs cannot depend on core or query, so the span stores the
// algorithm as its latency-series index (kLatencySeriesNames order,
// which the estimator pins to core::Algorithm) and the query as the
// text the serving layer formatted.

#ifndef TWIG_OBS_SPAN_H_
#define TWIG_OBS_SPAN_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace twig::obs {

/// The stages of a request's lifetime, in the order it meets them. Not
/// every request reaches every stage: a cache hit replies straight
/// after the lookup, a rejection straight after admission.
enum class SpanStage : size_t {
  kAdmitted,     // Submit entered (offset 0 by definition)
  kCacheLookup,  // result-cache lookup finished (hit or miss)
  kEnqueued,     // accepted into the bounded queue
  kDequeued,     // a worker picked the request up
  kPinned,       // the snapshot was pinned for this request
  kEstimated,    // the estimator returned
  kReplied,      // the response was delivered
  kCount,
};

inline constexpr size_t kSpanStageCount = static_cast<size_t>(SpanStage::kCount);

/// Stable snake_case stage name ("cache_lookup"), used as the JSON key.
const char* SpanStageName(SpanStage stage);

/// How the request ended.
enum class SpanOutcome : uint8_t {
  kServed,        // answered with a freshly computed estimate
  kCacheHit,      // answered bit-identically from the result cache
  kFailed,        // the estimator returned a structured error
  kDeadlineMiss,  // expired while queued
  kRejected,      // refused at admission or flushed at shutdown
  kCount,
};

/// Stable snake_case outcome name ("deadline_miss").
const char* SpanOutcomeName(SpanOutcome outcome);

/// Offset value for a stage the request never reached.
inline constexpr uint64_t kSpanStageUnset = ~uint64_t{0};

/// One finished request timeline — what the flight recorder stores and
/// the `recent` verb serves. Plain data, copyable.
struct SpanRecord {
  uint64_t request_id = 0;
  /// Query text (possibly truncated to the recorder's slot width).
  std::string query;
  /// Latency-series index of the algorithm (kLatencySeriesNames order).
  uint8_t series = 0;
  SpanOutcome outcome = SpanOutcome::kRejected;
  /// Nanoseconds from admission to each stage; kSpanStageUnset for
  /// stages the request never reached. offset_ns[kAdmitted] == 0.
  std::array<uint64_t, kSpanStageCount> offset_ns{};
  double estimate = 0;
  uint64_t snapshot_version = 0;
  /// True when this request was re-executed against the exact matcher
  /// by the accuracy sampler; relative_error then holds the signed
  /// relative error of the estimate.
  bool accuracy_sampled = false;
  double relative_error = 0;
  /// True when a failpoint action fired anywhere on this request's
  /// path (admission, estimate execution, ...), so injected faults are
  /// distinguishable from organic failures in the flight recorder.
  bool fault_injected = false;

  SpanRecord() { offset_ns.fill(kSpanStageUnset); }

  /// Admission-to-latest-stage nanoseconds (the request's total time).
  uint64_t total_ns() const;
};

/// The live span a request carries while in flight. Begin once at
/// admission, Mark stages as they happen; the embedded record is what
/// the recorder keeps. Not thread-safe — a span belongs to exactly one
/// request, and the queue hand-off orders writer threads.
struct RequestSpan {
  bool active = false;
  std::chrono::steady_clock::time_point start{};
  SpanRecord record;

  /// Arms the span: stamps the admission stage at `admitted` and
  /// records identity. `series` is the algorithm's latency-series
  /// index.
  void Begin(uint64_t request_id, std::string query, uint8_t series,
             std::chrono::steady_clock::time_point admitted);

  /// Stamps `stage` at now(). No-op on an inactive span.
  void Mark(SpanStage stage);
};

}  // namespace twig::obs

#endif  // TWIG_OBS_SPAN_H_
